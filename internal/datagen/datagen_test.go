package datagen

import (
	"context"
	"math/rand"
	"testing"

	"semkg/internal/embed"
	"semkg/internal/sparql"
)

// smallProfile keeps unit tests fast.
func smallProfile() Profile {
	p := DBpediaLike(0.12)
	return p
}

func TestGenerateBasicShape(t *testing.T) {
	d := Generate(smallProfile())
	g := d.Graph
	if g.NumNodes() < 300 {
		t.Fatalf("graph too small: %d nodes", g.NumNodes())
	}
	if g.NumEdges() < g.NumNodes() {
		t.Errorf("graph too sparse: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	for _, typ := range []string{"Country", "City", "Company", "Automobile", "Person", "Engine", "SoccerClub"} {
		if g.TypeByName(typ) < 0 {
			t.Errorf("missing type %s", typ)
		}
	}
	for _, pred := range []string{"assembly", "product", "manufacturer", "country", "locationCountry",
		"location", "nationality", "designer", "engine", "ground", "team", "relatedTo"} {
		if g.PredByName(pred) < 0 {
			t.Errorf("missing predicate %s", pred)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallProfile())
	b := Generate(smallProfile())
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("generation is not deterministic")
	}
	if len(a.Simple) != len(b.Simple) {
		t.Fatal("workloads differ between identical profiles")
	}
	for i := range a.Simple {
		if a.Simple[i].Name != b.Simple[i].Name || len(a.Simple[i].Truth) != len(b.Simple[i].Truth) {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestProfilesDiffer(t *testing.T) {
	db := DBpediaLike(1)
	fb := FreebaseLike(1)
	yg := YAGO2Like(1)
	if fb.FillerTypes <= db.FillerTypes {
		t.Error("freebase-like should have a richer type vocabulary than dbpedia-like")
	}
	if yg.Autos+yg.People <= db.Autos+db.People {
		t.Error("yago2-like should have more entities than dbpedia-like")
	}
}

func TestWorkloadsNonEmpty(t *testing.T) {
	d := Generate(DBpediaLike(0.25))
	if len(d.Simple) < 8 {
		t.Errorf("simple workload has %d queries, want >= 8", len(d.Simple))
	}
	if len(d.Table1) != 4 {
		t.Fatalf("Table1 variants = %d, want 4", len(d.Table1))
	}
	if len(d.Medium) == 0 {
		t.Error("no medium queries generated")
	}
	if len(d.Complex) == 0 {
		t.Error("no complex queries generated")
	}
	for _, q := range append(append(append([]GenQuery{}, d.Simple...), d.Medium...), d.Complex...) {
		if err := q.Graph.Validate(); err != nil {
			t.Errorf("%s: invalid query graph: %v", q.Name, err)
		}
		if len(q.Truth) == 0 {
			t.Errorf("%s: empty validation set", q.Name)
		}
		if q.Focus == "" {
			t.Errorf("%s: no focus", q.Name)
		}
	}
}

func TestTable1VariantsShareTruth(t *testing.T) {
	d := Generate(DBpediaLike(0.25))
	base := d.Table1[3] // canonical
	for _, v := range d.Table1[:3] {
		if len(v.Truth) != len(base.Truth) {
			t.Errorf("%s truth size %d != canonical %d", v.Name, len(v.Truth), len(base.Truth))
		}
	}
	// G1 uses the synonym type, G2 the abbreviated name, G3 the product
	// predicate.
	if d.Table1[0].Graph.Nodes[0].Type != "Car" {
		t.Errorf("G1 type = %s", d.Table1[0].Graph.Nodes[0].Type)
	}
	if d.Table1[1].Graph.Nodes[1].Name == base.Graph.Nodes[1].Name {
		t.Error("G2 should abbreviate the country name")
	}
	if d.Table1[2].Graph.Edges[0].Predicate != "product" {
		t.Errorf("G3 predicate = %s", d.Table1[2].Graph.Edges[0].Predicate)
	}
}

// TestTruthMatchesSchemas: every entity in a producedIn validation set is
// reachable through one of the production schemas, and the multi-hop
// schemas contribute a substantial minority (the Fig. 1 phenomenon).
func TestTruthMatchesSchemas(t *testing.T) {
	d := Generate(DBpediaLike(0.25))
	g := d.Graph
	direct := make(map[string]bool)
	q := schemaQuery("Automobile", ProductionSchemas[0], d.table1C)
	bs, err := sparql.Eval(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range sparql.Project(bs, "?v0") {
		direct[g.NodeName(u)] = true
	}
	full := ProducedInTruth(g, d.table1C)
	if len(full) <= len(direct) {
		t.Errorf("multi-hop schemas contribute nothing: direct=%d full=%d", len(direct), len(full))
	}
	ratio := float64(len(direct)) / float64(len(full))
	if ratio < 0.2 || ratio > 0.75 {
		t.Errorf("direct-schema ratio = %.2f, want skew comparable to Fig. 1 (~0.4-0.55)", ratio)
	}
}

// TestTrainedSpaceRecoversClusters trains TransE on a generated world and
// verifies the Fig. 6 property on the generator's ground-truth clusters.
func TestTrainedSpaceRecoversClusters(t *testing.T) {
	d := Generate(DBpediaLike(0.3))
	model, err := embed.TrainTransE(context.Background(), d.Graph, embed.Config{Dim: 48, Epochs: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := model.Space(d.Graph)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	sim := func(a, b string) float64 {
		return sp.Similarity(int(g.PredByName(a)), int(g.PredByName(b)))
	}
	if s, d := sim("assembly", "product"), sim("assembly", "designer"); s <= d {
		t.Errorf("sim(assembly,product)=%.3f should exceed sim(assembly,designer)=%.3f", s, d)
	}
	if s, d := sim("assembly", "product"), sim("assembly", "team"); s <= d {
		t.Errorf("sim(assembly,product)=%.3f should exceed sim(assembly,team)=%.3f", s, d)
	}
}

func TestAddNodeNoise(t *testing.T) {
	d := Generate(smallProfile())
	rng := rand.New(rand.NewSource(1))
	base := d.Table1[3].Graph
	changed := 0
	for i := 0; i < 20; i++ {
		noisy := AddNodeNoise(base, d.Library, rng)
		if err := noisy.Validate(); err != nil {
			t.Fatalf("noisy query invalid: %v", err)
		}
		if noisy.Nodes[0].Type != base.Nodes[0].Type || noisy.Nodes[1].Name != base.Nodes[1].Name {
			changed++
		}
		// The original must never be mutated.
		if base.Nodes[0].Type != "Automobile" {
			t.Fatal("AddNodeNoise mutated the input query")
		}
	}
	if changed == 0 {
		t.Error("node noise never changed anything")
	}
}

func TestAddEdgeNoise(t *testing.T) {
	d := Generate(smallProfile())
	model, err := embed.TrainTransE(context.Background(), d.Graph, embed.Config{Dim: 16, Epochs: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := model.Space(d.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	base := d.Table1[3].Graph
	changed := 0
	for i := 0; i < 20; i++ {
		noisy := AddEdgeNoise(base, d.Graph, sp, rng)
		if noisy.Edges[0].Predicate != base.Edges[0].Predicate {
			changed++
		}
		if base.Edges[0].Predicate != "assembly" {
			t.Fatal("AddEdgeNoise mutated the input query")
		}
	}
	if changed < 15 {
		t.Errorf("edge noise changed the predicate only %d/20 times", changed)
	}
}

func TestPriorQuality(t *testing.T) {
	d := Generate(smallProfile())
	rng := rand.New(rand.NewSource(3))
	correctByFocus := map[string][][]string{
		"Automobile": ProductionSchemas,
		"Person":     NationalitySchemas,
		"SoccerClub": ClubSchemas,
	}
	isTrue := func(p PriorInstance) bool {
		for _, s := range correctByFocus[p.FocusType] {
			if equalStrings(s, p.Predicates) {
				return true
			}
		}
		return false
	}
	good := d.Prior(200, 1.0, rng)
	focusSeen := map[string]bool{}
	for _, p := range good {
		if !isTrue(p) {
			t.Fatalf("quality=1.0 produced a wrong instance: %v (%s)", p.Predicates, p.FocusType)
		}
		focusSeen[p.FocusType] = true
	}
	if len(focusSeen) < 2 {
		t.Errorf("prior should cover multiple intentions, got %v", focusSeen)
	}
	bad := d.Prior(200, 0.0, rng)
	for _, p := range bad {
		if isTrue(p) {
			t.Fatalf("quality=0.0 produced a true instance: %v", p.Predicates)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
