package kg

import (
	"sort"
	"strings"

	"semkg/internal/strutil"
)

// nameIndex accelerates the transformation library's fallback matching
// (Definition 3: identical / synonym / abbreviation) over one name
// vocabulary (node names or type names). It is built once in Builder.Build
// and immutable afterwards, so concurrent searches share it without
// locking. Three access paths replace the seed's O(|V|) scans:
//
//   - norm:     normalized name -> ids, for identity and synonym-class
//     lookups done on normalized strings rather than exact spellings;
//   - initials: initials-style abbreviation (both the all-words and the
//     stop-word-skipping form of strutil.Initials) -> ids of the names it
//     abbreviates;
//   - sorted:   sorted distinct normalized names, for prefix-abbreviation
//     range scans ("ger" -> "germany") by binary search.
type nameIndex struct {
	norm      map[string][]int32
	initials  map[string][]int32
	sorted    []string
	sortedIDs [][]int32
}

func buildNameIndex(names []string) nameIndex { return buildNameIndexWorkers(names, 1) }

// buildNameIndexWorkers builds the index with the string work — Normalize
// and Initials over the whole vocabulary, the dominant cost — precomputed
// across workers. Map assembly stays sequential in ascending id order, so
// every bucket's id order matches the serial build exactly.
func buildNameIndexWorkers(names []string, workers int) nameIndex {
	ix := nameIndex{
		norm:     make(map[string][]int32, len(names)),
		initials: make(map[string][]int32),
	}
	norms := make([]string, len(names))
	alls := make([]string, len(names))
	sigs := make([]string, len(names))
	parspan(workers, len(names), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := strutil.Normalize(names[i])
			norms[i] = n
			// Only initials that strutil.IsAbbreviationOf could ever accept
			// are indexed: at least 2 bytes and strictly shorter than the
			// full name. Entries failing the rule stay "", never indexed
			// (Initials of a non-empty word is never empty).
			all, sig := strutil.Initials(n)
			if len(all) >= 2 && len(all) < len(n) {
				alls[i] = all
			}
			if sig != all && len(sig) >= 2 && len(sig) < len(n) {
				sigs[i] = sig
			}
		}
	})
	for id, n := range norms {
		ix.norm[n] = append(ix.norm[n], int32(id))
		if alls[id] != "" {
			ix.initials[alls[id]] = append(ix.initials[alls[id]], int32(id))
		}
		if sigs[id] != "" {
			ix.initials[sigs[id]] = append(ix.initials[sigs[id]], int32(id))
		}
	}
	ix.sorted = make([]string, 0, len(ix.norm))
	for n := range ix.norm {
		ix.sorted = append(ix.sorted, n)
	}
	sort.Strings(ix.sorted)
	ix.sortedIDs = make([][]int32, len(ix.sorted))
	for i, n := range ix.sorted {
		ix.sortedIDs[i] = ix.norm[n]
	}
	return ix
}

// properPrefix returns the ids of all names that have p as a strict prefix
// (normalized name longer than p), by range scan over the sorted names.
func (ix *nameIndex) properPrefix(p string) []int32 {
	var out []int32
	for i := sort.SearchStrings(ix.sorted, p); i < len(ix.sorted) && strings.HasPrefix(ix.sorted[i], p); i++ {
		if len(ix.sorted[i]) > len(p) {
			out = append(out, ix.sortedIDs[i]...)
		}
	}
	return out
}

func convertIDs[T ~int32](ids []int32) []T {
	if len(ids) == 0 {
		return nil
	}
	out := make([]T, len(ids))
	for i, id := range ids {
		out[i] = T(id)
	}
	return out
}

// NodesByNormName returns the nodes whose strutil.Normalize'd name equals
// norm (norm must already be normalized), in ascending NodeID order.
func (g *Graph) NodesByNormName(norm string) []NodeID {
	return convertIDs[NodeID](g.nameIdx.norm[norm])
}

// NodesByInitials returns the nodes whose name abbreviates to initials per
// strutil.Initials (either the all-words or the significant-words form),
// in ascending NodeID order. Initials shorter than 2 bytes are never
// indexed, mirroring strutil.IsAbbreviationOf.
func (g *Graph) NodesByInitials(initials string) []NodeID {
	return convertIDs[NodeID](g.nameIdx.initials[initials])
}

// NodesByProperNormPrefix returns the nodes whose normalized name has the
// given strict prefix (the node name is longer), in ascending NodeID order
// per prefix-range; callers needing global NodeID order must sort.
func (g *Graph) NodesByProperNormPrefix(prefix string) []NodeID {
	return convertIDs[NodeID](g.nameIdx.properPrefix(prefix))
}

// TypesByNormName is NodesByNormName over the type vocabulary.
func (g *Graph) TypesByNormName(norm string) []TypeID {
	return convertIDs[TypeID](g.typeIdx.norm[norm])
}

// TypesByInitials is NodesByInitials over the type vocabulary.
func (g *Graph) TypesByInitials(initials string) []TypeID {
	return convertIDs[TypeID](g.typeIdx.initials[initials])
}

// TypesByProperNormPrefix is NodesByProperNormPrefix over the type
// vocabulary.
func (g *Graph) TypesByProperNormPrefix(prefix string) []TypeID {
	return convertIDs[TypeID](g.typeIdx.properPrefix(prefix))
}

// NodePreds returns the distinct predicates incident to u (either
// direction), in first-occurrence order of u's adjacency list. The semantic
// m(u) bound is a maximum over edge weights, which only depends on this
// set, so consumers iterate O(distinct predicates) instead of O(degree) —
// on dense hub nodes the difference is orders of magnitude. The returned
// slice is shared; callers must not modify it.
func (g *Graph) NodePreds(u NodeID) []PredID {
	return g.nodePreds[g.nodePredOff[u]:g.nodePredOff[u+1]]
}

// buildIndexes computes the derived read-only indexes; called by Build.
// The three indexes are independent, so they build concurrently; the two
// big ones (NodePreds CSR, node-name index) also parallelize internally.
func (g *Graph) buildIndexes(workers int) {
	tg := newTaskGroup(workers)
	tg.run(func() { g.buildNodePreds(workers) })
	tg.run(func() { g.nameIdx = buildNameIndexWorkers(g.names, workers) })
	tg.run(func() { g.typeIdx = buildNameIndex(g.typeNames) }) // type vocabulary is tiny
	tg.wait()
}

// buildNodePreds computes the per-node distinct-incident-predicate CSR.
// Parallel builds use two node-range passes — count spans, prefix-sum,
// fill — with one mark array per worker sized by the predicate
// vocabulary, so extra memory is O(workers × predicates), not O(nodes).
// Per-node first-occurrence order is inherent to the scan, so any worker
// count fills identical arrays.
func (g *Graph) buildNodePreds(workers int) {
	n := len(g.names)
	g.nodePredOff = make([]int32, n+1)
	if workers <= 1 {
		// Sequential fast path: one pass, append as discovered. Keeping it
		// distinct keeps the workers=1 baseline an honest single-pass
		// serial build, not a two-pass algorithm run on one goroutine.
		g.nodePreds = make([]PredID, 0, n)
		mark := make([]int32, len(g.predNames))
		for i := range mark {
			mark[i] = -1
		}
		for u := 0; u < n; u++ {
			for _, h := range g.halves[g.adjOff[u]:g.adjOff[u+1]] {
				if mark[h.Pred] != int32(u) {
					mark[h.Pred] = int32(u)
					g.nodePreds = append(g.nodePreds, h.Pred)
				}
			}
			g.nodePredOff[u+1] = int32(len(g.nodePreds))
		}
		return
	}
	parspan(workers, n, func(lo, hi int) {
		mark := make([]int32, len(g.predNames))
		for i := range mark {
			mark[i] = -1
		}
		for u := lo; u < hi; u++ {
			c := int32(0)
			for _, h := range g.halves[g.adjOff[u]:g.adjOff[u+1]] {
				if mark[h.Pred] != int32(u) {
					mark[h.Pred] = int32(u)
					c++
				}
			}
			g.nodePredOff[u+1] = c
		}
	})
	for u := 0; u < n; u++ {
		g.nodePredOff[u+1] += g.nodePredOff[u]
	}
	g.nodePreds = make([]PredID, g.nodePredOff[n])
	parspan(workers, n, func(lo, hi int) {
		mark := make([]int32, len(g.predNames))
		for i := range mark {
			mark[i] = -1
		}
		for u := lo; u < hi; u++ {
			w := g.nodePredOff[u]
			for _, h := range g.halves[g.adjOff[u]:g.adjOff[u+1]] {
				if mark[h.Pred] != int32(u) {
					mark[h.Pred] = int32(u)
					g.nodePreds[w] = h.Pred
					w++
				}
			}
		}
	})
}
