// Plan compilation: the query-dependent, run-independent front half of the
// pipeline. Compile resolves a query graph into a decomposition plus one
// searcher blueprint per sub-query (φ match sets and query predicates);
// StreamPlan/SearchPlan then run the pipeline from the compiled form. The
// split exists for the serving layer (internal/serve): repeated query
// shapes cache the Plan and skip decomposition and φ resolution entirely,
// while each run still gets fresh searcher state (A* arenas and weighter
// slabs are mutable and must not be shared across concurrent runs).

package core

import (
	"context"
	"fmt"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/semgraph"
	"semkg/internal/transform"
)

// compileOpts are the Options fields that affect compilation (pivot
// selection, decomposition, φ resolution and searcher pruning). Runtime
// fields — K, TimeBound, AlertRatio, Clock — are deliberately absent, so
// one Plan serves any K or time budget. The struct is comparable: a plan
// cache can use it (plus the query) as a key, and StreamPlan uses it to
// reject a plan/options mismatch.
type compileOpts struct {
	tau          float64
	maxHops      int
	strategy     query.PivotStrategy
	pivotNode    string
	noHeuristic  bool
	pruneVisited bool
}

func compileOptsOf(o Options) compileOpts {
	return compileOpts{
		tau:          o.Tau,
		maxHops:      o.MaxHops,
		strategy:     o.Strategy,
		pivotNode:    o.PivotNode,
		noHeuristic:  o.NoHeuristic,
		pruneVisited: o.PruneVisited,
	}
}

// planSub is one sub-query's searcher blueprint: the compiled φ sets and
// the query predicates whose weight rows the per-run weighter materializes.
// Anchors and EndSets are read-only after compilation and safe to share
// across concurrent runs.
type planSub struct {
	sub   astar.SubQuery
	preds []string
}

// Plan is a compiled query: the decomposition and per-sub-query searcher
// blueprints. A Plan is immutable, tied to the engine that compiled it,
// and safe for concurrent reuse — every StreamPlan/SearchPlan call builds
// fresh searchers from the blueprints.
type Plan struct {
	eng      *Engine
	d        *query.Decomposition
	subs     []planSub
	compiled bool
	copts    compileOpts
}

// Pivot returns the decomposition's pivot query node ID.
func (p *Plan) Pivot() string { return p.d.Pivot }

// Compiled reports whether every query node matched at least one graph
// entity. A non-compiled plan is still runnable — it yields the empty
// answer set (the paper's G1_Q mismatch case), not an error.
func (p *Plan) Compiled() bool { return p.compiled }

// CompiledBy reports whether e compiled this plan. The serving layer's
// plan cache uses it to discard entries that survived an engine swap.
func (p *Plan) CompiledBy(e *Engine) bool { return p != nil && p.eng == e }

// Compile resolves q into a reusable Plan under the compile-relevant
// options (Tau, MaxHops, Strategy/PivotNode, NoHeuristic, PruneVisited).
// Validation and decomposition errors are wrapped as BadRequestError,
// exactly as in Search/Stream.
func (e *Engine) Compile(q *query.Graph, opts Options) (*Plan, error) {
	if err := opts.Validate(); err != nil {
		return nil, badRequest(err)
	}
	opts = opts.withDefaults()

	// One φ memo per compilation: the cost estimator (pivot selection) and
	// the blueprint compilation resolve the same query nodes.
	memo := e.matcher.Memo()
	d, err := e.decompose(q, opts, memo)
	if err != nil {
		return nil, badRequest(err)
	}
	p := &Plan{eng: e, d: d, copts: compileOptsOf(opts)}
	subs, compiled, err := e.compileSubs(q, d, memo)
	if err != nil {
		return nil, err
	}
	p.subs, p.compiled = subs, compiled
	return p, nil
}

// compileSubs resolves each sub-query's φ sets and predicates into a
// searcher blueprint. compiled=false (with nil error) means some query
// node has no matches.
func (e *Engine) compileSubs(q *query.Graph, d *query.Decomposition, memo *transform.Memo) ([]planSub, bool, error) {
	subs := make([]planSub, 0, len(d.Subs))
	for _, sub := range d.Subs {
		anchorNode, _ := q.NodeByID(sub.Anchor())
		anchors := memo.MatchNode(anchorNode.Name, anchorNode.Type)
		if len(anchors) == 0 {
			return nil, false, nil
		}
		endSets := make([]map[kg.NodeID]bool, sub.Len())
		for i := 1; i < len(sub.NodeIDs); i++ {
			n, _ := q.NodeByID(sub.NodeIDs[i])
			ids := memo.MatchNode(n.Name, n.Type)
			if len(ids) == 0 {
				return nil, false, nil
			}
			set := make(map[kg.NodeID]bool, len(ids))
			for _, id := range ids {
				set[id] = true
			}
			endSets[i-1] = set
		}
		preds := make([]string, sub.Len())
		for i, edge := range sub.Edges {
			preds[i] = edge.Predicate
		}
		// Resolve the predicates now so a vocabulary problem surfaces at
		// compile time (the rows are retained by the engine's RowCache, so
		// this also pre-warms the per-run weighter).
		if _, err := semgraph.NewWeighterCached(e.rows, preds); err != nil {
			return nil, false, err
		}
		subs = append(subs, planSub{
			sub:   astar.SubQuery{Anchors: anchors, EndSets: endSets},
			preds: preds,
		})
	}
	return subs, true, nil
}

// searchersFor instantiates fresh searchers from the plan's blueprints.
// Weighters and searchers hold per-run mutable state, so every run gets
// its own; the φ sets and weight rows are shared.
func (e *Engine) searchersFor(p *Plan) ([]*astar.Searcher, error) {
	if !p.compiled {
		return nil, nil
	}
	sopts := astar.Options{
		Tau:          p.copts.tau,
		MaxHops:      p.copts.maxHops,
		NoHeuristic:  p.copts.noHeuristic,
		PruneVisited: p.copts.pruneVisited,
	}
	searchers := make([]*astar.Searcher, 0, len(p.subs))
	for _, ps := range p.subs {
		w, err := semgraph.NewWeighterCached(e.rows, ps.preds)
		if err != nil {
			return nil, err
		}
		searchers = append(searchers, astar.NewSearcher(e.g, w, ps.sub, sopts))
	}
	return searchers, nil
}

// SearchPlan is Search over a pre-compiled plan: the same pipeline with
// decomposition and φ resolution skipped. The plan must come from this
// engine's Compile, under options whose compile-relevant fields match.
func (e *Engine) SearchPlan(ctx context.Context, p *Plan, opts Options) (*Result, error) {
	s, err := e.streamPlan(ctx, p, opts, true)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// StreamPlan is Stream over a pre-compiled plan; see SearchPlan.
func (e *Engine) StreamPlan(ctx context.Context, p *Plan, opts Options) (*Stream, error) {
	return e.streamPlan(ctx, p, opts, false)
}

// planMismatch explains a plan/options incompatibility.
func (p *Plan) check(e *Engine, opts Options) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	if p.eng != e {
		return fmt.Errorf("core: plan was compiled by a different engine")
	}
	if p.copts != compileOptsOf(opts) {
		return badRequest(fmt.Errorf("core: plan incompatible with options: compiled with %+v, run with %+v",
			p.copts, compileOptsOf(opts)))
	}
	return nil
}
