package core
