package kg

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// TypePredicate is the reserved predicate used in the TSV triple format to
// declare a node's entity type: "<name>\ttype\t<TypeName>". All other lines
// declare ordinary edges.
//
// Type overwrite rule: the FIRST type declared for a node wins. A later
// "type" triple for an already-typed node is silently ignored — it neither
// errors nor overwrites — matching the one-type-per-entity assumption of
// the paper. ReadTriples, Builder.AddNode and Delta.SetType all apply the
// same rule, so a triple stream produces the same graph whether it is
// loaded at once or split across a base graph and committed deltas.
const TypePredicate = "type"

// ReadTriples parses a graph from the tab-separated triple format:
//
//	subject \t predicate \t object
//
// Lines starting with '#' and blank lines are skipped. The reserved
// predicate "type" assigns the object as the subject's entity type instead
// of creating an edge (first type wins; see TypePredicate). Fields must
// satisfy ValidName — a carriage return inside a field is reported as a
// line error rather than being stored in a graph it would later corrupt on
// WriteTriples.
func ReadTriples(r io.Reader) (*Graph, error) {
	b := NewBuilder(1024, 4096)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("kg: line %d: want 3 tab-separated fields, got %d", lineNo, len(parts))
		}
		s, p, o := parts[0], parts[1], parts[2]
		if s == "" || p == "" || o == "" {
			return nil, fmt.Errorf("kg: line %d: empty field", lineNo)
		}
		// Subjects are node names (they open the line: ValidName); so are
		// objects of edge triples (they could open a line elsewhere).
		// Predicates and type names never lead a line: ValidLabel.
		if err := ValidName(s); err != nil {
			return nil, fmt.Errorf("kg: line %d: %w", lineNo, err)
		}
		if err := ValidLabel(p); err != nil {
			return nil, fmt.Errorf("kg: line %d: %w", lineNo, err)
		}
		objRule := ValidName
		if p == TypePredicate {
			objRule = ValidLabel
		}
		if err := objRule(o); err != nil {
			return nil, fmt.Errorf("kg: line %d: %w", lineNo, err)
		}
		if p == TypePredicate {
			b.AddNode(s, o)
			continue
		}
		b.AddTriple(s, p, o)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kg: reading triples: %w", err)
	}
	return b.Build(), nil
}

// WriteTriples serializes g in the format accepted by ReadTriples:
// first a "type" triple per typed node, then one triple per edge.
func WriteTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.NumNodes(); u++ {
		t := g.NodeType(NodeID(u))
		if t == NoType {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", g.NodeName(NodeID(u)), TypePredicate, g.TypeName(t)); err != nil {
			return err
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(EdgeID(i))
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", g.NodeName(e.Src), g.PredName(e.Pred), g.NodeName(e.Dst)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
