package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunLoadShape is the load-harness acceptance smoke on a micro world:
// every section produces measured (non-zero) rows, the artifact embeds
// its configuration and environment, and the JSON round-trips. The CI
// load job runs this under -race; the real numbers come from
// `kgbench -exp load` on the 1M-node world.
func TestRunLoadShape(t *testing.T) {
	cfg := loadConfig(true)
	cfg.Nodes = 4000
	cfg.Agents = 3
	cfg.DistinctQueries = 16
	cfg.WarmupMs = 50
	cfg.MeasureMs = 200
	cfg.ColdStartReps = 1
	cfg.SteadyQueries = 4

	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got := len(res.ColdStart); got != 6 {
		t.Fatalf("cold-start rows = %d, want 6 (serial/parallel × load, build, total)", got)
	}
	for i, row := range res.ColdStart {
		if row.Millis <= 0 {
			t.Fatalf("cold-start row %d (%s): no measured time", i, row.Phase)
		}
		if row.Workers < 1 {
			t.Fatalf("cold-start row %d (%s): workers = %d", i, row.Phase, row.Workers)
		}
	}
	total := res.ColdStart[5]
	if total.Speedup <= 0 {
		t.Fatalf("cold-start total row has no speedup: %+v", total)
	}

	if got := len(res.Steady); got != 2 {
		t.Fatalf("steady-state rows = %d, want 2 (dense before, paged after)", got)
	}
	for i, row := range res.Steady {
		if row.MeanUs <= 0 || row.Queries != cfg.SteadyQueries {
			t.Fatalf("steady row %d: degenerate measurement %+v", i, row)
		}
	}

	if got := len(res.Driver); got != 2 {
		t.Fatalf("driver rows = %d, want 2 (cache-served, cache-bypassed)", got)
	}
	for i, row := range res.Driver {
		if row.Requests <= 0 || row.QPS <= 0 {
			t.Fatalf("driver row %d (%s): no traffic recorded %+v", i, row.Workload, row)
		}
		if row.Errors > 0 {
			t.Fatalf("driver row %d (%s): %d request errors", i, row.Workload, row.Errors)
		}
		if row.HeapAllocBytes == 0 {
			t.Fatalf("driver row %d (%s): no heap stats", i, row.Workload)
		}
	}
	// The bypassed workload must actually run the pipeline per request.
	if res.Driver[1].PipelineRuns < uint64(res.Driver[1].Requests) {
		t.Fatalf("cache-bypassed workload: %d pipeline runs for %d requests",
			res.Driver[1].PipelineRuns, res.Driver[1].Requests)
	}

	if res.GOMAXPROCS < 1 || res.GoVersion == "" || res.TotalAllocBytes == 0 {
		t.Fatalf("artifact env block incomplete: %+v", res.EnvInfo)
	}

	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Config != cfg {
		t.Fatalf("artifact config did not round-trip: %+v != %+v", back.Config, cfg)
	}
	if back.Render() == nil {
		t.Fatal("Render returned nil")
	}
}
