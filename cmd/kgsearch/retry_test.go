package main

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock records requested sleeps without sleeping.
type fakeClock struct {
	slept []time.Duration
}

func (c *fakeClock) sleep(d time.Duration) { c.slept = append(c.slept, d) }

// TestRetrySchedule pins the backoff schedule with a fake clock and a
// seeded RNG: doubling from base, capped at maxDelay, jitter within
// [d/2, d], and the server's Retry-After respected as a floor.
func TestRetrySchedule(t *testing.T) {
	clock := &fakeClock{}
	p := retryPolicy{
		retries:  5,
		base:     100 * time.Millisecond,
		maxDelay: 400 * time.Millisecond,
		sleep:    clock.sleep,
		rng:      rand.New(rand.NewSource(3)),
	}

	attempts := 0
	resp, err := p.do(func() (*http.Response, error) {
		attempts++
		if attempts <= 5 {
			rec := httptest.NewRecorder()
			rec.Header().Set("Retry-After", "0")
			rec.WriteHeader(http.StatusTooManyRequests)
			return rec.Result(), nil
		}
		rec := httptest.NewRecorder()
		rec.WriteHeader(http.StatusOK)
		return rec.Result(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status %d", resp.StatusCode)
	}
	if attempts != 6 {
		t.Fatalf("attempts = %d, want 6", attempts)
	}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1: base
		200 * time.Millisecond, // doubled
		400 * time.Millisecond, // capped
		400 * time.Millisecond,
		400 * time.Millisecond,
	}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %d times, want %d (%v)", len(clock.slept), len(want), clock.slept)
	}
	for i, d := range clock.slept {
		if d < want[i]/2 || d > want[i] {
			t.Fatalf("sleep %d = %v, want within [%v, %v]", i, d, want[i]/2, want[i])
		}
	}
}

// TestRetryHonorsRetryAfterFloor: a Retry-After larger than the local
// backoff becomes the wait.
func TestRetryHonorsRetryAfterFloor(t *testing.T) {
	clock := &fakeClock{}
	p := retryPolicy{
		retries: 1, base: 10 * time.Millisecond, maxDelay: 20 * time.Millisecond,
		sleep: clock.sleep, rng: rand.New(rand.NewSource(1)),
	}
	calls := 0
	resp, err := p.do(func() (*http.Response, error) {
		calls++
		rec := httptest.NewRecorder()
		if calls == 1 {
			rec.Header().Set("Retry-After", "3")
			rec.WriteHeader(http.StatusTooManyRequests)
		} else {
			rec.WriteHeader(http.StatusOK)
		}
		return rec.Result(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(clock.slept) != 1 || clock.slept[0] != 3*time.Second {
		t.Fatalf("slept %v, want exactly the server's 3s floor", clock.slept)
	}
}

// TestRetryBudgetExhausted: when every attempt sheds, the final 429 is
// returned to the caller (kgsearch reports it) instead of an error.
func TestRetryBudgetExhausted(t *testing.T) {
	clock := &fakeClock{}
	p := retryPolicy{retries: 2, base: time.Millisecond, maxDelay: time.Millisecond,
		sleep: clock.sleep, rng: rand.New(rand.NewSource(1))}
	calls := 0
	resp, err := p.do(func() (*http.Response, error) {
		calls++
		rec := httptest.NewRecorder()
		rec.WriteHeader(http.StatusTooManyRequests)
		return rec.Result(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("final status %d, want 429", resp.StatusCode)
	}
	if calls != 3 || len(clock.slept) != 2 {
		t.Fatalf("calls = %d, sleeps = %d, want 3 and 2", calls, len(clock.slept))
	}
}

// TestRetryFreshBodyPerAttempt: each attempt re-reads the request body
// from the start — a retried POST must not send a drained reader.
func TestRetryFreshBodyPerAttempt(t *testing.T) {
	var sheds atomic.Int64
	sheds.Store(2)
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		if sheds.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	p := retryPolicy{retries: 3, base: time.Millisecond, maxDelay: time.Millisecond,
		sleep: func(time.Duration) {}, rng: rand.New(rand.NewSource(1))}
	payload := `{"query":"q"}`
	resp, err := p.do(func() (*http.Response, error) {
		return http.Post(srv.URL, "application/json", strings.NewReader(payload))
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(bodies))
	}
	for i, b := range bodies {
		if b != payload {
			t.Fatalf("attempt %d body = %q, want full payload", i, b)
		}
	}
}
