// Benchmark entry points: one testing.B benchmark per table and figure of
// the paper's evaluation (Section VII), plus micro-benchmarks of the core
// building blocks and the hot-path before/after pairs (legacy seed
// implementation vs the index/arena engine). Each experiment benchmark
// regenerates its artifact on a cached environment; run the full suite
// with
//
//	go test -bench=. -benchmem
//
// and the standalone harness with richer output via
//
//	go run ./cmd/kgbench -exp all
//	go run ./cmd/kgbench -exp hotpath   # writes BENCH_hotpath.json
package semkg_test

import (
	"context"
	"testing"

	"semkg/internal/bench"
	"semkg/internal/core"
	"semkg/internal/datagen"
	"semkg/internal/embed"
)

const benchScale = 0.25

var benchEmbed = embed.Config{Dim: 48, Epochs: 100, Seed: 3}

func benchEnv(b *testing.B, p datagen.Profile) *bench.Env {
	b.Helper()
	env, err := bench.Cached(bench.Config{Profile: p, Embed: benchEmbed})
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkTable1 regenerates Table I: P/R of all 8 methods on the four
// Q117 query-graph variants.
func BenchmarkTable1(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := bench.RunTable1(env); len(res.Rows) != 8 {
			b.Fatal("unexpected Table I shape")
		}
	}
}

// BenchmarkFig12DBpedia regenerates Figure 12 (panels a-d): effectiveness
// and response time vs top-k on the DBpedia-like dataset.
func BenchmarkFig12DBpedia(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunFigure(env, nil)
	}
}

// BenchmarkFig13Freebase regenerates Figure 13 on the Freebase-like
// dataset.
func BenchmarkFig13Freebase(b *testing.B) {
	env := benchEnv(b, datagen.FreebaseLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunFigure(env, nil)
	}
}

// BenchmarkFig14YAGO2 regenerates Figure 14 on the YAGO2-like dataset.
func BenchmarkFig14YAGO2(b *testing.B) {
	env := benchEnv(b, datagen.YAGO2Like(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunFigure(env, nil)
	}
}

// BenchmarkFig15TimeBounds regenerates Figure 15: TBQ effectiveness and
// response time across time bounds.
func BenchmarkFig15TimeBounds(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunFig15(env, 0, nil)
	}
}

// BenchmarkTable5Pivot regenerates Table V: per-pivot effectiveness and
// efficiency on the complex query.
func BenchmarkTable5Pivot(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable5(env, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6PivotStrategy regenerates Table VI: minCost vs Random
// pivot selection across query complexities.
func BenchmarkTable6PivotStrategy(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunTable6(env)
	}
}

// BenchmarkTable7UserStudy regenerates Table VII: the simulated
// crowd-sourcing study's PCC per query over all three datasets.
func BenchmarkTable7UserStudy(b *testing.B) {
	envs := []*bench.Env{
		benchEnv(b, datagen.DBpediaLike(benchScale)),
		benchEnv(b, datagen.FreebaseLike(benchScale)),
		benchEnv(b, datagen.YAGO2Like(benchScale)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunTable7(envs, 7)
	}
}

// BenchmarkFig17Noise regenerates Figure 17 and Table VIII: robustness and
// response time under node/edge noise.
func BenchmarkFig17Noise(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunNoise(env, 0, nil)
	}
}

// BenchmarkTable9Scalability regenerates Table IX: online SGQ time across
// nested graph scales plus offline embedding cost.
func BenchmarkTable9Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable9([]float64{0.1, 0.18, 0.25}, nil, benchEmbed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable10Sensitivity regenerates Table X: the n̂ and τ sweeps.
func BenchmarkTable10Sensitivity(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunTable10(env, 0)
	}
}

// BenchmarkAblation measures the search-variant ablation (exact A* vs
// uninformed vs visited-set pruning).
func BenchmarkAblation(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunAblation(env, 0)
	}
}

// --- micro-benchmarks ---------------------------------------------------

// BenchmarkSGQQuery measures one end-to-end SGQ query (decompose, A*
// search, TA assembly) on the benchmark world.
func BenchmarkSGQQuery(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	q := env.Dataset.Simple[0]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Engine.Search(ctx, q.Graph, env.SearchOptions(20)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTBQQuery measures one time-bounded query.
func BenchmarkTBQQuery(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	q := env.Dataset.Simple[0]
	ctx := context.Background()
	opts := env.SearchOptions(20)
	opts.TimeBound = 500 * 1000 // 500µs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Engine.Search(ctx, q.Graph, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransETraining measures one full TransE training run on a small
// world (the offline phase).
func BenchmarkTransETraining(b *testing.B) {
	ds := datagen.Generate(datagen.DBpediaLike(0.1))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embed.TrainTransE(ctx, ds.Graph, embed.Config{Dim: 32, Epochs: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineGraB measures one GraB baseline query for comparison
// with BenchmarkSGQQuery.
func BenchmarkBaselineGraB(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	sys := env.Baselines(0.5)[0] // GraB
	q := env.Dataset.Simple[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(q, 20)
	}
}

// hotpathPair runs one before/after pair from the hotpath experiment as
// sub-benchmarks ("legacy" = preserved seed implementation, "engine" =
// index/arena hot path). kgbench -exp hotpath aggregates the same pairs
// into BENCH_hotpath.json.
func hotpathPair(b *testing.B, name string) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	cases, err := bench.HotpathCases(env)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		if c.Name != name {
			continue
		}
		b.Run("legacy", c.Before)
		b.Run("engine", c.After)
		return
	}
	b.Fatalf("no hotpath case %q", name)
}

// BenchmarkAStarNext compares a full A* drain (weighter construction +
// search to exhaustion) between the seed pointer-state searcher and the
// arena-backed one.
func BenchmarkAStarNext(b *testing.B) { hotpathPair(b, "AStarNext") }

// BenchmarkNodeMax compares the m(u) bound over every node: adjacency-list
// scan with map cache vs NodePreds-driven flat slab.
func BenchmarkNodeMax(b *testing.B) { hotpathPair(b, "NodeMax") }

// BenchmarkMatchNode compares φ resolution over a probe battery: linear
// name/type scans vs the normalized-name/initials/prefix indexes.
func BenchmarkMatchNode(b *testing.B) { hotpathPair(b, "MatchNode") }

// BenchmarkSearchEndToEnd compares one exact top-20 query end to end:
// the replayed seed pipeline vs Engine.Search.
func BenchmarkSearchEndToEnd(b *testing.B) { hotpathPair(b, "SearchEndToEnd") }

// BenchmarkEngineBuild measures engine construction (matcher + space
// wiring) excluding training.
func BenchmarkEngineBuild(b *testing.B) {
	env := benchEnv(b, datagen.DBpediaLike(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewEngine(env.Dataset.Graph, env.Space, env.Dataset.Library); err != nil {
			b.Fatal(err)
		}
	}
}
