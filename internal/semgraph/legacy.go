package semgraph

import (
	"fmt"

	"semkg/internal/embed"
	"semkg/internal/kg"
)

// ScanWeighter is the seed implementation of the Weighter contract,
// preserved verbatim: per-call weight rows, a map-backed suffix cache, and
// m(u) computed by scanning the full adjacency list. It exists as the
// reference side of the index/scan equivalence tests and the hotpath
// before/after benchmarks (cmd/kgbench -exp hotpath); production searches
// use Weighter.
type ScanWeighter struct {
	g *kg.Graph
	// w[seg][pred] is the clamped similarity between the sub-query's
	// seg-th query edge and graph predicate pred.
	w [][]float64
	// suffix[u] caches, per segment s, the maximum over segments s' >= s
	// of the maximum weight among u's incident edges.
	suffix map[kg.NodeID][]float64
}

// NewScanWeighter builds the reference weighter exactly as the seed
// NewWeighter did.
func NewScanWeighter(g *kg.Graph, space *embed.Space, predicates []string) (*ScanWeighter, error) {
	if space.Len() != g.NumPredicates() {
		return nil, fmt.Errorf("semgraph: space has %d predicates, graph has %d", space.Len(), g.NumPredicates())
	}
	if len(predicates) == 0 {
		return nil, fmt.Errorf("semgraph: sub-query has no predicates")
	}
	wt := &ScanWeighter{
		g:      g,
		w:      make([][]float64, len(predicates)),
		suffix: make(map[kg.NodeID][]float64),
	}
	for seg, name := range predicates {
		qp, err := ResolvePredicate(g, name)
		if err != nil {
			return nil, err
		}
		row := make([]float64, g.NumPredicates())
		for p := range row {
			row[p] = weight(space.Similarity(int(qp), p))
		}
		wt.w[seg] = row
	}
	return wt, nil
}

// Segments returns the number of query edges the weighter serves.
func (w *ScanWeighter) Segments() int { return len(w.w) }

// Weight returns the semantic weight of graph predicate p for the seg-th
// query edge.
func (w *ScanWeighter) Weight(p kg.PredID, seg int) float64 { return w.w[seg][p] }

// NodeMax returns the m(u) suffix bound, computed by adjacency-list scan
// with a per-node map cache (the seed hot path).
func (w *ScanWeighter) NodeMax(u kg.NodeID, seg int) float64 {
	sfx, ok := w.suffix[u]
	if !ok {
		sfx = w.computeSuffix(u)
		w.suffix[u] = sfx
	}
	return sfx[seg]
}

func (w *ScanWeighter) computeSuffix(u kg.NodeID) []float64 {
	segs := len(w.w)
	perSeg := make([]float64, segs)
	for i := range perSeg {
		perSeg[i] = MinWeight
	}
	for _, h := range w.g.Neighbors(u) {
		for s := 0; s < segs; s++ {
			if wt := w.w[s][h.Pred]; wt > perSeg[s] {
				perSeg[s] = wt
			}
		}
	}
	for s := segs - 2; s >= 0; s-- {
		if perSeg[s+1] > perSeg[s] {
			perSeg[s] = perSeg[s+1]
		}
	}
	return perSeg
}
