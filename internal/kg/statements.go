package kg

import "fmt"

// Statement is one logical graph mutation in the ingest convention — the
// unit the replication layer streams from a primary to its followers (see
// internal/replica and DESIGN.md, "Replication and failure model"). Three
// forms exist:
//
//   - P == "":            declare node S (untyped; no edge)
//   - P == TypePredicate: declare S's entity type O (first type wins)
//   - anything else:      add the edge S --P--> O, creating unseen
//     endpoints on the fly (exactly ReadTriples / Delta.ApplyTriple)
//
// A statement stream fully determines a graph: replaying it through
// Delta.ApplyStatement over the stream's base produces a graph
// structurally identical — snapshot-byte identical — to applying the
// original mutations, because every table (node names, interned types and
// predicates, edges) is appended to in statement order on both sides.
type Statement struct {
	// S is the subject node name.
	S string
	// P is the predicate: empty for a bare node declaration,
	// TypePredicate for a type declaration, an edge predicate otherwise.
	P string
	// O is the object: unused for bare nodes, the type name for type
	// declarations, the object node name for edges.
	O string
}

// Empty returns a new graph with no nodes, edges, types or predicates —
// the base a replication follower bootstraps from before its first
// snapshot resync.
func Empty() *Graph { return NewBuilder(0, 0).Build() }

// ApplyStatement applies one replication statement with the same
// semantics the recording side used: bare nodes through AddNode, type
// declarations through AddNode's first-type-wins path (which also interns
// conflicting type names, matching the recorded interning side effect),
// and edges through AddTriple. A rejected statement mutates nothing.
func (d *Delta) ApplyStatement(st Statement) error {
	switch st.P {
	case "":
		_, err := d.AddNode(st.S, "")
		return err
	case TypePredicate:
		_, err := d.AddNode(st.S, st.O)
		return err
	default:
		_, err := d.AddTriple(st.S, st.P, st.O)
		return err
	}
}

// Statements returns the delta's recorded mutation log, in application
// order. Replaying it over a structurally identical base through
// ApplyStatement commits to a graph snapshot-byte identical to this
// delta's own Commit. The returned slice is owned by the delta; callers
// that outlive it must copy.
func (d *Delta) Statements() []Statement { return d.stmts }

// ForEachStatement streams a canonical statement dump of g: a statement
// sequence that, replayed over an empty graph, rebuilds g snapshot-byte
// identically. This is the full-resync (bootstrap) form of the
// replication protocol — the "periodic full snapshot" a follower receives
// when it is new or has fallen behind the primary's compacted delta log.
//
// The ordering is chosen so that every interned table is reproduced
// exactly:
//
//  1. every node as a bare declaration, in node-id order (fixes the node
//     table);
//  2. type declarations grouped by type in interned-type order (fixes the
//     type table and every node's type; a type interned by a conflicting
//     declaration and therefore owning no nodes is re-interned through a
//     first-type-wins no-op against an already-typed anchor node);
//  3. every edge in edge-id order (fixes the edge list and, because
//     predicates are only ever interned at first edge use, the predicate
//     table).
//
// An edge whose predicate is the reserved TypePredicate cannot be
// expressed in the ingest convention and is reported as an error; no
// loader or mutator in this package can produce one.
func ForEachStatement(g *Graph, fn func(Statement) error) error {
	for u := 0; u < g.NumNodes(); u++ {
		if err := fn(Statement{S: g.NodeName(NodeID(u))}); err != nil {
			return err
		}
	}
	anchor := ""
	for t := 0; t < g.NumTypes(); t++ {
		typeName := g.TypeName(TypeID(t))
		nodes := g.NodesOfType(TypeID(t))
		if len(nodes) == 0 {
			// Orphan type: interned by a conflicting declaration against a
			// node that was already typed. Such a node's own type was
			// interned strictly earlier, so an anchor always exists by the
			// time the walk reaches the orphan.
			if anchor == "" {
				return fmt.Errorf("kg: orphan type %q with no previously typed node", typeName)
			}
			if err := fn(Statement{S: anchor, P: TypePredicate, O: typeName}); err != nil {
				return err
			}
			continue
		}
		for _, u := range nodes {
			if err := fn(Statement{S: g.NodeName(u), P: TypePredicate, O: typeName}); err != nil {
				return err
			}
		}
		if anchor == "" {
			anchor = g.NodeName(nodes[0])
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.EdgeAt(EdgeID(i))
		pred := g.PredName(e.Pred)
		if pred == TypePredicate {
			return fmt.Errorf("kg: edge %d uses the reserved predicate %q and cannot be dumped", i, TypePredicate)
		}
		st := Statement{S: g.NodeName(e.Src), P: pred, O: g.NodeName(e.Dst)}
		if err := fn(st); err != nil {
			return err
		}
	}
	return nil
}

// GraphStatements materializes ForEachStatement's canonical dump as a
// slice (tests and small graphs; the replication handler streams the
// callback form instead of holding the dump in memory).
func GraphStatements(g *Graph) ([]Statement, error) {
	out := make([]Statement, 0, g.NumNodes()+g.NumEdges())
	err := ForEachStatement(g, func(st Statement) error {
		out = append(out, st)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
