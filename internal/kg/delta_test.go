package kg

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// triple is one raw statement in the TSV/ingest convention (predicate
// "type" declares a type).
type triple struct{ s, p, o string }

// randomTriples generates a deterministic statement stream with repeated
// nodes, late type declarations, conflicting types and multi-word names.
func randomTriples(seed int64, n int) []triple {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"United", "Motor", "Works", "Germany", "Auto", "Club"}
	typeNames := []string{"Country", "Automobile", "Company", "Person"}
	preds := []string{"assembly", "product", "manufacturer", "designer"}
	name := func(i int) string {
		if i%3 == 0 {
			return fmt.Sprintf("%s %s %d", words[i%len(words)], words[(i*7)%len(words)], i%17)
		}
		return fmt.Sprintf("entity_%d", i%23)
	}
	out := make([]triple, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			out = append(out, triple{name(rng.Intn(40)), TypePredicate, typeNames[rng.Intn(len(typeNames))]})
			continue
		}
		out = append(out, triple{name(rng.Intn(40)), preds[rng.Intn(len(preds))], name(rng.Intn(40))})
	}
	return out
}

func triplesTSV(ts []triple) string {
	var sb strings.Builder
	for _, tr := range ts {
		fmt.Fprintf(&sb, "%s\t%s\t%s\n", tr.s, tr.p, tr.o)
	}
	return sb.String()
}

func mustReadTriples(t *testing.T, tsv string) *Graph {
	t.Helper()
	g, err := ReadTriples(strings.NewReader(tsv))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDeltaCommitEquivalence is the delta-commit acceptance property:
// committing a random split of a statement stream as (base graph, delta)
// yields a graph structurally identical to loading the whole stream at
// once — same ids, same CSR layout, same index contents — for several
// seeds and split ratios, including the all-in-delta (empty base) and
// all-in-base (empty delta) extremes.
func TestDeltaCommitEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 9, 33} {
		for _, ratio := range []float64{0, 0.3, 0.7, 1} {
			all := randomTriples(seed, 300)
			rng := rand.New(rand.NewSource(seed * 101))
			var base, rest []triple
			for _, tr := range all {
				if rng.Float64() < ratio {
					base = append(base, tr)
				} else {
					rest = append(rest, tr)
				}
			}
			// The reference graph loads the SAME statement order the
			// split pipeline sees: base statements, then delta statements.
			want := mustReadTriples(t, triplesTSV(base)+triplesTSV(rest))

			d := NewDelta(mustReadTriples(t, triplesTSV(base)))
			for _, tr := range rest {
				if err := d.ApplyTriple(tr.s, tr.p, tr.o); err != nil {
					t.Fatalf("seed %d ratio %g: ApplyTriple(%v): %v", seed, ratio, tr, err)
				}
			}
			got := d.Commit()
			assertGraphsIdentical(t, got, want)
		}
	}
}

// TestDeltaCommitSnapshotRoundTrip: a committed graph survives the binary
// codec like any built graph.
func TestDeltaCommitSnapshotRoundTrip(t *testing.T) {
	base := randomWorld(5, 60, 150)
	d := NewDelta(base)
	if _, err := d.AddTriple("Fresh Node One", "assembly", base.NodeName(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddNode("Fresh Node Two", "Country"); err != nil {
		t.Fatal(err)
	}
	g := d.Commit()
	g2, err := ReadSnapshot(strings.NewReader(string(snapshotBytes(t, g))))
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, g2, g)
}

// TestTypeFirstWins pins the documented overwrite rule in both loaders:
// the first declared type sticks, later conflicting declarations are
// ignored, and typing a previously untyped node succeeds.
func TestTypeFirstWins(t *testing.T) {
	t.Run("ReadTriples", func(t *testing.T) {
		g := mustReadTriples(t,
			"A\ttype\tCountry\n"+
				"A\ttype\tCity\n"+ // conflicting: ignored
				"A\tborders\tB\n"+
				"B\ttype\tCity\n") // late type for an edge-introduced node
		if got := g.TypeName(g.NodeType(g.NodeByName("A"))); got != "Country" {
			t.Fatalf("A's type = %q, want Country (first wins)", got)
		}
		if got := g.TypeName(g.NodeType(g.NodeByName("B"))); got != "City" {
			t.Fatalf("B's type = %q, want City", got)
		}
	})
	t.Run("Delta", func(t *testing.T) {
		base := mustReadTriples(t, "A\ttype\tCountry\nA\tborders\tB\n")
		d := NewDelta(base)
		changed, err := d.SetType("A", "City")
		if err != nil || changed {
			t.Fatalf("SetType on typed node: changed=%v err=%v, want false,nil", changed, err)
		}
		changed, err = d.SetType("B", "City")
		if err != nil || !changed {
			t.Fatalf("SetType on untyped node: changed=%v err=%v, want true,nil", changed, err)
		}
		// The conflicting declaration is also ignored via the triple path.
		if err := d.ApplyTriple("A", TypePredicate, "Village"); err != nil {
			t.Fatal(err)
		}
		g := d.Commit()
		if got := g.TypeName(g.NodeType(g.NodeByName("A"))); got != "Country" {
			t.Fatalf("A's type = %q, want Country", got)
		}
		if got := g.TypeName(g.NodeType(g.NodeByName("B"))); got != "City" {
			t.Fatalf("B's type = %q, want City", got)
		}
		// The retyped node must appear mid-bucket, in ascending id order.
		city := g.TypeByName("City")
		nodes := g.NodesOfType(city)
		for i := 1; i < len(nodes); i++ {
			if nodes[i-1] >= nodes[i] {
				t.Fatalf("NodesOfType(City) not ascending: %v", nodes)
			}
		}
	})
}

// TestDeltaRejectsInvalidInput: untrusted-input validation returns errors
// (never panics) for separator characters, empty names, unknown nodes.
// The comment marker '#' is invalid only for node names (they open TSV
// lines); predicates and type names tolerate it.
func TestDeltaRejectsInvalidInput(t *testing.T) {
	base := mustReadTriples(t, "A\tp\tB\n")
	d := NewDelta(base)
	for _, bad := range []string{"", "tab\tname", "line\nname", "cr\rname"} {
		if _, err := d.AddNode(bad, ""); err == nil {
			t.Errorf("AddNode(%q) accepted", bad)
		}
		if _, err := d.AddTriple("A", bad, "B"); err == nil && bad != "" {
			t.Errorf("AddTriple with predicate %q accepted", bad)
		}
		if bad != "" { // empty typeName legitimately means NoType
			if _, err := d.AddNode("ok", bad); err == nil {
				t.Errorf("AddNode with type %q accepted", bad)
			}
		}
		if err := d.ApplyTriple(bad, "p", "B"); err == nil {
			t.Errorf("ApplyTriple with subject %q accepted", bad)
		}
	}
	if _, err := d.AddNode("#comment", ""); err == nil {
		t.Error("AddNode with a leading '#' accepted (would be dropped as a comment on re-read)")
	}
	if err := d.ApplyTriple("#x", "p", "B"); err == nil {
		t.Error("ApplyTriple with a '#'-leading subject accepted")
	}
	if err := d.ApplyTriple("A", "p", "#x"); err == nil {
		t.Error("ApplyTriple with a '#'-leading edge object (a node name) accepted")
	}
	if _, err := d.AddEdge(NodeID(99), 0, "p"); err == nil {
		t.Error("AddEdge with unknown src accepted")
	}
	if _, err := d.AddEdge(0, -1, "p"); err == nil {
		t.Error("AddEdge with negative dst accepted")
	}
	if _, err := d.SetType("missing", "T"); err == nil {
		t.Error("SetType on unknown node accepted")
	}
	if !d.Empty() {
		t.Error("rejected mutations must leave the delta empty")
	}
}

// TestDeltaEmptyCountsInternedLabels: a conflicting type declaration whose
// type NAME is new mutates nothing visible (first type wins) but interns
// the name — an at-once build of the combined stream would too, so the
// delta must not report Empty, and committing it must intern the type.
func TestDeltaEmptyCountsInternedLabels(t *testing.T) {
	base := mustReadTriples(t, "A\ttype\tCountry\nA\tp\tB\n")
	d := NewDelta(base)
	if err := d.ApplyTriple("A", TypePredicate, "BrandNewType"); err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("delta interned a new type name but reports Empty")
	}
	g := d.Commit()
	if g.TypeByName("BrandNewType") == NoType {
		t.Fatal("committed graph lost the interned type name")
	}
	// Equivalence with the at-once build of the same stream.
	want := mustReadTriples(t, "A\ttype\tCountry\nA\tp\tB\nA\ttype\tBrandNewType\n")
	assertGraphsIdentical(t, g, want)
}

// TestDeltaSpentAfterCommit: the delta is single-shot.
func TestDeltaSpentAfterCommit(t *testing.T) {
	d := NewDelta(mustReadTriples(t, "A\tp\tB\n"))
	if _, err := d.AddTriple("C", "p", "A"); err != nil {
		t.Fatal(err)
	}
	d.Commit()
	if _, err := d.AddNode("D", ""); err == nil {
		t.Error("AddNode after Commit accepted")
	}
	if _, err := d.AddEdge(0, 1, "p"); err == nil {
		t.Error("AddEdge after Commit accepted")
	}
	if err := d.ApplyTriple("X", "p", "Y"); err == nil {
		t.Error("ApplyTriple after Commit accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("second Commit did not panic")
		}
	}()
	d.Commit()
}

// TestDeltaIndexesPatched: the committed graph's derived indexes reflect
// the delta — new names are findable by normalized form, initials and
// prefix, and an existing node's NodePreds gains newly incident
// predicates.
func TestDeltaIndexesPatched(t *testing.T) {
	base := mustReadTriples(t, "Audi_TT\ttype\tAutomobile\nAudi_TT\tassembly\tGermany\n")
	d := NewDelta(base)
	if _, err := d.AddNode("Bayerische Motoren Werke", "Company"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddTriple("Audi_TT", "designCompany", "Bayerische Motoren Werke"); err != nil {
		t.Fatal(err)
	}
	g := d.Commit()

	bmw := g.NodeByName("Bayerische Motoren Werke")
	if bmw == NoNode {
		t.Fatal("new node missing")
	}
	if ids := g.NodesByNormName("bayerische_motoren_werke"); !eqSlices(ids, []NodeID{bmw}) {
		t.Errorf("NodesByNormName = %v, want [%d]", ids, bmw)
	}
	if ids := g.NodesByInitials("bmw"); !eqSlices(ids, []NodeID{bmw}) {
		t.Errorf("NodesByInitials(bmw) = %v, want [%d]", ids, bmw)
	}
	found := false
	for _, id := range g.NodesByProperNormPrefix("bayerische") {
		if id == bmw {
			found = true
		}
	}
	if !found {
		t.Error("prefix index does not surface the new node")
	}
	// Audi_TT had only "assembly"; the delta adds "designCompany".
	audi := g.NodeByName("Audi_TT")
	preds := g.NodePreds(audi)
	want := []PredID{g.PredByName("assembly"), g.PredByName("designCompany")}
	if !eqSlices(preds, want) {
		t.Errorf("NodePreds(Audi_TT) = %v, want %v", preds, want)
	}
	// The untouched base node shares its span semantics.
	ger := g.NodeByName("Germany")
	if got := g.NodePreds(ger); len(got) != 1 || got[0] != g.PredByName("assembly") {
		t.Errorf("NodePreds(Germany) = %v", got)
	}
	// New type visible through the type vocabulary index.
	if ids := g.TypesByNormName("company"); len(ids) != 1 || ids[0] != g.TypeByName("Company") {
		t.Errorf("TypesByNormName(company) = %v", ids)
	}
}
