package transform

import (
	"testing"

	"semkg/internal/kg"
)

func testGraph() *kg.Graph {
	b := kg.NewBuilder(8, 8)
	b.AddNode("Audi_TT", "Automobile")
	b.AddNode("BMW_320", "Automobile")
	b.AddNode("Germany", "Country")
	b.AddNode("France", "Country")
	b.AddNode("Peter", "Person")
	return b.Build()
}

func TestLibraryExpand(t *testing.T) {
	lib := NewLibrary()
	lib.AddSynonyms("Car", "Motorcar", "Auto", "Vehicle", "Automobile")
	lib.AddAbbreviation("GER", "Germany")

	got := lib.Expand("Car")
	if len(got) != 5 {
		t.Fatalf("Expand(Car) = %v, want 5 terms", got)
	}
	if got[0] != "Car" {
		t.Errorf("Expand should list the queried term first, got %v", got)
	}
	if len(lib.Expand("GER")) != 2 {
		t.Errorf("Expand(GER) = %v", lib.Expand("GER"))
	}
	if len(lib.Expand("unknown")) != 1 {
		t.Errorf("Expand(unknown) = %v, want just the term", lib.Expand("unknown"))
	}
}

func TestLibraryTransitiveMerge(t *testing.T) {
	lib := NewLibrary()
	lib.AddSynonyms("Car", "Auto")
	lib.AddSynonyms("Auto", "Automobile")
	if !lib.Same("Car", "Automobile") {
		t.Error("transitive synonym classes should merge")
	}
	if !lib.Same("car", "CAR") {
		t.Error("normalized-identical terms are always Same")
	}
	if lib.Same("Car", "Banana") {
		t.Error("unrelated terms should not be Same")
	}
}

func TestLibraryEmptyAdd(t *testing.T) {
	lib := NewLibrary()
	lib.AddSynonyms() // must not panic
	if lib.Same("a", "b") {
		t.Error("empty library should not relate distinct terms")
	}
}

func TestMatchTypesIdentical(t *testing.T) {
	m := NewMatcher(testGraph(), nil)
	got := m.MatchTypes("Automobile")
	if len(got) != 1 {
		t.Fatalf("MatchTypes(Automobile) = %v, want 1 type", got)
	}
	if m.MatchTypes("") != nil {
		t.Error("MatchTypes(\"\") should be nil")
	}
}

func TestMatchTypesSynonym(t *testing.T) {
	lib := NewLibrary()
	lib.AddSynonyms("Car", "Automobile")
	m := NewMatcher(testGraph(), lib)
	got := m.MatchTypes("Car")
	if len(got) != 1 {
		t.Fatalf("MatchTypes(Car) via synonym = %v, want 1", got)
	}
}

func TestMatchTypesNoLibraryNoMatch(t *testing.T) {
	m := NewMatcher(testGraph(), nil)
	// "Car" is neither identical nor an abbreviation of "Automobile":
	// this is exactly the paper's G1_Q mismatch case.
	if got := m.MatchTypes("Car"); len(got) != 0 {
		t.Errorf("MatchTypes(Car) without library = %v, want none", got)
	}
}

func TestMatchNameAbbreviationFallback(t *testing.T) {
	m := NewMatcher(testGraph(), nil)
	g := testGraph()
	got := m.MatchName("GER")
	if len(got) != 1 || g.NodeName(got[0]) != "Germany" {
		t.Fatalf("MatchName(GER) = %v, want [Germany]", names(g, got))
	}
	m.FallbackScan = false
	if got := m.MatchName("GER"); len(got) != 0 {
		t.Errorf("MatchName(GER) without fallback = %v, want none", names(g, got))
	}
}

func TestMatchNodeSpecific(t *testing.T) {
	lib := NewLibrary()
	lib.AddAbbreviation("GER", "Germany")
	g := testGraph()
	m := NewMatcher(g, lib)

	got := m.MatchNode("Germany", "Country")
	if len(got) != 1 || g.NodeName(got[0]) != "Germany" {
		t.Fatalf("MatchNode(Germany,Country) = %v", names(g, got))
	}
	got = m.MatchNode("GER", "Country")
	if len(got) != 1 || g.NodeName(got[0]) != "Germany" {
		t.Fatalf("MatchNode(GER,Country) = %v", names(g, got))
	}
	// Type filter rejects mismatched types.
	if got := m.MatchNode("Germany", "Person"); len(got) != 0 {
		t.Errorf("MatchNode(Germany,Person) = %v, want none", names(g, got))
	}
}

func TestMatchNodeTarget(t *testing.T) {
	g := testGraph()
	m := NewMatcher(g, nil)
	got := m.MatchNode("", "Automobile")
	if len(got) != 2 {
		t.Fatalf("MatchNode(target Automobile) = %v, want 2", names(g, got))
	}
	if got := m.MatchNode("", "Spaceship"); len(got) != 0 {
		t.Errorf("MatchNode(target Spaceship) = %v, want none", names(g, got))
	}
}

func TestMatchNodeUntypedCandidate(t *testing.T) {
	b := kg.NewBuilder(2, 0)
	b.AddNode("Mystery", "") // untyped node
	g := b.Build()
	m := NewMatcher(g, nil)
	got := m.MatchNode("Mystery", "Country")
	if len(got) != 1 {
		t.Errorf("untyped node should still match by name, got %v", names(g, got))
	}
}

func names(g *kg.Graph, ids []kg.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.NodeName(id)
	}
	return out
}
