package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"semkg/internal/api"
	"semkg/internal/serve"
)

const keywordBody = `{"keywords":"automobile assembly germany","options":{"k":10,"tau":0.75}}`

// TestKeywordEndpoint: bare keywords over POST /v1/keyword return the same
// German cars the structured query does, blended and deduplicated.
func TestKeywordEndpoint(t *testing.T) {
	srv := testServer(t, serve.Config{})

	resp := post(t, srv, "/v1/keyword", keywordBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	res, err := api.DecodeKeywordResult(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 || res.Executed < 1 {
		t.Fatalf("no candidates executed: %+v", res)
	}
	got := make(map[string]int)
	for _, a := range res.Answers {
		got[a.Entity]++
	}
	for _, want := range []string{"BMW_320", "Audi_TT"} {
		if got[want] == 0 {
			t.Errorf("missing answer %s (got %v)", want, res.Answers)
		}
	}
	for entity, n := range got {
		if n > 1 {
			t.Errorf("entity %s appears %d times; blending must dedup", entity, n)
		}
	}
	if len(res.Runs) != res.Executed {
		t.Errorf("runs = %d, executed = %d", len(res.Runs), res.Executed)
	}
	// Every candidate query is replayable against /v1/search.
	q, err := json.Marshal(res.Candidates[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	replay := post(t, srv, "/v1/search", `{"query":`+string(q)+`}`)
	replay.Body.Close()
	if replay.StatusCode != http.StatusOK {
		t.Errorf("candidate query not replayable: status %d", replay.StatusCode)
	}
}

// TestKeywordStreamEndpoint: ?stream=1 yields NDJSON framed by an assembly
// event and a terminal blended result, with engine events attributed to
// candidates in between.
func TestKeywordStreamEndpoint(t *testing.T) {
	srv := testServer(t, serve.Config{})

	resp := post(t, srv, "/v1/keyword?stream=1", keywordBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	var events []api.KeywordEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := api.DecodeKeywordEvent(line)
		if err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("want at least assembly + result events, got %d", len(events))
	}
	first, last := events[0], events[len(events)-1]
	if first.Event != api.KeywordEventAssembly || len(first.Candidates) == 0 || first.Executed < 1 {
		t.Fatalf("first event = %+v, want assembly with candidates", first)
	}
	if last.Event != api.KeywordEventResult || last.Result == nil {
		t.Fatalf("last event = %+v, want terminal result", last)
	}
	for _, ev := range events[1 : len(events)-1] {
		if ev.Event != api.KeywordEventEngine {
			t.Fatalf("middle event kind %q", ev.Event)
		}
		if ev.Candidate == nil || *ev.Candidate < 0 || *ev.Candidate >= first.Executed {
			t.Fatalf("engine event lacks a valid candidate attribution: %+v", ev)
		}
		if ev.Inner == nil {
			t.Fatalf("engine event lacks inner payload: %+v", ev)
		}
	}

	// The streamed terminal result agrees with the batch endpoint.
	batchResp := post(t, srv, "/v1/keyword", keywordBody)
	defer batchResp.Body.Close()
	batch, err := api.DecodeKeywordResult(batchResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Answers) != len(last.Result.Answers) {
		t.Fatalf("stream answers %d != batch answers %d", len(last.Result.Answers), len(batch.Answers))
	}
	for i := range batch.Answers {
		if batch.Answers[i].Entity != last.Result.Answers[i].Entity ||
			batch.Answers[i].Blended != last.Result.Answers[i].Blended {
			t.Errorf("answer %d differs: stream %+v vs batch %+v",
				i, last.Result.Answers[i], batch.Answers[i])
		}
	}
}

// TestSuggestEndpoint: completions come straight from the name indexes.
func TestSuggestEndpoint(t *testing.T) {
	srv := testServer(t, serve.Config{})

	resp, err := http.Get(srv.URL + "/v1/suggest?q=ger&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	res, err := api.DecodeSuggestResult(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Suggestions {
		if s.Text == "Germany" && s.Kind == "entity" {
			found = true
		}
	}
	if !found {
		t.Errorf("ger did not suggest Germany: %+v", res.Suggestions)
	}
	if len(res.Suggestions) > 5 {
		t.Errorf("limit=5 ignored: %d suggestions", len(res.Suggestions))
	}

	// Suggestions never run a search through the serving pipeline.
	vresp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vars struct {
		Serve serve.Stats `json:"semkgd_serve"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Serve.PipelineRuns != 0 {
		t.Errorf("suggest ran %d pipelines, want 0", vars.Serve.PipelineRuns)
	}
}

// TestKeywordBadRequests: parse and validation failures are 400s with a
// JSON error body, on all three new routes.
func TestKeywordBadRequests(t *testing.T) {
	srv := testServer(t, serve.Config{})

	cases := []struct {
		name, method, path, body string
	}{
		{"malformed JSON", "POST", "/v1/keyword", `{`},
		{"unknown field", "POST", "/v1/keyword", `{"keywords":"x","bogus":1}`},
		{"empty keywords", "POST", "/v1/keyword", `{"keywords":"   "}`},
		{"negative candidates", "POST", "/v1/keyword", `{"keywords":"germany","max_candidates":-2}`},
		{"tau > 1", "POST", "/v1/keyword", `{"keywords":"germany","options":{"tau":1.5}}`},
		{"empty keywords streamed", "POST", "/v1/keyword?stream=1", `{"keywords":""}`},
		{"suggest missing q", "GET", "/v1/suggest", ""},
		{"suggest bad limit", "GET", "/v1/suggest?q=ger&limit=nope", ""},
	}
	for _, tc := range cases {
		var resp *http.Response
		if tc.method == "GET" {
			var err error
			resp, err = http.Get(srv.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			resp = post(t, srv, tc.path, tc.body)
		}
		var msg map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%v)", tc.name, resp.StatusCode, msg)
		}
		if msg["error"] == "" {
			t.Errorf("%s: missing JSON error body", tc.name)
		}
	}
}
