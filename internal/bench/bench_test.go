package bench

import (
	"strings"
	"testing"

	"semkg/internal/datagen"
	"semkg/internal/embed"
)

// testEnv returns a small, cached environment shared by these tests. The
// experiment tests regenerate full evaluation artifacts and train an
// embedding; they are skipped in -short mode to keep CI fast.
func testEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment environments train embeddings; skipped in -short mode")
	}
	env, err := Cached(Config{
		Profile: datagen.DBpediaLike(0.2),
		Embed:   embed.Config{Dim: 32, Epochs: 80, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestCachedReuse(t *testing.T) {
	a := testEnv(t)
	b := testEnv(t)
	if a != b {
		t.Error("Cached should return the same environment")
	}
	if a.TrainTime <= 0 || a.ModelBytes <= 0 {
		t.Errorf("offline stats missing: %+v", a.TrainTime)
	}
}

func TestRunTable1Shape(t *testing.T) {
	env := testEnv(t)
	res := RunTable1(env)
	if len(res.Rows) != 8 {
		t.Fatalf("Table I has %d rows, want 8 methods", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Method] = r
	}
	sgq := byName["SGQ"]
	for i := 0; i < 4; i++ {
		if !sgq.Found[i] {
			t.Errorf("SGQ failed variant G%d", i+1)
		}
	}
	// Headline claim: SGQ's recall on the canonical variant beats the
	// exact-match methods, which only recover the direct schema.
	if sgq.PR[3].Recall <= byName["QGA"].PR[3].Recall {
		t.Errorf("SGQ recall %.2f should beat QGA %.2f",
			sgq.PR[3].Recall, byName["QGA"].PR[3].Recall)
	}
	if sgq.PR[3].Recall <= byName["gStore"].PR[3].Recall {
		t.Errorf("SGQ recall %.2f should beat gStore %.2f",
			sgq.PR[3].Recall, byName["gStore"].PR[3].Recall)
	}
	// gStore cannot handle the synonym-type and abbreviated-name variants.
	if byName["gStore"].Found[0] || byName["gStore"].Found[1] {
		t.Error("gStore should fail G1 and G2")
	}
	// SLQ and QGA handle the node mismatches through the library.
	if !byName["SLQ"].Found[0] || !byName["QGA"].Found[1] {
		t.Error("SLQ/QGA should handle node-mismatch variants")
	}
	out := res.Render().String()
	if !strings.Contains(out, "SGQ") || !strings.Contains(out, "x") {
		t.Errorf("render missing expected cells:\n%s", out)
	}
}

func TestRunFigureShape(t *testing.T) {
	env := testEnv(t)
	res := RunFigure(env, []int{10, 40})
	if len(res.Systems) != 6 {
		t.Fatalf("figure has %d systems, want 6", len(res.Systems))
	}
	idx := map[string]int{}
	for i, s := range res.Systems {
		idx[s] = i
	}
	for si := range res.Systems {
		for ki := range res.Ks {
			for _, v := range []float64{res.P[si][ki], res.R[si][ki], res.F1[si][ki]} {
				if v < 0 || v > 1 {
					t.Fatalf("metric out of range: %v", v)
				}
			}
		}
	}
	last := len(res.Ks) - 1
	sgq, phom := idx["SGQ"], idx["p-hom"]
	if res.F1[sgq][last] <= res.F1[phom][last] {
		t.Errorf("SGQ F1 %.2f should beat p-hom %.2f at k=%d",
			res.F1[sgq][last], res.F1[phom][last], res.Ks[last])
	}
	// Recall grows with k for SGQ.
	if res.R[sgq][last] < res.R[sgq][0]-1e-9 {
		t.Errorf("SGQ recall decreased with k: %v", res.R[sgq])
	}
	tables := res.Render()
	if len(tables) != 4 {
		t.Fatalf("figure renders %d tables, want 4 panels", len(tables))
	}
}

func TestRunFig15Shape(t *testing.T) {
	env := testEnv(t)
	res := RunFig15(env, 20, []float64{0.3, 0.9, 3.0})
	if len(res.BoundsMS) != 3 {
		t.Fatalf("bounds = %v", res.BoundsMS)
	}
	// More time must not hurt effectiveness substantially (tie noise from
	// scheduling is tolerated).
	if res.F1[2] < res.F1[0]-0.1 {
		t.Errorf("F1 degraded with larger bound: %v", res.F1)
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}

func TestRunTable5Shape(t *testing.T) {
	env := testEnv(t)
	res, err := RunTable5(env, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pivots) < 2 {
		t.Fatalf("pivot comparison needs >= 2 pivots, got %v", res.Pivots)
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}

func TestRunTable6Shape(t *testing.T) {
	env := testEnv(t)
	res := RunTable6(env)
	if len(res.Rows) < 2 {
		t.Fatalf("Table VI rows = %d", len(res.Rows))
	}
	if res.Rows[0].Class != "Simple" || res.Rows[0].RandomMeasured {
		t.Errorf("first row should be Simple without Random: %+v", res.Rows[0])
	}
	for _, row := range res.Rows[1:] {
		if !row.RandomMeasured {
			t.Errorf("%s should measure Random", row.Class)
		}
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}

func TestRunTable7Shape(t *testing.T) {
	env := testEnv(t)
	res := RunTable7([]*Env{env}, 5)
	if len(res.PCC) == 0 {
		t.Fatal("user study produced no queries")
	}
	strong := 0
	for _, p := range res.PCC {
		if p < -1 || p > 1 {
			t.Fatalf("PCC out of range: %v", p)
		}
		if p >= 0.5 {
			strong++
		}
	}
	// The paper reports strong correlation on 16/20 queries; at our scale
	// at least half should be strong.
	if strong*2 < len(res.PCC) {
		t.Errorf("only %d/%d strong correlations", strong, len(res.PCC))
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}

func TestRunNoiseShape(t *testing.T) {
	env := testEnv(t)
	res := RunNoise(env, 20, []float64{0, 0.4})
	if len(res.NodeF1) != 2 || len(res.EdgeF1) != 2 {
		t.Fatalf("noise sweep incomplete: %+v", res)
	}
	// Effectiveness at 40% noise must not exceed the clean run (node or
	// edge): noise can only hurt or tie.
	if res.NodeF1[1] > res.NodeF1[0]+0.05 {
		t.Errorf("node noise improved F1: %v", res.NodeF1)
	}
	if res.EdgeF1[1] > res.EdgeF1[0]+0.05 {
		t.Errorf("edge noise improved F1: %v", res.EdgeF1)
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}

func TestRunTable9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep trains embeddings; skipped in -short mode")
	}
	res, err := RunTable9([]float64{0.1, 0.2}, []int{5, 10},
		embed.Config{Dim: 16, Epochs: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[1].Nodes <= res.Rows[0].Nodes {
		t.Errorf("scales not increasing: %d vs %d", res.Rows[0].Nodes, res.Rows[1].Nodes)
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}

func TestRunTable10Shape(t *testing.T) {
	env := testEnv(t)
	res := RunTable10(env, 20)
	if len(res.NHats) != 4 || len(res.Taus) != 4 {
		t.Fatalf("sweep incomplete: %+v", res)
	}
	// Larger n̂ cannot reduce recall (more schemas reachable).
	if res.NHatPR[3].Recall < res.NHatPR[0].Recall-1e-9 {
		t.Errorf("recall decreased with n̂: %v -> %v",
			res.NHatPR[0].Recall, res.NHatPR[3].Recall)
	}
	// The largest τ prunes correct schemas: recall at τ=0.8 should not
	// exceed recall at τ=0.5.
	if res.TauPR[3].Recall > res.TauPR[0].Recall+1e-9 {
		t.Errorf("recall grew with τ: %v -> %v",
			res.TauPR[0].Recall, res.TauPR[3].Recall)
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}

func TestRunAblationShape(t *testing.T) {
	env := testEnv(t)
	res := RunAblation(env, 20)
	if len(res.Rows) != 3 {
		t.Fatalf("ablation rows = %d", len(res.Rows))
	}
	def, unin, pruned := res.Rows[0], res.Rows[1], res.Rows[2]
	if unin.Popped < def.Popped {
		t.Errorf("uninformed search popped fewer states (%d) than informed (%d)",
			unin.Popped, def.Popped)
	}
	if pruned.Popped > def.Popped {
		t.Errorf("visited-set pruning popped more states (%d) than exact (%d)",
			pruned.Popped, def.Popped)
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}
