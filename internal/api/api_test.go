package api

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"semkg/internal/core"
	"semkg/internal/query"
)

func sampleGraph() *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "Germany", Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: "assembly"}},
	}
}

func TestQueryRoundTrip(t *testing.T) {
	want := sampleGraph()
	data, err := EncodeQuery(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuery(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestDecodeQueryLegacyCapitalizedKeys(t *testing.T) {
	// Pre-api query documents used Go-style field names; encoding/json
	// matches case-insensitively, so they keep working.
	doc := `{"Nodes":[{"ID":"v1","Type":"Automobile"},{"ID":"v2","Name":"Germany"}],
	         "Edges":[{"From":"v1","To":"v2","Predicate":"assembly"}]}`
	g, err := DecodeQuery([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 || g.Nodes[0].ID != "v1" || g.Edges[0].Predicate != "assembly" {
		t.Fatalf("legacy decode: %+v", g)
	}
}

func TestDecodeQueryRejectsUnknownFields(t *testing.T) {
	bad := []string{
		`{"nodes":[],"edges":[],"extra":1}`,
		`{"nodes":[{"id":"v1","typ":"Automobile"}],"edges":[]}`,
		`{"nodes":[{"id":"v1","type":"A"}],"edges":[{"from":"a","to":"b","pred":"x"}]}`,
		`{"nodes":[]} trailing`,
	}
	for _, doc := range bad {
		if _, err := DecodeQuery([]byte(doc)); err == nil {
			t.Errorf("decoded %q without error", doc)
		}
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	want := core.Options{
		K: 7, Tau: 0.65, MaxHops: 3, PivotNode: "v1",
		PruneVisited: true, NoHeuristic: true,
		TimeBound: 50 * time.Millisecond, AlertRatio: 0.9,
	}
	data, err := json.Marshal(OptionsFrom(want))
	if err != nil {
		t.Fatal(err)
	}
	var wire Options
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if got := wire.Core(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestDurationForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"1.5ms"`), &d); err != nil || time.Duration(d) != 1500*time.Microsecond {
		t.Errorf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`2500`), &d); err != nil || time.Duration(d) != 2500 {
		t.Errorf("numeric (ns) form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Error("bogus duration accepted")
	}
	out, err := json.Marshal(Duration(50 * time.Millisecond))
	if err != nil || string(out) != `"50ms"` {
		t.Errorf("marshal: %s %v", out, err)
	}
}

func TestDecodeSearchRequest(t *testing.T) {
	doc := `{"query":{"nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany"}],
	                  "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]},
	         "options":{"k":5,"tau":0.7,"time_bound":"25ms"}}`
	g, opts, err := DecodeSearchRequest(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 || opts.K != 5 || opts.Tau != 0.7 || opts.TimeBound != 25*time.Millisecond {
		t.Fatalf("decode: %+v %+v", g, opts)
	}
	if _, _, err := DecodeSearchRequest(strings.NewReader(`{"query":{},"options":{"kk":1}}`)); err == nil {
		t.Error("unknown option field accepted")
	}
}

func TestEventWireForms(t *testing.T) {
	cases := []core.Event{
		core.ProgressEvent{Sub: 0, Collected: 3},
		core.ProgressEvent{Sub: 2, Collected: 9, Done: true},
		core.PhaseEvent{Phase: core.PhaseSearch},
		core.PhaseEvent{Phase: core.PhaseAlert, Elapsed: time.Millisecond, Projected: 2 * time.Millisecond},
		core.PhaseEvent{Phase: core.PhaseAssemble, Collected: []int{4, 7}},
		core.TopKEvent{Round: 3, LowerK: 1.2, UpperMax: 1.9, Answers: []core.Answer{{PivotName: "BMW_320", Score: 0.9}}},
		core.ResultEvent{Result: &core.Result{Answers: []core.Answer{{PivotName: "X", Score: 1}}, Approximate: true}},
	}
	kinds := []string{EventProgress, EventProgress, EventPhase, EventPhase, EventPhase, EventTopK, EventResult}
	for i, ev := range cases {
		line, err := EncodeEvent(ev)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		wire, err := DecodeEvent(line)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if wire.Event != kinds[i] {
			t.Errorf("case %d: kind %q, want %q", i, wire.Event, kinds[i])
		}
	}
	// Sub survives as an explicit 0 (pointer field, not omitempty-dropped).
	line, _ := EncodeEvent(core.ProgressEvent{Sub: 0, Collected: 1})
	wire, _ := DecodeEvent(line)
	if wire.Sub == nil || *wire.Sub != 0 {
		t.Errorf("sub 0 lost on the wire: %s", line)
	}
	if _, err := DecodeEvent([]byte(`{"collected":3}`)); err == nil {
		t.Error("event without discriminator accepted")
	}
}
