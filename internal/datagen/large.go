package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"semkg/internal/kg"
	"semkg/internal/query"
)

// Large-world generation: the million-node scale-up datasets behind
// kggen -nodes and kgbench -exp load.
//
// The schema-driven Generate world tops out around 10^4 entities — it
// materializes a Dataset with per-entity bookkeeping (autoInfo records,
// truth sets, memoized name tables) that exists to produce ground-truth
// workloads, not scale. GenerateLarge streams nodes and edges straight
// into a kg.Builder instead: no triple list, no Dataset, no memo/taken
// maps — per-node cost is the node's name and type (which the finished
// graph holds anyway) and per-edge cost is three int32s in the builder.
// Realism comes from the distributions, not a schema:
//
//   - in-degree is power-law: edge destinations are drawn rank-skewed, so
//     a few early nodes become six-figure-degree hubs and the tail is
//     sparse, as in real knowledge graphs;
//   - types are zipf-assigned from a bounded vocabulary (a few huge
//     classes, many small ones);
//   - predicates are zipf-used (a handful of workhorse relations carry
//     most edges);
//   - names are multi-word spellings from the zipf-ranked nameVocab with
//     a numeric suffix for uniqueness, so the normalized-name, prefix and
//     initials indexes are exercised at full vocabulary size without a
//     uniqueness map.
//
// Everything derives deterministically from the profile seed.

// LargeProfile sizes a streaming large world.
type LargeProfile struct {
	// Name labels the dataset.
	Name string
	// Seed drives all randomness.
	Seed int64
	// Nodes is the exact node count.
	Nodes int
	// AvgDegree is the average number of edges per node (each edge also
	// appears in its destination's adjacency, so graph degree averages
	// 2×AvgDegree). Edges = Nodes × AvgDegree.
	AvgDegree float64
	// Types is the entity-type vocabulary size; assignment is zipf.
	Types int
	// Preds is the predicate vocabulary size; usage is zipf.
	Preds int
	// DegreeSkew shapes the power-law in-degree: destinations are drawn as
	// floor(Nodes × u^DegreeSkew) for uniform u, so larger values
	// concentrate more edges on the low-id hubs. 1 is uniform.
	DegreeSkew float64
}

// LargeWorld is the canonical large profile at a given node count: degree,
// type, predicate and skew parameters sized like a mid-size encyclopedic
// knowledge graph.
func LargeWorld(nodes int) LargeProfile {
	return LargeProfile{
		Name:       fmt.Sprintf("large-%d", nodes),
		Seed:       1,
		Nodes:      nodes,
		AvgDegree:  3,
		Types:      48,
		Preds:      96,
		DegreeSkew: 3,
	}
}

func (p LargeProfile) withDefaults() LargeProfile {
	if p.AvgDegree <= 0 {
		p.AvgDegree = 3
	}
	if p.Types <= 0 {
		p.Types = 48
	}
	if p.Preds <= 0 {
		p.Preds = 96
	}
	if p.DegreeSkew <= 0 {
		p.DegreeSkew = 3
	}
	return p
}

// largeTypeName spells the i-th entity type. Types reuse vocabulary words
// so the type-name index sees realistic spellings.
func largeTypeName(i int) string {
	return fmt.Sprintf("%sKind%d", nameVocab[i%len(nameVocab)], i)
}

// largePredName spells the i-th predicate. Predicate embeddings at this
// scale come from name-seeded vectors (embed.Model.SpaceFor), so distinct
// names give distinct, deterministic semantics.
func largePredName(i int) string {
	return fmt.Sprintf("rel%s%d", nameVocab[(i*7)%len(nameVocab)], i)
}

// GenerateLargeBuilder streams the world of p into a fresh kg.Builder and
// returns it unfinalized. kgbench -exp load uses this to time
// Builder.BuildWorkers separately at chosen worker counts; everyone else
// wants GenerateLarge.
func GenerateLargeBuilder(p LargeProfile) *kg.Builder {
	p = p.withDefaults()
	n := p.Nodes
	m := int(float64(n) * p.AvgDegree)
	rng := rand.New(rand.NewSource(p.Seed))
	nameRng := rand.New(rand.NewSource(p.Seed ^ nameSeedSalt))
	nameZipf := rand.NewZipf(nameRng, 1.25, 2.0, uint64(len(nameVocab)-1))
	typeZipf := rand.NewZipf(rng, 1.4, 1.8, uint64(p.Types-1))
	predZipf := rand.NewZipf(rng, 1.3, 2.0, uint64(p.Preds-1))

	types := make([]string, p.Types)
	for i := range types {
		types[i] = largeTypeName(i)
	}
	preds := make([]string, p.Preds)
	for i := range preds {
		preds[i] = largePredName(i)
	}

	b := kg.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		// 1–3 vocabulary words plus the id: unique by construction, no
		// taken-map, and multi-word enough to populate the initials and
		// prefix indexes densely.
		w1 := nameVocab[nameZipf.Uint64()]
		var name string
		switch x := nameRng.Float64(); {
		case x < 0.35:
			name = fmt.Sprintf("%s %d", w1, i)
		case x < 0.85:
			name = fmt.Sprintf("%s %s %d", w1, nameVocab[nameZipf.Uint64()], i)
		default:
			name = fmt.Sprintf("%s %s %s %d", w1, nameVocab[nameZipf.Uint64()], nameVocab[nameZipf.Uint64()], i)
		}
		b.AddNode(name, types[typeZipf.Uint64()])
	}
	for i := 0; i < m; i++ {
		src := kg.NodeID(rng.Intn(n))
		dst := kg.NodeID(float64(n) * math.Pow(rng.Float64(), p.DegreeSkew))
		if dst >= kg.NodeID(n) { // u^skew rounding at the boundary
			dst = kg.NodeID(n - 1)
		}
		if dst == src {
			dst = kg.NodeID((int(dst) + 1) % n)
		}
		b.AddEdge(src, dst, preds[predZipf.Uint64()])
	}
	return b
}

// GenerateLarge builds the large world of p.
func GenerateLarge(p LargeProfile) *kg.Graph {
	return GenerateLargeBuilder(p).Build()
}

// LargeQueries derives a load workload for a generated large world:
// count single-edge queries "typed focus --popular-predicate--> hub
// anchor", the shape the serving benchmarks drive. Anchors are drawn from
// the moderate-rank hub band (high in-degree from the power law, but not
// the top hubs, whose expansions would dwarf every other request), and
// focus types and predicates cycle through the zipf head, so the queries
// differ in anchors, end sets and weight rows while staying answerable.
func LargeQueries(g *kg.Graph, p LargeProfile, count int) []*query.Graph {
	p = p.withDefaults()
	out := make([]*query.Graph, 0, count)
	for i := 0; i < count; i++ {
		anchor := kg.NodeID(32 + i*7%1024)
		if int(anchor) >= g.NumNodes() {
			anchor = kg.NodeID(i % g.NumNodes())
		}
		focusType := largeTypeName((2 + i%12) % p.Types)
		pred := largePredName(i % 8 % p.Preds)
		out = append(out, &query.Graph{
			Nodes: []query.Node{
				{ID: "v1", Type: focusType},
				{ID: "v2", Name: g.NodeName(anchor), Type: g.TypeName(g.NodeType(anchor))},
			},
			Edges: []query.Edge{{From: "v1", To: "v2", Predicate: pred}},
		})
	}
	return out
}
