package serve

import (
	"context"

	"semkg/internal/core"
)

// Stream is a serving-layer event stream: a live pipeline subscription, a
// singleflight replay of the leader's log, or a result-cache replay — the
// consumer cannot tell the difference, and the event sequence is identical
// in all three cases. Consume Events until the channel closes, or call
// Result to block for the terminal outcome.
type Stream struct {
	events chan core.Event
	log    *eventLog
	sealed <-chan struct{}
	ctx    context.Context
}

// Events returns the event channel; it closes after the terminal
// ResultEvent (or after the subscriber's context is cancelled). A consumer
// that abandons the channel without draining should cancel its context,
// which releases the delivery goroutine (and the stream's flight
// reference).
func (s *Stream) Events() <-chan core.Event { return s.events }

// Result blocks until the underlying execution terminates and returns the
// terminal outcome. It does not require Events to be drained — it waits on
// the execution's log, not on event delivery. The error is non-nil only
// when the execution failed or the subscriber's context was cancelled
// first.
func (s *Stream) Result() (*core.Result, error) {
	// Prefer the sealed outcome when both it and the cancellation are
	// ready: a consumer that cancels after completion still gets the
	// result it already paid for.
	select {
	case <-s.sealed:
		return s.log.outcome()
	default:
	}
	select {
	case <-s.sealed:
		return s.log.outcome()
	case <-s.ctx.Done():
		return nil, s.ctx.Err()
	}
}

// subscribe replays log into a new Stream: recorded prefix first, then
// live events as the leader appends them. sealed closes when the log holds
// its terminal outcome. onDone (may be nil) runs exactly once when event
// delivery ends — the flight-reference release.
func subscribe(ctx context.Context, log *eventLog, sealed <-chan struct{}, onDone func()) *Stream {
	s := &Stream{events: make(chan core.Event, streamBuffer), log: log, sealed: sealed, ctx: ctx}
	go func() {
		defer func() {
			if onDone != nil {
				onDone()
			}
			close(s.events)
		}()
		i := 0
		for {
			evs, done, changed := log.since(i)
			for _, ev := range evs {
				select {
				case s.events <- ev:
					i++
				case <-ctx.Done():
					return
				}
			}
			if done {
				return
			}
			select {
			case <-changed:
			case <-ctx.Done():
				return
			}
		}
	}()
	return s
}

// streamBuffer sizes a subscriber's event channel. Unlike the engine-level
// stream, nothing is dropped here: the log holds the full sequence and the
// delivery goroutine blocks until the consumer catches up or its context
// dies (Result never depends on delivery).
const streamBuffer = 64

// sealedNow is a pre-closed channel for replays of already-complete logs.
var sealedNow = func() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()
