package tbq

import (
	"context"
	"math"
	"testing"
	"time"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/ta"
)

// stubWeighter mirrors semgraph.Weighter for a single-segment sub-query.
type stubWeighter struct {
	g *kg.Graph
	w []float64 // per predicate
}

func (sw *stubWeighter) Weight(p kg.PredID, _ int) float64 { return sw.w[p] }

func (sw *stubWeighter) NodeMax(u kg.NodeID, _ int) float64 {
	best := 1e-6
	for _, h := range sw.g.Neighbors(u) {
		if w := sw.w[h.Pred]; w > best {
			best = w
		}
	}
	return best
}

// hubGraph builds anchor -> mids -> ends. The mid->end predicate depends
// only on the end, and its weight is strictly decreasing in the end index,
// so every end entity has a distinct best pss (no top-k boundary ties).
func hubGraph(nMids, nEnds int) (*kg.Graph, *stubWeighter, astar.SubQuery) {
	b := kg.NewBuilder(nMids+nEnds+1, nMids*(nEnds+1))
	anchor := b.AddNode("anchor", "A")
	mids := make([]kg.NodeID, nMids)
	for i := range mids {
		mids[i] = b.AddNode("mid"+itoa(i), "M")
	}
	ends := make([]kg.NodeID, nEnds)
	for j := range ends {
		ends[j] = b.AddNode("end"+itoa(j), "E")
	}
	for i, m := range mids {
		b.AddEdge(anchor, m, "r"+itoa(i))
		for j, e := range ends {
			b.AddEdge(m, e, "s"+itoa(j))
		}
	}
	g := b.Build()
	w := make([]float64, g.NumPredicates())
	rIdx, sIdx := 0, 0
	for p := 0; p < g.NumPredicates(); p++ {
		name := g.PredName(kg.PredID(p))
		if name[0] == 'r' {
			w[p] = 0.7 + 0.25*float64(rIdx)/float64(nMids)
			rIdx++
		} else {
			w[p] = 0.4 + 0.55*float64(sIdx)/float64(nEnds)
			sIdx++
		}
	}
	sw := &stubWeighter{g: g, w: w}
	endSet := make(map[kg.NodeID]bool, nEnds)
	for _, e := range ends {
		endSet[e] = true
	}
	sub := astar.SubQuery{Anchors: []kg.NodeID{anchor}, EndSets: []map[kg.NodeID]bool{endSet}}
	return g, sw, sub
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func searchOpts() astar.Options { return astar.Options{Tau: 0.3, MaxHops: 3} }

// exactTopK runs the optimal-order searcher to get the reference answer.
func exactTopK(g *kg.Graph, sw *stubWeighter, sub astar.SubQuery, k int) []ta.Final {
	s := astar.NewSearcher(g, sw, sub, searchOpts())
	finals, _ := ta.Assemble([]ta.Stream{s}, k)
	return finals
}

func jaccard(a, b []ta.Final) float64 {
	as := make(map[kg.NodeID]bool)
	bs := make(map[kg.NodeID]bool)
	for _, f := range a {
		as[f.Pivot] = true
	}
	for _, f := range b {
		bs[f.Pivot] = true
	}
	inter := 0
	for p := range as {
		if bs[p] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TestRunConvergesWithTime reproduces Theorem 4: as the bound grows, the
// approximate top-k's Jaccard similarity to the exact top-k does not
// decrease, and with an ample bound the result is exact and exhausted.
func TestRunConvergesWithTime(t *testing.T) {
	g, sw, sub := hubGraph(12, 40)
	const k = 10
	want := exactTopK(g, sw, sub, k)
	if len(want) != k {
		t.Fatalf("reference top-k has %d finals", len(want))
	}

	prev := -1.0
	var lastJ float64
	for _, bound := range []time.Duration{
		2 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
		200 * time.Millisecond, 5 * time.Second,
	} {
		s := astar.NewSearcher(g, sw, sub, searchOpts())
		res := Run(context.Background(), []*astar.Searcher{s}, k, Config{
			Bound:      bound,
			Clock:      &StepClock{Step: 100 * time.Microsecond},
			PerMatchTA: time.Microsecond,
		})
		j := jaccard(res.Finals, want)
		if j < prev-1e-9 {
			t.Errorf("bound %v: Jaccard %v decreased below %v", bound, j, prev)
		}
		prev, lastJ = j, j
		if bound >= 5*time.Second && !res.Exhausted {
			t.Errorf("bound %v: expected exhaustion", bound)
		}
	}
	if math.Abs(lastJ-1) > 1e-9 {
		t.Errorf("final Jaccard = %v, want 1 (exact convergence)", lastJ)
	}
}

// TestRunDeterministicWithStepClock: identical configurations produce
// identical approximate answers.
func TestRunDeterministicWithStepClock(t *testing.T) {
	g, sw, sub := hubGraph(10, 30)
	run := func() []ta.Final {
		s := astar.NewSearcher(g, sw, sub, searchOpts())
		res := Run(context.Background(), []*astar.Searcher{s}, 5, Config{
			Bound:      4 * time.Millisecond,
			Clock:      &StepClock{Step: 100 * time.Microsecond},
			PerMatchTA: time.Microsecond,
		})
		return res.Finals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pivot != b[i].Pivot || a[i].Score != b[i].Score {
			t.Fatalf("runs differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRunRespectsWallBound: with the real clock, the search phase stops at
// the alert threshold, so the whole run comes in near the bound (paper
// Fig. 15(b): "TBQ can return the answers within a small variation of the
// actual time bound provided").
func TestRunRespectsWallBound(t *testing.T) {
	g, sw, sub := hubGraph(60, 200)
	const bound = 25 * time.Millisecond
	s := astar.NewSearcher(g, sw, sub, searchOpts())
	start := time.Now()
	res := Run(context.Background(), []*astar.Searcher{s}, 20, Config{Bound: bound})
	elapsed := time.Since(start)
	// Generous slack: the assembly after the 0.8*T alert is small, but CI
	// schedulers are noisy.
	if elapsed > 4*bound {
		t.Errorf("run took %v, far beyond bound %v", elapsed, bound)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestRunZeroBoundAndCancel(t *testing.T) {
	g, sw, sub := hubGraph(8, 20)
	s := astar.NewSearcher(g, sw, sub, searchOpts())
	res := Run(context.Background(), []*astar.Searcher{s}, 5, Config{
		Bound: 0,
		Clock: &StepClock{Step: time.Millisecond},
	})
	if res.Exhausted {
		t.Error("zero bound should stop immediately, not exhaust")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s2 := astar.NewSearcher(g, sw, sub, searchOpts())
	res2 := Run(ctx, []*astar.Searcher{s2}, 5, Config{
		Bound: time.Hour,
		Clock: &StepClock{Step: time.Millisecond},
	})
	if res2.Exhausted {
		t.Error("cancelled run should not report exhaustion")
	}
}

// TestRunMultiSearcher: two sub-queries over the same graph assemble only
// complete pivots.
func TestRunMultiSearcher(t *testing.T) {
	g, sw, sub := hubGraph(10, 25)
	s1 := astar.NewSearcher(g, sw, sub, searchOpts())
	s2 := astar.NewSearcher(g, sw, sub, searchOpts())
	res := Run(context.Background(), []*astar.Searcher{s1, s2}, 5, Config{
		Bound:      10 * time.Second,
		Clock:      &StepClock{Step: 50 * time.Microsecond},
		PerMatchTA: time.Microsecond,
	})
	if !res.Exhausted {
		t.Fatal("ample bound should exhaust")
	}
	if len(res.Finals) != 5 {
		t.Fatalf("finals = %d, want 5", len(res.Finals))
	}
	for _, f := range res.Finals {
		if len(f.Parts) != 2 {
			t.Errorf("final %v missing parts", f.Pivot)
		}
		// Both parts end at the shared pivot.
		if f.Parts[0].End() != f.Pivot || f.Parts[1].End() != f.Pivot {
			t.Errorf("parts do not join at pivot %v", f.Pivot)
		}
	}
	if len(res.Collected) != 2 || res.Collected[0] == 0 || res.Collected[1] == 0 {
		t.Errorf("Collected = %v", res.Collected)
	}
}

func TestCalibrate(t *testing.T) {
	if d := Calibrate(); d <= 0 {
		t.Errorf("Calibrate = %v, want > 0", d)
	}
}

func TestStepClock(t *testing.T) {
	c := &StepClock{Step: time.Second}
	t1 := c.Now()
	t2 := c.Now()
	if got := t2.Sub(t1); got != time.Second {
		t.Errorf("step = %v, want 1s", got)
	}
}
