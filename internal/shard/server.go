// Shard server: the process boundary of the distributed scatter-gather
// pipeline (semkgd -serve-shard). A Server holds one or more loaded
// shards and answers per-(shard, sub-query) searches over the
// shardwire protocol; the coordinator (core.DistEngine) is its only
// intended client. See DESIGN.md, "Distributed sharding".
//
// The server is deliberately dumb: it projects a globally-resolved
// blueprint into its shard's id space, runs exactly the searcher the
// in-process sharded engine would have run, and remaps matches back to
// base ids. All semantics — decomposition, φ matching, predicate
// resolution, merging, TA assembly — stay on the coordinator, which is
// how the cross-process pipeline inherits the in-process one's
// exactness proof unchanged.

package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/merge"
	"semkg/internal/semgraph"
	"semkg/internal/shardwire"
	"semkg/internal/tbq"
)

// metaSamples is how many (id, name) probes Meta exposes per shard for
// the coordinator's stale-snapshot check.
const metaSamples = 16

// ServerStats counts a shard server's traffic, exported by semkgd under
// the "semkgd_shardserver" expvar key.
type ServerStats struct {
	// Shards lists the shard indexes this server holds.
	Shards []int `json:"shards"`
	// Searches counts accepted /v1/shard/search requests; Matches counts
	// match lines streamed; Errors counts rejected or failed requests.
	Searches uint64 `json:"searches"`
	Matches  uint64 `json:"matches"`
	Errors   uint64 `json:"errors"`
}

// Server answers shardwire searches over a set of loaded shards. Safe
// for concurrent use; every request builds fresh searcher state.
type Server struct {
	byIndex map[int]*Shard
	indexes []int

	searches atomic.Uint64
	matches  atomic.Uint64
	errors   atomic.Uint64
}

// NewServer wraps the given shards (typically loaded via ReadShard).
// The shards must come from one partition: same total shard count and
// halo, distinct indexes. One process may serve any subset of a
// partition — replicas of the same shard run in different processes.
func NewServer(shards ...*Shard) (*Server, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: server needs at least one shard")
	}
	s := &Server{byIndex: make(map[int]*Shard, len(shards))}
	for _, sh := range shards {
		if sh.Shards != shards[0].Shards || sh.Halo != shards[0].Halo {
			return nil, fmt.Errorf("shard: shard %d (of %d, halo %d) and shard %d (of %d, halo %d) are from different partitions",
				sh.Index, sh.Shards, sh.Halo, shards[0].Index, shards[0].Shards, shards[0].Halo)
		}
		if _, dup := s.byIndex[sh.Index]; dup {
			return nil, fmt.Errorf("shard: duplicate shard index %d", sh.Index)
		}
		s.byIndex[sh.Index] = sh
		s.indexes = append(s.indexes, sh.Index)
	}
	return s, nil
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Shards:   append([]int(nil), s.indexes...),
		Searches: s.searches.Load(),
		Matches:  s.matches.Load(),
		Errors:   s.errors.Load(),
	}
}

// Handler returns the server's routing table (the shardwire routes
// only; semkgd adds /healthz and /debug/vars around it).
func (s *Server) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+shardwire.PathMeta, s.handleMeta)
	mux.HandleFunc("POST "+shardwire.PathSearch, s.handleSearch)
	return mux
}

// Meta describes the held shards for coordinator validation.
func (s *Server) Meta() shardwire.Meta {
	var m shardwire.Meta
	for _, idx := range s.indexes {
		sh := s.byIndex[idx]
		info := shardwire.ShardInfo{
			Index:  sh.Index,
			Shards: sh.Shards,
			Halo:   sh.Halo,
			Nodes:  sh.Graph.NumNodes(),
			Edges:  sh.Graph.NumEdges(),
			Owned:  sh.ownedCount,
		}
		if n := len(sh.nodeGlobal); n > 0 {
			info.MaxGlobalNode = uint32(sh.nodeGlobal[n-1])
			step := n / metaSamples
			if step < 1 {
				step = 1
			}
			for l := 0; l < n; l += step {
				info.Samples = append(info.Samples, shardwire.Sample{
					ID:   uint32(sh.nodeGlobal[l]),
					Name: sh.Graph.NodeName(kg.NodeID(l)),
				})
			}
		}
		m.Shards = append(m.Shards, info)
	}
	return m
}

func (s *Server) handleMeta(w http.ResponseWriter, _ *http.Request) {
	writeWireJSON(w, http.StatusOK, s.Meta())
}

// handleSearch runs one (shard, sub-query) search and streams the sorted
// matches as NDJSON. Pre-search failures are plain HTTP errors; failures
// after the 200 header surface as a terminal {"error": ...} line.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, err := shardwire.DecodeSearchRequest(r.Body)
	if err != nil {
		s.errors.Add(1)
		writeWireJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	sh, ok := s.byIndex[req.Shard]
	if !ok {
		s.errors.Add(1)
		writeWireJSON(w, http.StatusNotFound, map[string]string{
			"error": fmt.Sprintf("shard: this server does not hold shard %d (holds %v)", req.Shard, s.indexes)})
		return
	}
	if req.MaxHops > sh.Halo {
		s.errors.Add(1)
		writeWireJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("shard: max_hops %d exceeds the partition halo %d", req.MaxHops, sh.Halo)})
		return
	}

	sub, rows, active, err := projectRequest(sh, req)
	if err != nil {
		s.errors.Add(1)
		writeWireJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	s.searches.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	out := &lineWriter{w: w}

	if !active {
		// No owned anchor or an empty projected end set: this shard cannot
		// contribute matches, exactly like an inactive shardPlanSub. The
		// empty stream is complete, hence exhausted.
		out.line(shardwire.Line{Done: true, Exhausted: true, Stats: &shardwire.SearchStats{}})
		return
	}
	weighter, err := semgraph.NewWeighterFromRows(sh.Graph, rows)
	if err != nil {
		s.errors.Add(1)
		out.line(shardwire.Line{Error: err.Error()})
		return
	}
	sr := astar.NewSearcher(sh.Graph, weighter, sub, astar.Options{
		Tau:          req.Tau,
		MaxHops:      req.MaxHops,
		NoHeuristic:  req.NoHeuristic,
		PruneVisited: req.PruneVisited,
	})
	if req.Eager {
		s.runEager(r, out, sh, sr, req)
		return
	}
	s.runExact(r, out, sh, sr, req.Offset)
}

// runExact streams the sorted match sequence, skipping the first offset
// matches (the deterministic failover resume), flushing per line so the
// coordinator's demand-driven merge sees matches as they surface.
func (s *Server) runExact(r *http.Request, out *lineWriter, sh *Shard, sr *astar.Searcher, offset int) {
	ctx := r.Context()
	skipped := 0
	for ctx.Err() == nil {
		m, ok := sr.Next()
		if !ok {
			st := sr.Stats()
			out.line(shardwire.Line{Done: true, Exhausted: true, Stats: &shardwire.SearchStats{
				Popped: st.Popped, Pushed: st.Pushed, Pruned: st.Pruned, Emitted: st.Emitted,
			}})
			return
		}
		if skipped < offset {
			skipped++
			continue
		}
		if !out.line(matchLine(sh, m)) {
			return // client gone
		}
		s.matches.Add(1)
	}
}

// runEager is the time-bounded collection (Algorithm 2) on the server
// side: collect best-per-end under a local estimator, then send the
// sorted set in one burst with the exhaustion flag.
func (s *Server) runEager(r *http.Request, out *lineWriter, sh *Shard, sr *astar.Searcher, req *shardwire.SearchRequest) {
	est := tbq.NewEstimator(r.Context(), tbq.Config{
		Bound:      time.Duration(req.TimeBoundNs),
		AlertRatio: req.AlertRatio,
		PerMatchTA: time.Duration(req.PerMatchNs),
	}, nil)
	best := make(map[kg.NodeID]astar.Match)
	exhausted := sr.RunEager(est.Stop, func(m astar.Match) bool {
		m = remapServerMatch(sh, m)
		if old, ok := best[m.End()]; !ok || m.PSS > old.PSS {
			if !ok {
				est.Collected()
			}
			best[m.End()] = m
		}
		return true
	})
	for _, m := range merge.BestByEnd(best) {
		if !out.line(matchLineGlobal(m)) {
			return
		}
		s.matches.Add(1)
	}
	st := sr.Stats()
	out.line(shardwire.Line{Done: true, Exhausted: exhausted, Stats: &shardwire.SearchStats{
		Popped: st.Popped, Pushed: st.Pushed, Pruned: st.Pruned, Emitted: st.Emitted,
	}})
}

// projectRequest maps the request's global blueprint into the shard's id
// space — the wire twin of core.ShardedEngine.projectSub. active=false
// means the shard provably has no matches for this sub-query.
func projectRequest(sh *Shard, req *shardwire.SearchRequest) (sub astar.SubQuery, rows [][]float64, active bool, err error) {
	var anchors []kg.NodeID
	for _, a := range req.Anchors {
		if la, ok := sh.LocalNode(kg.NodeID(a)); ok {
			anchors = append(anchors, la)
		}
	}
	if len(anchors) == 0 {
		return sub, nil, false, nil
	}
	endSets := make([]map[kg.NodeID]bool, len(req.EndSets))
	for i, set := range req.EndSets {
		local := make(map[kg.NodeID]bool, len(set))
		for _, g := range set {
			if lg, ok := sh.LocalNode(kg.NodeID(g)); ok {
				local[lg] = true
			}
		}
		if len(local) == 0 {
			return sub, nil, false, nil
		}
		endSets[i] = local
	}
	g := sh.Graph
	rows = make([][]float64, len(req.Rows))
	for seg, named := range req.Rows {
		row := make([]float64, g.NumPredicates())
		for p := range row {
			w, ok := named[g.PredName(kg.PredID(p))]
			if !ok {
				// The coordinator's rows cover its whole base vocabulary; a
				// shard predicate it has never heard of means the snapshot
				// outlived the graph it was cut from.
				return sub, nil, false, fmt.Errorf("shard: predicate %q not in the request's weight rows (stale shard snapshot?)",
					g.PredName(kg.PredID(p)))
			}
			row[p] = w
		}
		rows[seg] = row
	}
	return astar.SubQuery{Anchors: anchors, EndSets: endSets, FirstHop: sh.Owned}, rows, true, nil
}

// matchLine remaps a shard-local match to base ids and renders it.
func matchLine(sh *Shard, m astar.Match) shardwire.Line {
	return matchLineGlobal(remapServerMatch(sh, m))
}

// matchLineGlobal renders an already base-mapped match.
func matchLineGlobal(m astar.Match) shardwire.Line {
	l := shardwire.Line{
		Nodes:   make([]uint32, len(m.Nodes)),
		Edges:   make([]uint32, len(m.Edges)),
		SegEnds: m.SegEnds,
		PSS:     m.PSS,
	}
	for i, u := range m.Nodes {
		l.Nodes[i] = uint32(u)
	}
	for i, e := range m.Edges {
		l.Edges[i] = uint32(e)
	}
	return l
}

// remapServerMatch rewrites a shard-local match into base-graph ids, in
// place (searchers materialize fresh slices per match).
func remapServerMatch(sh *Shard, m astar.Match) astar.Match {
	for i, u := range m.Nodes {
		m.Nodes[i] = sh.GlobalNode(u)
	}
	for i, e := range m.Edges {
		m.Edges[i] = sh.GlobalEdge(e)
	}
	return m
}

// lineWriter streams NDJSON lines with a per-line flush.
type lineWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	init    bool
}

func (lw *lineWriter) line(l shardwire.Line) bool {
	if !lw.init {
		lw.flusher, _ = lw.w.(http.Flusher)
		lw.init = true
	}
	b, err := shardwire.EncodeLine(l)
	if err != nil {
		return false
	}
	if _, err := lw.w.Write(append(b, '\n')); err != nil {
		return false
	}
	if lw.flusher != nil {
		lw.flusher.Flush()
	}
	return true
}

func writeWireJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past this point mean the client is gone.
	_ = json.NewEncoder(w).Encode(v)
}
