package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunDistShardShape is the measured-distributed acceptance smoke on a
// micro world with in-process shard servers: every deployment row carries
// real traffic through the HTTP coordinator (no local fallbacks, no
// errors), the gain ratios are computed against the 1-shard distributed
// run, and the section renders inside the shard artifact. The real
// numbers come from `kgbench -exp shard` with subprocess servers on the
// 1M-node world.
func TestRunDistShardShape(t *testing.T) {
	cfg := distShardConfig(true)
	cfg.Nodes = 4000
	cfg.Agents = 3
	cfg.DistinctQueries = 16
	cfg.WarmupMs = 50
	cfg.MeasureMs = 200

	sec, err := runDistShard(cfg, &InprocLauncher{})
	if err != nil {
		t.Fatal(err)
	}

	if !strings.Contains(sec.Launcher, "in-process") {
		t.Fatalf("launcher label = %q, want the in-process stand-in", sec.Launcher)
	}
	if sec.LocalQPS <= 0 {
		t.Fatalf("no local baseline measured: %+v", sec)
	}
	if got := len(sec.Rows); got != 3 {
		t.Fatalf("distributed rows = %d, want 3 (1, 2, 4 shards)", got)
	}
	for i, r := range sec.Rows {
		if r.Shards != []int{1, 2, 4}[i] {
			t.Fatalf("row %d shards = %d", i, r.Shards)
		}
		if r.Requests <= 0 || r.QPS <= 0 {
			t.Fatalf("row %d: no traffic recorded %+v", i, r)
		}
		if r.Errors > 0 {
			t.Fatalf("row %d: %d request errors against a healthy deployment", i, r.Errors)
		}
		// Every request must have gone through the deployment: a fallback
		// (or a cache-served loop) means the row measured the local engine
		// wearing a costume.
		if r.DistSearches < uint64(r.Requests) || r.Fallbacks != 0 {
			t.Fatalf("row %d: %d dist searches for %d requests, %d fallbacks — load did not exercise the coordinator",
				i, r.DistSearches, r.Requests, r.Fallbacks)
		}
		if r.ShardFileBytes <= 0 || r.PartitionMs < 0 {
			t.Fatalf("row %d: missing deployment costs %+v", i, r)
		}
	}
	if sec.Rows[0].QPSGainVs1 != 0 {
		t.Fatalf("1-shard row carries a gain vs itself: %+v", sec.Rows[0])
	}
	for _, r := range sec.Rows[1:] {
		if r.QPSGainVs1 <= 0 || r.P50GainVs1 <= 0 {
			t.Fatalf("%d-shard row missing gain ratios: %+v", r.Shards, r)
		}
	}
	if sec.CPUs < 1 || sec.GoVersion == "" {
		t.Fatalf("env block incomplete: %+v", sec.EnvInfo)
	}
	if !strings.Contains(sec.Methodology, "measured") {
		t.Fatalf("methodology does not declare itself measured: %q", sec.Methodology)
	}

	// The section must survive the artifact round trip and render as part
	// of the shard table.
	res := &ShardResult{Methodology: shardMethodology, Distributed: sec}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Distributed == nil || back.Distributed.Config != cfg {
		t.Fatalf("distributed section did not round-trip")
	}
	tbl := res.Render()
	if tbl == nil {
		t.Fatal("Render returned nil")
	}
	found := false
	for _, row := range tbl.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "(dist)") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("rendered shard table has no measured distributed rows")
	}
}
