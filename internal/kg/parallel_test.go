package kg

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randomWorldBuilder is randomWorld stopped before Build, so tests can
// finalize the same node/edge set with different worker counts.
func randomWorldBuilder(seed int64, nodes, edges int) *Builder {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"United", "Motor", "Works", "Germany", "Auto", "Club", "South", "Plant"}
	types := []string{"Country", "Automobile", "Company", "Person", ""}
	preds := []string{"assembly", "product", "manufacturer", "locationCountry", "designer"}
	b := NewBuilder(nodes, edges)
	ids := make([]NodeID, 0, nodes)
	for i := 0; i < nodes; i++ {
		var name string
		switch rng.Intn(3) {
		case 0:
			name = fmt.Sprintf("%s %s %d", words[rng.Intn(len(words))], words[rng.Intn(len(words))], i)
		case 1:
			name = fmt.Sprintf("%s_%d", words[rng.Intn(len(words))], i)
		default:
			name = fmt.Sprintf("entity%d", i)
		}
		ids = append(ids, b.AddNode(name, types[rng.Intn(len(types))]))
	}
	for i := 0; i < edges; i++ {
		s := ids[rng.Intn(len(ids))]
		d := ids[rng.Intn(len(ids))]
		b.AddEdge(s, d, preds[rng.Intn(len(preds))])
	}
	return b
}

// TestBuildWorkersEquivalence: for randomized worlds of assorted shapes
// (dense, sparse, edgeless, tiny, empty), BuildWorkers(w) is structurally
// identical to the sequential BuildWorkers(1) for every worker count —
// same CSR arrays, same per-node adjacency order, same index buckets in
// the same id order. Run under -race this also shakes out data races in
// the node-range partitioning.
func TestBuildWorkersEquivalence(t *testing.T) {
	shapes := []struct{ nodes, edges int }{
		{0, 0},
		{1, 0},
		{3, 9},    // dense with self-loops and parallel edges
		{50, 0},   // nodes only
		{97, 311}, // awkward non-divisible sizes
		{200, 600},
		{513, 2048},
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			want := randomWorldBuilder(seed, sh.nodes, sh.edges).BuildWorkers(1)
			for _, w := range []int{2, 3, 4, 8, 0} {
				got := randomWorldBuilder(seed, sh.nodes, sh.edges).BuildWorkers(w)
				assertGraphsIdentical(t, got, want)
				if t.Failed() {
					t.Fatalf("BuildWorkers(%d) diverged from serial on seed=%d nodes=%d edges=%d",
						w, seed, sh.nodes, sh.edges)
				}
			}
		}
	}
}

// TestReadSnapshotWorkersEquivalence: decoding the same snapshot with any
// worker count yields a graph structurally identical to the fully serial
// workers=1 decode (and to the graph that was written).
func TestReadSnapshotWorkersEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := randomWorld(seed, 150, 450)
		data := snapshotBytes(t, g)
		want, err := ReadSnapshotWorkers(bytes.NewReader(data), 1)
		if err != nil {
			t.Fatalf("serial decode: %v", err)
		}
		assertGraphsIdentical(t, want, g)
		for _, w := range []int{2, 3, 7, 0} {
			got, err := ReadSnapshotWorkers(bytes.NewReader(data), w)
			if err != nil {
				t.Fatalf("decode with %d workers: %v", w, err)
			}
			assertGraphsIdentical(t, got, want)
			if t.Failed() {
				t.Fatalf("ReadSnapshotWorkers(%d) diverged from serial on seed=%d", w, seed)
			}
		}
	}
}

// TestReadSnapshotWorkersTypedErrors: the parallel decoder classifies
// malformed input exactly like the serial one — every truncation point
// and the corrupt-behind-valid-CRC cases stay typed errors, never panics.
func TestReadSnapshotWorkersTypedErrors(t *testing.T) {
	valid := snapshotBytes(t, randomWorld(11, 60, 180))
	for _, w := range []int{1, 4} {
		for cut := 0; cut < len(valid); cut += 7 {
			if _, err := ReadSnapshotWorkers(bytes.NewReader(valid[:cut]), w); err == nil {
				t.Fatalf("workers=%d: truncation at %d accepted", w, cut)
			} else if !isSnapshotError(err) {
				t.Fatalf("workers=%d: truncation at %d: untyped error %v", w, cut, err)
			}
		}
	}

	// Wrong per-node spans behind a correct checksum: the checked parallel
	// halves threading must reject them (see threadHalvesChecked).
	g := randomWorld(13, 40, 120)
	mutated := *g
	mutated.adjOff = append([]int32(nil), g.adjOff...)
	shifted := false
	for u := 0; u+1 < len(mutated.adjOff)-1 && !shifted; u++ {
		if mutated.adjOff[u+1]+1 <= mutated.adjOff[u+2] {
			mutated.adjOff[u+1]++
			shifted = true
		}
	}
	if !shifted {
		t.Fatal("could not construct a monotone-but-wrong offset array")
	}
	data := snapshotBytes(t, &mutated)
	for _, w := range []int{1, 2, 8} {
		if _, err := ReadSnapshotWorkers(bytes.NewReader(data), w); err == nil {
			t.Fatalf("workers=%d: inconsistent spans accepted", w)
		} else if !isSnapshotError(err) {
			t.Fatalf("workers=%d: inconsistent spans: untyped error %v", w, err)
		}
	}
}
