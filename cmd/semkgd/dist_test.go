// Cross-process distributed serving tests: these boot REAL subprocess
// shard servers (the test binary re-execs itself into main via
// SEMKGD_HELPER) and prove the coordinator's answers field-identical to
// the single-process engine across shard counts, through replica kills,
// and over the full HTTP surface of a subprocess coordinator.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/kg"
)

// TestMain doubles the test binary as the semkgd executable: with
// SEMKGD_HELPER=1 it runs the real main() over os.Args, which is how the
// subprocess tests below get true process isolation without a build step.
func TestMain(m *testing.M) {
	if os.Getenv("SEMKGD_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// distProcWorld is a deterministic world on disk: a graph snapshot and a
// model file any helper process can load, plus the same engine in-test.
type distProcWorld struct {
	ds        *datagen.Dataset
	model     *embed.Model
	base      *core.Engine
	dir       string
	snapPath  string
	modelPath string
}

func newDistProcWorld(t *testing.T, seed int64) *distProcWorld {
	t.Helper()
	ds := datagen.Generate(datagen.Profile{
		Name: "tiny", Seed: seed,
		Countries: 4, CitiesPerCtr: 2, Companies: 12, Autos: 70,
		People: 24, Engines: 12, Clubs: 6, FillerTypes: 2, FillerPerType: 3,
	})
	rng := rand.New(rand.NewSource(seed * 31))
	names := ds.Graph.Predicates()
	rels := make([]embed.Vector, len(names))
	for i := range rels {
		v := make(embed.Vector, 8)
		for j := range v {
			v[j] = 0.1 + 0.9*rng.Float64()
		}
		rels[i] = v
	}
	model := &embed.Model{Relations: rels}
	base, err := core.BuildEngine(ds.Graph, model, ds.Library)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	w := &distProcWorld{
		ds: ds, model: model, base: base, dir: dir,
		snapPath:  filepath.Join(dir, "world.snap"),
		modelPath: filepath.Join(dir, "world.model"),
	}
	if err := kg.WriteSnapshotFile(w.snapPath, ds.Graph); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Create(w.modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := embed.WriteModel(mf, model); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *distProcWorld) workload() []datagen.GenQuery {
	var qs []datagen.GenQuery
	if len(w.ds.Simple) > 2 {
		qs = append(qs, w.ds.Simple[:2]...)
	} else {
		qs = append(qs, w.ds.Simple...)
	}
	qs = append(qs, w.ds.Medium...)
	qs = append(qs, w.ds.Complex...)
	if len(qs) > 5 {
		qs = qs[:5]
	}
	return qs
}

var distProcOpts = core.Options{K: 5, Tau: 0.5, MaxHops: 3}

// helperCmd re-execs the test binary as semkgd. Stderr is captured and
// dumped only when the test fails.
func helperCmd(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SEMKGD_HELPER=1")
	var logBuf bytes.Buffer
	cmd.Stderr = &logBuf
	return cmd, &logBuf
}

// saveShardFiles runs the real `semkgd -save-shards` CLI in a subprocess
// and returns the written shard file paths.
func (w *distProcWorld) saveShardFiles(t *testing.T, shards int) []string {
	t.Helper()
	dir := filepath.Join(w.dir, fmt.Sprintf("shards-%d", shards))
	cmd, logBuf := helperCmd(t, "-snapshot", w.snapPath, "-shards", fmt.Sprint(shards), "-save-shards", dir)
	if err := cmd.Run(); err != nil {
		t.Fatalf("save-shards: %v\n%s", err, logBuf)
	}
	files := make([]string, shards)
	for i := range files {
		files[i] = filepath.Join(dir, shardFileName(i, shards))
		if _, err := os.Stat(files[i]); err != nil {
			t.Fatalf("save-shards left no %s: %v", files[i], err)
		}
	}
	return files
}

// shardProc is one running subprocess shard server.
type shardProc struct {
	url string
	cmd *exec.Cmd
}

// kill terminates the process hard — the chaos tests' replica failure.
func (p *shardProc) kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// startShardProc boots `semkgd -serve-shard` on an ephemeral port and
// waits for the announced address.
func startShardProc(t *testing.T, files ...string) *shardProc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd, logBuf := helperCmd(t,
		"-serve-shard", strings.Join(files, ","),
		"-addr", "127.0.0.1:0", "-addr-file", addrFile)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &shardProc{cmd: cmd}
	t.Cleanup(func() {
		p.kill()
		if t.Failed() && logBuf.Len() > 0 {
			t.Logf("shard server %s log:\n%s", p.url, logBuf)
		}
	})
	p.url = "http://" + waitAddrFile(t, addrFile)
	return p
}

// waitAddrFile polls an -addr-file until the server announces itself.
func waitAddrFile(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(path)
		if err == nil && len(bytes.TrimSpace(b)) > 0 {
			return string(bytes.TrimSpace(b))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never wrote %s", path)
	return ""
}

// assertAnswersEquivalent is the cross-process twin of the core package's
// top-k equivalence check: identical score vectors, and identical answer
// entities wherever the ranking is unambiguous — entities tied with the
// k-th score may legally differ between two correct top-k sets.
func assertAnswersEquivalent(t *testing.T, name string, got, want []core.Answer) {
	t.Helper()
	const eps = 1e-9
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, want %d", name, len(got), len(want))
	}
	if len(want) == 0 {
		return
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > eps {
			t.Fatalf("%s: rank %d score %v, want %v", name, i, got[i].Score, want[i].Score)
		}
	}
	kth := want[len(want)-1].Score
	gotAbove, wantAbove := map[string]bool{}, map[string]bool{}
	for i := range want {
		if want[i].Score > kth+eps {
			wantAbove[want[i].PivotName] = true
		}
		if got[i].Score > kth+eps {
			gotAbove[got[i].PivotName] = true
		}
	}
	for e := range wantAbove {
		if !gotAbove[e] {
			t.Fatalf("%s: unambiguous answer %q missing (got %v)", name, e, gotAbove)
		}
	}
	if len(gotAbove) != len(wantAbove) {
		t.Fatalf("%s: %d unambiguous answers, want %d", name, len(gotAbove), len(wantAbove))
	}
}

// TestDistSubprocessEquivalence is the cross-process equivalence
// property: the same worlds and queries answered by (a) the single
// in-process engine, (b) the in-process sharded engine, and (c) a
// coordinator scattering over REAL subprocess shard servers, at 1, 2 and
// 4 shards, produce equivalent top-k answers.
func TestDistSubprocessEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess servers in -short")
	}
	w := newDistProcWorld(t, 5)
	sharded, err := core.NewShardedEngine(w.base, core.ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		var files []string
		if shards == 1 {
			// -save-shards requires >= 2 (a 1-piece partition is pointless
			// outside this degenerate-equivalence check); write it directly.
			dir := filepath.Join(w.dir, "shards-1")
			if err := writeShardFiles(w.ds.Graph, dir, 1, 0); err != nil {
				t.Fatal(err)
			}
			files = []string{filepath.Join(dir, shardFileName(0, 1))}
		} else {
			files = w.saveShardFiles(t, shards)
		}
		hosts := make([][]string, shards)
		for i := range files {
			hosts[i] = []string{startShardProc(t, files[i]).url}
		}
		de, err := core.NewDistEngine(w.base, hosts, core.DistConfig{})
		if err != nil {
			t.Fatal(err)
		}

		for _, q := range w.workload() {
			want, err := w.base.Search(t.Context(), q.Graph, distProcOpts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := de.Search(t.Context(), q.Graph, distProcOpts)
			if err != nil {
				t.Fatalf("%s over %d subprocess shards: %v", q.Name, shards, err)
			}
			name := fmt.Sprintf("%s/shards=%d", q.Name, shards)
			assertAnswersEquivalent(t, name+"/dist-vs-single", got.Answers, want.Answers)

			sres, err := sharded.Search(t.Context(), q.Graph, distProcOpts)
			if err != nil {
				t.Fatal(err)
			}
			assertAnswersEquivalent(t, name+"/dist-vs-sharded", got.Answers, sres.Answers)
		}
	}
}

// TestDistSubprocessKilledReplica: kill a real replica process while a
// search workload is running — with a second replica per shard, every
// search must still return the exact top-k (failover + offset resume),
// never a silently truncated one.
func TestDistSubprocessKilledReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess servers in -short")
	}
	w := newDistProcWorld(t, 11)
	files := w.saveShardFiles(t, 2)
	procs := make([][]*shardProc, 2)
	hosts := make([][]string, 2)
	for i := range files {
		procs[i] = []*shardProc{startShardProc(t, files[i]), startShardProc(t, files[i])}
		hosts[i] = []string{procs[i][0].url, procs[i][1].url}
	}
	de, err := core.NewDistEngine(w.base, hosts, core.DistConfig{
		Retries: 3, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	queries := w.workload()
	want := make([]*core.Result, len(queries))
	for i, q := range queries {
		if want[i], err = w.base.Search(t.Context(), q.Graph, distProcOpts); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 4; round++ {
		if round == 1 {
			// First replica of each shard dies mid-workload; the remaining
			// replicas must absorb every stream from here on.
			procs[0][0].kill()
			procs[1][0].kill()
		}
		for i, q := range queries {
			got, err := de.Search(t.Context(), q.Graph, distProcOpts)
			if err != nil {
				t.Fatalf("round %d, %s: %v", round, q.Name, err)
			}
			assertAnswersEquivalent(t, fmt.Sprintf("round %d/%s", round, q.Name), got.Answers, want[i].Answers)
		}
	}
	if st := de.Stats(); st.Failovers == 0 {
		t.Fatalf("no failovers counted after killing two replica processes: %+v", st)
	}
}

// TestDistCoordinatorSubprocess boots the whole deployment from the
// walkthrough — shard files, two subprocess shard servers, a subprocess
// coordinator — and checks the coordinator's public HTTP surface:
// correct answers, distributed healthz, read-only ingest, and a typed
// 502 once a shard loses its last replica.
func TestDistCoordinatorSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess servers in -short")
	}
	w := newDistProcWorld(t, 7)
	files := w.saveShardFiles(t, 2)
	shard0 := startShardProc(t, files[0])
	shard1 := startShardProc(t, files[1])

	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd, logBuf := helperCmd(t,
		"-snapshot", w.snapPath, "-model", w.modelPath,
		"-shard-hosts", shard0.url+","+shard1.url,
		"-shard-retries", "1",
		"-addr", "127.0.0.1:0", "-addr-file", addrFile)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		if t.Failed() && logBuf.Len() > 0 {
			t.Logf("coordinator log:\n%s", logBuf)
		}
	})
	coord := "http://" + waitAddrFile(t, addrFile)

	t.Run("healthz distributed", func(t *testing.T) {
		resp, err := http.Get(coord + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body["shards"] != float64(2) || body["distributed"] != true {
			t.Fatalf("healthz = %v, want 2 distributed shards", body)
		}
	})

	q := w.workload()[0]
	searchBody := func(k int) []byte {
		b, err := json.Marshal(api.SearchRequest{
			Query:   api.QueryFrom(q.Graph),
			Options: api.Options{K: k, Tau: distProcOpts.Tau, MaxHops: distProcOpts.MaxHops},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	t.Run("search answers", func(t *testing.T) {
		want, err := w.base.Search(t.Context(), q.Graph, distProcOpts)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(coord+"/v1/search", "application/json", bytes.NewReader(searchBody(distProcOpts.K)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("search status %d: %s", resp.StatusCode, b)
		}
		var res api.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		got := make([]core.Answer, len(res.Answers))
		for i, a := range res.Answers {
			got[i] = core.Answer{PivotName: a.Entity, Score: a.Score}
		}
		assertAnswersEquivalent(t, q.Name+"/over-http", got, want.Answers)
	})

	t.Run("ingest read-only", func(t *testing.T) {
		resp, err := http.Post(coord+"/v1/ingest", "application/x-ndjson",
			strings.NewReader(`{"s":"A","p":"touches","o":"B"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("ingest on a coordinator: status %d, want 403", resp.StatusCode)
		}
	})

	t.Run("dead shard is 502", func(t *testing.T) {
		shard1.kill()
		// A fresh K dodges the coordinator's result cache: errors are never
		// cached, but the earlier success is.
		resp, err := http.Post(coord+"/v1/search", "application/json", bytes.NewReader(searchBody(3)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("search with a dead shard: status %d (%s), want 502", resp.StatusCode, b)
		}
		if !strings.Contains(string(b), "shard") {
			t.Fatalf("502 body names no shard: %s", b)
		}
	})
}
