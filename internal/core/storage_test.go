package core

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/tbq"
)

// snapshotRoundTrip serializes and reloads a graph through the binary
// codec.
func snapshotRoundTrip(t *testing.T, g *kg.Graph) *kg.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := kg.WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := kg.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

// spaceByName rebuilds a predicate space for g reusing the vectors of sp,
// matched by predicate name (graphs reloaded from storage can intern
// predicates in a different order).
func spaceByName(t *testing.T, g *kg.Graph, sp *embed.Space) *embed.Space {
	t.Helper()
	byName := make(map[string]embed.Vector, sp.Len())
	for i := 0; i < sp.Len(); i++ {
		byName[sp.Name(i)] = sp.Vector(i)
	}
	names := g.Predicates()
	vecs := make([]embed.Vector, len(names))
	for i, n := range names {
		v, ok := byName[n]
		if !ok {
			t.Fatalf("no vector for predicate %q", n)
		}
		vecs[i] = v
	}
	out, err := embed.NewSpace(names, vecs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// workloadQueries picks a cross-section of the generated workload.
func workloadQueries(ds *datagen.Dataset) []datagen.GenQuery {
	queries := append([]datagen.GenQuery{}, ds.Simple...)
	if len(queries) > 3 {
		queries = queries[:3]
	}
	if len(ds.Medium) > 0 {
		queries = append(queries, ds.Medium[0])
	}
	if len(ds.Complex) > 0 {
		queries = append(queries, ds.Complex[0])
	}
	return queries
}

// TestSnapshotSearchEquivalence is the snapshot acceptance property: for
// generated worlds, an engine over ReadSnapshot(WriteSnapshot(g)) returns
// search results identical to the engine over g, for both the exact SGQ
// mode and the time-bounded TBQ mode.
func TestSnapshotSearchEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 17} {
		ds, e := tinyWorld(t, seed)
		g2 := snapshotRoundTrip(t, ds.Graph)
		e2, err := NewEngine(g2, spaceByName(t, g2, e.Space()), ds.Library)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range workloadQueries(ds) {
			sgq := Options{K: 5, Tau: 0.5, MaxHops: 3}
			want, err := e.Search(ctx, q.Graph, sgq)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, q.Name, err)
			}
			got, err := e2.Search(ctx, q.Graph, sgq)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, q.Name, err)
			}
			assertResultsEqual(t, q.Name+"/sgq", got, want)

			tbqOpts := func() Options {
				return Options{K: 5, Tau: 0.5, MaxHops: 3,
					TimeBound: time.Hour, Clock: &tbq.StepClock{Step: time.Microsecond}}
			}
			want, err = e.Search(ctx, q.Graph, tbqOpts())
			if err != nil {
				t.Fatal(err)
			}
			got, err = e2.Search(ctx, q.Graph, tbqOpts())
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, q.Name+"/tbq", got, want)
		}
	}
}

// TestDeltaSearchEquivalence is the delta-commit acceptance property at
// the engine level: committing a random split of a world's statements as
// (base, delta) produces an engine whose search results are identical to
// one built over the full statement stream at once.
func TestDeltaSearchEquivalence(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 11)

	var buf bytes.Buffer
	if err := kg.WriteTriples(&buf, ds.Graph); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	rng := rand.New(rand.NewSource(99))
	var base, rest []string
	for _, ln := range lines {
		if rng.Float64() < 0.6 {
			base = append(base, ln)
		} else {
			rest = append(rest, ln)
		}
	}

	full, err := kg.ReadTriples(strings.NewReader(strings.Join(append(append([]string{}, base...), rest...), "\n")))
	if err != nil {
		t.Fatal(err)
	}
	baseG, err := kg.ReadTriples(strings.NewReader(strings.Join(base, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	d := kg.NewDelta(baseG)
	for _, ln := range rest {
		parts := strings.Split(ln, "\t")
		if err := d.ApplyTriple(parts[0], parts[1], parts[2]); err != nil {
			t.Fatalf("ApplyTriple(%q): %v", ln, err)
		}
	}
	committed := d.Commit()

	eFull, err := NewEngine(full, spaceByName(t, full, e.Space()), ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	eCommit, err := NewEngine(committed, spaceByName(t, committed, e.Space()), ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range workloadQueries(ds) {
		opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
		want, err := eFull.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		got, err := eCommit.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		assertResultsEqual(t, q.Name+"/delta", got, want)
	}
}

// TestEngineFromSnapshot: the storage-layer construction path loads a
// snapshot and answers queries; a graph that grew a predicate after
// training still builds (SpaceFor padding).
func TestEngineFromSnapshot(t *testing.T) {
	ds, e := tinyWorld(t, 5)
	sp := e.Space()
	model := &embed.Model{Relations: make([]embed.Vector, sp.Len())}
	for i := 0; i < sp.Len(); i++ {
		model.Relations[i] = sp.Vector(i)
	}

	var buf bytes.Buffer
	if err := kg.WriteSnapshot(&buf, ds.Graph); err != nil {
		t.Fatal(err)
	}
	e2, err := EngineFromSnapshot(&buf, model, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Simple[0]
	want, err := e.Search(context.Background(), q.Graph, Options{K: 5, Tau: 0.5, MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Search(context.Background(), q.Graph, Options{K: 5, Tau: 0.5, MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, q.Name+"/from-snapshot", got, want)

	// Grow the graph past the trained space: BuildEngine must pad.
	d := kg.NewDelta(ds.Graph)
	if _, err := d.AddTriple(ds.Graph.NodeName(0), "brand_new_predicate", ds.Graph.NodeName(1)); err != nil {
		t.Fatal(err)
	}
	grown := d.Commit()
	if grown.NumPredicates() != ds.Graph.NumPredicates()+1 {
		t.Fatalf("expected a new predicate, got %d vs %d", grown.NumPredicates(), ds.Graph.NumPredicates())
	}
	e3, err := BuildEngine(grown, model, ds.Library)
	if err != nil {
		t.Fatalf("BuildEngine over a grown graph: %v", err)
	}
	if _, err := e3.Search(context.Background(), q.Graph, Options{K: 5, Tau: 0.5, MaxHops: 3}); err != nil {
		t.Fatal(err)
	}
}
