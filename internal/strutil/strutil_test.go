package strutil

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"car", "cars", 1},
		{"Automobile", "Automobiles", 1},
		{"a", "b", 1},
		{"ab", "ba", 2},
		{"intention", "execution", 5},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarity(t *testing.T) {
	if got := Similarity("Automobile", "Automobile"); got != 1 {
		t.Errorf("identical similarity = %v, want 1", got)
	}
	if got := Similarity("BMW 320", "bmw_320"); got != 1 {
		t.Errorf("normalized-equal similarity = %v, want 1", got)
	}
	if got := Similarity("", ""); got != 1 {
		t.Errorf("empty similarity = %v, want 1", got)
	}
	if s := Similarity("Automobile", "Automobiles"); s <= 0.85 || s >= 1 {
		t.Errorf("near-identical similarity = %v, want in (0.85,1)", s)
	}
	if s := Similarity("xyz", "Automobile"); s > 0.3 {
		t.Errorf("dissimilar similarity = %v, want <= 0.3", s)
	}
}

func TestSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BMW 320", "bmw_320"},
		{"  Federal Republic of Germany ", "federal_republic_of_germany"},
		{"a--b__c  d", "a_b_c_d"},
		{"", ""},
		{"ALLCAPS", "allcaps"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsAbbreviationOf(t *testing.T) {
	cases := []struct {
		abbr, full string
		want       bool
	}{
		{"GER", "Germany", true},
		{"FRG", "Federal Republic of Germany", true},
		{"USA", "United States America", true},
		{"Germany", "GER", false}, // abbr longer than full
		{"G", "Germany", false},   // too short
		{"XYZ", "Germany", false}, // unrelated
		{"auto", "Automobile", true},
		{"Germany", "Germany", false}, // equal is not an abbreviation
	}
	for _, c := range cases {
		if got := IsAbbreviationOf(c.abbr, c.full); got != c.want {
			t.Errorf("IsAbbreviationOf(%q,%q) = %v, want %v", c.abbr, c.full, got, c.want)
		}
	}
}
