package api

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"semkg/internal/core"
)

func TestDecodeBatchRequest(t *testing.T) {
	body := `{
	  "queries": [
	    {"id": "german-cars",
	     "query": {"nodes": [{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany","type":"Country"}],
	               "edges": [{"from":"v1","to":"v2","predicate":"assembly"}]}},
	    {"query": {"nodes": [{"id":"v1","type":"Automobile"},{"id":"v2","name":"France","type":"Country"}],
	               "edges": [{"from":"v1","to":"v2","predicate":"assembly"}]},
	     "options": {"k": 3}}
	  ],
	  "options": {"k": 10, "tau": 0.75}
	}`
	req, err := DecodeBatchRequest(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Queries) != 2 {
		t.Fatalf("got %d queries, want 2", len(req.Queries))
	}
	if req.Queries[0].ID != "german-cars" || req.Queries[1].ID != "" {
		t.Fatalf("IDs = %q, %q", req.Queries[0].ID, req.Queries[1].ID)
	}

	// Item 0 inherits the shared options; item 1 overrides them entirely.
	g0, o0 := req.Item(0)
	if o0.K != 10 || o0.Tau != 0.75 {
		t.Fatalf("item 0 options = %+v, want shared k=10 tau=0.75", o0)
	}
	if len(g0.Nodes) != 2 || g0.Nodes[1].Name != "Germany" {
		t.Fatalf("item 0 graph = %+v", g0)
	}
	_, o1 := req.Item(1)
	if o1.K != 3 || o1.Tau != 0 {
		t.Fatalf("item 1 options = %+v, want override k=3 (no inherited tau)", o1)
	}
}

func TestDecodeBatchRequestStrict(t *testing.T) {
	for _, body := range []string{
		`{"queries": [], "bogus": 1}`,
		`{"queries": [{"query": {"nodes": [], "edges": []}, "unknown": true}]}`,
		`{"queries": []} trailing`,
		`[`,
	} {
		if _, err := DecodeBatchRequest(strings.NewReader(body)); err == nil {
			t.Errorf("strict decoder accepted %q", body)
		}
	}
}

func TestBatchResultRoundTrip(t *testing.T) {
	res := BatchResult{Results: []BatchItemResult{
		{Index: 0, ID: "a", Result: &Result{Answers: []Answer{{Entity: "BMW_320", Score: 0.9}}, Elapsed: Duration(time.Millisecond)}},
		{Index: 1, Error: "bad request: empty query"},
	}}
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || got.Results[0].ID != "a" || got.Results[1].Error == "" {
		t.Fatalf("round trip lost attribution: %+v", got)
	}
	if got.Results[0].Result == nil || got.Results[0].Result.Answers[0].Entity != "BMW_320" {
		t.Fatalf("round trip lost the result payload: %+v", got.Results[0])
	}
}

func TestBatchEventAttribution(t *testing.T) {
	line, err := EncodeBatchEvent(2, "q-two", core.ResultEvent{Result: &core.Result{Elapsed: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := DecodeBatchEvent(line)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Index != 2 || ev.ID != "q-two" {
		t.Fatalf("attribution lost: index=%d id=%q", ev.Index, ev.ID)
	}
	if ev.Event.Event != EventResult || ev.Result == nil {
		t.Fatalf("payload lost: %+v", ev)
	}

	errLine, err := EncodeBatchError(1, "", assertErr("no such pivot"))
	if err != nil {
		t.Fatal(err)
	}
	eev, err := DecodeBatchEvent(errLine)
	if err != nil {
		t.Fatal(err)
	}
	if eev.Event.Event != EventError || eev.ErrorText != "no such pivot" || eev.Index != 1 {
		t.Fatalf("error line mangled: %+v", eev)
	}

	if _, err := DecodeBatchEvent([]byte(`{"index":0}`)); err == nil {
		t.Fatal("missing discriminator accepted")
	}
}

// assertErr builds a plain error value for encoding tests.
type assertErr string

func (e assertErr) Error() string { return string(e) }
