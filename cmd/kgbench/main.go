// Command kgbench regenerates the paper's evaluation tables and figures
// (Section VII) on the synthetic dataset substitutes. Each experiment
// prints an aligned text table; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	kgbench -exp all -scale 0.3
//	kgbench -exp table1
//	kgbench -exp fig12 -scale 0.5 -epochs 150
//	kgbench -exp hotpath -out BENCH_hotpath.json
//
// The hotpath experiment is not part of "all": it benchmarks the engine's
// index/arena hot path against the preserved seed implementations and
// writes the before/after comparison to a JSON artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semkg/internal/bench"
	"semkg/internal/datagen"
	"semkg/internal/embed"
)

// artifact is an experiment that writes a JSON artifact and renders a
// table (bench.HotpathResult, bench.ServeResult).
type artifact interface {
	WriteJSON(path string) error
	Render() *bench.Table
}

func main() {
	exp := flag.String("exp", "all",
		"experiment: table1 | fig12 | fig13 | fig14 | fig15 | table5 | table6 | table7 | noise | table9 | table10 | ablation | hotpath | serve | ingest | shard | replica | keyword | batch | load | all (hotpath, serve, ingest, shard, replica, keyword, batch and load run separately)")
	scale := flag.Float64("scale", 0.3, "dataset scale")
	dim := flag.Int("dim", 48, "embedding dimension")
	epochs := flag.Int("epochs", 120, "embedding epochs")
	tau := flag.Float64("tau", 0.7, "pss threshold τ")
	out := flag.String("out", "", "output artifact for -exp hotpath/serve/ingest (default BENCH_<exp>.json)")
	short := flag.Bool("short", false, "trim iteration counts and world sizes (CI smoke runs of the artifact experiments)")
	flag.Parse()

	embedCfg := embed.Config{Dim: *dim, Epochs: *epochs, Seed: 3}
	envFor := func(p datagen.Profile) *bench.Env {
		env, err := bench.Cached(bench.Config{Profile: p, Embed: embedCfg, Tau: *tau})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kgbench: %v\n", err)
			os.Exit(1)
		}
		return env
	}
	dbp := func() *bench.Env { return envFor(datagen.DBpediaLike(*scale)) }

	show := func(tables ...*bench.Table) {
		for _, t := range tables {
			fmt.Println(t)
		}
	}
	// runArtifact runs an artifact-writing experiment (hotpath, serve):
	// measure, write the JSON artifact (default BENCH_<name>.json), render.
	runArtifact := func(name, path string, run func() (artifact, error)) {
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", name)
		}
		res, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "kgbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := res.WriteJSON(path); err != nil {
			fmt.Fprintf(os.Stderr, "kgbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		show(res.Render())
		fmt.Printf("wrote %s\n", path)
	}
	run := func(name string) {
		switch name {
		case "table1":
			show(bench.RunTable1(dbp()).Render())
		case "fig12":
			show(bench.RunFigure(dbp(), nil).Render()...)
		case "fig13":
			show(bench.RunFigure(envFor(datagen.FreebaseLike(*scale)), nil).Render()...)
		case "fig14":
			show(bench.RunFigure(envFor(datagen.YAGO2Like(*scale)), nil).Render()...)
		case "fig15":
			show(bench.RunFig15(dbp(), 0, nil).Render())
		case "table5":
			res, err := bench.RunTable5(dbp(), nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kgbench: table5: %v\n", err)
				return
			}
			show(res.Render())
		case "table6":
			show(bench.RunTable6(dbp()).Render())
		case "table7":
			envs := []*bench.Env{
				dbp(),
				envFor(datagen.FreebaseLike(*scale)),
				envFor(datagen.YAGO2Like(*scale)),
			}
			show(bench.RunTable7(envs, 7).Render())
		case "noise":
			show(bench.RunNoise(dbp(), 0, nil).Render())
		case "table9":
			res, err := bench.RunTable9([]float64{*scale * 0.4, *scale * 0.7, *scale}, nil, embedCfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kgbench: table9: %v\n", err)
				return
			}
			show(res.Render())
		case "table10":
			show(bench.RunTable10(dbp(), 0).Render())
		case "ablation":
			show(bench.RunAblation(dbp(), 0).Render())
		case "hotpath":
			runArtifact(name, *out, func() (artifact, error) { return bench.RunHotpath(dbp()) })
		case "serve":
			runArtifact(name, *out, func() (artifact, error) { return bench.RunServe(dbp()) })
		case "ingest":
			runArtifact(name, *out, func() (artifact, error) { return bench.RunIngest(dbp(), *short) })
		case "shard":
			// Modeled scaling on the paper-scale dataset, then the measured
			// multi-process section: real subprocess shard servers behind
			// the HTTP coordinator on the generated large world.
			runArtifact(name, *out, func() (artifact, error) {
				res, err := bench.RunShard(dbp(), *short)
				if err != nil {
					return nil, err
				}
				res.Distributed, err = bench.RunDistShard(*short, nil)
				return res, err
			})
		case "replica":
			runArtifact(name, *out, func() (artifact, error) { return bench.RunReplica(dbp(), *short) })
		case "keyword":
			runArtifact(name, *out, func() (artifact, error) { return bench.RunKeyword(dbp(), *short) })
		case "batch":
			runArtifact(name, *out, func() (artifact, error) { return bench.RunBatch(dbp(), *short) })
		case "load":
			// The load harness generates its own large world (datagen
			// LargeWorld); -scale/-dim/-epochs/-tau do not apply.
			runArtifact(name, *out, func() (artifact, error) { return bench.RunLoad(*short) })
		default:
			fmt.Fprintf(os.Stderr, "kgbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, name := range []string{
			"table1", "fig12", "fig13", "fig14", "fig15",
			"table5", "table6", "table7", "noise", "table9", "table10", "ablation",
		} {
			fmt.Printf("=== %s ===\n", strings.ToUpper(name))
			run(name)
		}
		return
	}
	run(*exp)
}
