// Queryer is the execution surface shared by the single-graph Engine and
// the scatter-gather ShardedEngine. The serving layer (internal/serve) is
// written against this interface, so its result cache, plan cache,
// singleflight and admission control work unchanged over either engine
// kind — swapping -shards on in semkgd changes nothing above this line.

package core

import (
	"context"
	"fmt"
	"time"

	"semkg/internal/kg"
	"semkg/internal/query"
)

// Queryer answers query graphs: batch (Search), streaming (Stream), and
// the compile/run split the serving layer's plan cache relies on
// (CompileQuery + SearchCompiled/StreamCompiled). Implementations are
// safe for concurrent use. *Engine and *ShardedEngine implement it.
type Queryer interface {
	// Search runs the pipeline to completion and returns the top-k result.
	Search(ctx context.Context, q *query.Graph, opts Options) (*Result, error)
	// Stream starts the pipeline and returns a live event stream.
	Stream(ctx context.Context, q *query.Graph, opts Options) (*Stream, error)
	// CompileQuery resolves q into a reusable compiled plan under the
	// compile-relevant options; see Engine.Compile.
	CompileQuery(q *query.Graph, opts Options) (CompiledPlan, error)
	// SearchCompiled is Search over a plan this Queryer compiled.
	SearchCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Result, error)
	// StreamCompiled is Stream over a plan this Queryer compiled.
	StreamCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Stream, error)
	// Graph returns the (base) knowledge graph being queried.
	Graph() *kg.Graph
	// PerMatchCost returns the calibrated per-match TA assembly time t of
	// Algorithm 3 (the serving layer seeds its queue-wait estimator from
	// it).
	PerMatchCost() time.Duration
}

// CompiledPlan is an opaque compiled query: the output of
// Queryer.CompileQuery, runnable only by the Queryer that produced it.
// *Plan and *ShardedPlan implement it.
type CompiledPlan interface {
	// Pivot returns the decomposition's pivot query node ID.
	Pivot() string
	// Compiled reports whether every query node matched at least one graph
	// entity; a non-compiled plan runs to the empty answer set.
	Compiled() bool
	// PlannedBy reports whether q produced this plan. The serving layer's
	// plan cache uses it to discard entries that survived an engine swap.
	PlannedBy(q Queryer) bool
}

// CompileQuery implements Queryer; it is Compile with the concrete *Plan
// hidden behind the CompiledPlan interface.
func (e *Engine) CompileQuery(q *query.Graph, opts Options) (CompiledPlan, error) {
	p, err := e.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// SearchCompiled implements Queryer over a plan from this engine's
// Compile/CompileQuery.
func (e *Engine) SearchCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Result, error) {
	pp, err := enginePlan(p)
	if err != nil {
		return nil, err
	}
	return e.SearchPlan(ctx, pp, opts)
}

// StreamCompiled implements Queryer over a plan from this engine's
// Compile/CompileQuery.
func (e *Engine) StreamCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Stream, error) {
	pp, err := enginePlan(p)
	if err != nil {
		return nil, err
	}
	return e.StreamPlan(ctx, pp, opts)
}

// enginePlan unwraps a CompiledPlan produced by Engine.CompileQuery.
func enginePlan(p CompiledPlan) (*Plan, error) {
	pp, ok := p.(*Plan)
	if !ok {
		return nil, fmt.Errorf("core: plan of type %T was not compiled by a single-graph engine", p)
	}
	return pp, nil
}

// PlannedBy implements CompiledPlan: it reports whether q is the engine
// that compiled this plan. A ReshardingEngine counts when its base
// engine compiled the plan — pre-upgrade plans stay cacheable across
// the background upgrade.
func (p *Plan) PlannedBy(q Queryer) bool {
	if r, ok := q.(*ReshardingEngine); ok {
		return p.CompiledBy(r.base)
	}
	e, ok := q.(*Engine)
	return ok && p.CompiledBy(e)
}
