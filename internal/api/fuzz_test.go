// Native fuzz tests for the strict JSON codec: whatever bytes arrive on
// the wire, the decoders must never panic, and every document they accept
// must survive an encode→decode round trip unchanged (the codec is the one
// vocabulary shared by semkgd, kgsearch and external clients, so a lossy
// or asymmetric corner is a protocol bug). Run the seeds with plain
// `go test`; CI additionally runs each target briefly under `-fuzz`.

package api

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func FuzzDecodeQuery(f *testing.F) {
	seeds := []string{
		`{"nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany","type":"Country"}],
		  "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]}`,
		`{"nodes":[],"edges":[]}`,
		`{"nodes":[{"id":"a"}],"edges":[{"from":"a","to":"a","predicate":"p"}]}`,
		`{"Nodes":[{"ID":"v1","Name":"X","Type":"T"}],"Edges":[]}`, // Go-style caps match case-insensitively
		`{"nodes":[{"id":"v1","bogus":1}]}`,                        // unknown field: must error, not panic
		`{"nodes":[]} trailing`,
		`[]`, `null`, `{`, `0`, `"str"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeQuery(data)
		if err != nil {
			return // rejected input: only absence of panics matters
		}
		enc, err := EncodeQuery(g)
		if err != nil {
			t.Fatalf("accepted query failed to encode: %v", err)
		}
		g2, err := DecodeQuery(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("round trip changed the query:\n%+v\nvs\n%+v", g, g2)
		}
		enc2, err := EncodeQuery(g2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

func FuzzDecodeSearchRequest(f *testing.F) {
	seeds := []string{
		`{"query":{"nodes":[{"id":"v1","type":"Automobile"}],"edges":[]},
		  "options":{"k":10,"tau":0.75,"max_hops":4}}`,
		`{"query":{"nodes":[],"edges":[]},"options":{"time_bound":"50ms","alert_ratio":0.8}}`,
		`{"query":{"nodes":[],"edges":[]},"options":{"time_bound":1500000}}`, // integer nanoseconds
		`{"query":{"nodes":[],"edges":[]},"options":{"pivot":"v9","prune_visited":true,"no_heuristic":true}}`,
		`{"query":{"nodes":[],"edges":[]},"options":{"k":-3}}`, // invalid values still decode; Validate rejects later
		`{"options":{}}`,
		`{"query":{},"options":{},"bogus":0}`,
		`{"query":{"nodes":[],"edges":[]},"options":{"time_bound":"not-a-duration"}}`,
		`{}`, `[]`, `{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, opts, err := DecodeSearchRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc, err := json.Marshal(SearchRequest{Query: QueryFrom(g), Options: OptionsFrom(opts)})
		if err != nil {
			t.Fatalf("accepted request failed to encode: %v", err)
		}
		g2, opts2, err := DecodeSearchRequest(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("round trip changed the query:\n%+v\nvs\n%+v", g, g2)
		}
		if opts != opts2 {
			t.Fatalf("round trip changed the options:\n%+v\nvs\n%+v", opts, opts2)
		}
	})
}

func FuzzEventRoundTrip(f *testing.F) {
	seeds := []string{
		`{"event":"progress","sub":0,"collected":3}`,
		`{"event":"progress","sub":2,"collected":17,"done":true}`,
		`{"event":"phase","phase":"search"}`,
		`{"event":"phase","phase":"alert","elapsed":"12ms","projected":"40ms"}`,
		`{"event":"phase","phase":"assemble","sizes":[4,9]}`,
		`{"event":"topk","round":3,"lower_k":0.81,"upper_max":0.93,
		  "answers":[{"entity":"BMW_320","score":0.9,"bindings":{"v1":"BMW_320"},
		  "parts":[{"pss":0.9,"steps":[{"from":"BMW_320","predicate":"assembly","to":"Germany"}]}]}]}`,
		`{"event":"result","result":{"answers":[],"elapsed":"1ms"}}`,
		`{"event":""}`,
		`{"event":"unknown-kind"}`, // decodes: the discriminator is free-form on the wire
		`{}`, `[]`, `{`, `null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvent(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("accepted event failed to encode: %v", err)
		}
		ev2, err := DecodeEvent(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(ev, ev2) {
			t.Fatalf("round trip changed the event:\n%+v\nvs\n%+v", ev, ev2)
		}
	})
}
