package semgraph_test

import (
	"fmt"
	"math/rand"
	"testing"

	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/semgraph"
)

// randomSpace builds a predicate space of random unit-ish vectors, so the
// weight rows carry realistic spread without training an embedding.
func randomSpace(t *testing.T, g *kg.Graph, rng *rand.Rand) *embed.Space {
	t.Helper()
	names := g.Predicates()
	vecs := make([]embed.Vector, len(names))
	for i := range vecs {
		v := make(embed.Vector, 16)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	sp, err := embed.NewSpace(names, vecs)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestNodeMaxEqualsScanOnWorlds is the NodePreds/adjacency equivalence
// property: on randomized datagen worlds, the slab-backed NodeMax (driven
// by the distinct-predicate CSR) must return bitwise-identical bounds to
// the seed's adjacency-scanning ScanWeighter, for every node and segment.
func TestNodeMaxEqualsScanOnWorlds(t *testing.T) {
	profiles := []datagen.Profile{
		datagen.DBpediaLike(0.12),
		datagen.FreebaseLike(0.1),
	}
	for _, base := range profiles {
		for _, seed := range []int64{base.Seed, 303} {
			p := base
			p.Seed = seed
			t.Run(fmt.Sprintf("%s/seed%d", p.Name, seed), func(t *testing.T) {
				ds := datagen.Generate(p)
				g := ds.Graph
				rng := rand.New(rand.NewSource(seed))
				sp := randomSpace(t, g, rng)

				preds := g.Predicates()
				queries := [][]string{
					{preds[rng.Intn(len(preds))]},
					{preds[rng.Intn(len(preds))], preds[rng.Intn(len(preds))]},
					{preds[0], preds[len(preds)-1], preds[rng.Intn(len(preds))]},
					{"assembley"}, // typo resolved by string similarity
				}
				for _, q := range queries {
					fast, err := semgraph.NewWeighter(g, sp, q)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := semgraph.NewScanWeighter(g, sp, q)
					if err != nil {
						t.Fatal(err)
					}
					for pid := 0; pid < g.NumPredicates(); pid++ {
						for seg := range q {
							if a, b := fast.Weight(kg.PredID(pid), seg), ref.Weight(kg.PredID(pid), seg); a != b {
								t.Fatalf("Weight(%d, %d): %v vs %v", pid, seg, a, b)
							}
						}
					}
					for u := 0; u < g.NumNodes(); u++ {
						for seg := range q {
							a := fast.NodeMax(kg.NodeID(u), seg)
							b := ref.NodeMax(kg.NodeID(u), seg)
							if a != b {
								t.Fatalf("NodeMax(%d, %d) on %s: slab %v, scan %v",
									u, seg, g.NodeName(kg.NodeID(u)), a, b)
							}
						}
					}
				}
			})
		}
	}
}

// TestWeighterCachedEqualsUncached: rows served through a shared RowCache
// are the same values as freshly computed ones, and concurrent access is
// safe (run with -race).
func TestWeighterCachedEqualsUncached(t *testing.T) {
	ds := datagen.Generate(datagen.DBpediaLike(0.1))
	g := ds.Graph
	rng := rand.New(rand.NewSource(5))
	sp := randomSpace(t, g, rng)
	cache, err := semgraph.NewRowCache(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	preds := []string{g.Predicates()[0], g.Predicates()[1]}

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			cw, err := semgraph.NewWeighterCached(cache, preds)
			if err != nil {
				done <- err
				return
			}
			uw, err := semgraph.NewWeighter(g, sp, preds)
			if err != nil {
				done <- err
				return
			}
			for pid := 0; pid < g.NumPredicates(); pid++ {
				for seg := range preds {
					if cw.Weight(kg.PredID(pid), seg) != uw.Weight(kg.PredID(pid), seg) {
						done <- fmt.Errorf("cached row differs at pred %d seg %d", pid, seg)
						return
					}
				}
			}
			for u := 0; u < g.NumNodes(); u += 7 {
				for seg := range preds {
					if cw.NodeMax(kg.NodeID(u), seg) != uw.NodeMax(kg.NodeID(u), seg) {
						done <- fmt.Errorf("cached NodeMax differs at node %d", u)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
