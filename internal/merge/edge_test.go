package merge

import (
	"reflect"
	"testing"

	"semkg/internal/astar"
	"semkg/internal/kg"
)

// TestBlendAllDuplicateKeys: every list carries the same entity — the
// blend collapses to exactly one item, the best-scored occurrence, no
// matter how many lists repeat it.
func TestBlendAllDuplicateKeys(t *testing.T) {
	lists := [][]scored{
		{{"only", 0.4}},
		{{"only", 0.9}},
		{{"only", 0.7}},
		{{"only", 0.9}}, // equal best in a later list: earlier list wins
	}
	got := Blend(lists, 0, scoredKey, scoredBefore)
	if len(got) != 1 {
		t.Fatalf("all-duplicate blend kept %d items, want 1: %v", len(got), got)
	}
	if got[0] != (scored{"only", 0.9}) {
		t.Fatalf("all-duplicate blend kept %v, want the best occurrence", got[0])
	}
	// Repeated blends of the equal-best layout never flip between the
	// two 0.9 occurrences (list index breaks the tie).
	for i := 0; i < 30; i++ {
		if again := Blend(lists, 0, scoredKey, scoredBefore); !reflect.DeepEqual(again, got) {
			t.Fatalf("run %d: blend unstable: %v vs %v", i, again, got)
		}
	}
}

// TestBlendKBeyondItems: k larger than the deduplicated universe returns
// everything without padding or panic; k equal to the universe is exact.
func TestBlendKBeyondItems(t *testing.T) {
	lists := [][]scored{{{"a", 0.9}, {"b", 0.8}}, {{"a", 0.5}}}
	if got := Blend(lists, 10, scoredKey, scoredBefore); len(got) != 2 {
		t.Fatalf("k=10 over 2 distinct items: %v", got)
	}
	if got := Blend(lists, 2, scoredKey, scoredBefore); len(got) != 2 {
		t.Fatalf("k=2 exact: %v", got)
	}
}

// TestSortedAllDuplicateEntity: every source's every match ends at the
// same entity. The merger must emit exactly one match — the global best
// under the total order — and drain cleanly afterwards.
func TestSortedAllDuplicateEntity(t *testing.T) {
	s := Sorted(
		slice(m(0.6, 5, 2), m(0.3, 5, 3)),
		slice(m(0.9, 5, 1)),
		slice(m(0.6, 5, 1), m(0.1, 5, 4)),
	)
	got := drain(t, s)
	if len(got) != 1 {
		t.Fatalf("single-entity merge emitted %d matches, want 1: %+v", len(got), got)
	}
	if got[0].PSS != 0.9 || got[0].Len() != 1 {
		t.Fatalf("kept pss %v len %d, want the global best 0.9/1", got[0].PSS, got[0].Len())
	}
}

// TestSortedSourceIndexTieBreak pins the last rung of the total order:
// matches identical in PSS, end and length are taken from the
// lower-indexed source first (and then deduped), so shard numbering —
// not goroutine timing — decides.
func TestSortedSourceIndexTieBreak(t *testing.T) {
	pulled := make([]countingSource, 2)
	pulled[0] = countingSource{inner: slice(m(0.5, 7, 1))}
	pulled[1] = countingSource{inner: slice(m(0.5, 7, 1))}
	s := Sorted(&pulled[0], &pulled[1])
	got := drain(t, s)
	if len(got) != 1 {
		t.Fatalf("identical matches emitted %d times, want 1", len(got))
	}
	// Both sources were pulled (one look-ahead each) — the dedup, not
	// starvation, absorbed the duplicate.
	if pulled[0].pulled == 0 || pulled[1].pulled == 0 {
		t.Fatalf("look-ahead pulls: %d/%d, want both > 0", pulled[0].pulled, pulled[1].pulled)
	}
}

// TestBestByEndAllDuplicateEntities: N sets all keyed by the same end
// node collapse to one entry; with equal PSS everywhere the first set
// wins no matter how many challengers follow.
func TestBestByEndAllDuplicateEntities(t *testing.T) {
	sets := make([]map[kg.NodeID]astar.Match, 5)
	for i := range sets {
		sets[i] = map[kg.NodeID]astar.Match{9: m(0.5, 9, i+1)}
	}
	got := BestByEnd(sets...)
	if len(got) != 1 {
		t.Fatalf("all-duplicate sets merged to %d entries, want 1", len(got))
	}
	if got[0].Len() != 1 {
		t.Fatalf("equal-PSS winner has len %d, want 1 (first set wins)", got[0].Len())
	}

	// A strictly better later match still displaces the incumbent.
	sets[3] = map[kg.NodeID]astar.Match{9: m(0.8, 9, 4)}
	got = BestByEnd(sets...)
	if len(got) != 1 || got[0].PSS != 0.8 {
		t.Fatalf("better later match lost: %+v", got)
	}
}

// TestBestByEndDeterministicOrder: repeated merges of the same sets give
// the identical slice — the output order is the documented (PSS desc,
// End asc) sort, never map iteration order.
func TestBestByEndDeterministicOrder(t *testing.T) {
	a := map[kg.NodeID]astar.Match{
		1: m(0.5, 1, 1), 2: m(0.5, 2, 1), 3: m(0.5, 3, 1),
		4: m(0.5, 4, 1), 5: m(0.5, 5, 1),
	}
	b := map[kg.NodeID]astar.Match{6: m(0.5, 6, 1), 7: m(0.5, 7, 1)}
	first := BestByEnd(a, b)
	wantEnds := []kg.NodeID{1, 2, 3, 4, 5, 6, 7}
	for i, w := range wantEnds {
		if first[i].End() != w {
			t.Fatalf("position %d: end %d, want %d", i, first[i].End(), w)
		}
	}
	for i := 0; i < 30; i++ {
		if again := BestByEnd(a, b); !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d: order unstable", i)
		}
	}
}
