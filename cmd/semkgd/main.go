// Command semkgd serves semantic-guided top-k search over HTTP. It loads
// a knowledge graph and a trained embedding model once, then answers
// query-graph searches on two endpoints:
//
//	POST /v1/search   batch: one JSON result when the search finishes
//	POST /v1/stream   streaming: NDJSON events — phase transitions,
//	                  per-sub-query progress, provisional top-k snapshots
//	                  with TA bounds, and a terminal result line
//
// plus GET /healthz (liveness and graph shape) and GET /debug/vars
// (expvar counters). Request bodies are api.SearchRequest documents; bad
// queries and out-of-range options return 400 with a JSON error.
//
//	semkgd -graph g.tsv -model m.bin -addr :8375
//
// The streaming endpoint is the wire form of the paper's anytime
// behaviour (Section VI, Theorem 4): in time-bounded mode clients render
// provisional answers while the search refines them. See DESIGN.md,
// "Wire protocol".
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
)

func main() {
	graphFile := flag.String("graph", "", "triple file (required)")
	modelFile := flag.String("model", "", "embedding model file (required)")
	addr := flag.String("addr", ":8375", "listen address")
	flag.Parse()

	if *graphFile == "" || *modelFile == "" {
		fmt.Fprintln(os.Stderr, "semkgd: -graph and -model are required")
		os.Exit(2)
	}

	start := time.Now()
	g, err := loadGraph(*graphFile)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	model, err := loadModel(*modelFile)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	space, err := model.Space(g)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	eng, err := core.NewEngine(g, space, nil)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	log.Printf("semkgd: %d nodes, %d edges, %d predicates loaded in %s; listening on %s",
		g.NumNodes(), g.NumEdges(), g.NumPredicates(), time.Since(start).Round(time.Millisecond), *addr)
	log.Fatal(http.ListenAndServe(*addr, newMux(eng)))
}

func loadGraph(path string) (*kg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kg.ReadTriples(f)
}

func loadModel(path string) (*embed.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return embed.ReadModel(f)
}
