// Package sparql implements a small conjunctive (basic-graph-pattern)
// query evaluator over the knowledge graph, in the spirit of the SPARQL
// engines the paper uses as infrastructure: the RDF-3x workload ships
// SPARQL expressions whose answers form the validation sets (Section
// VII-A), and the QGA baseline compiles keyword queries into exact
// conjunctive queries.
//
// The evaluator supports variables (prefixed "?"), exact predicate edges
// with fixed direction, and type constraints, and answers by backtracking
// joins over the graph's adjacency and type indexes. It is exact and
// complete — precisely the rigid semantics whose mismatch problems motivate
// the paper.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"semkg/internal/kg"
)

// Pattern is one triple pattern: subject/object are entity names or
// variables ("?x"); predicate is a fixed predicate name, or the reserved
// kg.TypePredicate for a type constraint (object then names a type).
type Pattern struct {
	Subject   string
	Predicate string
	Object    string
}

// IsVar reports whether a term is a variable.
func IsVar(term string) bool { return strings.HasPrefix(term, "?") }

// Query is a conjunctive query: all patterns must hold simultaneously.
type Query struct {
	Patterns []Pattern
}

// Binding maps variable names (with the "?" prefix) to graph nodes.
type Binding map[string]kg.NodeID

// Eval returns all bindings of the query's variables, deterministically
// ordered. The limit caps the number of results (0 = unlimited).
func Eval(g *kg.Graph, q Query, limit int) ([]Binding, error) {
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: empty query")
	}
	for _, p := range q.Patterns {
		if p.Predicate == "" || IsVar(p.Predicate) {
			return nil, fmt.Errorf("sparql: predicate must be a fixed name, got %q", p.Predicate)
		}
		if p.Subject == "" || p.Object == "" {
			return nil, fmt.Errorf("sparql: empty term in pattern %+v", p)
		}
	}
	// Order patterns greedily: ground terms first (cheap), then patterns
	// sharing variables with already-processed ones (index joins).
	patterns := orderPatterns(q.Patterns)

	var out []Binding
	binding := make(Binding)
	var backtrack func(i int) bool
	backtrack = func(i int) bool {
		if i == len(patterns) {
			out = append(out, cloneBinding(binding))
			return limit > 0 && len(out) >= limit
		}
		p := patterns[i]
		if p.Predicate == kg.TypePredicate {
			return evalType(g, p, binding, func() bool { return backtrack(i + 1) })
		}
		return evalEdge(g, p, binding, func() bool { return backtrack(i + 1) })
	}
	backtrack(0)
	sortBindings(out)
	return out, nil
}

// evalType enumerates/checks a type constraint.
func evalType(g *kg.Graph, p Pattern, b Binding, cont func() bool) bool {
	t := g.TypeByName(p.Object)
	if t == kg.NoType {
		return false
	}
	if !IsVar(p.Subject) {
		u := g.NodeByName(p.Subject)
		if u == kg.NoNode || g.NodeType(u) != t {
			return false
		}
		return cont()
	}
	if u, bound := b[p.Subject]; bound {
		if g.NodeType(u) != t {
			return false
		}
		return cont()
	}
	for _, u := range g.NodesOfType(t) {
		b[p.Subject] = u
		if cont() {
			delete(b, p.Subject)
			return true
		}
		delete(b, p.Subject)
	}
	return false
}

// evalEdge enumerates/checks an edge pattern subject -pred-> object.
func evalEdge(g *kg.Graph, p Pattern, b Binding, cont func() bool) bool {
	pred := g.PredByName(p.Predicate)
	if pred < 0 {
		return false
	}
	su, sBound := resolve(g, p.Subject, b)
	ou, oBound := resolve(g, p.Object, b)
	if !IsVar(p.Subject) && su == kg.NoNode {
		return false
	}
	if !IsVar(p.Object) && ou == kg.NoNode {
		return false
	}
	switch {
	case sBound && oBound:
		for _, h := range g.Neighbors(su) {
			if h.Out && h.Pred == pred && h.Neighbor == ou {
				return cont()
			}
		}
		return false
	case sBound:
		for _, h := range g.Neighbors(su) {
			if !h.Out || h.Pred != pred {
				continue
			}
			b[p.Object] = h.Neighbor
			if cont() {
				delete(b, p.Object)
				return true
			}
			delete(b, p.Object)
		}
		return false
	case oBound:
		for _, h := range g.Neighbors(ou) {
			if h.Out || h.Pred != pred {
				continue
			}
			b[p.Subject] = h.Neighbor
			if cont() {
				delete(b, p.Subject)
				return true
			}
			delete(b, p.Subject)
		}
		return false
	default:
		// Both free: scan all edges with this predicate.
		for i := 0; i < g.NumEdges(); i++ {
			e := g.EdgeAt(kg.EdgeID(i))
			if e.Pred != pred {
				continue
			}
			b[p.Subject] = e.Src
			b[p.Object] = e.Dst
			if cont() {
				delete(b, p.Subject)
				delete(b, p.Object)
				return true
			}
			delete(b, p.Subject)
			delete(b, p.Object)
		}
		return false
	}
}

// resolve returns the node a term denotes under the current binding.
// bound=true when the term is ground (constant or already-bound variable).
func resolve(g *kg.Graph, term string, b Binding) (kg.NodeID, bool) {
	if !IsVar(term) {
		return g.NodeByName(term), true
	}
	if u, ok := b[term]; ok {
		return u, true
	}
	return kg.NoNode, false
}

// orderPatterns moves type constraints and ground patterns early and keeps
// join connectivity, a minimal greedy query plan.
func orderPatterns(ps []Pattern) []Pattern {
	remaining := append([]Pattern(nil), ps...)
	var ordered []Pattern
	boundVars := make(map[string]bool)
	score := func(p Pattern) int {
		s := 0
		for _, term := range []string{p.Subject, p.Object} {
			if !IsVar(term) || boundVars[term] {
				s += 2
			}
		}
		if p.Predicate == kg.TypePredicate {
			s-- // type scans are broad; prefer edge joins when tied
		}
		return s
	}
	for len(remaining) > 0 {
		best := 0
		for i := 1; i < len(remaining); i++ {
			if score(remaining[i]) > score(remaining[best]) {
				best = i
			}
		}
		p := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		ordered = append(ordered, p)
		for _, term := range []string{p.Subject, p.Object} {
			if IsVar(term) {
				boundVars[term] = true
			}
		}
	}
	return ordered
}

func cloneBinding(b Binding) Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

func sortBindings(bs []Binding) {
	key := func(b Binding) string {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%d;", k, b[k])
		}
		return sb.String()
	}
	sort.Slice(bs, func(i, j int) bool { return key(bs[i]) < key(bs[j]) })
}

// Project returns the distinct node values of one variable across bindings,
// preserving order of first appearance.
func Project(bs []Binding, variable string) []kg.NodeID {
	var out []kg.NodeID
	seen := make(map[kg.NodeID]bool)
	for _, b := range bs {
		if u, ok := b[variable]; ok && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}
