package sparql

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"semkg/internal/kg"
)

// TestGoldenRoundTrip pins the canonical textual form: every golden file
// under testdata is already canonical (Render(Parse(file)) == file), and
// parse → render → parse is stable. The golden set mirrors the query
// shapes internal/datagen emits for its validation workloads (type
// constraint + forward predicate chains of 1–3 hops) plus quoted-term
// edge cases.
func TestGoldenRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.sparql"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("found only %d golden files, expected the full set", len(files))
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			q, err := Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			rendered := Render(q)
			if rendered != string(src) {
				t.Fatalf("golden file is not canonical:\n--- file ---\n%s--- render ---\n%s", src, rendered)
			}
			q2, err := Parse(rendered)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if !reflect.DeepEqual(q, q2) {
				t.Fatalf("parse → render → parse changed the query:\n%+v\nvs\n%+v", q, q2)
			}
		})
	}
}

// TestGoldenEvaluable: the datagen-shaped golden queries (everything
// except the quoted edge-case file) must be accepted by Eval — the same
// path datagen uses to build validation sets.
func TestGoldenEvaluable(t *testing.T) {
	b := kg.NewBuilder(8, 8)
	auto := b.AddNode("Car_1", "Automobile")
	ctr := b.AddNode("Country_3", "Country")
	b.AddEdge(auto, ctr, "assembly")
	g := b.Build()

	files, _ := filepath.Glob(filepath.Join("testdata", "*.sparql"))
	for _, file := range files {
		if strings.Contains(file, "quoted") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Parse(string(src))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Eval(g, q, 0); err != nil {
			t.Errorf("%s: Eval rejected the parsed query: %v", file, err)
		}
	}
}

// TestParseFreeForm: the parser accepts looser layouts than the canonical
// renderer emits.
func TestParseFreeForm(t *testing.T) {
	q, err := Parse("# leading comment\n?x type T . ?x p Y  # trailing comment\n\n?y q ?x")
	if err != nil {
		t.Fatal(err)
	}
	want := Query{Patterns: []Pattern{
		{Subject: "?x", Predicate: "type", Object: "T"},
		{Subject: "?x", Predicate: "p", Object: "Y"},
		{Subject: "?y", Predicate: "q", Object: "?x"},
	}}
	if !reflect.DeepEqual(q, want) {
		t.Fatalf("Parse = %+v, want %+v", q, want)
	}
}

// TestParseQuotedDot: a quoted "." is a term; a bare "." terminates.
func TestParseQuotedDot(t *testing.T) {
	q, err := Parse(`"." p O .`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].Subject != "." {
		t.Fatalf("quoted dot parsed as %q", q.Patterns[0].Subject)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",                  // no patterns
		"a b .",             // 2 terms
		"a b c d .",         // 4 terms
		"a b c . x y",       // trailing incomplete... actually valid 3+2? no: x y flushes at EOF with 2 terms
		`"unterminated p o`, // bad quote
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestRenderQuoting: terms round-trip through quoting exactly.
func TestRenderQuoting(t *testing.T) {
	q := Query{Patterns: []Pattern{
		{Subject: "New York", Predicate: "has #1", Object: `say "hi"`},
		{Subject: ".", Predicate: "p", Object: "tab\there"},
	}}
	q2, err := Parse(Render(q))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q, q2) {
		t.Fatalf("quoting round trip changed the query:\n%+v\nvs\n%+v", q, q2)
	}
}
