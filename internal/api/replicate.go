package api

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Replication wire protocol (GET /v1/replicate, NDJSON).
//
// The stream interleaves two line shapes: control frames (RepFrame, a
// "frame" discriminator plus frame-specific fields) and data lines, which
// are plain IngestTriple documents — the same {"s","p","o"} lines POST
// /v1/ingest accepts, so the replication data plane is the existing
// ingest wire format. A bare node declaration (a node with no type and,
// as yet, no edges) has no triple form and travels as a "node" control
// frame instead.
//
// Frame sequence, from the primary's point of view:
//
//	hello                         once, first line: current generation,
//	                              primary epoch, advertised URL
//	snapshot … triples … commit   full resync: follower rebuilds from
//	                              empty and serves the commit generation
//	delta … triples … commit      one committed delta; follower applies
//	                              it atomically at the commit generation
//	ping                          heartbeat carrying the head generation
//
// A follower only publishes state at commit frames: a stream severed
// mid-batch loses nothing, because the partial batch is discarded and
// the reconnect resumes from the last committed generation.
const (
	RepHello    = "hello"
	RepSnapshot = "snapshot"
	RepDelta    = "delta"
	RepCommit   = "commit"
	RepPing     = "ping"
	RepNode     = "node"
)

// RepFrame is one control line of the /v1/replicate NDJSON stream.
type RepFrame struct {
	// Frame discriminates the control frame: one of the Rep* constants.
	Frame string `json:"frame"`
	// Generation is the primary generation the frame refers to: the head
	// generation for hello and ping, the generation a snapshot or delta
	// batch commits at for snapshot/delta/commit. Unused for node.
	Generation uint64 `json:"generation,omitempty"`
	// Epoch identifies one primary incarnation (hello only). Generations
	// are comparable only within an epoch; a follower that reconnects
	// into a different epoch is given a full snapshot resync.
	Epoch string `json:"epoch,omitempty"`
	// Advertise is the primary's externally reachable base URL (hello
	// only), for clients and tooling discovering the topology.
	Advertise string `json:"advertise,omitempty"`
	// Name is the bare node declaration's node name (node frames only).
	Name string `json:"name,omitempty"`
}

// EncodeRepFrame renders one control line (without the newline).
func EncodeRepFrame(f RepFrame) ([]byte, error) {
	if f.Frame == "" {
		return nil, fmt.Errorf("api: replication frame needs a frame kind")
	}
	return json.Marshal(f)
}

// DecodeRepLine parses one line of a replication stream: a control frame
// (isFrame true) or an ingest triple data line (isFrame false). Both
// shapes decode strictly — unknown fields, trailing data and missing
// required fields are errors.
func DecodeRepLine(line []byte) (frame RepFrame, triple IngestTriple, isFrame bool, err error) {
	var probe struct {
		Frame string `json:"frame"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return frame, triple, false, fmt.Errorf("api: parsing replication line: %w", err)
	}
	if probe.Frame == "" {
		triple, err = DecodeIngestTriple(line)
		return frame, triple, false, err
	}
	if err := decodeStrict(bytes.NewReader(line), &frame); err != nil {
		return frame, triple, true, fmt.Errorf("api: parsing replication frame: %w", err)
	}
	switch frame.Frame {
	case RepHello, RepSnapshot, RepDelta, RepCommit, RepPing:
	case RepNode:
		if frame.Name == "" {
			return frame, triple, true, fmt.Errorf("api: node frame needs a name")
		}
	default:
		return frame, triple, true, fmt.Errorf("api: unknown replication frame %q", frame.Frame)
	}
	return frame, triple, true, nil
}
