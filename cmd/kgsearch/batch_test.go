package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"semkg/internal/api"
	"semkg/internal/core"
)

const batchFixture = `{
  "queries": [
    {"id": "a",
     "query": {"nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany","type":"Country"}],
               "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]}},
    {"id": "b",
     "query": {"nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany","type":"Country"}],
               "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]},
     "options": {"k": 3}}
  ]
}`

func writeBatchFixture(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBatchFlagFallback(t *testing.T) {
	path := writeBatchFixture(t, batchFixture)
	flags := core.Options{K: 7, Tau: 0.66, MaxHops: 3}
	req, err := loadBatch(path, flags)
	if err != nil {
		t.Fatal(err)
	}
	// The document carries no shared options, so the flags fill in...
	if _, opts := req.Item(0); opts.K != 7 || opts.Tau != 0.66 || opts.MaxHops != 3 {
		t.Fatalf("item 0 options = %+v, want flag defaults", opts)
	}
	// ...but a per-query override still wins whole.
	if _, opts := req.Item(1); opts.K != 3 || opts.Tau != 0 {
		t.Fatalf("item 1 options = %+v, want its own override", opts)
	}
}

func TestLoadBatchKeepsDocumentOptions(t *testing.T) {
	path := writeBatchFixture(t, `{"queries":[],"options":{"k":2,"tau":0.9}}`)
	req, err := loadBatch(path, core.Options{K: 7, Tau: 0.66})
	if err != nil {
		t.Fatal(err)
	}
	if req.Options.K != 2 || req.Options.Tau != 0.9 {
		t.Fatalf("document options overwritten: %+v", req.Options)
	}
}

func TestRemoteBatch(t *testing.T) {
	var gotPath string
	var gotBody []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotBody, _ = io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"results":[
			{"index":0,"id":"a","result":{"answers":[{"entity":"BMW_320","score":0.9}],"elapsed":"1ms"}},
			{"index":1,"id":"b","error":"bad request"}]}`)
	}))
	defer srv.Close()

	path := writeBatchFixture(t, batchFixture)
	policy := retryPolicy{notify: func(int, time.Duration, string) {}}
	if err := remoteBatch(srv.URL, path, core.Options{K: 5, Tau: 0.75, MaxHops: 4}, policy); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/batch" {
		t.Fatalf("posted to %q", gotPath)
	}
	// The posted body must still be the strict wire document, with the
	// flag defaults resolved in as the shared options.
	req, err := api.DecodeBatchRequest(bytes.NewReader(gotBody))
	if err != nil {
		t.Fatalf("posted body is not a valid batch request: %v\n%s", err, gotBody)
	}
	if len(req.Queries) != 2 || req.Options.K != 5 {
		t.Fatalf("posted request lost content: %+v", req)
	}
}

func TestRemoteBatchServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	path := writeBatchFixture(t, batchFixture)
	policy := retryPolicy{notify: func(int, time.Duration, string) {}}
	if err := remoteBatch(srv.URL, path, core.Options{K: 5}, policy); err == nil {
		t.Fatal("server 500 did not surface as an error")
	}
}
