package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"semkg/internal/query"
)

// TestEngineConcurrentSearchStream exercises one engine's shared state —
// the RowCache rows, the node-match indexes behind per-call Memos, and
// the lazily calibrated TBQ per-match cost — from many goroutines mixing
// Search and Stream, and asserts every concurrent result is identical to
// the serial reference. Run with -race: this is the concurrency guard for
// the "safe for concurrent use" contract the serving layer builds on.
func TestEngineConcurrentSearchStream(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()

	queries := []*query.Graph{
		q117("assembly"),
		q117("product"), // vocabulary-miss predicate: resolves via similarity
		{
			Nodes: []query.Node{
				{ID: "v1", Type: "Automobile"},
				{ID: "v2", Name: "Germany", Type: "Country"},
				{ID: "v3", Type: "City"},
			},
			Edges: []query.Edge{
				{From: "v1", To: "v3", Predicate: "assembly"},
				{From: "v3", To: "v2", Predicate: "country"},
			},
		},
	}
	optsFor := func(qi int) Options {
		opts := Options{K: 10, Tau: 0.6}
		if qi == 1 {
			// An ample bound exhausts the eager searches, so the TBQ
			// result is the exact top-k and remains deterministic under
			// concurrency.
			opts.TimeBound = 30 * time.Second
		}
		return opts
	}

	serial := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := e.Search(ctx, q, optsFor(i))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		serial[i] = res
	}

	const (
		workers = 16
		rounds  = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (w + r) % len(queries)
				var res *Result
				var err error
				if (w+r)%2 == 0 {
					res, err = e.Search(ctx, queries[qi], optsFor(qi))
				} else {
					var st *Stream
					st, err = e.Stream(ctx, queries[qi], optsFor(qi))
					if err == nil {
						for range st.Events() {
							// Drain: the terminal result must match batch.
						}
						res = st.Result()
					}
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d query %d: %w", w, r, qi, err)
					return
				}
				if err := sameAnswers(res, serial[qi]); err != nil {
					errs <- fmt.Errorf("worker %d round %d query %d: %w", w, r, qi, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// sameAnswers compares two results' answers in full (entities, scores,
// bindings, rendered paths); Elapsed and SearchStats legitimately vary.
func sameAnswers(got, want *Result) error {
	if len(got.Answers) != len(want.Answers) {
		return fmt.Errorf("answer count %d != %d", len(got.Answers), len(want.Answers))
	}
	if !reflect.DeepEqual(got.Answers, want.Answers) {
		return fmt.Errorf("answers differ:\n%+v\nvs serial\n%+v", got.Answers, want.Answers)
	}
	if got.Approximate != want.Approximate {
		return fmt.Errorf("approximate %t != %t", got.Approximate, want.Approximate)
	}
	return nil
}

// TestEngineConcurrentPlanReuse runs many concurrent searches through one
// shared compiled Plan — the serving layer's plan-cache access pattern —
// and checks the results against the serial reference.
func TestEngineConcurrentPlanReuse(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	q := q117("assembly")
	opts := Options{K: 10, Tau: 0.6}

	p, err := e.Compile(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.SearchPlan(ctx, p, opts)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				res, err := e.SearchPlan(ctx, p, opts)
				if err != nil {
					errs <- err
					return
				}
				if err := sameAnswers(res, want); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
