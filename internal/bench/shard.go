// Shard experiment: scatter-gather scaling of the sharded engine
// (internal/shard, core.ShardedEngine) on the multi-sub-query workload —
// the sharding axis the ROADMAP's production north star calls for. Run via
// `go run ./cmd/kgbench -exp shard` (writes BENCH_shard.json).
//
// Two families of numbers, both from real executions:
//
//   - Measured: end-to-end per-query latency of the sharded engine on this
//     host, against the single-engine baseline. On a single-core host the
//     sharded run cannot be faster — A* path enumeration over the
//     partitioned first hops is essentially conserved (reported as
//     work_vs_single, ~1.0) — so the measured delta *is* the cross-shard
//     machinery cost: partition lookups, match remapping, the k-way
//     merge. That overhead is reported as MeasuredOverheadPct.
//
//   - Modeled speedup: the work-distribution (critical-path) speedup with
//     one worker per shard, computed from the same runs: the search
//     component of the measured sharded latency parallelizes to the
//     heaviest shard's share (makespan, from the per-shard A* expansion
//     counts), the merge/assembly tail stays serial (Amdahl), and the
//     modeled latency is compared against the measured single-engine
//     baseline — so the cross-shard overhead is charged in full before
//     the partition earns anything back. Balance = makespan/total work:
//     1/N is a perfect partition, 1.0 means one shard owns all the work
//     and sharding buys nothing.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"semkg/internal/core"
	"semkg/internal/datagen"
)

// shardMethodology documents how the modeled speedup is computed; it is
// embedded in the artifact so the JSON is self-describing.
const shardMethodology = "measured_* fields are wall-clock on this host; speedup fields are " +
	"modeled for a one-worker-per-shard deployment from the same runs: the search component " +
	"of the measured sharded latency (search_share=0.9, including every per-shard cost the " +
	"partition added) parallelizes to the heaviest shard's work share (balance, from per-shard " +
	"A* expansion counts), the merge/assembly tail stays serial (Amdahl), and the result is " +
	"compared against the measured single-engine baseline"

// ShardRow is one shard-count configuration.
type ShardRow struct {
	Shards int `json:"shards"`
	// PartitionMs is the one-time cost of building the shard graphs.
	PartitionMs float64 `json:"partition_ms"`
	// ReplicationFactor is (sum of shard nodes)/(base nodes).
	ReplicationFactor float64 `json:"replication_factor"`
	// MeasuredMeanUs / MeasuredP50Us are per-query latencies on this host.
	MeasuredMeanUs float64 `json:"measured_mean_us"`
	MeasuredP50Us  float64 `json:"measured_p50_us"`
	// MeasuredOverheadPct is the serial-host overhead vs the single-engine
	// baseline: the real cost of the cross-shard merge machinery.
	MeasuredOverheadPct float64 `json:"measured_overhead_pct"`
	// WorkTotal and WorkMakespan are mean per-query A* expansions: summed
	// over shards, and the heaviest single shard's count.
	WorkTotal    float64 `json:"work_total"`
	WorkMakespan float64 `json:"work_makespan"`
	// WorkVsSingle is the sharded run's total expansions over the single
	// engine's: ~1.0 in practice (the path enumeration partitions);
	// slightly below 1 when truncated shard graphs tighten the m(u)
	// pruning bound, slightly above from per-shard anchor re-expansion.
	WorkVsSingle float64 `json:"work_vs_single"`
	// Balance = WorkMakespan/WorkTotal (1/Shards is ideal).
	Balance float64 `json:"balance"`
	// SearchSpeedup = WorkTotal/WorkMakespan: the scatter phase's
	// critical-path speedup with one worker per shard.
	SearchSpeedup float64 `json:"search_speedup"`
	// Speedup is the modeled end-to-end speedup vs the single engine:
	// baseline / (search·balance + serial remainder).
	Speedup float64 `json:"speedup"`
}

// ShardResult is the experiment artifact (BENCH_shard.json).
type ShardResult struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	EnvInfo
	K           int        `json:"k"`
	Queries     int        `json:"queries"`
	Repetitions int        `json:"repetitions"`
	Methodology string     `json:"methodology"`
	BaselineUs  float64    `json:"baseline_mean_us"`
	Rows        []ShardRow `json:"configs"`
	// Distributed is the measured multi-process section: real shard
	// server processes behind the HTTP coordinator (see distshard.go).
	// Its rows are wall-clock, never modeled.
	Distributed *DistShardSection `json:"distributed,omitempty"`
}

// shardWorkload gathers the multi-sub-query shapes (Medium + Complex):
// the workload where one query fans out into several concurrent
// sub-query searches, each of which sharding further partitions.
func shardWorkload(ds *datagen.Dataset) []datagen.GenQuery {
	var out []datagen.GenQuery
	out = append(out, ds.Medium...)
	out = append(out, ds.Complex...)
	return out
}

// RunShard measures the sharded engine at 1/2/4/8 shards against the
// single-engine baseline. short trims repetitions for CI smoke runs.
func RunShard(env *Env, short bool) (*ShardResult, error) {
	qs := shardWorkload(env.Dataset)
	if len(qs) == 0 {
		return nil, fmt.Errorf("bench: environment has no multi-sub-query workload")
	}
	const k = 20
	reps := 10
	if short {
		reps = 3
	}
	opts := env.SearchOptions(k)
	ctx := context.Background()
	res := &ShardResult{
		Dataset:     env.Cfg.Profile.Name,
		Scale:       fmt.Sprintf("%d nodes / %d edges", env.Dataset.Graph.NumNodes(), env.Dataset.Graph.NumEdges()),
		EnvInfo:     CaptureEnv(),
		K:           k,
		Queries:     len(qs),
		Repetitions: reps,
		Methodology: shardMethodology,
	}

	// Baseline: the single engine on the same queries.
	baselineLat, singleWork, err := runShardWorkload(ctx, reps, qs, func(q *datagen.GenQuery) (*core.Result, error) {
		return env.Engine.Search(ctx, q.Graph, opts)
	})
	if err != nil {
		return nil, err
	}
	res.BaselineUs = meanUs(baselineLat)

	for _, n := range []int{1, 2, 4, 8} {
		pStart := time.Now()
		se, err := core.NewShardedEngine(env.Engine, core.ShardConfig{Shards: n})
		if err != nil {
			return nil, err
		}
		partition := time.Since(pStart)

		var totalWork, makespanWork float64
		lat, shardedWork, err := runShardWorkload(ctx, reps, qs, func(q *datagen.GenQuery) (*core.Result, error) {
			r, err := se.Search(ctx, q.Graph, opts)
			if err != nil {
				return nil, err
			}
			sum, max := 0, 0
			for _, st := range r.ShardEffort {
				sum += st.Popped
				if st.Popped > max {
					max = st.Popped
				}
			}
			totalWork += float64(sum)
			makespanWork += float64(max)
			return r, err
		})
		if err != nil {
			return nil, err
		}
		runs := float64(len(lat))
		row := ShardRow{
			Shards:            n,
			PartitionMs:       float64(partition.Microseconds()) / 1e3,
			ReplicationFactor: se.Stats().ReplicationFactor,
			MeasuredMeanUs:    meanUs(lat),
			MeasuredP50Us:     percentile(sortedLatencies(lat), 0.5),
			WorkTotal:         totalWork / runs,
			WorkMakespan:      makespanWork / runs,
		}
		if singleWork > 0 {
			row.WorkVsSingle = shardedWork / singleWork
		}
		row.MeasuredOverheadPct = 100 * (row.MeasuredMeanUs - res.BaselineUs) / res.BaselineUs
		if row.WorkTotal > 0 {
			row.Balance = row.WorkMakespan / row.WorkTotal
			row.SearchSpeedup = row.WorkTotal / row.WorkMakespan
		}
		// Modeled end-to-end latency with one worker per shard: the search
		// component of the *measured sharded run* — which includes every
		// per-shard cost the partition added (per-shard weighters, m(u)
		// recomputation, searcher setup; the CPU profile places the
		// measured overhead there, not in the coordinator's merge) —
		// parallelizes to the heaviest shard's work share; the remaining
		// tail (k-way merge, TA assembly, rendering) stays serial. The
		// speedup is measured-vs-modeled against the single-engine
		// baseline, so the cross-shard overhead is charged in full before
		// the partition earns anything back.
		searchUs := row.MeasuredMeanUs * searchShare
		tailUs := row.MeasuredMeanUs - searchUs
		modeledUs := searchUs*row.Balance + tailUs
		if modeledUs > 0 {
			row.Speedup = res.BaselineUs / modeledUs
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// searchShare is the fraction of single-engine query latency spent
// producing matches (A* expansion inside the searchers), as opposed to the
// serial TA bookkeeping and answer rendering. The expansion loop dominates
// the profile; 0.9 is a deliberately conservative attribution (a larger
// serial tail lowers every modeled speedup).
const searchShare = 0.9

// runShardWorkload runs reps passes over the workload, returning the
// per-query latencies and the accumulated A* expansions.
func runShardWorkload(ctx context.Context, reps int, qs []datagen.GenQuery,
	search func(q *datagen.GenQuery) (*core.Result, error)) ([]time.Duration, float64, error) {
	var lat []time.Duration
	work := 0.0
	for r := 0; r < reps; r++ {
		for i := range qs {
			start := time.Now()
			res, err := search(&qs[i])
			if err != nil {
				return nil, 0, fmt.Errorf("bench: %s: %w", qs[i].Name, err)
			}
			lat = append(lat, time.Since(start))
			for _, st := range res.SearchStats {
				work += float64(st.Popped)
			}
		}
	}
	return lat, work, nil
}

func meanUs(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return float64(sum) / float64(len(lat)) / float64(time.Microsecond)
}

// WriteJSON stores the artifact.
func (r *ShardResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the scaling curve as a text table.
func (r *ShardResult) Render() *Table {
	t := &Table{
		Title: fmt.Sprintf("Sharded scatter-gather (%s, %s, k=%d, baseline %.0f µs/query, %d CPUs)",
			r.Dataset, r.Scale, r.K, r.BaselineUs, r.CPUs),
		Header: []string{"shards", "partition ms", "repl", "measured µs", "overhead",
			"balance", "search speedup", "e2e speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Shards),
			fmt.Sprintf("%.1f", row.PartitionMs),
			fmt.Sprintf("%.1fx", row.ReplicationFactor),
			fmt.Sprintf("%.0f", row.MeasuredMeanUs),
			fmt.Sprintf("%+.1f%%", row.MeasuredOverheadPct),
			fmt.Sprintf("%.2f", row.Balance),
			fmt.Sprintf("%.1fx", row.SearchSpeedup),
			fmt.Sprintf("%.1fx", row.Speedup),
		)
	}
	if r.Distributed != nil {
		r.Distributed.renderRows(t)
	}
	return t
}
