// Command kggen generates a synthetic benchmark knowledge graph (the
// DBpedia/Freebase/YAGO2-like substitutes described in DESIGN.md) and
// writes it in the TSV triple format.
//
// Usage:
//
//	kggen -profile dbpedia -scale 0.5 -out graph.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"semkg/internal/datagen"
	"semkg/internal/kg"
)

func main() {
	profile := flag.String("profile", "dbpedia", "dataset profile: dbpedia | freebase | yago2")
	scale := flag.Float64("scale", 0.5, "world scale (1.0 ≈ 6k entities)")
	out := flag.String("out", "", "output triple file (default stdout)")
	flag.Parse()

	var p datagen.Profile
	switch *profile {
	case "dbpedia":
		p = datagen.DBpediaLike(*scale)
	case "freebase":
		p = datagen.FreebaseLike(*scale)
	case "yago2":
		p = datagen.YAGO2Like(*scale)
	default:
		fmt.Fprintf(os.Stderr, "kggen: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	ds := datagen.Generate(p)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kggen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := kg.WriteTriples(w, ds.Graph); err != nil {
		fmt.Fprintf(os.Stderr, "kggen: writing triples: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kggen: %s %s (%d benchmark queries)\n",
		p.Name, ds.Graph.Stats(), len(ds.Simple)+len(ds.Medium)+len(ds.Complex))
}
