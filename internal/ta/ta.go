// Package ta implements the threshold-algorithm-based final match assembly
// of Section V-C (Fagin et al.'s TA, in the no-random-access flavour):
// sub-query match streams are consumed in non-increasing pss order, matches
// sharing the same pivot node match u^p join into final matches, and per-
// candidate lower/upper score bounds (Eq. 8-11) let the assembly stop long
// before exhausting the streams (Theorem 3: stop when L_k >= U_max).
package ta

import (
	"sort"

	"semkg/internal/astar"
	"semkg/internal/kg"
)

// Stream yields sub-query matches in non-increasing pss order.
// *astar.Searcher implements it via its Next method.
type Stream interface {
	Next() (astar.Match, bool)
}

// SliceStream adapts a pre-collected, pss-sorted match slice (the
// time-bounded mode's M̂_i sets) to the Stream interface.
type SliceStream struct {
	Matches []astar.Match
	pos     int
}

// Next returns the next match in the slice.
func (s *SliceStream) Next() (astar.Match, bool) {
	if s.pos >= len(s.Matches) {
		return astar.Match{}, false
	}
	m := s.Matches[s.pos]
	s.pos++
	return m, true
}

// Final is an assembled final match for the whole query graph: one
// sub-query match per stream, all containing the same pivot node match.
type Final struct {
	Pivot kg.NodeID
	// Score is the match score S_m(u^p): the sum of the parts' pss (Eq. 2).
	Score float64
	// Parts holds the joined sub-query matches, indexed by stream.
	Parts []astar.Match
}

// Stats reports assembly effort, for the early-termination experiments.
type Stats struct {
	// Accesses counts sorted accesses across all streams.
	Accesses int
	// Rounds counts round-robin passes.
	Rounds int
	// Exhausted reports whether every stream ran dry before termination.
	Exhausted bool
}

// candidate tracks the NRA bookkeeping for one pivot node match.
type candidate struct {
	pivot kg.NodeID
	seen  []bool
	parts []astar.Match
	lower float64
	nSeen int
}

// Assemble runs the TA-based assembly: it consumes the streams in
// round-robin sorted access, joins matches at their pivot (end) node, and
// returns the top-k final matches by score together with effort statistics.
// Only complete candidates — pivots matched in every stream — are returned;
// a query answer must cover all sub-query graphs.
//
// The streams must be in non-increasing pss order; pulling more matches may
// resume an underlying A* search (the paper's "repeat the A* semantic
// search until sufficient final matches are returned").
func Assemble(streams []Stream, k int) ([]Final, Stats) {
	var stats Stats
	if k <= 0 || len(streams) == 0 {
		return nil, stats
	}
	n := len(streams)
	psiCur := make([]float64, n) // pss of latest access per stream (Eq. 11's ψcur)
	alive := make([]bool, n)
	for i := range psiCur {
		psiCur[i] = 1 // pss is bounded by 1 before the first access
		alive[i] = true
	}
	cands := make(map[kg.NodeID]*candidate)

	upper := func(c *candidate) float64 {
		u := c.lower
		for i := range streams {
			if !c.seen[i] {
				u += psiCur[i]
			}
		}
		return u
	}

	for {
		stats.Rounds++
		anyAlive := false
		for i, st := range streams {
			if !alive[i] {
				continue
			}
			m, ok := st.Next()
			stats.Accesses++
			if !ok {
				alive[i] = false
				psiCur[i] = 0
				continue
			}
			anyAlive = true
			psiCur[i] = m.PSS
			p := m.End()
			c := cands[p]
			if c == nil {
				c = &candidate{pivot: p, seen: make([]bool, n), parts: make([]astar.Match, n)}
				cands[p] = c
			}
			if !c.seen[i] {
				// First (= best) match for this pivot in stream i.
				c.seen[i] = true
				c.parts[i] = m
				c.lower += m.PSS
				c.nSeen++
			}
		}

		// Termination check (Theorem 3): rank complete candidates by
		// exact score; L_k is the k-th best; U_max is the best upper
		// bound among everything else, including the virtual never-seen
		// candidate whose upper bound is Σ ψcur.
		var complete []*candidate
		for _, c := range cands {
			if c.nSeen == n {
				complete = append(complete, c)
			}
		}
		sort.Slice(complete, func(i, j int) bool {
			if complete[i].lower != complete[j].lower {
				return complete[i].lower > complete[j].lower
			}
			return complete[i].pivot < complete[j].pivot
		})
		if len(complete) >= k || !anyAlive {
			top := complete
			if len(top) > k {
				top = top[:k]
			}
			if !anyAlive {
				stats.Exhausted = true
				return finalize(top), stats
			}
			lk := 0.0
			if len(top) == k {
				lk = top[k-1].lower
			}
			umax := 0.0
			for i := range psiCur {
				umax += psiCur[i] // virtual unseen candidate
			}
			inTop := make(map[kg.NodeID]bool, len(top))
			for _, c := range top {
				inTop[c.pivot] = true
			}
			for _, c := range cands {
				if inTop[c.pivot] {
					continue
				}
				if u := upper(c); u > umax {
					umax = u
				}
			}
			if len(top) == k && lk >= umax {
				return finalize(top), stats
			}
		}
	}
}

func finalize(cs []*candidate) []Final {
	out := make([]Final, len(cs))
	for i, c := range cs {
		out[i] = Final{Pivot: c.pivot, Score: c.lower, Parts: c.parts}
	}
	return out
}
