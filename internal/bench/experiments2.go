package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"semkg/internal/core"
	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/metrics"
	"semkg/internal/query"
)

// --- E5: Table V — effect of the pivot node -----------------------------------

// Table5Result compares explicit pivots on one complex query.
type Table5Result struct {
	Query  string
	Pivots []string
	Ks     []int
	P      [][]float64 // [pivot][k]
	R      [][]float64
	F1     [][]float64
	TimeMS [][]float64
}

// RunTable5 evaluates the first complex query under every candidate pivot
// for a range of k values (the paper's Table V compares pivot v1 and v2 on
// the Fig. 16 query). k values default to fractions of |truth| mirroring
// the paper's 200..1200 against 596 ground-truth answers.
func RunTable5(env *Env, ks []int) (*Table5Result, error) {
	if len(env.Dataset.Complex) == 0 {
		return nil, fmt.Errorf("bench: dataset has no complex queries")
	}
	q := env.Dataset.Complex[0]
	if len(ks) == 0 {
		n := len(q.Truth)
		ks = []int{max(1, n/3), max(1, 2*n/3), n, n * 2}
	}
	res := &Table5Result{Query: q.Name, Ks: ks}
	for _, pivot := range q.Graph.Targets() {
		ps := make([]float64, 0, len(ks))
		rs := make([]float64, 0, len(ks))
		f1s := make([]float64, 0, len(ks))
		ts := make([]float64, 0, len(ks))
		usable := true
		for _, k := range ks {
			opts := env.SearchOptions(k)
			opts.PivotNode = pivot
			r, err := env.Engine.Search(context.Background(), q.Graph, opts)
			if err != nil {
				usable = false
				break
			}
			pr := metrics.Evaluate(r.EntitiesOf(q.Focus), q.Truth)
			ps = append(ps, pr.Precision)
			rs = append(rs, pr.Recall)
			f1s = append(f1s, pr.F1)
			ts = append(ts, float64(r.Elapsed.Microseconds())/1000)
		}
		if !usable {
			continue
		}
		res.Pivots = append(res.Pivots, pivot)
		res.P = append(res.P, ps)
		res.R = append(res.R, rs)
		res.F1 = append(res.F1, f1s)
		res.TimeMS = append(res.TimeMS, ts)
	}
	return res, nil
}

// Render formats the pivot comparison.
func (r *Table5Result) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table V: pivot comparison on %s", r.Query),
		Header: []string{"Pivot", "k", "P", "R", "F1", "Time"},
	}
	for i, pivot := range r.Pivots {
		for j, k := range r.Ks {
			t.AddRow(pivot, fmt.Sprintf("%d", k), f2(r.P[i][j]), f2(r.R[i][j]),
				f2(r.F1[i][j]), f1ms(r.TimeMS[i][j]))
		}
	}
	return t
}

// --- E6: Table VI — pivot selection strategy ----------------------------------

// Table6Row is one query-complexity class under both strategies.
type Table6Row struct {
	Class          string
	NumSubQueries  int
	MinCostPR      float64 // P=R at k=|truth|
	MinCostTimeMS  float64
	RandomPR       float64
	RandomTimeMS   float64
	RandomMeasured bool // simple queries have a single pivot: no Random column
}

// Table6Result reproduces Table VI (minCost vs Random pivot).
type Table6Result struct{ Rows []Table6Row }

// RunTable6 evaluates Simple/Medium/Complex workloads under the minCost
// and Random pivot strategies, with k = |truth| so that P = R, as in the
// paper.
func RunTable6(env *Env) *Table6Result {
	res := &Table6Result{}
	classes := []struct {
		name    string
		queries []datagen.GenQuery
		subs    int
	}{
		{"Simple", env.Dataset.Simple, 1},
		{"Medium", env.Dataset.Medium, 2},
		{"Complex", env.Dataset.Complex, 3},
	}
	rng := rand.New(rand.NewSource(99))
	for _, cl := range classes {
		if len(cl.queries) == 0 {
			continue
		}
		row := Table6Row{Class: cl.name, NumSubQueries: cl.subs}
		var mcPR, mcMS, rdPR, rdMS float64
		for _, q := range cl.queries {
			k := len(q.Truth)
			opts := env.SearchOptions(k)
			r, err := env.Engine.Search(context.Background(), q.Graph, opts)
			if err != nil {
				continue
			}
			pr := metrics.Evaluate(r.EntitiesOf(q.Focus), q.Truth)
			mcPR += pr.Precision
			mcMS += float64(r.Elapsed.Microseconds()) / 1000

			if cl.subs > 1 {
				opts.Strategy = query.RandomPivot
				opts.Rng = rng
				r2, err := env.Engine.Search(context.Background(), q.Graph, opts)
				if err != nil {
					continue
				}
				pr2 := metrics.Evaluate(r2.EntitiesOf(q.Focus), q.Truth)
				rdPR += pr2.Precision
				rdMS += float64(r2.Elapsed.Microseconds()) / 1000
			}
		}
		n := float64(len(cl.queries))
		row.MinCostPR = mcPR / n
		row.MinCostTimeMS = mcMS / n
		if cl.subs > 1 {
			row.RandomPR = rdPR / n
			row.RandomTimeMS = rdMS / n
			row.RandomMeasured = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the strategy comparison.
func (r *Table6Result) Render() *Table {
	t := &Table{
		Title:  "Table VI: effect of pivot node selection (k = |validation set|, P = R)",
		Header: []string{"Query type", "minCost P=R", "minCost time", "Random P=R", "Random time"},
	}
	for _, row := range r.Rows {
		name := fmt.Sprintf("%s (%d sub-queries)", row.Class, row.NumSubQueries)
		if !row.RandomMeasured {
			t.AddRow(name, f2(row.MinCostPR), f1ms(row.MinCostTimeMS), "-", "-")
			continue
		}
		t.AddRow(name, f2(row.MinCostPR), f1ms(row.MinCostTimeMS),
			f2(row.RandomPR), f1ms(row.RandomTimeMS))
	}
	return t
}

// --- E7: Table VII — simulated user study --------------------------------------

// Table7Result holds per-query PCC values.
type Table7Result struct {
	Names []string
	PCC   []float64
}

// RunTable7 simulates the crowd-sourced study of Section VII-D on up to
// queriesPerEnv queries from each environment: SGQ answers are scored
// against latent quality (validated answers = 1, others scaled by match
// score), pairs are judged by 10 noisy annotators, and the PCC between
// system ranks and annotator preferences is reported.
func RunTable7(envs []*Env, queriesPerEnv int) *Table7Result {
	if queriesPerEnv <= 0 {
		queriesPerEnv = 7
	}
	res := &Table7Result{}
	study := metrics.UserStudy{Annotators: 10, Pairs: 30, Noise: 0.1,
		Rng: rand.New(rand.NewSource(2020))}
	for _, env := range envs {
		// The paper "selected 20 queries for which the answers have
		// multiple schemas": single-schema queries produce uniform answer
		// quality and carry no ranking signal for annotators.
		var qs []datagen.GenQuery
		for _, q := range env.Dataset.Simple {
			if q.SchemaCount > 1 {
				qs = append(qs, q)
			}
		}
		if len(qs) > queriesPerEnv {
			qs = qs[:queriesPerEnv]
		}
		for i, q := range qs {
			k := len(q.Truth)
			r, err := env.Engine.Search(context.Background(), q.Graph, env.SearchOptions(k))
			if err != nil || len(r.Answers) < 4 {
				continue
			}
			truth := make(map[string]bool, len(q.Truth))
			for _, tname := range q.Truth {
				truth[tname] = true
			}
			// Latent answer quality: validated answers are worth more,
			// and within each group deeper/semantically weaker paths
			// (lower match score) are worth less — annotators perceive
			// both effects.
			maxScore := r.Answers[0].Score
			if maxScore <= 0 {
				maxScore = 1
			}
			quality := make([]float64, len(r.Answers))
			distinct := make(map[float64]bool)
			for j, a := range r.Answers {
				quality[j] = 0.4 * a.Score / maxScore
				if truth[a.Bindings[q.Focus]] {
					quality[j] += 0.6
				}
				distinct[quality[j]] = true
			}
			if len(distinct) < 2 {
				// All answers share one score group: no ranking signal to
				// correlate. The paper's manual query selection excludes
				// such queries; the harness does the same.
				continue
			}
			res.Names = append(res.Names, fmt.Sprintf("%s-%d", shortName(env.Cfg.Profile.Name), i+1))
			res.PCC = append(res.PCC, study.Run(quality))
		}
	}
	return res
}

func shortName(profile string) string {
	if len(profile) == 0 {
		return "?"
	}
	return string(profile[0])
}

// Render formats the PCC list.
func (r *Table7Result) Render() *Table {
	t := &Table{
		Title:  "Table VII: simulated user study (PCC per query)",
		Header: []string{"Query", "PCC"},
	}
	for i := range r.Names {
		t.AddRow(r.Names[i], f2(r.PCC[i]))
	}
	return t
}

// --- E8/E9: Figure 17 + Table VIII — robustness vs noise -----------------------

// NoiseResult sweeps node and edge noise ratios.
type NoiseResult struct {
	K      int
	Ratios []float64
	NodeP  []float64
	NodeR  []float64
	NodeF1 []float64
	NodeMS []float64
	EdgeP  []float64
	EdgeR  []float64
	EdgeF1 []float64
	EdgeMS []float64
}

// RunNoise perturbs a fraction (the noise ratio) of the simple workload
// with node noise (synonym/abbreviation swaps) or edge noise (predicate
// swapped with a top-10 similar predicate) and measures SGQ effectiveness
// and response time (Fig. 17 and Table VIII).
func RunNoise(env *Env, k int, ratios []float64) *NoiseResult {
	if k <= 0 {
		k = 40
	}
	if len(ratios) == 0 {
		ratios = []float64{0, 0.1, 0.2, 0.3, 0.4}
	}
	res := &NoiseResult{K: k, Ratios: ratios}
	queries := env.Dataset.Simple
	for _, ratio := range ratios {
		for _, mode := range []string{"node", "edge"} {
			rng := rand.New(rand.NewSource(int64(1000 + ratio*100)))
			var prs []metrics.PR
			var totalMS float64
			for _, q := range queries {
				qq := q
				if rng.Float64() < ratio {
					if mode == "node" {
						qq.Graph = datagen.AddNodeNoise(q.Graph, env.Dataset.Library, rng)
					} else {
						qq.Graph = datagen.AddEdgeNoise(q.Graph, env.Dataset.Graph, env.Space, rng)
					}
				}
				r, err := env.Engine.Search(context.Background(), qq.Graph, env.SearchOptions(k))
				if err != nil {
					continue
				}
				prs = append(prs, metrics.Evaluate(r.EntitiesOf(q.Focus), q.Truth))
				totalMS += float64(r.Elapsed.Microseconds()) / 1000
			}
			m := metrics.Mean(prs)
			avgMS := totalMS / float64(len(queries))
			if mode == "node" {
				res.NodeP = append(res.NodeP, m.Precision)
				res.NodeR = append(res.NodeR, m.Recall)
				res.NodeF1 = append(res.NodeF1, m.F1)
				res.NodeMS = append(res.NodeMS, avgMS)
			} else {
				res.EdgeP = append(res.EdgeP, m.Precision)
				res.EdgeR = append(res.EdgeR, m.Recall)
				res.EdgeF1 = append(res.EdgeF1, m.F1)
				res.EdgeMS = append(res.EdgeMS, avgMS)
			}
		}
	}
	return res
}

// Render formats the noise sweep (Fig. 17 panels + Table VIII rows).
func (r *NoiseResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 17 / Table VIII: robustness vs noise (k=%d)", r.K),
		Header: []string{"Noise", "Ratio", "P", "R", "F1", "Time"},
	}
	for i, ratio := range r.Ratios {
		t.AddRow("node", fmt.Sprintf("%.0f%%", ratio*100), f2(r.NodeP[i]), f2(r.NodeR[i]), f2(r.NodeF1[i]), f1ms(r.NodeMS[i]))
	}
	for i, ratio := range r.Ratios {
		t.AddRow("edge", fmt.Sprintf("%.0f%%", ratio*100), f2(r.EdgeP[i]), f2(r.EdgeR[i]), f2(r.EdgeF1[i]), f1ms(r.EdgeMS[i]))
	}
	return t
}

// --- E10: Table IX — scalability ------------------------------------------------

// Table9Row describes one graph scale.
type Table9Row struct {
	Label     string
	Nodes     int
	Edges     int
	OnlineMS  []float64 // per k
	TrainTime time.Duration
	ModelMB   float64
}

// Table9Result reproduces the scalability table.
type Table9Result struct {
	Ks   []int
	Rows []Table9Row
}

// RunTable9 builds nested-scale dbpedia-like environments (the paper
// extracts subgraphs G1 ⊂ G2 ⊂ G) and reports SGQ online time per k plus
// the offline embedding cost.
func RunTable9(scales []float64, ks []int, embedCfg embed.Config) (*Table9Result, error) {
	if len(scales) == 0 {
		scales = []float64{0.4, 0.7, 1.0}
	}
	if len(ks) == 0 {
		ks = []int{10, 20, 40}
	}
	res := &Table9Result{Ks: ks}
	for _, scale := range scales {
		env, err := Cached(Config{Profile: datagen.DBpediaLike(scale), Embed: embedCfg})
		if err != nil {
			return nil, err
		}
		row := Table9Row{
			Label:     fmt.Sprintf("G(%.1fx)", scale),
			Nodes:     env.Dataset.Graph.NumNodes(),
			Edges:     env.Dataset.Graph.NumEdges(),
			TrainTime: env.TrainTime,
			ModelMB:   float64(env.ModelBytes) / (1 << 20),
		}
		sgq := env.SGQ()
		for _, k := range ks {
			var totalMS float64
			n := 0
			for _, q := range env.Dataset.Simple {
				_, elapsed := sgq.Run(q, k)
				totalMS += float64(elapsed.Microseconds()) / 1000
				n++
			}
			row.OnlineMS = append(row.OnlineMS, totalMS/float64(n))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the scalability table.
func (r *Table9Result) Render() *Table {
	header := []string{"Graph", "Nodes", "Edges"}
	for _, k := range r.Ks {
		header = append(header, fmt.Sprintf("SGQ k=%d", k))
	}
	header = append(header, "Embed time", "Embed mem")
	t := &Table{Title: "Table IX: scalability (online SGQ vs offline embedding)", Header: header}
	for _, row := range r.Rows {
		cells := []string{row.Label, fmt.Sprintf("%d", row.Nodes), fmt.Sprintf("%d", row.Edges)}
		for _, ms := range row.OnlineMS {
			cells = append(cells, f1ms(ms))
		}
		cells = append(cells, row.TrainTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fMB", row.ModelMB))
		t.AddRow(cells...)
	}
	return t
}

// --- E11: Table X — parameter sensitivity ---------------------------------------

// Table10Result sweeps n̂ and τ.
type Table10Result struct {
	K        int
	NHats    []int
	NHatPR   []metrics.PR
	NHatMS   []float64
	Taus     []float64
	TauPR    []metrics.PR
	TauMS    []float64
	FixedTau float64
}

// RunTable10 reproduces the sensitivity analysis: vary n̂ with τ fixed,
// then vary τ with n̂ = 4. The τ range is the scaled equivalent of the
// paper's 0.6-0.9 (see Config.Tau).
func RunTable10(env *Env, k int) *Table10Result {
	if k <= 0 {
		k = 40
	}
	res := &Table10Result{K: k, FixedTau: env.Cfg.Tau}
	run := func(tau float64, nhat int) (metrics.PR, float64) {
		var prs []metrics.PR
		var totalMS float64
		for _, q := range env.Dataset.Simple {
			opts := env.SearchOptions(k)
			opts.Tau = tau
			opts.MaxHops = nhat
			r, err := env.Engine.Search(context.Background(), q.Graph, opts)
			if err != nil {
				continue
			}
			prs = append(prs, metrics.Evaluate(r.EntitiesOf(q.Focus), q.Truth))
			totalMS += float64(r.Elapsed.Microseconds()) / 1000
		}
		return metrics.Mean(prs), totalMS / float64(len(env.Dataset.Simple))
	}
	for _, nhat := range []int{2, 3, 4, 5} {
		pr, ms := run(env.Cfg.Tau, nhat)
		res.NHats = append(res.NHats, nhat)
		res.NHatPR = append(res.NHatPR, pr)
		res.NHatMS = append(res.NHatMS, ms)
	}
	for _, tau := range []float64{0.5, 0.6, 0.7, 0.8} {
		pr, ms := run(tau, 4)
		res.Taus = append(res.Taus, tau)
		res.TauPR = append(res.TauPR, pr)
		res.TauMS = append(res.TauMS, ms)
	}
	return res
}

// Render formats the sensitivity table.
func (r *Table10Result) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table X: effect of n̂ and τ (k=%d)", r.K),
		Header: []string{"Param", "Value", "P", "R", "F1", "Time"},
	}
	for i, nhat := range r.NHats {
		t.AddRow("n̂", fmt.Sprintf("%d (τ=%.2f)", nhat, r.FixedTau),
			f2(r.NHatPR[i].Precision), f2(r.NHatPR[i].Recall), f2(r.NHatPR[i].F1), f1ms(r.NHatMS[i]))
	}
	for i, tau := range r.Taus {
		t.AddRow("τ", fmt.Sprintf("%.2f (n̂=4)", tau),
			f2(r.TauPR[i].Precision), f2(r.TauPR[i].Recall), f2(r.TauPR[i].F1), f1ms(r.TauMS[i]))
	}
	return t
}

// --- E12: Ablation — the design choices of Section V -----------------------------

// AblationRow is one search variant.
type AblationRow struct {
	Variant string
	PR      metrics.PR
	TimeMS  float64
	Popped  int
}

// AblationResult compares the full A* semantic search against the
// uninformed estimate (m(u) = 1) and the paper's visited-set pruning.
type AblationResult struct {
	K    int
	Rows []AblationRow
}

// RunAblation measures each variant over the simple workload.
func RunAblation(env *Env, k int) *AblationResult {
	if k <= 0 {
		k = 40
	}
	res := &AblationResult{K: k}
	variants := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"A* semantic search (default)", func(o *core.Options) {}},
		{"uninformed (no m(u) estimate)", func(o *core.Options) { o.NoHeuristic = true }},
		{"visited-set pruning (paper Alg. 1)", func(o *core.Options) { o.PruneVisited = true }},
	}
	for _, v := range variants {
		var prs []metrics.PR
		var totalMS float64
		popped := 0
		for _, q := range env.Dataset.Simple {
			opts := env.SearchOptions(k)
			v.mutate(&opts)
			r, err := env.Engine.Search(context.Background(), q.Graph, opts)
			if err != nil {
				continue
			}
			prs = append(prs, metrics.Evaluate(r.EntitiesOf(q.Focus), q.Truth))
			totalMS += float64(r.Elapsed.Microseconds()) / 1000
			for _, s := range r.SearchStats {
				popped += s.Popped
			}
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant: v.name,
			PR:      metrics.Mean(prs),
			TimeMS:  totalMS / float64(len(env.Dataset.Simple)),
			Popped:  popped,
		})
	}
	return res
}

// Render formats the ablation.
func (r *AblationResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: search variants (k=%d)", r.K),
		Header: []string{"Variant", "P", "R", "F1", "Time", "States popped"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, f2(row.PR.Precision), f2(row.PR.Recall), f2(row.PR.F1),
			f1ms(row.TimeMS), fmt.Sprintf("%d", row.Popped))
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
