package embed

import (
	"testing"

	"semkg/internal/kg"
)

func spaceForGraph(extra int) *kg.Graph {
	b := kg.NewBuilder(4, 4)
	a := b.AddNode("a", "")
	c := b.AddNode("c", "")
	b.AddEdge(a, c, "p0")
	b.AddEdge(c, a, "p1")
	for i := 0; i < extra; i++ {
		b.AddEdge(a, c, "extra"+string(rune('a'+i)))
	}
	return b.Build()
}

// TestSpaceForPadsUnknownPredicates: a graph that grew predicates after
// training still gets a space — trained vectors by position, stable
// pseudo-random unit vectors for the rest.
func TestSpaceForPadsUnknownPredicates(t *testing.T) {
	m := &Model{Relations: []Vector{{1, 0, 0}, {0, 1, 0}}}

	exact, err := m.SpaceFor(spaceForGraph(0))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Len() != 2 || exact.Vector(0)[0] != 1 {
		t.Fatalf("exact space mangled: len=%d", exact.Len())
	}

	grown := spaceForGraph(2)
	sp1, err := m.SpaceFor(grown)
	if err != nil {
		t.Fatal(err)
	}
	if sp1.Len() != 4 {
		t.Fatalf("padded space has %d predicates, want 4", sp1.Len())
	}
	// Padding is deterministic: a restarted process derives the same
	// vectors, so cached results stay comparable.
	sp2, err := m.SpaceFor(grown)
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p < 4; p++ {
		for j := range sp1.Vector(p) {
			if sp1.Vector(p)[j] != sp2.Vector(p)[j] {
				t.Fatalf("padded vector %d not deterministic", p)
			}
		}
	}
	// Unit length (cosine stays well-defined).
	var sum float64
	for _, x := range sp1.Vector(2) {
		sum += x * x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("padded vector not normalized: |v|^2 = %v", sum)
	}

	// A model covering MORE predicates than the graph is a pairing
	// mistake, not growth.
	if _, err := (&Model{Relations: []Vector{{1}, {0}, {1}}}).SpaceFor(spaceForGraph(0)); err == nil {
		t.Fatal("SpaceFor accepted a graph with fewer predicates than the model")
	}
}
