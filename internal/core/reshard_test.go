package core

import (
	"context"
	"testing"
	"time"
)

// TestReshardingServesWhileBuilding is the ingest-latency regression
// test for semkgd -shards: constructing a ReshardingEngine must return
// immediately and serve correct answers from the base engine while the
// partition — deterministically held back by the Gate hook — is still
// building. Commit latency therefore cannot scale with repartition cost.
func TestReshardingServesWhileBuilding(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	gate := make(chan struct{})
	ready := make(chan *ShardedEngine, 1)
	r := NewResharding(e, nil, ReshardConfig{
		Shard:   ShardConfig{Shards: 3},
		Gate:    func() { <-gate },
		OnReady: func(se *ShardedEngine) { ready <- se },
		OnError: func(err error) { t.Errorf("background partition failed: %v", err) },
	})
	if r.Ready() {
		t.Fatal("engine claims ready while the partition gate is held")
	}

	q := shardedWorkload(ds)[1]
	opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
	want, err := e.Search(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Search(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEquivalent(t, q.Name+"/pre-upgrade", got, want)

	// A pre-upgrade plan compiles against the base engine and stays
	// recognized (cacheable) before and after the upgrade.
	prePlan, err := r.CompileQuery(q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prePlan.(*Plan); !ok {
		t.Fatalf("pre-upgrade plan is %T, want *Plan", prePlan)
	}
	if !prePlan.PlannedBy(r) {
		t.Fatal("pre-upgrade plan not recognized by the resharding engine")
	}

	close(gate)
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("background partition never became ready")
	}
	if !r.Ready() || r.Sharded() == nil {
		t.Fatal("engine not ready after OnReady fired")
	}

	got, err = r.Search(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEquivalent(t, q.Name+"/post-upgrade", got, want)

	// The old base plan still runs (routed to the base engine)...
	if !prePlan.PlannedBy(r) {
		t.Fatal("pre-upgrade plan forgotten after the upgrade")
	}
	res, err := r.SearchCompiled(ctx, prePlan, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEquivalent(t, q.Name+"/pre-plan-post-upgrade", res, want)

	// ...and new compilations produce sharded plans the engine owns.
	postPlan, err := r.CompileQuery(q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := postPlan.(*ShardedPlan); !ok {
		t.Fatalf("post-upgrade plan is %T, want *ShardedPlan", postPlan)
	}
	if !postPlan.PlannedBy(r) {
		t.Fatal("post-upgrade plan not recognized by the resharding engine")
	}
	if postPlan.PlannedBy(e) {
		t.Fatal("sharded plan claims the base engine planned it")
	}
	res, err = r.SearchCompiled(ctx, postPlan, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEquivalent(t, q.Name+"/sharded-plan", res, want)
}

// TestReshardingInheritsStats: the upgraded engine carries the previous
// sharded generation's monotone counters, exactly like a synchronous
// rebuild.
func TestReshardingInheritsStats(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 17)
	prev := shardedOver(t, e, 2)
	q := shardedWorkload(ds)[0]
	opts := Options{K: 3, Tau: 0.5, MaxHops: 3}
	for i := 0; i < 3; i++ {
		if _, err := prev.Search(ctx, q.Graph, opts); err != nil {
			t.Fatal(err)
		}
	}
	prevSearches := prev.Stats().Searches
	if prevSearches == 0 {
		t.Fatal("previous generation counted no searches")
	}

	ready := make(chan struct{})
	r := NewResharding(e, prev, ReshardConfig{
		Shard:   ShardConfig{Shards: 2},
		OnReady: func(*ShardedEngine) { close(ready) },
	})
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("background partition never became ready")
	}
	if got := r.Sharded().Stats().Searches; got < prevSearches {
		t.Fatalf("upgraded engine starts at %d searches, want >= %d (inherited)", got, prevSearches)
	}
}

// TestReshardingBuildFailure: a partition that cannot build reports
// through OnError and the engine keeps serving unsharded.
func TestReshardingBuildFailure(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	failed := make(chan error, 1)
	r := NewResharding(e, nil, ReshardConfig{
		Shard:   ShardConfig{Shards: -2}, // invalid: Partition rejects it
		OnError: func(err error) { failed <- err },
	})
	select {
	case <-failed:
	case <-time.After(30 * time.Second):
		t.Fatal("invalid partition never reported failure")
	}
	if r.Ready() {
		t.Fatal("engine claims ready after a failed partition")
	}
	q := shardedWorkload(ds)[0]
	if _, err := r.Search(ctx, q.Graph, Options{K: 3, Tau: 0.5, MaxHops: 3}); err != nil {
		t.Fatalf("unsharded serving broken after failed partition: %v", err)
	}
}
