// Distributed scatter-gather execution: a DistEngine is the coordinator
// half of the multi-process sharded pipeline (semkgd -shard-hosts). It
// compiles queries once, globally, against its own base engine — exactly
// as ShardedEngine does — but scatters the per-(shard, sub-query)
// searches over HTTP to shard servers (shard.Server, semkgd
// -serve-shard) instead of goroutines, gathers the sorted remote match
// streams through the same demand-driven k-way merger, and assembles
// them in the unchanged TA assembly. It implements Queryer, so the
// serving layer's caches, singleflight and admission control work over
// it unchanged.
//
// Exactness across the process boundary rests on the same three
// invariants as the in-process sharded engine (see sharded.go and
// DESIGN.md, "Distributed sharding"): first-hop ownership partitions the
// path space, semantics are resolved once globally and only *projected*
// remotely, and the gather is deterministically tie-broken. The wire
// adds a fourth: exact-mode shard streams are deterministic per (shard
// snapshot, request), so replicas are interchangeable mid-stream — a
// consumed prefix of one replica's stream plus the Offset-resumed
// suffix of another's is byte-identical to either stream whole.
//
// Failure policy: requests to a shard's replicas are hedged after a
// per-replica latency-EWMA threshold, failed attempts are retried with
// capped jittered backoff on the next replica (resuming mid-stream via
// Offset), and a shard whose every replica is dead fails the search
// with a typed *ShardUnavailableError — never a silently partial (and
// therefore possibly wrong) top-k, never a hang past the caller's
// deadline.

package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/merge"
	"semkg/internal/query"
	"semkg/internal/shardwire"
	"semkg/internal/ta"
)

// DistConfig tunes the coordinator's replica policy. The zero value is
// production-ready.
type DistConfig struct {
	// Client performs the HTTP requests. nil uses a dedicated client with
	// the default transport (no global timeout — streams are long-lived
	// and cancellation rides the request context).
	Client *http.Client
	// HedgeAfter is the time to wait for a replica's first response line
	// before launching a duplicate request on the next replica. 0 adapts
	// per replica: twice its EWMA first-line latency, clamped to
	// [1ms, 100ms]. Negative disables hedging.
	HedgeAfter time.Duration
	// Retries is the extra attempts per (shard, sub-query) stream after
	// the first fails, rotating replicas. 0 = default 3; negative = none.
	Retries int
	// RetryBackoff is the base backoff between attempts; it doubles per
	// attempt, capped at 32x, with ±50% jitter. 0 = default 5ms.
	RetryBackoff time.Duration
	// MetaTimeout bounds the construction-time metadata fetch per
	// replica. 0 = default 5s.
	MetaTimeout time.Duration
}

func (c DistConfig) withDefaults() DistConfig {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Retries == 0 {
		c.Retries = 3
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.MetaTimeout <= 0 {
		c.MetaTimeout = 5 * time.Second
	}
	return c
}

// ShardUnavailableError reports that a distributed search could not
// complete because every replica of one shard failed past the retry
// budget. It is a typed partial-result error: the coordinator refuses to
// assemble a top-k missing a shard's matches (the ranking could silently
// be wrong), so the search fails loudly instead. semkgd maps it to HTTP
// 502.
type ShardUnavailableError struct {
	// Shard and Sub locate the (shard, sub-query) stream that failed.
	Shard int
	Sub   int
	// Attempts counts the attempts made across replicas.
	Attempts int
	// Err is the last attempt's failure.
	Err error
}

// Error implements error.
func (e *ShardUnavailableError) Error() string {
	return fmt.Sprintf("core: shard %d unavailable for sub-query %d after %d attempts: %v",
		e.Shard, e.Sub, e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's failure.
func (e *ShardUnavailableError) Unwrap() error { return e.Err }

// DistStats is a point-in-time summary of the coordinator, exported by
// semkgd under the "semkgd_dist" expvar key.
type DistStats struct {
	// Shards and Halo echo the remote partition; Replicas is the replica
	// count per shard.
	Shards   int   `json:"shards"`
	Halo     int   `json:"halo"`
	Replicas []int `json:"replicas"`
	// Searches counts distributed pipeline executions; Fallbacks counts
	// searches answered by the local base engine (MaxHops beyond the
	// halo, or a test clock that cannot cross a process boundary).
	Searches  uint64 `json:"dist_searches"`
	Fallbacks uint64 `json:"local_fallbacks"`
	// Hedges counts duplicate requests launched on a slow replica's
	// sibling; Retries counts re-attempts after failures; Failovers
	// counts replica rotations within those retries.
	Hedges    uint64 `json:"hedges"`
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	// ShardErrors counts searches failed with ShardUnavailableError.
	ShardErrors uint64 `json:"shard_errors"`
}

// DistEngine is the scatter-gather coordinator over remote shard
// servers. Construct with NewDistEngine; safe for concurrent use.
type DistEngine struct {
	base  *Engine
	hosts [][]string // hosts[shard] = replica base URLs
	halo  int
	cfg   DistConfig

	// ewmaNs[shard][replica] is the EWMA of the replica's time-to-first-
	// line, feeding the adaptive hedge threshold. 0 = no observation yet.
	ewmaNs [][]atomic.Int64
	rr     atomic.Uint64 // round-robin start replica, for load spread

	searches    atomic.Uint64
	fallbacks   atomic.Uint64
	hedges      atomic.Uint64
	retries     atomic.Uint64
	failovers   atomic.Uint64
	shardErrors atomic.Uint64
}

// NewDistEngine wraps base (the coordinator's own whole-graph engine,
// used for global compilation, answer rendering and halo fallbacks) over
// remote shard servers. hosts[s] lists the replica base URLs serving
// shard s; every replica must be reachable and must validate against the
// base graph at construction (shard count, halo, and sampled node names
// must agree — a stale or foreign shard snapshot is rejected rather than
// silently producing wrong search results). Replicas may die later;
// searches then hedge, retry and fail over.
func NewDistEngine(base *Engine, hosts [][]string, cfg DistConfig) (*DistEngine, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil base engine")
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("core: no shard hosts")
	}
	cfg = cfg.withDefaults()
	de := &DistEngine{base: base, hosts: make([][]string, len(hosts)), halo: -1, cfg: cfg}
	for s, reps := range hosts {
		if len(reps) == 0 {
			return nil, fmt.Errorf("core: shard %d has no replicas", s)
		}
		for _, h := range reps {
			de.hosts[s] = append(de.hosts[s], strings.TrimRight(h, "/"))
		}
	}
	de.ewmaNs = make([][]atomic.Int64, len(hosts))
	for s := range de.hosts {
		de.ewmaNs[s] = make([]atomic.Int64, len(de.hosts[s]))
	}
	// Validate every replica once, caching per distinct URL (one process
	// may serve several shards, and a URL may replicate several shards).
	metas := make(map[string]*shardwire.Meta)
	for s, reps := range de.hosts {
		for _, h := range reps {
			meta, ok := metas[h]
			if !ok {
				var err error
				meta, err = de.fetchMeta(h)
				if err != nil {
					return nil, fmt.Errorf("core: shard %d replica %s: %w", s, h, err)
				}
				metas[h] = meta
			}
			if err := de.validateReplica(meta, s, h); err != nil {
				return nil, err
			}
		}
	}
	return de, nil
}

func (de *DistEngine) fetchMeta(host string) (*shardwire.Meta, error) {
	ctx, cancel := context.WithTimeout(context.Background(), de.cfg.MetaTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, host+shardwire.PathMeta, nil)
	if err != nil {
		return nil, err
	}
	resp, err := de.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("meta fetch: HTTP %d", resp.StatusCode)
	}
	var meta shardwire.Meta
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("parsing meta: %w", err)
	}
	return &meta, nil
}

// validateReplica cross-checks one replica's claim to serve shard s of
// this coordinator's world.
func (de *DistEngine) validateReplica(meta *shardwire.Meta, s int, host string) error {
	g := de.base.Graph()
	for i := range meta.Shards {
		info := &meta.Shards[i]
		if info.Index != s {
			continue
		}
		if info.Shards != len(de.hosts) {
			return fmt.Errorf("core: replica %s partitions into %d shards, coordinator expects %d",
				host, info.Shards, len(de.hosts))
		}
		if de.halo == -1 {
			de.halo = info.Halo
		} else if info.Halo != de.halo {
			return fmt.Errorf("core: replica %s has halo %d, other replicas have %d", host, info.Halo, de.halo)
		}
		if int(info.MaxGlobalNode) >= g.NumNodes() {
			return fmt.Errorf("core: replica %s shard %d maps node %d beyond the base graph's %d nodes (stale shard snapshot?)",
				host, s, info.MaxGlobalNode, g.NumNodes())
		}
		for _, sm := range info.Samples {
			if g.NodeName(kg.NodeID(sm.ID)) != sm.Name {
				return fmt.Errorf("core: replica %s shard %d names node %d %q, base graph says %q (stale shard snapshot?)",
					host, s, sm.ID, sm.Name, g.NodeName(kg.NodeID(sm.ID)))
			}
		}
		return nil
	}
	return fmt.Errorf("core: replica %s does not hold shard %d", host, s)
}

// Base returns the local whole-graph engine used for compilation,
// rendering and fallbacks.
func (de *DistEngine) Base() *Engine { return de.base }

// Graph implements Queryer.
func (de *DistEngine) Graph() *kg.Graph { return de.base.Graph() }

// PerMatchCost implements Queryer; distribution does not change the TA
// assembly cost model (the assembly runs on the coordinator).
func (de *DistEngine) PerMatchCost() time.Duration { return de.base.PerMatchCost() }

// Halo returns the remote partition's replication radius.
func (de *DistEngine) Halo() int { return de.halo }

// Hosts returns the per-shard replica URL lists.
func (de *DistEngine) Hosts() [][]string {
	out := make([][]string, len(de.hosts))
	for s := range de.hosts {
		out[s] = append([]string(nil), de.hosts[s]...)
	}
	return out
}

// Stats snapshots the coordinator's counters.
func (de *DistEngine) Stats() DistStats {
	st := DistStats{
		Shards:      len(de.hosts),
		Halo:        de.halo,
		Searches:    de.searches.Load(),
		Fallbacks:   de.fallbacks.Load(),
		Hedges:      de.hedges.Load(),
		Retries:     de.retries.Load(),
		Failovers:   de.failovers.Load(),
		ShardErrors: de.shardErrors.Load(),
	}
	for _, reps := range de.hosts {
		st.Replicas = append(st.Replicas, len(reps))
	}
	return st
}

// DistPlan is a compiled query for the coordinator: the base plan plus
// its global blueprints in wire form, ready to ship to any shard.
// Immutable and safe for concurrent reuse.
type DistPlan struct {
	de   *DistEngine
	base *Plan
	wire []shardwire.Blueprint
}

// Pivot implements CompiledPlan.
func (p *DistPlan) Pivot() string { return p.base.Pivot() }

// Compiled implements CompiledPlan.
func (p *DistPlan) Compiled() bool { return p.base.Compiled() }

// PlannedBy implements CompiledPlan.
func (p *DistPlan) PlannedBy(q Queryer) bool {
	d, ok := q.(*DistEngine)
	return ok && p != nil && p.de == d
}

// WireBlueprints projects the plan's sub-query blueprints into wire form:
// base-graph ids and predicate-name→weight rows, resolved once globally.
// This is the distributed twin of ShardedEngine's per-shard projection —
// except the id projection happens server-side, so one wire blueprint
// serves every shard.
func (p *Plan) WireBlueprints() ([]shardwire.Blueprint, error) {
	if !p.compiled {
		return nil, nil
	}
	g := p.eng.Graph()
	out := make([]shardwire.Blueprint, len(p.subs))
	for i, ps := range p.subs {
		bp := shardwire.Blueprint{Anchors: make([]uint32, len(ps.sub.Anchors))}
		for j, a := range ps.sub.Anchors {
			bp.Anchors[j] = uint32(a)
		}
		bp.EndSets = make([][]uint32, len(ps.sub.EndSets))
		for j, set := range ps.sub.EndSets {
			es := make([]uint32, 0, len(set))
			for u := range set {
				es = append(es, uint32(u))
			}
			sort.Slice(es, func(a, b int) bool { return es[a] < es[b] })
			bp.EndSets[j] = es
		}
		rows, err := p.eng.rows.Rows(ps.preds)
		if err != nil {
			return nil, err
		}
		bp.Rows = make([]map[string]float64, len(rows))
		for seg, row := range rows {
			named := make(map[string]float64, len(row))
			for pid, w := range row {
				named[g.PredName(kg.PredID(pid))] = w
			}
			bp.Rows[seg] = named
		}
		out[i] = bp
	}
	return out, nil
}

// Compile resolves q once against the base graph and projects the
// blueprints into wire form. One plan serves any K or time budget.
func (de *DistEngine) Compile(q *query.Graph, opts Options) (*DistPlan, error) {
	bp, err := de.base.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	wire, err := bp.WireBlueprints()
	if err != nil {
		return nil, err
	}
	return &DistPlan{de: de, base: bp, wire: wire}, nil
}

// CompileQuery implements Queryer.
func (de *DistEngine) CompileQuery(q *query.Graph, opts Options) (CompiledPlan, error) {
	p, err := de.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Search implements Queryer: the batch form of Stream, same pipeline.
func (de *DistEngine) Search(ctx context.Context, q *query.Graph, opts Options) (*Result, error) {
	p, err := de.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return de.searchPlan(ctx, p, opts)
}

// Stream implements Queryer.
func (de *DistEngine) Stream(ctx context.Context, q *query.Graph, opts Options) (*Stream, error) {
	p, err := de.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return de.streamPlan(ctx, p, opts, false)
}

// SearchCompiled implements Queryer.
func (de *DistEngine) SearchCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Result, error) {
	dp, err := de.plan(p)
	if err != nil {
		return nil, err
	}
	return de.searchPlan(ctx, dp, opts)
}

// StreamCompiled implements Queryer.
func (de *DistEngine) StreamCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Stream, error) {
	dp, err := de.plan(p)
	if err != nil {
		return nil, err
	}
	return de.streamPlan(ctx, dp, opts, false)
}

func (de *DistEngine) searchPlan(ctx context.Context, dp *DistPlan, opts Options) (*Result, error) {
	s, err := de.streamPlan(ctx, dp, opts, true)
	if err != nil {
		return nil, err
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return s.Result(), nil
}

func (de *DistEngine) plan(p CompiledPlan) (*DistPlan, error) {
	dp, ok := p.(*DistPlan)
	if !ok {
		return nil, fmt.Errorf("core: plan of type %T was not compiled by a distributed coordinator", p)
	}
	if dp.de != de {
		return nil, fmt.Errorf("core: plan was compiled by a different coordinator")
	}
	return dp, nil
}

// streamPlan validates, then runs the distributed pipeline — or the
// local base pipeline when the remote partition cannot serve the request
// (MaxHops beyond the halo, or a test Clock, which cannot cross a
// process boundary).
func (de *DistEngine) streamPlan(ctx context.Context, dp *DistPlan, opts Options, quiet bool) (*Stream, error) {
	if err := opts.Validate(); err != nil {
		return nil, badRequest(err)
	}
	opts = opts.withDefaults()
	if err := dp.base.check(de.base, opts); err != nil {
		return nil, err
	}
	if opts.MaxHops > de.halo || opts.Clock != nil {
		de.fallbacks.Add(1)
		return de.base.startStream(ctx, dp.base, opts, quiet)
	}
	if opts.TimeBound > 0 {
		de.base.perMatchCost() // calibrate outside the timed window
	}
	de.searches.Add(1)
	start := time.Now()
	buffer := streamBuffer
	if quiet {
		buffer = 0
	}
	s := &Stream{events: make(chan Event, buffer), done: make(chan struct{}), quiet: quiet}
	if quiet {
		de.runDist(ctx, s, dp, opts, start)
	} else {
		go de.runDist(ctx, s, dp, opts, start)
	}
	return s, nil
}

// runDist is the pipeline goroutine behind the coordinator's Stream; it
// mirrors ShardedEngine.runSharded with remote sources.
func (de *DistEngine) runDist(ctx context.Context, s *Stream, dp *DistPlan, opts Options, start time.Time) {
	d := dp.base.d
	res := &Result{Decomposition: d}
	if dp.base.compiled {
		var finals []ta.Final
		var err error
		if opts.TimeBound > 0 {
			finals, err = de.gatherTBQ(ctx, s, dp, opts, res)
		} else {
			finals, err = de.gatherSGQ(ctx, s, dp, opts, res)
		}
		if err != nil {
			de.shardErrors.Add(1)
			s.fail(err)
			return
		}
		res.Answers = de.base.renderAnswers(finals, d)
		lk, umax, round := s.lastBounds()
		s.emit(TopKEvent{Answers: res.Answers, LowerK: lk, UpperMax: umax, Round: round})
	}
	res.Elapsed = time.Since(start)
	s.res = res
	s.emit(ResultEvent{Result: res})
	close(s.events)
	close(s.done)
}

// gatherState is the shared failure slot of one scatter: the first
// source to exhaust its retries records the typed error and cancels the
// whole fetch, so the query fails fast instead of finishing a doomed
// assembly.
type gatherState struct {
	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
}

func (gs *gatherState) fail(err error) {
	gs.mu.Lock()
	if gs.err == nil {
		gs.err = err
	}
	gs.mu.Unlock()
	gs.cancel()
}

func (gs *gatherState) failure() error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.err
}

// baseRequest assembles the wire request for one (shard, sub) search.
func (dp *DistPlan) baseRequest(shard, sub int, opts Options) shardwire.SearchRequest {
	return shardwire.SearchRequest{
		Shard:        shard,
		Sub:          sub,
		Blueprint:    dp.wire[sub],
		Tau:          dp.base.copts.tau,
		MaxHops:      dp.base.copts.maxHops,
		NoHeuristic:  dp.base.copts.noHeuristic,
		PruneVisited: dp.base.copts.pruneVisited,
	}
}

// gatherSGQ is the exact-mode distributed scatter-gather: one remote
// source per (shard, sub) streams sorted matches into a buffered
// channel; per-sub-query sorted mergers (shard-major source order, the
// same deterministic tie-break as in-process) feed the TA assembly,
// which consumes on demand while the sources fill their buffers
// concurrently.
func (de *DistEngine) gatherSGQ(ctx context.Context, s *Stream, dp *DistPlan, opts Options, res *Result) ([]ta.Final, error) {
	nsub := len(dp.base.subs)
	nshard := len(de.hosts)
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	gs := &gatherState{cancel: cancel}

	s.emit(PhaseEvent{Phase: PhaseSearch})
	sources := make([][]merge.Source, nsub)
	var all []*remoteSource
	var wg sync.WaitGroup
	for shard := 0; shard < nshard; shard++ {
		for sub := 0; sub < nsub; sub++ {
			src := &remoteSource{
				de: de, s: s, gs: gs, ctx: fctx,
				shard: shard, sub: sub,
				req: dp.baseRequest(shard, sub, opts),
				ch:  make(chan astar.Match, remoteSourceBuffer),
			}
			all = append(all, src)
			sources[sub] = append(sources[sub], src) // shard-major order per sub
			wg.Add(1)
			go func() {
				defer wg.Done()
				src.run()
			}()
		}
	}
	// The gather is fully streaming — there is no prefetch barrier whose
	// counts could label this event, so the assemble phase begins
	// immediately with the sources still filling.
	s.emit(PhaseEvent{Phase: PhaseAssemble})

	streams := make([]ta.Stream, nsub)
	for i := range streams {
		streams[i] = merge.Sorted(sources[i]...)
	}
	asm := ta.NewAssembler(streams, opts.K)
	var onRound func(int)
	if !s.quiet {
		onRound = func(r int) {
			lk, umax := asm.Bounds()
			s.emitProvisional(de.base, dp.base.d, asm.Provisional(), lk, umax, r)
		}
	}
	finals := asm.Run(onRound)
	cancel()  // release sources the assembly never drained
	wg.Wait() // all source goroutines stopped: safe to read their state and close the stream
	if err := gs.failure(); err != nil {
		return nil, err
	}
	de.collectStats(all, res, nsub, nshard)
	return finals, nil
}

// collectStats aggregates the per-source remote A* stats. Sources
// cancelled before their terminal line report zeros — the remote search
// was abandoned mid-stream and its true effort never crossed the wire.
func (de *DistEngine) collectStats(all []*remoteSource, res *Result, nsub, nshard int) {
	res.SearchStats = make([]astar.Stats, nsub)
	res.ShardEffort = make([]astar.Stats, nshard)
	for _, src := range all {
		st := src.stats
		for _, agg := range []*astar.Stats{&res.SearchStats[src.sub], &res.ShardEffort[src.shard]} {
			agg.Popped += st.Popped
			agg.Pushed += st.Pushed
			agg.Pruned += st.Pruned
			agg.Emitted += st.Emitted
		}
	}
}

// gatherTBQ is the time-bounded distributed pipeline: every (shard, sub)
// search runs eagerly on its shard server under a local estimator whose
// per-match cost is pre-scaled by the shard count (each server only sees
// its own collection count; scaling t by N keeps the distributed alert
// at least as conservative as the in-process shared estimator — see
// shardedTBQ). The collected sets merge best-per-end across shards and
// assemble exactly as in-process.
func (de *DistEngine) gatherTBQ(ctx context.Context, s *Stream, dp *DistPlan, opts Options, res *Result) ([]ta.Final, error) {
	nsub := len(dp.base.subs)
	nshard := len(de.hosts)
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	gs := &gatherState{cancel: cancel}

	s.emit(PhaseEvent{Phase: PhaseSearch})
	perMatch := de.base.perMatchCost() * time.Duration(nshard)
	all := make([]*remoteSource, 0, nshard*nsub)
	var wg sync.WaitGroup
	for shard := 0; shard < nshard; shard++ {
		for sub := 0; sub < nsub; sub++ {
			req := dp.baseRequest(shard, sub, opts)
			req.Eager = true
			req.TimeBoundNs = int64(opts.TimeBound)
			req.AlertRatio = opts.AlertRatio
			req.PerMatchNs = int64(perMatch)
			src := &remoteSource{
				de: de, s: s, gs: gs, ctx: fctx,
				shard: shard, sub: sub, req: req,
			}
			all = append(all, src)
			wg.Add(1)
			go func() {
				defer wg.Done()
				src.runEager()
			}()
		}
	}
	wg.Wait()
	if err := gs.failure(); err != nil {
		return nil, err
	}

	perSub := make([][]map[kg.NodeID]astar.Match, nsub)
	allExhausted := true
	for _, src := range all { // shard-major: deterministic equal-PSS winner
		perSub[src.sub] = append(perSub[src.sub], src.eager)
		if !src.exhausted {
			allExhausted = false
		}
	}
	streams := make([]ta.Stream, nsub)
	counts := make([]int, nsub)
	for i := range streams {
		ms := merge.BestByEnd(perSub[i]...)
		counts[i] = len(ms)
		streams[i] = &ta.SliceStream{Matches: ms}
	}
	res.Approximate = !allExhausted
	res.Collected = counts
	s.emit(PhaseEvent{Phase: PhaseAssemble, Collected: counts})

	asm := ta.NewAssembler(streams, opts.K)
	var onRound func(int)
	if !s.quiet {
		onRound = func(r int) {
			lk, umax := asm.Bounds()
			s.emitProvisional(de.base, dp.base.d, asm.Provisional(), lk, umax, r)
		}
	}
	finals := asm.Run(onRound)
	de.collectStats(all, res, nsub, nshard)
	return finals, nil
}

// remoteSourceBuffer is the per-source match channel capacity: the
// distributed analogue of the in-process prefetch — sources stream ahead
// of the assembly by up to this many matches.
const remoteSourceBuffer = 64

// remoteSource is one (shard, sub) stream: a background goroutine
// fetches matches over HTTP — hedging, retrying and failing over across
// the shard's replicas — into a buffered channel that the sorted merger
// consumes via Next. On unrecoverable failure it records a typed error
// in the shared gatherState and cancels the scatter.
type remoteSource struct {
	de  *DistEngine
	s   *Stream
	gs  *gatherState
	ctx context.Context

	shard, sub int
	req        shardwire.SearchRequest
	ch         chan astar.Match

	// pushed counts matches delivered downstream: the Offset resume point
	// for mid-stream failover. Owned by the run goroutine.
	pushed int

	// Terminal state, read only after the source goroutine exits.
	stats     astar.Stats
	exhausted bool
	eager     map[kg.NodeID]astar.Match
}

// Next implements merge.Source for the exact mode.
func (src *remoteSource) Next() (astar.Match, bool) {
	m, ok := <-src.ch
	return m, ok
}

// run drives the exact-mode stream to its terminal line, retrying with
// capped jittered backoff and rotating replicas on failure.
func (src *remoteSource) run() {
	defer close(src.ch)
	src.retryLoop(func(rep int) error { return src.attempt(rep) })
}

// runEager drives one eager (TBQ) fetch. Eager responses are
// timing-dependent (the estimator stops on wall clock), so a retry
// restarts collection from scratch instead of resuming by offset —
// every attempt's set is a valid collection, and only a completed
// attempt's set is kept.
func (src *remoteSource) runEager() {
	src.retryLoop(func(rep int) error { return src.attemptEager(rep) })
}

// retryLoop runs attempts until one succeeds, the context dies (the
// caller cancelled or another source failed — not this source's fault),
// or the retry budget is spent, which records the typed shard failure.
func (src *remoteSource) retryLoop(attempt func(rep int) error) {
	reps := src.de.hosts[src.shard]
	rep := int(src.de.rr.Add(1)) % len(reps)
	backoff := src.de.cfg.RetryBackoff
	attempts := 0
	for {
		if src.ctx.Err() != nil {
			return
		}
		err := attempt(rep)
		if err == nil || src.ctx.Err() != nil {
			return
		}
		attempts++
		if attempts > src.de.cfg.Retries {
			src.gs.fail(&ShardUnavailableError{Shard: src.shard, Sub: src.sub, Attempts: attempts, Err: err})
			return
		}
		src.de.retries.Add(1)
		if !sleepCtx(src.ctx, jitterDuration(backoff)) {
			return
		}
		if backoff < src.de.cfg.RetryBackoff*32 {
			backoff *= 2
		}
		if len(reps) > 1 {
			rep = (rep + 1) % len(reps)
			src.de.failovers.Add(1)
		}
	}
}

// attempt opens one exact-mode stream (resuming past the matches already
// delivered) and pumps it to the terminal line.
func (src *remoteSource) attempt(rep int) error {
	req := src.req
	req.Offset = src.pushed
	ws, err := src.de.openStream(src.ctx, src.shard, rep, &req)
	if err != nil {
		return err
	}
	defer ws.Close()
	for {
		line, err := ws.next()
		if err != nil {
			return fmt.Errorf("core: shard %d stream: %w", src.shard, err)
		}
		if line.Error != "" {
			return fmt.Errorf("core: shard %d remote error: %s", src.shard, line.Error)
		}
		if line.Done {
			src.stats = wireStats(line.Stats)
			src.exhausted = line.Exhausted
			return nil
		}
		select {
		case src.ch <- lineMatch(line):
			src.pushed++
			if !src.s.quiet {
				src.s.emit(ProgressEvent{Shard: src.shard + 1, Sub: src.sub, Collected: src.pushed})
			}
		case <-src.ctx.Done():
			return nil // cancelled: retryLoop sees ctx.Err and exits cleanly
		}
	}
}

// attemptEager fetches one complete eager response.
func (src *remoteSource) attemptEager(rep int) error {
	ws, err := src.de.openStream(src.ctx, src.shard, rep, &src.req)
	if err != nil {
		return err
	}
	defer ws.Close()
	best := make(map[kg.NodeID]astar.Match)
	for {
		line, err := ws.next()
		if err != nil {
			return fmt.Errorf("core: shard %d eager fetch: %w", src.shard, err)
		}
		if line.Error != "" {
			return fmt.Errorf("core: shard %d remote error: %s", src.shard, line.Error)
		}
		if line.Done {
			src.eager = best
			src.stats = wireStats(line.Stats)
			src.exhausted = line.Exhausted
			if !src.s.quiet {
				src.s.emit(ProgressEvent{Shard: src.shard + 1, Sub: src.sub, Collected: len(best), Done: true})
			}
			return nil
		}
		m := lineMatch(line)
		best[m.End()] = m
	}
}

// wireStream is one open search response: the winning replica's body
// with its eagerly-read first line pending.
type wireStream struct {
	lr      *shardwire.LineReader
	body    io.ReadCloser
	cancel  context.CancelFunc
	pending *shardwire.Line
}

func (ws *wireStream) next() (shardwire.Line, error) {
	if ws.pending != nil {
		l := *ws.pending
		ws.pending = nil
		return l, nil
	}
	return ws.lr.Next()
}

func (ws *wireStream) Close() {
	ws.cancel()
	ws.body.Close()
}

// openStream opens the search on replica rep, hedging onto the next
// replica when the first response line has not arrived within the hedge
// threshold. The winner's stream is returned; the loser is cancelled.
func (de *DistEngine) openStream(ctx context.Context, shard, rep int, req *shardwire.SearchRequest) (*wireStream, error) {
	reps := de.hosts[shard]
	delay := de.hedgeDelay(shard, rep)
	if len(reps) < 2 || delay <= 0 {
		return de.openOne(ctx, shard, rep, req)
	}
	type opened struct {
		ws  *wireStream
		err error
	}
	launch := func(r int) chan opened {
		ch := make(chan opened, 1)
		go func() {
			ws, err := de.openOne(ctx, shard, r, req)
			ch <- opened{ws, err}
		}()
		return ch
	}
	abandon := func(ch chan opened) {
		go func() {
			if o := <-ch; o.ws != nil {
				o.ws.Close()
			}
		}()
	}
	first := launch(rep)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var second chan opened
	for {
		select {
		case o := <-first:
			if o.err == nil {
				if second != nil {
					abandon(second)
				}
				return o.ws, nil
			}
			if second == nil {
				return nil, o.err // failed before the hedge fired: retryLoop rotates
			}
			if o2 := <-second; o2.err == nil {
				return o2.ws, nil
			}
			return nil, o.err
		case o2 := <-second: // nil until the hedge launches (blocks forever)
			if o2.err == nil {
				abandon(first)
				return o2.ws, nil
			}
			second = nil // hedge failed; keep waiting on the primary
		case <-timer.C:
			de.hedges.Add(1)
			second = launch((rep + 1) % len(reps))
		case <-ctx.Done():
			abandon(first)
			if second != nil {
				abandon(second)
			}
			return nil, ctx.Err()
		}
	}
}

// openOne issues one search request and blocks until the first response
// line (so hedging covers server-side compute stalls, not just connect
// latency), recording the replica's first-line latency EWMA.
func (de *DistEngine) openOne(ctx context.Context, shard, rep int, req *shardwire.SearchRequest) (*wireStream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	actx, cancel := context.WithCancel(ctx)
	hr, err := http.NewRequestWithContext(actx, http.MethodPost,
		de.hosts[shard][rep]+shardwire.PathSearch, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := de.cfg.Client.Do(hr)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("HTTP %d from %s: %s", resp.StatusCode, de.hosts[shard][rep], strings.TrimSpace(string(msg)))
	}
	lr := shardwire.NewLineReader(resp.Body)
	line, err := lr.Next()
	if err != nil {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("reading first response line: %w", err)
	}
	de.observeLatency(shard, rep, time.Since(start))
	return &wireStream{lr: lr, body: resp.Body, cancel: cancel, pending: &line}, nil
}

// observeLatency folds one first-line latency into the replica's EWMA
// (α = 1/4).
func (de *DistEngine) observeLatency(shard, rep int, d time.Duration) {
	slot := &de.ewmaNs[shard][rep]
	for {
		old := slot.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old - old/4 + int64(d)/4
		}
		if next <= 0 {
			next = 1
		}
		if slot.CompareAndSwap(old, next) {
			return
		}
	}
}

// hedgeDelay is the wait before duplicating a request onto the next
// replica: the configured threshold, or (adaptively) twice the replica's
// first-line EWMA clamped to [1ms, 100ms]. <= 0 disables hedging.
func (de *DistEngine) hedgeDelay(shard, rep int) time.Duration {
	if de.cfg.HedgeAfter != 0 {
		return de.cfg.HedgeAfter // negative disables
	}
	e := time.Duration(de.ewmaNs[shard][rep].Load())
	if e == 0 {
		return 25 * time.Millisecond // no observation yet
	}
	d := 2 * e
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// lineMatch rebuilds an astar.Match (in base-graph ids) from its wire
// line.
func lineMatch(l shardwire.Line) astar.Match {
	m := astar.Match{
		Nodes:   make([]kg.NodeID, len(l.Nodes)),
		Edges:   make([]kg.EdgeID, len(l.Edges)),
		SegEnds: l.SegEnds,
		PSS:     l.PSS,
	}
	for i, u := range l.Nodes {
		m.Nodes[i] = kg.NodeID(u)
	}
	for i, e := range l.Edges {
		m.Edges[i] = kg.EdgeID(e)
	}
	return m
}

func wireStats(st *shardwire.SearchStats) astar.Stats {
	if st == nil {
		return astar.Stats{}
	}
	return astar.Stats{Popped: st.Popped, Pushed: st.Pushed, Pruned: st.Pruned, Emitted: st.Emitted}
}

// sleepCtx sleeps d or until ctx dies; reports false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// jitterDuration spreads d by ±50% so synchronized retries from many
// sources do not stampede a recovering replica.
func jitterDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(int64(d)))
}
