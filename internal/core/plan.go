// Plan compilation: the query-dependent, run-independent front half of the
// pipeline. Compile resolves a query graph into a decomposition plus one
// searcher blueprint per sub-query (φ match sets and query predicates);
// StreamPlan/SearchPlan then run the pipeline from the compiled form. The
// split exists for the serving layer (internal/serve): repeated query
// shapes cache the Plan and skip decomposition and φ resolution entirely,
// while each run still gets fresh searcher state (A* arenas and weighter
// slabs are mutable and must not be shared across concurrent runs).

package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"slices"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/semgraph"
	"semkg/internal/transform"
)

// compileOpts are the Options fields that affect compilation (pivot
// selection, decomposition, φ resolution and searcher pruning). Runtime
// fields — K, TimeBound, AlertRatio, Clock — are deliberately absent, so
// one Plan serves any K or time budget. The struct is comparable: a plan
// cache can use it (plus the query) as a key, and StreamPlan uses it to
// reject a plan/options mismatch.
type compileOpts struct {
	tau          float64
	maxHops      int
	strategy     query.PivotStrategy
	pivotNode    string
	noHeuristic  bool
	pruneVisited bool
}

func compileOptsOf(o Options) compileOpts {
	return compileOpts{
		tau:          o.Tau,
		maxHops:      o.MaxHops,
		strategy:     o.Strategy,
		pivotNode:    o.PivotNode,
		noHeuristic:  o.NoHeuristic,
		pruneVisited: o.PruneVisited,
	}
}

// planSub is one sub-query's searcher blueprint: the compiled φ sets and
// the query predicates whose weight rows the per-run weighter materializes.
// Anchors and EndSets are read-only after compilation and safe to share
// across concurrent runs.
type planSub struct {
	sub   astar.SubQuery
	preds []string
}

// Plan is a compiled query: the decomposition and per-sub-query searcher
// blueprints. A Plan is immutable, tied to the engine that compiled it,
// and safe for concurrent reuse — every StreamPlan/SearchPlan call builds
// fresh searchers from the blueprints.
type Plan struct {
	eng      *Engine
	d        *query.Decomposition
	subs     []planSub
	compiled bool
	copts    compileOpts
}

// Pivot returns the decomposition's pivot query node ID.
func (p *Plan) Pivot() string { return p.d.Pivot }

// Compiled reports whether every query node matched at least one graph
// entity. A non-compiled plan is still runnable — it yields the empty
// answer set (the paper's G1_Q mismatch case), not an error.
func (p *Plan) Compiled() bool { return p.compiled }

// CompiledBy reports whether e compiled this plan. The serving layer's
// plan cache uses it to discard entries that survived an engine swap.
func (p *Plan) CompiledBy(e *Engine) bool { return p != nil && p.eng == e }

// Compile resolves q into a reusable Plan under the compile-relevant
// options (Tau, MaxHops, Strategy/PivotNode, NoHeuristic, PruneVisited).
// Validation and decomposition errors are wrapped as BadRequestError,
// exactly as in Search/Stream.
func (e *Engine) Compile(q *query.Graph, opts Options) (*Plan, error) {
	// One φ memo per compilation: the cost estimator (pivot selection) and
	// the blueprint compilation resolve the same query nodes.
	return e.compileMemo(q, opts, e.matcher.Memo())
}

// compileMemo is Compile with an explicit φ memo, so a batch compilation
// (CompileBatch) can resolve repeated names and types once for the whole
// group instead of once per query.
func (e *Engine) compileMemo(q *query.Graph, opts Options, memo *transform.Memo) (*Plan, error) {
	if err := opts.Validate(); err != nil {
		return nil, badRequest(err)
	}
	opts = opts.withDefaults()

	d, err := e.decompose(q, opts, memo)
	if err != nil {
		return nil, badRequest(err)
	}
	p := &Plan{eng: e, d: d, copts: compileOptsOf(opts)}
	subs, compiled, err := e.compileSubs(q, d, memo)
	if err != nil {
		return nil, err
	}
	p.subs, p.compiled = subs, compiled
	return p, nil
}

// compileSubs resolves each sub-query's φ sets and predicates into a
// searcher blueprint. compiled=false (with nil error) means some query
// node has no matches.
func (e *Engine) compileSubs(q *query.Graph, d *query.Decomposition, memo *transform.Memo) ([]planSub, bool, error) {
	subs := make([]planSub, 0, len(d.Subs))
	for _, sub := range d.Subs {
		anchorNode, _ := q.NodeByID(sub.Anchor())
		anchors := memo.MatchNode(anchorNode.Name, anchorNode.Type)
		if len(anchors) == 0 {
			return nil, false, nil
		}
		endSets := make([]map[kg.NodeID]bool, sub.Len())
		for i := 1; i < len(sub.NodeIDs); i++ {
			n, _ := q.NodeByID(sub.NodeIDs[i])
			ids := memo.MatchNode(n.Name, n.Type)
			if len(ids) == 0 {
				return nil, false, nil
			}
			set := make(map[kg.NodeID]bool, len(ids))
			for _, id := range ids {
				set[id] = true
			}
			endSets[i-1] = set
		}
		preds := make([]string, sub.Len())
		for i, edge := range sub.Edges {
			preds[i] = edge.Predicate
		}
		// Resolve the predicates now so a vocabulary problem surfaces at
		// compile time (the rows are retained by the engine's RowCache, so
		// this also pre-warms the per-run weighter).
		if _, err := semgraph.NewWeighterCached(e.rows, preds); err != nil {
			return nil, false, err
		}
		subs = append(subs, planSub{
			sub:   astar.SubQuery{Anchors: anchors, EndSets: endSets},
			preds: preds,
		})
	}
	return subs, true, nil
}

// searchersWith instantiates fresh searchers from the plan's blueprints,
// skipping (leaving nil) the slots covered by a shared source. Weighters
// and searchers hold per-run mutable state, so every run gets its own;
// the φ sets and weight rows are shared. Pass shared == nil for a fully
// private run.
func (e *Engine) searchersWith(p *Plan, shared []SubSource) ([]*astar.Searcher, error) {
	if !p.compiled {
		return nil, nil
	}
	searchers := make([]*astar.Searcher, len(p.subs))
	for i := range p.subs {
		if shared != nil && shared[i] != nil {
			continue
		}
		sr, err := e.subSearcher(p, i)
		if err != nil {
			return nil, err
		}
		searchers[i] = sr
	}
	return searchers, nil
}

// subSearcher instantiates one fresh searcher for the i-th sub-query
// blueprint of p.
func (e *Engine) subSearcher(p *Plan, i int) (*astar.Searcher, error) {
	ps := p.subs[i]
	w, err := semgraph.NewWeighterCached(e.rows, ps.preds)
	if err != nil {
		return nil, err
	}
	sopts := astar.Options{
		Tau:          p.copts.tau,
		MaxHops:      p.copts.maxHops,
		NoHeuristic:  p.copts.noHeuristic,
		PruneVisited: p.copts.pruneVisited,
	}
	return astar.NewSearcher(e.g, w, ps.sub, sopts), nil
}

// Subqueries returns the number of compiled sub-query blueprints (0 for a
// non-compiled plan).
func (p *Plan) Subqueries() int {
	if !p.compiled {
		return 0
	}
	return len(p.subs)
}

// SubqueryKey returns a stable content hash identifying the i-th
// sub-query's searcher blueprint together with every option that shapes
// its enumeration: the anchors in push order (the frontier breaks equal
// priorities by insertion order, so order is semantic), the per-segment φ
// end sets as sets (membership-only), the per-segment query predicates
// whose weight rows the searcher materializes, and the search-relevant
// compile options (τ, n̂, heuristic and visited-pruning switches).
//
// Two plans — from different queries, or the same query under different
// runtime options — whose sub-queries share a key enumerate the identical
// match sequence on the same engine, so one A* search can serve both.
// The key deliberately excludes engine identity: a cross-query sharing
// layer must additionally gate on the engine/generation it compiled
// against, exactly as internal/serve's caches do.
func (p *Plan) SubqueryKey(i int) string {
	ps := p.subs[i]
	h := sha256.New()
	fmt.Fprintf(h, "tau=%g|hops=%d|nh=%t|pv=%t|",
		p.copts.tau, p.copts.maxHops, p.copts.noHeuristic, p.copts.pruneVisited)
	fmt.Fprintf(h, "a%d:", len(ps.sub.Anchors))
	for _, a := range ps.sub.Anchors {
		fmt.Fprintf(h, "%d,", a)
	}
	for seg, set := range ps.sub.EndSets {
		ids := make([]kg.NodeID, 0, len(set))
		for id, member := range set {
			if member {
				ids = append(ids, id)
			}
		}
		slices.Sort(ids)
		fmt.Fprintf(h, "e%d:%d:", seg, len(ids))
		for _, id := range ids {
			fmt.Fprintf(h, "%d,", id)
		}
	}
	for _, pred := range ps.preds {
		fmt.Fprintf(h, "p%d:%s", len(pred), pred)
	}
	return string(h.Sum(nil))
}

// SearchPlan is Search over a pre-compiled plan: the same pipeline with
// decomposition and φ resolution skipped. The plan must come from this
// engine's Compile, under options whose compile-relevant fields match.
func (e *Engine) SearchPlan(ctx context.Context, p *Plan, opts Options) (*Result, error) {
	s, err := e.streamPlan(ctx, p, opts, true)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// StreamPlan is Stream over a pre-compiled plan; see SearchPlan.
func (e *Engine) StreamPlan(ctx context.Context, p *Plan, opts Options) (*Stream, error) {
	return e.streamPlan(ctx, p, opts, false)
}

// planMismatch explains a plan/options incompatibility.
func (p *Plan) check(e *Engine, opts Options) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	if p.eng != e {
		return fmt.Errorf("core: plan was compiled by a different engine")
	}
	if p.copts != compileOptsOf(opts) {
		return badRequest(fmt.Errorf("core: plan incompatible with options: compiled with %+v, run with %+v",
			p.copts, compileOptsOf(opts)))
	}
	return nil
}
