package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"semkg/internal/api"
	"semkg/internal/serve"
)

// searchEntities runs the q117 search and returns the answered entities.
func searchEntities(t *testing.T, srv *httptest.Server) map[string]bool {
	t.Helper()
	resp := post(t, srv, "/v1/search", strings.Replace(q117Body, "%s", "", 1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	var res api.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, a := range res.Answers {
		got[a.Entity] = true
	}
	return got
}

// TestIngestEndpoint is the live-ingestion acceptance path: triples
// POSTed to /v1/ingest are findable by the very next query, with no
// restart — the batch commits as one delta and the serving generation
// advances exactly once.
func TestIngestEndpoint(t *testing.T) {
	srv := testServer(t, serve.Config{})

	if searchEntities(t, srv)["BMW_i8"] {
		t.Fatal("BMW_i8 findable before ingestion")
	}

	body := `{"s":"BMW_i8","p":"type","o":"Automobile"}
{"s":"BMW_i8","p":"assembly","o":"Germany"}

{"s":"BMW_i8","p":"sponsor","o":"FC_Bayern"}
`
	resp := post(t, srv, "/v1/ingest", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		t.Fatalf("ingest status = %d (%v)", resp.StatusCode, msg)
	}
	var ing api.IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if ing.Triples != 3 || ing.AddedNodes != 2 || ing.AddedEdges != 2 {
		t.Fatalf("ingest result = %+v, want 3 triples / 2 nodes / 2 edges", ing)
	}
	if ing.Generation != 1 {
		t.Fatalf("generation = %d, want 1", ing.Generation)
	}

	// The new entity answers the very next query. The "sponsor" predicate
	// was unknown to the space; the padded vector keeps the engine build
	// working.
	if !searchEntities(t, srv)["BMW_i8"] {
		t.Fatal("BMW_i8 not findable after ingestion")
	}

	// healthz reflects the committed graph and generation.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["generation"].(float64) != 1 {
		t.Fatalf("healthz generation = %v, want 1", h["generation"])
	}
}

// TestIngestRejectsBadBatches: any malformed line rejects the whole batch
// before anything is published.
func TestIngestRejectsBadBatches(t *testing.T) {
	srv := testServer(t, serve.Config{})
	cases := []struct{ name, body string }{
		{"malformed JSON", `{"s":"A","p":`},
		{"unknown field", `{"s":"A","p":"x","o":"B","bogus":1}`},
		{"empty component", `{"s":"A","p":"","o":"B"}`},
		{"tab in name", "{\"s\":\"A\\tB\",\"p\":\"x\",\"o\":\"B\"}"},
		{"comment-marker name", `{"s":"#A","p":"x","o":"B"}`},
	}
	for _, tc := range cases {
		resp := post(t, srv, "/v1/ingest", `{"s":"Good","p":"x","o":"Node"}`+"\n"+tc.body)
		var msg map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%v)", tc.name, resp.StatusCode, msg)
		}
	}
	// Nothing from the rejected batches leaked into the graph.
	if searchEntities(t, srv)["Good"] {
		t.Fatal("rejected batch partially applied")
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["generation"].(float64) != 0 {
		t.Fatalf("generation advanced to %v on rejected batches", h["generation"])
	}
}

// TestIngestBodyCap: a batch larger than the configured cap is rejected
// with 413 before it can exhaust memory, and nothing publishes.
func TestIngestBodyCap(t *testing.T) {
	srv := httptest.NewServer(newMuxLimits(serve.New(testEngine(t), serve.Config{Build: testEngineBuilder(t)}), 256))
	t.Cleanup(srv.Close)
	var big strings.Builder
	for i := 0; big.Len() < 1024; i++ {
		fmt.Fprintf(&big, `{"s":"Node_%d","p":"x","o":"Node_%d"}`+"\n", i, i+1)
	}
	resp := post(t, srv, "/v1/ingest", big.String())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["generation"].(float64) != 0 {
		t.Fatalf("generation advanced to %v on an oversized batch", h["generation"])
	}
}

// TestIngestEmptyBatch: an empty body is a valid no-op that does not bump
// the generation.
func TestIngestEmptyBatch(t *testing.T) {
	srv := testServer(t, serve.Config{})
	resp := post(t, srv, "/v1/ingest", "\n\n")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ing api.IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if ing.Triples != 0 || ing.Generation != 0 {
		t.Fatalf("empty batch: %+v", ing)
	}
}
