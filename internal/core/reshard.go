// Background resharding: a ReshardingEngine serves a freshly committed
// graph immediately through a whole-graph Engine while the shard
// partition rebuilds in a background goroutine, then upgrades itself
// atomically once the ShardedEngine is ready.
//
// This exists for semkgd -shards ingest: partitioning is a full-graph
// BFS plus one subgraph index build per shard, which at millions of
// nodes costs orders of magnitude more than applying a small delta.
// Rebuilding the partition synchronously inside every ingest commit
// would make ingest latency scale with *graph* size instead of *delta*
// size. The resharding engine decouples them — commits return as soon
// as the base engine is up, and scatter-gather resumes when the
// background partition lands. Both phases answer from the same
// committed graph, so results are correct throughout; only the
// execution strategy (and its speedup) lags.

package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"semkg/internal/kg"
	"semkg/internal/query"
)

// ReshardConfig configures a background reshard.
type ReshardConfig struct {
	// Shard is the partition shape to rebuild.
	Shard ShardConfig
	// Gate, when non-nil, is called in the background goroutine before
	// partitioning starts. Tests use it to hold the upgrade back and
	// observe the pre-upgrade serving path deterministically.
	Gate func()
	// OnReady is called (from the background goroutine) after the upgrade
	// lands; OnError is called if partitioning fails, in which case the
	// engine keeps serving unsharded indefinitely.
	OnReady func(*ShardedEngine)
	OnError func(error)
}

// ReshardingEngine is a Queryer that starts as a plain Engine and
// becomes a ShardedEngine when its background partition completes.
// Construct with NewResharding; safe for concurrent use.
type ReshardingEngine struct {
	base *Engine
	cfg  ReshardConfig
	se   atomic.Pointer[ShardedEngine]
}

// NewResharding returns an engine serving from base immediately and
// kicks off the background partition. prev, when non-nil, donates its
// monotone serving counters to the upgraded engine (the same stats
// inheritance a synchronous rebuild performs).
func NewResharding(base *Engine, prev *ShardedEngine, cfg ReshardConfig) *ReshardingEngine {
	r := &ReshardingEngine{base: base, cfg: cfg}
	go r.build(prev)
	return r
}

func (r *ReshardingEngine) build(prev *ShardedEngine) {
	if r.cfg.Gate != nil {
		r.cfg.Gate()
	}
	se, err := r.buildSharded()
	if err != nil {
		if r.cfg.OnError != nil {
			r.cfg.OnError(err)
		}
		return
	}
	if prev != nil {
		se.InheritStats(prev)
	}
	r.se.Store(se)
	if r.cfg.OnReady != nil {
		r.cfg.OnReady(se)
	}
}

// buildSharded is the fallible half of the background build. Negative
// shard counts are rejected here rather than silently defaulted —
// ShardConfig.withDefaults only fills zeros for the synchronous path,
// where the caller sees the config it passed.
func (r *ReshardingEngine) buildSharded() (*ShardedEngine, error) {
	if r.cfg.Shard.Shards < 0 {
		return nil, fmt.Errorf("core: reshard: %d shards out of range", r.cfg.Shard.Shards)
	}
	return NewShardedEngine(r.base, r.cfg.Shard)
}

// Base returns the whole-graph engine that serves until (and under) the
// upgrade.
func (r *ReshardingEngine) Base() *Engine { return r.base }

// Sharded returns the upgraded scatter-gather engine, or nil while the
// background partition is still building (or after it failed).
func (r *ReshardingEngine) Sharded() *ShardedEngine { return r.se.Load() }

// Ready reports whether the upgrade has landed.
func (r *ReshardingEngine) Ready() bool { return r.se.Load() != nil }

// current is the Queryer answering right now.
func (r *ReshardingEngine) current() Queryer {
	if se := r.se.Load(); se != nil {
		return se
	}
	return r.base
}

// Graph implements Queryer.
func (r *ReshardingEngine) Graph() *kg.Graph { return r.base.Graph() }

// PerMatchCost implements Queryer.
func (r *ReshardingEngine) PerMatchCost() time.Duration { return r.base.PerMatchCost() }

// Search implements Queryer.
func (r *ReshardingEngine) Search(ctx context.Context, q *query.Graph, opts Options) (*Result, error) {
	return r.current().Search(ctx, q, opts)
}

// Stream implements Queryer.
func (r *ReshardingEngine) Stream(ctx context.Context, q *query.Graph, opts Options) (*Stream, error) {
	return r.current().Stream(ctx, q, opts)
}

// CompileQuery implements Queryer: plans compile against whichever
// engine is current, and SearchCompiled routes each plan back to the
// engine that produced it — a pre-upgrade *Plan stays valid after the
// upgrade (both engines serve the same committed graph), so the serving
// layer's plan cache survives the transition without a purge.
func (r *ReshardingEngine) CompileQuery(q *query.Graph, opts Options) (CompiledPlan, error) {
	return r.current().CompileQuery(q, opts)
}

// SearchCompiled implements Queryer.
func (r *ReshardingEngine) SearchCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Result, error) {
	return r.route(p).SearchCompiled(ctx, p, opts)
}

// StreamCompiled implements Queryer.
func (r *ReshardingEngine) StreamCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Stream, error) {
	return r.route(p).StreamCompiled(ctx, p, opts)
}

// route picks the engine that can run p: sharded plans go to the
// upgraded engine, base plans to the base engine. A plan neither can run
// falls through to the current engine, whose own check produces the
// error.
func (r *ReshardingEngine) route(p CompiledPlan) Queryer {
	switch p.(type) {
	case *ShardedPlan:
		if se := r.se.Load(); se != nil {
			return se
		}
	case *Plan:
		return r.base
	}
	return r.current()
}
