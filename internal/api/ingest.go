package api

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// IngestTriple is one NDJSON line of a POST /v1/ingest body: a raw triple
// in the TSV/ingest convention — the reserved predicate "type" declares
// the subject's entity type (first type wins), anything else adds an
// edge, creating unseen endpoint nodes on the fly.
type IngestTriple struct {
	// S is the subject entity name; created if unseen.
	S string `json:"s"`
	// P is the predicate, or the reserved "type" for a type declaration.
	P string `json:"p"`
	// O is the object entity name (or the type name when P is "type").
	O string `json:"o"`
}

// DecodeIngestTriple parses one ingest line strictly: unknown fields,
// trailing data and empty components are errors.
func DecodeIngestTriple(line []byte) (IngestTriple, error) {
	var t IngestTriple
	if err := decodeStrict(bytes.NewReader(line), &t); err != nil {
		return t, fmt.Errorf("api: parsing ingest triple: %w", err)
	}
	if t.S == "" || t.P == "" || t.O == "" {
		return t, fmt.Errorf("api: ingest triple needs non-empty s, p and o")
	}
	return t, nil
}

// EncodeIngestTriple renders one ingest line (without the newline).
func EncodeIngestTriple(t IngestTriple) ([]byte, error) {
	return json.Marshal(t)
}

// IngestResult is the response body of POST /v1/ingest: what the batched
// commit changed and the engine generation now serving it.
type IngestResult struct {
	// Triples is the number of NDJSON lines applied.
	Triples int `json:"triples"`
	// AddedNodes counts entities the batch created. Node declarations
	// are idempotent: a known node keeps its id.
	AddedNodes int `json:"added_nodes"`
	// AddedEdges counts edges appended. Edge triples are NOT idempotent:
	// the graph is a multigraph, exactly as when the same TSV stream is
	// loaded twice, so re-sending an already-applied batch duplicates
	// its edges.
	AddedEdges int `json:"added_edges"`
	// Retyped counts previously-untyped nodes that gained a type (first
	// type wins; conflicting re-declarations are ignored).
	Retyped int `json:"retyped"`
	// Nodes is the committed graph's entity total after the batch.
	Nodes int `json:"nodes"`
	// Edges is the committed graph's edge total after the batch.
	Edges int `json:"edges"`
	// Generation is the serving generation after the commit.
	Generation uint64 `json:"generation"`
	// CommitTime covers the delta commit, as a Go duration string.
	CommitTime Duration `json:"commit_time"`
	// BuildTime covers the engine rebuild over the committed graph, as a
	// Go duration string.
	BuildTime Duration `json:"build_time"`
}
