module semkg

go 1.24
