package bench

import (
	"fmt"
	"time"

	"semkg/internal/metrics"
)

// --- E1: Table I — Q117 variants × all methods ------------------------------

// Table1Row is one method's precision/recall across the four query-graph
// variants of Fig. 1 (G1: synonym type, G2: abbreviated name, G3: sibling
// predicate, G4: canonical).
type Table1Row struct {
	Method string
	PR     [4]metrics.PR
	Found  [4]bool
}

// Table1Result reproduces Table I.
type Table1Result struct {
	K    int
	Rows []Table1Row
}

// RunTable1 evaluates every method on the four Q117 variants with
// k = |validation set| (the paper sets k = 596 for the same reason).
func RunTable1(env *Env) *Table1Result {
	variants := env.Dataset.Table1
	k := len(variants[0].Truth)
	res := &Table1Result{K: k}
	systems := append([]System{env.SGQ()}, env.AllBaselines(0.7)...)
	for _, sys := range systems {
		row := Table1Row{Method: sys.Name}
		for i, q := range variants {
			answers, _ := sys.Run(q, k)
			row.Found[i] = len(answers) > 0
			row.PR[i] = metrics.Evaluate(answers, q.Truth)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the result like the paper's Table I.
func (r *Table1Result) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table I: Precision/Recall for the Q117 variants (top-k=%d)", r.K),
		Header: []string{"Method", "G1 P", "G1 R", "G2 P", "G2 R", "G3 P", "G3 R", "G4 P", "G4 R"},
	}
	for _, row := range r.Rows {
		cells := []string{row.Method}
		for i := 0; i < 4; i++ {
			if !row.Found[i] {
				cells = append(cells, "x", "x")
				continue
			}
			cells = append(cells, f2(row.PR[i].Precision), f2(row.PR[i].Recall))
		}
		t.AddRow(cells...)
	}
	return t
}

// --- E2/E3: Figures 12-14 — effectiveness & efficiency vs top-k -------------

// FigureResult holds one dataset's P/R/F1/time series over k for every
// system (Figures 12, 13, 14, panels a-d).
type FigureResult struct {
	Dataset string
	Ks      []int
	Systems []string
	P       [][]float64 // [system][kIdx]
	R       [][]float64
	F1      [][]float64
	TimeMS  [][]float64
}

// RunFigure evaluates {TBQ-0.9, SGQ, GraB, S4, QGA, p-hom} over the
// dataset's simple workload for each k, averaging P/R/F1 and response
// time — the series of Figures 12-14. The k values default to
// {10, 20, 40, 80}: the paper's {20,40,100,200} scaled to the synthetic
// validation-set sizes (see EXPERIMENTS.md).
func RunFigure(env *Env, ks []int) *FigureResult {
	if len(ks) == 0 {
		ks = []int{10, 20, 40, 80}
	}
	systems := append([]System{env.TBQ(0.9), env.SGQ()}, env.Baselines(0.5)...)
	res := &FigureResult{Dataset: env.Cfg.Profile.Name, Ks: ks}
	for _, sys := range systems {
		res.Systems = append(res.Systems, sys.Name)
		var ps, rs, f1s, ts []float64
		for _, k := range ks {
			var prs []metrics.PR
			var totalMS float64
			for _, q := range env.Dataset.Simple {
				answers, elapsed := sys.Run(q, k)
				prs = append(prs, metrics.Evaluate(answers, q.Truth))
				totalMS += float64(elapsed.Microseconds()) / 1000
			}
			m := metrics.Mean(prs)
			ps = append(ps, m.Precision)
			rs = append(rs, m.Recall)
			f1s = append(f1s, m.F1)
			ts = append(ts, totalMS/float64(len(env.Dataset.Simple)))
		}
		res.P = append(res.P, ps)
		res.R = append(res.R, rs)
		res.F1 = append(res.F1, f1s)
		res.TimeMS = append(res.TimeMS, ts)
	}
	return res
}

// Render formats the four panels as one table per metric.
func (r *FigureResult) Render() []*Table {
	mk := func(name string, data [][]float64, ms bool) *Table {
		t := &Table{Title: fmt.Sprintf("%s — %s vs top-k", r.Dataset, name)}
		t.Header = []string{"Method"}
		for _, k := range r.Ks {
			t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
		}
		for i, sys := range r.Systems {
			cells := []string{sys}
			for j := range r.Ks {
				if ms {
					cells = append(cells, f1ms(data[i][j]))
				} else {
					cells = append(cells, f2(data[i][j]))
				}
			}
			t.AddRow(cells...)
		}
		return t
	}
	return []*Table{
		mk("Precision", r.P, false),
		mk("Recall", r.R, false),
		mk("F1-measure", r.F1, false),
		mk("Response time", r.TimeMS, true),
	}
}

// --- E4: Figure 15 — effect of time bounds ------------------------------------

// Fig15Result sweeps the TBQ time bound (Fig. 15 a+b).
type Fig15Result struct {
	K        int
	BoundsMS []float64
	P        []float64
	R        []float64
	F1       []float64
	RespMin  []float64
	RespAvg  []float64
	RespMax  []float64
}

// RunFig15 measures TBQ effectiveness and response time across time
// bounds expressed as fractions of the measured SGQ time per query (the
// paper sweeps 20-90 ms absolute; fractions transport the sweep to the
// synthetic scale).
func RunFig15(env *Env, k int, fractions []float64) *Fig15Result {
	if k <= 0 {
		k = 40
	}
	if len(fractions) == 0 {
		fractions = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	queries := env.Dataset.Simple
	// Reference SGQ time per query.
	refs := make([]time.Duration, len(queries))
	sgq := env.SGQ()
	for i, q := range queries {
		_, refs[i] = sgq.Run(q, k)
	}
	res := &Fig15Result{K: k}
	// The bounds at this scale are tens of microseconds; repeat each
	// measurement to damp scheduler noise.
	const reps = 3
	for _, f := range fractions {
		var prs []metrics.PR
		minMS, maxMS, sumMS := 1e18, 0.0, 0.0
		var avgBoundMS float64
		for i, q := range queries {
			bound := time.Duration(float64(refs[i]) * f)
			for rep := 0; rep < reps; rep++ {
				answers, elapsed := env.TBQBounded(q, k, bound)
				prs = append(prs, metrics.Evaluate(answers, q.Truth))
				ms := float64(elapsed.Microseconds()) / 1000
				if ms < minMS {
					minMS = ms
				}
				if ms > maxMS {
					maxMS = ms
				}
				sumMS += ms / reps
			}
			avgBoundMS += float64(bound.Microseconds()) / 1000
		}
		m := metrics.Mean(prs)
		res.BoundsMS = append(res.BoundsMS, avgBoundMS/float64(len(queries)))
		res.P = append(res.P, m.Precision)
		res.R = append(res.R, m.Recall)
		res.F1 = append(res.F1, m.F1)
		res.RespMin = append(res.RespMin, minMS)
		res.RespAvg = append(res.RespAvg, sumMS/float64(len(queries)))
		res.RespMax = append(res.RespMax, maxMS)
	}
	return res
}

// Render formats the bound sweep.
func (r *Fig15Result) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 15: effect of time bounds (k=%d)", r.K),
		Header: []string{"Bound", "P", "R", "F1", "RT min", "RT avg", "RT max"},
	}
	for i := range r.BoundsMS {
		t.AddRow(f1ms(r.BoundsMS[i]), f2(r.P[i]), f2(r.R[i]), f2(r.F1[i]),
			f1ms(r.RespMin[i]), f1ms(r.RespAvg[i]), f1ms(r.RespMax[i]))
	}
	return t
}
