package embed

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"semkg/internal/kg"
)

func TestVectorOps(t *testing.T) {
	a := Vector{3, 4}
	b := Vector{4, 3}
	if got := Dot(a, b); got != 24 {
		t.Errorf("Dot = %v, want 24", got)
	}
	if got := Norm(a); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	c := Clone(a)
	Normalize(c)
	if math.Abs(Norm(c)-1) > 1e-12 {
		t.Errorf("normalized norm = %v, want 1", Norm(c))
	}
	if a[0] != 3 {
		t.Error("Clone aliases the original")
	}
	zero := Vector{0, 0}
	Normalize(zero) // must not panic or produce NaN
	if zero[0] != 0 {
		t.Error("Normalize(zero) changed the vector")
	}
	if got := Cosine(zero, a); got != 0 {
		t.Errorf("Cosine with zero vector = %v, want 0", got)
	}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine(a,a) = %v, want 1", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{-1, 0}); math.Abs(got+1) > 1e-12 {
		t.Errorf("Cosine(opposite) = %v, want -1", got)
	}
}

func TestCosineRangeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := Vector(raw[:half]), Vector(raw[half:2*half])
		for _, x := range raw {
			// Skip pathological magnitudes where the dot product itself
			// overflows float64; embedding components are O(1).
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		c := Cosine(a, b)
		return c >= -1 && c <= 1 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// figure6Graph builds a graph reproducing the semantics of the paper's
// Figure 6: predicates "product" and "assembly" connect countries to
// automobiles, while "language" connects countries to languages. TransE
// should learn sim(product, assembly) >> sim(product, language).
func figure6Graph() *kg.Graph {
	rng := rand.New(rand.NewSource(42))
	b := kg.NewBuilder(256, 1024)
	countries := make([]kg.NodeID, 8)
	autos := make([]kg.NodeID, 40)
	langs := make([]kg.NodeID, 8)
	for i := range countries {
		countries[i] = b.AddNode("country"+itoa(i), "Country")
	}
	for i := range autos {
		autos[i] = b.AddNode("auto"+itoa(i), "Automobile")
	}
	for i := range langs {
		langs[i] = b.AddNode("lang"+itoa(i), "Language")
	}
	for i, a := range autos {
		c := countries[i%len(countries)]
		b.AddEdge(a, c, "assembly")
		if i%2 == 0 {
			b.AddEdge(a, c, "product")
		}
	}
	// Extra product edges to different countries so the two predicates are
	// similar but not identical.
	for i := 0; i < 20; i++ {
		b.AddEdge(autos[rng.Intn(len(autos))], countries[rng.Intn(len(countries))], "product")
	}
	for i, c := range countries {
		b.AddEdge(c, langs[i%len(langs)], "language")
	}
	return b.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestTransELearnsPredicateClusters(t *testing.T) {
	g := figure6Graph()
	m, err := TrainTransE(context.Background(), g, Config{Dim: 24, Epochs: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.Space(g)
	if err != nil {
		t.Fatal(err)
	}
	product := int(g.PredByName("product"))
	assembly := int(g.PredByName("assembly"))
	language := int(g.PredByName("language"))
	simPA := sp.Similarity(product, assembly)
	simPL := sp.Similarity(product, language)
	if simPA <= simPL {
		t.Errorf("sim(product,assembly)=%.3f should exceed sim(product,language)=%.3f", simPA, simPL)
	}
	if simPA < 0.5 {
		t.Errorf("sim(product,assembly)=%.3f, want >= 0.5 (same cluster)", simPA)
	}
}

func TestTransELossDecreases(t *testing.T) {
	g := figure6Graph()
	m, err := TrainTransE(context.Background(), g, Config{Dim: 16, Epochs: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first, last := m.EpochLoss[0], m.EpochLoss[len(m.EpochLoss)-1]
	if last >= first {
		t.Errorf("loss did not decrease: first=%.4f last=%.4f", first, last)
	}
}

func TestTransEDeterministic(t *testing.T) {
	g := figure6Graph()
	m1, err := TrainTransE(context.Background(), g, Config{Dim: 8, Epochs: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainTransE(context.Background(), g, Config{Dim: 8, Epochs: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Relations {
		for j := range m1.Relations[i] {
			if m1.Relations[i][j] != m2.Relations[i][j] {
				t.Fatalf("relation %d differs between identical runs", i)
			}
		}
	}
}

func TestTransEEmptyGraph(t *testing.T) {
	g := kg.NewBuilder(0, 0).Build()
	if _, err := TrainTransE(context.Background(), g, Config{}); err == nil {
		t.Error("training on empty graph should fail")
	}
}

func TestTransECancellation(t *testing.T) {
	g := figure6Graph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := TrainTransE(ctx, g, Config{Dim: 8, Epochs: 1000})
	if err == nil {
		t.Error("cancelled training should return an error")
	}
	if m == nil {
		t.Error("cancelled training should still return the partial model")
	}
}

func TestTransHLearnsPredicateClusters(t *testing.T) {
	g := figure6Graph()
	m, err := TrainTransH(context.Background(), g, Config{Dim: 24, Epochs: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.Space(g)
	if err != nil {
		t.Fatal(err)
	}
	product := int(g.PredByName("product"))
	assembly := int(g.PredByName("assembly"))
	language := int(g.PredByName("language"))
	if sp.Similarity(product, assembly) <= sp.Similarity(product, language) {
		t.Errorf("TransH: cluster similarity not learned: PA=%.3f PL=%.3f",
			sp.Similarity(product, assembly), sp.Similarity(product, language))
	}
}

func TestTransHEmptyGraph(t *testing.T) {
	g := kg.NewBuilder(0, 0).Build()
	if _, err := TrainTransH(context.Background(), g, Config{}); err == nil {
		t.Error("training on empty graph should fail")
	}
}

func TestSpaceBasics(t *testing.T) {
	sp, err := NewSpace(
		[]string{"a", "b", "c"},
		[]Vector{{1, 0}, {0.9, 0.1}, {0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dim() != 2 || sp.Len() != 3 {
		t.Fatalf("Dim/Len = %d/%d", sp.Dim(), sp.Len())
	}
	if sp.Name(1) != "b" {
		t.Errorf("Name(1) = %q", sp.Name(1))
	}
	if got := sp.Similarity(0, 0); got != 1 {
		t.Errorf("self similarity = %v", got)
	}
	if sp.Similarity(0, 1) != sp.Similarity(1, 0) {
		t.Error("similarity not symmetric")
	}
	if sp.Similarity(0, 1) <= sp.Similarity(0, 2) {
		t.Error("near vector should be more similar than orthogonal one")
	}
	top := sp.TopSimilar(0, 5)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("TopSimilar = %v, want [1 2]", top)
	}
	if got := sp.TopSimilar(0, 1); len(got) != 1 {
		t.Errorf("TopSimilar n=1 returned %d items", len(got))
	}
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace([]string{"a"}, nil); err == nil {
		t.Error("mismatched names/vectors should fail")
	}
	if _, err := NewSpace([]string{"a", "b"}, []Vector{{1, 0}, {1}}); err == nil {
		t.Error("inconsistent dims should fail")
	}
}

func TestModelRoundTrip(t *testing.T) {
	g := figure6Graph()
	m, err := TrainTransE(context.Background(), g, Config{Dim: 8, Epochs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Entities) != len(m.Entities) || len(m2.Relations) != len(m.Relations) {
		t.Fatalf("round trip sizes: (%d,%d) vs (%d,%d)",
			len(m2.Entities), len(m2.Relations), len(m.Entities), len(m.Relations))
	}
	for i := range m.Relations {
		for j := range m.Relations[i] {
			if m.Relations[i][j] != m2.Relations[i][j] {
				t.Fatalf("relation %d component %d differs", i, j)
			}
		}
	}
}

func TestReadModelBadInput(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadModel(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	// Truncated: valid magic, truncated header.
	if _, err := ReadModel(bytes.NewReader([]byte(magic))); err == nil {
		t.Error("truncated header should fail")
	}
}
