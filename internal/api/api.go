// Package api defines the stable wire representation of queries, options,
// answers and stream events — the one JSON vocabulary shared by the
// semkgd HTTP service, the kgsearch CLI and any other client. Decoders are
// strict (unknown fields are rejected), so a typo in a query document
// fails loudly instead of silently matching nothing; field matching is
// case-insensitive per encoding/json, which keeps pre-existing documents
// with Go-style capitalized keys working.
//
// See DESIGN.md, "Wire protocol", for the full request/response and
// NDJSON event specification.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"semkg/internal/core"
	"semkg/internal/query"
)

// Duration marshals as a Go duration string ("50ms", "1.5s") and accepts
// either a duration string or a JSON number of nanoseconds.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "50ms"-style strings and integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("api: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("api: duration must be a string like %q or integer nanoseconds", "50ms")
	}
	*d = Duration(ns)
	return nil
}

// Node is the wire form of one query-graph node.
type Node struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"` // empty marks a target (variable) node
	Type string `json:"type,omitempty"`
}

// Edge is the wire form of one query-graph edge.
type Edge struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Predicate string `json:"predicate"`
}

// Query is the wire form of a query graph.
type Query struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// Graph converts the wire query into the engine's query graph.
func (q Query) Graph() *query.Graph {
	g := &query.Graph{
		Nodes: make([]query.Node, len(q.Nodes)),
		Edges: make([]query.Edge, len(q.Edges)),
	}
	for i, n := range q.Nodes {
		g.Nodes[i] = query.Node{ID: n.ID, Name: n.Name, Type: n.Type}
	}
	for i, e := range q.Edges {
		g.Edges[i] = query.Edge{From: e.From, To: e.To, Predicate: e.Predicate}
	}
	return g
}

// QueryFrom converts an engine query graph into its wire form.
func QueryFrom(g *query.Graph) Query {
	q := Query{
		Nodes: make([]Node, len(g.Nodes)),
		Edges: make([]Edge, len(g.Edges)),
	}
	for i, n := range g.Nodes {
		q.Nodes[i] = Node{ID: n.ID, Name: n.Name, Type: n.Type}
	}
	for i, e := range g.Edges {
		q.Edges[i] = Edge{From: e.From, To: e.To, Predicate: e.Predicate}
	}
	return q
}

// decodeStrict decodes exactly one JSON value from r into v, rejecting
// unknown fields and trailing data.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("api: trailing data after JSON document")
	}
	return nil
}

// DecodeQuery parses a query document strictly: unknown fields and
// trailing data are errors. It does not run query.Graph.Validate — the
// caller decides whether structural validation failures are fatal.
func DecodeQuery(data []byte) (*query.Graph, error) {
	var q Query
	if err := decodeStrict(bytes.NewReader(data), &q); err != nil {
		return nil, fmt.Errorf("api: parsing query: %w", err)
	}
	return q.Graph(), nil
}

// EncodeQuery renders a query graph as its canonical wire document.
func EncodeQuery(g *query.Graph) ([]byte, error) {
	return json.Marshal(QueryFrom(g))
}

// Options is the wire form of the search options. Absent fields mean the
// engine defaults; Clock and Rng have no wire form (they are process-local
// test hooks).
type Options struct {
	K            int      `json:"k,omitempty"`
	Tau          float64  `json:"tau,omitempty"`
	MaxHops      int      `json:"max_hops,omitempty"`
	PivotNode    string   `json:"pivot,omitempty"`
	PruneVisited bool     `json:"prune_visited,omitempty"`
	NoHeuristic  bool     `json:"no_heuristic,omitempty"`
	TimeBound    Duration `json:"time_bound,omitempty"`
	AlertRatio   float64  `json:"alert_ratio,omitempty"`
}

// Core converts the wire options into engine options.
func (o Options) Core() core.Options {
	return core.Options{
		K:            o.K,
		Tau:          o.Tau,
		MaxHops:      o.MaxHops,
		PivotNode:    o.PivotNode,
		PruneVisited: o.PruneVisited,
		NoHeuristic:  o.NoHeuristic,
		TimeBound:    time.Duration(o.TimeBound),
		AlertRatio:   o.AlertRatio,
	}
}

// OptionsFrom converts engine options into their wire form.
func OptionsFrom(o core.Options) Options {
	return Options{
		K:            o.K,
		Tau:          o.Tau,
		MaxHops:      o.MaxHops,
		PivotNode:    o.PivotNode,
		PruneVisited: o.PruneVisited,
		NoHeuristic:  o.NoHeuristic,
		TimeBound:    Duration(o.TimeBound),
		AlertRatio:   o.AlertRatio,
	}
}

// SearchRequest is the body of the service's search endpoints.
type SearchRequest struct {
	Query   Query   `json:"query"`
	Options Options `json:"options"`
}

// DecodeSearchRequest parses a request body strictly and returns the
// engine-level query and options. Neither is validated here.
func DecodeSearchRequest(r io.Reader) (*query.Graph, core.Options, error) {
	var req SearchRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, core.Options{}, fmt.Errorf("api: parsing search request: %w", err)
	}
	return req.Query.Graph(), req.Options.Core(), nil
}

// PathStep is the wire form of one knowledge-graph edge of an answer path.
type PathStep struct {
	From      string `json:"from"`
	Predicate string `json:"predicate"`
	To        string `json:"to"`
}

// SubMatch is the wire form of one sub-query's matched path.
type SubMatch struct {
	PSS   float64    `json:"pss"`
	Steps []PathStep `json:"steps"`
}

// Answer is the wire form of one ranked answer.
type Answer struct {
	Entity   string            `json:"entity"` // the pivot entity name
	Score    float64           `json:"score"`
	Bindings map[string]string `json:"bindings,omitempty"`
	Parts    []SubMatch        `json:"parts,omitempty"`
}

// AnswerFrom converts an engine answer into its wire form.
func AnswerFrom(a core.Answer) Answer {
	out := Answer{Entity: a.PivotName, Score: a.Score, Bindings: a.Bindings}
	for _, p := range a.Parts {
		sm := SubMatch{PSS: p.PSS, Steps: make([]PathStep, len(p.Steps))}
		for i, st := range p.Steps {
			sm.Steps[i] = PathStep{From: st.FromName, Predicate: st.Predicate, To: st.ToName}
		}
		out.Parts = append(out.Parts, sm)
	}
	return out
}

// AnswersFrom converts a ranked answer slice into its wire form.
func AnswersFrom(answers []core.Answer) []Answer {
	out := make([]Answer, len(answers))
	for i, a := range answers {
		out[i] = AnswerFrom(a)
	}
	return out
}

// Result is the wire form of a search outcome.
type Result struct {
	Answers []Answer `json:"answers"`
	// Pivot is the query node the decomposition joined the answers at.
	Pivot       string   `json:"pivot,omitempty"`
	Approximate bool     `json:"approximate,omitempty"`
	Elapsed     Duration `json:"elapsed"`
	// Collected is |M̂_i| per sub-query (time-bounded mode only).
	Collected []int `json:"collected,omitempty"`
}

// ResultFrom converts an engine result into its wire form.
func ResultFrom(r *core.Result) Result {
	out := Result{
		Answers:     AnswersFrom(r.Answers),
		Approximate: r.Approximate,
		Elapsed:     Duration(r.Elapsed),
		Collected:   r.Collected,
	}
	if r.Decomposition != nil {
		out.Pivot = r.Decomposition.Pivot
	}
	return out
}
