package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestSearchPlanEquivalence: a plan compiled once and run repeatedly —
// including with different runtime options (K) — produces the same
// answers as the unplanned Search.
func TestSearchPlanEquivalence(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	q := q117("assembly")
	opts := Options{K: 10, Tau: 0.6}

	p, err := e.Compile(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Compiled() || p.Pivot() == "" {
		t.Fatalf("plan not compiled: %+v", p)
	}

	want, err := e.Search(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		got, err := e.SearchPlan(ctx, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Answers, want.Answers) {
			t.Fatalf("run %d: planned answers differ from Search:\n%v\nvs\n%v", run, got.Answers, want.Answers)
		}
	}

	// K is a runtime option: the same plan serves a different K.
	optsK3 := opts
	optsK3.K = 3
	wantK3, err := e.Search(ctx, q, optsK3)
	if err != nil {
		t.Fatal(err)
	}
	gotK3, err := e.SearchPlan(ctx, p, optsK3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotK3.Answers, wantK3.Answers) {
		t.Fatalf("K=3 planned answers differ:\n%v\nvs\n%v", gotK3.Answers, wantK3.Answers)
	}
}

// TestSearchPlanMismatch: a plan run under different compile-relevant
// options, or on a different engine, is rejected.
func TestSearchPlanMismatch(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	q := q117("assembly")
	p, err := e.Compile(q, Options{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}

	_, err = e.SearchPlan(ctx, p, Options{Tau: 0.9})
	var bad BadRequestError
	if err == nil || !errors.As(err, &bad) {
		t.Fatalf("tau mismatch: err = %v, want BadRequestError", err)
	}

	other := newTestEngine(t)
	if _, err := other.SearchPlan(ctx, p, Options{Tau: 0.6}); err == nil {
		t.Fatal("foreign engine accepted the plan")
	}
}

// TestCompileMismatchedQuery: a query node with no graph matches compiles
// to a runnable empty plan, not an error (the paper's G1_Q case).
func TestCompileMismatchedQuery(t *testing.T) {
	e := newTestEngine(t)
	q := q117("assembly")
	q.Nodes[1].Name = "Atlantis"
	q.Nodes[1].Type = "Continent"
	p, err := e.Compile(q, Options{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if p.Compiled() {
		t.Fatal("mismatched query reported as compiled")
	}
	res, err := e.SearchPlan(context.Background(), p, Options{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("answers = %v, want none", res.Answers)
	}
}

// TestOptionsNormalized: defaults are applied, set fields preserved.
func TestOptionsNormalized(t *testing.T) {
	n := Options{}.Normalized()
	if n.K != 10 || n.Tau != 0.8 || n.MaxHops != 4 {
		t.Fatalf("Normalized zero options = %+v", n)
	}
	n = Options{K: 3, Tau: 0.5, MaxHops: 2}.Normalized()
	if n.K != 3 || n.Tau != 0.5 || n.MaxHops != 2 {
		t.Fatalf("Normalized set options = %+v", n)
	}
}
