package core

import (
	"fmt"
	"io"

	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/transform"
)

// BuildEngine constructs an engine over g from a trained model, deriving
// the predicate space with Model.SpaceFor: predicates ingested after the
// offline training run get deterministic placeholder vectors instead of
// failing the build. This is the construction path the storage layer uses
// — cold starts from snapshots and serve.Apply rebuilds after a delta
// commit both go through it.
func BuildEngine(g *kg.Graph, model *embed.Model, lib *transform.Library) (*Engine, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	space, err := model.SpaceFor(g)
	if err != nil {
		return nil, err
	}
	return NewEngine(g, space, lib)
}

// EngineFromSnapshot loads a binary graph snapshot (kg.ReadSnapshot) and
// builds an engine over it: the snapshot already carries the derived
// search indexes, so construction skips the parse and index build of the
// TSV path entirely.
func EngineFromSnapshot(r io.Reader, model *embed.Model, lib *transform.Library) (*Engine, error) {
	g, err := kg.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return BuildEngine(g, model, lib)
}
