package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/tbq"
)

// testEngine builds a small motivating-example engine with hand-crafted
// predicate vectors (no training): cars related to Germany through three
// schemas, plus French distractors.
func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	return buildEngine(t, true)
}

// buildEngine optionally drops one schema so Rebuild tests can observe a
// changed graph through the cache.
func buildEngine(t *testing.T, withX6 bool) *core.Engine {
	t.Helper()
	b := kg.NewBuilder(32, 64)
	ger := b.AddNode("Germany", "Country")
	france := b.AddNode("France", "Country")
	munich := b.AddNode("Munich", "City")
	co := b.AddNode("BMW_Co", "Company")
	b.AddEdge(munich, ger, "country")
	b.AddEdge(co, ger, "locationCountry")
	for _, name := range []string{"BMW_320", "Audi_TT"} {
		b.AddEdge(b.AddNode(name, "Automobile"), ger, "assembly")
	}
	b.AddEdge(b.AddNode("BMW_Z4", "Automobile"), munich, "assembly")
	if withX6 {
		b.AddEdge(b.AddNode("BMW_X6", "Automobile"), co, "manufacturer")
	} else {
		b.AddEdge(b.AddNode("BMW_X6", "Automobile"), france, "assembly")
	}
	b.AddEdge(b.AddNode("Clio", "Automobile"), france, "assembly")
	g := b.Build()

	vecs := map[string]embed.Vector{
		"assembly":        {1.00, 0.05, 0.02},
		"manufacturer":    {0.95, 0.20, 0.05},
		"country":         {0.90, 0.10, 0.30},
		"locationCountry": {0.90, 0.12, 0.28},
	}
	names := g.Predicates()
	ordered := make([]embed.Vector, len(names))
	for i, n := range names {
		v, ok := vecs[n]
		if !ok {
			t.Fatalf("no vector for predicate %q", n)
		}
		ordered[i] = v
	}
	sp, err := embed.NewSpace(names, ordered)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(g, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func q117() *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "Germany", Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: "assembly"}},
	}
}

func clubQuery() *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "France", Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: "assembly"}},
	}
}

func testOpts() core.Options { return core.Options{K: 10, Tau: 0.75} }

// wireJSON renders a result in its wire form for byte-level comparison.
func wireJSON(t *testing.T, res *core.Result) []byte {
	t.Helper()
	b, err := json.Marshal(api.ResultFrom(res))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// answersJSON renders only the answers (excluding timings) for comparison
// across independent executions.
func answersJSON(t *testing.T, res *core.Result) []byte {
	t.Helper()
	b, err := json.Marshal(api.AnswersFrom(res.Answers))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestColdCachedByteIdentical is half of the acceptance criterion: the
// cold pipeline run and the warm cache hit return byte-identical wire
// results, and both match the answers of an unwrapped core.Engine.Search.
func TestColdCachedByteIdentical(t *testing.T) {
	eng := testEngine(t)
	srv := New(eng, Config{})
	ctx := context.Background()

	direct, err := eng.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := srv.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := srv.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireJSON(t, cold), wireJSON(t, cached)) {
		t.Fatal("cached result differs from the cold run")
	}
	if !bytes.Equal(answersJSON(t, direct), answersJSON(t, cold)) {
		t.Fatalf("serving-layer answers differ from core.Engine.Search:\n%s\nvs\n%s",
			answersJSON(t, cold), answersJSON(t, direct))
	}
	st := srv.Stats()
	if st.ResultHits != 1 || st.ResultMisses != 1 || st.PipelineRuns != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 run", st)
	}
}

// TestSingleflightCollapses32 is the acceptance criterion: 32 concurrent
// identical requests run the pipeline exactly once and all return
// byte-identical results. The BeforeRun gate holds the leader inside the
// pipeline until every other request has joined its flight, so the
// collapse is deterministic, not timing-dependent.
func TestSingleflightCollapses32(t *testing.T) {
	const n = 32
	eng := testEngine(t)
	release := make(chan struct{})
	srv := New(eng, Config{BeforeRun: func() { <-release }})
	ctx := context.Background()

	var wg sync.WaitGroup
	results := make([]*core.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = srv.Search(ctx, q117(), testOpts())
		}(i)
	}
	// Wait until the other 31 requests have joined the leader's flight.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().FlightShared < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests joined the flight", srv.Stats().FlightShared, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	want := wireJSON(t, results[0])
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(wireJSON(t, results[i]), want) {
			t.Fatalf("request %d returned a different result", i)
		}
	}
	st := srv.Stats()
	if st.PipelineRuns != 1 {
		t.Fatalf("pipeline ran %d times, want 1", st.PipelineRuns)
	}
	if st.FlightShared != n-1 {
		t.Fatalf("FlightShared = %d, want %d", st.FlightShared, n-1)
	}
}

// eventLines encodes a stream's events for comparison.
func eventLines(t *testing.T, events []core.Event) []string {
	t.Helper()
	out := make([]string, len(events))
	for i, ev := range events {
		b, err := api.EncodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

func drainStream(t *testing.T, s *Stream) []core.Event {
	t.Helper()
	var events []core.Event
	for ev := range s.Events() {
		events = append(events, ev)
	}
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestStreamReplayIdentical: the leader's live stream, a deduplicated
// follower joining mid-flight, and a later result-cache replay all deliver
// the identical event sequence.
func TestStreamReplayIdentical(t *testing.T) {
	eng := testEngine(t)
	release := make(chan struct{})
	srv := New(eng, Config{BeforeRun: func() { <-release }})
	ctx := context.Background()
	opts := testOpts()
	opts.TimeBound = 2 * time.Second // TBQ emits rich event sequences

	leader, err := srv.Stream(ctx, q117(), opts)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := srv.Stream(ctx, q117(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().FlightShared; got != 1 {
		t.Fatalf("FlightShared = %d, want 1 (follower joined)", got)
	}
	close(release)

	leaderEvents := drainStream(t, leader)
	followerEvents := drainStream(t, follower)
	cachedStream, err := srv.Stream(ctx, q117(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cachedEvents := drainStream(t, cachedStream)

	want := eventLines(t, leaderEvents)
	if len(want) == 0 {
		t.Fatal("no events")
	}
	if got := eventLines(t, followerEvents); !reflect.DeepEqual(got, want) {
		t.Fatalf("follower events differ:\n%v\nvs\n%v", got, want)
	}
	if got := eventLines(t, cachedEvents); !reflect.DeepEqual(got, want) {
		t.Fatalf("cached replay events differ:\n%v\nvs\n%v", got, want)
	}
	if srv.Stats().PipelineRuns != 1 {
		t.Fatalf("pipeline ran %d times, want 1", srv.Stats().PipelineRuns)
	}
	// The terminal results of all three paths are the same shared object.
	lr, _ := leader.Result()
	fr, _ := follower.Result()
	cr, _ := cachedStream.Result()
	if lr != fr || lr != cr {
		t.Fatal("stream paths returned different result objects")
	}
}

// TestPlanCacheSharedAcrossK: K is a runtime option, so two requests that
// differ only in K miss the result cache but share the compiled plan.
func TestPlanCacheSharedAcrossK(t *testing.T) {
	srv := New(testEngine(t), Config{})
	ctx := context.Background()
	optsA := testOpts()
	optsB := testOpts()
	optsB.K = 3

	if _, err := srv.Search(ctx, q117(), optsA); err != nil {
		t.Fatal(err)
	}
	resB, err := srv.Search(ctx, q117(), optsB)
	if err != nil {
		t.Fatal(err)
	}
	if len(resB.Answers) > 3 {
		t.Fatalf("K=3 returned %d answers", len(resB.Answers))
	}
	st := srv.Stats()
	if st.PlanMisses != 1 || st.PlanHits != 1 {
		t.Fatalf("plan stats = %d hits / %d misses, want 1/1", st.PlanHits, st.PlanMisses)
	}
	if st.ResultMisses != 2 {
		t.Fatalf("result misses = %d, want 2 (different K)", st.ResultMisses)
	}
}

// TestRebuildInvalidates: swapping the engine flushes both caches, and the
// next identical request answers from the new graph.
func TestRebuildInvalidates(t *testing.T) {
	srv := New(buildEngine(t, true), Config{})
	ctx := context.Background()

	before, err := srv.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !hasAnswer(before, "BMW_X6") {
		t.Fatalf("expected BMW_X6 via manufacturer schema, got %v", before.Entities())
	}
	srv.Rebuild(buildEngine(t, false)) // X6 now assembled in France
	after, err := srv.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if hasAnswer(after, "BMW_X6") {
		t.Fatalf("stale cached answer after rebuild: %v", after.Entities())
	}
	st := srv.Stats()
	if st.Rebuilds != 1 || st.ResultEntries == 0 {
		t.Fatalf("stats after rebuild = %+v", st)
	}
	if st.PipelineRuns != 2 {
		t.Fatalf("pipeline runs = %d, want 2 (cache flushed)", st.PipelineRuns)
	}
}

func hasAnswer(res *core.Result, entity string) bool {
	for _, a := range res.Answers {
		if a.PivotName == entity {
			return true
		}
	}
	return false
}

// TestUncacheableBypass: requests carrying process-local hooks (test
// clock) bypass cache and dedup — every request runs the pipeline.
func TestUncacheableBypass(t *testing.T) {
	srv := New(testEngine(t), Config{})
	ctx := context.Background()
	opts := testOpts()
	opts.TimeBound = time.Second
	opts.Clock = &tbq.StepClock{Step: 50 * time.Microsecond}

	for i := 0; i < 2; i++ {
		if _, err := srv.Search(ctx, q117(), opts); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Uncacheable != 2 || st.PipelineRuns != 2 || st.ResultHits != 0 {
		t.Fatalf("stats = %+v, want 2 uncacheable pipeline runs", st)
	}
}

// TestAdmissionShedsQueueFull: with one worker and no queue, a request
// arriving while the worker is busy is shed with a Retry-After hint.
func TestAdmissionShedsQueueFull(t *testing.T) {
	eng := testEngine(t)
	release := make(chan struct{})
	srv := New(eng, Config{Workers: 1, Queue: -1, BeforeRun: func() { <-release }})
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := srv.Search(ctx, q117(), testOpts())
		done <- err
	}()
	waitBusy(t, srv, 1)

	_, err := srv.Search(ctx, clubQuery(), testOpts())
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("err = %v, want OverloadedError", err)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", over.RetryAfter)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().RejectedQueue; got != 1 {
		t.Fatalf("RejectedQueue = %d, want 1", got)
	}
}

// TestAdmissionShedsDeadline: a queued request whose TimeBound cannot
// cover the projected queue wait is rejected immediately; one with an
// ample bound waits and completes.
func TestAdmissionShedsDeadline(t *testing.T) {
	eng := testEngine(t)
	release := make(chan struct{})
	srv := New(eng, Config{
		Workers:      1,
		Queue:        8,
		EstimatedRun: 100 * time.Millisecond,
		BeforeRun:    func() { <-release },
	})
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := srv.Search(ctx, q117(), testOpts())
		done <- err
	}()
	waitBusy(t, srv, 1)

	// Projected wait (1 waiter × 100ms / 1 worker) exceeds this bound.
	tight := testOpts()
	tight.TimeBound = 50 * time.Millisecond
	_, err := srv.Search(ctx, clubQuery(), tight)
	var over *OverloadedError
	if !errors.As(err, &over) || over.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline OverloadedError", err)
	}

	// An ample bound queues and completes once the worker frees up.
	ample := testOpts()
	ample.TimeBound = 10 * time.Second
	queued := make(chan error, 1)
	go func() {
		_, err := srv.Search(ctx, clubQuery(), ample)
		queued <- err
	}()
	waitQueued(t, srv, 1)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.RejectedDeadline != 1 {
		t.Fatalf("RejectedDeadline = %d, want 1", st.RejectedDeadline)
	}
}

func waitBusy(t *testing.T, srv *Engine, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().BusyWorkers < n {
		if time.Now().After(deadline) {
			t.Fatalf("worker never became busy (stats %+v)", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func waitQueued(t *testing.T, srv *Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().QueueDepth < n {
		if time.Now().After(deadline) {
			t.Fatalf("request never queued (stats %+v)", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBadRequests: validation failures surface as BadRequestError without
// touching the pipeline or caches.
func TestBadRequests(t *testing.T) {
	srv := New(testEngine(t), Config{})
	ctx := context.Background()

	var bad core.BadRequestError
	if _, err := srv.Search(ctx, &query.Graph{}, testOpts()); !errors.As(err, &bad) {
		t.Fatalf("empty query: err = %v, want BadRequestError", err)
	}
	opts := testOpts()
	opts.Tau = 1.5
	if _, err := srv.Search(ctx, q117(), opts); !errors.As(err, &bad) {
		t.Fatalf("bad tau: err = %v, want BadRequestError", err)
	}
	if _, err := srv.Stream(ctx, q117(), opts); !errors.As(err, &bad) {
		t.Fatalf("bad tau stream: err = %v, want BadRequestError", err)
	}
	if st := srv.Stats(); st.PipelineRuns != 0 {
		t.Fatalf("bad requests ran the pipeline: %+v", st)
	}
}

// TestSearchContextCancelled: a caller abandoning a shared flight gets its
// context error; the flight itself is cancelled once the last participant
// leaves.
func TestSearchContextCancelled(t *testing.T) {
	eng := testEngine(t)
	release := make(chan struct{})
	defer close(release)
	srv := New(eng, Config{BeforeRun: func() { <-release }})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Search(ctx, q117(), testOpts())
		done <- err
	}()
	waitBusy(t, srv, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDeadFlightNotJoined is the regression test for joining a flight
// whose last participant already left: that flight is cancelled and will
// produce a partial anytime result, so a fresh request arriving while the
// dying leader is still winding down must start a new pipeline execution
// instead — and receive the complete answer set.
func TestDeadFlightNotJoined(t *testing.T) {
	eng := testEngine(t)
	release := make(chan struct{})
	srv := New(eng, Config{Workers: 2, BeforeRun: func() { <-release }})

	want, err := eng.Search(context.Background(), q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}

	// First request: cancelled while its (gated) flight is in-flight. Its
	// departure drops the flight's refs to zero, cancelling the pipeline.
	ctxA, cancelA := context.WithCancel(context.Background())
	doneA := make(chan error, 1)
	go func() {
		_, err := srv.Search(ctxA, q117(), testOpts())
		doneA <- err
	}()
	waitBusy(t, srv, 1)
	cancelA()
	if err := <-doneA; !errors.Is(err, context.Canceled) {
		t.Fatalf("first request: err = %v, want context.Canceled", err)
	}

	// Second identical request: the dying flight is still registered (its
	// leader is blocked in the gate), but it must not be joined.
	doneB := make(chan *core.Result, 1)
	go func() {
		res, err := srv.Search(context.Background(), q117(), testOpts())
		if err != nil {
			t.Errorf("second request: %v", err)
		}
		doneB <- res
	}()
	waitBusy(t, srv, 2) // B runs its own pipeline on the second worker
	close(release)
	res := <-doneB
	if res == nil || !bytes.Equal(answersJSON(t, res), answersJSON(t, want)) {
		t.Fatalf("second request got a partial result: %+v", res)
	}
	st := srv.Stats()
	if st.PipelineRuns != 2 {
		t.Fatalf("pipeline runs = %d, want 2 (no dead-flight join)", st.PipelineRuns)
	}
	if st.FlightShared != 0 {
		t.Fatalf("FlightShared = %d, want 0", st.FlightShared)
	}
}

// TestStreamResultWithoutDraining: Result() must not depend on event
// delivery — a consumer that never touches Events() still gets the
// terminal outcome even when the recorded log far exceeds the delivery
// channel buffer.
func TestStreamResultWithoutDraining(t *testing.T) {
	events := make([]core.Event, 0, 4*streamBuffer)
	for i := 0; i < 4*streamBuffer; i++ {
		events = append(events, core.ProgressEvent{Sub: 0, Collected: i + 1})
	}
	want := &core.Result{}
	s := subscribe(context.Background(), closedLog(events, want), sealedNow, nil)

	got := make(chan *core.Result, 1)
	go func() {
		res, err := s.Result()
		if err != nil {
			t.Errorf("Result: %v", err)
		}
		got <- res
	}()
	select {
	case res := <-got:
		if res != want {
			t.Fatal("Result returned a different object")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Result() deadlocked with undrained Events")
	}
}

// TestRebuildNotJoinedMidFlight: a request arriving after Rebuild must not
// join a flight started on the previous engine generation — it runs its
// own pipeline against the new engine.
func TestRebuildNotJoinedMidFlight(t *testing.T) {
	release := make(chan struct{})
	srv := New(buildEngine(t, true), Config{Workers: 2, BeforeRun: func() { <-release }})

	oldDone := make(chan *core.Result, 1)
	go func() {
		res, err := srv.Search(context.Background(), q117(), testOpts())
		if err != nil {
			t.Errorf("pre-rebuild request: %v", err)
		}
		oldDone <- res
	}()
	waitBusy(t, srv, 1)

	srv.Rebuild(buildEngine(t, false)) // X6 moves to France

	newDone := make(chan *core.Result, 1)
	go func() {
		res, err := srv.Search(context.Background(), q117(), testOpts())
		if err != nil {
			t.Errorf("post-rebuild request: %v", err)
		}
		newDone <- res
	}()
	waitBusy(t, srv, 2) // the post-rebuild request leads its own flight
	close(release)

	oldRes, newRes := <-oldDone, <-newDone
	if !hasAnswer(oldRes, "BMW_X6") {
		t.Errorf("pre-rebuild request should answer from the old graph: %v", oldRes.Entities())
	}
	if hasAnswer(newRes, "BMW_X6") {
		t.Errorf("post-rebuild request served the retired engine's flight: %v", newRes.Entities())
	}
	st := srv.Stats()
	if st.FlightShared != 0 || st.PipelineRuns != 2 {
		t.Fatalf("stats = %+v, want 2 independent pipeline runs", st)
	}
}

// TestKeyCanonicalization: option values that run the identical pipeline
// share cache keys (alert-ratio default in TBQ mode, alert ratio ignored
// in exact mode, strategy overridden by an explicit pivot).
func TestKeyCanonicalization(t *testing.T) {
	q := q117()
	tbqA, tbqB := testOpts(), testOpts()
	tbqA.TimeBound, tbqB.TimeBound = time.Second, time.Second
	tbqB.AlertRatio = 0.8 // tbq default == unset
	if resultKey(q, tbqA) != resultKey(q, tbqB) {
		t.Error("TBQ alert ratio 0 vs default 0.8 should share a key")
	}
	exactA, exactB := testOpts(), testOpts()
	exactB.AlertRatio = 0.5 // ignored without a time bound
	if resultKey(q, exactA) != resultKey(q, exactB) {
		t.Error("exact-mode requests differing only in alert ratio should share a key")
	}
	tbqB.AlertRatio = 0.5 // a real TBQ difference must not collide
	if resultKey(q, tbqA) == resultKey(q, tbqB) {
		t.Error("TBQ alert ratio 0.8 vs 0.5 must not share a key")
	}
}
