// Timebounded: the anytime behaviour of Section VI — the same query
// answered under growing response-time budgets converges to the exact
// top-k (Theorem 4), letting interactive applications trade accuracy for
// latency.
//
// Run with: go run ./examples/timebounded
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"semkg"
	"semkg/internal/datagen"
	"semkg/internal/metrics"
)

func main() {
	ctx := context.Background()
	ds := datagen.Generate(datagen.DBpediaLike(0.4))
	model, err := semkg.Train(ctx, ds.Graph, semkg.TrainConfig{Dim: 48, Epochs: 120, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := semkg.NewEngine(ds.Graph, model, ds.Library)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the query with the largest validation set: the hardest search,
	// where tight budgets visibly truncate the answer set.
	q := ds.Simple[0]
	for _, cand := range ds.Simple {
		if len(cand.Truth) > len(q.Truth) {
			q = cand
		}
	}
	k := len(q.Truth)
	opts := semkg.Options{K: k, Tau: 0.7, MaxHops: 4}

	// Exact reference (SGQ).
	exact, err := eng.Search(ctx, q.Graph, opts)
	if err != nil {
		log.Fatal(err)
	}
	exactAnswers := exact.EntitiesOf(q.Focus)
	fmt.Printf("query %s: exact SGQ found %d answers in %s\n\n",
		q.Name, len(exactAnswers), exact.Elapsed)

	fmt.Println("bound      answers  Jaccard(exact)  approximate  elapsed")
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0} {
		bound := time.Duration(float64(exact.Elapsed) * frac)
		bopts := opts
		bopts.TimeBound = bound
		res, err := eng.Search(ctx, q.Graph, bopts)
		if err != nil {
			log.Fatal(err)
		}
		j := metrics.Jaccard(res.EntitiesOf(q.Focus), exactAnswers)
		fmt.Printf("%-9s  %-7d  %-14.2f  %-11v  %s\n",
			bound.Round(time.Microsecond), len(res.Answers), j, res.Approximate,
			res.Elapsed.Round(time.Microsecond))
	}
	fmt.Println("\nAs the budget grows the approximate answer set converges to the")
	fmt.Println("exact top-k (Jaccard -> 1), and with ample budget the run is no")
	fmt.Println("longer marked approximate — Theorem 4 in action.")
}
