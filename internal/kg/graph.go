// Package kg implements the knowledge graph substrate of the reproduction:
// an in-memory directed labelled multigraph G = (V, E, L) per Definition 1 of
// the paper. Each node carries a unique name and a type; each edge carries a
// predicate. The graph is immutable once built (see Builder) and safe for
// concurrent readers, which lets the engine run one A* search goroutine per
// sub-query graph without locking.
//
// Path search in the paper ignores edge directionality (footnote 1), so the
// adjacency lists expose both outgoing and incoming halves of every edge.
package kg

import (
	"fmt"
	"strings"
)

// NodeID identifies a node (entity) in a Graph.
type NodeID int32

// EdgeID identifies a directed edge in a Graph.
type EdgeID int32

// PredID identifies a predicate label.
type PredID int32

// TypeID identifies an entity type label.
type TypeID int32

// NoNode is returned by lookups that find no node.
const NoNode NodeID = -1

// NoType marks nodes with an unknown type. The paper assigns types via a
// probabilistic entity-typing model when missing; our loader assigns NoType
// and the transformation library treats it as matching nothing.
const NoType TypeID = -1

// ValidLabel reports whether s may be used as a predicate or type name:
// non-empty and free of tabs, newlines and carriage returns — the field
// and record separators of the TSV triple format. A label violating this
// would not survive a WriteTriples / ReadTriples round trip (the triple
// would be split or merged), so every construction path (Builder, Delta,
// ReadTriples) rejects it up front instead of corrupting the file later.
func ValidLabel(s string) error {
	if s == "" {
		return fmt.Errorf("kg: empty name")
	}
	if strings.ContainsAny(s, "\t\n\r") {
		return fmt.Errorf("kg: name %q contains a tab, newline or carriage return", s)
	}
	return nil
}

// ValidName is ValidLabel plus the node-name-only rule: no leading '#'.
// Node names open TSV lines (as edge subjects or type-declaration
// subjects), where a leading '#' would turn the triple into a comment
// and silently drop it on re-read; predicates and type names never lead
// a line, so ValidLabel suffices for them.
func ValidName(s string) error {
	if err := ValidLabel(s); err != nil {
		return err
	}
	if s[0] == '#' {
		return fmt.Errorf("kg: name %q starts with the comment marker '#'", s)
	}
	return nil
}

// Edge is a directed labelled edge (a triple <src, pred, dst>).
type Edge struct {
	Src  NodeID
	Dst  NodeID
	Pred PredID
}

// Half is one endpoint's view of an edge, as stored in adjacency lists.
// Out reports whether the edge leaves the node that owns the list.
type Half struct {
	Edge     EdgeID
	Neighbor NodeID
	Pred     PredID
	Out      bool
}

// Graph is an immutable knowledge graph. Build one with a Builder.
type Graph struct {
	names     []string
	types     []TypeID
	nameIndex map[string]NodeID

	typeNames []string
	typeIndex map[string]TypeID
	byType    [][]NodeID

	predNames []string
	predIndex map[string]PredID

	edges []Edge

	// CSR-style adjacency: halves[adjOff[u]:adjOff[u+1]] are the edge
	// halves incident to node u, in edge-insertion order.
	adjOff []int32
	halves []Half

	predCount []int // edges per predicate

	// Derived read-only indexes, built once in Build (see index.go):
	// per-node distinct incident predicates (CSR) and the normalized-name
	// and initials indexes backing the transformation library's fallback.
	nodePredOff []int32
	nodePreds   []PredID
	nameIdx     nameIndex
	typeIdx     nameIndex
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumPredicates returns the number of distinct predicates.
func (g *Graph) NumPredicates() int { return len(g.predNames) }

// NumTypes returns the number of distinct entity types.
func (g *Graph) NumTypes() int { return len(g.typeNames) }

// NodeName returns the unique name of u.
func (g *Graph) NodeName(u NodeID) string { return g.names[u] }

// NodeType returns the type of u (possibly NoType).
func (g *Graph) NodeType(u NodeID) TypeID { return g.types[u] }

// NodeByName returns the node with the given name, or NoNode.
func (g *Graph) NodeByName(name string) NodeID {
	if id, ok := g.nameIndex[name]; ok {
		return id
	}
	return NoNode
}

// TypeName returns the name of type t, or "" for NoType.
func (g *Graph) TypeName(t TypeID) string {
	if t == NoType {
		return ""
	}
	return g.typeNames[t]
}

// TypeByName returns the type with the given name, or NoType.
func (g *Graph) TypeByName(name string) TypeID {
	if id, ok := g.typeIndex[name]; ok {
		return id
	}
	return NoType
}

// NodesOfType returns all nodes with type t. The returned slice is shared;
// callers must not modify it.
func (g *Graph) NodesOfType(t TypeID) []NodeID {
	if t == NoType || int(t) >= len(g.byType) {
		return nil
	}
	return g.byType[t]
}

// PredName returns the name of predicate p.
func (g *Graph) PredName(p PredID) string { return g.predNames[p] }

// PredByName returns the predicate with the given name, or -1.
func (g *Graph) PredByName(name string) PredID {
	if id, ok := g.predIndex[name]; ok {
		return id
	}
	return -1
}

// PredCount returns how many edges carry predicate p.
func (g *Graph) PredCount(p PredID) int { return g.predCount[p] }

// Predicates returns the names of all predicates, indexed by PredID.
// The returned slice is shared; callers must not modify it.
func (g *Graph) Predicates() []string { return g.predNames }

// EdgeAt returns the directed edge with the given id.
func (g *Graph) EdgeAt(id EdgeID) Edge { return g.edges[id] }

// Neighbors returns the edge halves incident to u (both directions).
// The returned slice is shared; callers must not modify it.
func (g *Graph) Neighbors(u NodeID) []Half {
	return g.halves[g.adjOff[u]:g.adjOff[u+1]]
}

// Degree returns the number of edge halves incident to u.
func (g *Graph) Degree(u NodeID) int {
	return int(g.adjOff[u+1] - g.adjOff[u])
}

// AvgDegree returns the average node degree (counting both directions).
func (g *Graph) AvgDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(len(g.halves)) / float64(g.NumNodes())
}

// Stats summarizes the graph in the format of the paper's Table IV.
type Stats struct {
	Entities    int
	Relations   int
	EntityTypes int
	Predicates  int
	AvgDegree   float64
}

// Stats returns summary statistics.
func (g *Graph) Stats() Stats {
	return Stats{
		Entities:    g.NumNodes(),
		Relations:   g.NumEdges(),
		EntityTypes: g.NumTypes(),
		Predicates:  g.NumPredicates(),
		AvgDegree:   g.AvgDegree(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("entities=%d relations=%d types=%d predicates=%d avgDegree=%.1f",
		s.Entities, s.Relations, s.EntityTypes, s.Predicates, s.AvgDegree)
}

// Builder assembles a Graph. It is not safe for concurrent use.
// Node names are unique: AddNode on an existing name returns the existing
// node (updating its type if previously unknown).
type Builder struct {
	g     Graph
	srcs  []NodeID // parallel to edge list, pre-CSR
	dsts  []NodeID
	preds []PredID
}

// NewBuilder returns an empty Builder with capacity hints.
func NewBuilder(nodeHint, edgeHint int) *Builder {
	b := &Builder{}
	b.g.names = make([]string, 0, nodeHint)
	b.g.types = make([]TypeID, 0, nodeHint)
	b.g.nameIndex = make(map[string]NodeID, nodeHint)
	b.g.typeIndex = make(map[string]TypeID)
	b.g.predIndex = make(map[string]PredID)
	b.srcs = make([]NodeID, 0, edgeHint)
	b.dsts = make([]NodeID, 0, edgeHint)
	b.preds = make([]PredID, 0, edgeHint)
	return b
}

// AddNode registers a node with the given name and type name. An empty
// typeName yields NoType. If the node already exists its type is set when it
// was previously NoType; a conflicting non-empty type is ignored (first type
// wins, see TypePredicate), matching the one-type-per-entity assumption of
// the paper. Names must satisfy ValidName; like AddEdge with an unknown
// node, an invalid name is a programming error and panics (Delta offers the
// error-returning form for untrusted input).
func (b *Builder) AddNode(name, typeName string) NodeID {
	if err := ValidName(name); err != nil {
		panic("kg: AddNode: " + err.Error())
	}
	t := NoType
	if typeName != "" {
		t = b.internType(typeName)
	}
	if id, ok := b.g.nameIndex[name]; ok {
		if b.g.types[id] == NoType && t != NoType {
			b.g.types[id] = t
		}
		return id
	}
	id := NodeID(len(b.g.names))
	b.g.names = append(b.g.names, name)
	b.g.types = append(b.g.types, t)
	b.g.nameIndex[name] = id
	return id
}

// AddEdge adds a directed edge src --pred--> dst. Both nodes must exist.
func (b *Builder) AddEdge(src, dst NodeID, predicate string) EdgeID {
	if int(src) >= len(b.g.names) || int(dst) >= len(b.g.names) || src < 0 || dst < 0 {
		panic(fmt.Sprintf("kg: AddEdge with unknown node %d->%d", src, dst))
	}
	p := b.internPred(predicate)
	id := EdgeID(len(b.srcs))
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
	b.preds = append(b.preds, p)
	return id
}

// AddTriple is a convenience that registers both endpoint nodes (with
// unknown types unless already known) and the connecting edge.
func (b *Builder) AddTriple(subject, predicate, object string) EdgeID {
	s := b.AddNode(subject, "")
	o := b.AddNode(object, "")
	return b.AddEdge(s, o, predicate)
}

func (b *Builder) internType(name string) TypeID {
	if id, ok := b.g.typeIndex[name]; ok {
		return id
	}
	if err := ValidLabel(name); err != nil {
		panic("kg: type name: " + err.Error())
	}
	id := TypeID(len(b.g.typeNames))
	b.g.typeNames = append(b.g.typeNames, name)
	b.g.typeIndex[name] = id
	return id
}

func (b *Builder) internPred(name string) PredID {
	if id, ok := b.g.predIndex[name]; ok {
		return id
	}
	if err := ValidLabel(name); err != nil {
		panic("kg: predicate name: " + err.Error())
	}
	id := PredID(len(b.g.predNames))
	b.g.predNames = append(b.g.predNames, name)
	b.g.predIndex[name] = id
	return id
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.g.names) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.srcs) }

// Build finalizes the graph: it freezes node/edge sets, computes the
// CSR adjacency and the per-type node index. The Builder must not be used
// afterwards. Construction uses GOMAXPROCS workers; BuildWorkers exposes
// the knob (any worker count yields a structurally identical graph).
func (b *Builder) Build() *Graph { return b.BuildWorkers(0) }

// BuildWorkers is Build with an explicit worker count for the CSR
// threading and derived-index construction. workers == 1 runs the exact
// sequential algorithms (the cold-start baseline kgbench -exp load
// measures against); zero or negative means GOMAXPROCS. The produced
// graph is structurally identical for every worker count — same ids, same
// per-node adjacency order, same index contents.
func (b *Builder) BuildWorkers(workers int) *Graph {
	workers = normWorkers(workers)
	g := &b.g
	n := len(g.names)
	m := len(b.srcs)

	g.edges = make([]Edge, m)
	parspan(workers, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.edges[i] = Edge{Src: b.srcs[i], Dst: b.dsts[i], Pred: b.preds[i]}
		}
	})

	// Degree count (each edge contributes to both endpoints; self-loops
	// contribute twice to the same node, once per direction).
	deg := make([]int32, n+1)
	for i := 0; i < m; i++ {
		deg[b.srcs[i]+1]++
		deg[b.dsts[i]+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	g.adjOff = deg
	g.halves = make([]Half, 2*m)

	tg := newTaskGroup(workers)
	tg.run(func() { threadHalves(g, workers) })
	tg.run(func() {
		g.byType = make([][]NodeID, len(g.typeNames))
		for id, t := range g.types {
			if t != NoType {
				g.byType[t] = append(g.byType[t], NodeID(id))
			}
		}
	})
	tg.run(func() {
		g.predCount = make([]int, len(g.predNames))
		for i := 0; i < m; i++ {
			g.predCount[b.preds[i]]++
		}
	})
	tg.wait()

	g.buildIndexes(workers)

	b.srcs, b.dsts, b.preds = nil, nil, nil
	return g
}

// threadHalves fills g.halves from g.edges and g.adjOff, preserving the
// sequential cursor fill's per-node edge-insertion order. Workers split
// the node id space: each scans the full edge list but writes only the
// halves owned by its node range. The redundant sequential reads are
// cheap (prefetched, shared in cache); what matters is that the writes —
// which dominate — are fully independent, and per-worker state is one
// cursor array sized by the range, not O(nodes) count matrices.
func threadHalves(g *Graph, workers int) {
	n := len(g.adjOff) - 1
	parspan(workers, n, func(lo, hi int) {
		cursor := make([]int32, hi-lo)
		copy(cursor, g.adjOff[lo:hi])
		for i := range g.edges {
			ed := &g.edges[i]
			if s := int(ed.Src); s >= lo && s < hi {
				g.halves[cursor[s-lo]] = Half{Edge: EdgeID(i), Neighbor: ed.Dst, Pred: ed.Pred, Out: true}
				cursor[s-lo]++
			}
			if d := int(ed.Dst); d >= lo && d < hi {
				g.halves[cursor[d-lo]] = Half{Edge: EdgeID(i), Neighbor: ed.Src, Pred: ed.Pred, Out: false}
				cursor[d-lo]++
			}
		}
	})
}
