package ta

import (
	"math/rand"
	"reflect"
	"testing"

	"semkg/internal/astar"
	"semkg/internal/kg"
)

// TestAssemblerMatchesAssemble drives an Assembler step by step over random
// stream sets and checks that finals and stats are identical to the
// one-shot Assemble on equal inputs.
func TestAssemblerMatchesAssemble(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nStreams := 1 + rng.Intn(4)
		k := 1 + rng.Intn(5)
		mk := func() ([]Stream, []Stream) {
			a := make([]Stream, nStreams)
			b := make([]Stream, nStreams)
			for i := range a {
				n := rng.Intn(12)
				ms := make([]astar.Match, n)
				for j := range ms {
					ms[j] = entry(kg.NodeID(rng.Intn(8)), float64(rng.Intn(100))/100)
				}
				sortMatches(ms)
				ms2 := make([]astar.Match, n)
				copy(ms2, ms)
				a[i] = &SliceStream{Matches: ms}
				b[i] = &SliceStream{Matches: ms2}
			}
			return a, b
		}
		sa, sb := mk()
		wantFinals, wantStats := Assemble(sa, k)

		asm := NewAssembler(sb, k)
		steps := 0
		for asm.Step() {
			if asm.Done() {
				t.Fatal("Step returned true on a done assembler")
			}
			steps++
			if steps > 10000 {
				t.Fatal("assembler did not terminate")
			}
			// Provisional ranking is always ≤ k and sorted by score.
			prov := asm.Provisional()
			if len(prov) > k {
				t.Fatalf("provisional has %d > k=%d entries", len(prov), k)
			}
			for i := 1; i < len(prov); i++ {
				if prov[i].Score > prov[i-1].Score {
					t.Fatalf("provisional not sorted: %v", prov)
				}
			}
		}
		if !asm.Done() {
			t.Fatal("assembler not done after Step returned false")
		}
		if !reflect.DeepEqual(asm.Finals(), wantFinals) {
			t.Fatalf("trial %d: finals differ:\n asm: %+v\n one-shot: %+v", trial, asm.Finals(), wantFinals)
		}
		if asm.Stats() != wantStats {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, asm.Stats(), wantStats)
		}
		// The final provisional snapshot equals the finals (modulo the
		// defensive parts copy).
		prov := asm.Provisional()
		if !reflect.DeepEqual(prov, wantFinals) && (len(prov) != 0 || len(wantFinals) != 0) {
			t.Fatalf("trial %d: final provisional %+v != finals %+v", trial, prov, wantFinals)
		}
	}
}

func sortMatches(ms []astar.Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].PSS > ms[j-1].PSS; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// TestAssemblerBounds checks the L_k/U_max view: the gap closes and the
// terminal condition L_k >= U_max holds when termination was by bounds.
func TestAssemblerBounds(t *testing.T) {
	l1 := list(pair{1, 0.9}, pair{2, 0.8}, pair{3, 0.7}, pair{4, 0.2})
	l2 := list(pair{2, 0.8}, pair{3, 0.75}, pair{1, 0.5}, pair{4, 0.1})
	asm := NewAssembler([]Stream{l1, l2}, 2)
	for asm.Step() {
	}
	lk, umax := asm.Bounds()
	if lk < umax {
		t.Errorf("terminated with L_k=%v < U_max=%v without exhaustion = %v",
			lk, umax, asm.Stats().Exhausted)
	}
	if len(asm.Finals()) != 2 {
		t.Fatalf("finals = %+v, want 2", asm.Finals())
	}
}

// TestAssemblerEdgeCases mirrors Assemble's degenerate inputs.
func TestAssemblerEdgeCases(t *testing.T) {
	if a := NewAssembler(nil, 3); !a.Done() || a.Step() || a.Finals() != nil {
		t.Error("no streams should be born terminated with nil finals")
	}
	if a := NewAssembler([]Stream{list()}, 0); !a.Done() || a.Step() {
		t.Error("k=0 should be born terminated")
	}
	// Provisional on a virgin assembler is empty, not nil-panic.
	if got := NewAssembler(nil, 3).Provisional(); len(got) != 0 {
		t.Errorf("virgin provisional = %v", got)
	}
}
