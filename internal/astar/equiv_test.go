package astar

import (
	"fmt"
	"math/rand"
	"testing"

	"semkg/internal/kg"
)

// randomCaseSegs generalizes randomCase to multi-segment sub-queries so the
// equivalence check also covers segment-closing and suffix-bound paths.
func randomCaseSegs(rng *rand.Rand, segs int) (*kg.Graph, *testWeighter, SubQuery) {
	n := rng.Intn(12) + 6
	preds := []string{"p0", "p1", "p2", "p3"}
	b := kg.NewBuilder(n, n*3)
	ids := make([]kg.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(fmt.Sprintf("n%02d", i), "T")
	}
	m := rng.Intn(3*n) + n
	for i := 0; i < m; i++ {
		b.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], preds[rng.Intn(len(preds))])
	}
	g := b.Build()

	perSeg := make([]map[string]float64, segs)
	for s := range perSeg {
		w := map[string]float64{}
		for _, p := range preds {
			w[p] = 0.05 + 0.95*rng.Float64()
		}
		perSeg[s] = w
	}
	tw := newTestWeighter(g, perSeg)

	sub := SubQuery{Anchors: []kg.NodeID{ids[0]}}
	for s := 0; s < segs; s++ {
		ends := make(map[kg.NodeID]bool)
		for i := 1; i < n; i++ {
			if rng.Float64() < 0.3 {
				ends[ids[i]] = true
			}
		}
		if len(ends) == 0 {
			ends[ids[1+rng.Intn(n-1)]] = true
		}
		// A false-valued entry is a non-member under the seed's map test;
		// the bitset compile must treat it the same.
		ends[ids[1+rng.Intn(n-1)]] = false
		sub.EndSets = append(sub.EndSets, ends)
	}
	return g, tw, sub
}

func matchesEqual(a, b Match) bool {
	if a.PSS != b.PSS || len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) || len(a.SegEnds) != len(b.SegEnds) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	for i := range a.SegEnds {
		if a.SegEnds[i] != b.SegEnds[i] {
			return false
		}
	}
	return true
}

func drainNext(next func() (Match, bool)) []Match {
	var out []Match
	for {
		m, ok := next()
		if !ok {
			return out
		}
		out = append(out, m)
	}
}

// TestArenaMatchesLegacySequence is the arena/seed regression check: on
// randomized worlds, the arena-backed searcher must emit the exact match
// sequence (paths, segment ends, and bitwise-identical pss) of the seed
// implementation, across the option matrix, preserving Theorem 2's
// emission order. Search-effort stats must agree too — the log-space
// τ comparisons prune exactly the states the pow-space ones did.
func TestArenaMatchesLegacySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		segs := 1 + rng.Intn(3)
		g, tw, sub := randomCaseSegs(rng, segs)
		for _, opt := range []Options{
			{Tau: 0.3, MaxHops: 4},
			{Tau: 0.3, MaxHops: 4, PruneVisited: true},
			{Tau: 0.3, MaxHops: 4, NoHeuristic: true},
			{Tau: 0.6, MaxHops: 3},
		} {
			arena := NewSearcher(g, tw, sub, opt)
			legacy := NewLegacySearcher(g, tw, sub, opt)
			got := drainNext(arena.Next)
			want := drainNext(legacy.Next)
			if len(got) != len(want) {
				t.Fatalf("trial %d opts %+v: arena emitted %d matches, legacy %d",
					trial, opt, len(got), len(want))
			}
			for i := range got {
				if !matchesEqual(got[i], want[i]) {
					t.Fatalf("trial %d opts %+v: match %d differs:\narena  %+v\nlegacy %+v",
						trial, opt, i, got[i], want[i])
				}
			}
			if arena.Stats() != legacy.Stats() {
				t.Fatalf("trial %d opts %+v: stats differ: arena %+v, legacy %+v",
					trial, opt, arena.Stats(), legacy.Stats())
			}
		}
	}
}

// TestArenaMatchesLegacyEager runs the same comparison for the
// time-bounded eager mode: discovery order and emitted matches must be
// identical when both run to exhaustion.
func TestArenaMatchesLegacyEager(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 150; trial++ {
		segs := 1 + rng.Intn(2)
		g, tw, sub := randomCaseSegs(rng, segs)
		opt := Options{Tau: 0.3, MaxHops: 4}

		var got, want []Match
		arena := NewSearcher(g, tw, sub, opt)
		if !arena.RunEager(nil, func(m Match) bool { got = append(got, m); return true }) {
			t.Fatalf("trial %d: arena eager run should exhaust", trial)
		}
		legacy := NewLegacySearcher(g, tw, sub, opt)
		if !legacy.RunEager(nil, func(m Match) bool { want = append(want, m); return true }) {
			t.Fatalf("trial %d: legacy eager run should exhaust", trial)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: arena emitted %d, legacy %d", trial, len(got), len(want))
		}
		for i := range got {
			if !matchesEqual(got[i], want[i]) {
				t.Fatalf("trial %d: eager match %d differs:\narena  %+v\nlegacy %+v",
					trial, i, got[i], want[i])
			}
		}
		if arena.Stats() != legacy.Stats() {
			t.Fatalf("trial %d: stats differ: arena %+v, legacy %+v",
				trial, arena.Stats(), legacy.Stats())
		}
	}
}
