package datagen

import (
	"math/rand"

	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/semgraph"
	"semkg/internal/transform"
)

// AddNodeNoise returns a copy of q with one random query node's name or
// type replaced by a randomly selected synonym or abbreviation
// (Section VII-E, node noise). Half the replacements come from the
// transformation library (and are thus resolvable by φ); the other half
// simulate out-of-vocabulary phrasings — misspellings and unregistered
// variants, as crowd queries contain — which only the heuristic
// abbreviation fallback can sometimes recover. Without the latter the
// engine would be trivially immune to node noise, unlike the paper's
// Fig. 17(a).
func AddNodeNoise(q *query.Graph, lib *transform.Library, rng *rand.Rand) *query.Graph {
	out := cloneQuery(q)
	type slot struct {
		idx    int
		isName bool
		term   string
		alts   []string
	}
	var slots []slot
	for i, n := range out.Nodes {
		if n.Name != "" {
			slots = append(slots, slot{i, true, n.Name, alternatives(lib, n.Name)})
		}
		if n.Type != "" {
			slots = append(slots, slot{i, false, n.Type, alternatives(lib, n.Type)})
		}
	}
	if len(slots) == 0 {
		return out
	}
	s := slots[rng.Intn(len(slots))]
	var alt string
	if len(s.alts) > 0 && rng.Float64() < 0.5 {
		alt = s.alts[rng.Intn(len(s.alts))]
	} else {
		alt = corrupt(s.term, rng)
	}
	if s.isName {
		out.Nodes[s.idx].Name = alt
	} else {
		out.Nodes[s.idx].Type = alt
	}
	return out
}

// corrupt produces an out-of-vocabulary variant of term: a duplicated
// letter (typo) or a truncated quasi-abbreviation.
func corrupt(term string, rng *rand.Rand) string {
	if len(term) < 3 {
		return term + "x"
	}
	if rng.Intn(2) == 0 {
		i := 1 + rng.Intn(len(term)-2)
		return term[:i] + string(term[i]) + term[i:] // doubled letter
	}
	cut := len(term)/2 + rng.Intn(len(term)/2)
	return term[:cut] // truncation, e.g. "Countr"
}

// AddEdgeNoise returns a copy of q with one random query edge's predicate
// replaced by one of its top-10 semantically similar predicates in the
// space (Section VII-E, edge noise).
func AddEdgeNoise(q *query.Graph, g *kg.Graph, space *embed.Space, rng *rand.Rand) *query.Graph {
	out := cloneQuery(q)
	if len(out.Edges) == 0 {
		return out
	}
	ei := rng.Intn(len(out.Edges))
	p, err := semgraph.ResolvePredicate(g, out.Edges[ei].Predicate)
	if err != nil {
		return out
	}
	top := space.TopSimilar(int(p), 10)
	if len(top) == 0 {
		return out
	}
	out.Edges[ei].Predicate = g.PredName(kg.PredID(top[rng.Intn(len(top))]))
	return out
}

func alternatives(lib *transform.Library, term string) []string {
	var alts []string
	for _, t := range lib.Expand(term) {
		if t != term {
			alts = append(alts, t)
		}
	}
	return alts
}

func cloneQuery(q *query.Graph) *query.Graph {
	out := &query.Graph{
		Nodes: append([]query.Node(nil), q.Nodes...),
		Edges: append([]query.Edge(nil), q.Edges...),
	}
	return out
}

// PriorInstance is one piece of prior knowledge for the S4 baseline: a
// known path schema between a focus type and an anchor type (the paper's
// "semantic instances ... e.g., given by Patty").
type PriorInstance struct {
	FocusType  string
	AnchorType string
	Predicates []string
}

// Prior samples n prior-knowledge instances at the given quality: with
// probability quality an instance reflects a true schema of one of the
// benchmark intentions (production, nationality, club grounds), otherwise
// a semantically wrong path. S4's accuracy is sensitive to this quality,
// as the paper observes.
func (d *Dataset) Prior(n int, quality float64, rng *rand.Rand) []PriorInstance {
	type domain struct {
		focus   string
		correct [][]string
		wrong   [][]string
		weight  float64
	}
	domains := []domain{
		{
			focus:   "Automobile",
			correct: ProductionSchemas,
			wrong: [][]string{
				{"designer", "nationality"},
				{"designer", "birthPlace", "country"},
				{"relatedTo", "assembly"},
			},
			weight: 0.6,
		},
		{
			focus:   "Person",
			correct: NationalitySchemas,
			wrong: [][]string{
				{"team", "ground", "country"},
				{"relatedTo", "nationality"},
			},
			weight: 0.25,
		},
		{
			focus:   "SoccerClub",
			correct: ClubSchemas,
			wrong: [][]string{
				{"team", "nationality"},
			},
			weight: 0.15,
		},
	}
	out := make([]PriorInstance, n)
	for i := range out {
		x := rng.Float64()
		var dom domain
		for _, cand := range domains {
			if x < cand.weight {
				dom = cand
				break
			}
			x -= cand.weight
		}
		if dom.focus == "" {
			dom = domains[0]
		}
		var preds []string
		if rng.Float64() < quality {
			preds = dom.correct[rng.Intn(len(dom.correct))]
		} else {
			preds = dom.wrong[rng.Intn(len(dom.wrong))]
		}
		out[i] = PriorInstance{FocusType: dom.focus, AnchorType: "Country", Predicates: preds}
	}
	return out
}
