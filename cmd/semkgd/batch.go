// POST /v1/batch: a group of query documents answered in one call. The
// buffered form returns api.BatchResult with per-query attribution; the
// ?stream=1 form fans every query's event stream into one NDJSON
// response, each line tagged with the query's index (and ID, when
// given). Either way the group compiles its distinct shapes under one
// shared φ memo and overlapping sub-query searches run once — see
// internal/serve's batch and sub-sharing layers.

package main

import (
	"expvar"
	"net/http"
	"sync"

	"semkg/internal/api"
	"semkg/internal/serve"
)

var (
	statBatches      = expvar.NewInt("semkgd_batches_total")
	statBatchQueries = expvar.NewInt("semkgd_batch_queries_total")
)

// handleBatch answers POST /v1/batch. A malformed body is a 400; a
// well-formed batch always answers 200 with per-query outcomes — one
// query's failure (bad request, overload, cancellation) is attributed to
// that query alone and never sinks its neighbours.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, err := api.DecodeBatchRequest(r.Body)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	statBatches.Add(1)
	statBatchQueries.Add(int64(len(req.Queries)))
	items := make([]serve.BatchItem, len(req.Queries))
	for i := range req.Queries {
		items[i].Query, items[i].Opts = req.Item(i)
	}
	if v := r.URL.Query().Get("stream"); v != "" && v != "0" && v != "false" {
		s.streamBatch(w, r, req, items)
		return
	}

	out := s.srv.SearchBatch(r.Context(), items)
	res := api.BatchResult{Results: make([]api.BatchItemResult, len(out))}
	for i, o := range out {
		item := api.BatchItemResult{Index: i, ID: req.Queries[i].ID}
		if o.Err != nil {
			item.Error = o.Err.Error()
		} else {
			r := api.ResultFrom(o.Result)
			item.Result = &r
		}
		res.Results[i] = item
	}
	writeJSON(w, http.StatusOK, res)
}

// streamBatch is the NDJSON variant of handleBatch: every query's events
// interleave on one connection, tagged per line. Per-query failures
// appear as "error" lines; the response ends when every query's stream
// has terminated.
func (s *server) streamBatch(w http.ResponseWriter, r *http.Request, req api.BatchRequest, items []serve.BatchItem) {
	statStreams.Add(1)
	s.srv.WarmPlans(items)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat reverse-proxy buffering
	w.WriteHeader(http.StatusOK)

	lines := make(chan []byte, 64)
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it serve.BatchItem) {
			defer wg.Done()
			id := req.Queries[i].ID
			emit := func(line []byte, err error) {
				if err != nil {
					statErrors.Add(1)
					return
				}
				lines <- line
			}
			st, err := s.srv.Stream(r.Context(), it.Query, it.Opts)
			if err != nil {
				emit(api.EncodeBatchError(i, id, err))
				return
			}
			for ev := range st.Events() {
				emit(api.EncodeBatchEvent(i, id, ev))
			}
			if _, err := st.Result(); err != nil {
				emit(api.EncodeBatchError(i, id, err))
			}
		}(i, it)
	}
	go func() {
		wg.Wait()
		close(lines)
	}()

	flusher, _ := w.(http.Flusher)
	clientGone := false
	for line := range lines {
		if clientGone {
			continue // drain: the producers stop via r.Context() cancellation
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			clientGone = true
			continue
		}
		statStreamEvents.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
}
