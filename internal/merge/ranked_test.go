package merge

import (
	"math/rand"
	"reflect"
	"testing"
)

type scored struct {
	name  string
	score float64
}

func scoredBefore(a, b scored) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.name < b.name
}

func scoredKey(s scored) string { return s.name }

func TestBlendDedupAndOrder(t *testing.T) {
	lists := [][]scored{
		{{"a", 0.9}, {"b", 0.5}},
		{{"b", 0.7}, {"c", 0.6}},
		{{"a", 0.4}, {"d", 0.3}},
	}
	got := Blend(lists, 0, scoredKey, scoredBefore)
	want := []scored{{"a", 0.9}, {"b", 0.7}, {"c", 0.6}, {"d", 0.3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Blend = %v, want %v", got, want)
	}
}

func TestBlendTruncatesToK(t *testing.T) {
	lists := [][]scored{
		{{"a", 0.9}, {"b", 0.8}, {"c", 0.7}},
		{{"d", 0.85}},
	}
	got := Blend(lists, 2, scoredKey, scoredBefore)
	want := []scored{{"a", 0.9}, {"d", 0.85}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Blend k=2 = %v, want %v", got, want)
	}
}

// Equal scores across lists must resolve deterministically: the order tie
// falls back to name, then list index, then rank — never map iteration.
func TestBlendDeterministicTieBreak(t *testing.T) {
	lists := [][]scored{
		{{"x", 0.5}, {"y", 0.5}},
		{{"y", 0.5}, {"z", 0.5}},
	}
	first := Blend(lists, 0, scoredKey, scoredBefore)
	for i := 0; i < 50; i++ {
		if got := Blend(lists, 0, scoredKey, scoredBefore); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: Blend = %v, want %v", i, got, first)
		}
	}
	want := []scored{{"x", 0.5}, {"y", 0.5}, {"z", 0.5}}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("Blend = %v, want %v", first, want)
	}
}

func TestBlendEmptyAndNil(t *testing.T) {
	if got := Blend[scored](nil, 5, scoredKey, scoredBefore); len(got) != 0 {
		t.Fatalf("Blend(nil) = %v, want empty", got)
	}
	if got := Blend([][]scored{{}, nil}, 5, scoredKey, scoredBefore); len(got) != 0 {
		t.Fatalf("Blend(empty lists) = %v, want empty", got)
	}
}

// A single-list blend is the identity (minus per-key dedup): blending must
// never reorder a list that is already ranked under the same order.
func TestBlendSingleListIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var l []scored
		for i := 0; i < 10; i++ {
			l = append(l, scored{name: string(rune('a' + i)), score: float64(rng.Intn(5))})
		}
		// Rank the list under the shared order first.
		sorted := Blend([][]scored{l}, 0, scoredKey, scoredBefore)
		again := Blend([][]scored{sorted}, 0, scoredKey, scoredBefore)
		if !reflect.DeepEqual(sorted, again) {
			t.Fatalf("trial %d: re-blend changed order: %v vs %v", trial, sorted, again)
		}
	}
}
