// Batch experiment: what cross-query sub-search sharing buys on an
// overlapping workload. The workload replays zipf-skewed batches whose
// items repeat query shapes under varying K — the result cache is
// disabled in both configurations so every item runs the pipeline, and
// the only difference between the two measured rows is the shared
// sub-search cache (internal/serve's subcache layer): the independent
// configuration re-enumerates every sub-query, the shared one reuses the
// memoized match prefix. Run via `go run ./cmd/kgbench -exp batch`
// (writes BENCH_batch.json).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"semkg/internal/query"
	"semkg/internal/serve"
)

// BatchRow is one measured serving configuration of the batch workload.
type BatchRow struct {
	// Config names the configuration: "independent" (sub-search sharing
	// disabled) or "shared" (the default sub-search cache).
	Config string `json:"config"`
	// Batches and BatchSize describe the workload shape; Requests is
	// their product (every batch item is one query).
	Batches   int `json:"batches"`
	BatchSize int `json:"batch_size"`
	Requests  int `json:"requests"`
	// P50Us / P95Us are per-batch wall-time percentiles in microseconds.
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	// QPS counts batch items per second of total wall time.
	QPS float64 `json:"qps"`
	// Serving-layer counters observed after the workload.
	SubHits      uint64 `json:"sub_hits"`
	SubMisses    uint64 `json:"sub_misses"`
	PipelineRuns uint64 `json:"pipeline_runs"`
	// FlightShared counts items that joined an identical in-flight item
	// of the same batch (singleflight) instead of running the pipeline.
	FlightShared uint64 `json:"flight_shared"`
}

// BatchResult is the experiment artifact (BENCH_batch.json).
type BatchResult struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	EnvInfo
	Rows []BatchRow `json:"configs"`
	// QPSGain is shared QPS over independent QPS; P50Speedup is
	// independent per-batch p50 over shared p50. Both > 1 mean sharing
	// won.
	QPSGain    float64 `json:"qps_gain"`
	P50Speedup float64 `json:"p50_speedup"`
}

// batchWorkload is the deterministic request mix: batches of zipf-drawn
// query shapes, each item with one of several K values, so repeated
// shapes share sub-query blueprints while their result keys differ.
type batchWorkload struct {
	batches [][]serve.BatchItem
}

func makeBatchWorkload(env *Env, qs []*query.Graph, nBatches, batchSize int) batchWorkload {
	const seed = 23
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(len(qs)-1))
	// Larger K values make each item enumerate deeper, so a reused match
	// prefix saves real work rather than noise.
	ks := []int{10, 25, 50}
	w := batchWorkload{batches: make([][]serve.BatchItem, nBatches)}
	for b := range w.batches {
		items := make([]serve.BatchItem, batchSize)
		for i := range items {
			items[i] = serve.BatchItem{
				Query: qs[zipf.Uint64()],
				Opts:  env.SearchOptions(ks[rng.Intn(len(ks))]),
			}
		}
		w.batches[b] = items
	}
	return w
}

// batchMeter accumulates one configuration's side of the paired
// measurement.
type batchMeter struct {
	name     string
	srv      *serve.Engine
	perBatch []time.Duration
	busy     time.Duration
	items    int
}

// replay runs one batch through this configuration, timing it.
func (m *batchMeter) replay(ctx context.Context, batch []serve.BatchItem) error {
	start := time.Now()
	out := m.srv.SearchBatch(ctx, batch)
	d := time.Since(start)
	for i, o := range out {
		if o.Err != nil {
			return fmt.Errorf("bench: %s batch item %d: %w", m.name, i, o.Err)
		}
	}
	m.perBatch = append(m.perBatch, d)
	m.busy += d
	m.items += len(batch)
	return nil
}

// row snapshots the accumulated measurements. QPS divides by the
// configuration's own busy time, not shared wall time — the paired
// replay interleaves the two configurations, so wall time covers both.
func (m *batchMeter) row(batchSize int) BatchRow {
	sorted := sortedLatencies(m.perBatch)
	st := m.srv.Stats()
	return BatchRow{
		Config:       m.name,
		Batches:      len(m.perBatch),
		BatchSize:    batchSize,
		Requests:     m.items,
		P50Us:        percentile(sorted, 0.5),
		P95Us:        percentile(sorted, 0.95),
		QPS:          float64(m.items) / m.busy.Seconds(),
		SubHits:      st.SubHits,
		SubMisses:    st.SubMisses,
		PipelineRuns: st.PipelineRuns,
		FlightShared: st.FlightShared,
	}
}

// RunBatch measures the batch workload with sub-search sharing disabled
// and enabled. Short mode trims the batch count for CI smoke runs.
func RunBatch(env *Env, short bool) (*BatchResult, error) {
	qs := serveQueries(env)
	if len(qs) == 0 {
		return nil, fmt.Errorf("bench: environment has no workload queries")
	}
	// Enough batches that the shared configuration's warmup misses (the
	// first time each blueprint is seen) amortize out of the comparison.
	nBatches, batchSize := 64, 8
	if short {
		nBatches = 8
	}
	w := makeBatchWorkload(env, qs, nBatches, batchSize)
	ctx := context.Background()
	res := &BatchResult{
		Dataset: env.Cfg.Profile.Name,
		Scale:   fmt.Sprintf("%d nodes / %d edges", env.Dataset.Graph.NumNodes(), env.Dataset.Graph.NumEdges()),
		EnvInfo: CaptureEnv(),
	}

	// Both rows disable the result cache: with it on, repeated (shape, K)
	// pairs answer from the cache in either configuration and the rows
	// would converge to measuring the cache, not the sharing layer.
	// Queue sized for the batch width: this workload measures sharing,
	// not shedding, so no item should be rejected. The two
	// configurations replay every batch back to back with alternating
	// order (a paired measurement), so ambient machine load hits both
	// sides equally instead of skewing whichever ran second.
	ind := &batchMeter{name: "independent",
		srv: serve.New(env.Engine, serve.Config{ResultCache: -1, SubCache: -1, Queue: 2 * batchSize})}
	shr := &batchMeter{name: "shared",
		srv: serve.New(env.Engine, serve.Config{ResultCache: -1, Queue: 2 * batchSize})}
	for bi, batch := range w.batches {
		first, second := ind, shr
		if bi%2 == 1 {
			first, second = shr, ind
		}
		if err := first.replay(ctx, batch); err != nil {
			return nil, err
		}
		if err := second.replay(ctx, batch); err != nil {
			return nil, err
		}
	}
	independent, shared := ind.row(batchSize), shr.row(batchSize)
	res.Rows = []BatchRow{independent, shared}
	if independent.QPS > 0 {
		res.QPSGain = shared.QPS / independent.QPS
	}
	if shared.P50Us > 0 {
		res.P50Speedup = independent.P50Us / shared.P50Us
	}
	return res, nil
}

// WriteJSON stores the artifact.
func (r *BatchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the comparison as a text table.
func (r *BatchResult) Render() *Table {
	t := &Table{
		Title: fmt.Sprintf("Batch sub-search sharing (%s, %s, %s/%s) — QPS gain %.2fx, p50 speedup %.2fx",
			r.Dataset, r.Scale, r.GOOS, r.GOARCH, r.QPSGain, r.P50Speedup),
		Header: []string{"config", "batches", "size", "p50 µs", "p95 µs", "QPS",
			"sub hits", "sub misses", "runs", "shared"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config,
			fmt.Sprintf("%d", row.Batches),
			fmt.Sprintf("%d", row.BatchSize),
			fmt.Sprintf("%.0f", row.P50Us),
			fmt.Sprintf("%.0f", row.P95Us),
			fmt.Sprintf("%.0f", row.QPS),
			fmt.Sprintf("%d", row.SubHits),
			fmt.Sprintf("%d", row.SubMisses),
			fmt.Sprintf("%d", row.PipelineRuns),
			fmt.Sprintf("%d", row.FlightShared),
		)
	}
	return t
}
