// Package embed implements knowledge-graph embedding (Section IV-A of the
// paper): translation-based models (TransE, and TransH as an ablation
// variant) trained with margin-ranking loss and negative sampling, producing
// the predicate semantic space E = {e_1...e_n}. The semantic similarity
// between two predicates is the cosine similarity of their vectors (Eq. 5),
// which the semantic graph uses as edge weights.
//
// Everything is stdlib-only and deterministic for a fixed seed.
package embed

import "math"

// Vector is a dense float64 vector.
type Vector []float64

// Dot returns the inner product of a and b. The vectors must have equal
// length.
func Dot(a, b Vector) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v Vector) float64 { return math.Sqrt(Dot(v, v)) }

// Normalize scales v in place to unit Euclidean norm. A zero vector is left
// unchanged.
func Normalize(v Vector) {
	n := Norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. If either
// vector is zero it returns 0.
func Cosine(a, b Vector) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	// Guard against floating-point drift outside [-1, 1].
	return math.Max(-1, math.Min(1, c))
}

// Clone returns a copy of v.
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}
