package api

import (
	"encoding/json"
	"fmt"
	"io"
)

// KeywordRequest is the body of POST /v1/keyword: bare keywords instead
// of a structured query document.
type KeywordRequest struct {
	// Keywords is the raw keyword input, e.g. "design engine italy".
	Keywords string `json:"keywords"`
	// Options tunes every candidate's search; the zero value means engine
	// defaults.
	Options Options `json:"options"`
	// MaxCandidates caps how many assembled candidate queries execute.
	// 0 = the server's configured default.
	MaxCandidates int `json:"max_candidates,omitempty"`
}

// DecodeKeywordRequest parses a keyword request body strictly (unknown
// fields and trailing data rejected). Nothing is validated here.
func DecodeKeywordRequest(r io.Reader) (KeywordRequest, error) {
	var req KeywordRequest
	if err := decodeStrict(r, &req); err != nil {
		return KeywordRequest{}, fmt.Errorf("api: parsing keyword request: %w", err)
	}
	return req, nil
}

// KeywordCandidate is the wire form of one assembled candidate query.
type KeywordCandidate struct {
	// Query is the assembled query document — directly replayable against
	// POST /v1/search.
	Query Query `json:"query"`
	// Score is the assembly score the candidates rank by.
	Score float64 `json:"score"`
	// Coverage is the fraction of input keywords the candidate consumed.
	Coverage float64 `json:"coverage"`
	// Explain is a one-line account of the assembly.
	Explain string `json:"explain,omitempty"`
}

// KeywordAnswer is the wire form of one blended answer: a regular answer
// plus its blended score and the candidate that produced it.
type KeywordAnswer struct {
	Answer
	// Blended is the score the blended ranking orders by (candidate score
	// × normalized answer score).
	Blended float64 `json:"blended"`
	// Candidate indexes the response's candidates list.
	Candidate int `json:"candidate"`
}

// KeywordRun reports one executed candidate.
type KeywordRun struct {
	// Candidate indexes the response's candidates list.
	Candidate int `json:"candidate"`
	// Answers is how many answers the candidate contributed.
	Answers int `json:"answers"`
	// Elapsed is the candidate's serving time.
	Elapsed Duration `json:"elapsed"`
	// Approximate mirrors the result's time-bounded flag.
	Approximate bool `json:"approximate,omitempty"`
	// Error is the candidate's failure, absent on success.
	Error string `json:"error,omitempty"`
}

// KeywordResult is the wire form of a blended keyword-search response.
type KeywordResult struct {
	// Keywords echoes the normalized keywords after tokenization/fusion.
	Keywords []string `json:"keywords"`
	// Unmatched lists input keywords no graph element matched.
	Unmatched []string `json:"unmatched,omitempty"`
	// Candidates are the assembled candidates, best first (executed or
	// not).
	Candidates []KeywordCandidate `json:"candidates"`
	// Executed is how many of the candidates ran (a prefix).
	Executed int `json:"executed"`
	// Runs report the executed candidates.
	Runs []KeywordRun `json:"runs,omitempty"`
	// Answers is the blended per-entity-deduplicated top-k.
	Answers []KeywordAnswer `json:"answers"`
	// AssemblyElapsed is the query-graph-assembly time alone.
	AssemblyElapsed Duration `json:"assembly_elapsed"`
	// Elapsed covers assembly, execution and blending.
	Elapsed Duration `json:"elapsed"`
	// Generation is the engine generation that answered.
	Generation uint64 `json:"generation"`
}

// DecodeKeywordResult parses a keyword response strictly (clients).
func DecodeKeywordResult(r io.Reader) (KeywordResult, error) {
	var res KeywordResult
	if err := decodeStrict(r, &res); err != nil {
		return KeywordResult{}, fmt.Errorf("api: parsing keyword result: %w", err)
	}
	return res, nil
}

// Keyword-stream event discriminators (the "event" field of an NDJSON
// line on POST /v1/keyword?stream=1).
const (
	// KeywordEventAssembly opens every keyword stream: the candidates.
	KeywordEventAssembly = "assembly"
	// KeywordEventEngine forwards one engine event from one candidate.
	KeywordEventEngine = "engine"
	// KeywordEventResult closes the stream with the blended result.
	KeywordEventResult = "result"
)

// KeywordEvent is the wire form of one keyword-stream event. Only the
// fields of the discriminated kind are populated:
//
//   - assembly: keywords, unmatched, candidates, executed
//   - engine:   candidate, inner
//   - result:   result
type KeywordEvent struct {
	// Event is the kind discriminator: "assembly", "engine" or "result".
	// Always present.
	Event string `json:"event"`

	// Keywords echoes the normalized keywords (assembly event).
	Keywords []string `json:"keywords,omitempty"`
	// Unmatched lists keywords nothing matched (assembly event).
	Unmatched []string `json:"unmatched,omitempty"`
	// Candidates are the assembled candidates (assembly event).
	Candidates []KeywordCandidate `json:"candidates,omitempty"`
	// Executed is how many candidates will run (assembly event).
	Executed int `json:"executed,omitempty"`

	// Candidate attributes an engine event to a candidate (0-based index
	// into the assembly event's candidates). A pointer so candidate 0
	// still serializes.
	Candidate *int `json:"candidate,omitempty"`
	// Inner is the forwarded engine event.
	Inner *Event `json:"inner,omitempty"`

	// Result is the terminal blended payload; exactly one "result" event
	// ends every stream.
	Result *KeywordResult `json:"result,omitempty"`
}

// DecodeKeywordEvent parses one keyword NDJSON event line.
func DecodeKeywordEvent(line []byte) (KeywordEvent, error) {
	var ev KeywordEvent
	if err := json.Unmarshal(line, &ev); err != nil {
		return KeywordEvent{}, fmt.Errorf("api: parsing keyword event: %w", err)
	}
	if ev.Event == "" {
		return KeywordEvent{}, fmt.Errorf("api: keyword event line missing %q discriminator", "event")
	}
	return ev, nil
}

// Suggestion is the wire form of one autocomplete completion.
type Suggestion struct {
	// Text is the graph's spelling of the completed element.
	Text string `json:"text"`
	// Kind is "entity", "type" or "predicate".
	Kind string `json:"kind"`
	// Via is the index path that matched: "exact", "prefix" or "initials".
	Via string `json:"via"`
	// Count is the element's mass (nodes, type cardinality, or edges).
	Count int `json:"count"`
	// Score is the match quality; completions arrive best first.
	Score float64 `json:"score"`
}

// SuggestResult is the wire form of GET /v1/suggest.
type SuggestResult struct {
	// Query echoes the input fragment.
	Query string `json:"query"`
	// Suggestions are the completions, best first.
	Suggestions []Suggestion `json:"suggestions"`
	// Generation is the engine generation answered from.
	Generation uint64 `json:"generation"`
	// Elapsed is the index-lookup time.
	Elapsed Duration `json:"elapsed"`
}

// DecodeSuggestResult parses a suggest response strictly (clients).
func DecodeSuggestResult(r io.Reader) (SuggestResult, error) {
	var res SuggestResult
	if err := decodeStrict(r, &res); err != nil {
		return SuggestResult{}, fmt.Errorf("api: parsing suggest result: %w", err)
	}
	return res, nil
}
