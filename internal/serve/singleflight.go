package serve

import (
	"context"
	"sync"

	"semkg/internal/core"
)

// eventLog is an append-only record of one pipeline execution's stream
// events plus its terminal outcome. The leader appends; any number of
// subscribers replay from the start concurrently — a follower that joins
// mid-run first catches up on the recorded prefix, then follows live. The
// closed log doubles as the result-cache entry's replay source, so cached,
// deduplicated and cold streams all deliver the identical event sequence.
type eventLog struct {
	mu      sync.Mutex
	events  []core.Event
	closed  bool
	res     *core.Result
	err     error
	changed chan struct{} // closed and replaced on every append/close
}

func newEventLog() *eventLog {
	return &eventLog{changed: make(chan struct{})}
}

// append records one event and wakes the subscribers.
func (l *eventLog) append(ev core.Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	close(l.changed)
	l.changed = make(chan struct{})
	l.mu.Unlock()
}

// close seals the log with the terminal outcome (exactly one of res, err).
func (l *eventLog) close(res *core.Result, err error) {
	l.mu.Lock()
	l.closed = true
	l.res, l.err = res, err
	close(l.changed)
	l.mu.Unlock()
}

// since returns the events from index i on, whether the log is sealed, and
// a channel that closes on the next change (valid only while !sealed).
func (l *eventLog) since(i int) (evs []core.Event, sealed bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events[i:], l.closed, l.changed
}

// outcome returns the terminal result; valid once sealed.
func (l *eventLog) outcome() (*core.Result, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.res, l.err
}

// closedLog wraps an already-recorded event sequence (a result-cache hit)
// as a sealed log for replay.
func closedLog(events []core.Event, res *core.Result) *eventLog {
	l := newEventLog()
	l.events = events
	l.closed = true
	l.res = res
	return l
}

// flight is one in-flight pipeline execution shared by every concurrent
// identical request (singleflight). The first request becomes the leader
// and owns the execution goroutine; later identical requests join as
// followers and replay the leader's event log. The flight's context stays
// alive while any participant remains; when the last one leaves, the
// pipeline is cancelled (anytime semantics, as for a single dropped
// client) and the partial result is not cached.
type flight struct {
	log *eventLog
	ctx context.Context

	// admitted closes when the leader has compiled the plan and acquired a
	// worker slot — the point past which bad-request and overload errors
	// can no longer occur, so Stream waits on it to surface those
	// synchronously (an HTTP handler needs them before the 200 header).
	admitted chan struct{}
	// sealed closes when the log is sealed with the terminal outcome.
	sealed chan struct{}
	// gen is the engine generation the flight executes on; requests from a
	// later generation must not join it (Rebuild invalidation).
	gen uint64

	mu     sync.Mutex
	refs   int
	cancel context.CancelFunc
}

func newFlight(gen uint64) *flight {
	ctx, cancel := context.WithCancel(context.Background())
	return &flight{
		log:      newEventLog(),
		ctx:      ctx,
		admitted: make(chan struct{}),
		sealed:   make(chan struct{}),
		gen:      gen,
		refs:     1,
		cancel:   cancel,
	}
}

// finish seals the log with the terminal outcome and signals the waiters.
func (f *flight) finish(res *core.Result, err error) {
	f.log.close(res, err)
	close(f.sealed)
}

// join registers one more participant. It fails once the last participant
// has left (the flight is cancelled at that point and its result may be
// partial); the caller must then start a fresh flight.
func (f *flight) join() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refs == 0 {
		return false
	}
	f.refs++
	return true
}

// leave deregisters a participant; the last one out cancels the pipeline.
// The cancel happens under the mutex so join can never observe refs == 0
// with the context still live.
func (f *flight) leave() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refs--
	if f.refs == 0 {
		f.cancel()
	}
}

// done returns the channel that closes when the flight's log seals.
func (f *flight) done() <-chan struct{} { return f.sealed }
