// Package shardwire defines the internal wire protocol between the
// scatter-gather coordinator (core.DistEngine) and shard servers
// (shard.Server, semkgd -serve-shard). See DESIGN.md, "Distributed
// sharding".
//
// Two routes:
//
//	GET  /v1/shard/meta    partition identity: which shard indexes this
//	                       server holds, their shape, and sampled
//	                       (global id, name) pairs so a coordinator can
//	                       reject stale shard snapshots
//	POST /v1/shard/search  one (shard, sub-query) search; the response is
//	                       an NDJSON stream of matches in non-increasing
//	                       pss order, ending in a terminal line
//
// The protocol preserves the sharded engine's global-resolution
// invariant: requests carry *base-graph* node ids and per-segment
// predicate-name→weight rows that were resolved once, globally, by the
// coordinator. The server only projects them into its shard-local id
// space — it never re-resolves semantics against its truncated
// vocabulary. Response matches are remapped back to base-graph ids
// before they leave the server, so every byte the coordinator merges is
// already in the one shared id space the k-way merger requires.
//
// Exact-mode responses are deterministic for a given (shard snapshot,
// request): two replicas loaded from the same shard file stream
// byte-identical match sequences. The Offset field exploits that for
// mid-stream failover — a coordinator that lost a replica after
// consuming N matches resumes on another replica with Offset=N and the
// spliced stream is exactly the lost one's continuation.
package shardwire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Route paths served by a shard server.
const (
	PathMeta   = "/v1/shard/meta"
	PathSearch = "/v1/shard/search"
)

// Blueprint is one sub-query's searcher blueprint in global (base-graph)
// terms: φ anchor and end sets as base node ids, and one predicate-name →
// weight row per path segment. The coordinator compiles it once against
// the base graph; every shard server projects the same blueprint.
type Blueprint struct {
	// Anchors are φ(v1): the base ids of the sub-query's anchor entities.
	Anchors []uint32 `json:"anchors"`
	// EndSets[i] is φ of the (i+1)-th query node on the path: the base ids
	// a segment may end on. Sorted ascending for a canonical encoding.
	EndSets [][]uint32 `json:"end_sets"`
	// Rows[i] maps predicate name → edge weight for segment i, covering
	// every predicate of the coordinator's base graph. Name-keyed so the
	// server can project by its own predicate ids without any agreed
	// numbering; a shard predicate missing from the row is version skew
	// and rejects the request.
	Rows []map[string]float64 `json:"rows"`
}

// SearchRequest is the body of POST /v1/shard/search: one (shard,
// sub-query) search.
type SearchRequest struct {
	// Shard selects which of the server's shards runs the search.
	Shard int `json:"shard"`
	// Sub is the sub-query index, echoed for logging/attribution only.
	Sub int `json:"sub"`

	Blueprint

	// Tau, MaxHops, NoHeuristic and PruneVisited are the compile-relevant
	// search options, already validated and defaulted by the coordinator.
	Tau          float64 `json:"tau"`
	MaxHops      int     `json:"max_hops"`
	NoHeuristic  bool    `json:"no_heuristic,omitempty"`
	PruneVisited bool    `json:"prune_visited,omitempty"`

	// Offset skips the first Offset matches of the (deterministic) sorted
	// stream: the mid-stream failover resume point. Exact mode only.
	Offset int `json:"offset,omitempty"`

	// Eager switches to the time-bounded collection mode (Algorithm 2):
	// the server runs the search eagerly under a local tbq estimator and
	// returns its best-per-end-node set, sorted, in one burst.
	Eager bool `json:"eager,omitempty"`
	// TimeBoundNs and AlertRatio parameterize the eager estimator;
	// PerMatchNs is the coordinator's calibrated per-match TA cost t,
	// pre-scaled by the shard count (each server sees only its own
	// collection count, so scaling t by N keeps the distributed alert at
	// least as conservative as the single-process shared estimator).
	TimeBoundNs int64   `json:"time_bound_ns,omitempty"`
	AlertRatio  float64 `json:"alert_ratio,omitempty"`
	PerMatchNs  int64   `json:"per_match_ns,omitempty"`
}

// Validate rejects structurally bad requests before any search work.
func (r *SearchRequest) Validate() error {
	switch {
	case r.Shard < 0:
		return fmt.Errorf("shardwire: shard = %d out of range", r.Shard)
	case r.Tau <= 0 || r.Tau > 1:
		return fmt.Errorf("shardwire: tau = %v out of range (0,1]", r.Tau)
	case r.MaxHops < 1:
		return fmt.Errorf("shardwire: max_hops = %d out of range (must be >= 1)", r.MaxHops)
	case r.Offset < 0:
		return fmt.Errorf("shardwire: offset = %d out of range", r.Offset)
	case len(r.Rows) != len(r.EndSets):
		return fmt.Errorf("shardwire: %d weight rows for %d segments", len(r.Rows), len(r.EndSets))
	case r.Eager && r.TimeBoundNs <= 0:
		return fmt.Errorf("shardwire: eager mode requires time_bound_ns > 0")
	}
	return nil
}

// SearchStats mirrors astar.Stats on the wire: the shard's A* effort,
// carried on the terminal line for the coordinator's ShardEffort report.
type SearchStats struct {
	Popped  int `json:"popped"`
	Pushed  int `json:"pushed"`
	Pruned  int `json:"pruned"`
	Emitted int `json:"emitted"`
}

// Line is one NDJSON line of a search response. Match lines carry Nodes
// (always at least two — every match is a path of at least one edge), and
// terminal lines carry Done or Error; Terminal distinguishes them.
type Line struct {
	// Nodes, Edges, SegEnds and PSS are one match, in base-graph ids
	// (astar.Match remapped through the shard's global mappings).
	Nodes   []uint32 `json:"nodes,omitempty"`
	Edges   []uint32 `json:"edges,omitempty"`
	SegEnds []int    `json:"seg_ends,omitempty"`
	PSS     float64  `json:"pss,omitempty"`

	// Done marks the clean end of the stream. Exhausted reports whether
	// the search ran dry (always true in exact mode; in eager mode, false
	// means the estimator stopped collection early — the TBQ approximate
	// flag). Stats is the shard's A* effort.
	Done      bool         `json:"done,omitempty"`
	Exhausted bool         `json:"exhausted,omitempty"`
	Stats     *SearchStats `json:"stats,omitempty"`

	// Error is a terminal server-side failure after the 200 header was
	// already committed (pre-header failures use plain HTTP status codes).
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the line ends the stream.
func (l *Line) Terminal() bool { return l.Done || l.Error != "" }

// Sample is one (base id, name) probe of a shard's node mapping.
type Sample struct {
	ID   uint32 `json:"id"`
	Name string `json:"name"`
}

// ShardInfo describes one shard a server holds.
type ShardInfo struct {
	// Index and Shards identify the shard within its partition; Halo is
	// the replication radius it was built with (bounds servable MaxHops).
	Index  int `json:"index"`
	Shards int `json:"shards"`
	Halo   int `json:"halo"`
	// Nodes, Edges and Owned describe the shard graph.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	Owned int `json:"owned"`
	// MaxGlobalNode is the largest base id the shard maps; a coordinator
	// whose base graph is smaller is serving a different (or newer) world.
	MaxGlobalNode uint32 `json:"max_global_node"`
	// Samples are evenly spaced probes of the node mapping: the
	// coordinator cross-checks names against its base graph to reject
	// stale shard snapshots without shipping the whole mapping.
	Samples []Sample `json:"samples"`
}

// Meta is the GET /v1/shard/meta response.
type Meta struct {
	Shards []ShardInfo `json:"shards"`
}

// DecodeSearchRequest parses and validates a request body. Unknown
// fields are rejected: the protocol is internal and version skew should
// fail loudly, not truncate semantics silently.
func DecodeSearchRequest(r io.Reader) (*SearchRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req SearchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("shardwire: parsing search request: %w", err)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeLine renders one response line (without the trailing newline).
func EncodeLine(l Line) ([]byte, error) { return json.Marshal(l) }

// LineReader reads NDJSON response lines.
type LineReader struct {
	sc *bufio.Scanner
}

// maxLineBytes bounds one response line. Matches are short (MaxHops
// segments), but terminal error strings and future growth get headroom.
const maxLineBytes = 4 << 20

// NewLineReader wraps a response body.
func NewLineReader(r io.Reader) *LineReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 16*1024), maxLineBytes)
	return &LineReader{sc: sc}
}

// Next returns the next line. io.EOF after the last line; a stream that
// ends without a terminal line is the caller's signal of truncation.
func (lr *LineReader) Next() (Line, error) {
	for lr.sc.Scan() {
		b := lr.sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var l Line
		if err := json.Unmarshal(b, &l); err != nil {
			return Line{}, fmt.Errorf("shardwire: parsing response line: %w", err)
		}
		return l, nil
	}
	if err := lr.sc.Err(); err != nil {
		return Line{}, err
	}
	return Line{}, io.EOF
}
