// Serve experiment: throughput and latency of the engine-level serving
// layer (internal/serve) under multi-query workloads — the production
// metric the single-query experiments of Section VII do not cover. Three
// workloads: a repeated hot query (result-cache effect on p50), a
// zipf-skewed mixed workload with concurrent clients (cache hit rate and
// QPS under realistic popularity), and a burst of concurrent identical
// cold requests (singleflight collapse). Run via `go run ./cmd/kgbench
// -exp serve` (writes BENCH_serve.json).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"semkg/internal/core"
	"semkg/internal/query"
	"semkg/internal/serve"
)

// ServeRow is one measured workload.
type ServeRow struct {
	Workload string `json:"workload"`
	Requests int    `json:"requests"`
	Clients  int    `json:"clients"`
	// Latency percentiles in microseconds.
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	// BaselineP50Us is the p50 of the same workload against the bare
	// engine (no serving layer); Speedup = baseline / serving p50.
	BaselineP50Us float64 `json:"baseline_p50_us,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
	QPS           float64 `json:"qps"`
	// Serving-layer counters observed after the workload.
	ResultHits   uint64 `json:"result_hits"`
	PlanHits     uint64 `json:"plan_hits"`
	PipelineRuns uint64 `json:"pipeline_runs"`
	FlightShared uint64 `json:"flight_shared"`
}

// ServeResult is the experiment artifact (BENCH_serve.json).
type ServeResult struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	EnvInfo
	Rows []ServeRow `json:"workloads"`
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Microsecond)
}

func sortedLatencies(lat []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), lat...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// serveQueries gathers the generated workload queries by popularity rank:
// simple first (the hot head of the zipf distribution), then medium and
// complex shapes in the tail.
func serveQueries(env *Env) []*query.Graph {
	var out []*query.Graph
	for _, gq := range env.Dataset.Simple {
		out = append(out, gq.Graph)
	}
	for _, gq := range env.Dataset.Medium {
		out = append(out, gq.Graph)
	}
	for _, gq := range env.Dataset.Complex {
		out = append(out, gq.Graph)
	}
	return out
}

// RunServe measures the serving layer on this environment.
func RunServe(env *Env) (*ServeResult, error) {
	qs := serveQueries(env)
	if len(qs) == 0 {
		return nil, fmt.Errorf("bench: environment has no workload queries")
	}
	opts := env.SearchOptions(10)
	ctx := context.Background()
	res := &ServeResult{
		Dataset: env.Cfg.Profile.Name,
		Scale:   fmt.Sprintf("%d nodes / %d edges", env.Dataset.Graph.NumNodes(), env.Dataset.Graph.NumEdges()),
		EnvInfo: CaptureEnv(),
	}

	repeated, err := runRepeated(ctx, env, qs[0], opts)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, repeated)

	zipf, err := runZipf(ctx, env, qs, opts)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, zipf)

	burst, err := runBurst(ctx, env, qs[0], opts)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, burst)
	return res, nil
}

// runRepeated measures the hot-query p50: the bare engine re-runs the
// pipeline every time, the serving layer answers from the warm result
// cache.
func runRepeated(ctx context.Context, env *Env, q *query.Graph, opts core.Options) (ServeRow, error) {
	const n = 200
	baseline := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := env.Engine.Search(ctx, q, opts); err != nil {
			return ServeRow{}, err
		}
		baseline = append(baseline, time.Since(start))
	}

	srv := serve.New(env.Engine, serve.Config{})
	if _, err := srv.Search(ctx, q, opts); err != nil { // prime the cache
		return ServeRow{}, err
	}
	warm := make([]time.Duration, 0, n)
	wallStart := time.Now()
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := srv.Search(ctx, q, opts); err != nil {
			return ServeRow{}, err
		}
		warm = append(warm, time.Since(start))
	}
	wall := time.Since(wallStart)

	sb, sw := sortedLatencies(baseline), sortedLatencies(warm)
	st := srv.Stats()
	row := ServeRow{
		Workload:      "repeated-query",
		Requests:      n,
		Clients:       1,
		P50Us:         percentile(sw, 0.5),
		P95Us:         percentile(sw, 0.95),
		BaselineP50Us: percentile(sb, 0.5),
		QPS:           float64(n) / wall.Seconds(),
		ResultHits:    st.ResultHits,
		PlanHits:      st.PlanHits,
		PipelineRuns:  st.PipelineRuns,
		FlightShared:  st.FlightShared,
	}
	if row.P50Us > 0 {
		row.Speedup = row.BaselineP50Us / row.P50Us
	}
	return row, nil
}

// runZipf replays a zipf-skewed mixed workload from concurrent clients:
// the head queries hit the result cache, the tail exercises the plan cache
// and the full pipeline under the worker pool.
func runZipf(ctx context.Context, env *Env, qs []*query.Graph, opts core.Options) (ServeRow, error) {
	const (
		clients    = 8
		perClient  = 100
		zipfS      = 1.2
		zipfV      = 1.0
		workerSeed = 7
	)
	// Queue sized for the client count: this workload measures cache and
	// dedup behaviour under load, not shedding (the admission tests cover
	// that), so no request should be rejected.
	srv := serve.New(env.Engine, serve.Config{Queue: 2 * clients})
	latencies := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	wallStart := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed + int64(c)))
			zipf := rand.NewZipf(rng, zipfS, zipfV, uint64(len(qs)-1))
			for i := 0; i < perClient; i++ {
				q := qs[zipf.Uint64()]
				start := time.Now()
				if _, err := srv.Search(ctx, q, opts); err != nil {
					errs[c] = err
					return
				}
				latencies[c] = append(latencies[c], time.Since(start))
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	var all []time.Duration
	for c := range latencies {
		if errs[c] != nil {
			return ServeRow{}, errs[c]
		}
		all = append(all, latencies[c]...)
	}
	sorted := sortedLatencies(all)
	st := srv.Stats()
	return ServeRow{
		Workload:     "zipf-mixed",
		Requests:     len(all),
		Clients:      clients,
		P50Us:        percentile(sorted, 0.5),
		P95Us:        percentile(sorted, 0.95),
		QPS:          float64(len(all)) / wall.Seconds(),
		ResultHits:   st.ResultHits,
		PlanHits:     st.PlanHits,
		PipelineRuns: st.PipelineRuns,
		FlightShared: st.FlightShared,
	}, nil
}

// runBurst fires concurrent identical cold requests: singleflight should
// collapse them to (near) one pipeline execution.
func runBurst(ctx context.Context, env *Env, q *query.Graph, opts core.Options) (ServeRow, error) {
	const clients = 32
	srv := serve.New(env.Engine, serve.Config{Queue: 2 * clients})
	latencies := make([]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	wallStart := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start := time.Now()
			_, errs[c] = srv.Search(ctx, q, opts)
			latencies[c] = time.Since(start)
		}(c)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	for _, err := range errs {
		if err != nil {
			return ServeRow{}, err
		}
	}
	sorted := sortedLatencies(latencies)
	st := srv.Stats()
	return ServeRow{
		Workload:     "burst-identical",
		Requests:     clients,
		Clients:      clients,
		P50Us:        percentile(sorted, 0.5),
		P95Us:        percentile(sorted, 0.95),
		QPS:          float64(clients) / wall.Seconds(),
		ResultHits:   st.ResultHits,
		PlanHits:     st.PlanHits,
		PipelineRuns: st.PipelineRuns,
		FlightShared: st.FlightShared,
	}, nil
}

// WriteJSON stores the artifact.
func (r *ServeResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the comparison as a text table.
func (r *ServeResult) Render() *Table {
	t := &Table{
		Title: fmt.Sprintf("Serving layer (%s, %s, %s/%s)", r.Dataset, r.Scale, r.GOOS, r.GOARCH),
		Header: []string{"workload", "reqs", "clients", "p50 µs", "p95 µs",
			"baseline p50", "speedup", "QPS", "hits", "runs", "shared"},
	}
	for _, row := range r.Rows {
		baseline, speedup := "-", "-"
		if row.BaselineP50Us > 0 {
			baseline = fmt.Sprintf("%.0f", row.BaselineP50Us)
			speedup = fmt.Sprintf("%.1fx", row.Speedup)
		}
		t.AddRow(row.Workload,
			fmt.Sprintf("%d", row.Requests),
			fmt.Sprintf("%d", row.Clients),
			fmt.Sprintf("%.0f", row.P50Us),
			fmt.Sprintf("%.0f", row.P95Us),
			baseline, speedup,
			fmt.Sprintf("%.0f", row.QPS),
			fmt.Sprintf("%d", row.ResultHits),
			fmt.Sprintf("%d", row.PipelineRuns),
			fmt.Sprintf("%d", row.FlightShared),
		)
	}
	return t
}
