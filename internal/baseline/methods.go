package baseline

import (
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/strutil"
	"semkg/internal/transform"
)

// --- shared node-candidate policies ----------------------------------------

// exactCands matches names and types exactly (no node similarity).
func exactCands(g *kg.Graph) func(query.Node) []scored {
	return func(n query.Node) []scored {
		if n.Specific() {
			u := g.NodeByName(n.Name)
			if u == kg.NoNode {
				return nil
			}
			if n.Type != "" && g.NodeType(u) != g.TypeByName(n.Type) {
				return nil
			}
			return []scored{{u, 1}}
		}
		t := g.TypeByName(n.Type)
		var out []scored
		for _, u := range g.NodesOfType(t) {
			out = append(out, scored{u, 1})
		}
		return out
	}
}

// libraryCands matches through the synonym/abbreviation library
// (transformation-based node similarity, as in SLQ/QGA).
func libraryCands(m *transform.Matcher) func(query.Node) []scored {
	return func(n query.Node) []scored {
		var out []scored
		for _, u := range m.MatchNode(n.Name, n.Type) {
			out = append(out, scored{u, 1})
		}
		return out
	}
}

// editDistCands matches by normalized string similarity of names and types
// (p-hom's syntactic node similarity). No dictionary: "Car" does not reach
// "Automobile", but near-identical strings do.
func editDistCands(g *kg.Graph, threshold float64) func(query.Node) []scored {
	return func(n query.Node) []scored {
		var out []scored
		if n.Specific() {
			for i := 0; i < g.NumNodes(); i++ {
				u := kg.NodeID(i)
				if s := strutil.Similarity(n.Name, g.NodeName(u)); s >= threshold {
					out = append(out, scored{u, s})
				}
			}
			return out
		}
		for t := 0; t < g.NumTypes(); t++ {
			s := strutil.Similarity(n.Type, g.TypeName(kg.TypeID(t)))
			if s < threshold {
				continue
			}
			for _, u := range g.NodesOfType(kg.TypeID(t)) {
				out = append(out, scored{u, s})
			}
		}
		return out
	}
}

// --- shared edge policies ---------------------------------------------------

// oneHopEdges maps a query edge to single edges only. When predAware is
// true the predicate must match exactly; direction is honored.
func oneHopEdges(g *kg.Graph, predAware bool) func(query.Edge, kg.NodeID, bool) []edgeMatch {
	return func(e query.Edge, src kg.NodeID, fromSide bool) []edgeMatch {
		pred := g.PredByName(e.Predicate)
		if predAware && pred < 0 {
			return nil
		}
		var out []edgeMatch
		for _, h := range g.Neighbors(src) {
			if predAware {
				if h.Pred != pred {
					continue
				}
				// Honor the declared direction: fromSide means src binds
				// e.From, so the graph edge must leave src.
				if h.Out != fromSide {
					continue
				}
			}
			out = append(out, edgeMatch{dst: h.Neighbor, hops: 1, score: 1})
		}
		return out
	}
}

// pathEdges maps a query edge to any path of up to maxHops edges,
// ignoring predicates; score discounts longer paths by alpha^(hops-1).
func pathEdges(g *kg.Graph, maxHops int, alpha float64) func(query.Edge, kg.NodeID, bool) []edgeMatch {
	return func(_ query.Edge, src kg.NodeID, _ bool) []edgeMatch {
		dist := bfsPaths(g, src, maxHops)
		out := make([]edgeMatch, 0, len(dist))
		for dst, hops := range dist {
			s := 1.0
			for i := 1; i < hops; i++ {
				s *= alpha
			}
			out = append(out, edgeMatch{dst: dst, hops: hops, score: s})
		}
		return out
	}
}

// --- gStore ------------------------------------------------------------------

// GStore reproduces the gStore baseline [15]: subgraph isomorphism with
// exact node labels and exact 1-hop predicates (Table II row 1). It finds
// only answers whose schema coincides syntactically with the query graph.
type GStore struct{ g *kg.Graph }

// NewGStore returns the gStore baseline over g.
func NewGStore(g *kg.Graph) *GStore { return &GStore{g} }

// Name implements Method.
func (s *GStore) Name() string { return "gStore" }

// Search implements Method.
func (s *GStore) Search(q *query.Graph, focus string, k int) []Ranked {
	return evaluate(s.g, q, focus, k, policy{
		nodeCands: exactCands(s.g),
		expand:    oneHopEdges(s.g, true),
	})
}

// --- SLQ ----------------------------------------------------------------------

// SLQ reproduces the SLQ baseline [9]: node matching through a
// transformation library (synonyms, abbreviations), edges matched by any
// single edge regardless of predicate (Table II row 2: node similarity
// yes, edge-to-path no, predicates no).
type SLQ struct {
	g *kg.Graph
	m *transform.Matcher
}

// NewSLQ returns the SLQ baseline using the transformation library.
func NewSLQ(g *kg.Graph, lib *transform.Library) *SLQ {
	return &SLQ{g, transform.NewMatcher(g, lib)}
}

// Name implements Method.
func (s *SLQ) Name() string { return "SLQ" }

// Search implements Method.
func (s *SLQ) Search(q *query.Graph, focus string, k int) []Ranked {
	return evaluate(s.g, q, focus, k, policy{
		nodeCands: libraryCands(s.m),
		expand:    oneHopEdges(s.g, false),
	})
}

// --- NeMa ----------------------------------------------------------------------

// NeMa reproduces the NeMa baseline [7]: neighborhood-based structural
// similarity with label-similar node matching and edge-to-path mapping up
// to 2 hops, ignoring predicates (Table II row 3). Longer paths are
// discounted by alpha^(hops-1) as in NeMa's neighborhood cost.
type NeMa struct {
	g     *kg.Graph
	alpha float64
	hops  int
}

// NewNeMa returns the NeMa baseline (alpha = 0.5, 2-hop neighborhoods, as
// in the original paper).
func NewNeMa(g *kg.Graph) *NeMa { return &NeMa{g: g, alpha: 0.5, hops: 2} }

// Name implements Method.
func (n *NeMa) Name() string { return "NeMa" }

// Search implements Method.
func (n *NeMa) Search(q *query.Graph, focus string, k int) []Ranked {
	return evaluate(n.g, q, focus, k, policy{
		nodeCands: editDistCands(n.g, 0.6),
		expand:    pathEdges(n.g, n.hops, n.alpha),
	})
}

// --- p-hom -----------------------------------------------------------------------

// PHom reproduces the p-homomorphism baseline [20]: node matching by string
// edit distance only (stricter than NeMa's), edge-to-path mapping up to 4
// hops with no predicate constraints (Table II row 5). The permissive path
// mapping combined with syntax-only node matching yields its characteristic
// low precision and recall.
type PHom struct {
	g    *kg.Graph
	hops int
}

// NewPHom returns the p-hom baseline.
func NewPHom(g *kg.Graph) *PHom { return &PHom{g: g, hops: 4} }

// Name implements Method.
func (p *PHom) Name() string { return "p-hom" }

// Search implements Method. p-hom treats every qualifying path as an
// equally good edge match (alpha = 1: no length discount), which is what
// makes it rank answers almost arbitrarily among the reachable pool — its
// characteristic weakness versus GraB's bounded distance scores.
func (p *PHom) Search(q *query.Graph, focus string, k int) []Ranked {
	return evaluate(p.g, q, focus, k, policy{
		nodeCands: editDistCands(p.g, 0.8),
		expand:    pathEdges(p.g, p.hops, 1.0),
	})
}

// --- GraB -------------------------------------------------------------------------

// GraB reproduces the GraB baseline [11]: exact node matching, edge-to-path
// mapping with bounded matching scores and no predicate awareness
// (Table II row 6). Scores sum 1/hops per edge, the distance-based matching
// score GraB bounds during its search.
type GraB struct {
	g    *kg.Graph
	hops int
}

// NewGraB returns the GraB baseline.
func NewGraB(g *kg.Graph) *GraB { return &GraB{g: g, hops: 4} }

// Name implements Method.
func (b *GraB) Name() string { return "GraB" }

// Search implements Method.
func (b *GraB) Search(q *query.Graph, focus string, k int) []Ranked {
	g := b.g
	return evaluate(g, q, focus, k, policy{
		nodeCands: exactCands(g),
		expand: func(e query.Edge, src kg.NodeID, fromSide bool) []edgeMatch {
			dist := bfsPaths(g, src, b.hops)
			out := make([]edgeMatch, 0, len(dist))
			for dst, hops := range dist {
				out = append(out, edgeMatch{dst: dst, hops: hops, score: 1 / float64(hops)})
			}
			return out
		},
	})
}

// --- QGA --------------------------------------------------------------------------

// QGA reproduces the query-graph-assembly baseline [13]: keywords are
// assembled into a query graph which is answered as an exact conjunctive
// (SPARQL) query — node mismatches are absorbed by the library during
// assembly, but edges stay exact 1-hop predicates (Table II row 7).
type QGA struct {
	g *kg.Graph
	m *transform.Matcher
}

// NewQGA returns the QGA baseline.
func NewQGA(g *kg.Graph, lib *transform.Library) *QGA {
	return &QGA{g, transform.NewMatcher(g, lib)}
}

// Name implements Method.
func (s *QGA) Name() string { return "QGA" }

// Search implements Method.
func (s *QGA) Search(q *query.Graph, focus string, k int) []Ranked {
	return evaluate(s.g, q, focus, k, policy{
		nodeCands: libraryCands(s.m),
		expand:    oneHopEdges(s.g, true),
	})
}
