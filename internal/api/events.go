package api

import (
	"encoding/json"
	"fmt"

	"semkg/internal/core"
)

// Wire event discriminators (the "event" field of an NDJSON line).
const (
	EventProgress = "progress"
	EventTopK     = "topk"
	EventPhase    = "phase"
	EventResult   = "result"
	EventError    = "error"
)

// Event is the wire form of one stream event: a single struct with an
// "event" discriminator, so every NDJSON line is self-describing. Only the
// fields of the discriminated kind are populated:
//
//   - progress: sub, collected, done, shard
//   - phase:    phase, plus elapsed/projected (alert) or sizes (assemble)
//   - topk:     round, lower_k, upper_max, answers
//   - result:   result
type Event struct {
	// Event is the kind discriminator: "progress", "phase", "topk" or
	// "result". Always present.
	Event string `json:"event"`

	// Sub is the 0-based sub-query index a progress update belongs to. A
	// pointer so that sub-query 0 still serializes (omitempty would drop
	// it).
	Sub *int `json:"sub,omitempty"`
	// Collected counts the sub-query's matches gathered so far (prefetched
	// in the exact mode, eager-collected distinct entities in TBQ mode).
	Collected int `json:"collected,omitempty"`
	// Done marks the final progress update of a sub-query's search phase.
	Done bool `json:"done,omitempty"`
	// Shard attributes a progress update to the shard that produced it,
	// 1-based, when the serving engine is sharded (semkgd -shards). 0 (and
	// therefore absent) on the single-engine pipeline.
	Shard int `json:"shard,omitempty"`

	// Phase names the pipeline stage being entered: "search", "alert"
	// (TBQ only) or "assemble".
	Phase string `json:"phase,omitempty"`
	// Elapsed accompanies the "alert" phase: the search time consumed
	// when the estimator tripped, as a Go duration string.
	Elapsed Duration `json:"elapsed,omitempty"`
	// Projected is the Algorithm 3 estimate T̂ that tripped the alert
	// threshold, as a Go duration string.
	Projected Duration `json:"projected,omitempty"`
	// Sizes accompanies the "assemble" phase: the per-sub-query collected
	// set sizes |M̂_i| entering the TA assembly.
	Sizes []int `json:"sizes,omitempty"`

	// Round is the TA assembly round that produced a topk snapshot;
	// non-decreasing within one stream.
	Round int `json:"round,omitempty"`
	// LowerK is L_k — the exact score of the k-th complete candidate, 0
	// until k complete candidates exist.
	LowerK float64 `json:"lower_k,omitempty"`
	// UpperMax is U_max — the best upper bound of any candidate outside
	// the current top-k. The assembly terminates when LowerK >= UpperMax
	// (Theorem 3), so their gap measures how far the provisional ranking
	// may still move.
	UpperMax float64 `json:"upper_max,omitempty"`
	// Answers is the provisional top-k snapshot, in rank order, at most k.
	Answers []Answer `json:"answers,omitempty"`

	// Result is the terminal payload; exactly one "result" event ends
	// every stream.
	Result *Result `json:"result,omitempty"`

	// Error is the terminal failure message of a stream that could not
	// complete (a distributed pipeline losing a whole shard, for
	// example). A stream ends in exactly one "result" or "error" event.
	Error string `json:"error,omitempty"`
}

// EventFrom converts a core stream event into its wire form.
func EventFrom(ev core.Event) (Event, error) {
	switch e := ev.(type) {
	case core.ProgressEvent:
		sub := e.Sub
		return Event{Event: EventProgress, Sub: &sub, Collected: e.Collected, Done: e.Done, Shard: e.Shard}, nil
	case core.PhaseEvent:
		return Event{
			Event:     EventPhase,
			Phase:     string(e.Phase),
			Elapsed:   Duration(e.Elapsed),
			Projected: Duration(e.Projected),
			Sizes:     e.Collected,
		}, nil
	case core.TopKEvent:
		return Event{
			Event:    EventTopK,
			Round:    e.Round,
			LowerK:   e.LowerK,
			UpperMax: e.UpperMax,
			Answers:  AnswersFrom(e.Answers),
		}, nil
	case core.ResultEvent:
		r := ResultFrom(e.Result)
		return Event{Event: EventResult, Result: &r}, nil
	case core.ErrorEvent:
		return Event{Event: EventError, Error: e.Err.Error()}, nil
	default:
		return Event{}, fmt.Errorf("api: unknown event type %T", ev)
	}
}

// EncodeEvent renders one stream event as a single NDJSON line (without
// the trailing newline).
func EncodeEvent(ev core.Event) ([]byte, error) {
	w, err := EventFrom(ev)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// DecodeEvent parses one NDJSON event line.
func DecodeEvent(line []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, fmt.Errorf("api: parsing event: %w", err)
	}
	if ev.Event == "" {
		return Event{}, fmt.Errorf("api: event line missing %q discriminator", "event")
	}
	return ev, nil
}
