// Command kgembed trains a knowledge-graph embedding (TransE, or TransH
// with -model transh) on a graph — a TSV triple file or a binary
// snapshot, auto-detected — and writes the binary model: the offline
// phase of the paper's pipeline (Fig. 5).
//
// Usage:
//
//	kgembed -in graph.tsv -out model.bin -dim 48 -epochs 120
//	kgembed -in big.snap -out model.bin -dim 32 -epochs 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"semkg/internal/embed"
	"semkg/internal/kg"
)

func main() {
	in := flag.String("in", "", "input graph: TSV triples or binary snapshot (required)")
	out := flag.String("out", "model.bin", "output model file")
	dim := flag.Int("dim", 48, "embedding dimension")
	epochs := flag.Int("epochs", 120, "training epochs")
	seed := flag.Int64("seed", 1, "random seed")
	modelKind := flag.String("model", "transe", "embedding model: transe | transh")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "kgembed: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	g, err := kg.ReadGraph(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "kgembed: loaded %s\n", g.Stats())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := embed.Config{Dim: *dim, Epochs: *epochs, Seed: *seed}
	start := time.Now()
	var model *embed.Model
	switch *modelKind {
	case "transe":
		model, err = embed.TrainTransE(ctx, g, cfg)
	case "transh":
		model, err = embed.TrainTransH(ctx, g, cfg)
	default:
		fmt.Fprintf(os.Stderr, "kgembed: unknown model %q\n", *modelKind)
		os.Exit(2)
	}
	if err != nil && model == nil {
		fail(err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kgembed: training interrupted (%v), writing partial model\n", err)
	}
	fmt.Fprintf(os.Stderr, "kgembed: trained in %s (final loss %.4f)\n",
		time.Since(start).Round(time.Millisecond), lastLoss(model))

	of, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer of.Close()
	if err := embed.WriteModel(of, model); err != nil {
		fail(err)
	}
}

func lastLoss(m *embed.Model) float64 {
	if len(m.EpochLoss) == 0 {
		return 0
	}
	return m.EpochLoss[len(m.EpochLoss)-1]
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "kgembed: %v\n", err)
	os.Exit(1)
}
