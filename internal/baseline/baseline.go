// Package baseline implements the seven comparison methods of the paper's
// evaluation (Tables I/II, Figures 12-14): gStore, SLQ, NeMa, S4, p-hom,
// GraB and QGA.
//
// Each method is reproduced at the level of its algorithmic idea and its
// feature matrix from Table II — node similarity (none / library / string
// similarity), edge-to-path mapping (1-hop only vs n-hop paths), and
// predicate awareness (exact, ignored, or mined patterns) — which is what
// drives the comparative precision/recall behaviour the paper reports. The
// full systems of the original papers (indexing, distributed execution,
// ...) are out of scope; see DESIGN.md.
//
// All methods answer through a shared backtracking evaluator over
// per-method node-candidate policies and edge policies.
package baseline

import (
	"sort"

	"semkg/internal/kg"
	"semkg/internal/query"
)

// Ranked is one answer entity with its method-specific score.
type Ranked struct {
	Entity string
	Score  float64
}

// Method is a graph-query baseline.
type Method interface {
	Name() string
	// Search returns up to k ranked candidate entities for the focus
	// query node.
	Search(q *query.Graph, focus string, k int) []Ranked
}

// edgeMatch is one way a query edge can be satisfied between two bound
// endpoints: a path of hops >= 1 with an optional score contribution.
type edgeMatch struct {
	dst   kg.NodeID
	hops  int
	score float64
}

// policy parameterizes the shared evaluator.
type policy struct {
	// nodeCands returns candidate graph nodes for a query node, paired
	// with a node-similarity score in (0,1].
	nodeCands func(n query.Node) []scored
	// expand returns, for a query edge and a bound source node, the
	// reachable destination candidates with per-path scores. The source
	// is always the already-bound endpoint; dir reports whether the bound
	// endpoint is the edge's From side.
	expand func(e query.Edge, src kg.NodeID, fromSide bool) []edgeMatch
	// maxResults caps the assignment enumeration to keep worst cases
	// bounded (baselines are approximations; the cap mirrors their
	// top-k orientation).
	maxResults int
}

type scored struct {
	id  kg.NodeID
	sim float64
}

// evaluate runs the shared backtracking join and returns focus entities
// ranked by total score (node similarities × edge scores accumulated
// additively over edges, multiplicatively over nodes).
func evaluate(g *kg.Graph, q *query.Graph, focus string, k int, p policy) []Ranked {
	if err := q.Validate(); err != nil {
		return nil
	}
	// Candidate sets per query node.
	cands := make(map[string][]scored, len(q.Nodes))
	for _, n := range q.Nodes {
		cs := p.nodeCands(n)
		if len(cs) == 0 {
			return nil
		}
		cands[n.ID] = cs
	}
	// Order query nodes: specific nodes first, then by connectivity.
	order := planOrder(q)

	limit := p.maxResults
	if limit <= 0 {
		limit = 50000
	}

	type partial struct {
		bind  map[string]kg.NodeID
		score float64
	}
	best := make(map[kg.NodeID]float64) // focus node -> best score
	// Memoize expansions: the same (edge, bound endpoint) pair is queried
	// once per focus candidate otherwise.
	type expKey struct {
		edge     int
		src      kg.NodeID
		fromSide bool
	}
	expCache := make(map[expKey]map[kg.NodeID]edgeMatch)
	edgeIdx := make(map[query.Edge]int, len(q.Edges))
	for i, e := range q.Edges {
		edgeIdx[e] = i
	}
	expandTo := func(e query.Edge, src kg.NodeID, fromSide bool, dst kg.NodeID) (edgeMatch, bool) {
		key := expKey{edgeIdx[e], src, fromSide}
		m, ok := expCache[key]
		if !ok {
			m = make(map[kg.NodeID]edgeMatch)
			for _, em := range p.expand(e, src, fromSide) {
				if old, dup := m[em.dst]; !dup || em.score > old.score {
					m[em.dst] = em
				}
			}
			expCache[key] = m
		}
		em, ok := m[dst]
		return em, ok
	}
	var assign func(i int, cur partial)
	steps := 0
	assign = func(i int, cur partial) {
		if steps >= limit {
			return
		}
		if i == len(order) {
			steps++
			u := cur.bind[focus]
			if s, ok := best[u]; !ok || cur.score > s {
				best[u] = cur.score
			}
			return
		}
		id := order[i]
		// Edges connecting id to already-bound nodes constrain it.
		type constraint struct {
			e        query.Edge
			src      kg.NodeID
			fromSide bool
		}
		var constraints []constraint
		for _, e := range q.Edges {
			other := ""
			fromSide := false
			if e.From == id {
				other, fromSide = e.To, false
			} else if e.To == id {
				other, fromSide = e.From, true
			} else {
				continue
			}
			if src, ok := cur.bind[other]; ok {
				constraints = append(constraints, constraint{e, src, fromSide})
			}
		}
		for _, c := range cands[id] {
			if steps >= limit {
				return
			}
			edgeScore := 0.0
			ok := true
			for _, con := range constraints {
				em, found := expandTo(con.e, con.src, con.fromSide, c.id)
				if !found {
					ok = false
					break
				}
				edgeScore += em.score
			}
			if !ok {
				continue
			}
			next := partial{bind: cloneBind(cur.bind), score: cur.score*c.sim + edgeScore}
			next.bind[id] = c.id
			assign(i+1, next)
		}
	}
	assign(0, partial{bind: map[string]kg.NodeID{}, score: 1})

	out := make([]Ranked, 0, len(best))
	for u, s := range best {
		out = append(out, Ranked{Entity: g.NodeName(u), Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// planOrder sorts query nodes for the backtracking join: specific nodes
// first (few candidates), then nodes connected to already-ordered ones.
func planOrder(q *query.Graph) []string {
	var order []string
	placed := make(map[string]bool)
	add := func(id string) {
		if !placed[id] {
			placed[id] = true
			order = append(order, id)
		}
	}
	for _, id := range q.Specifics() {
		add(id)
	}
	for len(order) < len(q.Nodes) {
		progress := false
		for _, e := range q.Edges {
			if placed[e.From] && !placed[e.To] {
				add(e.To)
				progress = true
			}
			if placed[e.To] && !placed[e.From] {
				add(e.From)
				progress = true
			}
		}
		if !progress {
			for _, n := range q.Nodes {
				add(n.ID)
			}
		}
	}
	return order
}

func cloneBind(b map[string]kg.NodeID) map[string]kg.NodeID {
	out := make(map[string]kg.NodeID, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// bfsPaths enumerates nodes reachable from src within maxHops edges
// (ignoring direction and predicates) and reports the minimal hop count.
func bfsPaths(g *kg.Graph, src kg.NodeID, maxHops int) map[kg.NodeID]int {
	dist := map[kg.NodeID]int{src: 0}
	frontier := []kg.NodeID{src}
	for hop := 1; hop <= maxHops; hop++ {
		var next []kg.NodeID
		for _, u := range frontier {
			for _, h := range g.Neighbors(u) {
				if _, seen := dist[h.Neighbor]; !seen {
					dist[h.Neighbor] = hop
					next = append(next, h.Neighbor)
				}
			}
		}
		frontier = next
	}
	delete(dist, src)
	return dist
}
