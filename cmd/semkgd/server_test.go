package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

// testServer wraps a fresh serving layer around the test engine. The
// engine builder backs /v1/ingest (rebuilds over committed graphs).
func testServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	if cfg.Build == nil {
		cfg.Build = testEngineBuilder(t)
	}
	srv := httptest.NewServer(newMux(serve.New(testEngine(t), cfg)))
	t.Cleanup(srv.Close)
	return srv
}

// testEngineBuilder rebuilds an engine over a committed graph with the
// test predicate vectors, padding a neutral direction for ingested
// predicates the hand-crafted space lacks.
func testEngineBuilder(t *testing.T) func(*kg.Graph) (core.Queryer, error) {
	t.Helper()
	vecs := testVectors()
	return func(g *kg.Graph) (core.Queryer, error) {
		names := g.Predicates()
		ordered := make([]embed.Vector, len(names))
		for i, n := range names {
			if v, ok := vecs[n]; ok {
				ordered[i] = v
			} else {
				ordered[i] = embed.Vector{0.30, 0.90, 0.30}
			}
		}
		sp, err := embed.NewSpace(names, ordered)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(g, sp, nil)
	}
}

func testVectors() map[string]embed.Vector {
	return map[string]embed.Vector{
		"assembly":        {1.00, 0.05, 0.02},
		"manufacturer":    {0.95, 0.20, 0.05},
		"country":         {0.90, 0.10, 0.30},
		"locationCountry": {0.90, 0.12, 0.28},
	}
}

// testEngine builds a small motivating-example engine with hand-crafted
// predicate vectors (no training): cars related to Germany through three
// schemas, plus French distractors.
func testEngine(t *testing.T) core.Queryer {
	t.Helper()
	b := kg.NewBuilder(32, 64)
	ger := b.AddNode("Germany", "Country")
	france := b.AddNode("France", "Country")
	munich := b.AddNode("Munich", "City")
	co := b.AddNode("BMW_Co", "Company")
	b.AddEdge(munich, ger, "country")
	b.AddEdge(co, ger, "locationCountry")
	for _, name := range []string{"BMW_320", "Audi_TT"} {
		b.AddEdge(b.AddNode(name, "Automobile"), ger, "assembly")
	}
	b.AddEdge(b.AddNode("BMW_Z4", "Automobile"), munich, "assembly")
	b.AddEdge(b.AddNode("BMW_X6", "Automobile"), co, "manufacturer")
	b.AddEdge(b.AddNode("Clio", "Automobile"), france, "assembly")
	g := b.Build()

	eng, err := testEngineBuilder(t)(g)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

const q117Body = `{"query":{
  "nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany","type":"Country"}],
  "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]},
  "options":{"k":10,"tau":0.75,"max_hops":4%s}}`

func post(t *testing.T, srv *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t, serve.Config{})

	resp := post(t, srv, "/v1/search", strings.Replace(q117Body, "%s", "", 1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res api.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, a := range res.Answers {
		got[a.Entity] = true
	}
	for _, want := range []string{"BMW_320", "Audi_TT", "BMW_Z4", "BMW_X6"} {
		if !got[want] {
			t.Errorf("missing answer %s (got %v)", want, res.Answers)
		}
	}
	if got["Clio"] {
		t.Errorf("French car returned: %v", res.Answers)
	}
	if res.Pivot == "" {
		t.Error("result missing pivot")
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t, serve.Config{})

	cases := []struct {
		name, path, body string
	}{
		{"malformed JSON", "/v1/search", `{`},
		{"unknown field", "/v1/search", `{"query":{"nodes":[],"edges":[]},"bogus":1}`},
		{"invalid query: no edges", "/v1/search",
			`{"query":{"nodes":[{"id":"v1","type":"A"}],"edges":[]}}`},
		{"unknown option field", "/v1/search", strings.Replace(q117Body, "%s", `,"tau_bad":0`, 1)},
		{"tau > 1", "/v1/stream",
			`{"query":{"nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany"}],
			  "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]},"options":{"tau":1.5}}`},
		{"negative k", "/v1/stream",
			`{"query":{"nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany"}],
			  "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]},"options":{"k":-3}}`},
		// Decomposition-level caller errors must be 400s, not 500s.
		{"pivot not in query", "/v1/search", strings.Replace(q117Body, "%s", `,"pivot":"nosuch"`, 1)},
		{"pivot is a specific node", "/v1/stream", strings.Replace(q117Body, "%s", `,"pivot":"v2"`, 1)},
	}
	for _, tc := range cases {
		resp := post(t, srv, tc.path, tc.body)
		var msg map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%v)", tc.name, resp.StatusCode, msg)
		}
		if msg["error"] == "" {
			t.Errorf("%s: missing JSON error body", tc.name)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t, serve.Config{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, h)
	}
	if h["nodes"].(float64) <= 0 || h["predicates"].(float64) <= 0 {
		t.Errorf("healthz missing graph shape: %v", h)
	}
}

func TestExpvarExported(t *testing.T) {
	srv := testServer(t, serve.Config{})
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"semkgd_searches_total", "semkgd_streams_total", "semkgd_stream_events_total"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("expvar %q not exported", key)
		}
	}
}

// TestStreamEndpointTimeBounded is the acceptance test: a time-bounded
// query over /v1/stream emits at least one provisional top-k event before
// the terminal result, and the terminal result matches the batch endpoint.
func TestStreamEndpointTimeBounded(t *testing.T) {
	srv := testServer(t, serve.Config{})

	body := strings.Replace(q117Body, "%s", `,"time_bound":"2s"`, 1)
	resp := post(t, srv, "/v1/stream", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	var events []api.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := api.DecodeEvent(line)
		if err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.Event != api.EventResult || last.Result == nil {
		t.Fatalf("last event = %+v, want terminal result", last)
	}
	topkBeforeResult := 0
	for _, ev := range events[:len(events)-1] {
		if ev.Event == api.EventTopK {
			topkBeforeResult++
		}
	}
	if topkBeforeResult < 1 {
		t.Fatalf("no provisional topk event before the terminal result (events: %d)", len(events))
	}

	// Terminal result matches the batch endpoint byte-for-byte on answers.
	batchResp := post(t, srv, "/v1/search", body)
	defer batchResp.Body.Close()
	var batch api.Result
	if err := json.NewDecoder(batchResp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Answers) != len(last.Result.Answers) {
		t.Fatalf("stream answers %d != batch answers %d", len(last.Result.Answers), len(batch.Answers))
	}
	for i := range batch.Answers {
		if batch.Answers[i].Entity != last.Result.Answers[i].Entity ||
			batch.Answers[i].Score != last.Result.Answers[i].Score {
			t.Errorf("answer %d differs: stream %+v vs batch %+v",
				i, last.Result.Answers[i], batch.Answers[i])
		}
	}
	// The last topk snapshot equals the final ranking (ordering guarantee).
	var lastTopK *api.Event
	for i := range events {
		if events[i].Event == api.EventTopK {
			lastTopK = &events[i]
		}
	}
	if lastTopK == nil || len(lastTopK.Answers) != len(last.Result.Answers) {
		t.Fatalf("last topk %+v does not carry the final ranking", lastTopK)
	}
}

// TestCachedSearchBodyIdentical: the second identical request is served
// from the result cache with a byte-identical response body.
func TestCachedSearchBodyIdentical(t *testing.T) {
	srv := testServer(t, serve.Config{})
	body := strings.Replace(q117Body, "%s", "", 1)

	read := func() []byte {
		resp := post(t, srv, "/v1/search", body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cold := read()
	warm := read()
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cached body differs from cold body:\n%s\nvs\n%s", warm, cold)
	}

	// The serve expvar reflects the hit.
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Serve serve.Stats `json:"semkgd_serve"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Serve.ResultHits != 1 || vars.Serve.PipelineRuns != 1 {
		t.Fatalf("serve stats = %+v, want 1 hit / 1 pipeline run", vars.Serve)
	}
}

// TestOverloaded429: with one worker, no queue, and the worker pinned by
// an in-flight request, a second distinct request is shed with 429 and a
// Retry-After header.
func TestOverloaded429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg := serve.Config{Workers: 1, Queue: -1, BeforeRun: func() {
		started <- struct{}{}
		<-release
	}}
	srv := testServer(t, cfg)

	firstDone := make(chan int, 1)
	go func() {
		resp := post(t, srv, "/v1/search", strings.Replace(q117Body, "%s", "", 1))
		defer resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-started // the worker is now pinned

	distinct := strings.Replace(strings.Replace(q117Body, "%s", "", 1), "Germany", "France", 1)
	resp := post(t, srv, "/v1/search", distinct)
	var msg map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&msg)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%v)", resp.StatusCode, msg)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
	if msg["error"] == "" {
		t.Error("missing JSON error body")
	}

	// Streaming requests are shed the same way, before the 200 header.
	streamResp := post(t, srv, "/v1/stream", distinct)
	streamResp.Body.Close()
	if streamResp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("stream status = %d, want 429", streamResp.StatusCode)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("pinned request finished with %d", code)
	}
}
