package bench

import (
	"context"
	"testing"
)

// TestLegacyPipelineMatchesEngine is the end-to-end regression of the
// hot-path refactor on a fixed query set: the replayed seed pipeline
// (scan matching + ScanWeighter + LegacySearcher + TA) must produce the
// identical ranked answers — same pivots, same order, bitwise-equal
// scores and part pss — as Engine.Search on every workload query.
func TestLegacyPipelineMatchesEngine(t *testing.T) {
	env := testEnv(t)
	ctx := context.Background()
	queries := env.Dataset.Simple
	queries = append(queries, env.Dataset.Medium...)
	queries = append(queries, env.Dataset.Complex...)
	for _, q := range queries {
		_, finals, err := runLegacySearch(env, q.Graph, 20)
		if err != nil {
			t.Fatalf("%s: legacy pipeline: %v", q.Name, err)
		}
		res, err := env.Engine.Search(ctx, q.Graph, env.SearchOptions(20))
		if err != nil {
			t.Fatalf("%s: engine: %v", q.Name, err)
		}
		if len(res.Answers) != len(finals) {
			t.Fatalf("%s: engine returned %d answers, legacy %d",
				q.Name, len(res.Answers), len(finals))
		}
		for i, f := range finals {
			a := res.Answers[i]
			if a.Pivot != f.Pivot {
				t.Fatalf("%s: answer %d pivot %v (engine) vs %v (legacy)",
					q.Name, i, a.PivotName, env.Dataset.Graph.NodeName(f.Pivot))
			}
			if a.Score != f.Score {
				t.Fatalf("%s: answer %d score %v (engine) vs %v (legacy)",
					q.Name, i, a.Score, f.Score)
			}
			if len(a.Parts) != len(f.Parts) {
				t.Fatalf("%s: answer %d has %d parts (engine) vs %d (legacy)",
					q.Name, i, len(a.Parts), len(f.Parts))
			}
			for pi := range a.Parts {
				if a.Parts[pi].PSS != f.Parts[pi].PSS {
					t.Fatalf("%s: answer %d part %d pss %v (engine) vs %v (legacy)",
						q.Name, i, pi, a.Parts[pi].PSS, f.Parts[pi].PSS)
				}
			}
		}
	}
}

// TestRunHotpathShape checks the experiment artifact: all four pairs
// measured, sane values, and a renderable table. It runs the real
// benchmarks with testing.Benchmark, so it is skipped in -short mode.
func TestRunHotpathShape(t *testing.T) {
	if testing.Short() {
		t.Skip("hotpath experiment benchmarks are slow; skipped in -short mode")
	}
	env := testEnv(t)
	res, err := RunHotpath(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("hotpath rows = %d, want 4", len(res.Rows))
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row.Name] = true
		if row.Before.NsPerOp <= 0 || row.After.NsPerOp <= 0 {
			t.Errorf("%s: non-positive timings: %+v", row.Name, row)
		}
		if row.Before.AllocsPerOp < 0 || row.After.AllocsPerOp < 0 {
			t.Errorf("%s: negative allocs: %+v", row.Name, row)
		}
	}
	for _, want := range []string{"AStarNext", "NodeMax", "MatchNode", "SearchEndToEnd"} {
		if !names[want] {
			t.Errorf("missing hotpath pair %q", want)
		}
	}
	if res.Render().String() == "" {
		t.Error("empty render")
	}
}
