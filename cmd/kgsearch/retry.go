package main

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// retryPolicy retries requests the server shed with 429. The wait for
// attempt n is max(Retry-After, base·2^(n-1) capped at maxDelay), with
// uniform jitter in [d/2, d]: the server's Retry-After is a floor (it
// projected when capacity frees up — retrying earlier is wasted work),
// the exponential keeps a persistently overloaded server from being
// hammered at a fixed cadence, and the jitter spreads synchronized
// clients. Clock and RNG are injectable so tests can pin the schedule.
type retryPolicy struct {
	retries  int           // max retries after the first attempt
	base     time.Duration // first backoff step
	maxDelay time.Duration // exponential cap
	sleep    func(time.Duration)
	rng      *rand.Rand // nil = global source
	notify   func(attempt int, wait time.Duration, status string)
}

func defaultRetryPolicy(retries int) retryPolicy {
	return retryPolicy{
		retries:  retries,
		base:     500 * time.Millisecond,
		maxDelay: 15 * time.Second,
		sleep:    time.Sleep,
	}
}

// delay computes the wait before retry attempt n (1-based), honoring
// the server's Retry-After seconds when larger than the local backoff.
func (p retryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := p.base
	for i := 1; i < attempt && d < p.maxDelay; i++ {
		d *= 2
	}
	if d > p.maxDelay {
		d = p.maxDelay
	}
	half := d / 2
	j := int64(0)
	if half > 0 {
		if p.rng != nil {
			j = p.rng.Int63n(int64(half) + 1)
		} else {
			j = rand.Int63n(int64(half) + 1)
		}
	}
	d = half + time.Duration(j)
	if retryAfter > d {
		return retryAfter
	}
	return d
}

// do issues req() until it succeeds, fails for a non-retryable reason,
// or the retry budget is spent. req must return a fresh request body on
// every call — a consumed body must never be re-sent.
func (p retryPolicy) do(req func() (*http.Response, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := req()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp, nil
		}
		if attempt >= p.retries {
			return resp, nil // caller reports the final 429
		}
		retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		wait := p.delay(attempt+1, retryAfter)
		if p.notify != nil {
			p.notify(attempt+1, wait, resp.Status)
		}
		p.sleep(wait)
	}
}

// parseRetryAfter reads the delay-seconds form of Retry-After (what
// semkgd sends); absent or unparseable headers mean no server floor.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// describeShed renders the operator-facing retry notice.
func describeShed(attempt int, wait time.Duration, status string) string {
	return fmt.Sprintf("· server busy (%s); retry %d in %s", status, attempt, wait.Round(time.Millisecond))
}
