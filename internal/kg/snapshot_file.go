package kg

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteSnapshotFile writes g as a binary snapshot at path, atomically: the
// bytes go to a temporary file in the same directory, are synced to disk,
// and only then renamed over path. A crash at any point — mid-write,
// mid-sync, mid-rename — leaves either the previous snapshot or the new
// one at path, never a truncated hybrid; at worst a stale temp file
// remains in the directory. Abandoned temp files from earlier crashes
// (the ".g.snap.*.tmp" pattern) are ignored by every loader: they fail
// ReadSnapshot with ErrSnapshotTruncated instead of being mistaken for
// the live snapshot.
//
// This is the writer behind semkgd's -save-snapshot flag and its
// background snapshot compactor (-snapshot-interval), both of which may
// run while the process is being killed.
func WriteSnapshotFile(path string, g *Graph) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".*.tmp")
	if err != nil {
		return fmt.Errorf("kg: snapshot temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = WriteSnapshot(tmp, g); err != nil {
		return fmt.Errorf("kg: writing snapshot: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("kg: syncing snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("kg: closing snapshot: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("kg: publishing snapshot: %w", err)
	}
	return nil
}
