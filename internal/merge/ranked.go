package merge

import "sort"

// Blend merges several independently ranked lists into one deduplicated
// top-k ranking: the keyword front end's per-candidate answer lists enter
// here, exactly as the per-shard match streams enter Sorted. Items are
// compared by before — a STRICT total order over (item, list index, rank
// within list); ties inside one list fall back to (list, rank), so the
// output never depends on map iteration or goroutine timing. key
// identifies the deduplication class (the answer entity): of several
// items with the same key, only the best survives, exactly as Sorted
// emits at most one match per end node.
//
// k <= 0 means "no truncation". Input lists must each already be ranked
// best-first under the same order; Blend does not re-sort within a list's
// contribution beyond the global order.
func Blend[T any](lists [][]T, k int, key func(T) string, before func(a T, b T) bool) []T {
	type tagged struct {
		item T
		list int
		rank int
	}
	var all []tagged
	for li, l := range lists {
		for ri, it := range l {
			all = append(all, tagged{item: it, list: li, rank: ri})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if before(a.item, b.item) {
			return true
		}
		if before(b.item, a.item) {
			return false
		}
		if a.list != b.list {
			return a.list < b.list
		}
		return a.rank < b.rank
	})
	seen := make(map[string]bool, len(all))
	out := make([]T, 0, len(all))
	for _, t := range all {
		id := key(t.item)
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, t.item)
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}
