package replica

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

// buildFn is the engine factory both ends use: hand-crafted predicate
// vectors (no training), with a fixed fallback direction for predicates
// outside the "trained" set — the serve-layer test convention.
func buildFn() func(*kg.Graph) (core.Queryer, error) {
	vecs := map[string]embed.Vector{
		"assembly":        {1.00, 0.05, 0.02},
		"manufacturer":    {0.95, 0.20, 0.05},
		"country":         {0.90, 0.10, 0.30},
		"locationCountry": {0.90, 0.12, 0.28},
	}
	return func(g *kg.Graph) (core.Queryer, error) {
		names := g.Predicates()
		ordered := make([]embed.Vector, len(names))
		for i, n := range names {
			if v, ok := vecs[n]; ok {
				ordered[i] = v
			} else {
				ordered[i] = embed.Vector{0.30, 0.90, 0.30}
			}
		}
		sp, err := embed.NewSpace(names, ordered)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(g, sp, nil)
	}
}

// newServe builds a serving engine over the motivating-example world.
func newServe(t *testing.T) *serve.Engine {
	t.Helper()
	b := kg.NewBuilder(16, 32)
	ger := b.AddNode("Germany", "Country")
	munich := b.AddNode("Munich", "City")
	b.AddEdge(munich, ger, "country")
	b.AddEdge(b.AddNode("BMW_320", "Automobile"), ger, "assembly")
	b.AddEdge(b.AddNode("BMW_Z4", "Automobile"), munich, "assembly")
	g := b.Build()
	eng, err := buildFn()(g)
	if err != nil {
		t.Fatal(err)
	}
	return serve.New(eng, serve.Config{Build: buildFn()})
}

// newFollowerServe builds the empty serving engine a fresh -follow
// process starts with.
func newFollowerServe(t *testing.T) *serve.Engine {
	t.Helper()
	eng, err := buildFn()(kg.Empty())
	if err != nil {
		t.Fatal(err)
	}
	return serve.New(eng, serve.Config{Build: buildFn()})
}

func startPrimary(t *testing.T, p *Primary) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/v1/replicate", p)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// commitTriples commits one delta of triples through the primary.
func commitTriples(t *testing.T, p *Primary, triples ...[3]string) serve.ApplyInfo {
	t.Helper()
	d := p.Serve().NewDelta()
	for _, tr := range triples {
		if err := d.ApplyTriple(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	info, err := p.Commit(d)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func graphSnapshot(t *testing.T, e *serve.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := kg.WriteSnapshot(&buf, e.Engine().Graph()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertConverged(t *testing.T, f *Follower, p *Primary) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.WaitSynced(ctx, p.Head()); err != nil {
		t.Fatalf("follower never reached generation %d: %v (stats %+v)",
			p.Head(), err, f.Stats())
	}
	if !bytes.Equal(graphSnapshot(t, f.Serve()), graphSnapshot(t, p.Serve())) {
		t.Fatal("follower graph differs from primary's")
	}
}

// TestFollowerBootstrapAndLiveTail: a fresh follower snapshots in, then
// tails live commits, converging to byte-identical graphs at each wait.
func TestFollowerBootstrapAndLiveTail(t *testing.T) {
	p := NewPrimary(newServe(t), Config{Advertise: "http://primary.test"})
	defer p.Close()
	commitTriples(t, p, [3]string{"Audi_TT", "assembly", "Germany"})
	ts := startPrimary(t, p)

	f := NewFollower(newFollowerServe(t), FollowerConfig{Source: ts.URL})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.Run(ctx)

	assertConverged(t, f, p)
	st := f.Stats()
	if st.Resyncs != 1 {
		t.Fatalf("bootstrap resyncs = %d, want 1", st.Resyncs)
	}
	if st.Primary != "http://primary.test" {
		t.Fatalf("advertised primary = %q", st.Primary)
	}

	// Live tail: new commits arrive without another resync.
	commitTriples(t, p,
		[3]string{"BMW_X6", kg.TypePredicate, "Automobile"},
		[3]string{"BMW_X6", "manufacturer", "BMW_Co"})
	commitTriples(t, p, [3]string{"Clio", "assembly", "France"})
	assertConverged(t, f, p)
	if st := f.Stats(); st.Resyncs != 1 {
		t.Fatalf("live tail resyncs = %d, want still 1", st.Resyncs)
	}
	if st := f.Stats(); st.Lag != 0 {
		t.Fatalf("lag after convergence = %d", st.Lag)
	}
}

// TestFollowerResumesAfterCompaction: a follower that reconnects from a
// generation the primary has compacted away takes the snapshot fallback
// and still converges.
func TestFollowerResumesAfterCompaction(t *testing.T) {
	// A log budget of 4 statements compacts after nearly every commit.
	p := NewPrimary(newServe(t), Config{MaxLogStatements: 4})
	defer p.Close()
	ts := startPrimary(t, p)

	f := NewFollower(newFollowerServe(t), FollowerConfig{Source: ts.URL})
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	assertConverged(t, f, p)
	cancel() // follower offline

	for i := 0; i < 8; i++ {
		commitTriples(t, p, [3]string{fmt.Sprintf("E%d", i), "assembly", "Germany"})
	}
	if p.Floor() <= 1 {
		t.Fatalf("floor = %d, compaction never ran", p.Floor())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go f.Run(ctx2)
	assertConverged(t, f, p)
	if st := f.Stats(); st.Resyncs < 2 {
		t.Fatalf("resyncs = %d, want a compaction-forced snapshot resync", st.Resyncs)
	}
}

// TestPromotion: a synced follower promotes to primary under a fresh
// epoch; a follower of the old epoch that reconnects to the promoted
// node detects the epoch change and snapshot-resyncs to it.
func TestPromotion(t *testing.T) {
	p := NewPrimary(newServe(t), Config{})
	ts := startPrimary(t, p)
	commitTriples(t, p, [3]string{"Audi_TT", "assembly", "Germany"})

	// Two followers tail the primary.
	f1 := NewFollower(newFollowerServe(t), FollowerConfig{Source: ts.URL})
	f2 := NewFollower(newFollowerServe(t), FollowerConfig{Source: ts.URL})
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go f1.Run(ctx1)
	go f2.Run(ctx2)
	assertConverged(t, f1, p)
	assertConverged(t, f2, p)

	// The primary dies; f1 is promoted.
	p.Close()
	ts.Close()
	cancel1()
	promoted := f1.Promote(Config{})
	defer promoted.Close()
	if promoted.Epoch() == p.Epoch() {
		t.Fatal("promotion reused the dead primary's epoch")
	}
	ts2 := startPrimary(t, promoted)

	// Writes continue on the promoted primary.
	commitTriples(t, promoted, [3]string{"BMW_X6", "assembly", "Germany"})

	// f2 re-points at the promoted node (in semkgd this is a config
	// change or a discovery hop via the advertised URL).
	f2.SetSource(ts2.URL)
	assertConverged(t, f2, promoted)
	if st := f2.Stats(); st.Epoch != promoted.Epoch() {
		t.Fatalf("follower epoch %q, want promoted %q", st.Epoch, promoted.Epoch())
	}
	if st := f2.Stats(); st.Resyncs < 2 {
		t.Fatalf("resyncs = %d, want epoch-change snapshot resync", st.Resyncs)
	}
}

// TestBackoffSchedule: the reconnect schedule doubles from Min to Max
// with jitter bounded in [d/2, d].
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: 800 * time.Millisecond,
		Rand: rand.New(rand.NewSource(1))}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 800 * time.Millisecond,
		9: 800 * time.Millisecond, // capped
	} {
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

// TestCommitNeverLogsEmptyDeltas: a no-op delta (re-declaring existing
// facts) records statements but does not bump the generation — and must
// not mint a duplicate log entry.
func TestCommitNeverLogsEmptyDeltas(t *testing.T) {
	p := NewPrimary(newServe(t), Config{})
	defer p.Close()
	head := p.Head()
	d := p.Serve().NewDelta()
	if err := d.ApplyTriple("BMW_320", kg.TypePredicate, "Automobile"); err != nil {
		t.Fatal(err)
	}
	info, err := p.Commit(d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != head {
		t.Fatalf("no-op commit bumped generation to %d", info.Generation)
	}
	p.mu.Lock()
	n := len(p.log)
	p.mu.Unlock()
	if n != 0 {
		t.Fatalf("no-op commit appended %d log records", n)
	}
}
