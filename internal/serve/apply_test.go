package serve

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"testing"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
)

// testBuild is the engine factory the apply tests hand to Config.Build:
// it re-derives the test predicate space over the committed graph,
// padding a fixed direction for predicates the "trained" set lacks.
func testBuild() func(*kg.Graph) (core.Queryer, error) {
	vecs := map[string]embed.Vector{
		"assembly":        {1.00, 0.05, 0.02},
		"manufacturer":    {0.95, 0.20, 0.05},
		"country":         {0.90, 0.10, 0.30},
		"locationCountry": {0.90, 0.12, 0.28},
	}
	return func(g *kg.Graph) (core.Queryer, error) {
		names := g.Predicates()
		ordered := make([]embed.Vector, len(names))
		for i, n := range names {
			if v, ok := vecs[n]; ok {
				ordered[i] = v
			} else {
				ordered[i] = embed.Vector{0.30, 0.90, 0.30}
			}
		}
		sp, err := embed.NewSpace(names, ordered)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(g, sp, nil)
	}
}

// TestApplyMakesNewEntitiesFindable: the mutation → snapshot-swap →
// invalidation loop end to end — entities committed through Apply answer
// subsequent queries without a restart.
func TestApplyMakesNewEntitiesFindable(t *testing.T) {
	srv := New(testEngine(t), Config{Build: testBuild()})
	ctx := context.Background()

	before, err := srv.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(before.Entities(), "BMW_i8") {
		t.Fatal("BMW_i8 present before ingestion")
	}

	d := srv.NewDelta()
	for _, tr := range [][3]string{
		{"BMW_i8", kg.TypePredicate, "Automobile"},
		{"BMW_i8", "assembly", "Germany"},
	} {
		if err := d.ApplyTriple(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	info, err := srv.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if info.AddedNodes != 1 || info.AddedEdges != 1 {
		t.Fatalf("info = %+v, want 1 node / 1 edge added", info)
	}
	if info.Generation != 1 {
		t.Fatalf("generation = %d, want 1", info.Generation)
	}

	after, err := srv.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(after.Entities(), "BMW_i8") {
		t.Fatalf("BMW_i8 not findable after Apply: %v", after.Entities())
	}
	st := srv.Stats()
	if st.Applies != 1 || st.Rebuilds != 1 {
		t.Fatalf("stats applies=%d rebuilds=%d, want 1/1", st.Applies, st.Rebuilds)
	}
}

// TestApplyInvalidatesResultCacheExactlyOnce: after Apply publishes a new
// generation, an identical query misses the result cache exactly once and
// is cached again under the new generation.
func TestApplyInvalidatesResultCacheExactlyOnce(t *testing.T) {
	srv := New(testEngine(t), Config{Build: testBuild()})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := srv.Search(ctx, q117(), testOpts()); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.ResultMisses != 1 || st.ResultHits != 1 || st.PipelineRuns != 1 {
		t.Fatalf("warmup stats: %+v", st)
	}

	d := srv.NewDelta()
	if err := d.ApplyTriple("VW_Golf", "assembly", "Germany"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(d); err != nil {
		t.Fatal(err)
	}

	// First identical query after the swap: exactly one fresh miss and
	// one pipeline run against the new engine.
	if _, err := srv.Search(ctx, q117(), testOpts()); err != nil {
		t.Fatal(err)
	}
	st = srv.Stats()
	if st.ResultMisses != 2 || st.PipelineRuns != 2 {
		t.Fatalf("post-apply first query: misses=%d runs=%d, want 2/2", st.ResultMisses, st.PipelineRuns)
	}
	// Second identical query: served from the repopulated cache.
	if _, err := srv.Search(ctx, q117(), testOpts()); err != nil {
		t.Fatal(err)
	}
	st = srv.Stats()
	if st.ResultHits != 2 || st.PipelineRuns != 2 {
		t.Fatalf("post-apply second query: hits=%d runs=%d, want 2/2", st.ResultHits, st.PipelineRuns)
	}
}

// TestApplyStaleDelta: a delta based on a superseded graph is refused —
// committing it would silently drop the intervening generation's triples.
func TestApplyStaleDelta(t *testing.T) {
	srv := New(testEngine(t), Config{Build: testBuild()})
	d1, d2 := srv.NewDelta(), srv.NewDelta()
	if err := d1.ApplyTriple("A1", "assembly", "Germany"); err != nil {
		t.Fatal(err)
	}
	if err := d2.ApplyTriple("A2", "assembly", "Germany"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(d1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(d2); !errors.Is(err, ErrStaleDelta) {
		t.Fatalf("err = %v, want ErrStaleDelta", err)
	}
}

// TestApplyEmptyDelta: a no-op delta reports state without bumping the
// generation or purging caches.
func TestApplyEmptyDelta(t *testing.T) {
	srv := New(testEngine(t), Config{Build: testBuild()})
	if _, err := srv.Search(context.Background(), q117(), testOpts()); err != nil {
		t.Fatal(err)
	}
	info, err := srv.Apply(srv.NewDelta())
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 0 {
		t.Fatalf("empty apply bumped generation to %d", info.Generation)
	}
	st := srv.Stats()
	if st.Rebuilds != 0 || st.ResultEntries != 1 {
		t.Fatalf("empty apply purged state: %+v", st)
	}
}

// TestApplyRequiresBuilder: without Config.Build there is no way to turn
// a committed graph into an engine.
func TestApplyRequiresBuilder(t *testing.T) {
	srv := New(testEngine(t), Config{})
	if _, err := srv.Apply(srv.NewDelta()); err == nil {
		t.Fatal("Apply without Config.Build accepted")
	}
}

// TestApplyConcurrentWithSearches is the concurrency regression of the
// storage rework: streams running against generation N while Apply
// publishes N+1 complete without error (against the generation they
// started on), under the race detector. Each client's observed answer
// count is non-decreasing — generations only ever add entities here, so a
// later search can never see fewer answers than an earlier one.
func TestApplyConcurrentWithSearches(t *testing.T) {
	srv := New(testEngine(t), Config{Build: testBuild(), Queue: 64})
	ctx := context.Background()
	const (
		clients   = 4
		perClient = 25
		applies   = 8
	)

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			prev := -1
			for i := 0; i < perClient; i++ {
				st, err := srv.Stream(ctx, q117(), testOpts())
				if err != nil {
					errs[c] = err
					return
				}
				for range st.Events() {
				}
				res, err := st.Result()
				if err != nil {
					errs[c] = err
					return
				}
				if res == nil {
					errs[c] = fmt.Errorf("stream %d/%d: nil result", c, i)
					return
				}
				if n := len(res.Answers); n < prev {
					errs[c] = fmt.Errorf("stream %d/%d: answers went from %d to %d", c, i, prev, n)
					return
				} else {
					prev = n
				}
			}
		}(c)
	}

	for a := 0; a < applies; a++ {
		d := srv.NewDelta()
		if err := d.ApplyTriple(fmt.Sprintf("NewAuto_%d", a), kg.TypePredicate, "Automobile"); err != nil {
			t.Fatal(err)
		}
		if err := d.ApplyTriple(fmt.Sprintf("NewAuto_%d", a), "assembly", "Germany"); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if gen := srv.Generation(); gen != applies {
		t.Fatalf("generation = %d, want %d", gen, applies)
	}
	// The final engine serves every ingested auto (K large enough to
	// hold the base answers plus all ingested ones).
	opts := testOpts()
	opts.K = 4 + 2*applies
	res, err := srv.Search(ctx, q117(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < applies; a++ {
		if !slices.Contains(res.Entities(), fmt.Sprintf("NewAuto_%d", a)) {
			t.Fatalf("NewAuto_%d missing from final results: %v", a, res.Entities())
		}
	}
}
