package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"semkg/internal/datagen"
	"semkg/internal/embed"
)

// TestRunReplicaShape is the replica-experiment acceptance smoke: every
// catch-up point recovers to a byte-identical graph, the largest backlog
// exercises reconnect-with-backoff, and the failover section records a
// measured (finite, non-degenerate) QPS dip with traffic on both sides
// of the kill.
func TestRunReplicaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an embedding; skipped in -short")
	}
	env, err := Cached(Config{
		Profile: datagen.DBpediaLike(0.2),
		Embed:   embed.Config{Dim: 24, Epochs: 60, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunReplica(env, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Catchup) == 0 {
		t.Fatal("no catch-up measurements")
	}
	for i, c := range res.Catchup {
		if !c.Converged {
			t.Fatalf("catch-up %d (backlog %d): follower did not converge", i, c.Backlog)
		}
		if c.RecoveryMs <= 0 {
			t.Fatalf("catch-up %d: non-measured recovery %v ms", i, c.RecoveryMs)
		}
		if c.Reconnects == 0 {
			t.Fatalf("catch-up %d: recovered without any reconnect — the fault never fired", i)
		}
	}
	fo := res.Failover
	if fo.QPSBefore <= 0 || fo.QPSAfter <= 0 {
		t.Fatalf("failover has no live traffic: before %.1f qps, after %.1f qps", fo.QPSBefore, fo.QPSAfter)
	}
	if fo.DipMs <= 0 {
		t.Fatalf("dip %v ms — the outage window was never measured", fo.DipMs)
	}
	if fo.FailedRequests == 0 {
		t.Fatal("no failed requests: the clients never ran through the outage")
	}
	if len(fo.Timeline) == 0 || fo.BucketMs <= 0 {
		t.Fatalf("missing timeline: %d buckets of %d ms", len(fo.Timeline), fo.BucketMs)
	}

	path := filepath.Join(t.TempDir(), "BENCH_replica.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ReplicaResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if len(back.Catchup) != len(res.Catchup) {
		t.Fatalf("round-trip lost catch-up points: %d vs %d", len(back.Catchup), len(res.Catchup))
	}
	if res.Render().String() == "" {
		t.Fatal("empty rendering")
	}
}
