package keyword

// Wire conversion lives here, not in internal/api: api defines the pure
// wire structs and strict decoders (shared by servers and clients) and
// must stay import-free of the engine stack, while this package already
// sits on top of it. Servers convert with WireResult/EncodeEvent/
// WireSuggestions; clients decode with api.Decode*.

import (
	"encoding/json"
	"fmt"

	"semkg/internal/api"
)

// WireResult converts a front-end response into its wire form.
func WireResult(r *Response) api.KeywordResult {
	out := api.KeywordResult{
		Executed:        r.Executed,
		Answers:         make([]api.KeywordAnswer, len(r.Answers)),
		AssemblyElapsed: api.Duration(r.Assembly.Elapsed),
		Elapsed:         api.Duration(r.Elapsed),
		Generation:      r.Generation,
	}
	for _, tok := range r.Assembly.Tokens {
		out.Keywords = append(out.Keywords, tok.Norm)
	}
	out.Unmatched = r.Assembly.Unmatched
	for _, c := range r.Assembly.Candidates {
		out.Candidates = append(out.Candidates, api.KeywordCandidate{
			Query:    api.QueryFrom(c.Query),
			Score:    c.Score,
			Coverage: c.Coverage,
			Explain:  c.Explain,
		})
	}
	for _, run := range r.Runs {
		out.Runs = append(out.Runs, api.KeywordRun{
			Candidate:   run.Index,
			Answers:     run.Answers,
			Elapsed:     api.Duration(run.Elapsed),
			Approximate: run.Approximate,
			Error:       run.Err,
		})
	}
	for i, a := range r.Answers {
		out.Answers[i] = api.KeywordAnswer{
			Answer:    api.AnswerFrom(a.Answer),
			Blended:   a.Blended,
			Candidate: a.Candidate,
		}
	}
	return out
}

// WireEvent converts a front-end stream event into its wire form.
func WireEvent(ev Event) (api.KeywordEvent, error) {
	switch {
	case ev.Assembly != nil:
		out := api.KeywordEvent{Event: api.KeywordEventAssembly, Executed: ev.Executed}
		for _, tok := range ev.Assembly.Tokens {
			out.Keywords = append(out.Keywords, tok.Norm)
		}
		out.Unmatched = ev.Assembly.Unmatched
		for _, c := range ev.Assembly.Candidates {
			out.Candidates = append(out.Candidates, api.KeywordCandidate{
				Query:    api.QueryFrom(c.Query),
				Score:    c.Score,
				Coverage: c.Coverage,
				Explain:  c.Explain,
			})
		}
		return out, nil
	case ev.Final != nil:
		r := WireResult(ev.Final)
		return api.KeywordEvent{Event: api.KeywordEventResult, Result: &r}, nil
	case ev.Inner != nil:
		inner, err := api.EventFrom(ev.Inner)
		if err != nil {
			return api.KeywordEvent{}, err
		}
		c := ev.Candidate
		return api.KeywordEvent{Event: api.KeywordEventEngine, Candidate: &c, Inner: &inner}, nil
	default:
		return api.KeywordEvent{}, fmt.Errorf("keyword: event with no payload")
	}
}

// EncodeEvent renders one keyword-stream event as a single NDJSON line
// (without the trailing newline).
func EncodeEvent(ev Event) ([]byte, error) {
	w, err := WireEvent(ev)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// WireSuggestions converts a suggestion set to its wire form.
func WireSuggestions(s *Suggestions) api.SuggestResult {
	out := api.SuggestResult{
		Query:       s.Query,
		Suggestions: make([]api.Suggestion, len(s.Items)),
		Generation:  s.Generation,
		Elapsed:     api.Duration(s.Elapsed),
	}
	for i, it := range s.Items {
		out.Suggestions[i] = api.Suggestion{
			Text:  it.Text,
			Kind:  string(it.Kind),
			Via:   string(it.Via),
			Count: it.Count,
			Score: it.Score,
		}
	}
	return out
}
