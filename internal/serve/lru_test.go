package serve

import (
	"testing"

	"semkg/internal/core"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU[int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Add("c", 3) // evicts b (least recently used after the Get refreshed a)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for key, want := range map[string]int{"a": 1, "c": 3} {
		got, ok := c.Get(key)
		if !ok || got != want {
			t.Fatalf("Get(%q) = %d,%t want %d", key, got, ok, want)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUUpdateAndPurge(t *testing.T) {
	c := newLRU[string](4)
	c.Add("k", "v1")
	c.Add("k", "v2")
	if got, _ := c.Get("k"); got != "v2" {
		t.Fatalf("Get = %q, want v2", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (update, not insert)", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("purged entry still present")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU[int](0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestKeysDistinguishRequests(t *testing.T) {
	a, b := q117(), q117()
	optsA, optsB := testOpts(), testOpts()
	if resultKey(a, optsA) != resultKey(b, optsB) {
		t.Fatal("identical requests produced different keys")
	}
	optsB.K = 3
	if resultKey(a, optsA) == resultKey(b, optsB) {
		t.Fatal("different K shared a result key")
	}
	if planKey(a, optsA) != planKey(b, optsB) {
		t.Fatal("K changed the plan key (it is a runtime option)")
	}
	optsB = testOpts()
	optsB.Tau = 0.9
	if planKey(a, optsA) == planKey(b, optsB) {
		t.Fatal("different tau shared a plan key")
	}
	b.Nodes[1].Name = "France"
	if resultKey(a, optsA) == resultKey(b, optsA) {
		t.Fatal("different queries shared a result key")
	}
	// K=0 normalizes to the default K=10: both forms share an entry.
	optsA = core.Options{K: 10, Tau: 0.75}
	optsB = core.Options{K: 0, Tau: 0.75}
	if resultKey(a, optsA) != resultKey(a, optsB) {
		t.Fatal("normalized options should share a key")
	}
}
