// Sharded scatter-gather execution: a ShardedEngine partitions the
// knowledge graph into N shard graphs (internal/shard), fans every
// sub-query search out across the shards, and gathers the per-shard match
// streams through a bounds-aware merger (internal/merge) into the same TA
// assembly the single-graph engine runs. It satisfies the Queryer surface,
// so the serving layer's caches, singleflight and admission control work
// over it unchanged.
//
// Correctness rests on three invariants (see DESIGN.md, "Sharded
// execution"):
//
//  1. First-hop ownership partitions the work: every match is a path of
//     at least one edge, and each shard enumerates exactly the paths whose
//     first hop lands on a node it owns. First hops partition the path
//     space (one first hop per path), anchor fan-out spreads them across
//     shards even for single-entity anchors, and any such path lies
//     entirely inside the owner's shard graph (all its nodes are within
//     Halo >= MaxHops hops of the owned first hop; the anchor is one hop
//     away) — so the per-shard match streams are an exact, disjoint
//     partition of the global stream, with identical path semantic
//     similarities.
//  2. Semantics are resolved once, globally: the query is decomposed, φ is
//     matched and predicates are resolved against the base graph, then
//     *projected* into each shard. Shards never re-resolve against their
//     truncated vocabularies (which would diverge — the abbreviation
//     fallback and predicate resolution depend on what exists globally).
//  3. The gather is demand-driven and deterministically tie-broken: the
//     merged per-sub-query streams are sorted exactly like a single
//     searcher's output, so the TA assembly terminates under the same
//     L_k >= U_max condition and returns a top-k with the same score
//     multiset.

package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/astar"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/merge"
	"semkg/internal/query"
	"semkg/internal/semgraph"
	"semkg/internal/shard"
	"semkg/internal/ta"
	"semkg/internal/tbq"
	"semkg/internal/transform"
)

// ShardConfig sizes a sharded engine. The zero value gives 4 shards with
// the default halo.
type ShardConfig struct {
	// Shards is the number of shard graphs. 0 = default 4.
	Shards int
	// Halo is the replication radius in hops (shard.Options.Halo); it
	// bounds the MaxHops a sharded search can serve — deeper searches
	// transparently fall back to the base engine. 0 = shard.DefaultHalo.
	Halo int
	// Workers bounds the concurrent per-shard searches of the exact-mode
	// scatter phase. 0 = GOMAXPROCS. Time-bounded searches always run all
	// shard searches concurrently, as the estimator of Algorithm 3
	// requires.
	Workers int
}

func (c ShardConfig) withDefaults() ShardConfig {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Halo <= 0 {
		c.Halo = shard.DefaultHalo
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// ShardedEngine answers query graphs by scatter-gather over a partitioned
// knowledge graph. It embeds a base single-graph engine for global
// compilation (decomposition, φ matching, predicate resolution) and answer
// rendering; only the searches themselves run per shard. Safe for
// concurrent use. Results are equivalent to the base engine's: same
// answer set and scores for SGQ, same time-bound contract for TBQ.
type ShardedEngine struct {
	base    *Engine
	set     *shard.Set
	workers int
	// predGlobal[s][localPred] maps shard s's predicate ids to base ids,
	// for projecting globally-resolved weight rows into shard spaces.
	predGlobal [][]kg.PredID
	// locals[s][globalNode] is the shard-local id of the base node in
	// shard s, or kg.NoNode when not replicated there — the O(1) form of
	// shard.Shard.LocalNode, precomputed once so plan projection does not
	// binary-search per φ candidate.
	locals [][]kg.NodeID

	searches  atomic.Uint64
	fallbacks atomic.Uint64
}

// NewShardedEngine partitions base's graph and wraps base in a
// scatter-gather engine. The partition is deterministic; building it costs
// one BFS plus one subgraph index build per shard.
func NewShardedEngine(base *Engine, cfg ShardConfig) (*ShardedEngine, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil base engine")
	}
	cfg = cfg.withDefaults()
	set, err := shard.Partition(base.Graph(), shard.Options{Shards: cfg.Shards, Halo: cfg.Halo})
	if err != nil {
		return nil, err
	}
	return NewShardedEngineFromSet(base, set, cfg)
}

// NewShardedEngineFromSet wraps base with an existing partition of its
// graph — the cold-start path when shards were loaded individually from
// shard snapshots (shard.ReadShard + shard.Assemble).
func NewShardedEngineFromSet(base *Engine, set *shard.Set, cfg ShardConfig) (*ShardedEngine, error) {
	if base == nil || set == nil {
		return nil, fmt.Errorf("core: nil base engine or shard set")
	}
	if set.Base() != base.Graph() {
		return nil, fmt.Errorf("core: shard set partitions a different graph than the base engine serves")
	}
	cfg = cfg.withDefaults()
	se := &ShardedEngine{
		base:       base,
		set:        set,
		workers:    cfg.Workers,
		predGlobal: make([][]kg.PredID, set.Len()),
		locals:     make([][]kg.NodeID, set.Len()),
	}
	for s := 0; s < set.Len(); s++ {
		sh := set.Shard(s)
		g := sh.Graph
		pm := make([]kg.PredID, g.NumPredicates())
		for p := range pm {
			gp := base.Graph().PredByName(g.PredName(kg.PredID(p)))
			if gp < 0 {
				return nil, fmt.Errorf("core: shard %d predicate %q is not in the base graph", s, g.PredName(kg.PredID(p)))
			}
			pm[p] = gp
		}
		se.predGlobal[s] = pm
		loc := make([]kg.NodeID, base.Graph().NumNodes())
		for i := range loc {
			loc[i] = kg.NoNode
		}
		for l := 0; l < g.NumNodes(); l++ {
			loc[sh.GlobalNode(kg.NodeID(l))] = kg.NodeID(l)
		}
		se.locals[s] = loc
	}
	return se, nil
}

// BuildShardedEngine is BuildEngine plus partitioning: the construction
// path semkgd -shards uses.
func BuildShardedEngine(g *kg.Graph, model *embed.Model, lib *transform.Library, cfg ShardConfig) (*ShardedEngine, error) {
	base, err := BuildEngine(g, model, lib)
	if err != nil {
		return nil, err
	}
	return NewShardedEngine(base, cfg)
}

// ShardedEngineFromSnapshot is EngineFromSnapshot plus partitioning.
func ShardedEngineFromSnapshot(r io.Reader, model *embed.Model, lib *transform.Library, cfg ShardConfig) (*ShardedEngine, error) {
	base, err := EngineFromSnapshot(r, model, lib)
	if err != nil {
		return nil, err
	}
	return NewShardedEngine(base, cfg)
}

// Base returns the whole-graph engine used for compilation, rendering and
// halo fallbacks.
func (se *ShardedEngine) Base() *Engine { return se.base }

// Set returns the shard partition.
func (se *ShardedEngine) Set() *shard.Set { return se.set }

// Graph implements Queryer: the base knowledge graph.
func (se *ShardedEngine) Graph() *kg.Graph { return se.set.Base() }

// PerMatchCost implements Queryer; sharding does not change the TA
// assembly cost model.
func (se *ShardedEngine) PerMatchCost() time.Duration { return se.base.PerMatchCost() }

// ShardedStats is a point-in-time summary of the sharded engine, exported
// by semkgd under the "semkgd_shard" expvar key.
type ShardedStats struct {
	// Shards and Halo echo the partition configuration.
	Shards int `json:"shards"`
	Halo   int `json:"halo"`
	// Workers is the exact-mode scatter pool size.
	Workers int `json:"workers"`
	// Searches counts sharded pipeline executions; Fallbacks counts
	// searches answered by the base engine because MaxHops exceeded Halo.
	Searches  uint64 `json:"sharded_searches"`
	Fallbacks uint64 `json:"halo_fallbacks"`
	// ReplicationFactor is (sum of shard nodes) / (base nodes): 1.0 means
	// no halo overlap, N means every shard replicated the whole graph.
	ReplicationFactor float64 `json:"replication_factor"`
	// PerShard summarizes each shard graph.
	PerShard []shard.Stats `json:"per_shard"`
}

// InheritStats carries the cumulative search counters over from the
// engine this one replaces (live-ingestion rebuilds construct a fresh
// ShardedEngine per generation), keeping the monitoring surface —
// semkgd's "semkgd_shard" expvar — monotonic across generations instead
// of resetting to zero on every commit. Call it on the new engine before
// publishing it; a nil prev is a no-op.
func (se *ShardedEngine) InheritStats(prev *ShardedEngine) {
	if prev == nil {
		return
	}
	se.searches.Add(prev.searches.Load())
	se.fallbacks.Add(prev.fallbacks.Load())
}

// Stats snapshots the engine's counters and partition shape.
func (se *ShardedEngine) Stats() ShardedStats {
	st := ShardedStats{
		Shards:    se.set.Len(),
		Halo:      se.set.Halo(),
		Workers:   se.workers,
		Searches:  se.searches.Load(),
		Fallbacks: se.fallbacks.Load(),
		PerShard:  se.set.AllStats(),
	}
	total := 0
	for _, s := range st.PerShard {
		total += s.Nodes
	}
	if n := se.set.Base().NumNodes(); n > 0 {
		st.ReplicationFactor = float64(total) / float64(n)
	}
	return st
}

// shardPlanSub is one (shard, sub-query) searcher blueprint: the base
// blueprint's φ sets projected into the shard's id space (anchors
// restricted to owned nodes) plus the globally-resolved weight rows
// projected onto the shard's predicate vocabulary. active is false when
// the shard cannot contribute matches for this sub-query — it owns none
// of the anchors, or some segment's end set has no replica here (any
// in-halo match would need one, so none exists).
type shardPlanSub struct {
	active bool
	sub    astar.SubQuery
	rows   [][]float64
}

// ShardedPlan is a compiled query for a sharded engine: the base plan
// (decomposition + global blueprints) plus its per-shard projections.
// Immutable and safe for concurrent reuse, like Plan.
type ShardedPlan struct {
	se   *ShardedEngine
	base *Plan
	// shards[s][i] is sub-query i's blueprint projected into shard s.
	shards [][]shardPlanSub
}

// Pivot implements CompiledPlan.
func (p *ShardedPlan) Pivot() string { return p.base.Pivot() }

// Compiled implements CompiledPlan; the global φ decides (a query node
// with no match anywhere yields the empty answer set).
func (p *ShardedPlan) Compiled() bool { return p.base.Compiled() }

// PlannedBy implements CompiledPlan. A ReshardingEngine counts when its
// upgraded sharded engine compiled the plan.
func (p *ShardedPlan) PlannedBy(q Queryer) bool {
	if r, ok := q.(*ReshardingEngine); ok {
		return p != nil && p.se == r.se.Load()
	}
	s, ok := q.(*ShardedEngine)
	return ok && p != nil && p.se == s
}

// Compile resolves q once against the base graph — decomposition, φ
// matching, predicate resolution, exactly as Engine.Compile — and projects
// the resulting blueprints into every shard. One sharded plan serves any K
// or time budget, like Plan.
func (se *ShardedEngine) Compile(q *query.Graph, opts Options) (*ShardedPlan, error) {
	bp, err := se.base.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	sp := &ShardedPlan{se: se, base: bp}
	if !bp.compiled {
		return sp, nil
	}
	globalRows := make([][][]float64, len(bp.subs))
	for i, ps := range bp.subs {
		rows, err := se.base.rows.Rows(ps.preds)
		if err != nil {
			return nil, err
		}
		globalRows[i] = rows
	}
	sp.shards = make([][]shardPlanSub, se.set.Len())
	for s := range sp.shards {
		subs := make([]shardPlanSub, len(bp.subs))
		for i, ps := range bp.subs {
			subs[i] = se.projectSub(s, ps, globalRows[i])
		}
		sp.shards[s] = subs
	}
	return sp, nil
}

// projectSub maps one global searcher blueprint into shard s. The shard
// searches from every replicated anchor but only through first-hop nodes
// it owns (astar.SubQuery.FirstHop): matches are at least one edge long,
// so first hops partition the path space exactly — and because anchor
// fan-out spreads over many neighbors, the work balances across shards
// even when φ(anchor) is a single entity, the common case for the paper's
// specific query nodes.
func (se *ShardedEngine) projectSub(s int, ps planSub, gRows [][]float64) shardPlanSub {
	sh := se.set.Shard(s)
	toLocal := se.locals[s]
	var anchors []kg.NodeID
	for _, a := range ps.sub.Anchors {
		// An anchor absent from this shard has no owned neighbor here:
		// every path from it starts through a hop some other shard owns.
		if la := toLocal[a]; la != kg.NoNode {
			anchors = append(anchors, la)
		}
	}
	if len(anchors) == 0 {
		return shardPlanSub{}
	}
	endSets := make([]map[kg.NodeID]bool, len(ps.sub.EndSets))
	for i, set := range ps.sub.EndSets {
		local := make(map[kg.NodeID]bool, len(set))
		for g := range set {
			if lg := toLocal[g]; lg != kg.NoNode {
				local[lg] = true
			}
		}
		if len(local) == 0 {
			return shardPlanSub{}
		}
		endSets[i] = local
	}
	pm := se.predGlobal[s]
	rows := make([][]float64, len(gRows))
	for seg, gr := range gRows {
		r := make([]float64, len(pm))
		for lp, gp := range pm {
			r[lp] = gr[gp]
		}
		rows[seg] = r
	}
	return shardPlanSub{
		active: true,
		sub:    astar.SubQuery{Anchors: anchors, EndSets: endSets, FirstHop: sh.Owned},
		rows:   rows,
	}
}

// CompileQuery implements Queryer.
func (se *ShardedEngine) CompileQuery(q *query.Graph, opts Options) (CompiledPlan, error) {
	p, err := se.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Search implements Queryer: the batch form of Stream, same pipeline.
func (se *ShardedEngine) Search(ctx context.Context, q *query.Graph, opts Options) (*Result, error) {
	p, err := se.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	s, err := se.streamPlan(ctx, p, opts, true)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// Stream implements Queryer; the emitted events carry the shard that
// produced each progress update (ProgressEvent.Shard, 1-based).
func (se *ShardedEngine) Stream(ctx context.Context, q *query.Graph, opts Options) (*Stream, error) {
	p, err := se.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return se.streamPlan(ctx, p, opts, false)
}

// SearchCompiled implements Queryer over a plan from this engine's
// Compile/CompileQuery.
func (se *ShardedEngine) SearchCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Result, error) {
	sp, err := se.plan(p)
	if err != nil {
		return nil, err
	}
	s, err := se.streamPlan(ctx, sp, opts, true)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// StreamCompiled implements Queryer; see SearchCompiled.
func (se *ShardedEngine) StreamCompiled(ctx context.Context, p CompiledPlan, opts Options) (*Stream, error) {
	sp, err := se.plan(p)
	if err != nil {
		return nil, err
	}
	return se.streamPlan(ctx, sp, opts, false)
}

func (se *ShardedEngine) plan(p CompiledPlan) (*ShardedPlan, error) {
	sp, ok := p.(*ShardedPlan)
	if !ok {
		return nil, fmt.Errorf("core: plan of type %T was not compiled by a sharded engine", p)
	}
	if sp.se != se {
		return nil, fmt.Errorf("core: plan was compiled by a different sharded engine")
	}
	return sp, nil
}

// streamPlan validates, then runs the scatter-gather pipeline — or the
// base engine's pipeline when the requested MaxHops exceeds the
// partition's halo (the shard graphs cannot contain such paths; falling
// back preserves correctness at the cost of sharding's benefit).
func (se *ShardedEngine) streamPlan(ctx context.Context, sp *ShardedPlan, opts Options, quiet bool) (*Stream, error) {
	if err := opts.Validate(); err != nil {
		return nil, badRequest(err)
	}
	opts = opts.withDefaults()
	if err := sp.base.check(se.base, opts); err != nil {
		return nil, err
	}
	if opts.MaxHops > se.set.Halo() {
		se.fallbacks.Add(1)
		return se.base.startStream(ctx, sp.base, opts, quiet)
	}
	if opts.TimeBound > 0 {
		se.base.perMatchCost() // calibrate outside the timed window
	}
	se.searches.Add(1)
	start := time.Now()
	tasks, err := se.tasksFor(sp)
	if err != nil {
		return nil, err
	}
	buffer := streamBuffer
	if quiet {
		buffer = 0
	}
	s := &Stream{events: make(chan Event, buffer), done: make(chan struct{}), quiet: quiet}
	if quiet {
		se.runSharded(ctx, s, sp, tasks, opts, start)
	} else {
		go se.runSharded(ctx, s, sp, tasks, opts, start)
	}
	return s, nil
}

// shardTask is one (shard, sub-query) search of a run: fresh per run, like
// single-engine searchers (arenas and weighter slabs are mutable).
type shardTask struct {
	shard int
	sub   int
	sh    *shard.Shard
	sr    *astar.Searcher
}

// tasksFor instantiates fresh searchers for every active (shard, sub)
// blueprint, in shard-major order (the deterministic source order of the
// merger's tie-break).
func (se *ShardedEngine) tasksFor(sp *ShardedPlan) ([]shardTask, error) {
	if !sp.base.compiled {
		return nil, nil
	}
	sopts := astar.Options{
		Tau:          sp.base.copts.tau,
		MaxHops:      sp.base.copts.maxHops,
		NoHeuristic:  sp.base.copts.noHeuristic,
		PruneVisited: sp.base.copts.pruneVisited,
	}
	var tasks []shardTask
	for s, subs := range sp.shards {
		sh := se.set.Shard(s)
		for i, pss := range subs {
			if !pss.active {
				continue
			}
			w, err := semgraph.NewWeighterFromRows(sh.Graph, pss.rows)
			if err != nil {
				return nil, err
			}
			tasks = append(tasks, shardTask{
				shard: s, sub: i, sh: sh,
				sr: astar.NewSearcher(sh.Graph, w, pss.sub, sopts),
			})
		}
	}
	return tasks, nil
}

// remapMatch rewrites a shard-local match into base-graph ids, in place
// (searchers materialize fresh slices per match).
func remapMatch(sh *shard.Shard, m astar.Match) astar.Match {
	for i, u := range m.Nodes {
		m.Nodes[i] = sh.GlobalNode(u)
	}
	for i, e := range m.Edges {
		m.Edges[i] = sh.GlobalEdge(e)
	}
	return m
}

// runSharded is the pipeline goroutine behind the sharded Stream; it
// mirrors Engine.runStream with the search phase scattered across shards.
func (se *ShardedEngine) runSharded(ctx context.Context, s *Stream, sp *ShardedPlan,
	tasks []shardTask, opts Options, start time.Time) {
	d := sp.base.d
	res := &Result{Decomposition: d}
	if sp.base.compiled {
		var finals []ta.Final
		if opts.TimeBound > 0 {
			finals = se.shardedTBQ(ctx, s, sp, tasks, opts, res)
		} else {
			finals = se.shardedSGQ(ctx, s, sp, tasks, opts)
		}
		res.SearchStats = make([]astar.Stats, len(sp.base.subs))
		res.ShardEffort = make([]astar.Stats, se.set.Len())
		for _, t := range tasks {
			st := t.sr.Stats()
			for _, agg := range []*astar.Stats{&res.SearchStats[t.sub], &res.ShardEffort[t.shard]} {
				agg.Popped += st.Popped
				agg.Pushed += st.Pushed
				agg.Pruned += st.Pruned
				agg.Emitted += st.Emitted
			}
		}
		res.Answers = se.base.renderAnswers(finals, d)
		lk, umax, round := s.lastBounds()
		s.emit(TopKEvent{Answers: res.Answers, LowerK: lk, UpperMax: umax, Round: round})
	}
	res.Elapsed = time.Since(start)
	s.res = res
	s.emit(ResultEvent{Result: res})
	close(s.events)
	close(s.done)
}

// shardStream resumes one (shard, sub) search behind its prefetched
// matches, remapping lazily pulled matches to base ids. It is a sorted
// merge.Source.
type shardStream struct {
	ctx context.Context
	buf []astar.Match // prefetched, already base-mapped
	pos int
	sh  *shard.Shard
	sr  *astar.Searcher
}

func (r *shardStream) Next() (astar.Match, bool) {
	if r.pos < len(r.buf) {
		m := r.buf[r.pos]
		r.pos++
		return m, true
	}
	if r.ctx.Err() != nil {
		return astar.Match{}, false
	}
	m, ok := r.sr.Next()
	if !ok {
		return astar.Match{}, false
	}
	return remapMatch(r.sh, m), true
}

// shardedSGQ is the exact-mode scatter-gather: every (shard, sub) searcher
// prefetches its per-shard share of k on the worker pool, then one
// demand-driven sorted merger per sub-query feeds the TA assembly, which
// pulls further matches from individual shards only when its L_k/U_max
// bounds require them.
func (se *ShardedEngine) shardedSGQ(ctx context.Context, s *Stream, sp *ShardedPlan,
	tasks []shardTask, opts Options) []ta.Final {
	s.emit(PhaseEvent{Phase: PhaseSearch})
	nsub := len(sp.base.subs)
	k := opts.K
	// Scatter: each (shard, sub) searcher prefetches its proportional
	// share of k concurrently on the worker pool — if the top-k
	// distributes evenly across shards, each source contributes about k/N.
	// The gather stays demand-driven past the prefetch: the TA assembly
	// pulls further matches through the sorted mergers only when its
	// L_k/U_max bounds require them, and only from the shard whose head is
	// actually competitive — skew (all candidates in one shard) costs lazy
	// pulls, never a restart.
	prefetch := 1 + (k-1)/se.set.Len()
	bufs := make([][]astar.Match, len(tasks))
	quiet := s.quiet
	sem := make(chan struct{}, se.workers)
	var wg sync.WaitGroup
	for ti := range tasks {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t := tasks[ti]
			for len(bufs[ti]) < prefetch && ctx.Err() == nil {
				m, ok := t.sr.Next()
				if !ok {
					break
				}
				bufs[ti] = append(bufs[ti], remapMatch(t.sh, m))
				if !quiet {
					s.emit(ProgressEvent{Shard: t.shard + 1, Sub: t.sub, Collected: len(bufs[ti])})
				}
			}
			if !quiet {
				s.emit(ProgressEvent{Shard: t.shard + 1, Sub: t.sub, Collected: len(bufs[ti]), Done: true})
			}
		}(ti)
	}
	wg.Wait()

	counts := make([]int, nsub)
	sources := make([][]merge.Source, nsub)
	for ti, t := range tasks { // shard-major order: deterministic merge tie-break
		counts[t.sub] += len(bufs[ti])
		sources[t.sub] = append(sources[t.sub], &shardStream{
			ctx: ctx, buf: bufs[ti], sh: t.sh, sr: t.sr,
		})
	}
	s.emit(PhaseEvent{Phase: PhaseAssemble, Collected: counts})

	streams := make([]ta.Stream, nsub)
	for i := range streams {
		streams[i] = merge.Sorted(sources[i]...)
	}
	asm := ta.NewAssembler(streams, k)
	var onRound func(int)
	if !quiet {
		onRound = func(r int) {
			lk, umax := asm.Bounds()
			s.emitProvisional(se.base, sp.base.d, asm.Provisional(), lk, umax, r)
		}
	}
	return asm.Run(onRound)
}

// shardedTBQ is the time-bounded scatter-gather (Algorithms 2 and 3 across
// shards): every (shard, sub) search runs eagerly and concurrently under
// one shared tbq.Estimator — T̂ = elapsed + Σ|M̂|·t, where the Σ counts
// distinct entities per (shard, sub) set — until the alert threshold
// T·r%; the collected sets are then merged per sub-query (best match per
// end node across shards) and assembled exactly as the single engine
// assembles its own eager sets. Entities reachable through first hops in
// several shards are counted once per shard by the estimator, so the
// sharded alert can only fire earlier than the single-engine one — the
// time bound is never loosened by sharding.
func (se *ShardedEngine) shardedTBQ(ctx context.Context, s *Stream, sp *ShardedPlan,
	tasks []shardTask, opts Options, res *Result) []ta.Final {
	nsub := len(sp.base.subs)
	s.emit(PhaseEvent{Phase: PhaseSearch})
	quiet := s.quiet

	var onAlert func(elapsed, projected time.Duration)
	if !quiet {
		onAlert = func(elapsed, projected time.Duration) {
			s.emit(PhaseEvent{Phase: PhaseAlert, Elapsed: elapsed, Projected: projected})
		}
	}
	est := tbq.NewEstimator(ctx, tbq.Config{
		Bound:      opts.TimeBound,
		AlertRatio: opts.AlertRatio,
		PerMatchTA: se.base.perMatchCost(),
		Clock:      opts.Clock,
	}, onAlert)

	collected := make([]map[kg.NodeID]astar.Match, len(tasks))
	exhausted := make([]bool, len(tasks))
	var wg sync.WaitGroup
	for ti := range tasks {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			t := tasks[ti]
			best := make(map[kg.NodeID]astar.Match)
			ex := t.sr.RunEager(est.Stop, func(m astar.Match) bool {
				m = remapMatch(t.sh, m)
				if old, ok := best[m.End()]; !ok || m.PSS > old.PSS {
					if !ok {
						est.Collected()
						if !quiet {
							s.emit(ProgressEvent{Shard: t.shard + 1, Sub: t.sub, Collected: len(best) + 1})
						}
					}
					best[m.End()] = m
				}
				return true
			})
			collected[ti] = best
			exhausted[ti] = ex
			if !quiet {
				s.emit(ProgressEvent{Shard: t.shard + 1, Sub: t.sub, Collected: len(best), Done: true})
			}
		}(ti)
	}
	wg.Wait()

	perSub := make([][]map[kg.NodeID]astar.Match, nsub)
	allExhausted := true
	for ti, t := range tasks { // shard-major: deterministic equal-PSS winner
		perSub[t.sub] = append(perSub[t.sub], collected[ti])
		if !exhausted[ti] {
			allExhausted = false
		}
	}
	streams := make([]ta.Stream, nsub)
	counts := make([]int, nsub)
	for i := range streams {
		ms := merge.BestByEnd(perSub[i]...)
		counts[i] = len(ms)
		streams[i] = &ta.SliceStream{Matches: ms}
	}
	res.Approximate = !allExhausted
	res.Collected = counts
	s.emit(PhaseEvent{Phase: PhaseAssemble, Collected: counts})

	asm := ta.NewAssembler(streams, opts.K)
	var onRound func(int)
	if !quiet {
		onRound = func(r int) {
			lk, umax := asm.Bounds()
			s.emitProvisional(se.base, sp.base.d, asm.Provisional(), lk, umax, r)
		}
	}
	return asm.Run(onRound)
}
