package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"net/http"
	"strconv"
	"sync/atomic"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/query"
	"semkg/internal/serve"
)

// Service counters, exported through expvar (GET /debug/vars). The serving
// layer's own counters (caches, singleflight, admission) are published
// under "semkgd_serve"; see serve.Stats for the fields.
var (
	statSearches     = expvar.NewInt("semkgd_searches_total")
	statStreams      = expvar.NewInt("semkgd_streams_total")
	statStreamEvents = expvar.NewInt("semkgd_stream_events_total")
	statBadRequests  = expvar.NewInt("semkgd_bad_requests_total")
	statOverloaded   = expvar.NewInt("semkgd_overloaded_total")
	statErrors       = expvar.NewInt("semkgd_errors_total")

	// currentServe backs the semkgd_serve expvar; newMux swaps it so
	// httptest servers observe their own serving layer.
	currentServe atomic.Pointer[serve.Engine]
)

func init() {
	expvar.Publish("semkgd_serve", expvar.Func(func() any {
		if s := currentServe.Load(); s != nil {
			return s.Stats()
		}
		return nil
	}))
}

// server routes search traffic onto one serving engine.
type server struct {
	srv *serve.Engine
}

// newMux builds the service's routing table:
//
//	POST /v1/search   batch search, JSON result (429 when shed)
//	POST /v1/stream   streaming search, NDJSON events (429 when shed)
//	GET  /healthz     liveness + graph shape
//	GET  /debug/vars  expvar counters
func newMux(srv *serve.Engine) *http.ServeMux {
	currentServe.Store(srv)
	s := &server{srv: srv}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// decodeRequest parses and validates a search request. A non-nil error has
// already been written to w as a 400.
func (s *server) decodeRequest(w http.ResponseWriter, r *http.Request) (ok bool, q *query.Graph, opts core.Options) {
	g, opts, err := api.DecodeSearchRequest(r.Body)
	if err != nil {
		s.badRequest(w, err)
		return false, nil, opts
	}
	if err := g.Validate(); err != nil {
		s.badRequest(w, err)
		return false, nil, opts
	}
	if err := opts.Validate(); err != nil {
		s.badRequest(w, err)
		return false, nil, opts
	}
	return true, g, opts
}

func (s *server) badRequest(w http.ResponseWriter, err error) {
	statBadRequests.Add(1)
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

// searchError classifies a serving-layer error: caller-caused errors
// (core.BadRequestError) are 400s, admission shedding (OverloadedError) is
// a 429 with a Retry-After header, everything else is a 500.
func (s *server) searchError(w http.ResponseWriter, err error) {
	var bad core.BadRequestError
	if errors.As(err, &bad) {
		s.badRequest(w, err)
		return
	}
	var over *serve.OverloadedError
	if errors.As(err, &over) {
		statOverloaded.Add(1)
		// Retry-After is whole seconds, rounded up so clients never retry
		// before the projected wait has elapsed.
		secs := int64((over.RetryAfter + 999_999_999) / 1_000_000_000)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error":       err.Error(),
			"retry_after": strconv.FormatInt(secs, 10),
		})
		return
	}
	statErrors.Add(1)
	writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	ok, q, opts := s.decodeRequest(w, r)
	if !ok {
		return
	}
	statSearches.Add(1)
	res, err := s.srv.Search(r.Context(), q, opts)
	if err != nil {
		s.searchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ResultFrom(res))
}

func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	ok, q, opts := s.decodeRequest(w, r)
	if !ok {
		return
	}
	statStreams.Add(1)
	// r.Context() makes a dropped client cancel its participation; the
	// underlying pipeline is cancelled only when no other request shares
	// it. Admission shedding surfaces here, before the 200 header.
	st, err := s.srv.Stream(r.Context(), q, opts)
	if err != nil {
		s.searchError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat reverse-proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for ev := range st.Events() {
		line, err := api.EncodeEvent(ev)
		if err != nil {
			statErrors.Add(1)
			continue
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return // client gone; context cancellation winds down the search
		}
		statStreamEvents.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	g := s.srv.Engine().Graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"nodes":      g.NumNodes(),
		"edges":      g.NumEdges(),
		"predicates": g.NumPredicates(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past this point mean the client is gone; the status
	// line is already out, so there is nothing useful left to report.
	_ = json.NewEncoder(w).Encode(v)
}
