// Package semkg is a semantic-guided, response-time-bounded top-k
// similarity search engine for knowledge graphs — a from-scratch Go
// reproduction of Wang et al., "Semantic Guided and Response Times Bounded
// Top-k Similarity Search over Knowledge Graphs" (ICDE 2020).
//
// The engine answers *query graphs* (entities and typed variables connected
// by predicates) over a knowledge graph. Instead of requiring exact
// structural matches, it embeds the graph's predicates (TransE), weights
// knowledge-graph edges by their semantic similarity to the query edges
// (the semantic graph SG_Q), and runs an A* search that returns the top-k
// answers by path semantic similarity — so a query edge "product" also
// finds "assembly" paths, and a 1-hop query edge matches n-hop schemas
// such as manufacturer→company→locationCountry.
//
// # Quick start
//
//	g, _ := semkg.LoadTriples(file)                         // or kg via BuildGraph
//	model, _ := semkg.Train(ctx, g, semkg.TrainConfig{})    // offline, once
//	eng, _ := semkg.NewEngine(g, model, nil)
//	res, _ := eng.Search(ctx, &semkg.Query{
//	    Nodes: []semkg.QueryNode{
//	        {ID: "car", Type: "Automobile"},
//	        {ID: "c", Name: "Germany", Type: "Country"},
//	    },
//	    Edges: []semkg.QueryEdge{{From: "car", To: "c", Predicate: "assembly"}},
//	}, semkg.Options{K: 10})
//
// For interactive use, set Options.TimeBound to get the best approximate
// answers within a response-time budget (Section VI of the paper); the
// result converges to the exact top-k as the budget grows.
package semkg

import (
	"context"
	"io"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/keyword"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/serve"
	"semkg/internal/transform"
)

// Graph is an immutable knowledge graph. Build one with NewGraphBuilder or
// LoadTriples.
type Graph = kg.Graph

// GraphBuilder assembles a Graph.
type GraphBuilder = kg.Builder

// NewGraphBuilder returns an empty builder with capacity hints.
func NewGraphBuilder(nodeHint, edgeHint int) *GraphBuilder {
	return kg.NewBuilder(nodeHint, edgeHint)
}

// LoadTriples parses a graph from the tab-separated triple format
// ("subject\tpredicate\tobject"; the reserved predicate "type" declares an
// entity type, first type wins).
func LoadTriples(r io.Reader) (*Graph, error) { return kg.ReadTriples(r) }

// SaveTriples serializes a graph in the format accepted by LoadTriples.
func SaveTriples(w io.Writer, g *Graph) error { return kg.WriteTriples(w, g) }

// SaveSnapshot serializes a graph in the versioned, checksummed binary
// snapshot format: the built graph with its derived search indexes, which
// LoadSnapshot reads back an order of magnitude faster than LoadTriples
// re-parses (see DESIGN.md, "Storage layer").
func SaveSnapshot(w io.Writer, g *Graph) error { return kg.WriteSnapshot(w, g) }

// LoadSnapshot reads a graph written by SaveSnapshot. Malformed input
// yields typed errors (kg.ErrSnapshotTruncated and friends), never a
// panic.
func LoadSnapshot(r io.Reader) (*Graph, error) { return kg.ReadSnapshot(r) }

// LoadGraph reads a graph in either storage format, sniffing the snapshot
// magic: binary snapshots go through LoadSnapshot, anything else through
// LoadTriples.
func LoadGraph(r io.Reader) (*Graph, error) { return kg.ReadGraph(r) }

// Delta accumulates AddNode/AddEdge/SetType/ApplyTriple mutations against
// an immutable base graph; Commit materializes a new immutable graph with
// only the affected index buckets patched. Mutators return errors (never
// panic), making Delta the construction surface for untrusted input.
type Delta = kg.Delta

// NewDelta opens an empty delta over base. Commit the delta and pass the
// result to a new engine — or hand the delta to Serving.Apply, which
// commits, rebuilds and swaps generations in one step.
func NewDelta(base *Graph) *Delta { return kg.NewDelta(base) }

// Query is a query graph: entities (specific nodes, Name set) and typed
// variables (target nodes, Name empty) connected by predicate edges.
type Query = query.Graph

// QueryNode is one query-graph node.
type QueryNode = query.Node

// QueryEdge is one query-graph edge.
type QueryEdge = query.Edge

// TrainConfig controls the offline TransE embedding.
type TrainConfig = embed.Config

// Model holds trained embeddings; persist with SaveModel/LoadModel.
type Model = embed.Model

// Train learns a TransE embedding of g's predicates and entities (the
// offline phase of the paper's pipeline, Fig. 5).
func Train(ctx context.Context, g *Graph, cfg TrainConfig) (*Model, error) {
	return embed.TrainTransE(ctx, g, cfg)
}

// TrainTransH learns the TransH variant instead (hyperplane projections;
// useful when relations are strongly one-to-many).
func TrainTransH(ctx context.Context, g *Graph, cfg TrainConfig) (*Model, error) {
	return embed.TrainTransH(ctx, g, cfg)
}

// SaveModel writes a model in a compact binary format.
func SaveModel(w io.Writer, m *Model) error { return embed.WriteModel(w, m) }

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return embed.ReadModel(r) }

// Library is a synonym/abbreviation dictionary used to match query node
// names and types against the graph (the paper's transformation library).
type Library = transform.Library

// NewLibrary returns an empty Library.
func NewLibrary() *Library { return transform.NewLibrary() }

// Options configures a search; see the fields of core.Options. The zero
// value means top-10, τ = 0.8, n̂ = 4, minCost pivot, exact (unbounded)
// mode. Options.Validate reports out-of-range values explicitly.
type Options = core.Options

// Answer is one ranked answer with its matched paths and variable bindings.
type Answer = core.Answer

// Result is a search outcome.
type Result = core.Result

// Stream is a running search emitting typed events; see Engine.Stream.
type Stream = core.Stream

// Event is one stream notification; the concrete types are ProgressEvent,
// TopKEvent, PhaseEvent and ResultEvent.
type Event = core.Event

// EventKind discriminates stream events.
type EventKind = core.EventKind

// Stream event kinds.
const (
	KindProgress = core.KindProgress
	KindTopK     = core.KindTopK
	KindPhase    = core.KindPhase
	KindResult   = core.KindResult
)

// ProgressEvent reports per-sub-query search progress.
type ProgressEvent = core.ProgressEvent

// TopKEvent is a provisional top-k snapshot with TA lower/upper bounds.
type TopKEvent = core.TopKEvent

// PhaseEvent marks a pipeline phase transition (search/alert/assemble).
type PhaseEvent = core.PhaseEvent

// ResultEvent is the terminal event carrying the final Result.
type ResultEvent = core.ResultEvent

// Phase names a pipeline stage for PhaseEvent.
type Phase = core.Phase

// Pipeline phases.
const (
	PhaseSearch   = core.PhaseSearch
	PhaseAlert    = core.PhaseAlert
	PhaseAssemble = core.PhaseAssemble
)

// Queryer is the query-execution surface shared by Engine and
// ShardedEngine: Search/Stream, the compile/run split, and the graph and
// cost accessors the serving layer needs. Anything satisfying it can be
// wrapped by NewServing.
type Queryer = core.Queryer

// CompiledPlan is an opaque compiled query returned by
// Queryer.CompileQuery — reusable across runs (any K or time budget) but
// only by the Queryer that produced it.
type CompiledPlan = core.CompiledPlan

// ShardConfig sizes a sharded engine: Shards (default 4) graph
// partitions, a replication Halo in hops (default 4; bounds the servable
// MaxHops — deeper searches fall back to the base engine), and the
// scatter worker pool size (default GOMAXPROCS).
type ShardConfig = core.ShardConfig

// ShardedEngine answers queries by scatter-gather over a partitioned
// knowledge graph: one plan per shard, fanned-out sub-query searches, and
// a bounds-aware top-k merge that preserves the paper's L_k/U_max early
// termination. Results are equivalent to the single engine's (same top-k
// set and scores for SGQ; same time-bound contract for TBQ). Create one
// with NewShardedEngine; it satisfies Queryer, so NewServing and the
// semkgd daemon (-shards) serve it unchanged.
type ShardedEngine = core.ShardedEngine

// ShardedStats is a snapshot of a sharded engine's partition shape
// (per-shard sizes, replication factor) and counters (sharded searches,
// halo fallbacks).
type ShardedStats = core.ShardedStats

// NewShardedEngine builds a base engine from a graph, a trained model and
// an optional library (exactly as NewEngine), then partitions the graph
// per cfg and wraps the engine for scatter-gather execution. The
// partition is deterministic.
func NewShardedEngine(g *Graph, model *Model, lib *Library, cfg ShardConfig) (*ShardedEngine, error) {
	return core.BuildShardedEngine(g, model, lib, cfg)
}

// NewShardedEngineFromSnapshot is NewShardedEngine over a binary graph
// snapshot (SaveSnapshot): the sharded cold-start path.
func NewShardedEngineFromSnapshot(r io.Reader, model *Model, lib *Library, cfg ShardConfig) (*ShardedEngine, error) {
	return core.ShardedEngineFromSnapshot(r, model, lib, cfg)
}

// DistConfig tunes the distributed coordinator: hedge delay (default
// adaptive, 2x the replica's latency EWMA), retries per shard stream
// with capped jittered backoff, and the HTTP client. The zero value
// gives production-ready defaults.
type DistConfig = core.DistConfig

// DistEngine is the scatter-gather coordinator over remote shard server
// processes (semkgd -serve-shard): queries compile once globally against
// the local base engine, each (shard, sub-query) search streams over
// HTTP with hedging and mid-stream failover across replicas, and the
// merged result is equivalent to the single engine's. It satisfies
// Queryer, so NewServing and the semkgd daemon (-shard-hosts) serve it
// unchanged. Create one with NewDistEngine.
type DistEngine = core.DistEngine

// DistStats is a snapshot of the coordinator's partition shape and
// counters (distributed searches, local fallbacks, hedges, retries,
// failovers, shard errors).
type DistStats = core.DistStats

// ShardUnavailableError is returned by a DistEngine search when a shard
// has no live replica left within the retry budget: the search fails
// typed rather than returning a silently partial top-k.
type ShardUnavailableError = core.ShardUnavailableError

// NewDistEngine wraps a base engine over remote shard servers;
// hosts[s] lists the replica base URLs serving shard s. Every replica
// is validated against the base graph at construction, so a stale or
// foreign shard snapshot is rejected instead of producing wrong
// results.
func NewDistEngine(base *Engine, hosts [][]string, cfg DistConfig) (*DistEngine, error) {
	return core.NewDistEngine(base.Engine, hosts, cfg)
}

// Serving is the engine-level serving layer for heavy concurrent traffic:
// an LRU result cache and plan cache, singleflight deduplication of
// concurrent identical requests, and a bounded worker pool with
// deadline-aware admission control. Wrap an engine with NewServing and
// route traffic through Serving.Search/Stream; see the semkgd command for
// the HTTP form.
type Serving = serve.Engine

// ServeConfig sizes the serving layer (caches, workers, queue). The zero
// value gives production-ready defaults.
type ServeConfig = serve.Config

// ServeStats is a snapshot of the serving layer's cache, dedup and
// admission counters.
type ServeStats = serve.Stats

// OverloadedError is returned by a Serving engine when admission control
// sheds a request; RetryAfter is the projected wait until a worker frees
// up (HTTP front ends map it to 429/Retry-After).
type OverloadedError = serve.OverloadedError

// ApplyInfo describes a completed Serving.Apply: mutation counts, the
// committed graph's totals, the new generation and commit/build timings.
type ApplyInfo = serve.ApplyInfo

// ErrStaleDelta is returned by Serving.Apply for a delta whose base graph
// was superseded by a newer generation; re-open the delta with
// Serving.NewDelta and re-apply the mutations.
var ErrStaleDelta = serve.ErrStaleDelta

// ServeStream is a serving-layer event stream: a live pipeline
// subscription, a dedup replay, or a cache replay — identical event
// sequences in all three cases.
type ServeStream = serve.Stream

// BatchItem is one query of a batch handed to Serving.SearchBatch: the
// query graph and its effective options.
type BatchItem = serve.BatchItem

// BatchOutcome is one batch query's result or error, positionally
// aligned with the items passed to Serving.SearchBatch. A batch is
// answer-equivalent to issuing its items separately — the group only
// shares compilation and overlapping sub-query searches, never results
// it shouldn't.
type BatchOutcome = serve.BatchOutcome

// NewServing wraps an engine — single-graph (*Engine) or sharded
// (*ShardedEngine), anything satisfying Queryer — in a serving layer
// sized by cfg. The zero ServeConfig gives production-ready defaults.
// The facade Engine wrapper is unwrapped first: compiled plans carry the
// identity of the engine that produced them (the inner core engine, via
// the promoted CompileQuery), and serving the wrapper itself would make
// every plan-cache identity check miss.
func NewServing(e Queryer, cfg ServeConfig) *Serving {
	if w, ok := e.(*Engine); ok {
		return serve.New(w.Engine, cfg)
	}
	return serve.New(e, cfg)
}

// KeywordFrontend turns bare keywords into ranked answers: it tokenizes
// the input, maps keywords to graph elements through the name indexes,
// assembles candidate query graphs, executes the best candidates
// concurrently through a Serving engine, and blends the per-candidate
// top-k into one entity-deduplicated ranking. Create one with
// NewKeywordFrontend; it also answers autocomplete via Suggest without
// running any search.
type KeywordFrontend = keyword.Frontend

// KeywordConfig tunes keyword-search assembly and execution; the zero
// value gives sensible defaults (3 executed candidates, 2-hop budget,
// result cache on).
type KeywordConfig = keyword.Config

// KeywordResponse is a blended keyword-search outcome: the assembly, the
// executed candidate runs, and the blended answers.
type KeywordResponse = keyword.Response

// KeywordAnswer is one blended answer with its source candidate index.
type KeywordAnswer = keyword.RankedAnswer

// KeywordAssembly is the query-graph-assembly outcome alone: tokens,
// unmatched keywords, and scored candidate queries.
type KeywordAssembly = keyword.Assembly

// KeywordCandidate is one assembled candidate query with its score and
// explanation.
type KeywordCandidate = keyword.Candidate

// KeywordEvent is one event of a streaming keyword search: the assembly,
// a candidate-attributed engine event, or the final blended response.
type KeywordEvent = keyword.Event

// Suggestion is one autocomplete completion for a keyword fragment.
type Suggestion = keyword.Suggestion

// Suggestions is an ordered completion set for one fragment.
type Suggestions = keyword.Suggestions

// NewKeywordFrontend wraps a Serving engine with the keyword front end.
// The zero KeywordConfig gives sensible defaults.
func NewKeywordFrontend(s *Serving, cfg KeywordConfig) *KeywordFrontend {
	return keyword.New(s, cfg)
}

// AssembleKeywords runs query-graph assembly alone — tokenize, match,
// enumerate, score — without executing anything. Useful for inspecting
// what a keyword input would ask.
func AssembleKeywords(g *Graph, input string, cfg KeywordConfig) *KeywordAssembly {
	return keyword.Assemble(g, input, cfg)
}

// Engine answers query graphs over one knowledge graph. Safe for
// concurrent use.
type Engine struct {
	*core.Engine
}

// NewEngine builds an engine from a graph, a trained model, and an
// optional library (nil = identical matching plus heuristic
// abbreviations). Predicates the model has never seen (live ingestion
// after training) get deterministic placeholder vectors.
func NewEngine(g *Graph, model *Model, lib *Library) (*Engine, error) {
	inner, err := core.BuildEngine(g, model, lib)
	if err != nil {
		return nil, err
	}
	return &Engine{inner}, nil
}

// NewEngineFromSnapshot builds an engine directly from a binary graph
// snapshot (SaveSnapshot): the fast cold-start path — the snapshot
// already carries the derived search indexes.
func NewEngineFromSnapshot(r io.Reader, model *Model, lib *Library) (*Engine, error) {
	inner, err := core.EngineFromSnapshot(r, model, lib)
	if err != nil {
		return nil, err
	}
	return &Engine{inner}, nil
}
