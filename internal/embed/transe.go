package embed

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"semkg/internal/kg"
)

// Config controls embedding training.
type Config struct {
	// Dim is the embedding dimension. The paper uses 100; our scaled-down
	// graphs work well with 32-64. Default 50.
	Dim int
	// Epochs is the number of passes over the triple set. The paper uses
	// 50 iterations. Default 50.
	Epochs int
	// LearningRate for SGD. Default 0.05.
	LearningRate float64
	// Margin gamma of the ranking loss. Default 1.0.
	Margin float64
	// Seed makes training deterministic. Default 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 50
	}
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.Margin <= 0 {
		c.Margin = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model holds trained entity and relation embeddings.
type Model struct {
	Entities  []Vector // indexed by kg.NodeID
	Relations []Vector // indexed by kg.PredID
	Cfg       Config
	// Loss per epoch, for convergence inspection and tests.
	EpochLoss []float64
}

// Space returns the predicate semantic space of the model, labelled with
// the graph's predicate names. The graph must have exactly the predicates
// the model was trained on; use SpaceFor when the graph may have grown
// since training (live ingestion).
func (m *Model) Space(g *kg.Graph) (*Space, error) {
	return NewSpace(g.Predicates(), m.Relations)
}

// SpaceFor builds the predicate space for g, tolerating predicates the
// model has never seen: when g carries more predicates than the model
// trained on (entities and relations ingested after the offline embedding
// run), each unknown predicate gets a deterministic pseudo-random unit
// vector derived from its name. Random directions in a high-dimensional
// space are nearly orthogonal to every trained vector, so an unknown
// predicate participates weakly in semantic matching instead of failing
// the engine rebuild; the next offline re-train gives it a learned
// position. A graph with FEWER predicates than the model is still an
// error — that is a graph/model pairing mistake, not growth.
func (m *Model) SpaceFor(g *kg.Graph) (*Space, error) {
	names := g.Predicates()
	if len(names) <= len(m.Relations) {
		return m.Space(g)
	}
	dim := 0
	if len(m.Relations) > 0 {
		dim = len(m.Relations[0])
	} else if m.Cfg.Dim > 0 {
		dim = m.Cfg.Dim
	}
	if dim == 0 {
		return nil, fmt.Errorf("embed: model has no relations and no configured dimension")
	}
	vectors := make([]Vector, len(names))
	copy(vectors, m.Relations)
	for i := len(m.Relations); i < len(names); i++ {
		vectors[i] = seededVector(names[i], dim)
	}
	return NewSpace(names, vectors)
}

// seededVector derives a unit vector from a name, stable across processes
// so a restarted server reproduces the same padded space.
func seededVector(name string, dim int) Vector {
	var h uint64 = 14695981039346656037 // FNV-1a 64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	rng := rand.New(rand.NewSource(int64(h)))
	v := make(Vector, dim)
	for j := range v {
		v[j] = rng.Float64()*2 - 1
	}
	Normalize(v)
	return v
}

// TrainTransE trains a TransE model (Bordes et al., NIPS 2013) on the edges
// of g: it learns vectors such that h + r ≈ t for observed triples
// <h, r, t>, using margin-based ranking loss against corrupted triples and
// SGD. Entity vectors are re-normalized to the unit sphere each epoch, as in
// the original algorithm.
//
// Predicates that connect similar entity distributions converge to nearby
// vectors — the property illustrated by Figure 6 of the paper (assembly ≈
// product, both far from language), which the semantic search exploits.
//
// ctx cancellation stops training early and returns the model learned so
// far together with ctx.Err().
func TrainTransE(ctx context.Context, g *kg.Graph, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	n, p, m := g.NumNodes(), g.NumPredicates(), g.NumEdges()
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("embed: cannot train on empty graph (%d nodes, %d edges)", n, m)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	model := &Model{
		Entities:  randomVectors(rng, n, cfg.Dim),
		Relations: randomVectors(rng, p, cfg.Dim),
		Cfg:       cfg,
	}
	for _, v := range model.Relations {
		Normalize(v)
	}

	order := make([]int, m)
	for i := range order {
		order[i] = i
	}

	grad := make(Vector, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return model, err
		}
		for _, v := range model.Entities {
			Normalize(v)
		}
		rng.Shuffle(m, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for _, ei := range order {
			e := g.EdgeAt(kg.EdgeID(ei))
			h, r, t := int(e.Src), int(e.Pred), int(e.Dst)
			// Corrupt head or tail uniformly.
			ch, ct := h, t
			if rng.Intn(2) == 0 {
				ch = rng.Intn(n)
			} else {
				ct = rng.Intn(n)
			}
			epochLoss += model.sgdStep(h, r, t, ch, ct, grad)
		}
		model.EpochLoss = append(model.EpochLoss, epochLoss/float64(m))
	}
	for _, v := range model.Entities {
		Normalize(v)
	}
	return model, nil
}

// sgdStep applies one margin-ranking SGD update for the positive triple
// (h,r,t) against the corrupted triple (ch,r,ct) and returns the loss.
// Distances are squared Euclidean: d = ||h + r - t||².
func (m *Model) sgdStep(h, r, t, ch, ct int, grad Vector) float64 {
	eh, er, et := m.Entities[h], m.Relations[r], m.Entities[t]
	ech, ect := m.Entities[ch], m.Entities[ct]

	var dPos, dNeg float64
	for i := range grad {
		dp := eh[i] + er[i] - et[i]
		dn := ech[i] + er[i] - ect[i]
		dPos += dp * dp
		dNeg += dn * dn
	}
	loss := m.Cfg.Margin + dPos - dNeg
	if loss <= 0 {
		return 0
	}
	lr := m.Cfg.LearningRate
	for i := range grad {
		gp := 2 * (eh[i] + er[i] - et[i]) // ∂dPos/∂(h,r,-t)
		gn := 2 * (ech[i] + er[i] - ect[i])
		eh[i] -= lr * gp
		et[i] += lr * gp
		er[i] -= lr * (gp - gn)
		ech[i] += lr * gn
		ect[i] -= lr * gn
	}
	return loss
}

func randomVectors(rng *rand.Rand, count, dim int) []Vector {
	// Uniform in [-6/sqrt(dim), 6/sqrt(dim)] as in the TransE paper.
	bound := 6.0 / math.Sqrt(float64(dim))
	out := make([]Vector, count)
	for i := range out {
		v := make(Vector, dim)
		for j := range v {
			v[j] = (rng.Float64()*2 - 1) * bound
		}
		out[i] = v
	}
	return out
}
