package keyword

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"semkg/internal/kg"
	"semkg/internal/query"
)

// Candidate is one assembled, validated, decomposable query graph with its
// assembly score and the factors behind it.
type Candidate struct {
	// Query is the well-formed query doc ready for the Compile/SearchPlan
	// path; Focus is the ID of its focus target node ("t0").
	Query *query.Graph
	Focus string
	// Score is the assembly score: Quality × Coverage² × Structure ×
	// Selectivity (see DESIGN.md, "Query-graph assembly").
	Score float64
	// Quality is the product of the match qualities of the keyword
	// interpretations the candidate consumed.
	Quality float64
	// Coverage is the fraction of input keywords the candidate consumed.
	Coverage float64
	// Structure is the geometric mean of per-edge evidence factors: how
	// strongly the graph supports each assembled connection.
	Structure float64
	// Selectivity rewards candidates anchored on rare elements.
	Selectivity float64
	// Explain is a one-line human-readable account of the assembly.
	Explain string
	// Key is the canonical rendering of Query (dedup and deterministic
	// tie-break).
	Key string
}

// Assembly is the outcome of assembling one keyword input: the tokens
// with their interpretations, the keywords nothing matched, and the
// scored candidate query graphs (best first).
type Assembly struct {
	Input      string
	Tokens     []Token
	Unmatched  []string
	Candidates []Candidate
	Elapsed    time.Duration
}

// Assemble tokenizes input against g, matches every keyword, enumerates
// connection structures joining the matches, and returns the scored,
// deduplicated candidates best-first. Every candidate Validates and
// decomposes; assembly never runs a search.
func Assemble(g *kg.Graph, input string, cfg Config) *Assembly {
	cfg = cfg.withDefaults()
	start := time.Now()
	asm := &Assembly{Input: input, Tokens: Tokenize(g, input)}
	var matched []int
	for i := range asm.Tokens {
		asm.Tokens[i].Interps = matchKeyword(g, asm.Tokens[i].Norm, cfg.MaxInterps)
		if len(asm.Tokens[i].Interps) > 0 {
			matched = append(matched, i)
		} else {
			asm.Unmatched = append(asm.Unmatched, asm.Tokens[i].Raw)
		}
	}
	if len(matched) == 0 || g.NumPredicates() == 0 {
		asm.Elapsed = time.Since(start)
		return asm
	}

	// Enumerate interpretation combinations as a mixed-radix counter over
	// the matched tokens (deterministic order; capped).
	combo := make([]Interp, len(matched))
	idx := make([]int, len(matched))
	byKey := make(map[string]int) // canonical key -> index in cands
	var cands []Candidate
	for tried := 0; tried < cfg.MaxCombos; tried++ {
		for j, ti := range matched {
			combo[j] = asm.Tokens[ti].Interps[idx[j]]
		}
		for _, c := range buildCandidates(g, combo, len(asm.Tokens), cfg) {
			if prev, ok := byKey[c.Key]; ok {
				if c.Score > cands[prev].Score {
					cands[prev] = c
				}
				continue
			}
			byKey[c.Key] = len(cands)
			cands = append(cands, c)
		}
		// Advance the counter; stop when it wraps.
		j := len(matched) - 1
		for ; j >= 0; j-- {
			idx[j]++
			if idx[j] < len(asm.Tokens[matched[j]].Interps) {
				break
			}
			idx[j] = 0
		}
		if j < 0 {
			break
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Key < cands[j].Key
	})
	if len(cands) > cfg.MaxEnumerated {
		cands = cands[:cfg.MaxEnumerated]
	}
	asm.Candidates = cands
	asm.Elapsed = time.Since(start)
	return asm
}

// edgeChoice is one way to attach an element to the focus target: a
// direct edge, or (mid != NoType) a two-hop path through a typed
// intermediate target node.
type edgeChoice struct {
	pred    kg.PredID
	out     bool // orientation majority: element → neighbor
	mid     kg.TypeID
	midPred kg.PredID
	midOut  bool // orientation majority: intermediate → focus
	ev      int  // supporting edge (pairs for two-hop) count in the graph
	usesKw  int  // index of the predicate keyword consumed, or -1
}

// buildCandidates assembles the candidates for one interpretation combo:
// a star around a focus target node (stated type keyword, or inferred
// from the entity neighborhoods), entity attachments of one or two hops,
// and extra type keywords as a chain of further target nodes.
func buildCandidates(g *kg.Graph, combo []Interp, totalTokens int, cfg Config) []Candidate {
	var entities, types, preds []Interp
	for _, it := range combo {
		switch it.Kind {
		case KindEntity:
			entities = append(entities, it)
		case KindType:
			types = append(types, it)
		case KindPredicate:
			preds = append(preds, it)
		}
	}
	if len(entities) == 0 {
		return nil
	}

	type focusOpt struct {
		t        kg.TypeID
		interp   *Interp // nil when inferred
		inferred bool
	}
	var focuses []focusOpt
	var chain []Interp
	if len(types) > 0 {
		focuses = []focusOpt{{t: types[0].Type, interp: &types[0]}}
		chain = types[1:]
	} else {
		for _, t := range inferTypes(g, entities, cfg) {
			focuses = append(focuses, focusOpt{t: t, inferred: true})
		}
	}

	var out []Candidate
	for _, f := range focuses {
		options := make([][]edgeChoice, len(entities))
		for i, e := range entities {
			options[i] = attachOptions(g, e, f.t, preds, cfg)
		}
		// Chain variants: extra type keywords as a path of target nodes
		// hanging off the focus, plus a chainless fallback (extra types
		// dropped, paying coverage) in case the chained graph does not
		// decompose.
		chains := [][]Interp{chain}
		if len(chain) > 0 {
			chains = append(chains, nil)
		}
		// Cross product of per-entity attachment options, capped.
		pick := make([]int, len(entities))
		for variants := 0; variants < 8; variants++ {
			choices := make([]edgeChoice, len(entities))
			used := make(map[int]bool)
			doubleKw := false
			for i := range entities {
				c := options[i][pick[i]]
				if c.usesKw >= 0 {
					if used[c.usesKw] {
						doubleKw = true
					}
					used[c.usesKw] = true
				}
				choices[i] = c
			}
			if !doubleKw {
				for _, ch := range chains {
					if c, ok := buildOne(g, entities, f.interp, f.t, f.inferred, ch, preds, choices, totalTokens, cfg); ok {
						out = append(out, c)
					}
				}
			}
			j := len(entities) - 1
			for ; j >= 0; j-- {
				pick[j]++
				if pick[j] < len(options[j]) {
					break
				}
				pick[j] = 0
			}
			if j < 0 {
				break
			}
		}
	}
	return out
}

// buildOne materializes and scores a single candidate. ok is false when
// the graph fails validation or decomposition.
func buildOne(g *kg.Graph, entities []Interp, focusInterp *Interp, focus kg.TypeID, inferred bool, chain []Interp, preds []Interp, choices []edgeChoice, totalTokens int, cfg Config) (Candidate, bool) {
	focusName := g.TypeName(focus)
	if focusName == "" {
		return Candidate{}, false
	}
	q := &query.Graph{Nodes: []query.Node{{ID: "t0", Type: focusName}}}
	var evs []float64
	var expl []string
	for i, e := range entities {
		eid := fmt.Sprintf("e%d", i+1)
		q.Nodes = append(q.Nodes, query.Node{ID: eid, Name: e.Name})
		c := choices[i]
		if c.mid == kg.NoType {
			q.Edges = append(q.Edges, orient(eid, "t0", g.PredName(c.pred), c.out))
			evs = append(evs, evFactor(c.ev))
			expl = append(expl, fmt.Sprintf("%s -[%s]- ?%s (ev %d)", e.Name, g.PredName(c.pred), focusName, c.ev))
		} else {
			mid := fmt.Sprintf("m%d", i+1)
			q.Nodes = append(q.Nodes, query.Node{ID: mid, Type: g.TypeName(c.mid)})
			q.Edges = append(q.Edges, orient(eid, mid, g.PredName(c.pred), c.out))
			q.Edges = append(q.Edges, orient(mid, "t0", g.PredName(c.midPred), c.midOut))
			// One evidence observation supports both hops; the extra hop
			// pays a mild discount so direct attachments win ties.
			evs = append(evs, 0.9*evFactor(c.ev))
			expl = append(expl, fmt.Sprintf("%s -[%s]- ?%s -[%s]- ?%s (ev %d)", e.Name, g.PredName(c.pred), g.TypeName(c.mid), g.PredName(c.midPred), focusName, c.ev))
		}
	}
	prev, prevType := "t0", focus
	for i, t := range chain {
		cid := fmt.Sprintf("c%d", i+1)
		q.Nodes = append(q.Nodes, query.Node{ID: cid, Type: t.Name})
		link := typeLink(g, prevType, t.Type, cfg)
		q.Edges = append(q.Edges, orient(prev, cid, g.PredName(link.pred), link.out))
		evs = append(evs, evFactor(link.ev))
		expl = append(expl, fmt.Sprintf("?%s -[%s]- ?%s (ev %d)", g.TypeName(prevType), g.PredName(link.pred), t.Name, link.ev))
		prev, prevType = cid, t.Type
	}
	if err := q.Validate(); err != nil {
		return Candidate{}, false
	}
	if _, err := query.Decompose(q, query.Options{}); err != nil {
		return Candidate{}, false
	}

	// Score.
	quality, sel := 1.0, 1.0
	usedTokens := len(entities) + len(chain)
	for _, e := range entities {
		quality *= e.Quality
		sel *= 1 / (1 + math.Log2(1+float64(e.Count)))
	}
	if focusInterp != nil {
		quality *= focusInterp.Quality
		usedTokens++
	}
	sel *= 1 / (1 + 0.25*math.Log2(1+float64(len(g.NodesOfType(focus)))))
	for _, t := range chain {
		quality *= t.Quality
		sel *= 1 / (1 + 0.25*math.Log2(1+float64(t.Count)))
	}
	for _, c := range choices {
		if c.usesKw >= 0 {
			quality *= preds[c.usesKw].Quality
			usedTokens++
		}
	}
	structure := geoMean(evs)
	coverage := float64(usedTokens) / float64(totalTokens)
	score := quality * coverage * coverage * structure * sel
	if inferred {
		score *= 0.9
	}
	focusLabel := "?" + focusName
	if inferred {
		focusLabel += " (inferred)"
	}
	return Candidate{
		Query:       q,
		Focus:       "t0",
		Score:       score,
		Quality:     quality,
		Coverage:    coverage,
		Structure:   structure,
		Selectivity: sel,
		Explain:     fmt.Sprintf("focus %s; %s", focusLabel, strings.Join(expl, "; ")),
		Key:         canonKey(q),
	}, true
}

// orient renders a query edge between a and b in the evidence's majority
// direction (out = the edge leaves a).
func orient(a, b, pred string, out bool) query.Edge {
	if out {
		return query.Edge{From: a, To: b, Predicate: pred}
	}
	return query.Edge{From: b, To: a, Predicate: pred}
}

// evFactor maps a supporting-edge count to a (0,1) structure factor. Zero
// evidence (a connection the graph never exhibits) is strongly but not
// infinitely penalized — the user may know an edge the sampler missed.
func evFactor(ev int) float64 {
	if ev <= 0 {
		return 0.05
	}
	return float64(ev) / float64(ev+1)
}

func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	p := 1.0
	for _, x := range xs {
		p *= x
	}
	return math.Pow(p, 1/float64(len(xs)))
}

// inferTypes guesses focus types for a type-less keyword set: the most
// common neighbor types (one hop, then two if one hop finds nothing) of
// the matched entity nodes, best three, deterministically ordered.
func inferTypes(g *kg.Graph, entities []Interp, cfg Config) []kg.TypeID {
	counts := make(map[kg.TypeID]int)
	tally := func(hops int) {
		for _, e := range entities {
			nodes := e.Nodes
			if len(nodes) > cfg.EvidenceNodes {
				nodes = nodes[:cfg.EvidenceNodes]
			}
			for _, u := range nodes {
				for i, h := range g.Neighbors(u) {
					if i >= cfg.EvidenceScan {
						break
					}
					if t := g.NodeType(h.Neighbor); t != kg.NoType {
						counts[t]++
					}
					if hops < 2 {
						continue
					}
					for j, h2 := range g.Neighbors(h.Neighbor) {
						if j >= evidenceInner {
							break
						}
						if t := g.NodeType(h2.Neighbor); t != kg.NoType {
							counts[t]++
						}
					}
				}
			}
		}
	}
	tally(1)
	if len(counts) == 0 && cfg.HopBudget >= 2 {
		tally(2)
	}
	type tc struct {
		t kg.TypeID
		n int
	}
	ranked := make([]tc, 0, len(counts))
	for t, n := range counts {
		ranked = append(ranked, tc{t, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].t < ranked[j].t
	})
	if len(ranked) > 3 {
		ranked = ranked[:3]
	}
	out := make([]kg.TypeID, len(ranked))
	for i, r := range ranked {
		out[i] = r.t
	}
	return out
}

// evidenceInner caps the second-hop fan-out per first-hop neighbor during
// evidence gathering, bounding the two-hop scan independently of hub
// degrees.
const evidenceInner = 32

// attachOptions enumerates ways to connect one matched entity to the
// focus type: the best-evidenced direct edge, direct edges through the
// user's predicate keywords, the best-evidenced two-hop path through a
// typed intermediate, and a zero-evidence fallback so an option always
// exists. At most four options, deterministically ordered.
func attachOptions(g *kg.Graph, ent Interp, focus kg.TypeID, preds []Interp, cfg Config) []edgeChoice {
	nodes := ent.Nodes
	if len(nodes) > cfg.EvidenceNodes {
		nodes = nodes[:cfg.EvidenceNodes]
	}
	type dirEv struct{ ev, outVotes int }
	direct := make(map[kg.PredID]*dirEv)
	type hop2key struct {
		p1  kg.PredID
		mid kg.TypeID
		p2  kg.PredID
	}
	type hop2ev struct{ ev, outVotes1, outVotes2 int }
	twohop := make(map[hop2key]*hop2ev)
	for _, u := range nodes {
		for i, h := range g.Neighbors(u) {
			if i >= cfg.EvidenceScan {
				break
			}
			if g.NodeType(h.Neighbor) == focus {
				d := direct[h.Pred]
				if d == nil {
					d = &dirEv{}
					direct[h.Pred] = d
				}
				d.ev++
				if h.Out {
					d.outVotes++
				}
			}
			if cfg.HopBudget < 2 {
				continue
			}
			mt := g.NodeType(h.Neighbor)
			if mt == kg.NoType || i >= evidenceInner {
				continue
			}
			for j, h2 := range g.Neighbors(h.Neighbor) {
				if j >= evidenceInner {
					break
				}
				if h2.Neighbor == u || g.NodeType(h2.Neighbor) != focus {
					continue
				}
				k := hop2key{p1: h.Pred, mid: mt, p2: h2.Pred}
				t := twohop[k]
				if t == nil {
					t = &hop2ev{}
					twohop[k] = t
				}
				t.ev++
				if h.Out {
					t.outVotes1++
				}
				if h2.Out {
					t.outVotes2++
				}
			}
		}
	}

	var out []edgeChoice
	add := func(c edgeChoice) {
		for _, have := range out {
			if have.pred == c.pred && have.mid == c.mid && have.midPred == c.midPred && have.usesKw == c.usesKw {
				return
			}
		}
		if len(out) < 4 {
			out = append(out, c)
		}
	}

	// Best direct, by evidence then predicate id.
	dkeys := make([]kg.PredID, 0, len(direct))
	for p := range direct {
		dkeys = append(dkeys, p)
	}
	sort.Slice(dkeys, func(i, j int) bool {
		a, b := dkeys[i], dkeys[j]
		if direct[a].ev != direct[b].ev {
			return direct[a].ev > direct[b].ev
		}
		return a < b
	})
	if len(dkeys) > 0 {
		p := dkeys[0]
		add(edgeChoice{pred: p, out: 2*direct[p].outVotes >= direct[p].ev, mid: kg.NoType, ev: direct[p].ev, usesKw: -1})
	}
	// Direct through each predicate keyword (evidenced or trusted).
	for ki, kw := range preds {
		if d, ok := direct[kw.Pred]; ok {
			add(edgeChoice{pred: kw.Pred, out: 2*d.outVotes >= d.ev, mid: kg.NoType, ev: d.ev, usesKw: ki})
		} else {
			add(edgeChoice{pred: kw.Pred, out: true, mid: kg.NoType, ev: 0, usesKw: ki})
		}
	}
	// Best two-hop, by evidence then key.
	hkeys := make([]hop2key, 0, len(twohop))
	for k := range twohop {
		hkeys = append(hkeys, k)
	}
	sort.Slice(hkeys, func(i, j int) bool {
		a, b := hkeys[i], hkeys[j]
		if twohop[a].ev != twohop[b].ev {
			return twohop[a].ev > twohop[b].ev
		}
		if a.p1 != b.p1 {
			return a.p1 < b.p1
		}
		if a.mid != b.mid {
			return a.mid < b.mid
		}
		return a.p2 < b.p2
	})
	if len(hkeys) > 0 {
		k := hkeys[0]
		t := twohop[k]
		add(edgeChoice{
			pred: k.p1, out: 2*t.outVotes1 >= t.ev,
			mid: k.mid, midPred: k.p2, midOut: 2*t.outVotes2 >= t.ev,
			ev: t.ev, usesKw: -1,
		})
	}
	// Zero-evidence fallback: the entity's most familiar predicate, so the
	// assembler always produces something executable.
	if len(out) == 0 && len(nodes) > 0 {
		if ps := g.NodePreds(nodes[0]); len(ps) > 0 {
			add(edgeChoice{pred: ps[0], out: true, mid: kg.NoType, ev: 0, usesKw: -1})
		}
	}
	if len(out) == 0 {
		add(edgeChoice{pred: 0, out: true, mid: kg.NoType, ev: 0, usesKw: -1})
	}
	return out
}

// typeLink picks the best-evidenced predicate connecting two types, for
// chain links between target nodes. Zero evidence falls back to the
// sampled nodes' most familiar predicate.
func typeLink(g *kg.Graph, from, to kg.TypeID, cfg Config) edgeChoice {
	nodes := g.NodesOfType(from)
	if len(nodes) > cfg.EvidenceNodes {
		nodes = nodes[:cfg.EvidenceNodes]
	}
	type dirEv struct{ ev, outVotes int }
	counts := make(map[kg.PredID]*dirEv)
	for _, u := range nodes {
		for i, h := range g.Neighbors(u) {
			if i >= cfg.EvidenceScan {
				break
			}
			if g.NodeType(h.Neighbor) != to {
				continue
			}
			d := counts[h.Pred]
			if d == nil {
				d = &dirEv{}
				counts[h.Pred] = d
			}
			d.ev++
			if h.Out {
				d.outVotes++
			}
		}
	}
	keys := make([]kg.PredID, 0, len(counts))
	for p := range counts {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if counts[a].ev != counts[b].ev {
			return counts[a].ev > counts[b].ev
		}
		return a < b
	})
	if len(keys) > 0 {
		p := keys[0]
		return edgeChoice{pred: p, out: 2*counts[p].outVotes >= counts[p].ev, mid: kg.NoType, ev: counts[p].ev, usesKw: -1}
	}
	if len(nodes) > 0 {
		if ps := g.NodePreds(nodes[0]); len(ps) > 0 {
			return edgeChoice{pred: ps[0], out: true, mid: kg.NoType, usesKw: -1}
		}
	}
	return edgeChoice{pred: 0, out: true, mid: kg.NoType, usesKw: -1}
}
