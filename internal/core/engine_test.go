package core

import (
	"context"
	"testing"
	"time"

	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/tbq"
	"semkg/internal/transform"
)

// motivatingGraph builds a small DBpedia-like graph around the paper's
// motivating example (Fig. 1/2): cars related to Germany through several
// schemas (direct assembly, assembly via city, manufacturer via company),
// plus distractors (designers, engines, languages).
func motivatingGraph() *kg.Graph {
	b := kg.NewBuilder(64, 128)
	ger := b.AddNode("Germany", "Country")
	france := b.AddNode("France", "Country")
	regensburg := b.AddNode("Regensburg", "City")
	paris := b.AddNode("Paris", "City")
	bmwCo := b.AddNode("BMW_Company", "Company")
	renaultCo := b.AddNode("Renault_Company", "Company")
	german := b.AddNode("German_language", "Language")
	peter := b.AddNode("Peter_Schreyer", "Person")

	b.AddEdge(regensburg, ger, "country")
	b.AddEdge(paris, france, "country")
	b.AddEdge(bmwCo, ger, "locationCountry")
	b.AddEdge(renaultCo, france, "locationCountry")
	b.AddEdge(ger, german, "language")
	b.AddEdge(peter, ger, "nationality")

	// Schema 1: Automobile -assembly-> Germany (direct).
	for _, name := range []string{"BMW_320", "Audi_TT"} {
		u := b.AddNode(name, "Automobile")
		b.AddEdge(u, ger, "assembly")
	}
	// Schema 2: Automobile -assembly-> City -country-> Germany.
	bmwZ4 := b.AddNode("BMW_Z4", "Automobile")
	b.AddEdge(bmwZ4, regensburg, "assembly")
	// Schema 3: Automobile -manufacturer-> Company -locationCountry-> Germany.
	bmwX6 := b.AddNode("BMW_X6", "Automobile")
	b.AddEdge(bmwX6, bmwCo, "manufacturer")
	// French distractors (same schemas, wrong country).
	clio := b.AddNode("Renault_Clio", "Automobile")
	b.AddEdge(clio, france, "assembly")
	megane := b.AddNode("Renault_Megane", "Automobile")
	b.AddEdge(megane, renaultCo, "manufacturer")
	// A car merely *designed* by a German: semantically different.
	kia := b.AddNode("KIA_K5", "Automobile")
	b.AddEdge(kia, peter, "designer")
	return b.Build()
}

// handSpace builds a predicate space encoding the intended semantics:
// assembly/product/manufacturer-ish predicates cluster; designer,
// nationality, language, country sit apart to varying degrees.
func handSpace(t *testing.T, g *kg.Graph) *embed.Space {
	t.Helper()
	vecs := map[string]embed.Vector{
		"assembly":        {1.00, 0.05, 0.02},
		"product":         {0.99, 0.08, 0.03},
		"manufacturer":    {0.95, 0.20, 0.05},
		"country":         {0.90, 0.10, 0.30},
		"locationCountry": {0.90, 0.12, 0.28},
		"designer":        {0.30, 0.90, 0.10},
		"nationality":     {0.35, 0.85, 0.20},
		"language":        {0.05, 0.15, 0.98},
	}
	names := g.Predicates()
	ordered := make([]embed.Vector, len(names))
	for i, n := range names {
		v, ok := vecs[n]
		if !ok {
			t.Fatalf("no hand vector for predicate %q", n)
		}
		ordered[i] = v
	}
	sp, err := embed.NewSpace(names, ordered)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func library() *transform.Library {
	lib := transform.NewLibrary()
	lib.AddSynonyms("Car", "Automobile", "Auto", "Motorcar")
	lib.AddAbbreviation("GER", "Germany")
	return lib
}

func q117(predicate string) *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "Germany", Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: predicate}},
	}
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	g := motivatingGraph()
	e, err := NewEngine(g, handSpace(t, g), library())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// TestSearchQ117 reproduces the paper's running example: the single-edge
// query "cars assembled in Germany" must find answers across multiple
// schemas (direct assembly, assembly-via-city, manufacturer-via-company)
// while excluding French cars and the merely-designed-by-a-German car.
func TestSearchQ117(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Search(context.Background(), q117("assembly"), Options{K: 10, Tau: 0.75, MaxHops: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Entities()
	for _, want := range []string{"BMW_320", "Audi_TT", "BMW_Z4", "BMW_X6"} {
		if !contains(got, want) {
			t.Errorf("missing answer %s (got %v)", want, got)
		}
	}
	for _, bad := range []string{"Renault_Clio", "Renault_Megane", "KIA_K5"} {
		if contains(got, bad) {
			t.Errorf("wrong answer %s returned (got %v)", bad, got)
		}
	}
	// Direct assembly answers must outrank the 2-hop schemas.
	if len(got) < 3 || (got[0] != "BMW_320" && got[0] != "Audi_TT") {
		t.Errorf("direct-schema answers should rank first: %v", got)
	}
	if res.Elapsed <= 0 || len(res.SearchStats) != 1 {
		t.Errorf("missing stats: %+v", res)
	}
}

// TestSearchEdgeMismatch reproduces the G3_Q case of Fig. 1: the query uses
// predicate "product", which no graph edge carries; the semantic space maps
// it to assembly-cluster edges, so answers are still found.
func TestSearchEdgeMismatch(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Search(context.Background(), q117("product"), Options{K: 10, Tau: 0.75, MaxHops: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Entities()
	for _, want := range []string{"BMW_320", "Audi_TT"} {
		if !contains(got, want) {
			t.Errorf("missing %s under product predicate (got %v)", want, got)
		}
	}
}

// TestSearchNodeMismatch reproduces the G1_Q case: the query type <Car>
// matches nothing without the library, and works with it.
func TestSearchNodeMismatch(t *testing.T) {
	g := motivatingGraph()
	sp := handSpace(t, g)

	carQuery := &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Car"},
			{ID: "v2", Name: "Germany", Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: "assembly"}},
	}

	bare, err := NewEngine(g, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bare.Search(context.Background(), carQuery, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("without library, <Car> should match nothing, got %v", res.Entities())
	}

	withLib, err := NewEngine(g, sp, library())
	if err != nil {
		t.Fatal(err)
	}
	res, err = withLib.Search(context.Background(), carQuery, Options{K: 10, Tau: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(res.Entities(), "BMW_320") {
		t.Errorf("with library, <Car> should match Automobile: %v", res.Entities())
	}
}

// TestSearchChainQuery exercises the decomposition-assembly path on a
// 2-sub-query chain: German cars that are assembled in Germany AND
// manufactured by a company located in Germany.
func TestSearchChainQuery(t *testing.T) {
	// Extend the graph with a car matching both branches.
	b := kg.NewBuilder(64, 128)
	ger := b.AddNode("Germany", "Country")
	co := b.AddNode("BMW_Company", "Company")
	both := b.AddNode("BMW_M3", "Automobile")
	only1 := b.AddNode("Audi_TT", "Automobile")
	b.AddEdge(co, ger, "locationCountry")
	b.AddEdge(both, ger, "assembly")
	b.AddEdge(both, co, "manufacturer")
	b.AddEdge(only1, ger, "assembly")
	g := b.Build()

	vecs := map[string]embed.Vector{
		"assembly":        {1, 0.05, 0},
		"manufacturer":    {0.95, 0.2, 0},
		"locationCountry": {0.9, 0.12, 0.28},
	}
	names := g.Predicates()
	ordered := make([]embed.Vector, len(names))
	for i, n := range names {
		ordered[i] = vecs[n]
	}
	sp, err := embed.NewSpace(names, ordered)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, sp, nil)
	if err != nil {
		t.Fatal(err)
	}

	q := &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "Germany", Type: "Country"},
			{ID: "v3", Type: "Company"},
		},
		Edges: []query.Edge{
			{From: "v1", To: "v2", Predicate: "assembly"},
			{From: "v1", To: "v3", Predicate: "manufacturer"},
		},
	}
	res, err := e.Search(context.Background(), q, Options{K: 5, Tau: 0.5, MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Only BMW_M3 satisfies both branches: Audi_TT has no manufacturer
	// edge and cannot complete the path to a Company. The decomposition is
	// free to pick either target as the pivot, so assert on the v1
	// binding, not the pivot entity.
	if got := res.EntitiesOf("v1"); len(got) != 1 || got[0] != "BMW_M3" {
		t.Fatalf("v1 bindings = %v, want [BMW_M3]", got)
	}
	if len(res.Answers) == 0 || len(res.Answers[0].Bindings) < 3 {
		t.Fatalf("answer bindings incomplete: %+v", res.Answers)
	}
	if res.Answers[0].Bindings["v2"] != "Germany" {
		t.Errorf("v2 binding = %q, want Germany", res.Answers[0].Bindings["v2"])
	}
}

func TestSearchTimeBounded(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Search(context.Background(), q117("assembly"), Options{
		K: 10, Tau: 0.75, MaxHops: 4,
		TimeBound: 5 * time.Second,
		Clock:     &tbq.StepClock{Step: 10 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approximate {
		t.Error("ample bound should produce the exact result")
	}
	if !contains(res.Entities(), "BMW_320") {
		t.Errorf("TBQ missing BMW_320: %v", res.Entities())
	}
	if len(res.Collected) != 1 || res.Collected[0] == 0 {
		t.Errorf("Collected = %v", res.Collected)
	}

	// Tiny bound: approximate, but never errors.
	res, err = e.Search(context.Background(), q117("assembly"), Options{
		K: 10, Tau: 0.75,
		TimeBound: time.Nanosecond,
		Clock:     &tbq.StepClock{Step: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approximate {
		t.Error("nanosecond bound must be approximate")
	}
}

func TestSearchCancelledContext(t *testing.T) {
	e := newTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.Search(ctx, q117("assembly"), Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Cancellation is anytime behaviour: no error, possibly fewer answers.
	_ = res
}

func TestSearchExplicitPivot(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Search(context.Background(), q117("assembly"), Options{K: 5, PivotNode: "v1", Tau: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decomposition.Pivot != "v1" {
		t.Errorf("pivot = %s, want v1", res.Decomposition.Pivot)
	}
	if _, err := e.Search(context.Background(), q117("assembly"), Options{PivotNode: "bogus"}); err == nil {
		t.Error("bogus pivot should error")
	}
}

func TestSearchInvalidQuery(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Search(context.Background(), &query.Graph{}, Options{}); err == nil {
		t.Error("empty query should error")
	}
}

func TestNewEngineValidation(t *testing.T) {
	g := motivatingGraph()
	if _, err := NewEngine(nil, nil, nil); err == nil {
		t.Error("nil graph should error")
	}
	bad, _ := embed.NewSpace([]string{"x"}, []embed.Vector{{1}})
	if _, err := NewEngine(g, bad, nil); err == nil {
		t.Error("mismatched space should error")
	}
}

func TestAnswerRendering(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Search(context.Background(), q117("assembly"), Options{K: 10, Tau: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		if a.PivotName == "" || a.Score <= 0 {
			t.Errorf("answer missing fields: %+v", a)
		}
		for _, p := range a.Parts {
			if p.PSS <= 0 || len(p.Steps) == 0 {
				t.Errorf("sub-match missing fields: %+v", p)
			}
			for _, s := range p.Steps {
				if s.FromName == "" || s.Predicate == "" || s.ToName == "" {
					t.Errorf("step missing fields: %+v", s)
				}
			}
		}
	}
}

// TestEntitiesOf pins the dedup-in-rank-order contract: duplicates keep
// their first (best-ranked) position, answers without the binding are
// skipped, and an unknown node ID yields nil.
func TestEntitiesOf(t *testing.T) {
	r := &Result{Answers: []Answer{
		{PivotName: "P1", Bindings: map[string]string{"v": "A", "w": "X"}},
		{PivotName: "P2", Bindings: map[string]string{"v": "B"}},
		{PivotName: "P3", Bindings: map[string]string{"w": "Y"}}, // no "v" binding
		{PivotName: "P4", Bindings: map[string]string{"v": "A"}}, // duplicate of rank 1
		{PivotName: "P5", Bindings: map[string]string{"v": "C"}},
	}}
	got := r.EntitiesOf("v")
	want := []string{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("EntitiesOf(v) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EntitiesOf(v) = %v, want %v", got, want)
		}
	}
	if r.EntitiesOf("nope") != nil {
		t.Errorf("unknown node should yield nil, got %v", r.EntitiesOf("nope"))
	}
}

// TestBindingsFirstSubQueryWins exercises the documented precedence rule:
// when two sub-queries share a non-pivot query node but their matched
// paths pass through different entities, the first sub-query's assignment
// wins (consistency is only enforced at the pivot, as in the paper).
func TestBindingsFirstSubQueryWins(t *testing.T) {
	// Two anchors reach the same pivot entity P1 through *different*
	// middle entities: s1 -p-> M1 -q-> P1 and s2 -p-> M2 -q-> P1. The
	// query shares one middle target node "mid" between both sub-queries.
	b := kg.NewBuilder(16, 16)
	a1 := b.AddNode("Anchor1", "A")
	a2 := b.AddNode("Anchor2", "A")
	m1 := b.AddNode("M1", "M")
	m2 := b.AddNode("M2", "M")
	p1 := b.AddNode("P1", "P")
	b.AddEdge(a1, m1, "p")
	b.AddEdge(a2, m2, "p")
	b.AddEdge(m1, p1, "q")
	b.AddEdge(m2, p1, "q")
	g := b.Build()

	names := g.Predicates()
	vecs := make([]embed.Vector, len(names))
	for i, n := range names {
		switch n {
		case "p":
			vecs[i] = embed.Vector{1, 0, 0}
		case "q":
			vecs[i] = embed.Vector{0, 1, 0}
		}
	}
	sp, err := embed.NewSpace(names, vecs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, sp, nil)
	if err != nil {
		t.Fatal(err)
	}

	q := &query.Graph{
		Nodes: []query.Node{
			{ID: "s1", Name: "Anchor1", Type: "A"},
			{ID: "s2", Name: "Anchor2", Type: "A"},
			{ID: "mid", Type: "M"},
			{ID: "piv", Type: "P"},
		},
		Edges: []query.Edge{
			{From: "s1", To: "mid", Predicate: "p"},
			{From: "s2", To: "mid", Predicate: "p"},
			{From: "mid", To: "piv", Predicate: "q"},
		},
	}
	res, err := e.Search(context.Background(), q, Options{K: 3, Tau: 0.5, MaxHops: 2, PivotNode: "piv"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %+v, want exactly one (P1)", res.Answers)
	}
	a := res.Answers[0]
	if a.PivotName != "P1" {
		t.Fatalf("pivot = %q, want P1", a.PivotName)
	}
	if len(a.Parts) != 2 {
		t.Fatalf("parts = %d, want 2 sub-queries", len(a.Parts))
	}
	// The sub-queries genuinely disagree: sub 1 (from s1) runs through M1,
	// sub 2 (from s2) through M2.
	through := func(part SubMatch, name string) bool {
		for _, s := range part.Steps {
			if s.FromName == name || s.ToName == name {
				return true
			}
		}
		return false
	}
	if !through(a.Parts[0], "M1") || !through(a.Parts[1], "M2") {
		t.Fatalf("expected sub 1 via M1 and sub 2 via M2, got %+v", a.Parts)
	}
	// First sub-query wins the shared "mid" binding.
	if a.Bindings["mid"] != "M1" {
		t.Errorf(`Bindings["mid"] = %q, want "M1" (first sub-query wins)`, a.Bindings["mid"])
	}
	if a.Bindings["s1"] != "Anchor1" || a.Bindings["s2"] != "Anchor2" || a.Bindings["piv"] != "P1" {
		t.Errorf("bindings incomplete: %+v", a.Bindings)
	}
}

// TestEndToEndWithTransE runs the full offline+online pipeline: train a
// real TransE embedding on the graph, then query through it.
func TestEndToEndWithTransE(t *testing.T) {
	g := motivatingGraph()
	model, err := embed.TrainTransE(context.Background(), g, embed.Config{Dim: 32, Epochs: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := model.Space(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, sp, library())
	if err != nil {
		t.Fatal(err)
	}
	// Learned similarities are noisier than hand vectors: relax τ.
	res, err := e.Search(context.Background(), q117("assembly"), Options{K: 10, Tau: 0.3, MaxHops: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Entities()
	if !contains(got, "BMW_320") || !contains(got, "Audi_TT") {
		t.Errorf("TransE pipeline missing direct answers: %v", got)
	}
}
