package kg

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// eqSlices compares two slices treating nil and empty as equal (decoded
// graphs allocate exact-length slices, built graphs may hold nil).
func eqSlices[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqIDTable(a, b map[string][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if !eqSlices(av, b[k]) {
			return false
		}
	}
	return true
}

// assertGraphsIdentical requires got to be structurally indistinguishable
// from want: same ids, same CSR layout, same derived indexes. This is the
// strong form of equivalence — searches over the two graphs are
// bit-identical because every array a searcher touches is equal.
func assertGraphsIdentical(t *testing.T, got, want *Graph) {
	t.Helper()
	if !eqSlices(got.names, want.names) {
		t.Errorf("names differ:\n got %v\nwant %v", got.names, want.names)
	}
	if !eqSlices(got.types, want.types) {
		t.Errorf("types differ:\n got %v\nwant %v", got.types, want.types)
	}
	if !eqSlices(got.typeNames, want.typeNames) {
		t.Errorf("typeNames differ:\n got %v\nwant %v", got.typeNames, want.typeNames)
	}
	if !eqSlices(got.predNames, want.predNames) {
		t.Errorf("predNames differ:\n got %v\nwant %v", got.predNames, want.predNames)
	}
	if !eqSlices(got.edges, want.edges) {
		t.Errorf("edges differ:\n got %v\nwant %v", got.edges, want.edges)
	}
	if !eqSlices(got.adjOff, want.adjOff) {
		t.Errorf("adjOff differ:\n got %v\nwant %v", got.adjOff, want.adjOff)
	}
	if !eqSlices(got.halves, want.halves) {
		t.Errorf("halves differ:\n got %v\nwant %v", got.halves, want.halves)
	}
	if !eqSlices(got.predCount, want.predCount) {
		t.Errorf("predCount differ:\n got %v\nwant %v", got.predCount, want.predCount)
	}
	if len(got.byType) != len(want.byType) {
		t.Errorf("byType length %d vs %d", len(got.byType), len(want.byType))
	} else {
		for ti := range want.byType {
			if !eqSlices(got.byType[ti], want.byType[ti]) {
				t.Errorf("byType[%d] differ:\n got %v\nwant %v", ti, got.byType[ti], want.byType[ti])
			}
		}
	}
	if !eqSlices(got.nodePredOff, want.nodePredOff) {
		t.Errorf("nodePredOff differ:\n got %v\nwant %v", got.nodePredOff, want.nodePredOff)
	}
	if !eqSlices(got.nodePreds, want.nodePreds) {
		t.Errorf("nodePreds differ:\n got %v\nwant %v", got.nodePreds, want.nodePreds)
	}
	for k, v := range want.nameIndex {
		if got.nameIndex[k] != v {
			t.Errorf("nameIndex[%q] = %v, want %v", k, got.nameIndex[k], v)
		}
	}
	if len(got.nameIndex) != len(want.nameIndex) {
		t.Errorf("nameIndex size %d vs %d", len(got.nameIndex), len(want.nameIndex))
	}
	assertNameIndexEqual(t, "nameIdx", got.nameIdx, want.nameIdx)
	assertNameIndexEqual(t, "typeIdx", got.typeIdx, want.typeIdx)
}

func assertNameIndexEqual(t *testing.T, label string, got, want nameIndex) {
	t.Helper()
	if !eqIDTable(got.norm, want.norm) {
		t.Errorf("%s.norm differ:\n got %v\nwant %v", label, got.norm, want.norm)
	}
	if !eqIDTable(got.initials, want.initials) {
		t.Errorf("%s.initials differ:\n got %v\nwant %v", label, got.initials, want.initials)
	}
	if !eqSlices(got.sorted, want.sorted) {
		t.Errorf("%s.sorted differ:\n got %v\nwant %v", label, got.sorted, want.sorted)
	}
	if len(got.sortedIDs) != len(want.sortedIDs) {
		t.Errorf("%s.sortedIDs length %d vs %d", label, len(got.sortedIDs), len(want.sortedIDs))
	} else {
		for i := range want.sortedIDs {
			if !eqSlices(got.sortedIDs[i], want.sortedIDs[i]) {
				t.Errorf("%s.sortedIDs[%d] differ", label, i)
			}
		}
	}
}

// randomWorld builds a deterministic pseudo-random graph exercising the
// name indexes: multi-word names (initials), shared prefixes, shared
// normalized forms, untyped nodes, parallel edges and self-loops.
func randomWorld(seed int64, nodes, edges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"United", "Motor", "Works", "Germany", "Auto", "Club", "South", "Plant"}
	types := []string{"Country", "Automobile", "Company", "Person", ""}
	preds := []string{"assembly", "product", "manufacturer", "locationCountry", "designer"}
	b := NewBuilder(nodes, edges)
	ids := make([]NodeID, 0, nodes)
	for i := 0; i < nodes; i++ {
		var name string
		switch rng.Intn(3) {
		case 0: // multi-word, initials-indexable
			name = fmt.Sprintf("%s %s %d", words[rng.Intn(len(words))], words[rng.Intn(len(words))], i)
		case 1: // shared prefix family
			name = fmt.Sprintf("%s_%d", words[rng.Intn(len(words))], i)
		default:
			name = fmt.Sprintf("entity%d", i)
		}
		ids = append(ids, b.AddNode(name, types[rng.Intn(len(types))]))
	}
	for i := 0; i < edges; i++ {
		s := ids[rng.Intn(len(ids))]
		d := ids[rng.Intn(len(ids))]
		b.AddEdge(s, d, preds[rng.Intn(len(preds))])
	}
	return b.Build()
}

func snapshotBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		figure2Graph(),
		randomWorld(7, 200, 600),
		randomWorld(21, 50, 0), // nodes only, no edges
	} {
		g2, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, g)))
		if err != nil {
			t.Fatal(err)
		}
		assertGraphsIdentical(t, g2, g)
	}
}

func TestSnapshotEmptyGraphRoundTrip(t *testing.T) {
	g := NewBuilder(0, 0).Build()
	g2, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, g)))
	if err != nil {
		t.Fatalf("empty graph snapshot: %v", err)
	}
	if g2.NumNodes() != 0 || g2.NumEdges() != 0 {
		t.Fatalf("empty graph came back with %d nodes, %d edges", g2.NumNodes(), g2.NumEdges())
	}
	assertGraphsIdentical(t, g2, g)
}

// TestSnapshotDeterministic: identical graphs serialize to identical bytes
// (the index tables are written in sorted order, not map order).
func TestSnapshotDeterministic(t *testing.T) {
	g := randomWorld(3, 120, 400)
	a := snapshotBytes(t, g)
	b := snapshotBytes(t, g)
	if !bytes.Equal(a, b) {
		t.Fatal("two WriteSnapshot runs of the same graph differ")
	}
}

// isSnapshotError reports whether err belongs to the typed snapshot error
// family.
func isSnapshotError(err error) bool {
	for _, sentinel := range []error{
		ErrSnapshotMagic, ErrSnapshotVersion, ErrSnapshotTruncated,
		ErrSnapshotChecksum, ErrSnapshotCorrupt,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

func TestSnapshotTypedErrors(t *testing.T) {
	valid := snapshotBytes(t, figure2Graph())

	t.Run("empty input", func(t *testing.T) {
		_, err := ReadSnapshot(bytes.NewReader(nil))
		if !errors.Is(err, ErrSnapshotTruncated) {
			t.Fatalf("err = %v, want ErrSnapshotTruncated", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOTAGRPH"), valid[8:]...)
		if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotMagic) {
			t.Fatalf("err = %v, want ErrSnapshotMagic", err)
		}
		if _, err := ReadSnapshot(strings.NewReader("subject\tpred\tobject\n")); !errors.Is(err, ErrSnapshotMagic) {
			t.Fatalf("TSV input: err = %v, want ErrSnapshotMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[8] = 99
		if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("err = %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("flipped checksum byte", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(bad)-1] ^= 0x5a
		if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotChecksum) {
			t.Fatalf("err = %v, want ErrSnapshotChecksum", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(bad)/2] ^= 0x5a
		if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotChecksum) {
			t.Fatalf("err = %v, want ErrSnapshotChecksum", err)
		}
	})
	t.Run("every truncation point", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			_, err := ReadSnapshot(bytes.NewReader(valid[:cut]))
			if err == nil {
				t.Fatalf("truncation at %d of %d accepted", cut, len(valid))
			}
			if !isSnapshotError(err) {
				t.Fatalf("truncation at %d: untyped error %v", cut, err)
			}
		}
	})
	t.Run("corrupt with valid checksum", func(t *testing.T) {
		// A structurally broken payload behind a correct CRC must fail
		// decoding, not panic: point an edge at a node out of range.
		g := figure2Graph()
		mutated := *g
		mutated.edges = append([]Edge(nil), g.edges...)
		mutated.edges[0].Dst = NodeID(g.NumNodes() + 5)
		data := snapshotBytes(t, &mutated)
		if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("adjacency spans inconsistent with degrees", func(t *testing.T) {
		// Monotone offsets with the right total but the wrong per-node
		// spans would drive the halves-threading cursor out of range; the
		// decoder must reject them instead of panicking.
		g := figure2Graph()
		mutated := *g
		mutated.adjOff = append([]int32(nil), g.adjOff...)
		shifted := false
		for u := 0; u+1 < len(mutated.adjOff)-1 && !shifted; u++ {
			if mutated.adjOff[u+1]+1 <= mutated.adjOff[u+2] {
				mutated.adjOff[u+1]++ // steal one slot from u+1, give it to u
				shifted = true
			}
		}
		if !shifted {
			t.Fatal("could not construct a monotone-but-wrong offset array")
		}
		data := snapshotBytes(t, &mutated)
		if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("index id out of range", func(t *testing.T) {
		// Index ids are dereferenced at query time; a crafted id past the
		// vocabulary must fail the load, not a later search.
		g := figure2Graph()
		mutated := *g
		mutated.nameIdx.sortedIDs = append([][]int32(nil), g.nameIdx.sortedIDs...)
		mutated.nameIdx.sortedIDs[0] = []int32{int32(g.NumNodes()) + 7}
		data := snapshotBytes(t, &mutated)
		if _, err := ReadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
}

// TestReadGraphAutoDetect: ReadGraph dispatches on the magic bytes.
func TestReadGraphAutoDetect(t *testing.T) {
	g := figure2Graph()

	var tsv bytes.Buffer
	if err := WriteTriples(&tsv, g); err != nil {
		t.Fatal(err)
	}
	fromTSV, err := ReadGraph(bytes.NewReader(tsv.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fromTSV.NumEdges() != g.NumEdges() {
		t.Fatalf("TSV via ReadGraph: %d edges, want %d", fromTSV.NumEdges(), g.NumEdges())
	}

	fromSnap, err := ReadGraph(bytes.NewReader(snapshotBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, fromSnap, g)
}
