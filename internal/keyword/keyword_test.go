package keyword

import (
	"context"
	"errors"
	"reflect"
	"slices"
	"sort"
	"testing"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

// testGraph is the motivating-example world with multi-word names, so
// fusion, prefix and initials matching are all exercised: "Bavarian Motor
// Works" abbreviates to "bmw", car names share the "bmw" prefix.
func testGraph(t *testing.T) *kg.Graph {
	t.Helper()
	b := kg.NewBuilder(32, 64)
	ger := b.AddNode("Germany", "Country")
	france := b.AddNode("France", "Country")
	munich := b.AddNode("Munich", "City")
	co := b.AddNode("Bavarian Motor Works", "Company")
	b.AddEdge(munich, ger, "country")
	b.AddEdge(co, ger, "locationCountry")
	for _, name := range []string{"BMW 320", "Audi TT"} {
		b.AddEdge(b.AddNode(name, "Automobile"), ger, "assembly")
	}
	b.AddEdge(b.AddNode("BMW Z4", "Automobile"), munich, "assembly")
	b.AddEdge(b.AddNode("BMW X6", "Automobile"), co, "manufacturer")
	b.AddEdge(b.AddNode("Clio", "Automobile"), france, "assembly")
	return b.Build()
}

var testVecs = map[string]embed.Vector{
	"assembly":        {1.00, 0.05, 0.02},
	"manufacturer":    {0.95, 0.20, 0.05},
	"country":         {0.90, 0.10, 0.30},
	"locationCountry": {0.90, 0.12, 0.28},
}

func buildQueryer(g *kg.Graph) (core.Queryer, error) {
	names := g.Predicates()
	ordered := make([]embed.Vector, len(names))
	for i, n := range names {
		if v, ok := testVecs[n]; ok {
			ordered[i] = v
		} else {
			ordered[i] = embed.Vector{0.30, 0.90, 0.30}
		}
	}
	sp, err := embed.NewSpace(names, ordered)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(g, sp, nil)
}

func testServe(t *testing.T) *serve.Engine {
	t.Helper()
	eng, err := buildQueryer(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	return serve.New(eng, serve.Config{Build: buildQueryer})
}

func testOpts() core.Options { return core.Options{K: 10, Tau: 0.75} }

func TestTokenizeFusesMultiWordNames(t *testing.T) {
	g := testGraph(t)
	toks := Tokenize(g, "bavarian motor works,  Germany")
	if len(toks) != 2 {
		t.Fatalf("tokens = %+v, want 2 (fused name + germany)", toks)
	}
	if toks[0].Norm != "bavarian_motor_works" || toks[0].Raw != "bavarian motor works" {
		t.Fatalf("fused token = %+v", toks[0])
	}
	if toks[1].Norm != "germany" {
		t.Fatalf("second token = %+v", toks[1])
	}
}

func TestMatchKeywordPaths(t *testing.T) {
	g := testGraph(t)
	find := func(norm string, kind Kind, via Via, name string) *Interp {
		for _, it := range matchKeyword(g, norm, 8) {
			if it.Kind == kind && it.Via == via && it.Name == name {
				return &it
			}
		}
		return nil
	}
	if it := find("germany", KindEntity, ViaExact, "Germany"); it == nil || it.Quality != 1 || it.Count != 1 {
		t.Fatalf("exact entity match for %q = %+v", "germany", it)
	}
	if it := find("ger", KindEntity, ViaPrefix, "Germany"); it == nil || it.Quality >= 1 {
		t.Fatalf("prefix match for %q = %+v", "ger", it)
	}
	if it := find("bmw", KindEntity, ViaInitials, "Bavarian Motor Works"); it == nil {
		t.Fatalf("initials match for %q missing: %+v", "bmw", matchKeyword(g, "bmw", 8))
	}
	if it := find("auto", KindType, ViaPrefix, "Automobile"); it == nil {
		t.Fatalf("type prefix match for %q missing", "auto")
	}
	if it := find("assembly", KindPredicate, ViaExact, "assembly"); it == nil || it.Count != 4 {
		t.Fatalf("predicate match = %+v", it)
	}
}

// TestAssembleBestCandidate: the canonical keyword query assembles the
// canonical structured query — a star joining ?Automobile to Germany over
// the assembly predicate, consuming all three keywords.
func TestAssembleBestCandidate(t *testing.T) {
	g := testGraph(t)
	asm := Assemble(g, "automobile assembly germany", Config{})
	if len(asm.Unmatched) != 0 {
		t.Fatalf("unmatched = %v", asm.Unmatched)
	}
	if len(asm.Candidates) == 0 {
		t.Fatal("no candidates assembled")
	}
	best := asm.Candidates[0]
	if err := best.Query.Validate(); err != nil {
		t.Fatalf("best candidate invalid: %v", err)
	}
	if best.Coverage != 1 {
		t.Fatalf("best coverage = %v, want 1 (all keywords consumed); candidate %+v", best.Coverage, best)
	}
	var focus, anchor int
	for _, n := range best.Query.Nodes {
		switch {
		case n.Name == "" && n.Type == "Automobile":
			focus++
		case n.Name == "Germany":
			anchor++
		}
	}
	if focus != 1 || anchor != 1 {
		t.Fatalf("best query = %+v, want one ?Automobile and one Germany", best.Query)
	}
	if len(best.Query.Edges) != 1 || best.Query.Edges[0].Predicate != "assembly" {
		t.Fatalf("best edges = %+v, want single assembly edge", best.Query.Edges)
	}
	for _, c := range asm.Candidates {
		if err := c.Query.Validate(); err != nil {
			t.Fatalf("candidate %q invalid: %v", c.Explain, err)
		}
	}
	// Scores are sorted best-first.
	if !sort.SliceIsSorted(asm.Candidates, func(i, j int) bool {
		return asm.Candidates[i].Score > asm.Candidates[j].Score
	}) && len(asm.Candidates) > 1 {
		t.Fatal("candidates not sorted by score")
	}
}

// TestAssembleInferredFocus: keywords without a type still assemble — the
// focus type is inferred from the entity neighborhood.
func TestAssembleInferredFocus(t *testing.T) {
	g := testGraph(t)
	asm := Assemble(g, "germany", Config{})
	if len(asm.Candidates) == 0 {
		t.Fatal("no candidates for a bare entity keyword")
	}
	for _, c := range asm.Candidates {
		if err := c.Query.Validate(); err != nil {
			t.Fatalf("candidate %q invalid: %v", c.Explain, err)
		}
	}
}

// TestSearchMatchesStructuredEquivalent is the acceptance property test:
// executing exactly one candidate, the blended response carries the
// identical answer set and scores as the structured search of that
// candidate's query through the same serving layer.
func TestSearchMatchesStructuredEquivalent(t *testing.T) {
	srv := testServe(t)
	f := New(srv, Config{})
	ctx := context.Background()

	resp, err := f.Search(ctx, "automobile assembly germany", testOpts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Executed != 1 || len(resp.Answers) == 0 {
		t.Fatalf("executed=%d answers=%d, want 1 executed with answers", resp.Executed, len(resp.Answers))
	}
	structured, err := srv.Search(ctx, resp.Assembly.Candidates[0].Query, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	type es struct {
		entity string
		score  float64
	}
	var got, want []es
	for _, a := range resp.Answers {
		got = append(got, es{a.Entity, a.Answer.Score})
	}
	for _, a := range structured.Answers {
		want = append(want, es{a.PivotName, a.Score})
	}
	byEntity := func(l []es) func(i, j int) bool {
		return func(i, j int) bool { return l[i].entity < l[j].entity }
	}
	sort.Slice(got, byEntity(got))
	sort.Slice(want, byEntity(want))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("keyword answers = %v, structured answers = %v", got, want)
	}
}

// TestBlendedDedupAndDeterminism: with several candidates executing, every
// entity appears at most once and two independent front ends produce the
// identical ranking.
func TestBlendedDedupAndDeterminism(t *testing.T) {
	ctx := context.Background()
	type row struct {
		entity    string
		blended   float64
		candidate int
	}
	run := func() []row {
		f := New(testServe(t), Config{})
		resp, err := f.Search(ctx, "automobile assembly germany", testOpts(), 3)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Executed < 2 {
			t.Fatalf("executed = %d, want >= 2 candidates for a blending test", resp.Executed)
		}
		var rows []row
		for _, a := range resp.Answers {
			rows = append(rows, row{a.Entity, a.Blended, a.Candidate})
		}
		return rows
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("no blended answers")
	}
	seen := make(map[string]bool)
	for _, r := range first {
		if seen[r.entity] {
			t.Fatalf("entity %q appears twice in blended answers", r.entity)
		}
		seen[r.entity] = true
	}
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i, again, first)
		}
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		if first[i].blended != first[j].blended {
			return first[i].blended > first[j].blended
		}
		return first[i].entity < first[j].entity
	}) {
		t.Fatalf("blended answers not in blended order: %v", first)
	}
}

// TestStreamAttribution: the stream opens with the assembly, forwards
// engine events tagged with their candidate index, and closes with a
// blended response equal to the batch path's.
func TestStreamAttribution(t *testing.T) {
	srv := testServe(t)
	f := New(srv, Config{})
	ctx := context.Background()

	batch, err := f.Search(ctx, "automobile assembly germany", testOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := f.Stream(ctx, "automobile assembly germany", testOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for ev := range ch {
		events = append(events, ev)
	}
	if len(events) < 3 {
		t.Fatalf("got %d events, want assembly + engine events + final", len(events))
	}
	if events[0].Assembly == nil || events[0].Candidate != -1 {
		t.Fatalf("first event = %+v, want assembly", events[0])
	}
	final := events[len(events)-1]
	if final.Final == nil || final.Candidate != -1 {
		t.Fatalf("last event = %+v, want final response", final)
	}
	for _, ev := range events[1 : len(events)-1] {
		if ev.Inner == nil {
			t.Fatalf("middle event without inner payload: %+v", ev)
		}
		if ev.Candidate < 0 || ev.Candidate >= final.Final.Executed {
			t.Fatalf("event candidate %d out of range [0,%d)", ev.Candidate, final.Final.Executed)
		}
	}
	var batchEntities, streamEntities []string
	for _, a := range batch.Answers {
		batchEntities = append(batchEntities, a.Entity)
	}
	for _, a := range final.Final.Answers {
		streamEntities = append(streamEntities, a.Entity)
	}
	if !reflect.DeepEqual(batchEntities, streamEntities) {
		t.Fatalf("stream blended %v, batch blended %v", streamEntities, batchEntities)
	}
}

// TestKeywordCacheInvalidatedByIngest is the generation-gating regression
// test: a keyword response cached at generation N must not answer after
// an ingest changes the keyword's match set.
func TestKeywordCacheInvalidatedByIngest(t *testing.T) {
	srv := testServe(t)
	f := New(srv, Config{})
	ctx := context.Background()
	const input = "automobile assembly ger"

	first, err := f.Search(ctx, input, testOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if first.Generation != 0 {
		t.Fatalf("generation = %d, want 0", first.Generation)
	}
	warm, err := f.Search(ctx, input, testOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.CacheHits != 1 || st.Assemblies != 1 {
		t.Fatalf("warm stats = %+v, want the second search served from cache", st)
	}
	if !reflect.DeepEqual(warm, first) {
		t.Fatal("warm response differs from cold")
	}

	// Ingest a new country matched by the "ger" prefix, with its own
	// assembled automobile: the keyword's match set changed.
	d := srv.NewDelta()
	for _, tr := range [][3]string{
		{"Gerolstein", kg.TypePredicate, "Country"},
		{"Opel Astra", kg.TypePredicate, "Automobile"},
		{"Opel Astra", "assembly", "Gerolstein"},
	} {
		if err := d.ApplyTriple(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Apply(d); err != nil {
		t.Fatal(err)
	}

	after, err := f.Search(ctx, input, testOpts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.CacheHits != 1 || st.Assemblies != 2 {
		t.Fatalf("post-ingest stats = %+v, want a fresh assembly (no stale hit)", st)
	}
	if after.Generation != first.Generation+1 {
		t.Fatalf("post-ingest generation = %d, want %d", after.Generation, first.Generation+1)
	}
	var gerNames []string
	for _, tok := range after.Assembly.Tokens {
		if tok.Norm != "ger" {
			continue
		}
		for _, it := range tok.Interps {
			gerNames = append(gerNames, it.Name)
		}
	}
	if !slices.Contains(gerNames, "Gerolstein") {
		t.Fatalf("post-ingest interps for \"ger\" = %v, want Gerolstein matched", gerNames)
	}
}

// TestSuggestAnswersFromIndexes: autocomplete returns completions across
// all three index paths and never runs a search pipeline.
func TestSuggestAnswersFromIndexes(t *testing.T) {
	srv := testServe(t)
	f := New(srv, Config{})

	sug := f.Suggest("ger", 5)
	var texts []string
	for _, s := range sug.Items {
		texts = append(texts, s.Text)
	}
	if !slices.Contains(texts, "Germany") {
		t.Fatalf("suggest(ger) = %v, want Germany", texts)
	}
	if got := f.Suggest("bmw", 10); !suggestHas(got.Items, "Bavarian Motor Works", ViaInitials) {
		t.Fatalf("suggest(bmw) = %+v, want Bavarian Motor Works via initials", got.Items)
	}
	if got := f.Suggest("auto", 5); !suggestHas(got.Items, "Automobile", ViaPrefix) {
		t.Fatalf("suggest(auto) = %+v, want Automobile via prefix", got.Items)
	}
	if got := f.Suggest("assem", 5); !suggestHas(got.Items, "assembly", ViaPrefix) {
		t.Fatalf("suggest(assem) = %+v, want assembly predicate", got.Items)
	}
	if st := srv.Stats(); st.PipelineRuns != 0 {
		t.Fatalf("suggest ran %d search pipelines, want 0", st.PipelineRuns)
	}
	if st := f.Stats(); st.Suggests != 4 {
		t.Fatalf("suggest counter = %d, want 4", st.Suggests)
	}
}

func suggestHas(items []Suggestion, text string, via Via) bool {
	for _, s := range items {
		if s.Text == text && s.Via == via {
			return true
		}
	}
	return false
}

func TestSearchBadRequests(t *testing.T) {
	f := New(testServe(t), Config{})
	ctx := context.Background()
	var bad core.BadRequestError
	if _, err := f.Search(ctx, "   ", testOpts(), 0); !errors.As(err, &bad) {
		t.Fatalf("empty keywords: err = %v, want BadRequestError", err)
	}
	if _, err := f.Search(ctx, "germany", core.Options{K: -1}, 0); !errors.As(err, &bad) {
		t.Fatalf("invalid options: err = %v, want BadRequestError", err)
	}
	if _, err := f.Search(ctx, "germany", testOpts(), -1); !errors.As(err, &bad) {
		t.Fatalf("negative budget: err = %v, want BadRequestError", err)
	}
}

// TestSearchNoCandidates: keywords matching nothing return an empty
// response, not an error — the HTTP layer renders "no interpretation".
func TestSearchNoCandidates(t *testing.T) {
	f := New(testServe(t), Config{})
	resp, err := f.Search(context.Background(), "zzzzz qqqqq", testOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Executed != 0 || len(resp.Answers) != 0 || len(resp.Assembly.Unmatched) != 2 {
		t.Fatalf("resp = %+v, want empty with 2 unmatched", resp)
	}
}
