// Package semgraph materializes the semantic graph SG_Q of the paper
// (Definition 5, Section IV-B) lazily: instead of weighting every edge of
// the knowledge graph up front, a Weighter computes the semantic weight
// w = sim(L_Q(e), L(e')) (Eq. 5) on demand while the A* search explores, and
// caches the per-node maximum adjacent weight m(u_i) used by the heuristic
// pss estimation (Eq. 7).
//
// The per-predicate weight rows w[seg][pred] depend only on the resolved
// query predicate, not on the query as a whole, so an engine-lifetime
// RowCache shares them across concurrent searchers and repeated queries
// instead of recomputing NumPredicates similarities per query edge per
// call (see DESIGN.md, Hot path).
//
// A Weighter is bound to one sub-query graph (its sequence of query-edge
// predicates); create one per sub-query search. It is not safe for
// concurrent use — each search goroutine owns its Weighter. The RowCache
// it draws rows from is safe for concurrent use.
package semgraph

import (
	"fmt"
	"sync"

	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/strutil"
)

// MinWeight is the clamp floor for semantic weights. The pss machinery
// (Lemma 1, Theorem 1) requires weights in (0, 1]; anything at or below
// the floor is semantically unrelated and will be pruned by any
// reasonable τ.
const MinWeight = 1e-6

// weight maps a cosine similarity in [-1, 1] to the edge weight in (0, 1].
// The paper applies Eq. 5 (raw cosine) to a space trained on millions of
// triples, where synonym predicates reach cosines of 0.8-0.98. At
// reproduction scale cosines land lower for the same semantic
// relationships, so we use the standard angular normalization
// (cos+1)/2 — identical ordering, and the τ threshold keeps the paper's
// absolute semantics (τ = 0.8 keeps near-synonyms, prunes unrelated
// predicates). See DESIGN.md (Substitutions).
func weight(cos float64) float64 {
	return clamp((cos + 1) / 2)
}

// row is one cached weight row: the clamped similarity of every graph
// predicate against one resolved query predicate.
type row []float64

func computeRow(g *kg.Graph, space *embed.Space, qp kg.PredID) row {
	n := g.NumPredicates()
	r := make(row, n)
	for p := 0; p < n; p++ {
		r[p] = weight(space.Similarity(int(qp), p))
	}
	return r
}

// RowCache shares weight rows and predicate resolutions across every
// Weighter of one engine. Rows are immutable once computed; the cache is
// safe for concurrent use.
type RowCache struct {
	g     *kg.Graph
	space *embed.Space

	mu       sync.RWMutex
	resolved map[string]kg.PredID
	rows     map[kg.PredID]row
}

// NewRowCache builds an empty cache over g and its predicate space.
func NewRowCache(g *kg.Graph, space *embed.Space) (*RowCache, error) {
	if space.Len() != g.NumPredicates() {
		return nil, fmt.Errorf("semgraph: space has %d predicates, graph has %d", space.Len(), g.NumPredicates())
	}
	return &RowCache{
		g:        g,
		space:    space,
		resolved: make(map[string]kg.PredID),
		rows:     make(map[kg.PredID]row),
	}, nil
}

// Resolve maps a query predicate name to a graph predicate as
// ResolvePredicate does, memoizing the (potentially O(P·|name|))
// string-similarity fallback for mistyped predicates.
func (c *RowCache) Resolve(name string) (kg.PredID, error) {
	c.mu.RLock()
	qp, ok := c.resolved[name]
	c.mu.RUnlock()
	if ok {
		return qp, nil
	}
	qp, err := ResolvePredicate(c.g, name)
	if err != nil {
		return -1, err
	}
	c.mu.Lock()
	c.resolved[name] = qp
	c.mu.Unlock()
	return qp, nil
}

// rowFor returns the (computed-once) weight row of a resolved predicate.
func (c *RowCache) rowFor(qp kg.PredID) row {
	c.mu.RLock()
	r, ok := c.rows[qp]
	c.mu.RUnlock()
	if ok {
		return r
	}
	r = computeRow(c.g, c.space, qp)
	c.mu.Lock()
	// A racing goroutine may have stored the row first; rows for the same
	// predicate are identical, so last-write-wins is fine.
	c.rows[qp] = r
	c.mu.Unlock()
	return r
}

// Weighter computes semantic edge weights for one sub-query graph.
type Weighter struct {
	g *kg.Graph
	// w[seg][pred] is the clamped similarity between the sub-query's
	// seg-th query edge and graph predicate pred. Rows may be shared
	// through a RowCache and must not be mutated.
	w [][]float64
	// Suffix cache: per node u and segment s, the maximum over segments
	// s' >= s of the maximum weight among u's incident edges — the m(u_i)
	// bound of Lemma 1, generalized to multi-edge sub-queries (see
	// DESIGN.md). Suffixes derive from kg.NodePreds (O(distinct
	// predicates), not O(degree)).
	//
	// The cache is paged: pages[u>>slabPageBits], allocated on first touch
	// of any node in the page, holds slabPageLen×segs values. A search
	// visits a vanishing fraction of a million-node graph, so the eager
	// NumNodes×segs slab + NumNodes seen array the engine used to allocate
	// per sub-search (~17 MB per query at 1M nodes, two segments) is
	// replaced by a handful of 64 KB pages. All real suffix values are
	// >= MinWeight > 0, so a zero first entry marks an uncomputed node —
	// no seen array at all.
	pages [][]float64
	// Dense variant: the pre-scale-up eager slab, kept (like
	// astar.LegacySearcher) as the before side of kgbench -exp load's
	// steady-state comparison. Exactly one of slab/pages is in use.
	slab []float64
	seen []bool
}

// NewWeighter builds a Weighter for a sub-query whose query edges carry the
// given predicates, in path order, computing its weight rows from scratch.
// Each query predicate is resolved against the graph's predicate
// vocabulary: exact name match first, then the most string-similar
// predicate (the paper assumes query predicates come from the KG
// vocabulary; the fallback keeps mistyped predicates usable). Engine-driven
// searches share rows through NewWeighterCached instead.
func NewWeighter(g *kg.Graph, space *embed.Space, predicates []string) (*Weighter, error) {
	if space.Len() != g.NumPredicates() {
		return nil, fmt.Errorf("semgraph: space has %d predicates, graph has %d", space.Len(), g.NumPredicates())
	}
	if len(predicates) == 0 {
		return nil, fmt.Errorf("semgraph: sub-query has no predicates")
	}
	wt := newWeighter(g, len(predicates))
	for seg, name := range predicates {
		qp, err := ResolvePredicate(g, name)
		if err != nil {
			return nil, err
		}
		wt.w[seg] = computeRow(g, space, qp)
	}
	return wt, nil
}

// NewWeighterCached builds a Weighter whose weight rows come from (and are
// retained by) the shared cache.
func NewWeighterCached(cache *RowCache, predicates []string) (*Weighter, error) {
	if len(predicates) == 0 {
		return nil, fmt.Errorf("semgraph: sub-query has no predicates")
	}
	wt := newWeighter(cache.g, len(predicates))
	for seg, name := range predicates {
		qp, err := cache.Resolve(name)
		if err != nil {
			return nil, err
		}
		wt.w[seg] = cache.rowFor(qp)
	}
	return wt, nil
}

// Rows returns the shared weight rows for the given query predicates, in
// path order — resolving each predicate (and memoizing the resolution)
// exactly as NewWeighterCached does. The rows are the cache's own and
// must not be mutated. The sharded engine projects these whole-graph rows
// into per-shard predicate spaces, so every shard weights edges with the
// same globally-resolved similarities the single engine uses.
func (c *RowCache) Rows(predicates []string) ([][]float64, error) {
	if len(predicates) == 0 {
		return nil, fmt.Errorf("semgraph: sub-query has no predicates")
	}
	rows := make([][]float64, len(predicates))
	for seg, name := range predicates {
		qp, err := c.Resolve(name)
		if err != nil {
			return nil, err
		}
		rows[seg] = c.rowFor(qp)
	}
	return rows, nil
}

// NewWeighterFromRows builds a Weighter over g from externally supplied
// per-segment weight rows (rows[seg][pred], one entry per predicate of g).
// No predicate resolution happens: the caller fixes the semantics, which
// is how shard graphs reuse the base graph's resolutions and similarity
// rows instead of re-resolving against their truncated vocabularies. The
// rows are shared, not copied, and must not be mutated afterwards.
func NewWeighterFromRows(g *kg.Graph, rows [][]float64) (*Weighter, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("semgraph: sub-query has no predicates")
	}
	wt := newWeighter(g, len(rows))
	for seg, r := range rows {
		if len(r) != g.NumPredicates() {
			return nil, fmt.Errorf("semgraph: row %d covers %d predicates, graph has %d", seg, len(r), g.NumPredicates())
		}
		wt.w[seg] = r
	}
	return wt, nil
}

// Suffix-cache page geometry: slabPageLen nodes per page, so one page of a
// two-segment sub-query is 64 KB — big enough to amortize allocation, small
// enough that sparse visits of a 10M-node graph stay cheap.
const (
	slabPageBits = 12
	slabPageLen  = 1 << slabPageBits
	slabPageMask = slabPageLen - 1
)

func newWeighter(g *kg.Graph, segs int) *Weighter {
	n := g.NumNodes()
	return &Weighter{
		g:     g,
		w:     make([][]float64, segs),
		pages: make([][]float64, (n+slabPageLen-1)/slabPageLen),
	}
}

// NewWeighterFromRowsDense is NewWeighterFromRows with the suffix cache
// eagerly allocated as one NumNodes×segments slab — the allocation
// strategy the engine used before the million-node scale-up. It is kept
// for the before/after rows of kgbench -exp load; new code should use the
// paged NewWeighterFromRows.
func NewWeighterFromRowsDense(g *kg.Graph, rows [][]float64) (*Weighter, error) {
	wt, err := NewWeighterFromRows(g, rows)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	wt.pages = nil
	wt.slab = make([]float64, n*len(rows))
	wt.seen = make([]bool, n)
	return wt, nil
}

// ResolvePredicate maps a query predicate name to a graph predicate:
// exact match, else the most string-similar predicate name.
func ResolvePredicate(g *kg.Graph, name string) (kg.PredID, error) {
	if p := g.PredByName(name); p >= 0 {
		return p, nil
	}
	best, bestSim := kg.PredID(-1), -1.0
	for p := 0; p < g.NumPredicates(); p++ {
		if s := strutil.Similarity(name, g.PredName(kg.PredID(p))); s > bestSim {
			best, bestSim = kg.PredID(p), s
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("semgraph: predicate %q cannot be resolved (empty vocabulary)", name)
	}
	return best, nil
}

// Segments returns the number of query edges the Weighter serves.
func (w *Weighter) Segments() int { return len(w.w) }

// Weight returns the semantic weight of graph predicate p for the seg-th
// query edge, clamped to (0, 1].
func (w *Weighter) Weight(p kg.PredID, seg int) float64 { return w.w[seg][p] }

// NodeMax returns the m(u) bound for a search positioned at node u while
// matching the seg-th query edge: the maximum semantic weight among u's
// incident edges, taken over the current and all later query edges. This
// upper-bounds the weight product of any unexplored path suffix (Lemma 1).
func (w *Weighter) NodeMax(u kg.NodeID, seg int) float64 {
	segs := len(w.w)
	if w.slab != nil { // dense variant (NewWeighterFromRowsDense)
		base := int(u) * segs
		if !w.seen[u] {
			w.computeSuffix(u, w.slab[base:base+segs])
			w.seen[u] = true
		}
		return w.slab[base+seg]
	}
	page := w.pages[u>>slabPageBits]
	if page == nil {
		page = make([]float64, slabPageLen*segs)
		w.pages[u>>slabPageBits] = page
	}
	base := int(u&slabPageMask) * segs
	if page[base] == 0 {
		// Zero means uncomputed: computeSuffix writes values >= MinWeight
		// into every segment slot, so the first slot doubles as the mark.
		w.computeSuffix(u, page[base:base+segs])
	}
	return page[base+seg]
}

func (w *Weighter) computeSuffix(u kg.NodeID, sfx []float64) {
	segs := len(w.w)
	for s := range sfx {
		sfx[s] = MinWeight
	}
	for _, p := range w.g.NodePreds(u) {
		for s := 0; s < segs; s++ {
			if wt := w.w[s][p]; wt > sfx[s] {
				sfx[s] = wt
			}
		}
	}
	// Suffix maximum so that NodeMax(u, s) bounds weights of the current
	// and all later segments.
	for s := segs - 2; s >= 0; s-- {
		if sfx[s+1] > sfx[s] {
			sfx[s] = sfx[s+1]
		}
	}
}

// Row returns the shared weight row of the seg-th query edge, one entry
// per graph predicate. It implements astar.RowProvider, letting searchers
// index the rows in place instead of copying them per search.
func (w *Weighter) Row(seg int) []float64 { return w.w[seg] }

func clamp(x float64) float64 {
	if x < MinWeight {
		return MinWeight
	}
	if x > 1 {
		return 1
	}
	return x
}
