package kg

import (
	"bytes"
	"testing"
)

// rebuildFromStatements replays a canonical dump over an empty graph.
func rebuildFromStatements(t *testing.T, stmts []Statement) *Graph {
	t.Helper()
	d := NewDelta(Empty())
	for i, st := range stmts {
		if err := d.ApplyStatement(st); err != nil {
			t.Fatalf("statement %d (%+v): %v", i, st, err)
		}
	}
	return d.Commit()
}

// TestGraphStatementsRebuildIdentical is the bootstrap-resync property:
// the canonical statement dump of a graph, replayed over an empty graph,
// rebuilds it snapshot-byte identically — same tables, same CSR layout,
// same derived indexes.
func TestGraphStatementsRebuildIdentical(t *testing.T) {
	for _, seed := range []int64{2, 7, 19, 41} {
		g := randomWorld(seed, 80, 220)
		stmts, err := GraphStatements(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := rebuildFromStatements(t, stmts)
		assertGraphsIdentical(t, got, g)
		if !bytes.Equal(snapshotBytes(t, got), snapshotBytes(t, g)) {
			t.Fatalf("seed %d: rebuilt snapshot differs byte-wise", seed)
		}
	}
}

// TestGraphStatementsEmpty: the empty graph dumps to zero statements and
// rebuilds to itself.
func TestGraphStatementsEmpty(t *testing.T) {
	stmts, err := GraphStatements(Empty())
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 0 {
		t.Fatalf("empty graph dumped %d statements", len(stmts))
	}
	got := rebuildFromStatements(t, nil)
	if !bytes.Equal(snapshotBytes(t, got), snapshotBytes(t, Empty())) {
		t.Fatal("empty rebuild differs from empty graph")
	}
}

// TestGraphStatementsOrphanType: a type interned only by a conflicting
// declaration (first type wins, so it owns no nodes) survives the dump:
// the rebuilt graph carries the same type table, including the orphan.
func TestGraphStatementsOrphanType(t *testing.T) {
	g := mustReadTriples(t,
		"A\ttype\tCountry\n"+
			"A\ttype\tGhost\n"+ // conflicting: interns Ghost, assigns nothing
			"A\tborders\tB\n")
	if g.TypeByName("Ghost") == NoType {
		t.Fatal("setup: Ghost was not interned")
	}
	stmts, err := GraphStatements(g)
	if err != nil {
		t.Fatal(err)
	}
	got := rebuildFromStatements(t, stmts)
	assertGraphsIdentical(t, got, g)
	if !bytes.Equal(snapshotBytes(t, got), snapshotBytes(t, g)) {
		t.Fatal("orphan-type rebuild differs byte-wise")
	}
}

// TestDeltaStatementsReplay is the delta-replication property: replaying
// a delta's recorded statement log over a second copy of the same base
// commits to a snapshot-byte-identical graph, across every mutator —
// ApplyTriple streams, typed and untyped AddNode, AddEdge, SetType, and
// intern-only conflicting type declarations.
func TestDeltaStatementsReplay(t *testing.T) {
	base := randomWorld(11, 50, 140)
	base2 := rebuildFromStatements(t, mustGraphStatements(t, base))

	d := NewDelta(base)
	for _, tr := range randomTriples(23, 120) {
		if err := d.ApplyTriple(tr.s, tr.p, tr.o); err != nil {
			t.Fatal(err)
		}
	}
	n1, err := d.AddNode("Replayed Untyped", "")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := d.AddNode("Replayed Typed", "Country")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddEdge(n1, n2, "assembly"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddEdge(n2, NodeID(0), "designer"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SetType("Replayed Untyped", "Person"); err != nil {
		t.Fatal(err)
	}
	// Conflicting re-declaration with a brand-new type name: interns the
	// name, assigns nothing; the replica must intern it too.
	if _, err := d.AddNode("Replayed Typed", "GhostType"); err != nil {
		t.Fatal(err)
	}
	// No-op SetType on an already-typed node: mutates nothing, interns
	// nothing (early return), must not be recorded.
	if changed, err := d.SetType("Replayed Typed", "Country"); err != nil || changed {
		t.Fatalf("SetType no-op: changed=%v err=%v", changed, err)
	}

	stmts := append([]Statement(nil), d.Statements()...)
	got := d.Commit()

	d2 := NewDelta(base2)
	for i, st := range stmts {
		if err := d2.ApplyStatement(st); err != nil {
			t.Fatalf("replay statement %d (%+v): %v", i, st, err)
		}
	}
	want := d2.Commit()
	assertGraphsIdentical(t, got, want)
	if !bytes.Equal(snapshotBytes(t, got), snapshotBytes(t, want)) {
		t.Fatal("replayed delta commit differs byte-wise")
	}
	if got.TypeByName("GhostType") == NoType || want.TypeByName("GhostType") == NoType {
		t.Fatal("conflicting type declaration was not replicated")
	}
}

// TestDeltaRejectsReservedEdgePredicate: an edge named "type" cannot be
// expressed in the replication log and is rejected before anything
// mutates.
func TestDeltaRejectsReservedEdgePredicate(t *testing.T) {
	base := mustReadTriples(t, "A\tborders\tB\n")
	d := NewDelta(base)
	if _, err := d.AddEdge(0, 1, TypePredicate); err == nil {
		t.Fatal("AddEdge accepted the reserved predicate")
	}
	if _, err := d.AddTriple("A", TypePredicate, "B"); err == nil {
		t.Fatal("AddTriple accepted the reserved predicate")
	}
	if !d.Empty() || len(d.Statements()) != 0 {
		t.Fatalf("rejected mutations left state: empty=%v stmts=%d", d.Empty(), len(d.Statements()))
	}
}

func mustGraphStatements(t *testing.T, g *Graph) []Statement {
	t.Helper()
	stmts, err := GraphStatements(g)
	if err != nil {
		t.Fatal(err)
	}
	return stmts
}
