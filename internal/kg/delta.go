package kg

import (
	"fmt"
	"sort"

	"semkg/internal/strutil"
)

// Delta accumulates mutations against an immutable base Graph: new nodes,
// new edges, and type assignments for previously untyped nodes. The base
// is never modified — searchers holding it keep seeing a consistent graph
// — and Commit materializes a new immutable Graph that extends the base's
// id spaces (new nodes, types and predicates are appended after the
// existing ones, so every base id stays valid in the committed graph).
//
// Unlike Builder, whose invalid-input paths panic (programming errors),
// every Delta mutator returns an error: deltas are fed from untrusted
// live-ingestion input (semkgd's /v1/ingest), where a malformed triple
// must reject the request, not crash the server.
//
// Type overwrite rule (see TypePredicate): the first type wins. Typing an
// untyped node succeeds; re-typing an already-typed node is ignored.
//
// A Delta is not safe for concurrent use. Commit may be called once;
// after it the delta is spent and mutators return errors.
type Delta struct {
	base      *Graph
	committed bool

	// New nodes, ids base.NumNodes()+i.
	names     []string
	types     []TypeID
	nameIndex map[string]NodeID

	// New interned type and predicate names, appended after the base's.
	typeNames []string
	typeIndex map[string]TypeID
	predNames []string
	predIndex map[string]PredID

	// retyped holds base nodes whose NoType was resolved by this delta.
	retyped map[NodeID]TypeID

	// New edges, ids base.NumEdges()+i.
	srcs  []NodeID
	dsts  []NodeID
	preds []PredID

	// stmts is the replication log: one Statement per successful mutation
	// (including intern-only no-ops like conflicting type declarations,
	// whose table side effects a replica must reproduce), in application
	// order. See Statements and ApplyStatement.
	stmts []Statement
}

// NewDelta returns an empty delta over base.
func NewDelta(base *Graph) *Delta {
	return &Delta{
		base:      base,
		nameIndex: make(map[string]NodeID),
		typeIndex: make(map[string]TypeID),
		predIndex: make(map[string]PredID),
		retyped:   make(map[NodeID]TypeID),
	}
}

// Base returns the graph this delta mutates. serve.Apply uses it to detect
// deltas built against a superseded generation.
func (d *Delta) Base() *Graph { return d.base }

// Empty reports whether the delta holds no mutations. Newly interned
// type or predicate names count even without a node or edge using them
// (e.g. a conflicting type declaration whose type name is new: the
// retype is ignored, first type wins, but the combined statement stream
// interns the name — an at-once build would too, and commit equivalence
// demands the split build match it).
func (d *Delta) Empty() bool {
	return len(d.names) == 0 && len(d.srcs) == 0 && len(d.retyped) == 0 &&
		len(d.typeNames) == 0 && len(d.predNames) == 0
}

// AddedNodes returns the number of new nodes in the delta.
func (d *Delta) AddedNodes() int { return len(d.names) }

// AddedEdges returns the number of new edges in the delta.
func (d *Delta) AddedEdges() int { return len(d.srcs) }

// Retyped returns the number of base nodes whose unknown type this delta
// resolves.
func (d *Delta) Retyped() int { return len(d.retyped) }

func (d *Delta) spent() error {
	if d.committed {
		return fmt.Errorf("kg: delta already committed")
	}
	return nil
}

// numNodes is the node-id space of base plus delta.
func (d *Delta) numNodes() int { return d.base.NumNodes() + len(d.names) }

// nodeByName resolves a name across base and delta.
func (d *Delta) nodeByName(name string) NodeID {
	if id, ok := d.base.nameIndex[name]; ok {
		return id
	}
	if id, ok := d.nameIndex[name]; ok {
		return id
	}
	return NoNode
}

// typeOf returns the node's type as of this delta (base value overridden
// by a pending retype).
func (d *Delta) typeOf(id NodeID) TypeID {
	if int(id) < d.base.NumNodes() {
		if t, ok := d.retyped[id]; ok {
			return t
		}
		return d.base.types[id]
	}
	return d.types[int(id)-d.base.NumNodes()]
}

func (d *Delta) internType(name string) (TypeID, error) {
	if id := d.base.TypeByName(name); id != NoType {
		return id, nil
	}
	if id, ok := d.typeIndex[name]; ok {
		return id, nil
	}
	if err := ValidLabel(name); err != nil {
		return NoType, fmt.Errorf("type name: %w", err)
	}
	id := TypeID(d.base.NumTypes() + len(d.typeNames))
	d.typeNames = append(d.typeNames, name)
	d.typeIndex[name] = id
	return id, nil
}

func (d *Delta) internPred(name string) (PredID, error) {
	if id := d.base.PredByName(name); id >= 0 {
		return id, nil
	}
	if id, ok := d.predIndex[name]; ok {
		return id, nil
	}
	if err := ValidLabel(name); err != nil {
		return -1, fmt.Errorf("predicate name: %w", err)
	}
	id := PredID(d.base.NumPredicates() + len(d.predNames))
	d.predNames = append(d.predNames, name)
	d.predIndex[name] = id
	return id, nil
}

// AddNode registers a node, with Builder.AddNode's semantics (an empty
// typeName yields NoType; an existing node keeps its id, and its type is
// set only when previously unknown — first type wins).
func (d *Delta) AddNode(name, typeName string) (NodeID, error) {
	if err := d.spent(); err != nil {
		return NoNode, err
	}
	if err := ValidName(name); err != nil {
		return NoNode, err
	}
	t := NoType
	if typeName != "" {
		var err error
		if t, err = d.internType(typeName); err != nil {
			return NoNode, err
		}
	}
	if id := d.nodeByName(name); id != NoNode {
		if t != NoType && d.typeOf(id) == NoType {
			if int(id) < d.base.NumNodes() {
				d.retyped[id] = t
			} else {
				d.types[int(id)-d.base.NumNodes()] = t
			}
		}
		// Record type declarations even when first-type-wins ignores them:
		// the intern of a new type name is a table mutation a replica must
		// reproduce. A bare re-declaration of a known node mutates nothing
		// and is not recorded.
		if typeName != "" {
			d.stmts = append(d.stmts, Statement{S: name, P: TypePredicate, O: typeName})
		}
		return id, nil
	}
	id := NodeID(d.numNodes())
	d.names = append(d.names, name)
	d.types = append(d.types, t)
	d.nameIndex[name] = id
	if typeName != "" {
		d.stmts = append(d.stmts, Statement{S: name, P: TypePredicate, O: typeName})
	} else {
		d.stmts = append(d.stmts, Statement{S: name})
	}
	return id, nil
}

// SetType assigns a type to an existing (base or delta) node, first type
// wins. It reports whether the node's type changed: false means the node
// was already typed (the assignment is ignored) or already had this type.
func (d *Delta) SetType(name, typeName string) (bool, error) {
	if err := d.spent(); err != nil {
		return false, err
	}
	id := d.nodeByName(name)
	if id == NoNode {
		return false, fmt.Errorf("kg: SetType: unknown node %q", name)
	}
	if d.typeOf(id) != NoType {
		return false, nil
	}
	t, err := d.internType(typeName)
	if err != nil {
		return false, err
	}
	if int(id) < d.base.NumNodes() {
		d.retyped[id] = t
	} else {
		d.types[int(id)-d.base.NumNodes()] = t
	}
	d.stmts = append(d.stmts, Statement{S: name, P: TypePredicate, O: typeName})
	return true, nil
}

// AddEdge adds a directed edge src --pred--> dst between existing base or
// delta nodes. The reserved TypePredicate is rejected: an edge named
// "type" could not be distinguished from a type declaration in the
// TSV/ingest convention the replication log is expressed in.
func (d *Delta) AddEdge(src, dst NodeID, predicate string) (EdgeID, error) {
	if err := d.spent(); err != nil {
		return -1, err
	}
	if predicate == TypePredicate {
		return -1, fmt.Errorf("kg: AddEdge: %q is the reserved type-declaration predicate", predicate)
	}
	if n := d.numNodes(); src < 0 || dst < 0 || int(src) >= n || int(dst) >= n {
		return -1, fmt.Errorf("kg: AddEdge with unknown node %d->%d", src, dst)
	}
	p, err := d.internPred(predicate)
	if err != nil {
		return -1, err
	}
	id := EdgeID(d.base.NumEdges() + len(d.srcs))
	d.srcs = append(d.srcs, src)
	d.dsts = append(d.dsts, dst)
	d.preds = append(d.preds, p)
	d.stmts = append(d.stmts, Statement{S: d.nodeName(src), P: predicate, O: d.nodeName(dst)})
	return id, nil
}

// nodeName resolves a base or delta node id to its name (the inverse of
// nodeByName, used to express edges in the replication log).
func (d *Delta) nodeName(id NodeID) string {
	if int(id) < d.base.NumNodes() {
		return d.base.NodeName(id)
	}
	return d.names[int(id)-d.base.NumNodes()]
}

// AddTriple registers both endpoint nodes (untyped unless already known)
// and the connecting edge, mirroring Builder.AddTriple. All three
// components are validated before anything mutates: a rejected triple
// leaves the delta exactly as it was (no phantom endpoint nodes).
func (d *Delta) AddTriple(subject, predicate, object string) (EdgeID, error) {
	if err := d.spent(); err != nil {
		return -1, err
	}
	if err := ValidName(subject); err != nil {
		return -1, err
	}
	if err := ValidName(object); err != nil {
		return -1, err
	}
	if err := ValidLabel(predicate); err != nil {
		return -1, fmt.Errorf("predicate name: %w", err)
	}
	if predicate == TypePredicate {
		return -1, fmt.Errorf("kg: AddTriple: %q is the reserved type-declaration predicate (use ApplyTriple)", predicate)
	}
	s, err := d.AddNode(subject, "")
	if err != nil {
		return -1, err
	}
	o, err := d.AddNode(object, "")
	if err != nil {
		return -1, err
	}
	return d.AddEdge(s, o, predicate)
}

// ApplyTriple applies one triple with the TSV/ingest convention of
// ReadTriples: the reserved predicate "type" assigns the object as the
// subject's entity type (first type wins), anything else adds an edge.
// Feeding a triple stream through ApplyTriple produces the same graph as
// loading it with ReadTriples. A rejected triple mutates nothing.
func (d *Delta) ApplyTriple(subject, predicate, object string) error {
	if predicate == TypePredicate {
		_, err := d.AddNode(subject, object)
		return err
	}
	_, err := d.AddTriple(subject, predicate, object)
	return err
}

// Commit materializes the delta as a new immutable Graph. The base graph
// is untouched; the committed graph extends the base's CSR arrays and
// patches only the affected index buckets — names already indexed are not
// re-normalized, untouched nodes keep their NodePreds span, and per-type
// buckets without additions are shared with the base. The result is
// structurally identical to building the combined triple set from scratch
// (base insertion order, then delta insertion order), so searches over it
// are bit-identical to a full rebuild.
//
// Commit may be called once; it panics on a second call.
func (d *Delta) Commit() *Graph {
	if d.committed {
		panic("kg: Delta.Commit called twice")
	}
	d.committed = true

	b := d.base
	n0, n := b.NumNodes(), d.numNodes()
	m0, m := b.NumEdges(), b.NumEdges()+len(d.srcs)

	g := &Graph{}
	g.names = append(append(make([]string, 0, n), b.names...), d.names...)
	g.types = append(append(make([]TypeID, 0, n), b.types...), d.types...)
	for id, t := range d.retyped {
		g.types[id] = t
	}
	g.nameIndex = make(map[string]NodeID, n)
	for k, v := range b.nameIndex {
		g.nameIndex[k] = v
	}
	for k, v := range d.nameIndex {
		g.nameIndex[k] = v
	}

	g.typeNames = append(append(make([]string, 0, b.NumTypes()+len(d.typeNames)), b.typeNames...), d.typeNames...)
	g.typeIndex = make(map[string]TypeID, len(g.typeNames))
	for k, v := range b.typeIndex {
		g.typeIndex[k] = v
	}
	for k, v := range d.typeIndex {
		g.typeIndex[k] = v
	}
	g.predNames = append(append(make([]string, 0, b.NumPredicates()+len(d.predNames)), b.predNames...), d.predNames...)
	g.predIndex = make(map[string]PredID, len(g.predNames))
	for k, v := range b.predIndex {
		g.predIndex[k] = v
	}
	for k, v := range d.predIndex {
		g.predIndex[k] = v
	}

	g.edges = make([]Edge, m)
	copy(g.edges, b.edges)
	for i := range d.srcs {
		g.edges[m0+i] = Edge{Src: d.srcs[i], Dst: d.dsts[i], Pred: d.preds[i]}
	}

	// Adjacency CSR: per-node base span copied in place, delta halves
	// appended after it (edge ids of the delta are larger than every base
	// id, so per-node order remains global edge-insertion order).
	ddeg := make([]int32, n)
	for i := range d.srcs {
		ddeg[d.srcs[i]]++
		ddeg[d.dsts[i]]++
	}
	g.adjOff = make([]int32, n+1)
	for u := 0; u < n; u++ {
		var bd int32
		if u < n0 {
			bd = b.adjOff[u+1] - b.adjOff[u]
		}
		g.adjOff[u+1] = g.adjOff[u] + bd + ddeg[u]
	}
	g.halves = make([]Half, 2*m)
	cursor := make([]int32, n)
	for u := 0; u < n0; u++ {
		copy(g.halves[g.adjOff[u]:], b.halves[b.adjOff[u]:b.adjOff[u+1]])
		cursor[u] = g.adjOff[u] + (b.adjOff[u+1] - b.adjOff[u])
	}
	for u := n0; u < n; u++ {
		cursor[u] = g.adjOff[u]
	}
	for i := range d.srcs {
		e := EdgeID(m0 + i)
		s, t, p := d.srcs[i], d.dsts[i], d.preds[i]
		g.halves[cursor[s]] = Half{Edge: e, Neighbor: t, Pred: p, Out: true}
		cursor[s]++
		g.halves[cursor[t]] = Half{Edge: e, Neighbor: s, Pred: p, Out: false}
		cursor[t]++
	}

	// Per-type node lists: buckets without additions are shared with the
	// base; patched buckets are re-merged to keep the ascending-NodeID
	// invariant (a retyped base node lands mid-bucket).
	g.byType = make([][]NodeID, len(g.typeNames))
	copy(g.byType, b.byType)
	additions := make(map[TypeID][]NodeID)
	for id, t := range d.retyped {
		additions[t] = append(additions[t], id)
	}
	for i, t := range d.types {
		if t != NoType {
			additions[t] = append(additions[t], NodeID(n0+i))
		}
	}
	for t, add := range additions {
		sort.Slice(add, func(i, j int) bool { return add[i] < add[j] })
		old := g.byType[t]
		merged := make([]NodeID, 0, len(old)+len(add))
		i, j := 0, 0
		for i < len(old) && j < len(add) {
			if old[i] < add[j] {
				merged = append(merged, old[i])
				i++
			} else {
				merged = append(merged, add[j])
				j++
			}
		}
		merged = append(append(merged, old[i:]...), add[j:]...)
		g.byType[t] = merged
	}

	g.predCount = make([]int, len(g.predNames))
	copy(g.predCount, b.predCount)
	for _, p := range d.preds {
		g.predCount[p]++
	}

	// NodePreds CSR: untouched nodes copy their base span verbatim;
	// touched nodes keep the base distinct-predicate prefix and append the
	// predicates first seen among their new halves.
	g.nodePredOff = make([]int32, n+1)
	g.nodePreds = make([]PredID, 0, len(b.nodePreds)+len(d.preds))
	mark := make([]int32, len(g.predNames))
	for i := range mark {
		mark[i] = -1
	}
	for u := 0; u < n; u++ {
		if u < n0 {
			span := b.nodePreds[b.nodePredOff[u]:b.nodePredOff[u+1]]
			if ddeg[u] == 0 {
				g.nodePreds = append(g.nodePreds, span...)
				g.nodePredOff[u+1] = int32(len(g.nodePreds))
				continue
			}
			for _, p := range span {
				mark[p] = int32(u)
				g.nodePreds = append(g.nodePreds, p)
			}
		}
		for _, h := range g.halves[g.adjOff[u+1]-ddeg[u] : g.adjOff[u+1]] {
			if mark[h.Pred] != int32(u) {
				mark[h.Pred] = int32(u)
				g.nodePreds = append(g.nodePreds, h.Pred)
			}
		}
		g.nodePredOff[u+1] = int32(len(g.nodePreds))
	}

	g.nameIdx = extendNameIndex(b.nameIdx, d.names, n0)
	g.typeIdx = extendNameIndex(b.typeIdx, d.typeNames, b.NumTypes())
	return g
}

// appendCopy appends id to a copy of ids: buckets inherited from the base
// index are shared and must never be appended to in place.
func appendCopy(ids []int32, id int32) []int32 {
	out := make([]int32, len(ids), len(ids)+1)
	copy(out, ids)
	return append(out, id)
}

// extendNameIndex derives the committed graph's nameIndex from the base's:
// only the new names are normalized and initial-ized, buckets they land in
// are copy-on-write extended, and the sorted prefix array is merged rather
// than re-sorted. With no new names the base index is shared as-is.
func extendNameIndex(base nameIndex, newNames []string, idBase int) nameIndex {
	if len(newNames) == 0 {
		return base
	}
	ix := nameIndex{
		norm:     make(map[string][]int32, len(base.norm)+len(newNames)),
		initials: make(map[string][]int32, len(base.initials)+len(newNames)),
	}
	for k, v := range base.norm {
		ix.norm[k] = v
	}
	for k, v := range base.initials {
		ix.initials[k] = v
	}
	var added []string // normalized keys not present in the base
	for i, name := range newNames {
		id := int32(idBase + i)
		nrm := strutil.Normalize(name)
		if old, ok := ix.norm[nrm]; ok {
			ix.norm[nrm] = appendCopy(old, id)
		} else {
			ix.norm[nrm] = []int32{id}
			added = append(added, nrm)
		}
		// Mirror buildNameIndex's indexing rule: only initials that
		// strutil.IsAbbreviationOf could accept.
		all, sig := strutil.Initials(nrm)
		if len(all) >= 2 && len(all) < len(nrm) {
			ix.initials[all] = appendCopy(ix.initials[all], id)
		}
		if sig != all && len(sig) >= 2 && len(sig) < len(nrm) {
			ix.initials[sig] = appendCopy(ix.initials[sig], id)
		}
	}
	sort.Strings(added)
	ix.sorted = make([]string, 0, len(base.sorted)+len(added))
	i, j := 0, 0
	for i < len(base.sorted) && j < len(added) {
		if base.sorted[i] < added[j] {
			ix.sorted = append(ix.sorted, base.sorted[i])
			i++
		} else {
			ix.sorted = append(ix.sorted, added[j])
			j++
		}
	}
	ix.sorted = append(append(ix.sorted, base.sorted[i:]...), added[j:]...)
	ix.sortedIDs = make([][]int32, len(ix.sorted))
	for i, k := range ix.sorted {
		ix.sortedIDs[i] = ix.norm[k]
	}
	return ix
}
