// Comparison: the semantic-guided search against the seven baselines of
// the paper's Table I on one generated benchmark, plus the
// effectiveness-vs-k series of Fig. 12 — a compact version of the full
// `kgbench` harness.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"semkg/internal/bench"
	"semkg/internal/datagen"
	"semkg/internal/embed"
)

func main() {
	env, err := bench.New(bench.Config{
		Profile: datagen.DBpediaLike(0.25),
		Embed:   embed.Config{Dim: 48, Epochs: 100, Seed: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %s (embedding trained in %s)\n\n",
		env.Cfg.Profile.Name, env.Dataset.Graph.Stats(), env.TrainTime.Round(1e6))

	fmt.Println(bench.RunTable1(env).Render())

	for _, t := range bench.RunFigure(env, []int{10, 40}).Render() {
		fmt.Println(t)
	}
}
