package kg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzNameRoundTrip is the round-trip property of the storage formats over
// arbitrary names: any statement the mutation API accepts must survive
// WriteTriples → ReadTriples and WriteSnapshot → ReadSnapshot intact, and
// any name the TSV format cannot represent (tabs, newlines, carriage
// returns, leading '#', empty) must be rejected up front — never silently
// corrupted into a file that parses back differently.
//
// It drives the Delta mutators (the error-returning validation surface)
// over an empty base, which exercises the same ValidName gate as Builder
// and ReadTriples.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("Audi TT", "assembly", "Germany", "Automobile")
	f.Add("tab\tname", "p", "o", "")
	f.Add("multi\nline", "p", "o", "T")
	f.Add("#comment", "p", "o", "")
	f.Add("cr\rname", "p", "o", "")
	f.Add("", "", "", "")
	f.Add("United Motor Works", "designCompany", "BMW", "Company")

	empty := NewBuilder(0, 0).Build()
	f.Fuzz(func(t *testing.T, sub, pred, obj, typeName string) {
		d := NewDelta(empty)
		nodeErr := func() error {
			if typeName == "" {
				_, err := d.AddNode(sub, "")
				return err
			}
			_, err := d.AddNode(sub, typeName)
			return err
		}()
		tripleErr := d.ApplyTriple(sub, pred, obj)

		// Node names (subjects and edge objects) follow ValidName;
		// predicates and type names (including the object of a "type"
		// triple) follow the relaxed ValidLabel.
		subOK := ValidName(sub) == nil
		typeOK := typeName == "" || ValidLabel(typeName) == nil
		predOK := ValidLabel(pred) == nil
		objOK := ValidName(obj) == nil
		if pred == TypePredicate {
			objOK = ValidLabel(obj) == nil
		}
		wantNodeOK := subOK && typeOK
		wantTripleOK := subOK && objOK && predOK
		if (nodeErr == nil) != wantNodeOK {
			t.Fatalf("AddNode(%q, %q): err=%v, want success=%v", sub, typeName, nodeErr, wantNodeOK)
		}
		if (tripleErr == nil) != wantTripleOK {
			t.Fatalf("ApplyTriple(%q, %q, %q): err=%v, want success=%v", sub, pred, obj, tripleErr, wantTripleOK)
		}
		if !wantNodeOK || !wantTripleOK {
			return
		}
		g := d.Commit()

		// TSV round trip preserves the graph's content (ids may be
		// permuted: WriteTriples emits type lines first).
		var tsv bytes.Buffer
		if err := WriteTriples(&tsv, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadTriples(bytes.NewReader(tsv.Bytes()))
		if err != nil {
			t.Fatalf("TSV round trip failed to parse: %v\nfile:\n%s", err, tsv.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("TSV round trip: (%d nodes, %d edges) -> (%d, %d)\nfile:\n%s",
				g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges(), tsv.String())
		}
		for u := 0; u < g.NumNodes(); u++ {
			name := g.NodeName(NodeID(u))
			u2 := g2.NodeByName(name)
			if u2 == NoNode {
				t.Fatalf("TSV round trip lost node %q", name)
			}
			if g.TypeName(g.NodeType(NodeID(u))) != g2.TypeName(g2.NodeType(u2)) {
				t.Fatalf("TSV round trip changed the type of %q", name)
			}
			if g.Degree(NodeID(u)) != g2.Degree(u2) {
				t.Fatalf("TSV round trip changed the degree of %q", name)
			}
		}

		// Binary round trip preserves the graph bit-for-bit.
		var snap bytes.Buffer
		if err := WriteSnapshot(&snap, g); err != nil {
			t.Fatal(err)
		}
		g3, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatalf("snapshot round trip: %v", err)
		}
		if g3.NumNodes() != g.NumNodes() || g3.NumEdges() != g.NumEdges() {
			t.Fatalf("snapshot round trip: (%d nodes, %d edges) -> (%d, %d)",
				g.NumNodes(), g.NumEdges(), g3.NumNodes(), g3.NumEdges())
		}
		for u := 0; u < g.NumNodes(); u++ {
			if g.NodeName(NodeID(u)) != g3.NodeName(NodeID(u)) {
				t.Fatalf("snapshot round trip renamed node %d", u)
			}
		}
	})
}

// TestBuilderPanicsOnInvalidName pins the Builder's programmer-error
// contract (Delta is the error-returning surface for untrusted input).
func TestBuilderPanicsOnInvalidName(t *testing.T) {
	for _, bad := range []string{"", "a\tb", "a\nb", "a\rb", "#x"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddNode(%q) did not panic", bad)
				}
			}()
			NewBuilder(1, 1).AddNode(bad, "")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddEdge with invalid predicate did not panic")
			}
		}()
		b := NewBuilder(2, 1)
		b.AddEdge(b.AddNode("a", ""), b.AddNode("b", ""), "bad\tpred")
	}()
}

// TestReadTriplesRejectsCarriageReturn: a field containing '\r' is a line
// error, not a stored name that would corrupt a later WriteTriples.
func TestReadTriplesRejectsCarriageReturn(t *testing.T) {
	if _, err := ReadTriples(strings.NewReader("a\rb\tp\to\n")); err == nil {
		t.Fatal("ReadTriples accepted a carriage return inside a field")
	}
}
