// Command kggen generates a synthetic benchmark knowledge graph and
// writes it in the TSV triple format, the binary snapshot format, or
// both. Two generators are available:
//
//   - the schema-driven worlds (-profile/-scale): the DBpedia/Freebase/
//     YAGO2-like substitutes described in DESIGN.md, with ground-truth
//     benchmark workloads — thousands of entities;
//   - the streaming large worlds (-nodes): power-law degree, zipf type
//     and name distributions at millions of nodes, built straight into
//     graph arrays with no intermediate triple list — the dataset behind
//     kgbench -exp load and the "Running at scale" walkthrough.
//
// Usage:
//
//	kggen -profile dbpedia -scale 0.5 -out graph.tsv
//	kggen -profile dbpedia -scale 0.5 -snapshot graph.snap
//	kggen -profile yago2 -out graph.tsv -snapshot graph.snap
//	kggen -profile dbpedia -names zipf -out graph.tsv
//	kggen -nodes 1000000 -snapshot big.snap
//
// -scale scales the schema-driven world (1.0 ≈ 6k entities) and must be
// positive; -nodes N switches to the streaming large-world generator with
// exactly N nodes, ignoring -profile/-scale/-names. Large worlds should
// be written as snapshots (-snapshot): the TSV form of a million-node
// world parses orders of magnitude slower than a snapshot loads.
//
// -names zipf spells entities with realistic multi-word names (drawn
// deterministically from a zipf-ranked vocabulary) instead of the
// classic Kind_<i> identifiers — the world shape, workloads, and both
// output formats are unchanged. Multi-word names exercise the keyword
// front end's tokenizer, prefix and initials indexes.
//
// A snapshot loads an order of magnitude faster than the TSV form (no
// parse, no index rebuild — see kgbench -exp ingest), so the snapshot is
// the format to hand to semkgd -snapshot for production cold starts; the
// TSV stays the human-readable interchange form. With -snapshot and no
// -out, nothing is written to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"semkg/internal/datagen"
	"semkg/internal/kg"
)

func main() {
	profile := flag.String("profile", "dbpedia", "dataset profile: dbpedia | freebase | yago2")
	scale := flag.Float64("scale", 0.5, "schema-world scale (1.0 ≈ 6k entities; must be > 0)")
	nodes := flag.Int("nodes", 0, "streaming large-world mode: generate exactly N nodes (power-law degree, zipf types/names); overrides -profile/-scale/-names")
	out := flag.String("out", "", "output triple file (default stdout unless -snapshot is set)")
	snapshot := flag.String("snapshot", "", "also write the graph as a binary snapshot to this path")
	names := flag.String("names", "plain", "node naming style: plain (Kind_<i>) | zipf (realistic multi-word names)")
	flag.Parse()

	var g *kg.Graph
	var desc string
	if *nodes > 0 {
		p := datagen.LargeWorld(*nodes)
		g = datagen.GenerateLarge(p)
		desc = p.Name
	} else {
		if *nodes < 0 {
			fmt.Fprintf(os.Stderr, "kggen: -nodes must be positive (got %d)\n", *nodes)
			os.Exit(2)
		}
		if *scale <= 0 {
			fmt.Fprintf(os.Stderr, "kggen: -scale must be > 0 (got %g)\n", *scale)
			os.Exit(2)
		}
		var p datagen.Profile
		switch *profile {
		case "dbpedia":
			p = datagen.DBpediaLike(*scale)
		case "freebase":
			p = datagen.FreebaseLike(*scale)
		case "yago2":
			p = datagen.YAGO2Like(*scale)
		default:
			fmt.Fprintf(os.Stderr, "kggen: unknown profile %q (want dbpedia | freebase | yago2)\n", *profile)
			os.Exit(2)
		}

		switch *names {
		case "plain":
			p.NameStyle = datagen.NameStylePlain
		case "zipf":
			p.NameStyle = datagen.NameStyleZipf
		default:
			fmt.Fprintf(os.Stderr, "kggen: unknown name style %q (want plain | zipf)\n", *names)
			os.Exit(2)
		}

		ds := datagen.Generate(p)
		g = ds.Graph
		desc = fmt.Sprintf("%s (%d benchmark queries)", p.Name,
			len(ds.Simple)+len(ds.Medium)+len(ds.Complex))
	}

	if *snapshot != "" {
		// Atomic (temp + rename): an interrupted run never leaves a
		// truncated snapshot behind.
		if err := kg.WriteSnapshotFile(*snapshot, g); err != nil {
			fmt.Fprintf(os.Stderr, "kggen: writing snapshot: %v\n", err)
			os.Exit(1)
		}
	}
	if *out != "" || *snapshot == "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kggen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := kg.WriteTriples(w, g); err != nil {
			fmt.Fprintf(os.Stderr, "kggen: writing triples: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "kggen: %s %s\n", desc, g.Stats())
}
