package transform_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"semkg/internal/datagen"
	"semkg/internal/kg"
	"semkg/internal/strutil"
	"semkg/internal/transform"
)

// probesFor derives a battery of matching probes from a graph: real names,
// their normalized/uppercased variants, prefixes, initials, near-misses,
// and random junk — everything that exercises the four abbreviation index
// paths plus the library expansion.
func probesFor(g *kg.Graph, names []string, rng *rand.Rand, budget int) []string {
	probes := []string{"", "x", "ab", "ger", "FRG", "no such entity"}
	derive := func(name string) {
		n := strutil.Normalize(name)
		probes = append(probes, name, n)
		if len(n) >= 3 {
			probes = append(probes, n[:2], n[:3], n[:len(n)-1])
		}
		all, sig := strutil.Initials(n)
		probes = append(probes, all, sig, name+"ish")
	}
	for _, name := range names {
		if len(probes) >= budget {
			break
		}
		if rng.Float64() < 0.5 {
			derive(name)
		}
	}
	for i := 0; i < 25; i++ {
		n := rng.Intn(8) + 1
		b := make([]byte, n)
		for j := range b {
			b[j] = "abcdefgh_ "[rng.Intn(10)]
		}
		probes = append(probes, string(b))
	}
	return probes
}

// TestMatchEqualsScanOnWorlds is the index/scan equivalence property: on
// randomized datagen worlds, the index-backed MatchName/MatchTypes must
// return exactly the seed linear scans' results — same matches, same
// order, with and without the synonym library.
func TestMatchEqualsScanOnWorlds(t *testing.T) {
	profiles := []datagen.Profile{
		datagen.DBpediaLike(0.15),
		datagen.FreebaseLike(0.12),
		datagen.YAGO2Like(0.1),
	}
	for _, base := range profiles {
		for _, seed := range []int64{base.Seed, 101, 202} {
			p := base
			p.Seed = seed
			t.Run(fmt.Sprintf("%s/seed%d", p.Name, seed), func(t *testing.T) {
				ds := datagen.Generate(p)
				g := ds.Graph
				rng := rand.New(rand.NewSource(seed * 7))

				nodeNames := make([]string, 0, g.NumNodes())
				for u := 0; u < g.NumNodes(); u++ {
					nodeNames = append(nodeNames, g.NodeName(kg.NodeID(u)))
				}
				typeNames := make([]string, 0, g.NumTypes())
				for i := 0; i < g.NumTypes(); i++ {
					typeNames = append(typeNames, g.TypeName(kg.TypeID(i)))
				}
				nameProbes := probesFor(g, nodeNames, rng, 300)
				typeProbes := probesFor(g, typeNames, rng, 200)

				for _, lib := range []*transform.Library{ds.Library, nil} {
					m := transform.NewMatcher(g, lib)
					for _, probe := range nameProbes {
						got := m.MatchName(probe)
						want := m.MatchNameScan(probe)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("MatchName(%q) (lib=%v): indexed %v, scan %v",
								probe, lib != nil, got, want)
						}
					}
					for _, probe := range typeProbes {
						got := m.MatchTypes(probe)
						want := m.MatchTypesScan(probe)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("MatchTypes(%q) (lib=%v): indexed %v, scan %v",
								probe, lib != nil, got, want)
						}
					}
					// The fallback-disabled paths share all code; spot-check.
					m.FallbackScan = false
					for _, probe := range nameProbes[:10] {
						if !reflect.DeepEqual(m.MatchName(probe), m.MatchNameScan(probe)) {
							t.Fatalf("MatchName(%q) differs with FallbackScan off", probe)
						}
					}
					m.FallbackScan = true
				}
			})
		}
	}
}
