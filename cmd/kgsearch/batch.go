// Batch mode: -batchfile answers a whole group of query graphs in one
// call. The file is the api.BatchRequest wire document — the identical
// body POST /v1/batch accepts — so a batch debugged locally replays
// against a server unchanged. Queries without their own options inherit
// the document's shared options; when the document carries none, the
// command-line flags (-k, -tau, -nhat, -bound) fill in.
//
//	kgsearch -graph g.tsv -model m.bin -batchfile b.json
//	kgsearch -server http://localhost:8375 -batchfile b.json

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/serve"
)

// loadBatch reads and resolves a batch request file: the strict wire
// decode, then the flag-options fallback when the document has no shared
// options of its own.
func loadBatch(path string, opts core.Options) (api.BatchRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return api.BatchRequest{}, err
	}
	defer f.Close()
	req, err := api.DecodeBatchRequest(f)
	if err != nil {
		return api.BatchRequest{}, err
	}
	if req.Options == (api.Options{}) {
		req.Options = api.OptionsFrom(opts)
	}
	return req, nil
}

// localBatch answers the batch in process. The engine is wrapped in a
// single-replica serving layer so the group gets the real batch path —
// grouped compilation, result caching and shared sub-query searches —
// not a loop of independent searches.
func localBatch(graphFile, modelFile, path string, opts core.Options) error {
	req, err := loadBatch(path, opts)
	if err != nil {
		return err
	}
	g := loadGraph(graphFile)
	model := loadModel(modelFile)
	space, err := model.Space(g)
	if err != nil {
		return err
	}
	engine, err := core.NewEngine(g, space, nil)
	if err != nil {
		return err
	}
	layer := serve.New(engine, serve.Config{})
	items := make([]serve.BatchItem, len(req.Queries))
	for i := range req.Queries {
		items[i].Query, items[i].Opts = req.Item(i)
	}
	out := layer.SearchBatch(context.Background(), items)
	res := api.BatchResult{Results: make([]api.BatchItemResult, len(out))}
	for i, o := range out {
		item := api.BatchItemResult{Index: i, ID: req.Queries[i].ID}
		if o.Err != nil {
			item.Error = o.Err.Error()
		} else {
			r := api.ResultFrom(o.Result)
			item.Result = &r
		}
		res.Results[i] = item
	}
	printBatch(res)
	st := layer.Stats()
	fmt.Fprintf(os.Stderr, "· sub-searches: %d shared, %d run\n", st.SubHits, st.SubMisses)
	return nil
}

// remoteBatch posts the batch to semkgd's /v1/batch endpoint (buffered
// form) and prints the per-query outcomes. Sheds retry like
// remoteSearch; the whole batch retries, which is safe because a batch
// is read-only.
func remoteBatch(base, path string, opts core.Options, policy retryPolicy) error {
	req, err := loadBatch(path, opts)
	if err != nil {
		return err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	if policy.notify == nil {
		policy.notify = func(attempt int, wait time.Duration, status string) {
			fmt.Fprintln(os.Stderr, describeShed(attempt, wait, status))
		}
	}
	resp, err := policy.do(func() (*http.Response, error) {
		return http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	res, err := api.DecodeBatchResult(data)
	if err != nil {
		return err
	}
	printBatch(res)
	return nil
}

// printBatch renders every query's outcome in request order, reusing the
// single-query result printer under a per-query header line.
func printBatch(res api.BatchResult) {
	for _, item := range res.Results {
		name := fmt.Sprintf("query %d", item.Index)
		if item.ID != "" {
			name = fmt.Sprintf("query %d (%s)", item.Index, item.ID)
		}
		if item.Error != "" {
			fmt.Printf("== %s: error: %s\n", name, item.Error)
			continue
		}
		fmt.Printf("== %s: ", name)
		printResult(*item.Result, 0)
	}
}
