// Command semkgd serves semantic-guided top-k search over HTTP. It loads
// a knowledge graph and a trained embedding model once, then answers
// query-graph searches on two endpoints:
//
//	POST /v1/search   batch: one JSON result when the search finishes
//	POST /v1/stream   streaming: NDJSON events — phase transitions,
//	                  per-sub-query progress, provisional top-k snapshots
//	                  with TA bounds, and a terminal result line
//
// plus GET /healthz (liveness and graph shape) and GET /debug/vars
// (expvar counters). Request bodies are api.SearchRequest documents; bad
// queries and out-of-range options return 400 with a JSON error.
//
// Requests pass through the engine-level serving layer (internal/serve):
// a result cache and a plan cache absorb repeated queries, concurrent
// identical requests collapse to one pipeline execution, and a bounded
// worker pool sheds overload — a shed request gets 429 with a Retry-After
// header instead of queueing past its time bound. Cache and admission
// counters are exported under the "semkgd_serve" expvar key.
//
//	semkgd -graph g.tsv -model m.bin -addr :8375 \
//	       -workers 8 -queue 32 -result-cache 1024 -plan-cache 256
//
// The storage layer (see DESIGN.md, "Storage layer") adds live ingestion
// and binary cold starts:
//
//	POST /v1/ingest   NDJSON triples {"s":..,"p":..,"o":..}; the batch
//	                  commits as one delta against the served graph and
//	                  swaps the engine generation (both caches invalidate
//	                  exactly once)
//
//	semkgd -snapshot g.snap -model m.bin            # binary cold start
//	semkgd -graph g.tsv -save-snapshot g.snap ...   # convert on boot
//
// -graph accepts either format (the snapshot magic is sniffed);
// -snapshot insists on the binary format. -save-snapshot writes the
// loaded graph back out as a snapshot, so the next start skips the TSV
// parse and index build entirely.
//
// The streaming endpoint is the wire form of the paper's anytime
// behaviour (Section VI, Theorem 4): in time-bounded mode clients render
// provisional answers while the search refines them. See DESIGN.md,
// "Wire protocol".
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

func main() {
	graphFile := flag.String("graph", "", "graph file, TSV triples or binary snapshot (this or -snapshot is required)")
	snapshotFile := flag.String("snapshot", "", "binary graph snapshot file (this or -graph is required)")
	saveSnapshot := flag.String("save-snapshot", "", "write the loaded graph as a binary snapshot to this path and continue serving")
	modelFile := flag.String("model", "", "embedding model file (required)")
	addr := flag.String("addr", ":8375", "listen address")
	workers := flag.Int("workers", 0, "max concurrent pipeline executions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queued requests (0 = 4x workers, -1 = none: shed when busy)")
	resultCache := flag.Int("result-cache", 0, "result cache entries (0 = 1024, -1 = disabled)")
	planCache := flag.Int("plan-cache", 0, "plan cache entries (0 = 256, -1 = disabled)")
	maxIngest := flag.Int64("max-ingest-bytes", defaultMaxIngestBytes, "max /v1/ingest request body size in bytes (0 = unlimited)")
	shards := flag.Int("shards", 0, "partition the graph into N shards and serve scatter-gather searches (0/1 = single engine)")
	shardHalo := flag.Int("shard-halo", 0, "shard replication radius in hops; bounds servable max_hops (0 = default 4)")
	flag.Parse()

	if (*graphFile == "") == (*snapshotFile == "") || *modelFile == "" {
		fmt.Fprintln(os.Stderr, "semkgd: -model and exactly one of -graph / -snapshot are required")
		os.Exit(2)
	}

	start := time.Now()
	var g *kg.Graph
	var err error
	if *snapshotFile != "" {
		g, err = loadGraph(*snapshotFile, kg.ReadSnapshot)
	} else {
		g, err = loadGraph(*graphFile, kg.ReadGraph)
	}
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	if *saveSnapshot != "" {
		if err := writeSnapshot(*saveSnapshot, g); err != nil {
			log.Fatalf("semkgd: %v", err)
		}
		log.Printf("semkgd: wrote snapshot %s", *saveSnapshot)
	}
	model, err := loadModel(*modelFile)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	shardCfg := core.ShardConfig{Shards: *shards, Halo: *shardHalo}
	buildEngine := func(g2 *kg.Graph) (core.Queryer, error) {
		if *shards > 1 {
			se, err := core.BuildShardedEngine(g2, model, nil, shardCfg)
			if err != nil {
				return nil, err
			}
			// Rebuilds (live ingestion) replace the engine wholesale; keep
			// the expvar counters monotonic across generations.
			if cur := currentServe.Load(); cur != nil {
				if prev, ok := cur.Engine().(*core.ShardedEngine); ok {
					se.InheritStats(prev)
				}
			}
			return se, nil
		}
		return core.BuildEngine(g2, model, nil)
	}
	eng, err := buildEngine(g)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	if sharded, ok := eng.(*core.ShardedEngine); ok {
		publishShardStats()
		st := sharded.Stats()
		log.Printf("semkgd: sharded scatter-gather: %d shards, halo %d, replication factor %.2f",
			st.Shards, st.Halo, st.ReplicationFactor)
	}
	srv := serve.New(eng, serve.Config{
		ResultCache: *resultCache,
		PlanCache:   *planCache,
		Workers:     *workers,
		Queue:       *queue,
		// Live ingestion rebuilds the engine over the committed graph;
		// SpaceFor pads vectors for predicates the model never saw. When
		// serving sharded, the committed graph is re-partitioned too, so
		// ingested entities are owned and searchable immediately.
		Build: buildEngine,
	})
	log.Printf("semkgd: %d nodes, %d edges, %d predicates loaded in %s; listening on %s",
		g.NumNodes(), g.NumEdges(), g.NumPredicates(), time.Since(start).Round(time.Millisecond), *addr)
	log.Fatal(http.ListenAndServe(*addr, newMuxLimits(srv, *maxIngest)))
}

func loadGraph(path string, read func(io.Reader) (*kg.Graph, error)) (*kg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return read(f)
}

func writeSnapshot(path string, g *kg.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := kg.WriteSnapshot(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadModel(path string) (*embed.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return embed.ReadModel(f)
}
