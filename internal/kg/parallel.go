package kg

import (
	"runtime"
	"sync"
)

// Parallel build/decode plumbing. Graph construction (Builder.Build) and
// snapshot decoding (ReadSnapshot) are parameterized by a worker count:
// workers == 1 runs the exact sequential algorithms, anything else splits
// the same work across goroutines in a way that is structurally
// indistinguishable from the serial result (property-tested in
// parallel_test.go). The split strategies favor bounded memory: node-range
// partitions with per-worker cursors or mark arrays sized by the range or
// the predicate vocabulary, never O(nodes) per worker.

// normWorkers clamps a worker-count request: zero or negative means
// GOMAXPROCS.
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// parspan splits [0, n) into at most workers contiguous chunks and runs
// f(lo, hi) on each, concurrently when workers > 1. f must only touch
// state disjoint per chunk (or read-only shared state). With workers <= 1
// it runs f(0, n) inline — the sequential algorithm, no goroutines.
func parspan(workers, n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for c := 0; c < workers; c++ {
		lo, hi := c*n/workers, (c+1)*n/workers
		go func() {
			defer wg.Done()
			f(lo, hi)
		}()
	}
	wg.Wait()
}

// taskGroup runs independent heterogeneous tasks: inline when built with
// workers <= 1, on goroutines otherwise.
type taskGroup struct {
	serial bool
	wg     sync.WaitGroup
}

func newTaskGroup(workers int) *taskGroup { return &taskGroup{serial: workers <= 1} }

func (t *taskGroup) run(f func()) {
	if t.serial {
		f()
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		f()
	}()
}

func (t *taskGroup) wait() { t.wg.Wait() }

// firstErr latches one error across concurrent workers. Which worker's
// error wins is not deterministic, only that some error survives; decode
// callers need any typed snapshot error, not a specific one.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (e *firstErr) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *firstErr) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
