package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"semkg/internal/core"
	"semkg/internal/kg"
	"semkg/internal/query"
)

// manufacturerQuery overlaps q117 in shape but swaps the predicate, so
// its sub-query blueprint differs while its φ sets coincide.
func manufacturerQuery() *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "Germany", Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: "manufacturer"}},
	}
}

// TestShareProperty is the headline equivalence property: a random mix
// of overlapping requests — shared shapes under varied runtime K, plus
// distinct queries — served concurrently through the sharing layer is
// field-identical (answers, scores, order) to each request run solo on
// an identical unshared engine. Run under -race this also exercises the
// concurrent create/join paths of the sub-search cache.
func TestShareProperty(t *testing.T) {
	queries := []func() *query.Graph{q117, clubQuery, manufacturerQuery}
	ks := []int{1, 2, 3, 10}
	taus := []float64{0.6, 0.75}

	rng := rand.New(rand.NewSource(117))
	type request struct {
		q    *query.Graph
		opts core.Options
	}
	const n = 60
	reqs := make([]request, n)
	for i := range reqs {
		reqs[i] = request{
			q:    queries[rng.Intn(len(queries))](),
			opts: core.Options{K: ks[rng.Intn(len(ks))], Tau: taus[rng.Intn(len(taus))]},
		}
	}

	// Solo reference: every request on its own engine-level run, no
	// serving layer, no sharing.
	solo := testEngine(t)
	want := make([][]byte, n)
	for i, r := range reqs {
		res, err := solo.Search(context.Background(), r.q, r.opts)
		if err != nil {
			t.Fatalf("solo %d: %v", i, err)
		}
		want[i] = answersJSON(t, res)
	}

	srv := New(testEngine(t), Config{Queue: 128})
	var wg sync.WaitGroup
	got := make([][]byte, n)
	errs := make([]error, n)
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r request) {
			defer wg.Done()
			res, err := srv.Search(context.Background(), r.q, r.opts)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = answersJSON(t, res)
		}(i, r)
	}
	wg.Wait()

	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("served %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("request %d (K=%d tau=%g): shared answers differ from solo:\n%s\nvs\n%s",
				i, reqs[i].opts.K, reqs[i].opts.Tau, got[i], want[i])
		}
	}

	st := srv.Stats()
	if st.SubHits == 0 {
		t.Fatalf("no shared sub-search hits across %d overlapping requests: %+v", n, st)
	}
	if st.SubMisses == 0 || st.SubEntries == 0 {
		t.Fatalf("sub-search cache never populated: %+v", st)
	}
}

// TestShareDisabled: SubCache < 0 switches sharing off — answers stay
// identical, and the sub counters stay zero.
func TestShareDisabled(t *testing.T) {
	srv := New(testEngine(t), Config{SubCache: -1})
	ctx := context.Background()
	for _, k := range []int{3, 5} {
		opts := testOpts()
		opts.K = k
		if _, err := srv.Search(ctx, q117(), opts); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.SubHits != 0 || st.SubMisses != 0 || st.SubEntries != 0 {
		t.Fatalf("sharing active despite SubCache<0: %+v", st)
	}
}

// TestShareFlightCancellation is the satellite audit: two flights share
// sub-query enumerations (same plan, different K → different result
// keys, one sub-search). One participant leaving early cancels only its
// own flight — the survivor completes with correct answers, and the
// shared enumeration remains usable for later requests.
func TestShareFlightCancellation(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	srv := New(testEngine(t), Config{
		Workers: 4,
		BeforeRun: func() {
			started <- struct{}{}
			<-release
		},
	})

	optsA := testOpts()
	optsA.K = 3
	optsB := testOpts()
	optsB.K = 5

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	var errA error
	var doneA sync.WaitGroup
	doneA.Add(1)
	go func() {
		defer doneA.Done()
		_, errA = srv.Search(ctxA, q117(), optsA)
	}()

	resBCh := make(chan *core.Result, 1)
	errBCh := make(chan error, 1)
	go func() {
		res, err := srv.Search(context.Background(), q117(), optsB)
		resBCh <- res
		errBCh <- err
	}()

	// Both flights admitted and gated before either pipeline pulls a
	// match; now abandon A and let both proceed.
	<-started
	<-started
	cancelA()
	doneA.Wait()
	close(release)

	if errA == nil {
		t.Fatal("cancelled participant returned no error")
	}
	resB := <-resBCh
	if err := <-errBCh; err != nil {
		t.Fatalf("surviving flight failed: %v", err)
	}

	want, err := testEngine(t).Search(context.Background(), q117(), optsB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answersJSON(t, resB), answersJSON(t, want)) {
		t.Fatalf("survivor answers differ after peer cancellation:\n%s\nvs\n%s",
			answersJSON(t, resB), answersJSON(t, want))
	}

	// The shared enumeration outlived the leaver: a third K re-joins it.
	before := srv.Stats()
	optsC := testOpts()
	optsC.K = 7
	resC, err := srv.Search(context.Background(), q117(), optsC)
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := testEngine(t).Search(context.Background(), q117(), optsC)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answersJSON(t, resC), answersJSON(t, wantC)) {
		t.Fatal("post-cancellation request served wrong answers from the shared entry")
	}
	after := srv.Stats()
	if after.SubHits <= before.SubHits {
		t.Fatalf("post-cancellation request did not join the shared sub-search: %+v", after)
	}
	if after.SubEntries != before.SubEntries {
		t.Fatalf("cancellation disturbed the sub cache: %d entries, was %d",
			after.SubEntries, before.SubEntries)
	}
}

// TestApplyInvalidatesSubCacheExactlyOnce mirrors the PR-4 result-cache
// regression at the sub-search level: after Apply publishes a new
// generation, a repeated batch misses the sub cache exactly once (one
// fresh enumeration per blueprint), then re-warms.
func TestApplyInvalidatesSubCacheExactlyOnce(t *testing.T) {
	srv := New(testEngine(t), Config{Build: testBuild()})
	ctx := context.Background()

	// Two Ks per shape: the second pipeline run joins the first's
	// enumeration.
	batch := []BatchItem{
		{Query: q117(), Opts: core.Options{K: 3, Tau: 0.75}},
		{Query: q117(), Opts: core.Options{K: 5, Tau: 0.75}},
	}
	for _, out := range srv.SearchBatch(ctx, batch) {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	st := srv.Stats()
	if st.SubMisses != 1 || st.SubHits != 1 {
		t.Fatalf("warmup: sub misses=%d hits=%d, want 1/1", st.SubMisses, st.SubHits)
	}

	d := srv.NewDelta()
	if err := d.ApplyTriple("VW_Golf", kg.TypePredicate, "Automobile"); err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyTriple("VW_Golf", "assembly", "Germany"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(d); err != nil {
		t.Fatal(err)
	}

	// First batch after the swap: exactly one fresh miss (the blueprint
	// re-enumerates on the new engine), the sibling K joins it.
	for _, out := range srv.SearchBatch(ctx, batch) {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	st = srv.Stats()
	if st.SubMisses != 2 || st.SubHits != 2 {
		t.Fatalf("post-apply first batch: sub misses=%d hits=%d, want 2/2", st.SubMisses, st.SubHits)
	}

	// Repeat: results now come from the result cache — no new pipeline
	// runs, no new sub traffic.
	runs := st.PipelineRuns
	for _, out := range srv.SearchBatch(ctx, batch) {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	st = srv.Stats()
	if st.PipelineRuns != runs || st.SubMisses != 2 {
		t.Fatalf("post-apply second batch re-ran: %+v", st)
	}

	// The new generation's answers include the ingested entity.
	res, err := srv.Search(ctx, q117(), core.Options{K: 10, Tau: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(res.Entities(), "VW_Golf") {
		t.Fatalf("stale sub-results served after Apply: %v", res.Entities())
	}
}

// TestSearchBatchOutcomes: positional attribution — an invalid item
// reports its own error without failing its neighbours, and good items
// match solo execution.
func TestSearchBatchOutcomes(t *testing.T) {
	srv := New(testEngine(t), Config{})
	ctx := context.Background()

	bad := &query.Graph{Nodes: []query.Node{{ID: "v1"}}}
	out := srv.SearchBatch(ctx, []BatchItem{
		{Query: q117(), Opts: testOpts()},
		{Query: bad, Opts: testOpts()},
		{Query: clubQuery(), Opts: testOpts()},
	})
	if len(out) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(out))
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("good items failed: %v / %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil {
		t.Fatal("invalid item reported no error")
	}
	var br core.BadRequestError
	if !errors.As(out[1].Err, &br) {
		t.Fatalf("invalid item error = %v, want BadRequestError", out[1].Err)
	}

	want, err := testEngine(t).Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answersJSON(t, out[0].Result), answersJSON(t, want)) {
		t.Fatal("batch item answers differ from solo execution")
	}

	if srv.SearchBatch(ctx, nil) == nil {
		t.Fatal("empty batch returned nil instead of an empty slice")
	}
}

// TestSearchBatchConcurrentWithApply interleaves batches with live
// ingestion under the race detector: every outcome is either a valid
// result for the generation it ran on or a context/propagated error —
// never a stale sub-result (answer counts are non-decreasing, since
// generations here only add entities).
func TestSearchBatchConcurrentWithApply(t *testing.T) {
	srv := New(testEngine(t), Config{Build: testBuild(), Queue: 64})
	ctx := context.Background()
	const (
		clients = 3
		rounds  = 15
		applies = 6
	)

	batch := func() []BatchItem {
		return []BatchItem{
			{Query: q117(), Opts: core.Options{K: 3, Tau: 0.75}},
			{Query: q117(), Opts: core.Options{K: 25, Tau: 0.75}},
			{Query: clubQuery(), Opts: core.Options{K: 25, Tau: 0.75}},
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	var applied atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			prev := -1
			for i := 0; i < rounds; i++ {
				out := srv.SearchBatch(ctx, batch())
				for j, o := range out {
					if o.Err != nil {
						errs[c] = fmt.Errorf("round %d item %d: %w", i, j, o.Err)
						return
					}
				}
				// Item 1 (K=25 over q117) sees every entity of its
				// generation: the count can only grow.
				if n := len(out[1].Result.Answers); n < prev {
					errs[c] = fmt.Errorf("round %d: answers went from %d to %d", i, prev, n)
					return
				} else {
					prev = n
				}
			}
		}(c)
	}

	for a := 0; a < applies; a++ {
		d := srv.NewDelta()
		if err := d.ApplyTriple(fmt.Sprintf("BatchAuto_%d", a), kg.TypePredicate, "Automobile"); err != nil {
			t.Fatal(err)
		}
		if err := d.ApplyTriple(fmt.Sprintf("BatchAuto_%d", a), "assembly", "Germany"); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Apply(d); err != nil {
			t.Fatal(err)
		}
		applied.Add(1)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Final state: the last generation answers with every ingested auto.
	out := srv.SearchBatch(ctx, []BatchItem{{Query: q117(), Opts: core.Options{K: 40, Tau: 0.75}}})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	for a := 0; a < applies; a++ {
		if !slices.Contains(out[0].Result.Entities(), fmt.Sprintf("BatchAuto_%d", a)) {
			t.Fatalf("BatchAuto_%d missing after interleaved batches: %v", a, out[0].Result.Entities())
		}
	}
}
