package core

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"semkg/internal/datagen"
	"semkg/internal/query"
	"semkg/internal/shard"
	"semkg/internal/tbq"
)

// shardedOver partitions e's graph and wraps it.
func shardedOver(t *testing.T, e *Engine, shards int) *ShardedEngine {
	t.Helper()
	se, err := NewShardedEngine(e, ShardConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return se
}

// shardedWorkload picks a query cross-section biased towards the
// multi-sub-query shapes sharding exists for.
func shardedWorkload(ds *datagen.Dataset) []datagen.GenQuery {
	var qs []datagen.GenQuery
	if len(ds.Simple) > 2 {
		qs = append(qs, ds.Simple[:2]...)
	} else {
		qs = append(qs, ds.Simple...)
	}
	qs = append(qs, ds.Medium...)
	qs = append(qs, ds.Complex...)
	if len(qs) > 7 {
		qs = qs[:7]
	}
	return qs
}

// scoreEpsilon absorbs the float-addition reordering of candidate score
// sums: the per-part PSS values are bit-identical between engines, but TA
// may first see a pivot's streams in a different relative order, and
// three-term float sums are not associative.
const scoreEpsilon = 1e-9

// assertTopKEquivalent verifies got (sharded) is a correct top-k whenever
// want (single-engine) is: identical score vector, and identical answer
// entities everywhere the ranking is unambiguous — entities whose score
// ties the k-th score may legally differ between two correct top-k sets,
// so the tie group at the boundary is compared by size only.
func assertTopKEquivalent(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("%s: %d answers, want %d", name, len(got.Answers), len(want.Answers))
	}
	if len(want.Answers) == 0 {
		return
	}
	for i := range want.Answers {
		if math.Abs(got.Answers[i].Score-want.Answers[i].Score) > scoreEpsilon {
			t.Fatalf("%s: rank %d score %v, want %v", name, i, got.Answers[i].Score, want.Answers[i].Score)
		}
	}
	kth := want.Answers[len(want.Answers)-1].Score
	wantAbove := make(map[string]bool)
	gotAbove := make(map[string]bool)
	for i := range want.Answers {
		if want.Answers[i].Score > kth+scoreEpsilon {
			wantAbove[want.Answers[i].PivotName] = true
		}
		if got.Answers[i].Score > kth+scoreEpsilon {
			gotAbove[got.Answers[i].PivotName] = true
		}
	}
	if len(gotAbove) != len(wantAbove) {
		t.Fatalf("%s: %d unambiguous answers, want %d", name, len(gotAbove), len(wantAbove))
	}
	for p := range wantAbove {
		if !gotAbove[p] {
			t.Fatalf("%s: unambiguous answer %q missing from sharded result", name, p)
		}
	}
	if got.Decomposition.Pivot != want.Decomposition.Pivot {
		t.Fatalf("%s: pivot %q vs %q", name, got.Decomposition.Pivot, want.Decomposition.Pivot)
	}
}

// TestShardedSearchEquivalenceSGQ is the tentpole acceptance property:
// for generated worlds and 1/2/3/4 shards, the sharded exact search
// returns the same top-k set and scores as the single engine, on every
// workload shape (single- and multi-sub-query).
func TestShardedSearchEquivalenceSGQ(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 17, 42} {
		ds, e := tinyWorld(t, seed)
		engines := map[int]*ShardedEngine{}
		for _, n := range []int{1, 2, 3, 4} {
			engines[n] = shardedOver(t, e, n)
		}
		for _, q := range shardedWorkload(ds) {
			for _, k := range []int{1, 5, 10} {
				opts := Options{K: k, Tau: 0.5, MaxHops: 3}
				want, err := e.Search(ctx, q.Graph, opts)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, q.Name, err)
				}
				for n, se := range engines {
					got, err := se.Search(ctx, q.Graph, opts)
					if err != nil {
						t.Fatalf("seed %d %s shards=%d: %v", seed, q.Name, n, err)
					}
					assertTopKEquivalent(t, q.Name, got, want)
				}
			}
		}
	}
}

// TestShardedStreamMatchesSearch: the sharded pipeline is deterministic,
// so consuming a sharded Stream to completion yields a Result identical
// to sharded Search — and the event stream obeys the single-engine
// ordering guarantees, with per-shard progress attribution.
func TestShardedStreamMatchesSearch(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 17)
	se := shardedOver(t, e, 3)
	for _, q := range shardedWorkload(ds)[:4] {
		opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
		want, err := se.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := se.Stream(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		events, res := drainStream(t, st)
		assertResultsEqual(t, q.Name+"/sharded-stream", res, want)

		sawShard := false
		for _, ev := range events {
			if pe, ok := ev.(ProgressEvent); ok {
				if pe.Shard < 1 || pe.Shard > 3 {
					t.Fatalf("%s: progress event shard %d outside [1,3]", q.Name, pe.Shard)
				}
				sawShard = true
			}
		}
		if len(want.Answers) > 0 && !sawShard {
			t.Fatalf("%s: no per-shard progress events", q.Name)
		}
		last := events[len(events)-1]
		if _, ok := last.(ResultEvent); !ok {
			t.Fatalf("%s: last event %T, want ResultEvent", q.Name, last)
		}
	}
}

// TestShardedTBQExhaustedEquivalence: with an ample deterministic budget
// the time-bounded sharded search exhausts every shard's eager sets,
// whose merge is exactly the single engine's exhausted collection — the
// assembled answers, scores, order and per-sub collected counts are then
// identical.
func TestShardedTBQExhaustedEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{8, 21} {
		ds, e := tinyWorld(t, seed)
		se := shardedOver(t, e, 4)
		for _, q := range shardedWorkload(ds)[:5] {
			opts := Options{
				K: 5, Tau: 0.5, MaxHops: 3,
				TimeBound: time.Hour,
				Clock:     &tbq.StepClock{Step: time.Microsecond},
			}
			want, err := e.Search(ctx, q.Graph, opts)
			if err != nil {
				t.Fatal(err)
			}
			optsSharded := opts
			optsSharded.Clock = &tbq.StepClock{Step: time.Microsecond}
			got, err := se.Search(ctx, q.Graph, optsSharded)
			if err != nil {
				t.Fatal(err)
			}
			if want.Approximate || got.Approximate {
				t.Fatalf("%s: ample budget did not exhaust (single %v, sharded %v)",
					q.Name, want.Approximate, got.Approximate)
			}
			if len(got.Answers) != len(want.Answers) {
				t.Fatalf("%s: %d answers, want %d", q.Name, len(got.Answers), len(want.Answers))
			}
			for i := range want.Answers {
				if got.Answers[i].PivotName != want.Answers[i].PivotName ||
					got.Answers[i].Score != want.Answers[i].Score {
					t.Fatalf("%s: rank %d = %s/%v, want %s/%v", q.Name, i,
						got.Answers[i].PivotName, got.Answers[i].Score,
						want.Answers[i].PivotName, want.Answers[i].Score)
				}
			}
			if len(got.Collected) != len(want.Collected) {
				t.Fatalf("%s: collected arity %d, want %d", q.Name, len(got.Collected), len(want.Collected))
			}
			for i := range want.Collected {
				if got.Collected[i] != want.Collected[i] {
					t.Fatalf("%s: collected[%d] = %d, want %d (merged eager sets differ)",
						q.Name, i, got.Collected[i], want.Collected[i])
				}
			}
		}
	}
}

// TestShardedTBQRespectsBound: a tight wall-clock budget terminates the
// sharded search promptly and flags the result approximate (or returns
// the exhausted exact result even faster). The generous multiplier only
// absorbs scheduler noise — the contract under test is that a 25ms bound
// cannot produce a multi-second search.
func TestShardedTBQRespectsBound(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 42)
	se := shardedOver(t, e, 3)
	q := ds.Complex[0]
	const bound = 25 * time.Millisecond
	start := time.Now()
	res, err := se.Search(ctx, q.Graph, Options{K: 5, Tau: 0.4, MaxHops: 4, TimeBound: bound})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 20*bound {
		t.Fatalf("sharded TBQ took %v against a %v bound", wall, bound)
	}
	if res == nil {
		t.Fatal("nil result")
	}
}

// TestShardedHaloFallback: MaxHops beyond the partition halo cannot be
// served from the shard graphs; the engine transparently runs the base
// pipeline, whose result is identical to the single engine's by
// construction.
func TestShardedHaloFallback(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	se, err := NewShardedEngine(e, ShardConfig{Shards: 2, Halo: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Simple[0]
	opts := Options{K: 5, Tau: 0.5, MaxHops: 3} // 3 > halo 2
	want, err := e.Search(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := se.Search(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "halo-fallback", got, want)
	if st := se.Stats(); st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
	}

	// Within the halo the sharded path runs and counts.
	if _, err := se.Search(ctx, q.Graph, Options{K: 5, Tau: 0.5, MaxHops: 2}); err != nil {
		t.Fatal(err)
	}
	if st := se.Stats(); st.Searches != 1 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 sharded search and 1 fallback", st)
	}
}

// TestShardedMismatchQuery: a query node matching nothing yields the empty
// answer set through the sharded path too, not an error.
func TestShardedMismatchQuery(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	se := shardedOver(t, e, 2)
	q := ds.Simple[0].Graph
	bad := *q
	bad.Nodes = append([]query.Node{}, q.Nodes...)
	for i := range bad.Nodes {
		if bad.Nodes[i].Name != "" {
			bad.Nodes[i].Name = "NoSuchEntityAnywhere_ZZZ"
		}
	}
	res, err := se.Search(ctx, &bad, Options{K: 5, Tau: 0.5, MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("mismatch query returned %d answers", len(res.Answers))
	}
}

// TestShardedPlanReuse: one compiled sharded plan serves repeated runs
// (the serving layer's plan-cache contract), and plans do not cross
// engines.
func TestShardedPlanReuse(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 17)
	se := shardedOver(t, e, 3)
	q := ds.Medium[0].Graph
	opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
	p, err := se.CompileQuery(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.PlannedBy(se) {
		t.Fatal("plan does not recognize its engine")
	}
	if p.PlannedBy(e) {
		t.Fatal("sharded plan claims the base engine planned it")
	}
	want, err := se.Search(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := se.SearchCompiled(ctx, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, "plan-reuse", got, want)
	}
	// A single-engine plan is rejected by the sharded engine, and vice
	// versa.
	bp, err := e.CompileQuery(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.SearchCompiled(ctx, bp, opts); err == nil {
		t.Fatal("sharded engine ran a single-engine plan")
	}
	if _, err := e.SearchCompiled(ctx, p, opts); err == nil {
		t.Fatal("single engine ran a sharded plan")
	}
	// Mismatched compile options are rejected, as in the single engine.
	if _, err := se.SearchCompiled(ctx, p, Options{K: 5, Tau: 0.6, MaxHops: 3}); err == nil {
		t.Fatal("plan accepted under different compile options")
	}
}

// TestShardedCancellationMidMerge: cancelling the context while the
// assembly is pulling from shard streams terminates with the provisional
// best (anytime semantics), still delivering a terminal ResultEvent.
func TestShardedCancellationMidMerge(t *testing.T) {
	ds, e := tinyWorld(t, 42)
	se := shardedOver(t, e, 3)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := se.Stream(ctx, ds.Complex[0].Graph, Options{K: 10, Tau: 0.4, MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // shard streams run dry at their next lazy pull
	events, res := drainStream(t, st)
	if res == nil {
		t.Fatal("no terminal result after cancellation")
	}
	if len(events) == 0 {
		t.Fatal("no events after cancellation")
	}
	if _, ok := events[len(events)-1].(ResultEvent); !ok {
		t.Fatalf("last event %T, want ResultEvent", events[len(events)-1])
	}
}

// TestShardedEngineFromLoadedSet: shards saved and loaded individually
// through the snapshot wrapper reassemble into an engine answering
// identically to the freshly partitioned one.
func TestShardedEngineFromLoadedSet(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 21)
	se := shardedOver(t, e, 3)

	var loaded []*shard.Shard
	for i := 0; i < se.Set().Len(); i++ {
		var buf bytes.Buffer
		if err := shard.WriteShard(&buf, se.Set().Shard(i)); err != nil {
			t.Fatal(err)
		}
		sh, err := shard.ReadShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		loaded = append(loaded, sh)
	}
	set, err := shard.Assemble(e.Graph(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	se2, err := NewShardedEngineFromSet(e, set, ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range shardedWorkload(ds)[:3] {
		opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
		want, err := se.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := se2.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, q.Name+"/loaded-set", got, want)
	}
}

// TestShardedStats sanity-checks the monitoring surface.
func TestShardedStats(t *testing.T) {
	_, e := tinyWorld(t, 3)
	se := shardedOver(t, e, 4)
	st := se.Stats()
	if st.Shards != 4 || st.Halo != shard.DefaultHalo {
		t.Fatalf("stats shape = %+v", st)
	}
	if st.ReplicationFactor < 1 {
		t.Fatalf("replication factor %v < 1", st.ReplicationFactor)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard stats %d, want 4", len(st.PerShard))
	}
	owned := 0
	for _, s := range st.PerShard {
		owned += s.Owned
	}
	if owned != e.Graph().NumNodes() {
		t.Fatalf("owned sum %d, want %d", owned, e.Graph().NumNodes())
	}
}

// TestShardedEngineValidation covers the constructor contracts.
func TestShardedEngineValidation(t *testing.T) {
	_, e := tinyWorld(t, 3)
	if _, err := NewShardedEngine(nil, ShardConfig{}); err == nil {
		t.Fatal("nil base accepted")
	}
	_, other := tinyWorld(t, 17)
	set, err := shard.Partition(other.Graph(), shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedEngineFromSet(e, set, ShardConfig{Shards: 2}); err == nil {
		t.Fatal("set over a different graph accepted")
	}
}

// TestShardedInheritStats: rebuilt engines (live ingestion) carry the
// cumulative counters forward, so the monitoring surface is monotonic
// across generations.
func TestShardedInheritStats(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	prev := shardedOver(t, e, 2)
	if _, err := prev.Search(ctx, ds.Simple[0].Graph, Options{K: 3, Tau: 0.5, MaxHops: 3}); err != nil {
		t.Fatal(err)
	}
	if prev.Stats().Searches != 1 {
		t.Fatalf("searches = %d, want 1", prev.Stats().Searches)
	}
	next := shardedOver(t, e, 2)
	next.InheritStats(prev)
	if got := next.Stats().Searches; got != 1 {
		t.Fatalf("inherited searches = %d, want 1", got)
	}
	next.InheritStats(nil) // no-op
	if _, err := next.Search(ctx, ds.Simple[0].Graph, Options{K: 3, Tau: 0.5, MaxHops: 3}); err != nil {
		t.Fatal(err)
	}
	if got := next.Stats().Searches; got != 2 {
		t.Fatalf("searches after inherit+run = %d, want 2", got)
	}
}
