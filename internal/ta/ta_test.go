package ta

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"semkg/internal/astar"
	"semkg/internal/kg"
)

// entry builds a minimal match ending at pivot with the given pss.
func entry(pivot kg.NodeID, pss float64) astar.Match {
	return astar.Match{Nodes: []kg.NodeID{pivot}, PSS: pss}
}

// list builds a SliceStream from (pivot, pss) pairs, sorting by pss desc.
func list(pairs ...struct {
	p   kg.NodeID
	pss float64
}) *SliceStream {
	ms := make([]astar.Match, len(pairs))
	for i, pr := range pairs {
		ms[i] = entry(pr.p, pr.pss)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].PSS > ms[j].PSS })
	return &SliceStream{Matches: ms}
}

type pair = struct {
	p   kg.NodeID
	pss float64
}

func TestAssembleBasicJoin(t *testing.T) {
	l1 := list(pair{1, 0.9}, pair{2, 0.8}, pair{3, 0.7})
	l2 := list(pair{2, 0.8}, pair{3, 0.75}, pair{1, 0.5})
	got, _ := Assemble([]Stream{l1, l2}, 2)
	if len(got) != 2 {
		t.Fatalf("got %d finals, want 2", len(got))
	}
	// Scores: 1 -> 1.4, 2 -> 1.6, 3 -> 1.45. Top-2 = {2, 3}.
	if got[0].Pivot != 2 || math.Abs(got[0].Score-1.6) > 1e-12 {
		t.Errorf("top final = (%d, %v), want (2, 1.6)", got[0].Pivot, got[0].Score)
	}
	if got[1].Pivot != 3 || math.Abs(got[1].Score-1.45) > 1e-12 {
		t.Errorf("second final = (%d, %v), want (3, 1.45)", got[1].Pivot, got[1].Score)
	}
	if len(got[0].Parts) != 2 {
		t.Errorf("final should keep one part per stream")
	}
	for i, p := range got[0].Parts {
		if p.End() != 2 {
			t.Errorf("part %d ends at %d, want pivot 2", i, p.End())
		}
	}
}

func TestAssembleRequiresCompleteness(t *testing.T) {
	// Pivot 9 appears only in the first list and must not be returned even
	// though its single pss is high.
	l1 := list(pair{9, 0.99}, pair{1, 0.6})
	l2 := list(pair{1, 0.6})
	got, stats := Assemble([]Stream{l1, l2}, 5)
	if len(got) != 1 || got[0].Pivot != 1 {
		t.Fatalf("got %v, want only pivot 1", got)
	}
	if !stats.Exhausted {
		t.Error("streams should be exhausted when fewer than k finals exist")
	}
}

func TestAssembleEdgeCases(t *testing.T) {
	if got, _ := Assemble(nil, 3); got != nil {
		t.Error("no streams should yield nil")
	}
	if got, _ := Assemble([]Stream{list()}, 0); got != nil {
		t.Error("k=0 should yield nil")
	}
	got, _ := Assemble([]Stream{list(), list()}, 3)
	if len(got) != 0 {
		t.Errorf("empty streams should yield no finals, got %v", got)
	}
	// Single stream: assembly degenerates to top-k of the stream.
	got, _ = Assemble([]Stream{list(pair{1, 0.9}, pair{2, 0.7})}, 1)
	if len(got) != 1 || got[0].Pivot != 1 {
		t.Errorf("single stream top-1 = %v", got)
	}
}

// countingStream counts sorted accesses to prove early termination.
type countingStream struct {
	inner *SliceStream
	n     int
}

func (c *countingStream) Next() (astar.Match, bool) {
	c.n++
	return c.inner.Next()
}

// TestAssembleEarlyTermination mirrors the paper's Figure 10: termination
// as soon as L_k >= U_max, long before the tails of the lists are read.
func TestAssembleEarlyTermination(t *testing.T) {
	long1 := []pair{{1, 0.9}, {2, 0.85}}
	long2 := []pair{{1, 0.9}, {2, 0.8}}
	for i := 0; i < 100; i++ {
		long1 = append(long1, pair{kg.NodeID(100 + i), 0.2 - float64(i)*0.001})
		long2 = append(long2, pair{kg.NodeID(500 + i), 0.2 - float64(i)*0.001})
	}
	c1 := &countingStream{inner: list(long1...)}
	c2 := &countingStream{inner: list(long2...)}
	got, stats := Assemble([]Stream{c1, c2}, 2)
	if len(got) != 2 || got[0].Pivot != 1 || got[1].Pivot != 2 {
		t.Fatalf("finals = %v", got)
	}
	if stats.Exhausted {
		t.Error("assembly should terminate early, not exhaust")
	}
	if c1.n+c2.n > 20 {
		t.Errorf("accesses = %d, expected early termination well under 20", c1.n+c2.n)
	}
}

// naiveJoin computes the exact top-k by materializing everything.
func naiveJoin(lists [][]pair, k int) []Final {
	n := len(lists)
	type agg struct {
		score float64
		seen  int
	}
	best := make(map[kg.NodeID]*agg)
	for _, l := range lists {
		seenHere := make(map[kg.NodeID]float64)
		for _, p := range l {
			if old, ok := seenHere[p.p]; !ok || p.pss > old {
				seenHere[p.p] = p.pss
			}
		}
		for pivot, pss := range seenHere {
			a := best[pivot]
			if a == nil {
				a = &agg{}
				best[pivot] = a
			}
			a.score += pss
			a.seen++
		}
	}
	var out []Final
	for pivot, a := range best {
		if a.seen == n {
			out = append(out, Final{Pivot: pivot, Score: a.score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Pivot < out[j].Pivot
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestAssembleMatchesNaiveJoin: on random inputs the TA assembly must agree
// with the exhaustive join (Theorem 3).
func TestAssembleMatchesNaiveJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		nLists := rng.Intn(3) + 1
		k := rng.Intn(5) + 1
		raw := make([][]pair, nLists)
		streams := make([]Stream, nLists)
		for i := range raw {
			m := rng.Intn(30)
			for j := 0; j < m; j++ {
				raw[i] = append(raw[i], pair{kg.NodeID(rng.Intn(12)), rng.Float64()})
			}
			// Streams must be deduplicated per pivot (the searcher emits
			// one match per entity): keep the max.
			seen := make(map[kg.NodeID]float64)
			for _, p := range raw[i] {
				if old, ok := seen[p.p]; !ok || p.pss > old {
					seen[p.p] = p.pss
				}
			}
			var dedup []pair
			for piv, pss := range seen {
				dedup = append(dedup, pair{piv, pss})
			}
			raw[i] = dedup
			streams[i] = list(dedup...)
		}
		want := naiveJoin(raw, k)
		got, _ := Assemble(streams, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d finals, want %d (%v vs %v)", trial, len(got), len(want), got, want)
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("trial %d: rank %d score %v, want %v", trial, i, got[i].Score, want[i].Score)
			}
		}
		// Pivot sets of equal-score prefixes must coincide.
		gotSet := map[kg.NodeID]bool{}
		wantSet := map[kg.NodeID]bool{}
		for i := range want {
			gotSet[got[i].Pivot] = true
			wantSet[want[i].Pivot] = true
		}
		for p := range wantSet {
			if !gotSet[p] {
				t.Fatalf("trial %d: pivot %d missing from TA result", trial, p)
			}
		}
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Matches: []astar.Match{entry(1, 0.9), entry(2, 0.8)}}
	m, ok := s.Next()
	if !ok || m.End() != 1 {
		t.Fatalf("first Next = (%v,%v)", m, ok)
	}
	if _, ok := s.Next(); !ok {
		t.Fatal("second Next should succeed")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("third Next should fail")
	}
}
