package baseline

import (
	"testing"

	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/transform"
)

// testWorld builds a compact world with known schema structure:
//   - direct:   Auto_D1, Auto_D2  --assembly-->  Germany
//   - product:  Auto_P1           --product--->  Germany
//   - via city: Auto_C1           --assembly-->  Munich --country--> Germany
//   - via co.:  Auto_M1 --manufacturer--> BMW_Co --locationCountry--> Germany
//   - wrong:    Auto_W1 --designer--> Hans --nationality--> Germany
//   - foreign:  Auto_F1 --assembly--> France
func testWorld() *kg.Graph {
	b := kg.NewBuilder(32, 32)
	ger := b.AddNode("Germany", "Country")
	fra := b.AddNode("France", "Country")
	munich := b.AddNode("Munich", "City")
	co := b.AddNode("BMW_Co", "Company")
	hans := b.AddNode("Hans", "Person")

	b.AddEdge(munich, ger, "country")
	b.AddEdge(co, ger, "locationCountry")
	b.AddEdge(hans, ger, "nationality")

	add := func(name, pred string, dst kg.NodeID) kg.NodeID {
		u := b.AddNode(name, "Automobile")
		b.AddEdge(u, dst, pred)
		return u
	}
	add("Auto_D1", "assembly", ger)
	add("Auto_D2", "assembly", ger)
	add("Auto_P1", "product", ger)
	add("Auto_C1", "assembly", munich)
	add("Auto_M1", "manufacturer", co)
	add("Auto_W1", "designer", hans)
	add("Auto_F1", "assembly", fra)
	return b.Build()
}

func lib() *transform.Library {
	l := transform.NewLibrary()
	l.AddSynonyms("Car", "Automobile")
	l.AddAbbreviation("GER", "Germany")
	return l
}

func q117(autoType, country, pred string) *query.Graph {
	return &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: autoType},
			{ID: "v2", Name: country, Type: "Country"},
		},
		Edges: []query.Edge{{From: "v1", To: "v2", Predicate: pred}},
	}
}

func entities(rs []Ranked) map[string]bool {
	out := make(map[string]bool, len(rs))
	for _, r := range rs {
		out[r.Entity] = true
	}
	return out
}

func TestGStoreExactOnly(t *testing.T) {
	g := testWorld()
	m := NewGStore(g)
	got := entities(m.Search(q117("Automobile", "Germany", "assembly"), "v1", 10))
	want := map[string]bool{"Auto_D1": true, "Auto_D2": true}
	if len(got) != len(want) {
		t.Fatalf("gStore = %v, want %v", got, want)
	}
	for e := range want {
		if !got[e] {
			t.Errorf("gStore missing %s", e)
		}
	}
	// Node mismatch: <Car> matches nothing without similarity support.
	if r := m.Search(q117("Car", "Germany", "assembly"), "v1", 10); len(r) != 0 {
		t.Errorf("gStore with Car type = %v, want none", r)
	}
	// Abbreviated name fails too.
	if r := m.Search(q117("Automobile", "GER", "assembly"), "v1", 10); len(r) != 0 {
		t.Errorf("gStore with GER = %v, want none", r)
	}
}

func TestSLQLibraryNodesAnyPredicate(t *testing.T) {
	g := testWorld()
	m := NewSLQ(g, lib())
	// SLQ is predicate-agnostic but 1-hop: finds every auto with a direct
	// edge to Germany regardless of predicate (assembly, product) — and
	// none of the 2-hop answers.
	got := entities(m.Search(q117("Car", "GER", "assembly"), "v1", 10))
	for _, e := range []string{"Auto_D1", "Auto_D2", "Auto_P1"} {
		if !got[e] {
			t.Errorf("SLQ missing %s (got %v)", e, got)
		}
	}
	for _, e := range []string{"Auto_C1", "Auto_M1", "Auto_W1", "Auto_F1"} {
		if got[e] {
			t.Errorf("SLQ should not return %s", e)
		}
	}
}

func TestQGAExactPredicateLibraryNodes(t *testing.T) {
	g := testWorld()
	m := NewQGA(g, lib())
	got := entities(m.Search(q117("Car", "GER", "assembly"), "v1", 10))
	want := map[string]bool{"Auto_D1": true, "Auto_D2": true}
	if len(got) != len(want) || !got["Auto_D1"] || !got["Auto_D2"] {
		t.Errorf("QGA = %v, want exactly the direct assembly autos", got)
	}
}

func TestNeMaPathsNoSemantics(t *testing.T) {
	g := testWorld()
	m := NewNeMa(g)
	got := entities(m.Search(q117("Automobile", "Germany", "assembly"), "v1", 10))
	// 2-hop reach includes the via-city, via-company AND the wrong
	// designer-path answer — NeMa cannot tell them apart.
	for _, e := range []string{"Auto_D1", "Auto_C1", "Auto_M1", "Auto_W1"} {
		if !got[e] {
			t.Errorf("NeMa missing %s (got %v)", e, got)
		}
	}
	if got["Auto_F1"] {
		t.Error("NeMa returned the French car")
	}
	// Direct answers must outrank 2-hop ones (path discount).
	rs := m.Search(q117("Automobile", "Germany", "assembly"), "v1", 10)
	rank := map[string]int{}
	for i, r := range rs {
		rank[r.Entity] = i
	}
	if rank["Auto_D1"] > rank["Auto_W1"] {
		t.Errorf("NeMa ranks wrong answer above direct one: %v", rs)
	}
}

func TestPHomSyntacticNodes(t *testing.T) {
	g := testWorld()
	m := NewPHom(g)
	// "Car" has no edit-distance similarity to "Automobile": no answers.
	if r := m.Search(q117("Car", "Germany", "assembly"), "v1", 10); len(r) != 0 {
		t.Errorf("p-hom with Car = %v, want none", r)
	}
	// Near-identical type string works, and path mapping brings in the
	// wrong answers too.
	got := entities(m.Search(q117("Automobiles", "Germany", "assembly"), "v1", 10))
	if !got["Auto_D1"] || !got["Auto_W1"] {
		t.Errorf("p-hom = %v, want direct and designer-path autos", got)
	}
}

func TestGraBExactNodesPaths(t *testing.T) {
	g := testWorld()
	m := NewGraB(g)
	got := entities(m.Search(q117("Automobile", "Germany", "assembly"), "v1", 10))
	for _, e := range []string{"Auto_D1", "Auto_C1", "Auto_M1", "Auto_W1"} {
		if !got[e] {
			t.Errorf("GraB missing %s (got %v)", e, got)
		}
	}
	// Exact node matching: Car fails.
	if r := m.Search(q117("Car", "Germany", "assembly"), "v1", 10); len(r) != 0 {
		t.Errorf("GraB with Car = %v, want none", r)
	}
}

func TestS4GoodPrior(t *testing.T) {
	g := testWorld()
	prior := []PriorInstance{
		{FocusType: "Automobile", AnchorType: "Country", Predicates: []string{"assembly"}},
		{FocusType: "Automobile", AnchorType: "Country", Predicates: []string{"assembly"}},
		{FocusType: "Automobile", AnchorType: "Country", Predicates: []string{"assembly", "country"}},
		{FocusType: "Automobile", AnchorType: "Country", Predicates: []string{"assembly", "country"}},
		{FocusType: "Automobile", AnchorType: "Country", Predicates: []string{"manufacturer", "locationCountry"}},
		{FocusType: "Automobile", AnchorType: "Country", Predicates: []string{"manufacturer", "locationCountry"}},
	}
	m := NewS4(g, prior)
	got := entities(m.Search(q117("Automobile", "Germany", "assembly"), "v1", 10))
	for _, e := range []string{"Auto_D1", "Auto_D2", "Auto_C1", "Auto_M1"} {
		if !got[e] {
			t.Errorf("S4 missing %s (got %v)", e, got)
		}
	}
	for _, e := range []string{"Auto_P1", "Auto_W1", "Auto_F1"} {
		if got[e] {
			t.Errorf("S4 should not return %s (pattern not in prior)", e)
		}
	}
}

func TestS4PriorSensitivity(t *testing.T) {
	g := testWorld()
	// Low-quality prior: the designer path is mined as if it were a
	// production pattern; S4 then returns the wrong answer.
	badPrior := []PriorInstance{
		{FocusType: "Automobile", AnchorType: "Country", Predicates: []string{"designer", "nationality"}},
		{FocusType: "Automobile", AnchorType: "Country", Predicates: []string{"designer", "nationality"}},
	}
	m := NewS4(g, badPrior)
	got := entities(m.Search(q117("Automobile", "Germany", "assembly"), "v1", 10))
	if !got["Auto_W1"] {
		t.Errorf("S4 with bad prior should return the wrong answer, got %v", got)
	}
	if got["Auto_D1"] {
		t.Errorf("S4 with bad prior should miss the direct answers, got %v", got)
	}
	// Below minimum support nothing is mined.
	weak := NewS4(g, badPrior[:1])
	if r := weak.Search(q117("Automobile", "Germany", "assembly"), "v1", 10); len(r) != 0 {
		t.Errorf("S4 below support = %v, want none", r)
	}
}

func TestMultiEdgeQuery(t *testing.T) {
	g := testWorld()
	// Two constraints: assembled in Germany AND designed by Hans. Only a
	// car with both edges would match; none exists, so the predicate-aware
	// 1-hop methods return nothing and path methods return cars
	// satisfying both reachability constraints.
	q := &query.Graph{
		Nodes: []query.Node{
			{ID: "v1", Type: "Automobile"},
			{ID: "v2", Name: "Germany", Type: "Country"},
			{ID: "v3", Name: "Hans", Type: "Person"},
		},
		Edges: []query.Edge{
			{From: "v1", To: "v2", Predicate: "assembly"},
			{From: "v1", To: "v3", Predicate: "designer"},
		},
	}
	if r := NewGStore(g).Search(q, "v1", 10); len(r) != 0 {
		t.Errorf("gStore multi-edge = %v, want none", r)
	}
	got := entities(NewGraB(g).Search(q, "v1", 10))
	// Predicate-agnostic 4-hop paths connect every German-related auto to
	// both anchors (Hans is one hop from Germany) — exactly GraB's
	// low-precision failure mode. Only the French car stays out.
	if !got["Auto_W1"] || got["Auto_F1"] {
		t.Errorf("GraB multi-edge = %v, want German-connected autos without Auto_F1", got)
	}
	if len(got) != 6 {
		t.Errorf("GraB multi-edge returned %d autos, want 6", len(got))
	}
}

func TestInvalidQueries(t *testing.T) {
	g := testWorld()
	methods := []Method{
		NewGStore(g), NewSLQ(g, lib()), NewQGA(g, lib()),
		NewNeMa(g), NewPHom(g), NewGraB(g), NewS4(g, nil),
	}
	bad := &query.Graph{} // fails validation
	for _, m := range methods {
		if r := m.Search(bad, "v1", 5); len(r) != 0 {
			t.Errorf("%s on invalid query = %v, want none", m.Name(), r)
		}
		if m.Name() == "" {
			t.Error("method without a name")
		}
	}
}

func TestRankingDeterministic(t *testing.T) {
	g := testWorld()
	m := NewNeMa(g)
	a := m.Search(q117("Automobile", "Germany", "assembly"), "v1", 10)
	b := m.Search(q117("Automobile", "Germany", "assembly"), "v1", 10)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic ranking at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestKLimit(t *testing.T) {
	g := testWorld()
	rs := NewNeMa(g).Search(q117("Automobile", "Germany", "assembly"), "v1", 2)
	if len(rs) > 2 {
		t.Errorf("k=2 returned %d results", len(rs))
	}
}
