// Quickstart: build a small knowledge graph, train the embedding, and run
// a semantic-guided top-k search — the 60-second tour of the public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"semkg"
)

const triples = `
Germany	type	Country
France	type	Country
Munich	type	City
BMW_Co	type	Company
Munich	country	Germany
BMW_Co	locationCountry	Germany
BMW_320	type	Automobile
BMW_320	assembly	Germany
BMW_320	product	Germany
Audi_TT	type	Automobile
Audi_TT	assembly	Germany
BMW_Z4	type	Automobile
BMW_Z4	assembly	Munich
BMW_X6	type	Automobile
BMW_X6	manufacturer	BMW_Co
Clio	type	Automobile
Clio	assembly	France
`

func main() {
	ctx := context.Background()

	// 1. Load the knowledge graph (or assemble one with NewGraphBuilder).
	g, err := semkg.LoadTriples(strings.NewReader(strings.TrimSpace(triples) + "\n"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g.Stats())

	// 2. Train the predicate embedding (offline phase; seconds at this size).
	model, err := semkg.Train(ctx, g, semkg.TrainConfig{Dim: 24, Epochs: 80, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A library maps user vocabulary to graph vocabulary (Car ->
	// Automobile); heuristics cover abbreviations automatically.
	lib := semkg.NewLibrary()
	lib.AddSynonyms("Car", "Automobile")

	eng, err := semkg.NewEngine(g, model, lib)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Ask: which cars are produced in Germany? The query uses the
	// synonym type <Car>; answers cover the direct assembly schema, the
	// product predicate, the via-city schema and the via-company schema —
	// no exact structural match required.
	res, err := eng.Search(ctx, &semkg.Query{
		Nodes: []semkg.QueryNode{
			{ID: "car", Type: "Car"},
			{ID: "c", Name: "Germany", Type: "Country"},
		},
		Edges: []semkg.QueryEdge{{From: "car", To: "c", Predicate: "assembly"}},
	}, semkg.Options{K: 10, Tau: 0.4, MaxHops: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-%d answers in %s:\n", len(res.Answers), res.Elapsed)
	for i, a := range res.Answers {
		fmt.Printf("%2d. %-10s score=%.3f\n", i+1, a.PivotName, a.Score)
		for _, p := range a.Parts {
			fmt.Printf("      via (pss=%.3f):", p.PSS)
			for _, s := range p.Steps {
				fmt.Printf(" %s -[%s]-> %s", s.FromName, s.Predicate, s.ToName)
			}
			fmt.Println()
		}
	}
}
