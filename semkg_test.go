package semkg_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"semkg"
)

const sampleTriples = `# cars of two countries, several schemas
Germany	type	Country
France	type	Country
Munich	type	City
Paris	type	City
BMW_Co	type	Company
Munich	country	Germany
Paris	country	France
BMW_Co	locationCountry	Germany
BMW_320	type	Automobile
Audi_TT	type	Automobile
BMW_Z4	type	Automobile
BMW_X6	type	Automobile
Clio	type	Automobile
BMW_320	assembly	Germany
BMW_320	product	Germany
Audi_TT	assembly	Germany
Audi_TT	manufacturer	BMW_Co
BMW_Z4	assembly	Munich
BMW_X6	manufacturer	BMW_Co
BMW_X6	product	Germany
Clio	assembly	France
`

func buildEngine(t *testing.T) (*semkg.Engine, *semkg.Graph) {
	t.Helper()
	g, err := semkg.LoadTriples(strings.NewReader(sampleTriples))
	if err != nil {
		t.Fatal(err)
	}
	model, err := semkg.Train(context.Background(), g, semkg.TrainConfig{Dim: 24, Epochs: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lib := semkg.NewLibrary()
	lib.AddSynonyms("Car", "Automobile")
	eng, err := semkg.NewEngine(g, model, lib)
	if err != nil {
		t.Fatal(err)
	}
	return eng, g
}

func TestPublicAPIQuickstart(t *testing.T) {
	eng, _ := buildEngine(t)
	res, err := eng.Search(context.Background(), &semkg.Query{
		Nodes: []semkg.QueryNode{
			{ID: "car", Type: "Car"}, // synonym via library
			{ID: "c", Name: "Germany", Type: "Country"},
		},
		Edges: []semkg.QueryEdge{{From: "car", To: "c", Predicate: "assembly"}},
	}, semkg.Options{K: 10, Tau: 0.25, MaxHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, a := range res.Answers {
		got[a.PivotName] = true
	}
	for _, want := range []string{"BMW_320", "Audi_TT"} {
		if !got[want] {
			t.Errorf("missing %s in %v", want, res.Entities())
		}
	}
	if got["Clio"] {
		t.Error("French car returned for German query")
	}
}

func TestPublicAPITimeBounded(t *testing.T) {
	eng, _ := buildEngine(t)
	res, err := eng.Search(context.Background(), &semkg.Query{
		Nodes: []semkg.QueryNode{
			{ID: "car", Type: "Automobile"},
			{ID: "c", Name: "Germany", Type: "Country"},
		},
		Edges: []semkg.QueryEdge{{From: "car", To: "c", Predicate: "assembly"}},
	}, semkg.Options{K: 10, Tau: 0.25, MaxHops: 3, TimeBound: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("time-bounded search found nothing")
	}
}

// TestPublicAPIStream exercises the streaming facade: typed events arrive
// in documented order and the drained stream equals batch Search.
func TestPublicAPIStream(t *testing.T) {
	eng, _ := buildEngine(t)
	q := &semkg.Query{
		Nodes: []semkg.QueryNode{
			{ID: "car", Type: "Automobile"},
			{ID: "c", Name: "Germany", Type: "Country"},
		},
		Edges: []semkg.QueryEdge{{From: "car", To: "c", Predicate: "assembly"}},
	}
	opts := semkg.Options{K: 10, Tau: 0.25, MaxHops: 3, TimeBound: 2 * time.Second}

	st, err := eng.Stream(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	var sawTopK, sawResult bool
	var final *semkg.Result
	for ev := range st.Events() {
		switch e := ev.(type) {
		case semkg.TopKEvent:
			if sawResult {
				t.Error("topk event after terminal result")
			}
			sawTopK = true
		case semkg.ResultEvent:
			sawResult = true
			final = e.Result
		}
	}
	if !sawTopK || !sawResult {
		t.Fatalf("event coverage: topk=%v result=%v", sawTopK, sawResult)
	}
	if final != st.Result() {
		t.Error("terminal event does not carry Stream.Result")
	}

	batch, err := eng.Search(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Answers) != len(final.Answers) {
		t.Fatalf("stream found %d answers, batch %d", len(final.Answers), len(batch.Answers))
	}
	for i := range batch.Answers {
		if batch.Answers[i].PivotName != final.Answers[i].PivotName {
			t.Errorf("answer %d: %s vs %s", i, final.Answers[i].PivotName, batch.Answers[i].PivotName)
		}
	}
}

func TestModelRoundTripThroughFacade(t *testing.T) {
	g, err := semkg.LoadTriples(strings.NewReader(sampleTriples))
	if err != nil {
		t.Fatal(err)
	}
	model, err := semkg.Train(context.Background(), g, semkg.TrainConfig{Dim: 8, Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := semkg.SaveModel(&buf, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := semkg.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := semkg.NewEngine(g, loaded, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGraphRoundTripThroughFacade(t *testing.T) {
	g, err := semkg.LoadTriples(strings.NewReader(sampleTriples))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := semkg.SaveTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := semkg.LoadTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Error("round trip changed the graph")
	}
}

func TestBuilderThroughFacade(t *testing.T) {
	b := semkg.NewGraphBuilder(4, 4)
	x := b.AddNode("x", "T")
	y := b.AddNode("y", "T")
	b.AddEdge(x, y, "p")
	g := b.Build()
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Error("builder facade broken")
	}
	if _, err := semkg.TrainTransH(context.Background(), g, semkg.TrainConfig{Dim: 4, Epochs: 2}); err != nil {
		t.Errorf("TransH through facade: %v", err)
	}
}

// TestServingPlanCacheThroughFacade: NewServing over the facade Engine
// wrapper must reuse compiled plans across requests that share a query
// shape — the wrapper is unwrapped so the plan-cache identity check
// matches the engine that actually compiled the plan.
func TestServingPlanCacheThroughFacade(t *testing.T) {
	eng, _ := buildEngine(t)
	srv := semkg.NewServing(eng, semkg.ServeConfig{})
	q := &semkg.Query{
		Nodes: []semkg.QueryNode{
			{ID: "car", Type: "Automobile"},
			{ID: "c", Name: "Germany", Type: "Country"},
		},
		Edges: []semkg.QueryEdge{{From: "car", To: "c", Predicate: "assembly"}},
	}
	ctx := context.Background()
	for _, k := range []int{5, 7, 9} { // same shape, different K: plan shared
		if _, err := srv.Search(ctx, q, semkg.Options{K: k, Tau: 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.PlanHits != 2 || st.PlanMisses != 1 {
		t.Fatalf("plan cache through the facade: hits=%d misses=%d, want 2/1", st.PlanHits, st.PlanMisses)
	}

	// The sharded facade path shares plans the same way.
	sharded, err := semkg.NewShardedEngine(eng.Graph(), mustModel(t, eng), semkg.NewLibrary(), semkg.ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ssrv := semkg.NewServing(sharded, semkg.ServeConfig{})
	for _, k := range []int{5, 7} {
		if _, err := ssrv.Search(ctx, q, semkg.Options{K: k, Tau: 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	if st := ssrv.Stats(); st.PlanHits != 1 {
		t.Fatalf("sharded plan cache through the facade: hits=%d, want 1", st.PlanHits)
	}
}

// mustModel retrains the tiny model for the sharded wrapper (the facade
// does not expose the engine's space; retraining with the same seed is
// deterministic and fast).
func mustModel(t *testing.T, _ *semkg.Engine) *semkg.Model {
	t.Helper()
	g, err := semkg.LoadTriples(strings.NewReader(sampleTriples))
	if err != nil {
		t.Fatal(err)
	}
	model, err := semkg.Train(context.Background(), g, semkg.TrainConfig{Dim: 24, Epochs: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// TestBatchThroughFacade: Serving.SearchBatch over the facade wrapper
// answers a mixed group positionally — overlapping shapes share
// sub-query searches, a bad item fails alone, and outcomes equal the
// items run separately.
func TestBatchThroughFacade(t *testing.T) {
	eng, _ := buildEngine(t)
	srv := semkg.NewServing(eng, semkg.ServeConfig{})
	q := &semkg.Query{
		Nodes: []semkg.QueryNode{
			{ID: "car", Type: "Automobile"},
			{ID: "c", Name: "Germany", Type: "Country"},
		},
		Edges: []semkg.QueryEdge{{From: "car", To: "c", Predicate: "assembly"}},
	}
	ctx := context.Background()
	out := srv.SearchBatch(ctx, []semkg.BatchItem{
		{Query: q, Opts: semkg.Options{K: 5, Tau: 0.4}},
		{Query: q, Opts: semkg.Options{K: 2, Tau: 0.4}},
		{Query: &semkg.Query{}, Opts: semkg.Options{K: 5, Tau: 0.4}},
	})
	if len(out) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(out))
	}
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("good items failed: %v / %v", out[0].Err, out[1].Err)
	}
	if out[2].Err == nil {
		t.Fatal("empty query did not fail its own slot")
	}
	if len(out[1].Result.Answers) != 2 {
		t.Fatalf("K=2 item returned %d answers", len(out[1].Result.Answers))
	}
	solo, err := srv.Search(ctx, q, semkg.Options{K: 5, Tau: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Answers) != len(out[0].Result.Answers) {
		t.Fatalf("batch answers differ from solo: %d vs %d", len(out[0].Result.Answers), len(solo.Answers))
	}
	if st := srv.Stats(); st.SubHits == 0 {
		t.Fatalf("overlapping batch shared no sub-searches: %+v", st)
	}
}
