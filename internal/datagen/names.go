package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// nameSeedSalt separates the naming random stream from the structural
// one. Zipf naming must not perturb edges, schemas or workloads: the
// namer draws from its own source derived from the profile seed, so a
// world keeps the exact same shape whichever style spells its names.
const nameSeedSalt = 0x6e616d6573 // "names"

// nameVocab is the token vocabulary multi-word names are drawn from,
// zipf-ranked: early words dominate (as "United", "New" or "National" do
// in real entity names), the tail appears rarely. Order is part of the
// deterministic output — append only.
var nameVocab = []string{
	"United", "New", "National", "Royal", "Grand", "Northern", "Southern",
	"Eastern", "Western", "Central", "Great", "Saint", "Upper", "Lower",
	"Old", "Free", "Golden", "Silver", "Iron", "Stone",
	"River", "Lake", "Mountain", "Valley", "Harbor", "Bridge", "Forest",
	"Island", "Coast", "Bay", "Hill", "Field", "Spring", "Crown",
	"Star", "Sun", "Moon", "North", "South", "East", "West",
	"Union", "Republic", "Kingdom", "Federation", "Alliance", "League",
	"Motor", "Engine", "Dynamics", "Industries", "Works", "Systems",
	"Technologies", "Holdings", "Group", "Partners", "Consolidated",
	"General", "Standard", "Precision", "Advanced", "Pacific", "Atlantic",
	"Continental", "Global", "Imperial", "Sterling", "Summit", "Pioneer",
	"Phoenix", "Falcon", "Eagle", "Lion", "Bear", "Wolf", "Fox",
	"Hawk", "Raven", "Tiger", "Panther", "Cobra", "Viper", "Stallion",
	"Alba", "Bravo", "Corda", "Delta", "Echo", "Ferro", "Gala",
	"Helio", "Indus", "Juno", "Kilo", "Luna", "Mira", "Nova",
	"Orion", "Prima", "Quanta", "Rhea", "Sierra", "Terra", "Ultra",
	"Vega", "Wexford", "Xenia", "Yarrow", "Zephyr", "Avalon", "Brix",
	"Calder", "Dorn", "Elm", "Farley", "Grove", "Hale", "Ives",
	"Jarrow", "Keld", "Larkin", "Marsh", "Nesbit", "Orme", "Penrose",
	"Quill", "Rast", "Selby", "Thorne", "Usk", "Vane", "Wren",
	"Ash", "Birch", "Cedar", "Dale", "Ems", "Firth", "Glen",
	"Heath", "Ingram", "Jute", "Kirk", "Lund", "Moor", "Ness",
	"Oak", "Pike", "Quay", "Ridge", "Strand", "Tarn", "Vale",
	"Wold", "York", "Zeal", "Arden", "Bexley", "Cramond", "Dunmore",
	"Eston", "Fenwick", "Garth", "Holm", "Islay", "Jura", "Kendal",
	"Lorne", "Morven", "Nairn", "Orwell", "Pentland", "Renfrew",
	"Solway", "Tweed", "Ullswater", "Verne", "Windermere", "Yell",
	"Zetland", "Alloway", "Braemar", "Carrick", "Dornoch", "Elgin",
	"Fortrose", "Girvan", "Huntly", "Inverness", "Jedburgh", "Kelso",
	"Lanark", "Melrose", "Nethy", "Oban", "Peebles", "Rothesay",
	"Stirling", "Tain", "Urquhart", "Wick",
}

// namer spells node names. The plain style (the default) keeps the
// classic "Kind_<i>" identifiers bit-for-bit; the zipf style memoizes a
// realistic multi-word name (1–4 words) per identifier, unique across
// the world so the builder never merges two entities by accident.
type namer struct {
	zipfStyle bool
	zipf      *rand.Zipf
	rng       *rand.Rand
	memo      map[string]string
	taken     map[string]bool
}

func newNamer(p Profile) *namer {
	n := &namer{memo: make(map[string]string), taken: make(map[string]bool)}
	if p.NameStyle == NameStyleZipf {
		n.zipfStyle = true
		n.rng = rand.New(rand.NewSource(p.Seed ^ nameSeedSalt))
		n.zipf = rand.NewZipf(n.rng, 1.25, 2.0, uint64(len(nameVocab)-1))
	}
	return n
}

// name maps a plain identifier (the classic "Kind_<i>" form) to the
// world's node name. Every call site that re-derives the same identifier
// gets the same spelling back.
func (n *namer) name(plain string) string {
	if !n.zipfStyle {
		return plain
	}
	if got, ok := n.memo[plain]; ok {
		return got
	}
	got := n.fresh()
	n.memo[plain] = got
	n.taken[got] = true
	return got
}

// fresh draws a unique multi-word name: 1–4 zipf-ranked vocabulary words
// (weighted towards 2), growing by a word and finally by a numeric
// suffix when the spelling is already taken.
func (n *namer) fresh() string {
	words := n.draw(n.wordCount())
	for tries := 0; tries < 4; tries++ {
		cand := strings.Join(words, " ")
		if !n.taken[cand] {
			return cand
		}
		words = append(words, nameVocab[n.zipf.Uint64()])
	}
	base := strings.Join(words, " ")
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s %d", base, i)
		if !n.taken[cand] {
			return cand
		}
	}
}

func (n *namer) wordCount() int {
	switch x := n.rng.Float64(); {
	case x < 0.25:
		return 1
	case x < 0.65:
		return 2
	case x < 0.90:
		return 3
	default:
		return 4
	}
}

// draw samples k distinct vocabulary words by zipf rank.
func (n *namer) draw(k int) []string {
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	for len(out) < k {
		w := nameVocab[n.zipf.Uint64()]
		if seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}
