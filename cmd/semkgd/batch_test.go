package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"semkg/internal/api"
	"semkg/internal/serve"
)

const batchBody = `{
  "queries": [
    {"id": "german",
     "query": {"nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany","type":"Country"}],
               "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]}},
    {"id": "german-k3",
     "query": {"nodes":[{"id":"v1","type":"Automobile"},{"id":"v2","name":"Germany","type":"Country"}],
               "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]},
     "options": {"k": 3, "tau": 0.75}},
    {"id": "bad",
     "query": {"nodes":[{"id":"v1"}], "edges":[]}}
  ],
  "options": {"k": 10, "tau": 0.75}
}`

func TestBatchEndpoint(t *testing.T) {
	srv := testServer(t, serve.Config{})

	resp := post(t, srv, "/v1/batch", batchBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res api.BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(res.Results))
	}

	// Item 0: full K under the shared options.
	r0 := res.Results[0]
	if r0.Index != 0 || r0.ID != "german" || r0.Error != "" || r0.Result == nil {
		t.Fatalf("item 0 attribution: %+v", r0)
	}
	got := make(map[string]bool)
	for _, a := range r0.Result.Answers {
		got[a.Entity] = true
	}
	for _, want := range []string{"BMW_320", "Audi_TT", "BMW_Z4", "BMW_X6"} {
		if !got[want] {
			t.Errorf("item 0 missing %s: %v", want, r0.Result.Answers)
		}
	}

	// Item 1: per-query override caps K at 3.
	r1 := res.Results[1]
	if r1.Error != "" || r1.Result == nil || len(r1.Result.Answers) != 3 {
		t.Fatalf("item 1 (k=3): %+v", r1)
	}

	// Item 2: invalid query fails alone, with attribution.
	r2 := res.Results[2]
	if r2.ID != "bad" || r2.Error == "" || r2.Result != nil {
		t.Fatalf("item 2 should fail alone: %+v", r2)
	}
}

func TestBatchEndpointSharesSubSearches(t *testing.T) {
	layer := serve.New(testEngine(t), serve.Config{})
	srv := httptest.NewServer(newMux(layer))
	t.Cleanup(srv.Close)

	resp := post(t, srv, "/v1/batch", batchBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	st := layer.Stats()
	if st.SubHits == 0 {
		t.Fatalf("overlapping batch produced no shared sub-search hits: %+v", st)
	}
}

func TestBatchEndpointMalformed(t *testing.T) {
	srv := testServer(t, serve.Config{})
	for _, body := range []string{
		`{"queries": [], "bogus": 1}`,
		`not json`,
	} {
		resp := post(t, srv, "/v1/batch", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestBatchEndpointStreaming(t *testing.T) {
	srv := testServer(t, serve.Config{})

	resp := post(t, srv, "/v1/batch?stream=1", batchBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}

	results := make(map[int]*api.Result)
	errLines := make(map[int]string)
	ids := make(map[int]string)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		ev, err := api.DecodeBatchEvent(sc.Bytes())
		if err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		ids[ev.Index] = ev.ID
		switch ev.Event.Event {
		case api.EventResult:
			results[ev.Index] = ev.Result
		case api.EventError:
			errLines[ev.Index] = ev.ErrorText
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if results[0] == nil || results[1] == nil {
		t.Fatalf("missing terminal results: %v", results)
	}
	if len(results[1].Answers) != 3 {
		t.Fatalf("item 1 answers = %d, want 3", len(results[1].Answers))
	}
	if errLines[2] == "" {
		t.Fatalf("invalid item 2 produced no error line: %v", errLines)
	}
	if ids[0] != "german" || ids[1] != "german-k3" || ids[2] != "bad" {
		t.Fatalf("attribution IDs lost: %v", ids)
	}
}

// TestBatchInterleavedWithIngest exercises batch traffic racing live
// ingestion through the HTTP surface (the handler-level mirror of the
// serve-layer generation tests): every batch answers 200 with per-item
// success, and after the final ingest a batch sees the new entity.
func TestBatchInterleavedWithIngest(t *testing.T) {
	srv := testServer(t, serve.Config{Queue: 64})

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp := post(t, srv, "/v1/batch", batchBody)
				var res api.BatchResult
				err := json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("round %d: status %d", i, resp.StatusCode)
					return
				}
				for _, r := range res.Results[:2] {
					if r.Error != "" {
						errs[c] = fmt.Errorf("round %d item %d: %s", i, r.Index, r.Error)
						return
					}
				}
			}
		}(c)
	}
	for a := 0; a < 4; a++ {
		body := fmt.Sprintf("{\"s\":\"Inge_%d\",\"p\":\"type\",\"o\":\"Automobile\"}\n{\"s\":\"Inge_%d\",\"p\":\"assembly\",\"o\":\"Germany\"}\n", a, a)
		resp := post(t, srv, "/v1/ingest", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", a, resp.StatusCode)
		}
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Post-ingest batch sees the ingested autos.
	resp := post(t, srv, "/v1/batch", strings.Replace(batchBody, `"k": 10`, `"k": 40`, 1))
	defer resp.Body.Close()
	var res api.BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	found := make(map[string]bool)
	for _, a := range res.Results[0].Result.Answers {
		found[a.Entity] = true
	}
	for a := 0; a < 4; a++ {
		if !found[fmt.Sprintf("Inge_%d", a)] {
			t.Fatalf("Inge_%d missing after interleaved ingest: %v", a, res.Results[0].Result.Answers)
		}
	}
}
