// Hotpath experiment: before/after micro-benchmarks of the allocation-lean,
// index-backed query hot path against the preserved seed implementations
// (transform.MatchNodeScan, semgraph.ScanWeighter, astar.LegacySearcher).
// Each pair measures the same work with the same fixtures, so the deltas
// isolate the arena/index refactor. Run via `go run ./cmd/kgbench -exp
// hotpath` (writes BENCH_hotpath.json) or the BenchmarkAStarNext /
// BenchmarkNodeMax / BenchmarkMatchNode / BenchmarkSearchEndToEnd
// benchmarks at the repository root.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"semkg/internal/astar"
	"semkg/internal/core"
	"semkg/internal/datagen"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/semgraph"
	"semkg/internal/ta"
)

// compiledSub is one sub-query compiled to searcher inputs.
type compiledSub struct {
	sub   astar.SubQuery
	preds []string
}

// matchEstimator adapts a φ-resolution function to query.CostEstimator;
// the before side plugs in the seed linear scans, the after side the
// memoized indexed matcher.
type matchEstimator struct {
	match func(name, typeName string) []kg.NodeID
	g     *kg.Graph
}

func (e matchEstimator) AnchorCount(name, typeName string) int {
	return len(e.match(name, typeName))
}
func (e matchEstimator) AvgDegree() float64 { return e.g.AvgDegree() }

// compileSubQueries decomposes q and resolves its φ sets the way
// core.Engine.buildSearchers does. With scan=true every resolution goes
// through the seed linear scans (the "before" side); the two sides produce
// identical sub-queries by the index/scan equivalence property.
func compileSubQueries(env *Env, q *query.Graph, scan bool) ([]compiledSub, *query.Decomposition, error) {
	m := env.Engine.Matcher()
	match := m.MatchNodeScan
	if !scan {
		match = m.Memo().MatchNode
	}
	est := matchEstimator{match, env.Dataset.Graph}
	d, err := query.Decompose(q, query.Options{Estimator: est, MaxHops: env.Cfg.MaxHops})
	if err != nil {
		return nil, nil, err
	}
	var out []compiledSub
	for _, sub := range d.Subs {
		anchorNode, _ := q.NodeByID(sub.Anchor())
		anchors := match(anchorNode.Name, anchorNode.Type)
		if len(anchors) == 0 {
			return nil, nil, fmt.Errorf("bench: sub-query anchor %q unmatched", sub.Anchor())
		}
		endSets := make([]map[kg.NodeID]bool, sub.Len())
		for i := 1; i < len(sub.NodeIDs); i++ {
			n, _ := q.NodeByID(sub.NodeIDs[i])
			ids := match(n.Name, n.Type)
			if len(ids) == 0 {
				return nil, nil, fmt.Errorf("bench: sub-query node %q unmatched", sub.NodeIDs[i])
			}
			set := make(map[kg.NodeID]bool, len(ids))
			for _, id := range ids {
				set[id] = true
			}
			endSets[i-1] = set
		}
		preds := make([]string, sub.Len())
		for i, edge := range sub.Edges {
			preds[i] = edge.Predicate
		}
		out = append(out, compiledSub{
			sub:   astar.SubQuery{Anchors: anchors, EndSets: endSets},
			preds: preds,
		})
	}
	return out, d, nil
}

// legacyStream resumes a LegacySearcher after its prefetched matches, like
// core's resumeStream.
type legacyStream struct {
	buf    []astar.Match
	pos    int
	search *astar.LegacySearcher
}

func (r *legacyStream) Next() (astar.Match, bool) {
	if r.pos < len(r.buf) {
		m := r.buf[r.pos]
		r.pos++
		return m, true
	}
	return r.search.Next()
}

// renderLegacyAnswers replicates core.Engine.renderAnswers so the legacy
// pipeline does the same answer-materialization work the seed engine did
// (names, path steps, bindings) — without it the end-to-end comparison
// would unfairly charge rendering to the engine side only.
func renderLegacyAnswers(env *Env, finals []ta.Final, d *query.Decomposition) []core.Answer {
	g := env.Dataset.Graph
	answers := make([]core.Answer, len(finals))
	for i, f := range finals {
		a := core.Answer{
			Pivot:     f.Pivot,
			PivotName: g.NodeName(f.Pivot),
			Score:     f.Score,
			Bindings:  make(map[string]string),
		}
		for pi, part := range f.Parts {
			sm := core.SubMatch{PSS: part.PSS}
			for _, eid := range part.Edges {
				edge := g.EdgeAt(eid)
				sm.Steps = append(sm.Steps, core.PathStep{
					FromName:  g.NodeName(edge.Src),
					Predicate: g.PredName(edge.Pred),
					ToName:    g.NodeName(edge.Dst),
				})
			}
			a.Parts = append(a.Parts, sm)
			sub := d.Subs[pi]
			bind := func(qid string, u kg.NodeID) {
				if _, taken := a.Bindings[qid]; !taken {
					a.Bindings[qid] = g.NodeName(u)
				}
			}
			bind(sub.NodeIDs[0], part.Nodes[0])
			for s, pos := range part.SegEnds {
				bind(sub.NodeIDs[s+1], part.Nodes[pos])
			}
		}
		answers[i] = a
	}
	return answers
}

// runLegacySearch replays the seed Engine.Search exact (non-TBQ) pipeline:
// scan-based φ resolution, per-call ScanWeighter rows, LegacySearcher per
// sub-query with concurrent prefetch, TA assembly, and answer rendering.
func runLegacySearch(env *Env, q *query.Graph, k int) ([]core.Answer, []ta.Final, error) {
	subs, d, err := compileSubQueries(env, q, true)
	if err != nil {
		return nil, nil, err
	}
	sopts := astar.Options{Tau: env.Cfg.Tau, MaxHops: env.Cfg.MaxHops}
	searchers := make([]*astar.LegacySearcher, len(subs))
	for i, cs := range subs {
		w, err := semgraph.NewScanWeighter(env.Dataset.Graph, env.Space, cs.preds)
		if err != nil {
			return nil, nil, err
		}
		searchers[i] = astar.NewLegacySearcher(env.Dataset.Graph, w, cs.sub, sopts)
	}
	prefetched := make([][]astar.Match, len(searchers))
	var wg sync.WaitGroup
	for i, s := range searchers {
		wg.Add(1)
		go func(i int, s *astar.LegacySearcher) {
			defer wg.Done()
			for len(prefetched[i]) < k {
				m, ok := s.Next()
				if !ok {
					break
				}
				prefetched[i] = append(prefetched[i], m)
			}
		}(i, s)
	}
	wg.Wait()
	streams := make([]ta.Stream, len(searchers))
	for i := range searchers {
		streams[i] = &legacyStream{buf: prefetched[i], search: searchers[i]}
	}
	finals, _ := ta.Assemble(streams, k)
	return renderLegacyAnswers(env, finals, d), finals, nil
}

// BenchCase is one before/after hotpath micro-benchmark pair. Before runs
// the preserved seed implementation, After the index/arena-backed one.
type BenchCase struct {
	Name   string
	Before func(b *testing.B)
	After  func(b *testing.B)
}

// HotpathCases builds the four before/after pairs on the environment's
// first simple query (plus a medium query for end-to-end coverage of
// multi-sub-query decompositions).
func HotpathCases(env *Env) ([]BenchCase, error) {
	g := env.Dataset.Graph
	q := env.Dataset.Simple[0]
	subs, _, err := compileSubQueries(env, q.Graph, false)
	if err != nil {
		return nil, err
	}
	cs := subs[0]
	sopts := astar.Options{Tau: env.Cfg.Tau, MaxHops: env.Cfg.MaxHops}
	rows, err := semgraph.NewRowCache(g, env.Space)
	if err != nil {
		return nil, err
	}

	// Node-matching probes: names and types with exact, abbreviated,
	// initials, and miss outcomes, exercising the fallback paths.
	var probes [][2]string
	for _, gq := range env.Dataset.Simple {
		for _, n := range gq.Graph.Nodes {
			probes = append(probes, [2]string{n.Name, n.Type})
		}
	}
	probes = append(probes,
		[2]string{"", "Automobile"},
		[2]string{"no_such_entity_name", ""},
	)

	drain := func(next func() (astar.Match, bool)) int {
		n := 0
		for {
			if _, ok := next(); !ok {
				return n
			}
			n++
		}
	}

	cases := []BenchCase{
		{
			Name: "AStarNext",
			Before: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w, err := semgraph.NewScanWeighter(g, env.Space, cs.preds)
					if err != nil {
						b.Fatal(err)
					}
					if drain(astar.NewLegacySearcher(g, w, cs.sub, sopts).Next) == 0 {
						b.Fatal("legacy searcher found no matches")
					}
				}
			},
			After: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w, err := semgraph.NewWeighterCached(rows, cs.preds)
					if err != nil {
						b.Fatal(err)
					}
					if drain(astar.NewSearcher(g, w, cs.sub, sopts).Next) == 0 {
						b.Fatal("arena searcher found no matches")
					}
				}
			},
		},
		{
			Name: "NodeMax",
			Before: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w, err := semgraph.NewScanWeighter(g, env.Space, cs.preds)
					if err != nil {
						b.Fatal(err)
					}
					acc := 0.0
					for u := 0; u < g.NumNodes(); u++ {
						acc += w.NodeMax(kg.NodeID(u), 0)
					}
					if acc <= 0 {
						b.Fatal("no bound mass")
					}
				}
			},
			After: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w, err := semgraph.NewWeighterCached(rows, cs.preds)
					if err != nil {
						b.Fatal(err)
					}
					acc := 0.0
					for u := 0; u < g.NumNodes(); u++ {
						acc += w.NodeMax(kg.NodeID(u), 0)
					}
					if acc <= 0 {
						b.Fatal("no bound mass")
					}
				}
			},
		},
		{
			Name: "MatchNode",
			Before: func(b *testing.B) {
				b.ReportAllocs()
				m := env.Engine.Matcher()
				for i := 0; i < b.N; i++ {
					total := 0
					for _, pr := range probes {
						total += len(m.MatchNodeScan(pr[0], pr[1]))
					}
					if total == 0 {
						b.Fatal("no matches")
					}
				}
			},
			After: func(b *testing.B) {
				b.ReportAllocs()
				m := env.Engine.Matcher()
				for i := 0; i < b.N; i++ {
					total := 0
					for _, pr := range probes {
						total += len(m.MatchNode(pr[0], pr[1]))
					}
					if total == 0 {
						b.Fatal("no matches")
					}
				}
			},
		},
		{
			Name: "SearchEndToEnd",
			Before: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					answers, _, err := runLegacySearch(env, q.Graph, 20)
					if err != nil {
						b.Fatal(err)
					}
					if len(answers) == 0 {
						b.Fatal("legacy search found no answers")
					}
				}
			},
			After: func(b *testing.B) {
				b.ReportAllocs()
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					res, err := env.Engine.Search(ctx, q.Graph, env.SearchOptions(20))
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Answers) == 0 {
						b.Fatal("search found no answers")
					}
				}
			},
		},
	}
	return cases, nil
}

// HotpathStat is one measured side of a pair.
type HotpathStat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// HotpathRow is one before/after comparison.
type HotpathRow struct {
	Name       string      `json:"name"`
	Before     HotpathStat `json:"before"`
	After      HotpathStat `json:"after"`
	Speedup    float64     `json:"speedup"`     // before.ns / after.ns
	AllocRatio float64     `json:"alloc_ratio"` // before.allocs / after.allocs
}

// HotpathResult is the experiment artifact (BENCH_hotpath.json).
type HotpathResult struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	EnvInfo
	Rows []HotpathRow `json:"benchmarks"`
}

func stat(r testing.BenchmarkResult) HotpathStat {
	return HotpathStat{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// RunHotpath measures every before/after pair with testing.Benchmark.
func RunHotpath(env *Env) (*HotpathResult, error) {
	cases, err := HotpathCases(env)
	if err != nil {
		return nil, err
	}
	res := &HotpathResult{
		Dataset: env.Cfg.Profile.Name,
		Scale:   fmt.Sprintf("%d nodes / %d edges", env.Dataset.Graph.NumNodes(), env.Dataset.Graph.NumEdges()),
		EnvInfo: CaptureEnv(),
	}
	for _, c := range cases {
		before := stat(testing.Benchmark(c.Before))
		after := stat(testing.Benchmark(c.After))
		row := HotpathRow{Name: c.Name, Before: before, After: after}
		if after.NsPerOp > 0 {
			row.Speedup = before.NsPerOp / after.NsPerOp
		}
		if after.AllocsPerOp > 0 {
			row.AllocRatio = float64(before.AllocsPerOp) / float64(after.AllocsPerOp)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteJSON stores the artifact.
func (r *HotpathResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the comparison as a text table.
func (r *HotpathResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Hotpath before/after (%s, %s, %s/%s)", r.Dataset, r.Scale, r.GOOS, r.GOARCH),
		Header: []string{"benchmark", "before ns/op", "after ns/op", "speedup", "before allocs", "after allocs", "alloc ratio"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.0f", row.Before.NsPerOp),
			fmt.Sprintf("%.0f", row.After.NsPerOp),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d", row.Before.AllocsPerOp),
			fmt.Sprintf("%d", row.After.AllocsPerOp),
			fmt.Sprintf("%.2fx", row.AllocRatio),
		)
	}
	return t
}

// HotpathEnvConfig is the default configuration for the hotpath experiment
// (shared by kgbench and the root benchmarks so numbers are comparable).
func HotpathEnvConfig(scale float64) Config {
	return Config{Profile: datagen.DBpediaLike(scale)}
}
