// Command kgsearch answers query graphs over a knowledge graph with the
// semantic-guided (SGQ) or time-bounded (TBQ) search.
//
// Single-edge queries come from flags:
//
//	kgsearch -graph g.tsv -model m.bin -type Automobile -entity Germany -pred assembly -k 10
//
// General query graphs come from a JSON file (the query.Graph shape):
//
//	kgsearch -graph g.tsv -model m.bin -queryfile q.json -k 10 -bound 50ms
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/query"
)

func main() {
	graphFile := flag.String("graph", "", "triple file (required)")
	modelFile := flag.String("model", "", "embedding model file (required)")
	queryFile := flag.String("queryfile", "", "JSON query graph file")
	focusType := flag.String("type", "", "focus entity type (single-edge query)")
	entity := flag.String("entity", "", "anchor entity name (single-edge query)")
	pred := flag.String("pred", "", "query predicate (single-edge query)")
	k := flag.Int("k", 10, "number of answers")
	tau := flag.Float64("tau", 0.6, "pss threshold τ")
	maxHops := flag.Int("nhat", 4, "desired path length n̂")
	bound := flag.Duration("bound", 0, "response time bound (0 = exact SGQ)")
	flag.Parse()

	if *graphFile == "" || *modelFile == "" {
		fmt.Fprintln(os.Stderr, "kgsearch: -graph and -model are required")
		os.Exit(2)
	}
	g := loadGraph(*graphFile)
	model := loadModel(*modelFile)
	space, err := model.Space(g)
	if err != nil {
		fail(err)
	}
	engine, err := core.NewEngine(g, space, nil)
	if err != nil {
		fail(err)
	}

	var q query.Graph
	switch {
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fail(err)
		}
		if err := json.Unmarshal(data, &q); err != nil {
			fail(fmt.Errorf("parsing query: %w", err))
		}
	case *focusType != "" && *entity != "" && *pred != "":
		q = query.Graph{
			Nodes: []query.Node{
				{ID: "v1", Type: *focusType},
				{ID: "v2", Name: *entity},
			},
			Edges: []query.Edge{{From: "v1", To: "v2", Predicate: *pred}},
		}
	default:
		fmt.Fprintln(os.Stderr, "kgsearch: provide -queryfile or -type/-entity/-pred")
		os.Exit(2)
	}

	res, err := engine.Search(context.Background(), &q, core.Options{
		K: *k, Tau: *tau, MaxHops: *maxHops, TimeBound: *bound,
	})
	if err != nil {
		fail(err)
	}
	mode := "SGQ (exact)"
	if *bound > 0 {
		mode = fmt.Sprintf("TBQ (bound %s, approximate=%v)", *bound, res.Approximate)
	}
	fmt.Printf("%s answered in %s — %d answer(s)\n", mode,
		res.Elapsed.Round(time.Microsecond), len(res.Answers))
	for i, a := range res.Answers {
		fmt.Printf("%2d. %-24s score=%.3f\n", i+1, a.PivotName, a.Score)
		for _, p := range a.Parts {
			fmt.Printf("      pss=%.3f:", p.PSS)
			for _, s := range p.Steps {
				fmt.Printf(" %s-[%s]->%s", s.FromName, s.Predicate, s.ToName)
			}
			fmt.Println()
		}
	}
}

func loadGraph(path string) *kg.Graph {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	g, err := kg.ReadTriples(f)
	if err != nil {
		fail(err)
	}
	return g
}

func loadModel(path string) *embed.Model {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	m, err := embed.ReadModel(f)
	if err != nil {
		fail(err)
	}
	return m
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "kgsearch: %v\n", err)
	os.Exit(1)
}
