package tbq

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semkg/internal/astar"
)

// TestRunHookedConcurrentHooks is the RunHooked stress test: many
// sub-queries search eagerly in parallel, with hooks recording from the
// concurrent search goroutines, under a deterministic StepClock. Run with
// -race. Asserted invariants, per iteration:
//
//   - OnAlert fires at most once (the CAS in Algorithm 3's estimator), and
//     never on an exhausted run;
//   - per sub-query, OnCollected totals are consecutive (1,2,3,…) — each
//     call reports one newly collected distinct entity;
//   - OnSubDone's final total, OnAssembly's sizes and Result.Collected all
//     agree with the last OnCollected total.
func TestRunHookedConcurrentHooks(t *testing.T) {
	const (
		nSubs = 8
		k     = 10
		iters = 10
	)
	g, sw, sub := hubGraph(20, 60)

	for iter := 0; iter < iters; iter++ {
		// A short bound so the alert path trips while several sub-query
		// goroutines are still collecting concurrently.
		bound := time.Duration(2+iter) * time.Millisecond
		searchers := make([]*astar.Searcher, nSubs)
		for i := range searchers {
			searchers[i] = astar.NewSearcher(g, sw, sub, searchOpts())
		}

		var alerts atomic.Int32
		collected := make([][]int, nSubs) // appended to only by sub i's goroutine
		done := make([]int, nSubs)
		var doneMu sync.Mutex
		var assemblySizes []int

		hooks := Hooks{
			OnCollected: func(sub, total int) {
				collected[sub] = append(collected[sub], total)
			},
			OnSubDone: func(sub, total int) {
				doneMu.Lock()
				done[sub] = total
				doneMu.Unlock()
			},
			OnAlert: func(elapsed, projected time.Duration) {
				if elapsed < 0 || projected <= 0 {
					t.Errorf("iter %d: OnAlert(%v, %v) out of range", iter, elapsed, projected)
				}
				alerts.Add(1)
			},
			OnAssembly: func(sizes []int) {
				assemblySizes = append([]int(nil), sizes...)
			},
		}
		res := RunHooked(context.Background(), searchers, k, Config{
			Bound:      bound,
			Clock:      &StepClock{Step: 20 * time.Microsecond},
			PerMatchTA: time.Microsecond,
		}, hooks)

		if n := alerts.Load(); n > 1 {
			t.Fatalf("iter %d: OnAlert fired %d times, want at most once", iter, n)
		}
		if res.Exhausted && alerts.Load() != 0 {
			t.Fatalf("iter %d: exhausted run still alerted", iter)
		}
		if len(res.Collected) != nSubs || len(assemblySizes) != nSubs {
			t.Fatalf("iter %d: collected sizes %d / assembly %d, want %d",
				iter, len(res.Collected), len(assemblySizes), nSubs)
		}
		for s := 0; s < nSubs; s++ {
			for i, total := range collected[s] {
				if total != i+1 {
					t.Fatalf("iter %d sub %d: OnCollected totals %v not consecutive", iter, s, collected[s])
				}
			}
			final := len(collected[s])
			if done[s] != final {
				t.Fatalf("iter %d sub %d: OnSubDone total %d != last OnCollected %d", iter, s, done[s], final)
			}
			if res.Collected[s] != final || assemblySizes[s] != final {
				t.Fatalf("iter %d sub %d: Result.Collected %d / OnAssembly %d != OnCollected %d",
					iter, s, res.Collected[s], assemblySizes[s], final)
			}
		}
	}
}

// TestRunHookedAmpleBoundNoAlert: with a bound the searches cannot
// consume, every sub-query exhausts, no alert fires, and the hooks'
// accounting still matches the result.
func TestRunHookedAmpleBoundNoAlert(t *testing.T) {
	g, sw, sub := hubGraph(6, 15)
	const nSubs = 4
	searchers := make([]*astar.Searcher, nSubs)
	for i := range searchers {
		searchers[i] = astar.NewSearcher(g, sw, sub, searchOpts())
	}
	var alerts atomic.Int32
	totals := make([]atomic.Int64, nSubs)
	res := RunHooked(context.Background(), searchers, 5, Config{
		Bound:      time.Hour,
		Clock:      &StepClock{Step: 10 * time.Microsecond},
		PerMatchTA: time.Nanosecond,
	}, Hooks{
		OnCollected: func(sub, total int) { totals[sub].Store(int64(total)) },
		OnAlert:     func(time.Duration, time.Duration) { alerts.Add(1) },
	})
	if !res.Exhausted {
		t.Fatal("ample bound should exhaust")
	}
	if alerts.Load() != 0 {
		t.Fatalf("OnAlert fired %d times on an exhausted run", alerts.Load())
	}
	for s := 0; s < nSubs; s++ {
		if got := totals[s].Load(); int(got) != res.Collected[s] {
			t.Fatalf("sub %d: last OnCollected %d != Collected %d", s, got, res.Collected[s])
		}
	}
}
