package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// startDrainServer runs an http.Server over a loopback listener with
// graceful shutdown armed on sig.
func startDrainServer(t *testing.T, handler http.Handler, timeout time.Duration) (base string, sig chan os.Signal, drained <-chan error, serveErr <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	sig = make(chan os.Signal, 1)
	drained = drainOnSignal(srv, nil, timeout, sig)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String(), sig, drained, errCh
}

// TestGracefulDrainFinishesInflight: a SIGTERM arriving mid-request
// stops the listener but lets the in-flight request complete before the
// process exits.
func TestGracefulDrainFinishesInflight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	handler := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		started <- struct{}{}
		<-release
		io.WriteString(w, "done")
	})
	base, sig, drained, serveErr := startDrainServer(t, handler, 5*time.Second)

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()

	<-started // the request is in flight
	sig <- syscall.SIGTERM
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// The listener is down but the in-flight request still completes.
	close(release)
	r := <-got
	if r.err != nil || r.body != "done" {
		t.Fatalf("in-flight request: body=%q err=%v", r.body, r.err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain error: %v", err)
	}
}

// TestGracefulDrainDeadline: a request that outlives the drain timeout
// does not hold shutdown hostage — Shutdown reports the deadline.
func TestGracefulDrainDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{}, 1)
	handler := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		started <- struct{}{}
		<-block
	})
	base, sig, drained, _ := startDrainServer(t, handler, 20*time.Millisecond)
	go http.Get(base + "/stuck")
	<-started
	sig <- syscall.SIGTERM
	if err := <-drained; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want DeadlineExceeded", err)
	}
}
