// Replica experiment: the failure-handling numbers that back the
// replication chapter — all measured against real HTTP streams and real
// fault injection, never modeled. Three measurements: recovery time
// after a follower is killed mid-delta-stream (reconnect + catch-up),
// live-QPS through a primary kill and follower promotion (the failover
// dip), and catch-up time as a function of the delta backlog accumulated
// while the follower was down (including the forced snapshot-resync once
// compaction passes the follower's generation). Run via `go run
// ./cmd/kgbench -exp replica` (writes BENCH_replica.json).
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/api"
	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/faultinject"
	"semkg/internal/kg"
	"semkg/internal/replica"
	"semkg/internal/serve"
)

// CatchupPoint is one backlog catch-up measurement: the follower is
// severed, B deltas commit while it is down, and the clock runs from
// the moment reconnection is allowed until the follower serves the
// primary's head generation.
type CatchupPoint struct {
	Backlog    int     `json:"backlog_deltas"`
	RecoveryMs float64 `json:"recovery_ms"`
	Reconnects uint64  `json:"reconnects"`
	// SnapshotResync reports whether this catch-up fell back to a full
	// snapshot (the primary compacted past the follower's generation)
	// instead of resuming the delta stream.
	SnapshotResync bool `json:"snapshot_resync"`
	// Converged is the snapshot-byte equality check of the recovered
	// follower against the primary.
	Converged bool `json:"converged"`
}

// FailoverResult is the live-QPS failover measurement.
type FailoverResult struct {
	QPSBefore float64 `json:"qps_before"`
	QPSAfter  float64 `json:"qps_after"`
	// DipMs is the measured outage window: from the primary kill to the
	// first successful request against the promoted follower. It covers
	// the controller's failure detection (health probes) plus the
	// promotion and traffic re-point.
	DipMs float64 `json:"dip_ms"`
	// FailedRequests counts requests lost in the dip window.
	FailedRequests int `json:"failed_requests"`
	// FollowerLagAtKill is the follower's replication lag (deltas) at
	// the moment the primary died — the data-loss exposure window.
	FollowerLagAtKill uint64 `json:"follower_lag_at_kill"`
	BucketMs          int    `json:"bucket_ms"`
	// Timeline is successful requests per bucket across the experiment
	// (kill and promotion land mid-timeline).
	Timeline []int `json:"timeline"`
}

// ReplicaResult is the experiment artifact (BENCH_replica.json).
type ReplicaResult struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	EnvInfo
	Catchup  []CatchupPoint `json:"catchup"`
	Failover FailoverResult `json:"failover"`
}

// replicaLogCap keeps the primary's statement log small enough that the
// largest backlog overruns it, forcing the snapshot-resync path into
// the measurement set.
const replicaLogCap = 600

// prefixSpace builds the predicate space for a follower graph that is a
// replayed prefix of the primary's: the replication stream reproduces
// the primary's predicate intern order, so positions align with the
// trained space.
func prefixSpace(sp *embed.Space) func(*kg.Graph) (core.Queryer, error) {
	return func(g *kg.Graph) (core.Queryer, error) {
		names := g.Predicates()
		vecs := make([]embed.Vector, len(names))
		for i, n := range names {
			if sp.Name(i) != n {
				return nil, fmt.Errorf("bench: follower predicate %d is %q, trained space has %q", i, n, sp.Name(i))
			}
			vecs[i] = sp.Vector(i)
		}
		sub, err := embed.NewSpace(names, vecs)
		if err != nil {
			return nil, err
		}
		return core.NewEngine(g, sub, nil)
	}
}

// replicaPair wires a primary (over the env graph) and an empty-booted
// follower connected through a fault-injection proxy.
type replicaPair struct {
	primary  *replica.Primary
	follower *replica.Follower
	proxy    *faultinject.Proxy
	ts       *httptest.Server
	stop     context.CancelFunc
}

func newReplicaPair(env *Env) (*replicaPair, error) {
	build := func(g *kg.Graph) (core.Queryer, error) {
		return core.NewEngine(g, env.Space, env.Dataset.Library)
	}
	srvP := serve.New(env.Engine, serve.Config{Build: build})
	p := replica.NewPrimary(srvP, replica.Config{MaxLogStatements: replicaLogCap})

	mux := http.NewServeMux()
	mux.Handle("/v1/replicate", p)
	ts := httptest.NewServer(mux)

	proxy, err := faultinject.NewProxy(ts.Listener.Addr().String())
	if err != nil {
		ts.Close()
		return nil, err
	}

	fb := prefixSpace(env.Space)
	emptyEng, err := fb(kg.Empty())
	if err != nil {
		proxy.Close()
		ts.Close()
		return nil, err
	}
	srvF := serve.New(emptyEng, serve.Config{Build: fb})
	f := replica.NewFollower(srvF, replica.FollowerConfig{
		Source: proxy.URL(),
		Backoff: replica.Backoff{Min: 5 * time.Millisecond, Max: 100 * time.Millisecond,
			Rand: rand.New(rand.NewSource(11))},
	})
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	return &replicaPair{primary: p, follower: f, proxy: proxy, ts: ts, stop: cancel}, nil
}

func (rp *replicaPair) close() {
	rp.stop()
	rp.primary.Close()
	rp.proxy.Close()
	rp.ts.Close()
}

// snapshotEqual verifies convergence the strong way: byte-identical
// snapshots of both served graphs.
func snapshotEqual(a, b *serve.Engine) (bool, error) {
	var ba, bb bytes.Buffer
	if err := kg.WriteSnapshot(&ba, a.Engine().Graph()); err != nil {
		return false, err
	}
	if err := kg.WriteSnapshot(&bb, b.Engine().Graph()); err != nil {
		return false, err
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes()), nil
}

// RunReplica measures the replication failure-handling numbers. short
// trims backlogs and the failover window for CI smoke runs.
func RunReplica(env *Env, short bool) (*ReplicaResult, error) {
	res := &ReplicaResult{
		Dataset: env.Cfg.Profile.Name,
		Scale:   fmt.Sprintf("%d nodes / %d edges", env.Dataset.Graph.NumNodes(), env.Dataset.Graph.NumEdges()),
		EnvInfo: CaptureEnv(),
	}

	backlogs := []int{4, 16, 64}
	if short {
		backlogs = []int{4, 16}
	}
	for _, b := range backlogs {
		pt, err := measureCatchup(env, b)
		if err != nil {
			return nil, err
		}
		res.Catchup = append(res.Catchup, pt)
	}

	fo, err := measureFailover(env, short)
	if err != nil {
		return nil, err
	}
	res.Failover = fo
	return res, nil
}

// measureCatchup kills the follower's link mid-delta-stream, commits a
// backlog of deltas while reconnects are refused, then opens the link
// and times recovery to the primary's head.
func measureCatchup(env *Env, backlog int) (CatchupPoint, error) {
	rp, err := newReplicaPair(env)
	if err != nil {
		return CatchupPoint{}, err
	}
	defer rp.close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Bootstrap, plus a couple of live deltas so the kill lands in the
	// delta flow, not the snapshot.
	for i := 0; i < 2; i++ {
		d, err := ingestDelta(rp.primary.Serve().Engine().Graph(), 10, int64(100+i))
		if err != nil {
			return CatchupPoint{}, err
		}
		if _, err := rp.primary.Commit(d); err != nil {
			return CatchupPoint{}, err
		}
	}
	if err := rp.follower.WaitSynced(ctx, rp.primary.Head()); err != nil {
		return CatchupPoint{}, err
	}

	// Kill mid-stream and refuse reconnects: the follower is down.
	var refused atomic.Bool
	refused.Store(true)
	rp.proxy.SetScript(func() *faultinject.Script {
		if refused.Load() {
			return faultinject.NewScript(faultinject.Point{After: 0, Op: faultinject.Sever})
		}
		return nil
	})
	rp.proxy.SeverAll()
	statsDown := rp.follower.Stats()

	// The backlog accumulates while the follower is dark.
	for i := 0; i < backlog; i++ {
		d, err := ingestDelta(rp.primary.Serve().Engine().Graph(), 20, int64(1000+i))
		if err != nil {
			return CatchupPoint{}, err
		}
		if _, err := rp.primary.Commit(d); err != nil {
			return CatchupPoint{}, err
		}
	}

	// Open the link; the clock runs until the follower serves head.
	start := time.Now()
	refused.Store(false)
	if err := rp.follower.WaitSynced(ctx, rp.primary.Head()); err != nil {
		return CatchupPoint{}, err
	}
	recovery := time.Since(start)

	statsUp := rp.follower.Stats()
	converged, err := snapshotEqual(rp.follower.Serve(), rp.primary.Serve())
	if err != nil {
		return CatchupPoint{}, err
	}
	return CatchupPoint{
		Backlog:        backlog,
		RecoveryMs:     float64(recovery) / float64(time.Millisecond),
		Reconnects:     statsUp.Reconnects - statsDown.Reconnects,
		SnapshotResync: statsUp.Resyncs > statsDown.Resyncs,
		Converged:      converged,
	}, nil
}

// searchMux serves /v1/search over one serving engine with the api wire
// codec — the measurement client's target on both nodes.
func searchMux(srv *serve.Engine, extra func(mux *http.ServeMux)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		q, opts, err := api.DecodeSearchRequest(r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		res, err := srv.Search(r.Context(), q, opts)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.ResultFrom(res))
	})
	if extra != nil {
		extra(mux)
	}
	return mux
}

// measureFailover runs a live query stream against the primary over
// real HTTP, kills the primary, promotes the synced follower, re-points
// the client, and reports the QPS dip.
func measureFailover(env *Env, short bool) (FailoverResult, error) {
	qs := serveQueries(env)
	if len(qs) == 0 {
		return FailoverResult{}, fmt.Errorf("bench: environment has no workload queries")
	}
	opts := env.SearchOptions(10)

	build := func(g *kg.Graph) (core.Queryer, error) {
		return core.NewEngine(g, env.Space, env.Dataset.Library)
	}
	srvP := serve.New(env.Engine, serve.Config{Build: build})
	p := replica.NewPrimary(srvP, replica.Config{MaxLogStatements: replicaLogCap})
	tsP := httptest.NewServer(searchMux(srvP, func(mux *http.ServeMux) {
		mux.Handle("/v1/replicate", p)
	}))

	fb := prefixSpace(env.Space)
	emptyEng, err := fb(kg.Empty())
	if err != nil {
		tsP.Close()
		return FailoverResult{}, err
	}
	srvF := serve.New(emptyEng, serve.Config{Build: fb})
	f := replica.NewFollower(srvF, replica.FollowerConfig{Source: tsP.URL,
		Backoff: replica.Backoff{Min: 5 * time.Millisecond, Max: 100 * time.Millisecond,
			Rand: rand.New(rand.NewSource(13))}})
	followCtx, stopFollow := context.WithCancel(context.Background())
	go f.Run(followCtx)
	tsF := httptest.NewServer(searchMux(srvF, nil))
	defer tsF.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := f.WaitSynced(ctx, p.Head()); err != nil {
		stopFollow()
		tsP.Close()
		return FailoverResult{}, err
	}

	const bucketMs = 50
	const probeEvery = 20 * time.Millisecond
	phase := 500 * time.Millisecond // before-kill and after-promotion windows
	if short {
		phase = 250 * time.Millisecond
	}

	// The measurement state is shared between concurrent client
	// goroutines and the orchestrator; one mutex guards all of it. The
	// dip is computed from real timestamps (last success before the kill
	// to first success after), not bucket edges — the buckets are only
	// the artifact's timeline.
	var (
		mu        sync.Mutex
		timeline  []int
		failed    int
		killed    bool
		killAt    time.Time
		firstBack time.Time
	)
	startClock := time.Now()
	record := func(ok bool, url string) {
		now := time.Now()
		mu.Lock()
		defer mu.Unlock()
		b := int(now.Sub(startClock) / (bucketMs * time.Millisecond))
		for len(timeline) <= b {
			timeline = append(timeline, 0)
		}
		if !ok {
			failed++
			return
		}
		timeline[b]++
		// Recovery means a success against the promoted follower — an
		// in-flight straggler completing against the dying primary just
		// after the kill must not end the measured dip.
		if killed && firstBack.IsZero() && url == tsF.URL {
			firstBack = now
		}
	}

	var target atomic.Pointer[string]
	target.Store(&tsP.URL)
	client := &http.Client{Timeout: 2 * time.Second}

	// Live clients hammer the routed URL for the whole experiment —
	// including through the outage. Failures during the dip are counted,
	// not retried: the dip is the thing being measured.
	stop := make(chan struct{})
	var clients sync.WaitGroup
	for c := 0; c < 2; c++ {
		clients.Add(1)
		go func(seed int64) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[rng.Intn(len(qs))]
				url := *target.Load()
				body, err := json.Marshal(api.SearchRequest{Query: api.QueryFrom(q), Options: api.OptionsFrom(opts)})
				if err != nil {
					record(false, url)
					continue
				}
				resp, err := client.Post(url+"/v1/search", "application/json", bytes.NewReader(body))
				if err != nil {
					record(false, url)
					continue
				}
				_ = resp.Body.Close()
				record(resp.StatusCode == http.StatusOK, url)
			}
		}(99 + int64(c))
	}

	// The failover controller is the piece a real deployment runs: probe
	// the primary, and on two consecutive failed probes stop tailing,
	// promote the follower, and re-point traffic. Its detection latency
	// (bounded by the probe interval) is part of the measured dip.
	promoted := make(chan *replica.Primary, 1)
	go func() {
		misses := 0
		probe := &http.Client{Timeout: probeEvery}
		for {
			time.Sleep(probeEvery)
			resp, err := probe.Get(tsP.URL + "/healthz")
			if err == nil {
				resp.Body.Close()
				misses = 0
				continue
			}
			if misses++; misses < 2 {
				continue
			}
			stopFollow()
			np := f.Promote(replica.Config{MaxLogStatements: replicaLogCap})
			target.Store(&tsF.URL)
			promoted <- np
			return
		}
	}()

	// Steady state, then the kill: replication primary closed first so
	// its streaming handler returns and the listener can shut down.
	time.Sleep(phase)
	lagAtKill := f.Stats().Lag
	mu.Lock()
	killed = true
	killAt = time.Now()
	mu.Unlock()
	p.Close()
	tsP.CloseClientConnections()
	tsP.Close()

	np := <-promoted
	defer np.Close()
	time.Sleep(phase)
	close(stop)
	clients.Wait()

	mu.Lock()
	defer mu.Unlock()
	fo := FailoverResult{
		FailedRequests:    failed,
		FollowerLagAtKill: lagAtKill,
		BucketMs:          bucketMs,
		Timeline:          timeline,
	}
	if !firstBack.IsZero() {
		fo.DipMs = float64(firstBack.Sub(killAt)) / float64(time.Millisecond)
	}
	killBucket := int(killAt.Sub(startClock) / (bucketMs * time.Millisecond))
	before, after := 0, 0
	for i, n := range timeline {
		if i < killBucket {
			before += n
		} else if i > killBucket {
			after += n
		}
	}
	if beforeSecs := float64(killBucket*bucketMs) / 1000; beforeSecs > 0 {
		fo.QPSBefore = float64(before) / beforeSecs
	}
	if afterSecs := float64((len(timeline)-killBucket-1)*bucketMs) / 1000; afterSecs > 0 {
		fo.QPSAfter = float64(after) / afterSecs
	}
	return fo, nil
}

// WriteJSON stores the artifact.
func (r *ReplicaResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the measurements as a text table.
func (r *ReplicaResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Replication + failover (%s, %s, %s/%s)", r.Dataset, r.Scale, r.GOOS, r.GOARCH),
		Header: []string{"measurement", "value", "detail"},
	}
	for _, c := range r.Catchup {
		mode := "delta resume"
		if c.SnapshotResync {
			mode = "snapshot resync"
		}
		t.AddRow(fmt.Sprintf("catch-up %d deltas", c.Backlog),
			fmt.Sprintf("%.0f ms", c.RecoveryMs),
			fmt.Sprintf("%s, %d reconnect(s), converged=%v", mode, c.Reconnects, c.Converged))
	}
	t.AddRow("failover dip", fmt.Sprintf("%.0f ms", r.Failover.DipMs),
		fmt.Sprintf("%d failed request(s), lag %d at kill", r.Failover.FailedRequests, r.Failover.FollowerLagAtKill))
	t.AddRow("qps before kill", fmt.Sprintf("%.0f", r.Failover.QPSBefore), "live HTTP clients")
	t.AddRow("qps after promote", fmt.Sprintf("%.0f", r.Failover.QPSAfter), "promoted follower")
	return t
}
