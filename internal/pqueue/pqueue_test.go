package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxBasic(t *testing.T) {
	var q Max[string]
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	q.Push("b", 2)
	q.Push("a", 1)
	q.Push("c", 3)
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	v, p, ok := q.Peek()
	if !ok || v != "c" || p != 3 {
		t.Fatalf("Peek = (%q,%v,%v), want (c,3,true)", v, p, ok)
	}
	want := []string{"c", "b", "a"}
	for _, w := range want {
		v, _, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("Pop = (%q,%v), want %q", v, ok, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", q.Len())
	}
}

func TestMaxStableTies(t *testing.T) {
	var q Max[int]
	for i := 0; i < 10; i++ {
		q.Push(i, 1.0)
	}
	for i := 0; i < 10; i++ {
		v, _, _ := q.Pop()
		if v != i {
			t.Fatalf("tie order: got %d at position %d", v, i)
		}
	}
}

func TestMaxOrderingProperty(t *testing.T) {
	f := func(priorities []float64) bool {
		var q Max[int]
		for i, p := range priorities {
			q.Push(i, p)
		}
		prev := 0.0
		first := true
		for {
			_, p, ok := q.Pop()
			if !ok {
				break
			}
			if !first && p > prev {
				return false
			}
			prev, first = p, false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxDrainMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		var q Max[float64]
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
			q.Push(vals[i], vals[i])
		}
		got := q.Drain()
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("trial %d: Drain[%d] = %v, want %v", trial, i, got[i], vals[i])
			}
		}
	}
}

func TestMaxReset(t *testing.T) {
	var q Max[int]
	q.Push(1, 1)
	q.Push(2, 2)
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", q.Len())
	}
	q.Push(3, 3)
	if v, _, _ := q.Pop(); v != 3 {
		t.Fatalf("Pop after Reset = %d, want 3", v)
	}
}

func TestBoundedKeepsTopN(t *testing.T) {
	b := NewBounded[int](3)
	for i := 0; i < 10; i++ {
		b.Push(i, float64(i))
	}
	if !b.Full() {
		t.Fatal("queue should be full")
	}
	got := b.Drain()
	want := []int{9, 8, 7}
	if len(got) != len(want) {
		t.Fatalf("Drain len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBoundedRejectsLow(t *testing.T) {
	b := NewBounded[string](2)
	b.Push("hi1", 0.9)
	b.Push("hi2", 0.8)
	if b.Push("low", 0.1) {
		t.Error("Push below minimum of full queue should report false")
	}
	if mn, _ := b.Min(); mn != 0.8 {
		t.Errorf("Min = %v, want 0.8", mn)
	}
}

func TestBoundedMinEmpty(t *testing.T) {
	b := NewBounded[int](1)
	if _, ok := b.Min(); ok {
		t.Error("Min on empty queue returned ok")
	}
}

func TestBoundedPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBounded(0) did not panic")
		}
	}()
	NewBounded[int](0)
}

func TestBoundedMatchesSortProperty(t *testing.T) {
	f := func(priorities []float64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		b := NewBounded[float64](n)
		for _, p := range priorities {
			b.Push(p, p)
		}
		got := b.Drain()
		sorted := append([]float64(nil), priorities...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		if len(sorted) > n {
			sorted = sorted[:n]
		}
		if len(got) != len(sorted) {
			return false
		}
		for i := range got {
			if got[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
