// Cross-query execution sharing: the sub-query-level counterpart of the
// compile/run split. A compiled plan's sub-query blueprints are immutable
// and content-addressable (Plan.SubqueryKey), and the exact-mode A*
// enumeration over a blueprint is deterministic — so when concurrent
// plans share a blueprint, one enumeration can feed all of them.
// SharedSearch memoizes such an enumeration behind a mutex: each consumer
// reads through the memoized prefix with its own cursor and extends the
// prefix on demand, which makes the in-flight case (two runs pulling at
// once) a singleflight for free — the second puller waits on the mutex
// and then reads the match the first one just computed.
//
// Sharing is restricted to the exact (SGQ) mode: the time-bounded mode's
// eager collection order depends on wall-clock scheduling, so its
// per-sub results are not reusable across runs. The sharing layer above
// (internal/serve) additionally gates entries on the engine generation.
//
// See DESIGN.md, "Cross-query sharing and batch execution".

package core

import (
	"context"
	"fmt"
	"sync"

	"semkg/internal/astar"
	"semkg/internal/query"
	"semkg/internal/ta"
)

// MatchStream yields sub-query matches in non-increasing pss order; it is
// the ta.Stream pull surface, re-exported so sharing layers outside core
// can hold cursors.
type MatchStream = ta.Stream

// SubSource supplies a shared match enumeration for one compiled
// sub-query blueprint: independent cursors over one underlying search,
// plus the searcher's effort counters. *SharedSearch implements it.
type SubSource interface {
	// Cursor returns a new independent read cursor positioned at the
	// start of the enumeration.
	Cursor() MatchStream
	// SearchStats snapshots the underlying searcher's effort counters.
	SearchStats() astar.Stats
}

// SharedSearch memoizes one sub-query A* enumeration so any number of
// concurrent pipeline runs can consume it. The enumeration extends
// on demand: a cursor reading past the memoized prefix computes the next
// match under the lock and appends it, so every cursor observes the
// identical sequence a private searcher would have produced, regardless
// of how many runs share the search or how they interleave. A consumer
// that stops pulling (context cancellation, early TA termination) simply
// leaves the prefix where it is — there is no partial state to unwind,
// and the memoized matches keep serving other consumers.
type SharedSearch struct {
	mu        sync.Mutex
	sr        *astar.Searcher
	matches   []astar.Match
	exhausted bool
}

// NewSharedSearch wraps a freshly built searcher for shared consumption.
// The searcher must not be used directly afterwards.
func NewSharedSearch(sr *astar.Searcher) *SharedSearch {
	return &SharedSearch{sr: sr}
}

// at returns the i-th match of the enumeration, extending it as needed.
func (s *SharedSearch) at(i int) (astar.Match, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.matches) <= i && !s.exhausted {
		m, ok := s.sr.Next()
		if !ok {
			s.exhausted = true
			break
		}
		s.matches = append(s.matches, m)
	}
	if i < len(s.matches) {
		return s.matches[i], true
	}
	return astar.Match{}, false
}

// Cursor implements SubSource: a new independent reader over the shared
// enumeration. Cursors are not safe for concurrent use individually, but
// any number of cursors may be read concurrently.
func (s *SharedSearch) Cursor() MatchStream { return &sharedCursor{s: s} }

// SearchStats implements SubSource: the underlying searcher's counters.
// They aggregate the whole shared enumeration so far, which may exceed
// the effort any single consumer needed.
func (s *SharedSearch) SearchStats() astar.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sr.Stats()
}

// Memoized reports how many matches the enumeration has materialized.
func (s *SharedSearch) Memoized() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.matches)
}

// sharedCursor is one consumer's position in a SharedSearch.
type sharedCursor struct {
	s   *SharedSearch
	pos int
}

// Next returns the next match of the shared enumeration.
func (c *sharedCursor) Next() (astar.Match, bool) {
	m, ok := c.s.at(c.pos)
	if ok {
		c.pos++
	}
	return m, ok
}

// NewSubSearch builds a fresh searcher for the i-th sub-query blueprint
// of p and wraps it for shared consumption. The plan must come from this
// engine's Compile.
func (e *Engine) NewSubSearch(p *Plan, i int) (*SharedSearch, error) {
	if p == nil || p.eng != e {
		return nil, fmt.Errorf("core: NewSubSearch: plan was not compiled by this engine")
	}
	if !p.compiled || i < 0 || i >= len(p.subs) {
		return nil, fmt.Errorf("core: NewSubSearch: no sub-query %d", i)
	}
	sr, err := e.subSearcher(p, i)
	if err != nil {
		return nil, err
	}
	return NewSharedSearch(sr), nil
}

// StreamPlanShared is StreamPlan with per-sub-query match sources
// substituted for fresh searchers: sources[i], when non-nil, supplies
// sub-query i's sorted match stream through a shared enumeration; a nil
// entry gets a private searcher exactly as in StreamPlan. len(sources)
// must equal p.Subqueries(); for a non-compiled plan pass nil. Sharing
// is exact-mode only — a TimeBound > 0 is rejected as a bad request, the
// caller routes time-bounded runs through StreamPlan instead.
//
// A run with shared sources emits the identical event sequence and
// terminal result (answers, scores, order, TA bounds) as StreamPlan with
// the same arguments; only Result.SearchStats differs, reporting the
// shared enumerations' cumulative effort.
func (e *Engine) StreamPlanShared(ctx context.Context, p *Plan, opts Options, sources []SubSource) (*Stream, error) {
	return e.streamShared(ctx, p, opts, sources, false)
}

// streamShared validates and runs a shared-source plan execution.
func (e *Engine) streamShared(ctx context.Context, p *Plan, opts Options, sources []SubSource, quiet bool) (*Stream, error) {
	if err := opts.Validate(); err != nil {
		return nil, badRequest(err)
	}
	opts = opts.withDefaults()
	if err := p.check(e, opts); err != nil {
		return nil, err
	}
	if opts.TimeBound > 0 {
		return nil, badRequest(fmt.Errorf("core: sub-query sharing requires the exact mode (TimeBound = 0)"))
	}
	if want := p.Subqueries(); len(sources) != want {
		return nil, fmt.Errorf("core: %d sub-query sources for a plan with %d sub-queries", len(sources), want)
	}
	return e.startStreamWith(ctx, p, opts, sources, quiet)
}

// SearchPlanShared is Search over a pre-compiled plan with shared
// sub-query sources; see StreamPlanShared.
func (e *Engine) SearchPlanShared(ctx context.Context, p *Plan, opts Options, sources []SubSource) (*Result, error) {
	s, err := e.streamShared(ctx, p, opts, sources, true)
	if err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// BatchSpec is one (query, options) pair of a batch compilation group.
type BatchSpec struct {
	Query *query.Graph
	Opts  Options
}

// CompileBatch compiles a group of queries under one shared φ memo, so
// names and types repeated across the group — the common case for
// overlapping traffic — resolve against the indexes once instead of once
// per query. Results are positional: plans[i] and errs[i] report spec i,
// and one query's failure does not fail its neighbours. The memo caches
// by (name, type) only, which is independent of any option, so specs may
// mix options freely.
func (e *Engine) CompileBatch(specs []BatchSpec) (plans []*Plan, errs []error) {
	memo := e.matcher.Memo()
	plans = make([]*Plan, len(specs))
	errs = make([]error, len(specs))
	for i, sp := range specs {
		plans[i], errs[i] = e.compileMemo(sp.Query, sp.Opts, memo)
	}
	return plans, errs
}
