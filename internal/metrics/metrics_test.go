package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvaluate(t *testing.T) {
	truth := []string{"a", "b", "c", "d"}
	pr := Evaluate([]string{"a", "b", "x", "y"}, truth)
	if pr.Precision != 0.5 {
		t.Errorf("P = %v, want 0.5", pr.Precision)
	}
	if pr.Recall != 0.5 {
		t.Errorf("R = %v, want 0.5", pr.Recall)
	}
	if pr.F1 != 0.5 {
		t.Errorf("F1 = %v, want 0.5", pr.F1)
	}
}

func TestEvaluatePerfect(t *testing.T) {
	pr := Evaluate([]string{"a", "b"}, []string{"a", "b"})
	if pr.Precision != 1 || pr.Recall != 1 || pr.F1 != 1 {
		t.Errorf("perfect = %+v", pr)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	if pr := Evaluate(nil, []string{"a"}); pr.Precision != 0 || pr.Recall != 0 || pr.F1 != 0 {
		t.Errorf("empty answers = %+v", pr)
	}
	if pr := Evaluate([]string{"a"}, nil); pr.Recall != 0 {
		t.Errorf("empty truth = %+v", pr)
	}
	// Duplicate answers count once.
	pr := Evaluate([]string{"a", "a", "a"}, []string{"a", "b"})
	if pr.Precision != 1 || pr.Recall != 0.5 {
		t.Errorf("dedup = %+v", pr)
	}
}

func TestEvaluateRange(t *testing.T) {
	f := func(answers, truth []string) bool {
		pr := Evaluate(answers, truth)
		return pr.Precision >= 0 && pr.Precision <= 1 &&
			pr.Recall >= 0 && pr.Recall <= 1 &&
			pr.F1 >= 0 && pr.F1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	got := Mean([]PR{{1, 1, 1}, {0, 0, 0}})
	if got.Precision != 0.5 || got.Recall != 0.5 || got.F1 != 0.5 {
		t.Errorf("Mean = %+v", got)
	}
	if (Mean(nil) != PR{}) {
		t.Error("Mean(nil) should be zero")
	}
}

func TestJaccard(t *testing.T) {
	if j := Jaccard([]string{"a", "b"}, []string{"a", "b"}); j != 1 {
		t.Errorf("identical = %v", j)
	}
	if j := Jaccard([]string{"a"}, []string{"b"}); j != 0 {
		t.Errorf("disjoint = %v", j)
	}
	if j := Jaccard([]string{"a", "b", "c"}, []string{"b", "c", "d"}); math.Abs(j-0.5) > 1e-12 {
		t.Errorf("half overlap = %v, want 0.5", j)
	}
	if j := Jaccard(nil, nil); j != 1 {
		t.Errorf("both empty = %v, want 1", j)
	}
	if j := Jaccard([]string{"a"}, nil); j != 0 {
		t.Errorf("one empty = %v, want 0", j)
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(a, b []string) bool {
		return math.Abs(Jaccard(a, b)-Jaccard(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPCC(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if p := PCC(x, x); math.Abs(p-1) > 1e-12 {
		t.Errorf("self PCC = %v, want 1", p)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if p := PCC(x, neg); math.Abs(p+1) > 1e-12 {
		t.Errorf("inverse PCC = %v, want -1", p)
	}
	if p := PCC(x, []float64{2, 2, 2, 2, 2}); p != 0 {
		t.Errorf("zero variance = %v, want 0", p)
	}
	if p := PCC(x, []float64{1}); p != 0 {
		t.Errorf("length mismatch = %v, want 0", p)
	}
	if p := PCC(nil, nil); p != 0 {
		t.Errorf("empty = %v, want 0", p)
	}
}

func TestPCCBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(50) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		p := PCC(x, y)
		if p < -1-1e-12 || p > 1+1e-12 || math.IsNaN(p) {
			t.Fatalf("PCC out of range: %v", p)
		}
	}
}

// TestUserStudyAlignedRanking: when the system's ranking agrees with the
// latent quality, the simulated annotators produce a strong positive
// correlation — the Table VII regime.
func TestUserStudyAlignedRanking(t *testing.T) {
	quality := make([]float64, 40)
	for i := range quality {
		quality[i] = 1 - float64(i)*0.02 // rank-aligned, strictly decreasing
	}
	s := UserStudy{Rng: rand.New(rand.NewSource(7)), Noise: 0.1}
	pcc := s.Run(quality)
	if pcc < 0.5 {
		t.Errorf("aligned ranking PCC = %v, want strong positive (>= 0.5)", pcc)
	}
}

// TestUserStudyRandomRanking: a quality-uncorrelated ranking yields weak
// correlation.
func TestUserStudyRandomRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	quality := make([]float64, 40)
	for i := range quality {
		quality[i] = rng.Float64()
	}
	s := UserStudy{Rng: rand.New(rand.NewSource(9)), Noise: 0.1}
	pcc := s.Run(quality)
	if math.Abs(pcc) > 0.45 {
		t.Errorf("random ranking PCC = %v, want weak", pcc)
	}
}

func TestUserStudyDegenerate(t *testing.T) {
	s := UserStudy{Rng: rand.New(rand.NewSource(1))}
	if p := s.Run([]float64{1}); p != 0 {
		t.Errorf("single answer = %v", p)
	}
	if p := (UserStudy{}).Run([]float64{1, 0.5}); p != 0 {
		t.Errorf("nil rng = %v", p)
	}
	// All-equal qualities: every pair is skipped.
	if p := s.Run([]float64{0.5, 0.5, 0.5}); p != 0 {
		t.Errorf("equal qualities = %v", p)
	}
}
