// Package strutil provides small string utilities used across the
// reproduction: edit distance and normalized string similarity (used by the
// p-hom and S4 baselines and by the transformation library), and identifier
// normalization for matching entity/type names.
package strutil

import (
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-character insertions, deletions, and substitutions required to
// turn a into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Single-row dynamic program: prev[j] is the distance between
	// ra[:i] and rb[:j] from the previous outer iteration.
	prev := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur := prev[0]
		prev[0] = i
		for j := 1; j <= len(rb); j++ {
			sub := cur
			if ra[i-1] != rb[j-1] {
				sub++
			}
			cur = prev[j]
			prev[j] = min(sub, min(prev[j]+1, prev[j-1]+1))
		}
	}
	return prev[len(rb)]
}

// Similarity returns a normalized string similarity in [0,1]:
// 1 - Levenshtein(a,b)/max(len(a),len(b)). Identical strings score 1;
// completely disjoint strings approach 0. Both strings are compared
// case-insensitively after Normalize.
func Similarity(a, b string) float64 {
	a, b = Normalize(a), Normalize(b)
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := max(la, lb)
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// Normalize lower-cases s and converts separators (spaces, underscores,
// hyphens) to single underscores so that "BMW 320", "bmw_320" and "BMW-320"
// compare equal.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSep := false
	for _, r := range strings.TrimSpace(s) {
		if r == ' ' || r == '_' || r == '-' || r == '\t' {
			if !lastSep {
				b.WriteRune('_')
				lastSep = true
			}
			continue
		}
		lastSep = false
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}

// IsAbbreviationOf reports whether abbr plausibly abbreviates full:
// either abbr equals the initials of full's words (e.g. "FRG" for
// "Federal Republic of Germany", skipping stop words is not attempted),
// or abbr is a prefix of full of length >= 2 (e.g. "GER" for "Germany").
// The comparison is case-insensitive.
func IsAbbreviationOf(abbr, full string) bool {
	a := Normalize(abbr)
	f := Normalize(full)
	if len(a) < 2 || len(a) >= len(f) {
		return false
	}
	if strings.HasPrefix(f, a) {
		return true
	}
	all, significant := Initials(f)
	return all == a || significant == a
}

// Initials derives the two initials-style abbreviations of an already
// normalized string: the first byte of every underscore-separated word
// (all), and the same skipping stop words (significant) — "FRG" skips the
// "of" in "federal_republic_of_germany"; "USA" keeps every word. The kg
// name indexes precompute these per node so abbreviation matching never
// scans all nodes; keep this in lockstep with IsAbbreviationOf.
func Initials(normalized string) (all, significant string) {
	var a, s strings.Builder
	for _, w := range strings.Split(normalized, "_") {
		if w == "" {
			continue
		}
		a.WriteByte(w[0])
		if !stopWords[w] {
			s.WriteByte(w[0])
		}
	}
	return a.String(), s.String()
}

// stopWords are skipped when deriving initials-style abbreviations.
var stopWords = map[string]bool{
	"of": true, "the": true, "and": true, "for": true, "in": true, "de": true,
}
