package query

import (
	"fmt"
	"math"
	"math/rand"
)

// SubQuery is a path-shaped sub-query graph g_i = v_s...v_p (Definition 6):
// NodeIDs lists the query nodes along the path (first is the specific
// anchor, last is always the pivot), Edges the query edges between
// consecutive nodes (Edges[i] connects NodeIDs[i] and NodeIDs[i+1], in
// either direction).
//
// Following the paper's Figure 16(b), sub-queries walk from each specific
// node all the way to the pivot; a query edge may therefore appear in more
// than one sub-query (their union covers E_Q, per Definition 6), which is
// what makes the non-optimal pivot of Table V produce a 3-edge sub-query.
type SubQuery struct {
	NodeIDs []string
	Edges   []Edge
}

// Len returns the number of query edges in the sub-query.
func (s SubQuery) Len() int { return len(s.Edges) }

// Anchor returns the ID of the path's starting (specific) node.
func (s SubQuery) Anchor() string { return s.NodeIDs[0] }

// End returns the ID of the path's final node (the pivot).
func (s SubQuery) End() string { return s.NodeIDs[len(s.NodeIDs)-1] }

// Decomposition is the result of splitting a query graph around a pivot.
type Decomposition struct {
	Pivot string
	Subs  []SubQuery
	// Cost is the estimated total query processing cost (Eq. 1 objective).
	Cost float64
}

// CostEstimator supplies the statistics used by the Eq. 1 cost model: how
// many candidate matches a query node has (|φ(v)|) and the graph's average
// degree (the branching factor of path search).
type CostEstimator interface {
	AnchorCount(name, typeName string) int
	AvgDegree() float64
}

// fixedEstimator is the default when no estimator is supplied.
type fixedEstimator struct{}

func (fixedEstimator) AnchorCount(string, string) int { return 1 }
func (fixedEstimator) AvgDegree() float64             { return 10 }

// PivotStrategy selects the pivot node for decomposition.
type PivotStrategy int

const (
	// MinCost picks the pivot minimizing the Eq. 1 cost objective
	// (the paper's dynamic-programming solution; with the small query
	// graphs of the benchmarks, exhaustive evaluation of all target
	// pivots is exact and cheap).
	MinCost PivotStrategy = iota
	// RandomPivot picks a pivot uniformly at random among target nodes
	// (the Random baseline of Table VI).
	RandomPivot
)

// Options configures Decompose.
type Options struct {
	Strategy PivotStrategy
	// Rng is required for RandomPivot; ignored otherwise.
	Rng *rand.Rand
	// Estimator supplies cost statistics; nil uses neutral defaults.
	Estimator CostEstimator
	// MaxHops is the user-desired path length n̂ used by the cost model
	// (search space ≈ degree^(n̂·|E_i|)). Zero means 4, the paper default.
	MaxHops int
}

// Decompose splits g into sub-query path graphs per Definition 6. The query
// graph must Validate.
func Decompose(g *Graph, opts Options) (*Decomposition, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	targets := g.Targets()
	switch opts.Strategy {
	case RandomPivot:
		if opts.Rng == nil {
			return nil, fmt.Errorf("query: RandomPivot requires Options.Rng")
		}
		// Retry a few random picks in case a pivot admits no decomposition.
		perm := opts.Rng.Perm(len(targets))
		var lastErr error
		for _, i := range perm {
			d, err := DecomposeWithPivot(g, targets[i], opts)
			if err == nil {
				return d, nil
			}
			lastErr = err
		}
		return nil, lastErr
	case MinCost:
		var best *Decomposition
		for _, pivot := range targets {
			d, err := DecomposeWithPivot(g, pivot, opts)
			if err != nil {
				continue
			}
			if best == nil || d.Cost < best.Cost ||
				(d.Cost == best.Cost && d.Pivot < best.Pivot) {
				best = d
			}
		}
		if best == nil {
			return nil, fmt.Errorf("query: no valid pivot decomposition")
		}
		return best, nil
	default:
		return nil, fmt.Errorf("query: unknown pivot strategy %d", opts.Strategy)
	}
}

// DecomposeWithPivot decomposes g around an explicit pivot target node.
// Walks start at specific nodes and always terminate at the pivot; at each
// step they prefer an uncovered query edge (greedily the one that most
// reduces the BFS distance to the pivot) and fall back to covered edges
// strictly along shortest paths to the pivot. Walks repeat until every
// query edge is covered by at least one sub-query.
func DecomposeWithPivot(g *Graph, pivot string, opts Options) (*Decomposition, error) {
	pnode, ok := g.NodeByID(pivot)
	if !ok {
		return nil, fmt.Errorf("query: pivot %q not in query graph", pivot)
	}
	if pnode.Specific() {
		return nil, fmt.Errorf("query: pivot %q must be a target node", pivot)
	}
	adj := g.adjacency()
	dist := g.bfsDist(pivot)
	covered := make([]bool, len(g.Edges))
	remaining := len(g.Edges)

	walk := func(start string) (SubQuery, bool) {
		sub := SubQuery{NodeIDs: []string{start}}
		onPath := map[string]bool{start: true}
		cur := start
		usedNew := false
		// Track coverage taken during this walk so a dead end can roll it
		// back: edges marked covered by an abandoned walk would otherwise
		// silently drop out of the decomposition.
		var taken []int
		abort := func() (SubQuery, bool) {
			for _, i := range taken {
				covered[i] = false
				remaining++
			}
			return SubQuery{}, false
		}
		for cur != pivot {
			// Prefer an uncovered edge to an unvisited node, greedily the
			// one closest to the pivot.
			bestEdge, bestDist, bestCov := -1, math.MaxInt, true
			for _, inc := range adj[cur] {
				next := g.Edges[inc].other(cur)
				if onPath[next] {
					continue
				}
				d := dist[next]
				if covered[inc] {
					// Covered edges only continue strictly towards the
					// pivot, so the walk terminates.
					if d != dist[cur]-1 {
						continue
					}
				}
				better := false
				switch {
				case !covered[inc] && bestCov:
					better = bestEdge == -1 || d < bestDist || covered[bestEdge]
				case covered[inc] && !bestCov:
					better = false
				default:
					better = bestEdge == -1 || d < bestDist
				}
				if better {
					bestEdge, bestDist, bestCov = inc, d, covered[inc]
				}
			}
			if bestEdge == -1 {
				return abort() // dead end before reaching pivot
			}
			if !covered[bestEdge] {
				covered[bestEdge] = true
				remaining--
				taken = append(taken, bestEdge)
				usedNew = true
			}
			next := g.Edges[bestEdge].other(cur)
			sub.Edges = append(sub.Edges, g.Edges[bestEdge])
			sub.NodeIDs = append(sub.NodeIDs, next)
			onPath[next] = true
			cur = next
		}
		if !usedNew || len(sub.Edges) == 0 {
			return abort()
		}
		return sub, true
	}

	var subs []SubQuery
	progress := true
	for remaining > 0 && progress {
		progress = false
		for _, vs := range g.Specifics() {
			for hasUncovered(adj[vs], covered) {
				sub, ok := walk(vs)
				if !ok {
					break
				}
				subs = append(subs, sub)
				progress = true
			}
		}
		if remaining > 0 && !progress {
			// Residual edges not incident to a specific node (branches
			// hanging between target nodes): force a walk that first moves
			// towards a residual edge, then to the pivot.
			for _, vs := range g.Specifics() {
				sub, ok := walkVia(g, adj, dist, covered, &remaining, vs, pivot)
				if ok {
					subs = append(subs, sub)
					progress = true
					break
				}
			}
		}
	}
	if remaining > 0 {
		return nil, fmt.Errorf("query: %d edge(s) cannot be covered by walks from specific nodes to pivot %q", remaining, pivot)
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("query: decomposition produced no sub-queries")
	}

	d := &Decomposition{Pivot: pivot, Subs: subs}
	d.Cost = decompositionCost(g, d, opts)
	return d, nil
}

// walkVia builds a sub-query from start that passes through some uncovered
// edge and then proceeds to the pivot: shortest path start→a, edge (a,b),
// shortest path b→pivot, rejecting node repeats (sub-queries are path
// graphs). It tries every uncovered edge in both orientations.
func walkVia(g *Graph, adj map[string][]int, distPivot map[string]int, covered []bool, remaining *int, start, pivot string) (SubQuery, bool) {
	for ei, cov := range covered {
		if cov {
			continue
		}
		e := g.Edges[ei]
		for _, orient := range [][2]string{{e.From, e.To}, {e.To, e.From}} {
			a, b := orient[0], orient[1]
			head, ok1 := shortestPath(g, adj, start, a)
			tail, ok2 := shortestPath(g, adj, b, pivot)
			if !ok1 || !ok2 {
				continue
			}
			sub := SubQuery{NodeIDs: head.NodeIDs, Edges: head.Edges}
			sub.Edges = append(sub.Edges, e)
			sub.NodeIDs = append(sub.NodeIDs, tail.NodeIDs...)
			sub.Edges = append(sub.Edges, tail.Edges...)
			if hasRepeats(sub.NodeIDs) {
				continue
			}
			// Mark every traversed uncovered edge as covered.
			index := edgeIndex(g)
			for _, se := range sub.Edges {
				if i, ok := index[edgeKey(se)]; ok && !covered[i] {
					covered[i] = true
					*remaining--
				}
			}
			return sub, true
		}
	}
	return SubQuery{}, false
}

type pathFrag struct {
	NodeIDs []string
	Edges   []Edge
}

// shortestPath returns a BFS shortest path from src to dst (inclusive of
// src, exclusive handling left to caller: NodeIDs covers src..dst).
func shortestPath(g *Graph, adj map[string][]int, src, dst string) (pathFrag, bool) {
	type crumb struct {
		node string
		edge int
	}
	prev := map[string]crumb{src: {src, -1}}
	queue := []string{src}
	for len(queue) > 0 && prev[dst].node == "" {
		cur := queue[0]
		queue = queue[1:]
		for _, inc := range adj[cur] {
			next := g.Edges[inc].other(cur)
			if _, ok := prev[next]; !ok {
				prev[next] = crumb{cur, inc}
				queue = append(queue, next)
			}
		}
	}
	if _, ok := prev[dst]; !ok {
		return pathFrag{}, false
	}
	var nodes []string
	var edges []Edge
	for cur := dst; ; {
		nodes = append([]string{cur}, nodes...)
		c := prev[cur]
		if c.edge == -1 {
			break
		}
		edges = append([]Edge{g.Edges[c.edge]}, edges...)
		cur = c.node
	}
	return pathFrag{NodeIDs: nodes, Edges: edges}, true
}

func hasRepeats(ids []string) bool {
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return true
		}
		seen[id] = true
	}
	return false
}

type ekey struct{ f, t, p string }

func edgeKey(e Edge) ekey { return ekey{e.From, e.To, e.Predicate} }

func edgeIndex(g *Graph) map[ekey]int {
	m := make(map[ekey]int, len(g.Edges))
	for i, e := range g.Edges {
		m[edgeKey(e)] = i
	}
	return m
}

func hasUncovered(incident []int, covered []bool) bool {
	for _, i := range incident {
		if !covered[i] {
			return true
		}
	}
	return false
}

// decompositionCost evaluates the Eq. 1 objective: the summed search-space
// estimate of the sub-queries. A sub-query anchored at v_s with |E_i| query
// edges explores about |φ(v_s)| · d̄^(n̂·|E_i|) paths, where d̄ is the
// average degree and n̂ the per-match hop bound.
func decompositionCost(g *Graph, d *Decomposition, opts Options) float64 {
	est := opts.Estimator
	if est == nil {
		est = fixedEstimator{}
	}
	nhat := opts.MaxHops
	if nhat <= 0 {
		nhat = 4
	}
	deg := est.AvgDegree()
	if deg < 1 {
		deg = 1
	}
	var total float64
	for _, sub := range d.Subs {
		anchor, _ := g.NodeByID(sub.Anchor())
		count := est.AnchorCount(anchor.Name, anchor.Type)
		if count < 1 {
			count = 1
		}
		// Cap the exponent: beyond ~16 levels the relative ordering of
		// pivots is already decided and float64 would overflow.
		exp := math.Min(float64(nhat*sub.Len()), 16)
		total += float64(count) * math.Pow(deg, exp)
	}
	return total
}
