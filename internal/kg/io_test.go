package kg

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTriples(t *testing.T) {
	in := `# a comment
Audi_TT	type	Automobile
Germany	type	Country

Audi_TT	assembly	Germany
BMW_320	assembly	Germany
`
	g, err := ReadTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	bmw := g.NodeByName("BMW_320")
	if bmw == NoNode {
		t.Fatal("BMW_320 not found")
	}
	if g.NodeType(bmw) != NoType {
		t.Error("BMW_320 should have unknown type (no type triple)")
	}
	audi := g.NodeByName("Audi_TT")
	if g.TypeName(g.NodeType(audi)) != "Automobile" {
		t.Errorf("Audi_TT type = %q", g.TypeName(g.NodeType(audi)))
	}
}

func TestReadTriplesErrors(t *testing.T) {
	cases := []string{
		"one\ttwo",   // 2 fields
		"a\tb\tc\td", // 4 fields
		"\tp\to",     // empty subject
		"s\t\to",     // empty predicate
		"s\tp\t",     // empty object
	}
	for _, in := range cases {
		if _, err := ReadTriples(strings.NewReader(in)); err == nil {
			t.Errorf("ReadTriples(%q) succeeded, want error", in)
		}
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	g := figure2Graph()
	var buf bytes.Buffer
	if err := WriteTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: got (%d,%d), want (%d,%d)",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		name := g.NodeName(NodeID(u))
		u2 := g2.NodeByName(name)
		if u2 == NoNode {
			t.Fatalf("node %q lost in round trip", name)
		}
		if g.TypeName(g.NodeType(NodeID(u))) != g2.TypeName(g2.NodeType(u2)) {
			t.Errorf("node %q type changed", name)
		}
		if g.Degree(NodeID(u)) != g2.Degree(u2) {
			t.Errorf("node %q degree changed: %d vs %d", name, g.Degree(NodeID(u)), g2.Degree(u2))
		}
	}
}
