package serve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"semkg/internal/core"
	"semkg/internal/query"
	"semkg/internal/shard"
)

// distTestEngine serves the motivating-example graph through two
// in-process httptest shard servers behind a distributed coordinator —
// the serving layer cannot tell it apart from a local Queryer, which is
// exactly the property this file tests.
func distTestEngine(t *testing.T) *core.DistEngine {
	t.Helper()
	e := testEngine(t)
	set, err := shard.Partition(e.Graph(), shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([][]string, set.Len())
	for i := 0; i < set.Len(); i++ {
		srv, err := shard.NewServer(set.Shard(i))
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		hosts[i] = []string{hs.URL}
	}
	de, err := core.NewDistEngine(e, hosts, core.DistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return de
}

// TestServingOverDistEngine: the serving layer works unchanged over the
// HTTP coordinator — cold answers match single-engine serving, the warm
// result-cache hit is byte-identical, and the plan cache hits across K.
func TestServingOverDistEngine(t *testing.T) {
	ctx := context.Background()
	single := New(testEngine(t), Config{})
	dist := New(distTestEngine(t), Config{})

	want, err := single.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := dist.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answersJSON(t, cold), answersJSON(t, want)) {
		t.Fatalf("distributed serving answers differ from single-engine serving:\n%s\n%s",
			answersJSON(t, cold), answersJSON(t, want))
	}
	warm, err := dist.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireJSON(t, cold), wireJSON(t, warm)) {
		t.Fatal("warm cache hit not byte-identical over the coordinator")
	}
	st := dist.Stats()
	if st.ResultHits != 1 || st.PipelineRuns != 1 {
		t.Fatalf("stats = %+v, want 1 result hit and 1 pipeline run", st)
	}

	opts2 := testOpts()
	opts2.K = 3
	if _, err := dist.Search(ctx, q117(), opts2); err != nil {
		t.Fatal(err)
	}
	if st := dist.Stats(); st.PlanHits != 1 {
		t.Fatalf("plan hits = %d, want 1 (distributed plan reused across K)", st.PlanHits)
	}
}

// TestServingDistStreamReplay: the recorded event log of a distributed
// execution replays byte-identically on a result-cache hit, exactly as
// over a local engine.
func TestServingDistStreamReplay(t *testing.T) {
	ctx := context.Background()
	srv := New(distTestEngine(t), Config{})
	live, err := srv.Stream(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var liveEvents []core.Event
	for ev := range live.Events() {
		liveEvents = append(liveEvents, ev)
	}
	if len(liveEvents) == 0 {
		t.Fatal("no live events")
	}
	replay, err := srv.Stream(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var replayEvents []core.Event
	for ev := range replay.Events() {
		replayEvents = append(replayEvents, ev)
	}
	if len(replayEvents) != len(liveEvents) {
		t.Fatalf("replay has %d events, live had %d", len(replayEvents), len(liveEvents))
	}
	lr, ok := liveEvents[len(liveEvents)-1].(core.ResultEvent)
	if !ok {
		t.Fatalf("live terminal %T", liveEvents[len(liveEvents)-1])
	}
	rr, ok := replayEvents[len(replayEvents)-1].(core.ResultEvent)
	if !ok {
		t.Fatalf("replay terminal %T", replayEvents[len(replayEvents)-1])
	}
	if !bytes.Equal(wireJSON(t, lr.Result), wireJSON(t, rr.Result)) {
		t.Fatal("replayed result not byte-identical")
	}
	if got := srv.Stats().ResultHits; got != 1 {
		t.Fatalf("ResultHits = %d, want 1", got)
	}
}

// TestDistServedMixParity extends the zipf served-mix property to the
// distributed path: a skewed mix of overlapping requests produces
// byte-identical answers whether the backing Queryer is the local engine
// or the HTTP coordinator, under concurrency, with result caching live
// on both. The sub-search sharing layer stays out of the distributed
// path by design (it shares raw base-engine enumerations), which must
// not change any answer.
func TestDistServedMixParity(t *testing.T) {
	queries := []func() *query.Graph{q117, clubQuery, manufacturerQuery}
	ks := []int{1, 2, 3, 10}
	taus := []float64{0.6, 0.75}

	rng := rand.New(rand.NewSource(1009))
	zipf := rand.NewZipf(rng, 1.4, 1.0, uint64(len(queries)*len(ks)*len(taus)-1))
	type request struct {
		q    *query.Graph
		opts core.Options
	}
	const n = 48
	reqs := make([]request, n)
	for i := range reqs {
		v := int(zipf.Uint64())
		reqs[i] = request{
			q:    queries[v%len(queries)](),
			opts: core.Options{K: ks[(v/len(queries))%len(ks)], Tau: taus[(v/len(queries)/len(ks))%len(taus)]},
		}
	}

	local := New(testEngine(t), Config{Queue: 128})
	dist := New(distTestEngine(t), Config{Queue: 128})

	type out struct {
		local, dist []byte
		err         error
	}
	results := make([]out, n)
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r request) {
			defer wg.Done()
			lres, err := local.Search(context.Background(), r.q, r.opts)
			if err != nil {
				results[i].err = err
				return
			}
			dres, err := dist.Search(context.Background(), r.q, r.opts)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].local = answersJSON(t, lres)
			results[i].dist = answersJSON(t, dres)
		}(i, r)
	}
	wg.Wait()

	for i, o := range results {
		if o.err != nil {
			t.Fatalf("request %d: %v", i, o.err)
		}
		if !bytes.Equal(o.local, o.dist) {
			t.Errorf("request %d (K=%d tau=%g): distributed answers differ from local:\n%s\nvs\n%s",
				i, reqs[i].opts.K, reqs[i].opts.Tau, o.dist, o.local)
		}
	}

	lst, dst := local.Stats(), dist.Stats()
	// The zipf skew repeats requests, so both layers must be absorbing the
	// duplicates — via the result cache or via in-flight sharing when the
	// duplicates arrive concurrently.
	if lst.ResultHits+lst.FlightShared == 0 || dst.ResultHits+dst.FlightShared == 0 {
		t.Fatalf("duplicate requests not absorbed under a zipf mix: local %+v, dist %+v", lst, dst)
	}
	// Sub-search sharing is a base-engine optimization; the distributed
	// path must bypass it (its remote streams are not shareable raw
	// enumerations), not crash into it.
	if dst.SubHits != 0 || dst.SubEntries != 0 {
		t.Fatalf("sub-search cache active over the coordinator: %+v", dst)
	}
}

// TestDistAdmissionSheds: the admission layer 429s identically over the
// coordinator — one worker, no queue, second request shed with a
// Retry-After hint while the first holds the worker.
func TestDistAdmissionSheds(t *testing.T) {
	release := make(chan struct{})
	srv := New(distTestEngine(t), Config{Workers: 1, Queue: -1, BeforeRun: func() { <-release }})
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := srv.Search(ctx, q117(), testOpts())
		done <- err
	}()
	waitBusy(t, srv, 1)

	_, err := srv.Search(ctx, clubQuery(), testOpts())
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("err = %v, want OverloadedError", err)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", over.RetryAfter)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().RejectedQueue; got != 1 {
		t.Fatalf("RejectedQueue = %d, want 1", got)
	}
}

// TestDistServeShardFailure: a shard dying under the serving layer
// surfaces as the typed error (never cached), and recovery is
// immediate once a healthy deployment replaces it — the error was not
// poisoned into the result cache.
func TestDistServeShardFailure(t *testing.T) {
	ctx := context.Background()
	e := testEngine(t)
	set, err := shard.Partition(e.Graph(), shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*httptest.Server, 2)
	hosts := make([][]string, 2)
	for i := 0; i < 2; i++ {
		ss, err := shard.NewServer(set.Shard(i))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = httptest.NewServer(ss.Handler())
		t.Cleanup(servers[i].Close)
		hosts[i] = []string{servers[i].URL}
	}
	de, err := core.NewDistEngine(e, hosts, core.DistConfig{Retries: 1, RetryBackoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(de, Config{})

	servers[1].CloseClientConnections()
	servers[1].Close()
	_, err = srv.Search(ctx, q117(), testOpts())
	var unavail *core.ShardUnavailableError
	if !errors.As(err, &unavail) {
		t.Fatalf("err = %v (%T), want *ShardUnavailableError", err, err)
	}
	if st := srv.Stats(); st.ResultEntries != 0 {
		t.Fatalf("failed search cached: %+v", st)
	}

	// The same query must also fail over the streaming path with the
	// error terminal, not a hang or an empty success.
	stream, err := srv.Stream(ctx, q117(), testOpts())
	if err == nil {
		for range stream.Events() {
		}
		_, err = stream.Result()
	}
	if !errors.As(err, &unavail) {
		t.Fatalf("stream err = %v, want *ShardUnavailableError", err)
	}
}
