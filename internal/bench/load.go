// Load experiment: the million-node scale-up harness (BENCH_load.json).
// Three sections over one generated large world (datagen.LargeWorld):
//
//   - cold start: before/after rows for the two cold-start optimizations —
//     the parallel snapshot decode (kg.ReadSnapshotWorkers at 1 worker vs
//     GOMAXPROCS), the parallel index build (kg.Builder.BuildWorkers,
//     same comparison), and the operator-facing total: the seed cold-start
//     path (TSV parse + index build) against the shipped path (parallel
//     snapshot load);
//   - steady state: before/after rows for the per-query search hot path —
//     the seed arena (dense suffix slab + full-graph end-set bitsets,
//     preserved as semgraph.NewWeighterFromRowsDense and
//     astar.Options.DenseEndSets) against the paged/adaptive arena, which
//     stops paying O(nodes) setup per sub-search;
//   - closed loop: a per-agent load driver against the serving layer
//     (internal/serve) with warmup and measure phases, reporting
//     p50/p95/p99 latency, QPS, error/429 accounting and heap stats.
//
// Run via `go run ./cmd/kgbench -exp load` (full: 1M nodes; -short trims
// to a CI-sized world). The artifact embeds its full configuration, so
// rows from different machines or GOMAXPROCS settings are comparable.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semkg/internal/astar"
	"semkg/internal/core"
	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/semgraph"
	"semkg/internal/serve"
)

// LoadConfig is the harness configuration embedded in the artifact.
type LoadConfig struct {
	Nodes           int     `json:"nodes"`
	AvgDegree       float64 `json:"avg_degree"`
	Seed            int64   `json:"seed"`
	Dim             int     `json:"dim"`
	K               int     `json:"k"`
	Tau             float64 `json:"tau"`
	MaxHops         int     `json:"max_hops"`
	TimeBoundMs     int64   `json:"time_bound_ms"`
	Agents          int     `json:"agents"`
	DistinctQueries int     `json:"distinct_queries"`
	WarmupMs        int64   `json:"warmup_ms"`
	MeasureMs       int64   `json:"measure_ms"`
	ColdStartReps   int     `json:"cold_start_reps"`
	SteadyQueries   int     `json:"steady_queries"`
	Short           bool    `json:"short"`
}

// ColdStartRow is one measured cold-start phase. Serial (workers=1) and
// parallel (workers=GOMAXPROCS) rows pair up; Speedup on a parallel row
// is serial-time / this-time for the same phase.
type ColdStartRow struct {
	Phase   string  `json:"phase"`
	Workers int     `json:"workers"`
	Millis  float64 `json:"millis"`
	Speedup float64 `json:"speedup_vs_serial,omitempty"`
}

// SteadyRow is one steady-state hot-path variant over the same compiled
// sub-queries.
type SteadyRow struct {
	Variant       string  `json:"variant"`
	Queries       int     `json:"queries"`
	MeanUs        float64 `json:"mean_us"`
	AllocMBPerQry float64 `json:"alloc_mb_per_query"`
	Speedup       float64 `json:"speedup,omitempty"`
}

// DriverRow is one closed-loop workload: latency percentiles over the
// measure phase, throughput, and the error/shed accounting.
type DriverRow struct {
	Workload   string  `json:"workload"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Overloaded int     `json:"overloaded_429"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	QPS        float64 `json:"qps"`
	// Serving-layer counters attributed to this workload (deltas across
	// the run, warmup included).
	ResultHits   uint64 `json:"result_hits"`
	PipelineRuns uint64 `json:"pipeline_runs"`
	FlightShared uint64 `json:"flight_shared"`
	// HeapAllocBytes is runtime.MemStats.HeapAlloc after the run: the
	// resident cost of graph + space + warm caches.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
}

// LoadResult is the experiment artifact (BENCH_load.json).
type LoadResult struct {
	Dataset string `json:"dataset"`
	Scale   string `json:"scale"`
	EnvInfo
	Config    LoadConfig     `json:"config"`
	ColdStart []ColdStartRow `json:"cold_start"`
	Steady    []SteadyRow    `json:"steady_state"`
	Driver    []DriverRow    `json:"load"`
}

func loadConfig(short bool) LoadConfig {
	cfg := LoadConfig{
		Nodes:           1_000_000,
		AvgDegree:       3,
		Seed:            1,
		Dim:             32,
		K:               10,
		Tau:             0.55,
		MaxHops:         2,
		TimeBoundMs:     250,
		Agents:          2 * runtime.GOMAXPROCS(0),
		DistinctQueries: 512,
		WarmupMs:        2000,
		MeasureMs:       8000,
		ColdStartReps:   3,
		SteadyQueries:   16,
		Short:           short,
	}
	if short {
		cfg.Nodes = 50_000
		cfg.Agents = 4
		cfg.DistinctQueries = 64
		cfg.WarmupMs = 250
		cfg.MeasureMs = 1500
		cfg.ColdStartReps = 2
		cfg.SteadyQueries = 8
	}
	return cfg
}

// timeBest runs f reps times and returns the fastest wall time: cold-start
// phases are dominated by systematic work, so the minimum is the least
// noisy estimator.
func timeBest(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// RunLoad generates the large world and measures the three sections.
func RunLoad(short bool) (*LoadResult, error) {
	return runLoad(loadConfig(short))
}

// runLoad is RunLoad with an explicit configuration (tests shrink it
// below even the -short sizes).
func runLoad(cfg LoadConfig) (*LoadResult, error) {
	p := datagen.LargeWorld(cfg.Nodes)
	p.Seed = cfg.Seed

	g := datagen.GenerateLarge(p)
	res := &LoadResult{
		Dataset: p.Name,
		Scale:   fmt.Sprintf("%d nodes / %d edges", g.NumNodes(), g.NumEdges()),
		EnvInfo: CaptureEnv(),
		Config:  cfg,
	}

	cold, err := runColdStart(g, p, cfg)
	if err != nil {
		return nil, err
	}
	res.ColdStart = cold

	space, err := (&embed.Model{Cfg: embed.Config{Dim: cfg.Dim}}).SpaceFor(g)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(g, space, nil)
	if err != nil {
		return nil, err
	}
	queries := datagen.LargeQueries(g, p, cfg.DistinctQueries)

	steady, err := runSteady(eng, queries[:cfg.SteadyQueries], cfg)
	if err != nil {
		return nil, err
	}
	res.Steady = steady

	driver, err := runDriver(eng, queries, cfg)
	if err != nil {
		return nil, err
	}
	res.Driver = driver
	return res, nil
}

// runColdStart measures the serial-vs-parallel snapshot decode and index
// build, then the seed TSV cold start against the shipped snapshot path.
func runColdStart(g *kg.Graph, p datagen.LargeProfile, cfg LoadConfig) ([]ColdStartRow, error) {
	par := runtime.GOMAXPROCS(0)
	var rows []ColdStartRow

	var snap bytes.Buffer
	if err := kg.WriteSnapshot(&snap, g); err != nil {
		return nil, err
	}
	loadTime := func(workers int) (time.Duration, error) {
		return timeBest(cfg.ColdStartReps, func() error {
			_, err := kg.ReadSnapshotWorkers(bytes.NewReader(snap.Bytes()), workers)
			return err
		})
	}
	serialLoad, err := loadTime(1)
	if err != nil {
		return nil, fmt.Errorf("bench: load snapshot decode (serial): %w", err)
	}
	parLoad, err := loadTime(par)
	if err != nil {
		return nil, fmt.Errorf("bench: load snapshot decode (parallel): %w", err)
	}
	rows = append(rows,
		ColdStartRow{Phase: "snapshot-load", Workers: 1, Millis: ms(serialLoad)},
		ColdStartRow{Phase: "snapshot-load", Workers: par, Millis: ms(parLoad),
			Speedup: float64(serialLoad) / float64(parLoad)})

	// Index build: the builder fill is regenerated outside the timed
	// region, so the phase times exactly Builder.BuildWorkers (CSR thread
	// plus derived search indexes).
	buildTime := func(workers int) time.Duration {
		var best time.Duration
		for i := 0; i < cfg.ColdStartReps; i++ {
			b := datagen.GenerateLargeBuilder(p)
			start := time.Now()
			_ = b.BuildWorkers(workers)
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	serialBuild := buildTime(1)
	parBuild := buildTime(par)
	rows = append(rows,
		ColdStartRow{Phase: "index-build", Workers: 1, Millis: ms(serialBuild)},
		ColdStartRow{Phase: "index-build", Workers: par, Millis: ms(parBuild),
			Speedup: float64(serialBuild) / float64(parBuild)})

	// The seed cold-start path: TSV parse + full index build, what every
	// pre-snapshot deployment pays on restart. One rep — it dwarfs the
	// snapshot path. The final pair is the operator-facing total: seed
	// cold start before, parallel snapshot load after.
	var tsv bytes.Buffer
	if err := kg.WriteTriples(&tsv, g); err != nil {
		return nil, err
	}
	tsvTime, err := timeBest(1, func() error {
		_, err := kg.ReadTriples(bytes.NewReader(tsv.Bytes()))
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: load tsv cold start: %w", err)
	}
	rows = append(rows,
		ColdStartRow{Phase: "cold-start total (tsv parse + serial build)", Workers: 1, Millis: ms(tsvTime)},
		ColdStartRow{Phase: "cold-start total (parallel snapshot load)", Workers: par, Millis: ms(parLoad),
			Speedup: float64(tsvTime) / float64(parLoad)})
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// compiledLoadSub is one load query compiled to searcher inputs, the way
// core.Engine does it (decomposition elided: the load queries are single
// anchored edges, so the sub-query is the whole query).
type compiledLoadSub struct {
	sub   astar.SubQuery
	preds []string
}

func compileLoadSubs(eng *core.Engine, qs []*query.Graph) ([]compiledLoadSub, error) {
	match := eng.Matcher().Memo().MatchNode
	out := make([]compiledLoadSub, 0, len(qs))
	for _, q := range qs {
		anchor := q.Nodes[1]
		focus := q.Nodes[0]
		anchors := match(anchor.Name, anchor.Type)
		if len(anchors) == 0 {
			return nil, fmt.Errorf("bench: load anchor %q unmatched", anchor.Name)
		}
		ends := match(focus.Name, focus.Type)
		if len(ends) == 0 {
			return nil, fmt.Errorf("bench: load focus type %q unmatched", focus.Type)
		}
		set := make(map[kg.NodeID]bool, len(ends))
		for _, id := range ends {
			set[id] = true
		}
		out = append(out, compiledLoadSub{
			sub:   astar.SubQuery{Anchors: anchors, EndSets: []map[kg.NodeID]bool{set}},
			preds: []string{q.Edges[0].Predicate},
		})
	}
	return out, nil
}

// runSteady measures the per-sub-search arena cost on the big world: the
// dense variant allocates and zeroes O(nodes) state per searcher (the seed
// behavior), the paged/adaptive variant allocates proportionally to the
// nodes actually visited.
func runSteady(eng *core.Engine, qs []*query.Graph, cfg LoadConfig) ([]SteadyRow, error) {
	g := eng.Graph()
	subs, err := compileLoadSubs(eng, qs)
	if err != nil {
		return nil, err
	}
	rowsFor := make([][][]float64, len(subs))
	for i, cs := range subs {
		if rowsFor[i], err = eng.Rows().Rows(cs.preds); err != nil {
			return nil, err
		}
	}
	variant := func(dense bool) (SteadyRow, error) {
		name := "paged arena + adaptive end sets"
		if dense {
			name = "dense arena + bitset end sets (seed)"
		}
		opts := astar.Options{Tau: cfg.Tau, MaxHops: cfg.MaxHops, DenseEndSets: dense}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i, cs := range subs {
			var w *semgraph.Weighter
			if dense {
				w, err = semgraph.NewWeighterFromRowsDense(g, rowsFor[i])
			} else {
				w, err = semgraph.NewWeighterFromRows(g, rowsFor[i])
			}
			if err != nil {
				return SteadyRow{}, err
			}
			s := astar.NewSearcher(g, w, cs.sub, opts)
			for j := 0; j < cfg.K; j++ {
				if _, ok := s.Next(); !ok {
					break
				}
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		return SteadyRow{
			Variant:       name,
			Queries:       len(subs),
			MeanUs:        float64(elapsed) / float64(time.Microsecond) / float64(len(subs)),
			AllocMBPerQry: float64(ms1.TotalAlloc-ms0.TotalAlloc) / (1 << 20) / float64(len(subs)),
		}, nil
	}
	before, err := variant(true)
	if err != nil {
		return nil, err
	}
	after, err := variant(false)
	if err != nil {
		return nil, err
	}
	after.Speedup = before.MeanUs / after.MeanUs
	return []SteadyRow{before, after}, nil
}

// runDriver is the closed-loop load phase: Agents goroutines issue
// requests back-to-back against the serving layer, drawing queries
// zipf-skewed from the distinct workload. A warmup phase fills the caches
// and the admission estimator; only the measure phase is recorded. Two
// workloads: the production shape (caches and singleflight in play) and a
// cache-bypassed one (random pivot marks every request uncacheable), which
// measures raw pipeline latency under concurrency and exercises the
// admission controller's 429 shedding.
func runDriver(eng *core.Engine, qs []*query.Graph, cfg LoadConfig) ([]DriverRow, error) {
	srv := serve.New(eng, serve.Config{})
	base := core.Options{
		K:         cfg.K,
		Tau:       cfg.Tau,
		MaxHops:   cfg.MaxHops,
		TimeBound: time.Duration(cfg.TimeBoundMs) * time.Millisecond,
	}
	cached, err := closedLoop(srv, qs, cfg, "zipf (cache-served)", func(int) core.Options { return base })
	if err != nil {
		return nil, err
	}
	cold, err := closedLoop(srv, qs, cfg, "pipeline (cache-bypassed)", func(agent int) core.Options {
		opts := base
		opts.Strategy = query.RandomPivot
		opts.Rng = rand.New(rand.NewSource(int64(7700 + agent)))
		return opts
	})
	if err != nil {
		return nil, err
	}
	return []DriverRow{cached, cold}, nil
}

// closedLoop runs one driver workload to completion. mkOpts builds the
// per-agent request options (agents must not share an options Rng — it is
// not synchronized).
func closedLoop(srv *serve.Engine, qs []*query.Graph, cfg LoadConfig, name string, mkOpts func(agent int) core.Options) (DriverRow, error) {
	ctx := context.Background()
	const (
		phaseWarmup = iota
		phaseMeasure
		phaseDone
	)
	var phase atomic.Int32
	var errCount, overloadCount atomic.Int64
	lats := make([][]time.Duration, cfg.Agents)
	var firstErr error
	var errOnce sync.Once
	before := srv.Stats()

	var wg sync.WaitGroup
	for a := 0; a < cfg.Agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			opts := mkOpts(a)
			rng := rand.New(rand.NewSource(int64(1000 + a)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(qs)-1))
			for phase.Load() != phaseDone {
				q := qs[zipf.Uint64()]
				start := time.Now()
				_, err := srv.Search(ctx, q, opts)
				d := time.Since(start)
				measuring := phase.Load() == phaseMeasure
				switch {
				case err == nil:
					if measuring {
						lats[a] = append(lats[a], d)
					}
				default:
					var over *serve.OverloadedError
					if errors.As(err, &over) {
						if measuring {
							overloadCount.Add(1)
						}
						// Honor Retry-After like a well-behaved client (capped:
						// the closed loop should stay closed, not idle).
						pause := over.RetryAfter
						if pause > 5*time.Millisecond {
							pause = 5 * time.Millisecond
						}
						time.Sleep(pause)
					} else {
						if measuring {
							errCount.Add(1)
						}
						errOnce.Do(func() { firstErr = err })
					}
				}
			}
		}(a)
	}

	time.Sleep(time.Duration(cfg.WarmupMs) * time.Millisecond)
	phase.Store(phaseMeasure)
	wallStart := time.Now()
	time.Sleep(time.Duration(cfg.MeasureMs) * time.Millisecond)
	phase.Store(phaseDone)
	wall := time.Since(wallStart)
	wg.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Millisecond)
	}
	after := srv.Stats()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	row := DriverRow{
		Workload:       name,
		Requests:       len(all) + int(errCount.Load()) + int(overloadCount.Load()),
		Errors:         int(errCount.Load()),
		Overloaded:     int(overloadCount.Load()),
		P50Ms:          pct(0.50),
		P95Ms:          pct(0.95),
		P99Ms:          pct(0.99),
		QPS:            float64(len(all)) / wall.Seconds(),
		ResultHits:     after.ResultHits - before.ResultHits,
		PipelineRuns:   after.PipelineRuns - before.PipelineRuns,
		FlightShared:   after.FlightShared - before.FlightShared,
		HeapAllocBytes: mem.HeapAlloc,
	}
	if len(all) == 0 && firstErr != nil {
		return row, fmt.Errorf("bench: load driver %q recorded no successful request: %w", name, firstErr)
	}
	return row, nil
}

// WriteJSON writes the artifact.
func (r *LoadResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render formats the three sections as one table.
func (r *LoadResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Load harness (%s, %s, GOMAXPROCS=%d, %d agents)", r.Dataset, r.Scale, r.GOMAXPROCS, r.Config.Agents),
		Header: []string{"section", "row", "value", "speedup"},
	}
	speedup := func(s float64) string {
		if s == 0 {
			return ""
		}
		return fmt.Sprintf("%.2fx", s)
	}
	for _, row := range r.ColdStart {
		t.AddRow("cold-start", fmt.Sprintf("%s (workers=%d)", row.Phase, row.Workers),
			fmt.Sprintf("%.1f ms", row.Millis), speedup(row.Speedup))
	}
	for _, row := range r.Steady {
		t.AddRow("steady-state", row.Variant,
			fmt.Sprintf("%.0f µs/query, %.2f MB/query", row.MeanUs, row.AllocMBPerQry), speedup(row.Speedup))
	}
	for _, d := range r.Driver {
		t.AddRow("load", fmt.Sprintf("%s: %d req (%d err, %d shed)", d.Workload, d.Requests, d.Errors, d.Overloaded),
			fmt.Sprintf("p50 %.2f / p95 %.2f / p99 %.2f ms, %.0f qps", d.P50Ms, d.P95Ms, d.P99Ms, d.QPS), "")
		t.AddRow("load", d.Workload+": heap after run", fmt.Sprintf("%.1f MB", float64(d.HeapAllocBytes)/(1<<20)), "")
	}
	return t
}
