// Package keyword is the keyword-search front end: it turns a bag of bare
// keywords ("design engine italy") into executable query graphs and blends
// their answers — the workload of the paper's millions of non-expert
// users, who do not write structured query docs or SPARQL.
//
// The pipeline follows "Keyword Search on RDF Graphs — A Query Graph
// Assembly Approach" (see PAPERS.md), adapted to this engine:
//
//  1. Tokenize: the input is normalized with the identical strutil rules
//     the kg name indexes were built with, and adjacent tokens are greedily
//     fused when the fused form hits an index exactly ("new york" →
//     "new_york").
//  2. Match: each keyword maps to candidate graph elements — entities and
//     types through the exact/prefix/initials name indexes
//     (kg.NodesByNormName and friends, never an O(|V|) scan), predicates
//     by normalized name over the small predicate vocabulary.
//  3. Assemble: small connection structures joining the keyword matches
//     are enumerated — stars around a focus target node, per-entity
//     attachments of one or two hops (typed intermediates), and a chain of
//     additional target types — each a well-formed, decomposable query
//     graph (trial-decomposed before it is emitted).
//  4. Score: match quality × structural evidence × selectivity, all
//     computed from the graph's own statistics (PredCount, Degree, type
//     cardinalities); see DESIGN.md, "Query-graph assembly".
//  5. Execute and blend: the top-B candidates run concurrently through
//     the serving layer (one compiled plan per candidate, so result/plan
//     caching, singleflight and admission control all apply) and the
//     per-candidate top-k lists blend into one deduplicated ranking via
//     merge.Blend with a deterministic tie-break.
//
// Frontend is the serving-side entry point; Assemble and Suggest are
// usable standalone (kgbench measures assembly without a server).
package keyword

import (
	"fmt"
	"strings"

	"semkg/internal/core"
	"semkg/internal/query"
)

// Config bounds the front end. The zero value gives production defaults;
// every bound exists to keep assembly latency index-shaped (microseconds,
// never a graph scan).
type Config struct {
	// MaxCandidates is B: how many top-scored candidate query graphs
	// execute per request. 0 = default 3; requests may lower it.
	MaxCandidates int
	// MaxInterps caps the interpretations kept per keyword after ranking.
	// 0 = default 4.
	MaxInterps int
	// MaxEnumerated caps the assembled candidates kept after scoring.
	// 0 = default 24.
	MaxEnumerated int
	// MaxCombos caps the interpretation combinations explored.
	// 0 = default 64.
	MaxCombos int
	// HopBudget bounds the connection structures joining a keyword entity
	// to the focus target: 1 = direct edges only, 2 adds one typed
	// intermediate. 0 = default 2.
	HopBudget int
	// EvidenceNodes caps the matched entities inspected per keyword when
	// gathering connection evidence. 0 = default 8.
	EvidenceNodes int
	// EvidenceScan caps the adjacency halves scanned per inspected
	// entity. 0 = default 256.
	EvidenceScan int
	// CacheSize bounds the generation-gated keyword result cache.
	// 0 = default 512; < 0 disables caching.
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 3
	}
	if c.MaxInterps <= 0 {
		c.MaxInterps = 4
	}
	if c.MaxEnumerated <= 0 {
		c.MaxEnumerated = 24
	}
	if c.MaxCombos <= 0 {
		c.MaxCombos = 64
	}
	if c.HopBudget <= 0 {
		c.HopBudget = 2
	}
	if c.HopBudget > 2 {
		c.HopBudget = 2
	}
	if c.EvidenceNodes <= 0 {
		c.EvidenceNodes = 8
	}
	if c.EvidenceScan <= 0 {
		c.EvidenceScan = 256
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 512
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	return c
}

// canonKey renders a query graph canonically (length-prefixed, like the
// serving layer's cache keys) for candidate dedup and deterministic
// tie-breaks.
func canonKey(q *query.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "q:%d,%d;", len(q.Nodes), len(q.Edges))
	for _, n := range q.Nodes {
		fmt.Fprintf(&b, "n%d:%s%d:%s%d:%s", len(n.ID), n.ID, len(n.Name), n.Name, len(n.Type), n.Type)
	}
	for _, e := range q.Edges {
		fmt.Fprintf(&b, "e%d:%s%d:%s%d:%s", len(e.From), e.From, len(e.To), e.To, len(e.Predicate), e.Predicate)
	}
	return b.String()
}

// normalizedScore maps an engine answer score (a sum of per-sub-query PSS
// values, each in (0,1]) back into (0,1] so answers from candidates with
// different sub-query counts blend on one scale.
func normalizedScore(a core.Answer) float64 {
	if len(a.Parts) == 0 {
		return a.Score
	}
	return a.Score / float64(len(a.Parts))
}
