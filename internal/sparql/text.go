// Textual form of the conjunctive queries: a minimal basic-graph-pattern
// syntax, one triple pattern per statement —
//
//	?car type Automobile .
//	?car assembly Germany .
//
// Terms are whitespace-separated; "#" starts a comment to end of line; a
// "." terminates each pattern (the final one may omit it). Terms that
// contain whitespace, quotes, "#", or equal "." are written as Go-quoted
// strings ("New York"). Render emits the canonical form — one pattern per
// line, terms bare when possible, a trailing " ." — and Parse(Render(q))
// is the identity for any valid query, which the golden-file tests pin
// down for the query shapes internal/datagen emits.
package sparql

import (
	"fmt"
	"strconv"
	"strings"
)

// Render formats q in the canonical textual form.
func Render(q Query) string {
	var sb strings.Builder
	for _, p := range q.Patterns {
		sb.WriteString(renderTerm(p.Subject))
		sb.WriteByte(' ')
		sb.WriteString(renderTerm(p.Predicate))
		sb.WriteByte(' ')
		sb.WriteString(renderTerm(p.Object))
		sb.WriteString(" .\n")
	}
	return sb.String()
}

// String implements fmt.Stringer with the canonical rendering.
func (q Query) String() string { return Render(q) }

// renderTerm writes a term bare when the tokenizer would read it back
// unchanged, quoted otherwise.
func renderTerm(term string) string {
	if needsQuotes(term) {
		return strconv.Quote(term)
	}
	return term
}

func needsQuotes(term string) bool {
	if term == "" || term == "." {
		return true
	}
	for _, r := range term {
		switch r {
		case ' ', '\t', '\n', '\r', '"', '#':
			return true
		}
	}
	return false
}

// Parse reads the textual form back into a Query. It is the inverse of
// Render and also accepts freer layouts: multiple patterns on one line,
// missing final ".", comments, and blank lines.
func Parse(src string) (Query, error) {
	toks, err := tokenize(src)
	if err != nil {
		return Query{}, err
	}
	var q Query
	var terms []string
	flush := func() error {
		if len(terms) == 0 {
			return nil
		}
		if len(terms) != 3 {
			return fmt.Errorf("sparql: pattern %d has %d terms %v, want subject predicate object",
				len(q.Patterns), len(terms), terms)
		}
		q.Patterns = append(q.Patterns, Pattern{Subject: terms[0], Predicate: terms[1], Object: terms[2]})
		terms = terms[:0]
		return nil
	}
	for _, tok := range toks {
		if !tok.quoted && tok.text == "." {
			if err := flush(); err != nil {
				return Query{}, err
			}
			continue
		}
		// Patterns are exactly three terms, so a fourth term starts the
		// next pattern — the "." separator is optional everywhere.
		if len(terms) == 3 {
			if err := flush(); err != nil {
				return Query{}, err
			}
		}
		terms = append(terms, tok.text)
	}
	if err := flush(); err != nil {
		return Query{}, err
	}
	if len(q.Patterns) == 0 {
		return Query{}, fmt.Errorf("sparql: no patterns")
	}
	return q, nil
}

// token is one lexical item; quoted distinguishes the literal term "."
// from the pattern terminator.
type token struct {
	text   string
	quoted bool
}

func tokenize(src string) ([]token, error) {
	var toks []token
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			quoted, err := strconv.QuotedPrefix(src[i:])
			if err != nil {
				return nil, fmt.Errorf("sparql: bad quoted term at byte %d: %w", i, err)
			}
			text, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("sparql: bad quoted term at byte %d: %w", i, err)
			}
			toks = append(toks, token{text: text, quoted: true})
			i += len(quoted)
		default:
			j := i
			for j < len(src) && !isBreak(src[j]) {
				j++
			}
			toks = append(toks, token{text: src[i:j]})
			i = j
		}
	}
	return toks, nil
}

func isBreak(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '"', '#':
		return true
	}
	return false
}
