// Wire forms for the batch endpoint (POST /v1/batch): a group of query
// documents answered in one call, with per-query attribution in both the
// buffered response and the streamed NDJSON form. The batch vocabulary
// reuses the single-request building blocks (Query, Options, Result,
// Event) so a batch of one is wire-compatible with the familiar shapes.

package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"semkg/internal/core"
	"semkg/internal/query"
)

// BatchQuery is one query of a batch request.
type BatchQuery struct {
	// ID optionally names the query; responses echo it alongside the
	// positional index, so clients can correlate without counting.
	ID string `json:"id,omitempty"`
	// Query is the query graph to answer.
	Query Query `json:"query"`
	// Options, when present, replaces the batch-level options for this
	// query; absent means the shared BatchRequest.Options apply.
	Options *Options `json:"options,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Queries is the group to answer; order is preserved in the response.
	Queries []BatchQuery `json:"queries"`
	// Options are the shared defaults for queries without their own.
	Options Options `json:"options"`
}

// Item resolves the i-th query into its engine-level form: the query
// graph and the effective options (the per-query override when present,
// the shared defaults otherwise).
func (b BatchRequest) Item(i int) (*query.Graph, core.Options) {
	q := b.Queries[i]
	opts := b.Options
	if q.Options != nil {
		opts = *q.Options
	}
	return q.Query.Graph(), opts.Core()
}

// DecodeBatchRequest parses a batch request body strictly: unknown
// fields and trailing data are errors. Per-query validation is the
// caller's job — one malformed query must fail with attribution, not
// sink the batch.
func DecodeBatchRequest(r io.Reader) (BatchRequest, error) {
	var req BatchRequest
	if err := decodeStrict(r, &req); err != nil {
		return BatchRequest{}, fmt.Errorf("api: parsing batch request: %w", err)
	}
	return req, nil
}

// BatchItemResult is one query's outcome in the buffered batch response:
// exactly one of Result and Error is set.
type BatchItemResult struct {
	// Index is the query's 0-based position in the request.
	Index int `json:"index"`
	// ID echoes the request query's ID, when one was given.
	ID string `json:"id,omitempty"`
	// Result is the query's search outcome on success.
	Result *Result `json:"result,omitempty"`
	// Error describes the query's failure on error.
	Error string `json:"error,omitempty"`
}

// BatchResult is the buffered response of POST /v1/batch: one entry per
// request query, in request order.
type BatchResult struct {
	// Results reports every query positionally.
	Results []BatchItemResult `json:"results"`
}

// DecodeBatchResult parses a buffered batch response strictly.
func DecodeBatchResult(data []byte) (BatchResult, error) {
	var res BatchResult
	if err := decodeStrict(bytes.NewReader(data), &res); err != nil {
		return BatchResult{}, fmt.Errorf("api: parsing batch result: %w", err)
	}
	return res, nil
}

// BatchEvent is one NDJSON line of the streaming batch response: a
// stream event tagged with the query it belongs to. Lines from different
// queries interleave; within one query they keep stream order.
type BatchEvent struct {
	// Index is the originating query's 0-based position in the request.
	Index int `json:"index"`
	// ID echoes the originating query's ID, when one was given.
	ID string `json:"id,omitempty"`
	// Event is the tagged stream event (discriminator and payload fields
	// exactly as in the single-query NDJSON protocol). An "error" in
	// Event.Event with ErrorText set reports a per-query failure.
	Event
	// ErrorText carries the failure message of an "error" event.
	ErrorText string `json:"error,omitempty"`
}

// EncodeBatchEvent renders one query's stream event as a batch NDJSON
// line (without the trailing newline). An "error" event's message moves
// to ErrorText: the embedded Event.Error shares its JSON key with
// ErrorText, which shadows it in the batch encoding.
func EncodeBatchEvent(index int, id string, ev core.Event) ([]byte, error) {
	w, err := EventFrom(ev)
	if err != nil {
		return nil, err
	}
	be := BatchEvent{Index: index, ID: id, Event: w, ErrorText: w.Error}
	be.Event.Error = ""
	return json.Marshal(be)
}

// EncodeBatchError renders one query's failure as a batch NDJSON line.
func EncodeBatchError(index int, id string, err error) ([]byte, error) {
	return json.Marshal(BatchEvent{
		Index:     index,
		ID:        id,
		Event:     Event{Event: EventError},
		ErrorText: err.Error(),
	})
}

// DecodeBatchEvent parses one batch NDJSON line.
func DecodeBatchEvent(line []byte) (BatchEvent, error) {
	var ev BatchEvent
	if err := json.Unmarshal(line, &ev); err != nil {
		return BatchEvent{}, fmt.Errorf("api: parsing batch event: %w", err)
	}
	if ev.Event.Event == "" {
		return BatchEvent{}, fmt.Errorf("api: batch event line missing %q discriminator", "event")
	}
	return ev, nil
}
