// Package bench implements the experiment harness of Section VII: one
// runner per table and figure of the paper's evaluation, over the
// synthetic dataset substitutes (see DESIGN.md for the experiment index
// and EXPERIMENTS.md for measured-vs-paper results).
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"semkg/internal/core"
	"semkg/internal/datagen"
	"semkg/internal/embed"
)

// EnvInfo is the machine/runtime block embedded in every experiment
// artifact, so perf rows are comparable across machines and across
// GOMAXPROCS settings. Heap figures come from runtime.MemStats at
// capture time: CaptureEnv is called after the experiment's dataset and
// engine exist, so HeapAllocBytes approximates the resident working set
// the numbers were measured against.
type EnvInfo struct {
	GoVersion       string `json:"go_version"`
	GOOS            string `json:"goos"`
	GOARCH          string `json:"goarch"`
	CPUs            int    `json:"cpus"`
	GOMAXPROCS      int    `json:"gomaxprocs"`
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	When            string `json:"when"`
}

// CaptureEnv snapshots the runtime environment for an artifact's env
// block.
func CaptureEnv() EnvInfo {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return EnvInfo{
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		CPUs:            runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		When:            time.Now().UTC().Format(time.RFC3339),
	}
}

// Config prepares one experimental environment.
type Config struct {
	Profile datagen.Profile
	// Embed configures the offline TransE run; zero values use
	// Dim 48 / Epochs 120 / Seed 3.
	Embed embed.Config
	// Tau is the pss threshold used by SGQ/TBQ in the experiments.
	// Default 0.7 — the scaled equivalent of the paper's 0.8 (our space
	// is trained on ~10^4 triples instead of ~10^7, so the absolute
	// similarity levels of correct schemas sit lower; the sensitivity
	// sweep of Table X covers the range and shows the same
	// flat-then-collapse shape one notch above the default).
	Tau float64
	// MaxHops is the n̂ bound. Default 4 (paper default).
	MaxHops int
}

func (c Config) withDefaults() Config {
	if c.Embed.Dim == 0 {
		c.Embed.Dim = 48
	}
	if c.Embed.Epochs == 0 {
		c.Embed.Epochs = 120
	}
	if c.Embed.Seed == 0 {
		c.Embed.Seed = 3
	}
	if c.Tau == 0 {
		c.Tau = 0.7
	}
	if c.MaxHops == 0 {
		c.MaxHops = 4
	}
	return c
}

// Env is a prepared environment: generated dataset, trained space, engine.
type Env struct {
	Cfg     Config
	Dataset *datagen.Dataset
	Engine  *core.Engine
	Space   *embed.Space

	// TrainTime and ModelBytes describe the offline embedding phase
	// (Table IX's offline columns).
	TrainTime  time.Duration
	ModelBytes int64
}

// New generates the dataset, trains the embedding, and builds the engine.
func New(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	ds := datagen.Generate(cfg.Profile)
	start := time.Now()
	model, err := embed.TrainTransE(context.Background(), ds.Graph, cfg.Embed)
	if err != nil {
		return nil, fmt.Errorf("bench: training embedding: %w", err)
	}
	trainTime := time.Since(start)
	space, err := model.Space(ds.Graph)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ds.Graph, space, ds.Library)
	if err != nil {
		return nil, err
	}
	dim := int64(cfg.Embed.Dim)
	return &Env{
		Cfg:        cfg,
		Dataset:    ds,
		Engine:     eng,
		Space:      space,
		TrainTime:  trainTime,
		ModelBytes: (int64(ds.Graph.NumNodes()) + int64(ds.Graph.NumPredicates())) * dim * 8,
	}, nil
}

// SearchOptions returns the default SGQ options of this environment.
func (e *Env) SearchOptions(k int) core.Options {
	return core.Options{K: k, Tau: e.Cfg.Tau, MaxHops: e.Cfg.MaxHops}
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Env{}
)

// Cached returns a memoized environment for the configuration (keyed by
// profile name, seed and embedding shape). Experiments and benchmarks
// share environments to avoid re-training embeddings.
func Cached(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	key := fmt.Sprintf("%s|%d|%d|%d|%d|%d|%g|%d",
		cfg.Profile.Name, cfg.Profile.Seed, cfg.Profile.Autos,
		cfg.Embed.Dim, cfg.Embed.Epochs, cfg.Embed.Seed, cfg.Tau, cfg.MaxHops)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if e, ok := cache[key]; ok {
		return e, nil
	}
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	cache[key] = e
	return e, nil
}
