// Package serve is the engine-level serving layer: it turns one engine —
// a single-graph *core.Engine or a scatter-gather *core.ShardedEngine,
// anything satisfying core.Queryer — into a component fit for heavy
// concurrent traffic.
//
//   - Result cache: an LRU keyed by a canonical hash of (query graph,
//     normalized options). A hit skips the whole pipeline — including the
//     recorded event log, so streamed replays are byte-identical to the
//     original run.
//   - Plan cache: an LRU of compiled plans (decomposition + searcher
//     blueprints) keyed by the compile-relevant options only, so repeated
//     query shapes skip decomposition and φ resolution for any K or time
//     budget.
//   - Singleflight: N concurrent identical requests run the pipeline once;
//     followers share the leader's result and replay its event log.
//   - Admission control: a bounded worker pool with deadline-aware
//     shedding — a request whose TimeBound cannot cover its projected
//     queue wait is rejected with OverloadedError (HTTP 429/Retry-After)
//     instead of blowing its bound in the queue.
//
// Caches invalidate wholesale on Rebuild (engine swap). Every cache and
// the dedup layer are bypassed for non-deterministic requests (random
// pivot, test clocks); admission control applies to every pipeline run.
//
// See DESIGN.md, "Serving layer: caches, dedup, admission".
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"semkg/internal/core"
	"semkg/internal/kg"
	"semkg/internal/query"
)

// Config sizes the serving layer. The zero value gives production-ready
// defaults; negative sizes disable the corresponding component.
type Config struct {
	// ResultCache is the result-cache capacity in entries.
	// 0 = default 1024×Workers; < 0 disables the cache.
	ResultCache int
	// PlanCache is the plan-cache capacity in entries.
	// 0 = default 256×Workers; < 0 disables the cache.
	PlanCache int
	// SubCache is the shared sub-search cache capacity in entries (one
	// entry per distinct sub-query blueprint per generation); it is the
	// cross-query sharing layer — see subcache.go.
	// 0 = default 512×Workers; < 0 disables sharing entirely.
	SubCache int
	// Workers bounds concurrent pipeline executions. 0 = GOMAXPROCS.
	Workers int
	// Queue bounds requests waiting for a worker. 0 = 4×Workers;
	// < 0 admits nothing beyond the workers (shed immediately when busy).
	Queue int
	// EstimatedRun seeds the queue-wait estimator before any request has
	// completed; 0 derives the seed from the engine's calibrated tbq
	// per-match TA cost. Observed service times take over via EWMA.
	EstimatedRun time.Duration

	// Build constructs an engine over a newly committed graph; it is
	// required by Apply (live ingestion) and unused otherwise. semkgd
	// supplies a builder that re-derives the predicate space from the
	// loaded embedding model (core.BuildEngine, or core.BuildShardedEngine
	// when serving sharded), padding vectors for predicates the model has
	// never seen.
	Build func(*kg.Graph) (core.Queryer, error)

	// BeforeRun, when non-nil, is invoked by the flight leader after
	// admission, immediately before the pipeline runs. Test
	// instrumentation only (it gates concurrency tests deterministically);
	// leave nil in production.
	BeforeRun func()
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	// Cache defaults scale with the worker count: the fixed sizes were
	// tuned on a single-core toy world, and a multi-core deployment
	// serving the million-node dataset sees proportionally more distinct
	// in-flight queries, so fixed caches thrash exactly when the machine
	// has memory to spare. Single-core keeps the original sizes.
	switch {
	case c.ResultCache == 0:
		c.ResultCache = 1024 * c.Workers
	case c.ResultCache < 0:
		c.ResultCache = 0
	}
	switch {
	case c.PlanCache == 0:
		c.PlanCache = 256 * c.Workers
	case c.PlanCache < 0:
		c.PlanCache = 0
	}
	switch {
	case c.SubCache == 0:
		c.SubCache = 512 * c.Workers
	case c.SubCache < 0:
		c.SubCache = 0
	}
	switch {
	case c.Queue == 0:
		c.Queue = 4 * c.Workers
	case c.Queue < 0:
		c.Queue = 0
	}
	return c
}

// cachedResult is one result-cache entry: the terminal result plus the
// recorded event log that produced it, stamped with the engine generation
// it was computed on. The stamp is checked again at Get time: the
// publish-side generation check and the Add are not atomic with Rebuild's
// purge, so a racing leader could otherwise resurrect a result computed on
// a superseded engine.
type cachedResult struct {
	res    *core.Result
	events []core.Event
	gen    uint64
}

// Engine is a serving wrapper around one core.Queryer. Safe for
// concurrent use. Results returned from it are shared across callers and
// must be treated as read-only.
type Engine struct {
	cfg Config
	adm *admission

	mu  sync.RWMutex // guards eng and gen
	eng core.Queryer
	gen uint64

	// applyMu serializes engine publications (Apply and Rebuild): two
	// racing commits would otherwise each extend the same base graph and
	// silently drop one another's triples, and a direct Rebuild landing
	// between Apply's staleness check and its publication would be
	// overwritten by an engine built from the superseded graph.
	applyMu sync.Mutex

	results *lruCache[*cachedResult]
	plans   *lruCache[core.CompiledPlan]
	subs    *lruCache[*subEntry]

	fmu     sync.Mutex
	flights map[string]*flight

	stats stats
}

// New wraps eng in a serving layer sized by cfg.
func New(eng core.Queryer, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	seed := cfg.EstimatedRun
	if seed <= 0 {
		seed = eng.PerMatchCost() * estSeedMatches
	}
	return &Engine{
		cfg:     cfg,
		adm:     newAdmission(cfg.Workers, cfg.Queue, seed),
		eng:     eng,
		results: newLRU[*cachedResult](cfg.ResultCache),
		plans:   newLRU[core.CompiledPlan](cfg.PlanCache),
		subs:    newLRU[*subEntry](cfg.SubCache),
		flights: make(map[string]*flight),
	}
}

// Engine returns the currently-served engine (a *core.Engine or
// *core.ShardedEngine, whichever the layer was built over).
func (e *Engine) Engine() core.Queryer {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.eng
}

func (e *Engine) engineGen() (core.Queryer, uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.eng, e.gen
}

func (e *Engine) currentGen() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gen
}

// Rebuild swaps in a new engine (a re-loaded graph or re-trained space)
// and invalidates both caches: entries computed against the old engine
// must never answer for the new one. In-flight requests finish on the old
// engine; their results are not cached. Rebuild serializes with Apply, so
// a swap can never be silently overwritten by a delta committed against
// the graph it replaced.
func (e *Engine) Rebuild(eng core.Queryer) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	e.rebuildLocked(eng)
}

// rebuildLocked publishes eng; the caller holds applyMu.
func (e *Engine) rebuildLocked(eng core.Queryer) {
	e.mu.Lock()
	e.eng = eng
	e.gen++
	e.mu.Unlock()
	e.results.Purge()
	e.plans.Purge()
	e.subs.Purge()
	e.stats.rebuilds.Add(1)
}

// Generation returns the current engine generation. It increments on
// every Rebuild (and therefore on every non-empty Apply); results cached
// under an older generation are never served.
func (e *Engine) Generation() uint64 { return e.currentGen() }

// Current returns the served engine and its generation as one atomic
// read — the pair a replication primary needs when it opens a stream:
// reading them separately could interleave with an Apply and pair a new
// engine with a stale generation.
func (e *Engine) Current() (core.Queryer, uint64) { return e.engineGen() }

// RebuildGraph builds an engine over g with Config.Build and publishes
// it through the generation-gated Rebuild. It is the snapshot-resync
// path for replication followers: the whole graph is replaced, both
// caches purge, and the generation bumps exactly once.
func (e *Engine) RebuildGraph(g *kg.Graph) error {
	if e.cfg.Build == nil {
		return fmt.Errorf("serve: RebuildGraph requires an engine builder (Config.Build)")
	}
	eng, err := e.cfg.Build(g)
	if err != nil {
		return fmt.Errorf("serve: building engine for graph: %w", err)
	}
	e.Rebuild(eng)
	return nil
}

// ErrStaleDelta is returned by Apply for a delta whose base is no longer
// the served graph: another Apply or Rebuild published a newer generation
// after the delta was created. The caller re-reads the graph with
// NewDelta and re-applies its mutations.
var ErrStaleDelta = errors.New("serve: delta base is not the served graph (superseded by a newer generation)")

// ApplyInfo describes a completed Apply.
type ApplyInfo struct {
	// AddedNodes, AddedEdges and Retyped are the delta's mutation counts.
	AddedNodes int `json:"added_nodes"`
	AddedEdges int `json:"added_edges"`
	Retyped    int `json:"retyped"`
	// Nodes and Edges are the committed graph's totals.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Generation is the engine generation now serving the committed
	// graph.
	Generation uint64 `json:"generation"`
	// CommitTime covers Delta.Commit, BuildTime the engine construction.
	CommitTime time.Duration `json:"commit_ns"`
	BuildTime  time.Duration `json:"build_ns"`
}

// Apply commits a delta created with NewDelta, builds an engine over the
// committed graph with Config.Build, and publishes it through the
// generation-gated Rebuild — so both caches invalidate exactly once and
// searches in flight finish against the generation they started on. An
// empty delta is a no-op that reports the current state without bumping
// the generation. Apply calls are serialized; a delta whose base graph
// was superseded while it was being filled fails with ErrStaleDelta.
func (e *Engine) Apply(d *kg.Delta) (ApplyInfo, error) {
	if e.cfg.Build == nil {
		return ApplyInfo{}, fmt.Errorf("serve: Apply requires an engine builder (Config.Build)")
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	cur, gen := e.engineGen()
	if d.Base() != cur.Graph() {
		return ApplyInfo{}, ErrStaleDelta
	}
	info := ApplyInfo{
		AddedNodes: d.AddedNodes(),
		AddedEdges: d.AddedEdges(),
		Retyped:    d.Retyped(),
	}
	if d.Empty() {
		info.Nodes = cur.Graph().NumNodes()
		info.Edges = cur.Graph().NumEdges()
		info.Generation = gen
		return info, nil
	}
	start := time.Now()
	g := d.Commit()
	info.CommitTime = time.Since(start)
	start = time.Now()
	eng, err := e.cfg.Build(g)
	if err != nil {
		return ApplyInfo{}, fmt.Errorf("serve: building engine for committed graph: %w", err)
	}
	info.BuildTime = time.Since(start)
	e.rebuildLocked(eng)
	e.stats.applies.Add(1)
	info.Nodes = g.NumNodes()
	info.Edges = g.NumEdges()
	info.Generation = e.currentGen()
	return info, nil
}

// NewDelta returns an empty delta over the currently-served graph, for
// use with Apply.
func (e *Engine) NewDelta() *kg.Delta {
	return kg.NewDelta(e.Engine().Graph())
}

// Search answers one batch request through the serving layer: result
// cache, then singleflight, then the admission-controlled pipeline. The
// returned Result is shared (possibly with other callers and the cache)
// and must be treated as read-only.
func (e *Engine) Search(ctx context.Context, q *query.Graph, opts core.Options) (*core.Result, error) {
	entry, fl, err := e.resolve(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	if entry != nil {
		return entry.res, nil
	}
	defer fl.leave()
	select {
	case <-fl.done():
		return fl.log.outcome()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stream answers one streaming request through the serving layer. A cache
// hit replays the recorded event log of the original execution; a
// deduplicated request replays the leader's log (catching up on the
// prefix, then following live). Validation, compile and admission errors
// are returned synchronously, before any event is delivered.
func (e *Engine) Stream(ctx context.Context, q *query.Graph, opts core.Options) (*Stream, error) {
	entry, fl, err := e.resolve(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	if entry != nil {
		return subscribe(ctx, closedLog(entry.events, entry.res), sealedNow, nil), nil
	}
	// Surface pre-pipeline failures (bad request, overload) synchronously.
	select {
	case <-fl.admitted:
	case <-fl.done():
		if _, err := fl.log.outcome(); err != nil {
			fl.leave()
			return nil, err
		}
	case <-ctx.Done():
		fl.leave()
		return nil, ctx.Err()
	}
	return subscribe(ctx, fl.log, fl.sealed, fl.leave), nil
}

// resolve routes one request: a result-cache hit returns the entry; a
// non-nil flight means the caller participates in a (possibly shared)
// pipeline execution and must leave() it when done.
func (e *Engine) resolve(ctx context.Context, q *query.Graph, opts core.Options) (*cachedResult, *flight, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, core.BadRequestError{Err: err}
	}
	if err := q.Validate(); err != nil {
		return nil, nil, core.BadRequestError{Err: err}
	}
	eng, gen := e.engineGen()
	if !cacheable(opts) {
		e.stats.uncacheable.Add(1)
		fl := newFlight(gen)
		go e.lead(fl, "", q, opts, false, eng)
		return nil, fl, nil
	}
	key := resultKey(q, opts)
	if entry, ok := e.results.Get(key); ok && entry.gen == gen {
		e.stats.resultHits.Add(1)
		return entry, nil, nil
	}
	e.stats.resultMisses.Add(1)

	// Join the in-flight execution only while it is live AND from the
	// current engine generation: a flight whose last participant already
	// left is cancelled and will yield a partial anytime result, and one
	// started before a Rebuild answers for the retired engine — a fresh
	// request must be served neither, so it starts a new flight
	// (replacing the old one in the map).
	e.fmu.Lock()
	if fl, ok := e.flights[key]; ok && fl.gen == gen && fl.join() {
		e.fmu.Unlock()
		e.stats.flightShared.Add(1)
		return nil, fl, nil
	}
	fl := newFlight(gen)
	e.flights[key] = fl
	e.fmu.Unlock()
	go e.lead(fl, key, q, opts, true, eng)
	return nil, fl, nil
}

// lead is the flight leader: compile (through the plan cache), admission,
// pipeline, publication. key == "" marks an unregistered (uncacheable)
// flight. eng is the engine captured when the flight was created — the
// flight's generation stamp refers to it.
func (e *Engine) lead(fl *flight, key string, q *query.Graph, opts core.Options, cache bool, eng core.Queryer) {
	gen := fl.gen
	res, err := e.run(fl, eng, gen, q, opts, cache && key != "")
	if key != "" {
		// Publish only complete results computed on the current engine: a
		// cancelled flight carries a partial (anytime) result, and a
		// racing Rebuild means the result answers for a graph the cache no
		// longer serves. Publish before deregistering the flight, so a
		// request arriving in between finds either the cache entry or the
		// still-sealed flight, never a gap that would re-run the pipeline.
		if err == nil && res != nil && fl.ctx.Err() == nil && e.currentGen() == gen {
			e.results.Add(key, &cachedResult{res: res, events: e.snapshotLog(fl), gen: gen})
		}
		e.fmu.Lock()
		// Deregister only our own flight: a request that found this flight
		// dying may already have replaced it with a fresh one.
		if cur, ok := e.flights[key]; ok && cur == fl {
			delete(e.flights, key)
		}
		e.fmu.Unlock()
	}
	fl.finish(res, err)
}

// snapshotLog returns the flight's recorded events (the log is complete —
// run has consumed the pipeline to its end — but not yet sealed).
func (e *Engine) snapshotLog(fl *flight) []core.Event {
	evs, _, _ := fl.log.since(0)
	return evs
}

// run executes the pipeline for one flight: plan (cached), admission,
// stream consumption into the flight log. cached gates both the plan
// cache and the sub-search sharing layer: a request too nondeterministic
// to cache is equally too nondeterministic to share.
func (e *Engine) run(fl *flight, eng core.Queryer, gen uint64, q *query.Graph, opts core.Options, cached bool) (*core.Result, error) {
	plan, err := e.planFor(eng, gen, q, opts, cached)
	if err != nil {
		return nil, err
	}
	if err := e.adm.acquire(fl.ctx, opts.TimeBound); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { e.adm.release(time.Since(start)) }()
	close(fl.admitted)
	if e.cfg.BeforeRun != nil {
		e.cfg.BeforeRun()
	}
	e.stats.pipelineRuns.Add(1)

	st, err := e.streamFor(fl.ctx, eng, gen, plan, opts, cached)
	if err != nil {
		return nil, err
	}
	for ev := range st.Events() {
		fl.log.append(ev)
	}
	// A stream may end in an error terminal instead of a result (a
	// distributed backing engine losing a whole shard, for example).
	// Propagate it as the flight's failure: lead() never caches errored
	// flights, so the next request retries the pipeline.
	if err := st.Err(); err != nil {
		return nil, err
	}
	return st.Result(), nil
}

// planFor compiles q, going through the plan cache when the request allows
// it. Plans compiled against a superseded engine generation are not
// cached (Rebuild already purged the cache; a late Add would resurrect a
// stale plan).
func (e *Engine) planFor(eng core.Queryer, gen uint64, q *query.Graph, opts core.Options, useCache bool) (core.CompiledPlan, error) {
	if !useCache {
		return eng.CompileQuery(q, opts)
	}
	key := planKey(q, opts)
	// A hit must have been compiled by the engine we are about to run on:
	// an entry that survived a racing Rebuild (Get between the generation
	// bump and the purge) is treated as a miss.
	if p, ok := e.plans.Get(key); ok && p.PlannedBy(eng) {
		e.stats.planHits.Add(1)
		return p, nil
	}
	e.stats.planMisses.Add(1)
	p, err := eng.CompileQuery(q, opts)
	if err != nil {
		return nil, err
	}
	if e.currentGen() == gen {
		e.plans.Add(key, p)
	}
	return p, nil
}
