package serve

import (
	"sync/atomic"
	"time"
)

// stats holds the serving layer's internal counters.
type stats struct {
	resultHits   atomic.Uint64
	resultMisses atomic.Uint64
	planHits     atomic.Uint64
	planMisses   atomic.Uint64
	subHits      atomic.Uint64
	subMisses    atomic.Uint64
	flightShared atomic.Uint64
	pipelineRuns atomic.Uint64
	uncacheable  atomic.Uint64
	rebuilds     atomic.Uint64
	applies      atomic.Uint64
}

// Stats is a point-in-time snapshot of the serving layer's counters and
// gauges, exported by semkgd through expvar (GET /debug/vars, key
// "semkgd_serve").
type Stats struct {
	// Result cache.
	ResultHits    uint64 `json:"result_hits"`
	ResultMisses  uint64 `json:"result_misses"`
	ResultEntries int    `json:"result_entries"`
	// Plan cache.
	PlanHits    uint64 `json:"plan_hits"`
	PlanMisses  uint64 `json:"plan_misses"`
	PlanEntries int    `json:"plan_entries"`
	// Sub-search sharing: SubHits counts pipeline runs joining a shared
	// sub-query enumeration that another run created; SubMisses counts
	// enumerations created.
	SubHits    uint64 `json:"sub_hits"`
	SubMisses  uint64 `json:"sub_misses"`
	SubEntries int    `json:"sub_entries"`
	// Singleflight: requests that shared another request's execution.
	FlightShared uint64 `json:"flight_shared"`
	// PipelineRuns counts actual pipeline executions (cache hits and
	// shared flights excluded).
	PipelineRuns uint64 `json:"pipeline_runs"`
	// Uncacheable requests bypassed the caches and dedup (random pivot,
	// test hooks).
	Uncacheable uint64 `json:"uncacheable"`
	// Rebuilds counts engine swaps (each flushes both caches).
	Rebuilds uint64 `json:"rebuilds"`
	// Applies counts non-empty delta commits published via Apply (a
	// subset of Rebuilds).
	Applies uint64 `json:"applies"`
	// Generation is the current engine generation.
	Generation uint64 `json:"generation"`
	// Admission control.
	Admitted         uint64 `json:"admitted"`
	Queued           uint64 `json:"queued"`
	RejectedQueue    uint64 `json:"rejected_queue_full"`
	RejectedDeadline uint64 `json:"rejected_deadline"`
	BusyWorkers      int    `json:"busy_workers"`
	QueueDepth       int64  `json:"queue_depth"`
	// EstimatedRun is the current EWMA pipeline service-time estimate
	// driving projected queue waits.
	EstimatedRun time.Duration `json:"estimated_run_ns"`
}

// Stats snapshots the serving layer's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		ResultHits:       e.stats.resultHits.Load(),
		ResultMisses:     e.stats.resultMisses.Load(),
		ResultEntries:    e.results.Len(),
		PlanHits:         e.stats.planHits.Load(),
		PlanMisses:       e.stats.planMisses.Load(),
		PlanEntries:      e.plans.Len(),
		SubHits:          e.stats.subHits.Load(),
		SubMisses:        e.stats.subMisses.Load(),
		SubEntries:       e.subs.Len(),
		FlightShared:     e.stats.flightShared.Load(),
		PipelineRuns:     e.stats.pipelineRuns.Load(),
		Uncacheable:      e.stats.uncacheable.Load(),
		Rebuilds:         e.stats.rebuilds.Load(),
		Applies:          e.stats.applies.Load(),
		Generation:       e.currentGen(),
		Admitted:         e.adm.admitted.Load(),
		Queued:           e.adm.queued.Load(),
		RejectedQueue:    e.adm.rejectedQueue.Load(),
		RejectedDeadline: e.adm.rejectedDeadline.Load(),
		BusyWorkers:      e.adm.busy(),
		QueueDepth:       e.adm.waiters.Load(),
		EstimatedRun:     time.Duration(e.adm.estRunNs.Load()),
	}
}
