package kg

import (
	"sort"
	"strings"

	"semkg/internal/strutil"
)

// nameIndex accelerates the transformation library's fallback matching
// (Definition 3: identical / synonym / abbreviation) over one name
// vocabulary (node names or type names). It is built once in Builder.Build
// and immutable afterwards, so concurrent searches share it without
// locking. Three access paths replace the seed's O(|V|) scans:
//
//   - norm:     normalized name -> ids, for identity and synonym-class
//     lookups done on normalized strings rather than exact spellings;
//   - initials: initials-style abbreviation (both the all-words and the
//     stop-word-skipping form of strutil.Initials) -> ids of the names it
//     abbreviates;
//   - sorted:   sorted distinct normalized names, for prefix-abbreviation
//     range scans ("ger" -> "germany") by binary search.
type nameIndex struct {
	norm      map[string][]int32
	initials  map[string][]int32
	sorted    []string
	sortedIDs [][]int32
}

func buildNameIndex(names []string) nameIndex {
	ix := nameIndex{
		norm:     make(map[string][]int32, len(names)),
		initials: make(map[string][]int32),
	}
	for id, name := range names {
		n := strutil.Normalize(name)
		ix.norm[n] = append(ix.norm[n], int32(id))
		// Only initials that strutil.IsAbbreviationOf could ever accept are
		// indexed: at least 2 bytes and strictly shorter than the full name.
		all, sig := strutil.Initials(n)
		if len(all) >= 2 && len(all) < len(n) {
			ix.initials[all] = append(ix.initials[all], int32(id))
		}
		if sig != all && len(sig) >= 2 && len(sig) < len(n) {
			ix.initials[sig] = append(ix.initials[sig], int32(id))
		}
	}
	ix.sorted = make([]string, 0, len(ix.norm))
	for n := range ix.norm {
		ix.sorted = append(ix.sorted, n)
	}
	sort.Strings(ix.sorted)
	ix.sortedIDs = make([][]int32, len(ix.sorted))
	for i, n := range ix.sorted {
		ix.sortedIDs[i] = ix.norm[n]
	}
	return ix
}

// properPrefix returns the ids of all names that have p as a strict prefix
// (normalized name longer than p), by range scan over the sorted names.
func (ix *nameIndex) properPrefix(p string) []int32 {
	var out []int32
	for i := sort.SearchStrings(ix.sorted, p); i < len(ix.sorted) && strings.HasPrefix(ix.sorted[i], p); i++ {
		if len(ix.sorted[i]) > len(p) {
			out = append(out, ix.sortedIDs[i]...)
		}
	}
	return out
}

func convertIDs[T ~int32](ids []int32) []T {
	if len(ids) == 0 {
		return nil
	}
	out := make([]T, len(ids))
	for i, id := range ids {
		out[i] = T(id)
	}
	return out
}

// NodesByNormName returns the nodes whose strutil.Normalize'd name equals
// norm (norm must already be normalized), in ascending NodeID order.
func (g *Graph) NodesByNormName(norm string) []NodeID {
	return convertIDs[NodeID](g.nameIdx.norm[norm])
}

// NodesByInitials returns the nodes whose name abbreviates to initials per
// strutil.Initials (either the all-words or the significant-words form),
// in ascending NodeID order. Initials shorter than 2 bytes are never
// indexed, mirroring strutil.IsAbbreviationOf.
func (g *Graph) NodesByInitials(initials string) []NodeID {
	return convertIDs[NodeID](g.nameIdx.initials[initials])
}

// NodesByProperNormPrefix returns the nodes whose normalized name has the
// given strict prefix (the node name is longer), in ascending NodeID order
// per prefix-range; callers needing global NodeID order must sort.
func (g *Graph) NodesByProperNormPrefix(prefix string) []NodeID {
	return convertIDs[NodeID](g.nameIdx.properPrefix(prefix))
}

// TypesByNormName is NodesByNormName over the type vocabulary.
func (g *Graph) TypesByNormName(norm string) []TypeID {
	return convertIDs[TypeID](g.typeIdx.norm[norm])
}

// TypesByInitials is NodesByInitials over the type vocabulary.
func (g *Graph) TypesByInitials(initials string) []TypeID {
	return convertIDs[TypeID](g.typeIdx.initials[initials])
}

// TypesByProperNormPrefix is NodesByProperNormPrefix over the type
// vocabulary.
func (g *Graph) TypesByProperNormPrefix(prefix string) []TypeID {
	return convertIDs[TypeID](g.typeIdx.properPrefix(prefix))
}

// NodePreds returns the distinct predicates incident to u (either
// direction), in first-occurrence order of u's adjacency list. The semantic
// m(u) bound is a maximum over edge weights, which only depends on this
// set, so consumers iterate O(distinct predicates) instead of O(degree) —
// on dense hub nodes the difference is orders of magnitude. The returned
// slice is shared; callers must not modify it.
func (g *Graph) NodePreds(u NodeID) []PredID {
	return g.nodePreds[g.nodePredOff[u]:g.nodePredOff[u+1]]
}

// buildIndexes computes the derived read-only indexes; called by Build.
func (g *Graph) buildIndexes() {
	n := len(g.names)
	g.nodePredOff = make([]int32, n+1)
	g.nodePreds = make([]PredID, 0, n) // >= one distinct pred per non-isolated node
	mark := make([]int32, len(g.predNames))
	for i := range mark {
		mark[i] = -1
	}
	for u := 0; u < n; u++ {
		for _, h := range g.halves[g.adjOff[u]:g.adjOff[u+1]] {
			if mark[h.Pred] != int32(u) {
				mark[h.Pred] = int32(u)
				g.nodePreds = append(g.nodePreds, h.Pred)
			}
		}
		g.nodePredOff[u+1] = int32(len(g.nodePreds))
	}

	g.nameIdx = buildNameIndex(g.names)
	g.typeIdx = buildNameIndex(g.typeNames)
}
