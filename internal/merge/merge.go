// Package merge implements the gather half of the sharded scatter-gather
// pipeline: combining per-shard sub-query match streams into one globally
// sorted stream, and per-shard eager-collected match sets into one
// deduplicated set (see DESIGN.md, "Sharded execution").
//
// Sorted is demand-driven: it pulls one match ahead per source and yields
// the global maximum, so the TA assembly's L_k >= U_max early termination
// (Theorem 3) propagates straight through to the per-shard searches — a
// shard is asked for its next match only when the bounds actually require
// it, never to fill a fixed-size prefetch. Ties are broken by a total,
// deterministic order (End ascending, then path length, then source
// index), so the merged stream — and everything downstream of it — is
// reproducible regardless of per-shard timing.
//
// All matches entering a merger must already be remapped into one shared
// (base-graph) id space; the merger compares End() ids across sources.
package merge

import (
	"sort"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/ta"
)

// Source yields matches in non-increasing PSS order, like ta.Stream.
// Per-shard searchers (remapped to base ids) implement it.
type Source = ta.Stream

// before is the merge order: PSS descending, then End ascending, then
// shorter paths first, then lower source index — a total order, so equal
// inputs always merge identically (stable cross-shard tie-break).
func before(a astar.Match, ai int, b astar.Match, bi int) bool {
	if a.PSS != b.PSS {
		return a.PSS > b.PSS
	}
	if ae, be := a.End(), b.End(); ae != be {
		return ae < be
	}
	if la, lb := a.Len(), b.Len(); la != lb {
		return la < lb
	}
	return ai < bi
}

// Merged is a k-way merge of sorted match streams, itself a sorted
// ta.Stream. Not safe for concurrent use.
type Merged struct {
	sources []Source
	heads   []astar.Match
	ok      []bool
	primed  bool
	emitted map[kg.NodeID]bool
}

// Sorted merges the sources into one stream in non-increasing PSS order
// with the deterministic tie-break above, emitting at most one match per
// end node — the best, exactly as a single whole-graph searcher would
// (astar.Searcher.Next dedupes per end entity; with per-shard sources the
// same entity can reach its best score in several shards, and without
// this dedup the duplicates would inflate the TA assembly's rounds).
// Sources are pulled lazily: one look-ahead match each, refilled only
// when the source's head is emitted or superseded.
func Sorted(sources ...Source) *Merged {
	return &Merged{
		sources: sources,
		heads:   make([]astar.Match, len(sources)),
		ok:      make([]bool, len(sources)),
		emitted: make(map[kg.NodeID]bool),
	}
}

// Next returns the globally next-best match for a not-yet-seen end node,
// pulling from whichever source holds it. An exhausted or empty source
// simply stops contributing; Next reports false once every source has run
// dry.
func (m *Merged) Next() (astar.Match, bool) {
	if !m.primed {
		m.primed = true
		for i, src := range m.sources {
			m.heads[i], m.ok[i] = src.Next()
		}
	}
	for {
		best := -1
		for i := range m.sources {
			if !m.ok[i] {
				continue
			}
			if best < 0 || before(m.heads[i], i, m.heads[best], best) {
				best = i
			}
		}
		if best < 0 {
			return astar.Match{}, false
		}
		out := m.heads[best]
		m.heads[best], m.ok[best] = m.sources[best].Next()
		if m.emitted[out.End()] {
			continue // a better match for this entity was already emitted
		}
		m.emitted[out.End()] = true
		return out, true
	}
}

// BestByEnd merges per-shard eager-collected match sets (the TBQ M̂_i
// sets, keyed by base-graph end node) into one deduplicated, sorted slice:
// the best-PSS match per end node, ordered PSS descending with End
// ascending as the tie-break — exactly the order the single-engine TBQ
// assembly consumes, so an exhausted sharded collection assembles
// identically to the exhausted whole-graph collection. On equal PSS for
// the same end node, the earlier set (lower shard index) wins,
// deterministically.
func BestByEnd(sets ...map[kg.NodeID]astar.Match) []astar.Match {
	merged := make(map[kg.NodeID]astar.Match)
	for _, set := range sets {
		for end, m := range set {
			if cur, ok := merged[end]; !ok || m.PSS > cur.PSS {
				merged[end] = m
			}
		}
	}
	out := make([]astar.Match, 0, len(merged))
	for _, m := range merged {
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].PSS != out[b].PSS {
			return out[a].PSS > out[b].PSS
		}
		return out[a].End() < out[b].End()
	})
	return out
}
