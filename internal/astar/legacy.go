package astar

import (
	"math"

	"semkg/internal/kg"
	"semkg/internal/pqueue"
)

// LegacySearcher is the seed implementation of Algorithm 1, preserved
// verbatim: one heap-allocated *legacyState per successor, map-backed
// end-set membership, and math.Pow in the expansion inner loop. It exists
// as the reference side of the arena/seed equivalence tests (Theorem 2's
// emission order must be preserved by the arena rewrite) and the hotpath
// before/after benchmarks (cmd/kgbench -exp hotpath); production searches
// use Searcher.
type LegacySearcher struct {
	g    *kg.Graph
	w    Weighter
	sub  SubQuery
	opts Options

	frontier pqueue.Max[*legacyState]
	closed   map[stateKey]struct{}
	emitted  map[kg.NodeID]bool
	invRoot  float64
	stats    Stats
}

// legacyState is the seed frontier entry: a partial path positioned at
// node, currently matching query edge seg, having consumed hops graph
// edges with weight product w. Complete states (seg == Segments) carry
// their exact pss as the frontier priority.
type legacyState struct {
	node   kg.NodeID
	seg    int32
	hops   int32
	w      float64
	parent *legacyState
	via    kg.EdgeID // edge consumed to arrive; -1 for anchors
}

// NewLegacySearcher prepares a seed-implementation search for one
// sub-query graph, with the same contract as NewSearcher.
func NewLegacySearcher(g *kg.Graph, w Weighter, sub SubQuery, opts Options) *LegacySearcher {
	opts = opts.withDefaults()
	s := &LegacySearcher{
		g:       g,
		w:       w,
		sub:     sub,
		opts:    opts,
		closed:  make(map[stateKey]struct{}),
		emitted: make(map[kg.NodeID]bool),
		invRoot: 1 / float64(opts.MaxHops),
	}
	for _, u := range sub.Anchors {
		st := &legacyState{node: u, seg: 0, hops: 0, w: 1, via: -1}
		s.push(st, s.estimate(st))
	}
	return s
}

// Stats returns search-effort counters accumulated so far.
func (s *LegacySearcher) Stats() Stats { return s.stats }

// estimate computes ψ̂ for a partial state (Eq. 7).
func (s *LegacySearcher) estimate(st *legacyState) float64 {
	m := 1.0
	if !s.opts.NoHeuristic {
		m = s.w.NodeMax(st.node, int(st.seg))
	}
	return math.Pow(st.w*m, s.invRoot)
}

func (s *LegacySearcher) push(st *legacyState, priority float64) {
	s.frontier.Push(st, priority)
	s.stats.Pushed++
}

// Next returns the match with the greatest pss not yet returned, in exact
// non-increasing pss order. ok is false when the search space is exhausted.
func (s *LegacySearcher) Next() (Match, bool) {
	for {
		st, pri, ok := s.frontier.Pop()
		if !ok {
			return Match{}, false
		}
		if st.seg == int32(s.sub.Segments()) {
			if s.emitted[st.node] {
				continue
			}
			s.emitted[st.node] = true
			s.stats.Emitted++
			return s.reconstruct(st, pri), true
		}
		if s.opts.PruneVisited {
			key := stateKey{st.node, st.seg, st.hops}
			if _, dup := s.closed[key]; dup {
				continue
			}
			s.closed[key] = struct{}{}
		}
		s.stats.Popped++
		s.expand(st, nil)
	}
}

// RunEager drives the search in the time-bounded mode of Algorithm 2, with
// the same contract as Searcher.RunEager.
func (s *LegacySearcher) RunEager(stop func() bool, emit func(Match) bool) bool {
	for {
		if stop != nil && stop() {
			return false
		}
		st, _, ok := s.frontier.Pop()
		if !ok {
			return true
		}
		if st.seg == int32(s.sub.Segments()) {
			continue // already emitted at discovery time
		}
		if s.opts.PruneVisited {
			key := stateKey{st.node, st.seg, st.hops}
			if _, dup := s.closed[key]; dup {
				continue
			}
			s.closed[key] = struct{}{}
		}
		s.stats.Popped++
		keepGoing := true
		s.expand(st, func(m Match) {
			if keepGoing && !emit(m) {
				keepGoing = false
			}
		})
		if !keepGoing {
			return false
		}
	}
}

// expand generates the successor states of st exactly as the seed did.
func (s *LegacySearcher) expand(st *legacyState, emitEager func(Match)) {
	segs := int32(s.sub.Segments())
	if int(st.hops)+int(segs-st.seg) > s.opts.MaxHops {
		return
	}
	endSet := s.sub.EndSets[st.seg]
	for _, h := range s.g.Neighbors(st.node) {
		if legacyOnPath(st, h.Neighbor) {
			continue
		}
		w := s.w.Weight(h.Pred, int(st.seg))
		nw := st.w * w
		next := &legacyState{
			node:   h.Neighbor,
			seg:    st.seg,
			hops:   st.hops + 1,
			w:      nw,
			parent: st,
			via:    h.Edge,
		}
		if endSet[h.Neighbor] {
			next.seg++
			if next.seg == segs {
				pss := math.Pow(nw, 1/float64(next.hops))
				if pss < s.opts.Tau {
					s.stats.Pruned++
					continue
				}
				if emitEager != nil {
					s.stats.Emitted++
					emitEager(s.reconstruct(next, pss))
				} else {
					s.push(next, pss)
				}
				continue
			}
		}
		est := s.estimate(next)
		if est < s.opts.Tau {
			s.stats.Pruned++
			continue
		}
		s.push(next, est)
	}
}

func legacyOnPath(st *legacyState, u kg.NodeID) bool {
	for cur := st; cur != nil; cur = cur.parent {
		if cur.node == u {
			return true
		}
	}
	return false
}

// reconstruct walks the parent chain to materialize the match path.
func (s *LegacySearcher) reconstruct(st *legacyState, pss float64) Match {
	var revNodes []kg.NodeID
	var revEdges []kg.EdgeID
	var revSegs []int32
	for cur := st; cur != nil; cur = cur.parent {
		revNodes = append(revNodes, cur.node)
		if cur.via >= 0 {
			revEdges = append(revEdges, cur.via)
		}
		revSegs = append(revSegs, cur.seg)
	}
	n := len(revNodes)
	m := Match{
		Nodes: make([]kg.NodeID, n),
		Edges: make([]kg.EdgeID, len(revEdges)),
		PSS:   pss,
	}
	for i := range revNodes {
		m.Nodes[n-1-i] = revNodes[i]
	}
	for i := range revEdges {
		m.Edges[len(revEdges)-1-i] = revEdges[i]
	}
	segs := s.sub.Segments()
	m.SegEnds = make([]int, segs)
	prevSeg := int32(0)
	for i := n - 1; i >= 0; i-- {
		cur := revSegs[i]
		for sgi := prevSeg; sgi < cur; sgi++ {
			m.SegEnds[sgi] = n - 1 - i
		}
		prevSeg = cur
	}
	return m
}
