package kg

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteSnapshotFileAtomic: the atomic writer round-trips, and
// overwriting an existing snapshot replaces it wholesale without a
// window where the live path is truncated.
func TestWriteSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snap")
	g1 := randomWorld(3, 40, 90)
	if err := WriteSnapshotFile(path, g1); err != nil {
		t.Fatal(err)
	}
	assertSnapshotFileIs(t, path, g1)

	g2 := randomWorld(4, 60, 150)
	if err := WriteSnapshotFile(path, g2); err != nil {
		t.Fatal(err)
	}
	assertSnapshotFileIs(t, path, g2)

	// No temp litter after successful writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after atomic writes, want 1", len(entries))
	}
}

// TestWriteSnapshotFileKillMidWrite simulates a process killed while the
// snapshot compactor is mid-write: the partially written temp file is
// what the crash leaves behind. The live snapshot path must still hold
// the previous complete snapshot, and the abandoned partial file must
// fail ReadSnapshot with ErrSnapshotTruncated — it can never be mistaken
// for a valid snapshot.
func TestWriteSnapshotFileKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snap")
	live := randomWorld(5, 50, 120)
	if err := WriteSnapshotFile(path, live); err != nil {
		t.Fatal(err)
	}

	// The crash artifact: the next snapshot's bytes cut off mid-payload,
	// at the temp path the atomic writer would have used.
	next := randomWorld(6, 70, 160)
	full := snapshotBytes(t, next)
	for _, cut := range []int{0, 4, len(full) / 3, len(full) - 1} {
		tmp := filepath.Join(dir, ".g.snap.123.tmp")
		if err := os.WriteFile(tmp, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		// The kill happened before the rename: the live path is untouched.
		assertSnapshotFileIs(t, path, live)

		// The partial temp file is typed-error garbage, not a snapshot:
		// depending on where the kill landed the loader reports a
		// truncation or (once enough bytes exist for a CRC check) a
		// checksum mismatch — never success, never a panic.
		_, err := ReadSnapshot(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotChecksum) {
			t.Fatalf("cut %d: partial snapshot error = %v, want truncated or checksum", cut, err)
		}

		// Recovery: the next successful atomic write replaces the live
		// snapshot even with crash litter in the directory.
		if err := WriteSnapshotFile(path, next); err != nil {
			t.Fatal(err)
		}
		assertSnapshotFileIs(t, path, next)

		// Reset for the next truncation point.
		if err := os.Remove(tmp); err != nil {
			t.Fatal(err)
		}
		if err := WriteSnapshotFile(path, live); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWriteSnapshotFileErrorLeavesLiveIntact: a writer failure (the
// target directory vanished mid-flight is simulated with an unwritable
// directory) reports the error and leaves no live-path damage.
func TestWriteSnapshotFileErrorLeavesLiveIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "g.snap")
	if err := WriteSnapshotFile(path, randomWorld(7, 10, 20)); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("live path exists after failed write: %v", err)
	}
}

func assertSnapshotFileIs(t *testing.T, path string, want *Graph) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, got, want)
}
