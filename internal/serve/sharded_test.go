package serve

import (
	"bytes"
	"context"
	"testing"

	"semkg/internal/core"
	"semkg/internal/kg"
)

// shardedTestEngine wraps the motivating-example engine in a 2-shard
// scatter-gather engine.
func shardedTestEngine(t *testing.T) *core.ShardedEngine {
	t.Helper()
	se, err := core.NewShardedEngine(testEngine(t), core.ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return se
}

// TestServingOverShardedEngine: the serving layer works unchanged over a
// ShardedEngine — cold run and warm cache hit are byte-identical, the
// plan cache hits on the second request, and the answers match the
// single-engine serving path.
func TestServingOverShardedEngine(t *testing.T) {
	ctx := context.Background()
	single := New(testEngine(t), Config{})
	sharded := New(shardedTestEngine(t), Config{})

	want, err := single.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sharded.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(answersJSON(t, cold), answersJSON(t, want)) {
		t.Fatalf("sharded serving answers differ from single-engine serving:\n%s\n%s",
			answersJSON(t, cold), answersJSON(t, want))
	}
	warm, err := sharded.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireJSON(t, cold), wireJSON(t, warm)) {
		t.Fatal("warm cache hit not byte-identical over sharded engine")
	}
	st := sharded.Stats()
	if st.ResultHits != 1 || st.PipelineRuns != 1 {
		t.Fatalf("stats = %+v, want 1 result hit and 1 pipeline run", st)
	}

	// A different K shares the compiled sharded plan.
	opts2 := testOpts()
	opts2.K = 3
	if _, err := sharded.Search(ctx, q117(), opts2); err != nil {
		t.Fatal(err)
	}
	if st := sharded.Stats(); st.PlanHits != 1 {
		t.Fatalf("plan hits = %d, want 1 (sharded plan reused across K)", st.PlanHits)
	}
}

// TestServingShardedStreamReplay: the recorded event log of a sharded
// execution replays identically on a result-cache hit.
func TestServingShardedStreamReplay(t *testing.T) {
	ctx := context.Background()
	srv := New(shardedTestEngine(t), Config{})
	live, err := srv.Stream(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var liveEvents []core.Event
	for ev := range live.Events() {
		liveEvents = append(liveEvents, ev)
	}
	replay, err := srv.Stream(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var replayEvents []core.Event
	for ev := range replay.Events() {
		replayEvents = append(replayEvents, ev)
	}
	if len(replayEvents) != len(liveEvents) {
		t.Fatalf("replay delivered %d events, live %d", len(replayEvents), len(liveEvents))
	}
	sawShard := false
	for _, ev := range liveEvents {
		if pe, ok := ev.(core.ProgressEvent); ok && pe.Shard > 0 {
			sawShard = true
		}
	}
	if !sawShard {
		t.Fatal("no per-shard progress in the recorded log")
	}
}

// TestApplyRebuildsShardedEngine: live ingestion over a sharded serving
// layer re-partitions the committed graph — the new entity is owned,
// searchable, and the generation advanced exactly once.
func TestApplyRebuildsShardedEngine(t *testing.T) {
	ctx := context.Background()
	srv := New(shardedTestEngine(t), Config{
		Build: func(g *kg.Graph) (core.Queryer, error) {
			eng, err := testBuild()(g)
			if err != nil {
				return nil, err
			}
			return core.NewShardedEngine(eng.(*core.Engine), core.ShardConfig{Shards: 2})
		},
	})
	d := srv.NewDelta()
	if err := d.ApplyTriple("BMW_i9", "type", "Automobile"); err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyTriple("BMW_i9", "assembly", "Germany"); err != nil {
		t.Fatal(err)
	}
	info, err := srv.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 {
		t.Fatalf("generation = %d, want 1", info.Generation)
	}
	if _, ok := srv.Engine().(*core.ShardedEngine); !ok {
		t.Fatalf("post-apply engine is %T, want *core.ShardedEngine", srv.Engine())
	}
	res, err := srv.Search(ctx, q117(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Answers {
		if a.PivotName == "BMW_i9" {
			found = true
		}
	}
	if !found {
		t.Fatal("ingested entity not found through the re-partitioned sharded engine")
	}
}
