package faultinject

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP proxy that sits between two real peers — in the chaos
// tests, between a replication follower and its primary — and applies a
// fresh fault Script to the upstream→client byte flow of each accepted
// connection. It is the piece that turns "kill the follower's link after
// exactly N bytes of the delta stream" into one line of test setup.
type Proxy struct {
	ln       net.Listener
	upstream string

	mu     sync.Mutex
	script func() *Script // per-connection; nil = clean pass-through
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and forwards every accepted
// connection to upstream (a host:port address).
func NewProxy(upstream string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultinject: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, upstream: upstream, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's host:port — point the client at this.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetScript installs a factory producing the fault script applied to the
// upstream→client flow of each subsequently accepted connection. Scripts
// are single-use, hence the factory. nil restores clean pass-through.
func (p *Proxy) SetScript(fn func() *Script) {
	p.mu.Lock()
	p.script = fn
	p.mu.Unlock()
}

// SeverAll closes every live proxied connection immediately, in both
// directions — the network-partition lever.
func (p *Proxy) SeverAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Conns reports the number of live proxied connections.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close stops accepting, severs every live connection, and waits for the
// forwarding goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.SeverAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		script := p.script
		p.conns[client] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.forward(client, script)
	}
}

func (p *Proxy) forward(client net.Conn, scriptFn func() *Script) {
	defer p.wg.Done()
	defer func() {
		client.Close()
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
	}()

	server, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		return
	}
	defer server.Close()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.conns[server] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, server)
		p.mu.Unlock()
	}()

	var down io.Reader = server
	if scriptFn != nil {
		if s := scriptFn(); s != nil {
			down = Reader(server, s)
		}
	}

	done := make(chan struct{}, 2)
	go func() { // client → upstream (requests): always clean
		io.Copy(server, client)
		// Half-close so the upstream sees the request end; full close
		// happens when both directions finish.
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() { // upstream → client (responses): scripted
		_, err := io.Copy(client, down)
		if err != nil {
			// A fired Sever (or any transport error) kills the whole
			// proxied connection: the client must observe a broken
			// transport, not a half-open stall. A Truncate surfaces as
			// a clean EOF and falls through to the polite half-close.
			client.Close()
			server.Close()
		} else if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
