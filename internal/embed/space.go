package embed

import (
	"fmt"
	"sort"
)

// Space is the predicate semantic space E: one vector per predicate, indexed
// by the graph's PredID order (position i holds the vector of predicate i).
// It is immutable after construction and safe for concurrent readers.
type Space struct {
	dim     int
	names   []string
	vectors []Vector
	// cosine cache, computed eagerly: with p predicates the matrix has p²
	// entries, tiny compared to the graph. sim[i*p+j] = cos(e_i, e_j).
	sim []float64
}

// NewSpace builds a Space from per-predicate vectors. names[i] labels
// vectors[i]. All vectors must share the same dimension.
func NewSpace(names []string, vectors []Vector) (*Space, error) {
	if len(names) != len(vectors) {
		return nil, fmt.Errorf("embed: %d names but %d vectors", len(names), len(vectors))
	}
	dim := 0
	if len(vectors) > 0 {
		dim = len(vectors[0])
	}
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("embed: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	s := &Space{dim: dim, names: names, vectors: vectors}
	p := len(vectors)
	s.sim = make([]float64, p*p)
	for i := 0; i < p; i++ {
		s.sim[i*p+i] = 1
		for j := i + 1; j < p; j++ {
			c := Cosine(vectors[i], vectors[j])
			s.sim[i*p+j] = c
			s.sim[j*p+i] = c
		}
	}
	return s, nil
}

// Dim returns the embedding dimension.
func (s *Space) Dim() int { return s.dim }

// Len returns the number of predicates.
func (s *Space) Len() int { return len(s.vectors) }

// Name returns the label of predicate p.
func (s *Space) Name(p int) string { return s.names[p] }

// Vector returns the embedding of predicate p. The returned slice is
// shared; callers must not modify it.
func (s *Space) Vector(p int) Vector { return s.vectors[p] }

// Similarity returns the cosine similarity between predicates a and b
// (Eq. 5 of the paper), in [-1, 1].
func (s *Space) Similarity(a, b int) float64 {
	return s.sim[a*len(s.vectors)+b]
}

// TopSimilar returns the n predicates most similar to p (excluding p
// itself), in non-increasing similarity order. Used by the edge-noise
// injection of the robustness experiment (Section VII-E).
func (s *Space) TopSimilar(p, n int) []int {
	type cand struct {
		id  int
		sim float64
	}
	cands := make([]cand, 0, s.Len()-1)
	for i := 0; i < s.Len(); i++ {
		if i == p {
			continue
		}
		cands = append(cands, cand{i, s.Similarity(p, i)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		return cands[i].id < cands[j].id
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].id
	}
	return out
}
