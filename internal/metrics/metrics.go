// Package metrics implements the evaluation measures of Section VII:
// precision, recall and F1 against validation sets (Section VII-B), the
// Jaccard approximation degree of the time-bounded mode (Eq. 12), and the
// Pearson correlation coefficient of the simulated user study
// (Section VII-D, Table VII).
package metrics

import (
	"math"
	"math/rand"
)

// PR holds precision/recall/F1 for one query.
type PR struct {
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate compares ranked answers against a validation set: precision is
// the fraction of answers that are correct, recall the fraction of the
// validation set discovered (both over the full answer list given — trim
// to k before calling for @k metrics).
func Evaluate(answers []string, truth []string) PR {
	truthSet := make(map[string]bool, len(truth))
	for _, t := range truth {
		truthSet[t] = true
	}
	correct := 0
	seen := make(map[string]bool, len(answers))
	for _, a := range answers {
		if seen[a] {
			continue
		}
		seen[a] = true
		if truthSet[a] {
			correct++
		}
	}
	var pr PR
	if len(seen) > 0 {
		pr.Precision = float64(correct) / float64(len(seen))
	}
	if len(truthSet) > 0 {
		pr.Recall = float64(correct) / float64(len(truthSet))
	}
	if pr.Precision+pr.Recall > 0 {
		pr.F1 = 2 * pr.Precision * pr.Recall / (pr.Precision + pr.Recall)
	}
	return pr
}

// Mean averages a slice of PR results.
func Mean(prs []PR) PR {
	if len(prs) == 0 {
		return PR{}
	}
	var out PR
	for _, p := range prs {
		out.Precision += p.Precision
		out.Recall += p.Recall
		out.F1 += p.F1
	}
	n := float64(len(prs))
	out.Precision /= n
	out.Recall /= n
	out.F1 /= n
	return out
}

// Jaccard returns |A ∩ B| / |A ∪ B| over two answer sets (Eq. 12). Two
// empty sets are identical (1).
func Jaccard(a, b []string) float64 {
	as := make(map[string]bool, len(a))
	for _, x := range a {
		as[x] = true
	}
	bs := make(map[string]bool, len(b))
	for _, x := range b {
		bs[x] = true
	}
	inter := 0
	for x := range as {
		if bs[x] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// PCC returns the Pearson correlation coefficient of two equal-length
// value lists, or 0 when either list has zero variance.
func PCC(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// UserStudy simulates the crowd-sourced preference study of Section VII-D.
// The real study presents pairs of answers (from different score groups)
// to 10 annotators and correlates the system's rank differences with the
// annotators' preference counts. Here each annotator prefers the
// better-ranked answer with a probability that grows with the underlying
// quality gap, plus individual noise — a standard noisy-observer model.
type UserStudy struct {
	// Annotators per pair (paper: 10).
	Annotators int
	// Pairs sampled per query (paper: 30).
	Pairs int
	// Noise is the annotator confusion level in [0, 0.5): 0 = perfectly
	// quality-aligned annotators, 0.5 = coin flips.
	Noise float64
	// Rng drives the simulation.
	Rng *rand.Rand
}

// Run simulates the study for one query: quality[i] is the latent quality
// of the system's i-th ranked answer (best first), e.g. blended from
// validation membership and match score. It returns the PCC between rank
// differences and annotator preference differences.
//
// As in the paper, answers are grouped by (latent) score and each pair
// draws its two answers from different groups, so no pair ties.
func (s UserStudy) Run(quality []float64) float64 {
	if len(quality) < 2 || s.Rng == nil {
		return 0
	}
	annotators := s.Annotators
	if annotators <= 0 {
		annotators = 10
	}
	pairs := s.Pairs
	if pairs <= 0 {
		pairs = 30
	}
	// Group answer indexes by quality value.
	groupOf := make(map[float64][]int)
	var keys []float64
	for i, q := range quality {
		if _, ok := groupOf[q]; !ok {
			keys = append(keys, q)
		}
		groupOf[q] = append(groupOf[q], i)
	}
	if len(keys) < 2 {
		return 0 // a single score group carries no ranking signal
	}
	var xs, ys []float64
	for p := 0; p < pairs; p++ {
		ga := keys[s.Rng.Intn(len(keys))]
		gb := keys[s.Rng.Intn(len(keys))]
		if ga == gb {
			continue
		}
		i := groupOf[ga][s.Rng.Intn(len(groupOf[ga]))]
		j := groupOf[gb][s.Rng.Intn(len(groupOf[gb]))]
		// x: rank difference as the system sees it (positive when i is
		// ranked better, i.e. appears earlier).
		x := float64(j - i)
		// y: annotator preference difference.
		prefI := 0
		gap := quality[i] - quality[j]
		pPreferI := sigmoid(4*gap)*(1-2*s.Noise) + s.Noise
		for a := 0; a < annotators; a++ {
			if s.Rng.Float64() < pPreferI {
				prefI++
			}
		}
		y := float64(prefI - (annotators - prefI))
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return PCC(xs, ys)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
