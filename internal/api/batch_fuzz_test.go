// Native fuzz targets for the batch codecs, in the same contract as
// fuzz_test.go: arbitrary wire bytes must never panic the decoders, and
// every accepted document must survive an encode→decode round trip
// unchanged. CI's fuzz-smoke step runs each target briefly under -fuzz.

package api

import (
	"bytes"
	"encoding/json"

	"testing"
)

func FuzzDecodeBatchRequest(f *testing.F) {
	seeds := []string{
		`{"queries":[{"id":"a","query":{"nodes":[{"id":"v1","type":"Automobile"},
		  {"id":"v2","name":"Germany","type":"Country"}],
		  "edges":[{"from":"v1","to":"v2","predicate":"assembly"}]}}],
		  "options":{"k":10,"tau":0.75}}`,
		`{"queries":[{"query":{"nodes":[],"edges":[]},"options":{"k":3}},
		  {"query":{"nodes":[],"edges":[]}}],"options":{"tau":0.6}}`,
		`{"queries":[],"options":{}}`,
		`{"queries":[{"query":{"nodes":[],"edges":[]},"options":{"time_bound":"50ms"}}]}`,
		`{"queries":[{"query":{"nodes":[],"edges":[]},"bogus":1}]}`, // unknown field: error, not panic
		`{"queries":[]} trailing`,
		`{}`, `[]`, `{`, `null`, `0`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeBatchRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only absence of panics matters
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted batch request failed to encode: %v", err)
		}
		req2, err := DecodeBatchRequest(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		// Fixed-point check: re-encoding the re-decoded document must be
		// byte-identical (DeepEqual would trip over nil-vs-empty slices
		// that omitempty legitimately collapses).
		enc2, err := json.Marshal(req2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
		// Item resolution must not panic on any accepted document.
		for i := range req.Queries {
			g, _ := req.Item(i)
			if g == nil {
				t.Fatalf("item %d resolved to a nil graph", i)
			}
		}
	})
}

func FuzzDecodeBatchResult(f *testing.F) {
	seeds := []string{
		`{"results":[{"index":0,"id":"a","result":{"answers":[],"elapsed":"1ms"}},
		  {"index":1,"error":"bad request"}]}`,
		`{"results":[]}`,
		`{"results":[{"index":0,"result":{"answers":[{"entity":"BMW_320","score":0.9}],"elapsed":"2ms"}}]}`,
		`{"results":[{"index":0,"bogus":1}]}`,
		`{"results":[]} trailing`,
		`{}`, `[]`, `{`, `null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeBatchResult(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("accepted batch result failed to encode: %v", err)
		}
		res2, err := DecodeBatchResult(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		enc2, err := json.Marshal(res2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}

func FuzzBatchEventRoundTrip(f *testing.F) {
	seeds := []string{
		`{"index":0,"event":"progress","sub":0,"collected":3}`,
		`{"index":2,"id":"q-two","event":"result","result":{"answers":[],"elapsed":"1ms"}}`,
		`{"index":1,"event":"topk","round":2,"lower_k":0.8,"upper_max":0.9,
		  "answers":[{"entity":"BMW_320","score":0.9}]}`,
		`{"index":1,"event":"error","error":"no such pivot"}`,
		`{"index":0,"event":"phase","phase":"assemble","sizes":[4,9]}`,
		`{"event":"progress"}`, // index 0 implied
		`{"index":0}`,          // missing discriminator: error
		`{}`, `[]`, `{`, `null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeBatchEvent(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("accepted batch event failed to encode: %v", err)
		}
		ev2, err := DecodeBatchEvent(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, enc)
		}
		enc2, err := json.Marshal(ev2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
