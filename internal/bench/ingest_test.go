package bench

import "testing"

// TestRunIngestShape runs the storage-layer experiment end to end and
// checks the acceptance properties: an order-of-magnitude snapshot cold
// start over the TSV parse + index build, commit latency measured per
// delta size, and the live workload completing queries while generations
// swap. Skipped in -short mode (the environment trains an embedding).
//
// The ≥10x acceptance bar is measured at kgbench's default scale
// (BENCH_ingest.json, committed: 11-13x); this test runs a smaller world
// where fixed costs weigh more and timing noise on a busy single-core CI
// runner is larger, so it asserts 8x as the regression floor.
func TestRunIngestShape(t *testing.T) {
	env := testEnv(t)
	res, err := RunIngest(env, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Load.TSVLoadUs <= 0 || res.Load.SnapshotUs <= 0 {
		t.Fatalf("non-positive load measurements: %+v", res.Load)
	}
	if res.Load.Speedup < 8 {
		t.Errorf("snapshot load speedup = %.1fx, want >= 8x at test scale (tsv %.0f µs vs snapshot %.0f µs)",
			res.Load.Speedup, res.Load.TSVLoadUs, res.Load.SnapshotUs)
	}
	if len(res.Commits) == 0 {
		t.Fatal("no commit measurements")
	}
	for _, c := range res.Commits {
		if c.CommitUs <= 0 {
			t.Errorf("commit %d edges: non-positive latency", c.DeltaEdges)
		}
	}
	if res.Live.Requests == 0 || res.Live.QPS <= 0 {
		t.Errorf("live workload made no progress: %+v", res.Live)
	}
	if res.Live.Commits == 0 || res.Live.Generation == 0 {
		t.Errorf("live workload published no generations: %+v", res.Live)
	}
}
