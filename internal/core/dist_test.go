package core

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"semkg/internal/datagen"
	"semkg/internal/embed"
	"semkg/internal/faultinject"
	"semkg/internal/shard"
	"semkg/internal/tbq"
)

// distWorld is one distributed deployment for tests: in-process httptest
// shard servers (replicas of one shard share the loaded *Shard, exactly
// like replicas loading the same shard file) behind a coordinator.
type distWorld struct {
	set     *shard.Set
	hosts   [][]string
	servers [][]*httptest.Server
	de      *DistEngine
}

// distOver partitions e's graph into n shards, serves each from
// `replicas` httptest servers, and wires a coordinator over them.
func distOver(t *testing.T, e *Engine, n, replicas int, cfg DistConfig) *distWorld {
	t.Helper()
	set, err := shard.Partition(e.Graph(), shard.Options{Shards: n})
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([][]string, n)
	servers := make([][]*httptest.Server, n)
	for i := 0; i < n; i++ {
		for r := 0; r < replicas; r++ {
			srv, err := shard.NewServer(set.Shard(i))
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv.Handler())
			t.Cleanup(hs.Close)
			hosts[i] = append(hosts[i], hs.URL)
			servers[i] = append(servers[i], hs)
		}
	}
	de, err := NewDistEngine(e, hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &distWorld{set: set, hosts: hosts, servers: servers, de: de}
}

// TestDistSearchEquivalenceSGQ is the cross-process acceptance property
// at the package level: for generated worlds, every query shape, and
// 1/2/4 shards, the HTTP-scattered exact search is field-identical to
// the single engine and the in-process sharded engine.
func TestDistSearchEquivalenceSGQ(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 42} {
		ds, e := tinyWorld(t, seed)
		type deployment struct {
			dist    *DistEngine
			sharded *ShardedEngine
		}
		deployments := map[int]deployment{}
		for _, n := range []int{1, 2, 4} {
			deployments[n] = deployment{distOver(t, e, n, 1, DistConfig{}).de, shardedOver(t, e, n)}
		}
		for _, q := range shardedWorkload(ds) {
			for _, k := range []int{1, 5} {
				opts := Options{K: k, Tau: 0.5, MaxHops: 3}
				want, err := e.Search(ctx, q.Graph, opts)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, q.Name, err)
				}
				for n, dep := range deployments {
					got, err := dep.dist.Search(ctx, q.Graph, opts)
					if err != nil {
						t.Fatalf("seed %d %s shards=%d: %v", seed, q.Name, n, err)
					}
					assertTopKEquivalent(t, q.Name, got, want)
					inproc, err := dep.sharded.Search(ctx, q.Graph, opts)
					if err != nil {
						t.Fatalf("seed %d %s shards=%d (in-process): %v", seed, q.Name, n, err)
					}
					assertTopKEquivalent(t, q.Name, got, inproc)
				}
			}
		}
	}
}

// TestDistStreamMatchesSearch: the distributed pipeline streams the same
// terminal result its batch form returns, ends in a ResultEvent, and
// attributes progress to shards.
func TestDistStreamMatchesSearch(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 17)
	de := distOver(t, e, 3, 1, DistConfig{}).de
	for _, q := range shardedWorkload(ds)[:4] {
		opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
		want, err := de.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := de.Stream(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		events, res := drainStream(t, st)
		if err := st.Err(); err != nil {
			t.Fatalf("%s: stream error: %v", q.Name, err)
		}
		// Remote effort counters are not deterministic: a source the
		// assembly never fully drained reports only the work that crossed
		// the wire before cancellation, which varies with scheduling. The
		// answers are deterministic; compare those.
		res2, want2 := *res, *want
		res2.SearchStats, want2.SearchStats = nil, nil
		res2.ShardEffort, want2.ShardEffort = nil, nil
		assertResultsEqual(t, q.Name+"/dist-stream", &res2, &want2)
		sawShard := false
		for _, ev := range events {
			if pe, ok := ev.(ProgressEvent); ok {
				if pe.Shard < 1 || pe.Shard > 3 {
					t.Fatalf("%s: progress event shard %d outside [1,3]", q.Name, pe.Shard)
				}
				sawShard = true
			}
		}
		if len(want.Answers) > 0 && !sawShard {
			t.Fatalf("%s: no per-shard progress events", q.Name)
		}
		if _, ok := events[len(events)-1].(ResultEvent); !ok {
			t.Fatalf("%s: last event %T, want ResultEvent", q.Name, events[len(events)-1])
		}
	}
}

// TestDistTBQExhaustedEquivalence: with an ample real-clock budget the
// distributed time-bounded search exhausts every shard's eager set and
// assembles exactly the single engine's exhausted TBQ answer, including
// the per-sub collected counts and the exact (non-approximate) flag.
func TestDistTBQExhaustedEquivalence(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 8)
	de := distOver(t, e, 4, 1, DistConfig{}).de
	for _, q := range shardedWorkload(ds)[:5] {
		opts := Options{K: 5, Tau: 0.5, MaxHops: 3, TimeBound: time.Hour}
		want, err := e.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := de.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want.Approximate || got.Approximate {
			t.Fatalf("%s: ample budget did not exhaust (single %v, dist %v)",
				q.Name, want.Approximate, got.Approximate)
		}
		if len(got.Answers) != len(want.Answers) {
			t.Fatalf("%s: %d answers, want %d", q.Name, len(got.Answers), len(want.Answers))
		}
		for i := range want.Answers {
			if got.Answers[i].PivotName != want.Answers[i].PivotName ||
				got.Answers[i].Score != want.Answers[i].Score {
				t.Fatalf("%s: rank %d = %s/%v, want %s/%v", q.Name, i,
					got.Answers[i].PivotName, got.Answers[i].Score,
					want.Answers[i].PivotName, want.Answers[i].Score)
			}
		}
		if len(got.Collected) != len(want.Collected) {
			t.Fatalf("%s: %d collected counts, want %d", q.Name, len(got.Collected), len(want.Collected))
		}
		for i := range want.Collected {
			if got.Collected[i] != want.Collected[i] {
				t.Fatalf("%s: sub %d collected %d, want %d", q.Name, i, got.Collected[i], want.Collected[i])
			}
		}
	}
}

// TestDistLocalFallbacks: requests the remote partition cannot serve —
// MaxHops beyond the shard halo, or a test clock that cannot cross a
// process boundary — run on the coordinator's local base engine, with
// identical results and a counted fallback.
func TestDistLocalFallbacks(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	de := distOver(t, e, 2, 1, DistConfig{}).de
	q := shardedWorkload(ds)[0]

	deep := Options{K: 5, Tau: 0.5, MaxHops: de.Halo() + 1}
	want, err := e.Search(ctx, q.Graph, deep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := de.Search(ctx, q.Graph, deep)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEquivalent(t, q.Name+"/deep", got, want)
	if de.Stats().Fallbacks == 0 {
		t.Fatal("MaxHops beyond the halo did not count a local fallback")
	}

	clocked := Options{K: 5, Tau: 0.5, MaxHops: 3, TimeBound: time.Hour, Clock: &tbq.StepClock{Step: time.Microsecond}}
	before := de.Stats().Fallbacks
	if _, err := de.Search(ctx, q.Graph, clocked); err != nil {
		t.Fatal(err)
	}
	if de.Stats().Fallbacks == before {
		t.Fatal("test clock did not count a local fallback")
	}
}

// TestDistPlanCompat: distributed plans recognize their coordinator and
// only it, reuse across searches, and foreign plans are rejected.
func TestDistPlanCompat(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	de := distOver(t, e, 2, 1, DistConfig{}).de
	q := shardedWorkload(ds)[0]
	opts := Options{K: 5, Tau: 0.5, MaxHops: 3}

	p, err := de.CompileQuery(q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.PlannedBy(de) {
		t.Fatal("dist plan does not recognize its coordinator")
	}
	if p.PlannedBy(e) {
		t.Fatal("dist plan claims the base engine planned it")
	}
	want, err := de.Search(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := de.SearchCompiled(ctx, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEquivalent(t, q.Name+"/compiled", got, want)

	base, err := e.CompileQuery(q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := de.SearchCompiled(ctx, base, opts); err == nil {
		t.Fatal("coordinator accepted a base-engine plan")
	}
}

// TestDistMetaValidation: a coordinator refuses to start over replicas
// that partition differently or serve a different world — wrong search
// results are prevented at construction, not discovered in production.
func TestDistMetaValidation(t *testing.T) {
	_, e := tinyWorld(t, 3)
	set, err := shard.Partition(e.Graph(), shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	serveShard := func(sh *shard.Shard) *httptest.Server {
		srv, err := shard.NewServer(sh)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		return hs
	}
	s0 := serveShard(set.Shard(0))
	s1 := serveShard(set.Shard(1))

	// Happy path sanity.
	if _, err := NewDistEngine(e, [][]string{{s0.URL}, {s1.URL}}, DistConfig{}); err != nil {
		t.Fatalf("clean deployment rejected: %v", err)
	}
	// Replica serving the wrong shard index.
	if _, err := NewDistEngine(e, [][]string{{s1.URL}, {s0.URL}}, DistConfig{}); err == nil {
		t.Fatal("swapped shard replicas accepted")
	}
	// Partition arity mismatch: 2-way shards behind a 3-shard coordinator.
	if _, err := NewDistEngine(e, [][]string{{s0.URL}, {s1.URL}, {s1.URL}}, DistConfig{}); err == nil {
		t.Fatal("2-way partition accepted as a 3-shard deployment")
	}
	// Replica from a different (bigger) world: its shard maps base ids
	// past this coordinator's graph.
	big := datagen.Generate(datagen.Profile{
		Name: "foreign", Seed: 5,
		Countries: 6, CitiesPerCtr: 3, Companies: 30, Autos: 200,
		People: 80, Engines: 30, Clubs: 10, FillerTypes: 2, FillerPerType: 5,
	})
	oset, err := shard.Partition(big.Graph, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDistEngine(e, [][]string{{serveShard(oset.Shard(0)).URL}, {s1.URL}}, DistConfig{}); err == nil {
		t.Fatal("foreign world's shard accepted (stale-snapshot check failed)")
	}
	// Dead replica.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	if _, err := NewDistEngine(e, [][]string{{s0.URL}, {deadURL}}, DistConfig{MetaTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("unreachable replica accepted")
	}
}

// TestDistShardUnavailableTyped: when every replica of a shard is dead
// past the retry budget, Search fails with *ShardUnavailableError — a
// typed partial-result refusal, not a silently wrong top-k and not a
// hang — and the streaming form surfaces the same error as an
// ErrorEvent terminal.
func TestDistShardUnavailableTyped(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	w := distOver(t, e, 2, 1, DistConfig{Retries: 1, RetryBackoff: time.Millisecond})
	q := shardedWorkload(ds)[0]
	opts := Options{K: 5, Tau: 0.5, MaxHops: 3}

	// Kill shard 1's only replica after construction-time validation.
	w.servers[1][0].CloseClientConnections()
	w.servers[1][0].Close()

	done := make(chan struct{})
	var searchErr error
	go func() {
		defer close(done)
		_, searchErr = w.de.Search(ctx, q.Graph, opts)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("dead-shard search hung")
	}
	var unavail *ShardUnavailableError
	if !errors.As(searchErr, &unavail) {
		t.Fatalf("error %v (%T), want *ShardUnavailableError", searchErr, searchErr)
	}
	if unavail.Shard != 1 {
		t.Fatalf("failed shard %d, want 1", unavail.Shard)
	}
	if unavail.Attempts < 2 {
		t.Fatalf("%d attempts, want >= 2 (1 try + 1 retry)", unavail.Attempts)
	}

	st, err := w.de.Stream(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	var sawError bool
	for ev := range st.Events() {
		if _, ok := ev.(ErrorEvent); ok {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("stream did not emit an ErrorEvent terminal")
	}
	if !errors.As(st.Err(), &unavail) {
		t.Fatalf("stream Err() = %v, want *ShardUnavailableError", st.Err())
	}
	if st.Result() != nil {
		t.Fatal("failed stream still produced a result")
	}
	if w.de.Stats().ShardErrors == 0 {
		t.Fatal("shard errors not counted")
	}
}

// TestDistFailoverDeadReplica: with two replicas per shard, killing one
// replica of every shard still yields the exact answer — the retry loop
// rotates to the live sibling.
func TestDistFailoverDeadReplica(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 42)
	set, err := shard.Partition(e.Graph(), shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var killable []*httptest.Server
	hosts := make([][]string, 2)
	for i := 0; i < 2; i++ {
		for r := 0; r < 2; r++ {
			srv, err := shard.NewServer(set.Shard(i))
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv.Handler())
			t.Cleanup(hs.Close)
			hosts[i] = append(hosts[i], hs.URL)
			if r == 0 {
				killable = append(killable, hs)
			}
		}
	}
	de, err := NewDistEngine(e, hosts, DistConfig{Retries: 3, RetryBackoff: time.Millisecond, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, hs := range killable {
		hs.CloseClientConnections()
		hs.Close()
	}
	for _, q := range shardedWorkload(ds)[:4] {
		opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
		want, err := e.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := de.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatalf("%s: failover search failed: %v", q.Name, err)
		}
		assertTopKEquivalent(t, q.Name+"/failover", got, want)
	}
}

// TestDistHedgedSlowReplica: a replica that stalls before its first
// response line triggers a hedge onto its sibling, and the answer stays
// exact. Both replicas serve identical shard state, so whichever wins
// the race produces the same stream.
func TestDistHedgedSlowReplica(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 17)
	set, err := shard.Partition(e.Graph(), shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var stall atomic.Bool
	stall.Store(true)
	hosts := make([][]string, 2)
	for i := 0; i < 2; i++ {
		srv, err := shard.NewServer(set.Shard(i))
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		for r := 0; r < 2; r++ {
			slow := r == 0
			hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if slow && stall.Load() && req.URL.Path != "/v1/shard/meta" {
					time.Sleep(150 * time.Millisecond)
				}
				h.ServeHTTP(w, req)
			}))
			t.Cleanup(hs.Close)
			hosts[i] = append(hosts[i], hs.URL)
		}
	}
	de, err := NewDistEngine(e, hosts, DistConfig{HedgeAfter: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	q := shardedWorkload(ds)[1]
	opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
	want, err := e.Search(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := de.Search(ctx, q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEquivalent(t, q.Name+"/hedged", got, want)
	if de.Stats().Hedges == 0 {
		t.Fatal("stalled replica produced no hedges")
	}
	// With the stall lifted the deployment serves normally again.
	stall.Store(false)
	if _, err := de.Search(ctx, q.Graph, opts); err != nil {
		t.Fatal(err)
	}
}

// proxiedDist builds a 2-shard deployment where every replica sits
// behind a faultinject proxy, and returns the proxies for scripting.
func proxiedDist(t *testing.T, e *Engine, replicas int, cfg DistConfig) (*DistEngine, [][]*faultinject.Proxy) {
	t.Helper()
	set, err := shard.Partition(e.Graph(), shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	hosts := make([][]string, 2)
	proxies := make([][]*faultinject.Proxy, 2)
	for i := 0; i < 2; i++ {
		for r := 0; r < replicas; r++ {
			srv, err := shard.NewServer(set.Shard(i))
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv.Handler())
			t.Cleanup(hs.Close)
			u, err := url.Parse(hs.URL)
			if err != nil {
				t.Fatal(err)
			}
			p, err := faultinject.NewProxy(u.Host)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { p.Close() })
			hosts[i] = append(hosts[i], p.URL())
			proxies[i] = append(proxies[i], p)
		}
	}
	de, err := NewDistEngine(e, hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return de, proxies
}

// TestDistChaosOffsetResume: the single replica of each shard severs its
// first search connection mid-response; the retry must resume the
// deterministic stream by offset on a fresh connection and produce the
// exact answer.
func TestDistChaosOffsetResume(t *testing.T) {
	ctx := context.Background()
	ds, e := tinyWorld(t, 3)
	de, proxies := proxiedDist(t, e, 1, DistConfig{Retries: 3, RetryBackoff: time.Millisecond})
	for _, reps := range proxies {
		for _, p := range reps {
			var first atomic.Bool
			first.Store(true)
			p.SetScript(func() *faultinject.Script {
				if first.CompareAndSwap(true, false) {
					// Mid-response: past the status line and into the
					// headers or body of the first search stream.
					return faultinject.NewScript(faultinject.Point{After: 180, Op: faultinject.Sever})
				}
				return nil
			})
		}
	}
	for _, q := range shardedWorkload(ds)[:4] {
		opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
		want, err := e.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := de.Search(ctx, q.Graph, opts)
		if err != nil {
			t.Fatalf("%s: severed-then-resumed search failed: %v", q.Name, err)
		}
		assertTopKEquivalent(t, q.Name+"/sever-resume", got, want)
	}
}

// TestDistChaosScripted drives the full fault vocabulary — delay,
// truncate, sever — against a replicated deployment: every outcome must
// be either the exact answer or a typed ShardUnavailableError, never a
// wrong top-k and never a hang past the deadline.
func TestDistChaosScripted(t *testing.T) {
	ds, e := tinyWorld(t, 42)
	de, proxies := proxiedDist(t, e, 2, DistConfig{Retries: 2, RetryBackoff: time.Millisecond, HedgeAfter: 5 * time.Millisecond})
	q := shardedWorkload(ds)[2]
	opts := Options{K: 5, Tau: 0.5, MaxHops: 3}
	want, err := e.Search(context.Background(), q.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}

	scripts := map[string]func() *faultinject.Script{
		"delay": func() *faultinject.Script {
			return faultinject.NewScript(faultinject.Point{After: 120, Op: faultinject.Delay, Pause: 30 * time.Millisecond})
		},
		"truncate": func() *faultinject.Script {
			return faultinject.NewScript(faultinject.Point{After: 180, Op: faultinject.Truncate})
		},
		"sever": func() *faultinject.Script {
			return faultinject.NewScript(faultinject.Point{After: 180, Op: faultinject.Sever})
		},
	}
	for name, script := range scripts {
		t.Run(name, func(t *testing.T) {
			// Fault replica 0 of both shards; replica 1 stays clean, so
			// hedge/retry/failover must converge on the exact answer.
			for i := range proxies {
				proxies[i][0].SetScript(script)
				proxies[i][1].SetScript(nil)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			got, err := de.Search(ctx, q.Graph, opts)
			if err != nil {
				t.Fatalf("faulty-replica search failed: %v", err)
			}
			assertTopKEquivalent(t, q.Name+"/"+name, got, want)
		})
	}

	t.Run("all-replicas-severed", func(t *testing.T) {
		// Both replicas of shard 0 sever every connection immediately:
		// no live replica remains, so the search must fail typed — and
		// fast, not at the context deadline.
		severEverything := func() *faultinject.Script {
			return faultinject.NewScript(faultinject.Point{After: 0, Op: faultinject.Sever})
		}
		proxies[0][0].SetScript(severEverything)
		proxies[0][1].SetScript(severEverything)
		proxies[1][0].SetScript(nil)
		proxies[1][1].SetScript(nil)
		proxies[0][0].SeverAll()
		proxies[0][1].SeverAll()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := de.Search(ctx, q.Graph, opts)
		var unavail *ShardUnavailableError
		if !errors.As(err, &unavail) {
			t.Fatalf("error %v (%T), want *ShardUnavailableError", err, err)
		}
		if unavail.Shard != 0 {
			t.Fatalf("failed shard %d, want 0", unavail.Shard)
		}
		if ctx.Err() != nil {
			t.Fatal("partitioned-shard search ran into the deadline instead of failing fast")
		}
		// Restore the partition: the same deployment must serve exactly
		// again (no poisoned state).
		proxies[0][0].SetScript(nil)
		proxies[0][1].SetScript(nil)
		got, err := de.Search(context.Background(), q.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertTopKEquivalent(t, q.Name+"/healed", got, want)
	})
}

// TestDistCallerCancellation: the caller's deadline expiring mid-scatter
// winds the distributed search down as an anytime partial (the base
// engine's documented contract), not as a shard failure and not a hang.
func TestDistCallerCancellation(t *testing.T) {
	ds, e := tinyWorld(t, 17)
	de, proxies := proxiedDist(t, e, 1, DistConfig{Retries: 1, RetryBackoff: time.Millisecond})
	// Stall every first line long enough that the context fires first.
	for i := range proxies {
		proxies[i][0].SetScript(func() *faultinject.Script {
			return faultinject.NewScript(faultinject.Point{After: 0, Op: faultinject.Delay, Pause: 2 * time.Second})
		})
	}
	q := shardedWorkload(ds)[0]
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = de.Search(ctx, q.Graph, Options{K: 5, Tau: 0.5, MaxHops: 3})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled search hung")
	}
	var unavail *ShardUnavailableError
	if errors.As(err, &unavail) {
		t.Fatalf("caller cancellation misreported as shard failure: %v", err)
	}
	if err == nil && res == nil {
		t.Fatal("nil result with nil error")
	}
}

// TestDistEngineOverLargeStream smoke-checks the streaming generator
// world end to end through HTTP shards: partition, serve, search, and
// match the single engine.
func TestDistEngineOverLargeStream(t *testing.T) {
	if testing.Short() {
		t.Skip("large-world smoke test")
	}
	ctx := context.Background()
	p := datagen.LargeWorld(20_000)
	p.Seed = 7
	g := datagen.GenerateLarge(p)
	sp, err := (&embed.Model{Cfg: embed.Config{Dim: 16}}).SpaceFor(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	de := distOver(t, e, 4, 1, DistConfig{}).de
	for i, q := range datagen.LargeQueries(g, p, 5) {
		opts := Options{K: 10, Tau: 0.5, MaxHops: 3}
		want, err := e.Search(ctx, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := de.Search(ctx, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertTopKEquivalent(t, "large-"+string(rune('a'+i)), got, want)
	}
}
