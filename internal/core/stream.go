// Streaming search: the anytime, event-driven form of the pipeline. The
// paper's response-time-bounded mode (Section VI, Theorem 4) refines its
// answer monotonically as the budget grows; Stream exposes that refinement
// — and the exact mode's TA assembly rounds — as typed events, so callers
// can render provisional top-k answers while the search is still running.
// The batch Search is a thin consumer of this pipeline.

package core

import (
	"context"
	"sync"
	"time"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/query"
	"semkg/internal/ta"
	"semkg/internal/tbq"
)

// EventKind discriminates stream events.
type EventKind int

const (
	// KindProgress is a per-sub-query search progress update.
	KindProgress EventKind = iota
	// KindTopK is a provisional top-k snapshot with TA bounds.
	KindTopK
	// KindPhase marks a pipeline phase transition.
	KindPhase
	// KindResult is the terminal event carrying the final Result.
	KindResult
	// KindError is the terminal event of a pipeline that failed mid-run;
	// only the distributed coordinator emits it (a shard with no live
	// replica), after which the stream closes without a ResultEvent.
	KindError
)

// Event is one typed stream notification. The concrete types are
// ProgressEvent, TopKEvent, PhaseEvent and ResultEvent.
type Event interface {
	Kind() EventKind
}

// Phase names a pipeline stage for PhaseEvent.
type Phase string

const (
	// PhaseSearch marks the start of the per-sub-query A* searches.
	PhaseSearch Phase = "search"
	// PhaseAlert marks Algorithm 3's estimator reaching the alert
	// threshold T·r% (TBQ only): the searches stop so that the assembly
	// of the collected sets finishes within the bound.
	PhaseAlert Phase = "alert"
	// PhaseAssemble marks the start of the TA final-match assembly.
	PhaseAssemble Phase = "assemble"
)

// ProgressEvent reports per-sub-query search effort: Collected counts the
// matches gathered so far for sub-query Sub (prefetched in the exact mode,
// eager-collected distinct entities in TBQ mode). Done marks the end of
// the sub-query's search phase. Shard identifies the shard that produced
// the update when the pipeline is sharded (1-based, so shard 1 is the
// first); it is 0 for the single-graph pipeline, whose progress is not
// per-shard.
type ProgressEvent struct {
	Sub       int
	Collected int
	Done      bool
	Shard     int
}

// Kind implements Event.
func (ProgressEvent) Kind() EventKind { return KindProgress }

// TopKEvent is a provisional top-k snapshot taken between TA assembly
// rounds. Answers are complete candidates in rank order (at most k);
// LowerK is L_k, the exact score of the k-th candidate (0 until k
// complete candidates exist), and UpperMax is U_max, the best upper bound
// of any candidate outside the current top-k (Eq. 8-11). The assembly
// terminates when L_k >= U_max (Theorem 3), so the gap measures how far
// the provisional ranking may still move. The last TopKEvent of a stream
// always carries the final ranking.
type TopKEvent struct {
	Answers  []Answer
	LowerK   float64
	UpperMax float64
	// Round is the assembly round that produced this snapshot.
	Round int
}

// Kind implements Event.
func (TopKEvent) Kind() EventKind { return KindTopK }

// PhaseEvent marks a pipeline phase transition. For PhaseAlert, Elapsed is
// the search time consumed and Projected is Algorithm 3's estimate T̂ that
// tripped the threshold. For PhaseAssemble, Collected holds |M̂_i| per
// sub-query (TBQ) or the prefetched match counts (exact mode).
type PhaseEvent struct {
	Phase     Phase
	Elapsed   time.Duration
	Projected time.Duration
	Collected []int
}

// Kind implements Event.
func (PhaseEvent) Kind() EventKind { return KindPhase }

// ResultEvent is the terminal event: the same *Result that Stream.Result
// returns. Exactly one ResultEvent is delivered, after which the event
// channel is closed.
type ResultEvent struct {
	Result *Result
}

// Kind implements Event.
func (ResultEvent) Kind() EventKind { return KindResult }

// ErrorEvent is the terminal event of a failed pipeline: the search
// cannot produce a correct result (a shard scatter lost every replica of
// some shard), so the stream ends with the typed error instead of a
// partial — and possibly wrong — top-k. Stream.Err returns the same
// error.
type ErrorEvent struct {
	Err error
}

// Kind implements Event.
func (ErrorEvent) Kind() EventKind { return KindError }

// streamBuffer sizes the event channel. Advisory events (progress, topk,
// phase) are dropped rather than blocking the search when the consumer
// falls this far behind; the terminal ResultEvent is never dropped.
const streamBuffer = 256

// Stream is a running search emitting Events. Consume Events until the
// channel closes, or call Result to block until the terminal result; both
// are safe from any goroutine. Cancel the context passed to Engine.Stream
// to abandon the search early — the stream then terminates with whatever
// was found (anytime semantics, as in batch Search).
type Stream struct {
	events chan Event
	done   chan struct{}
	res    *Result
	err    error
	// quiet disables all event emission: the batch Search path runs the
	// identical pipeline without paying for events nobody consumes.
	quiet bool

	// Provisional-ranking state, touched only by the pipeline goroutine.
	lastTopK []provisionalKey
	lk, umax float64
	round    int
}

// Events returns the event channel. Advisory events are best-effort: when
// the consumer lags behind streamBuffer of them, older advisory events are
// discarded. The terminal ResultEvent is always the last event delivered,
// and the channel is closed after it.
func (s *Stream) Events() <-chan Event { return s.events }

// Result blocks until the search terminates and returns the final result.
// It does not require the Events channel to be drained.
func (s *Stream) Result() *Result {
	<-s.done
	return s.res
}

// Err blocks until the stream terminates and reports the pipeline
// failure, if any. A non-nil error means no Result was produced (the
// stream ended with an ErrorEvent); errors happen only on distributed
// pipelines — in-process engines always terminate with a Result.
func (s *Stream) Err() error {
	<-s.done
	return s.err
}

// fail terminates the stream with err instead of a result.
func (s *Stream) fail(err error) {
	s.err = err
	s.emit(ErrorEvent{Err: err})
	close(s.events)
	close(s.done)
}

// emit delivers ev without ever blocking the pipeline: when the buffer is
// full, the *oldest* buffered event is discarded to make room. Dropping
// from the front keeps the newest events — in particular the closing
// top-k snapshot and the terminal result always survive a backlogged
// consumer, preserving the ordering guarantees (channel FIFO order is
// unaffected by front drops). Safe for concurrent emitters: every select
// is atomic and the loop always makes progress.
func (s *Stream) emit(ev Event) {
	if s.quiet {
		return
	}
	for {
		select {
		case s.events <- ev:
			return
		default:
			select {
			case <-s.events:
			default:
			}
		}
	}
}

// Stream starts the search pipeline and returns immediately with a Stream
// emitting typed events: phase transitions, per-sub-query progress,
// provisional top-k snapshots with TA bounds, and a terminal result.
// Option and query validation errors are returned synchronously (wrapped
// as BadRequestError — the caller's fault, not the engine's); after a nil
// error the stream always terminates with a ResultEvent. Consuming a
// Stream to completion yields a Result identical to Engine.Search with
// the same arguments.
func (e *Engine) Stream(ctx context.Context, q *query.Graph, opts Options) (*Stream, error) {
	return e.stream(ctx, q, opts, false)
}

// stream sets up the pipeline: a one-shot Compile followed by the planned
// run. In quiet mode (the batch Search path) no events are emitted and the
// pipeline runs synchronously — same search, none of the event or
// goroutine overhead. Compile already validated and normalized the
// options, so the run skips straight to startStream.
func (e *Engine) stream(ctx context.Context, q *query.Graph, opts Options, quiet bool) (*Stream, error) {
	p, err := e.Compile(q, opts)
	if err != nil {
		return nil, err
	}
	return e.startStream(ctx, p, opts.withDefaults(), quiet)
}

// streamPlan is the externally-compiled-plan entry (SearchPlan /
// StreamPlan): the plan comes from an earlier Compile — possibly another
// engine's, possibly under different options — so validate and check
// before running.
func (e *Engine) streamPlan(ctx context.Context, p *Plan, opts Options, quiet bool) (*Stream, error) {
	if err := opts.Validate(); err != nil {
		return nil, badRequest(err)
	}
	opts = opts.withDefaults()
	if err := p.check(e, opts); err != nil {
		return nil, err
	}
	return e.startStream(ctx, p, opts, quiet)
}

// startStream runs the pipeline from a compiled plan with normalized,
// validated options; see Compile. The timed window (Result.Elapsed)
// covers the run, not the compilation — a plan-cache hit in the serving
// layer pays neither.
func (e *Engine) startStream(ctx context.Context, p *Plan, opts Options, quiet bool) (*Stream, error) {
	return e.startStreamWith(ctx, p, opts, nil, quiet)
}

// startStreamWith is startStream with optional shared sub-query sources:
// shared[i], when non-nil, feeds sub-query i from a shared enumeration
// and no private searcher is built for it (exact mode only — the
// StreamPlanShared entry points enforce that gate).
func (e *Engine) startStreamWith(ctx context.Context, p *Plan, opts Options, shared []SubSource, quiet bool) (*Stream, error) {
	if opts.TimeBound > 0 {
		e.perMatchCost() // calibrate outside the timed window
	}
	start := time.Now()
	searchers, err := e.searchersWith(p, shared)
	if err != nil {
		return nil, err
	}

	buffer := streamBuffer
	if quiet {
		buffer = 0 // no events will be emitted
	}
	s := &Stream{events: make(chan Event, buffer), done: make(chan struct{}), quiet: quiet}
	if quiet {
		e.runStream(ctx, s, p.d, searchers, shared, p.compiled, opts, start)
	} else {
		go e.runStream(ctx, s, p.d, searchers, shared, p.compiled, opts, start)
	}
	return s, nil
}

// runStream is the pipeline goroutine behind Stream.
func (e *Engine) runStream(ctx context.Context, s *Stream, d *query.Decomposition,
	searchers []*astar.Searcher, shared []SubSource, compiled bool, opts Options, start time.Time) {
	res := &Result{Decomposition: d}
	if compiled {
		var finals []ta.Final
		if opts.TimeBound > 0 {
			finals = e.streamTBQ(ctx, s, searchers, opts, res, d)
		} else {
			finals = e.streamOptimal(ctx, s, searchers, shared, opts.K, d)
		}
		for i, sr := range searchers {
			if sr != nil {
				res.SearchStats = append(res.SearchStats, sr.Stats())
			} else {
				res.SearchStats = append(res.SearchStats, shared[i].SearchStats())
			}
		}
		res.Answers = e.renderAnswers(finals, d)
		// The closing top-k snapshot: guaranteed even when no provisional
		// round changed the ranking, so consumers always see the final
		// ranking as the last TopKEvent before the terminal result.
		lk, umax, round := s.lastBounds()
		s.emit(TopKEvent{Answers: res.Answers, LowerK: lk, UpperMax: umax, Round: round})
	}
	res.Elapsed = time.Since(start)
	s.res = res
	s.emit(ResultEvent{Result: res})
	close(s.events)
	close(s.done)
}

// lastBounds returns the bounds of the most recent assembly round observed
// by emitProvisional (zero values when the assembly never ran a round).
func (s *Stream) lastBounds() (lk, umax float64, round int) {
	return s.lk, s.umax, s.round
}

// emitProvisional emits a TopKEvent when the provisional ranking changed
// since the last emission, and records the round's bounds.
func (s *Stream) emitProvisional(e *Engine, d *query.Decomposition, finals []ta.Final, lk, umax float64, round int) {
	s.lk, s.umax, s.round = lk, umax, round
	sig := make([]provisionalKey, len(finals))
	for i, f := range finals {
		sig[i] = provisionalKey{pivot: f.Pivot, score: f.Score}
	}
	if provisionalEqual(sig, s.lastTopK) {
		return
	}
	s.lastTopK = sig
	s.emit(TopKEvent{Answers: e.renderAnswers(finals, d), LowerK: lk, UpperMax: umax, Round: round})
}

// streamOptimal is the exact pipeline (the former assembleOptimal) with
// events threaded through: each searcher prefetches its first k matches
// concurrently (one goroutine per sub-query graph, as in the paper), then
// the TA assembly pulls further matches on demand, emitting a provisional
// top-k snapshot whenever a round changes the ranking.
func (e *Engine) streamOptimal(ctx context.Context, s *Stream, searchers []*astar.Searcher, shared []SubSource, k int, d *query.Decomposition) []ta.Final {
	s.emit(PhaseEvent{Phase: PhaseSearch})
	// One pull stream per sub-query: the private searcher, or a fresh
	// cursor over the shared enumeration. The cursor doubles as the
	// continuation after prefetch — its position survives into the
	// assembly's on-demand pulls.
	pulls := make([]ta.Stream, len(searchers))
	for i := range searchers {
		if searchers[i] != nil {
			pulls[i] = searchers[i]
		} else {
			pulls[i] = shared[i].Cursor()
		}
	}
	prefetched := make([][]astar.Match, len(pulls))
	var wg sync.WaitGroup
	quiet := s.quiet // hoisted: the per-match emit would otherwise box an event just to drop it
	for i, pull := range pulls {
		wg.Add(1)
		go func(i int, pull ta.Stream) {
			defer wg.Done()
			for len(prefetched[i]) < k && ctx.Err() == nil {
				m, ok := pull.Next()
				if !ok {
					break
				}
				prefetched[i] = append(prefetched[i], m)
				if !quiet {
					s.emit(ProgressEvent{Sub: i, Collected: len(prefetched[i])})
				}
			}
			if !quiet {
				s.emit(ProgressEvent{Sub: i, Collected: len(prefetched[i]), Done: true})
			}
		}(i, pull)
	}
	wg.Wait()

	counts := make([]int, len(pulls))
	streams := make([]ta.Stream, len(pulls))
	for i := range pulls {
		counts[i] = len(prefetched[i])
		streams[i] = &resumeStream{
			ctx:    ctx,
			buf:    prefetched[i],
			search: pulls[i],
		}
	}
	s.emit(PhaseEvent{Phase: PhaseAssemble, Collected: counts})

	asm := ta.NewAssembler(streams, k)
	var onRound func(int)
	if !s.quiet {
		onRound = func(r int) {
			lk, umax := asm.Bounds()
			s.emitProvisional(e, d, asm.Provisional(), lk, umax, r)
		}
	}
	return asm.Run(onRound)
}

// streamTBQ runs the time-bounded pipeline with tbq's phases threaded
// through the event channel.
func (e *Engine) streamTBQ(ctx context.Context, s *Stream, searchers []*astar.Searcher, opts Options, res *Result, d *query.Decomposition) []ta.Final {
	cfg := tbq.Config{
		Bound:      opts.TimeBound,
		AlertRatio: opts.AlertRatio,
		PerMatchTA: e.perMatchCost(),
		Clock:      opts.Clock,
	}
	s.emit(PhaseEvent{Phase: PhaseSearch})
	var hooks tbq.Hooks
	if !s.quiet {
		hooks = tbq.Hooks{
			OnCollected: func(sub, total int) {
				s.emit(ProgressEvent{Sub: sub, Collected: total})
			},
			OnSubDone: func(sub, total int) {
				s.emit(ProgressEvent{Sub: sub, Collected: total, Done: true})
			},
			OnAlert: func(elapsed, projected time.Duration) {
				s.emit(PhaseEvent{Phase: PhaseAlert, Elapsed: elapsed, Projected: projected})
			},
			OnAssembly: func(collected []int) {
				s.emit(PhaseEvent{Phase: PhaseAssemble, Collected: collected})
			},
			OnProvisional: func(finals []ta.Final, lk, umax float64, round int) {
				s.emitProvisional(e, d, finals, lk, umax, round)
			},
		}
	}
	out := tbq.RunHooked(ctx, searchers, opts.K, cfg, hooks)
	res.Approximate = !out.Exhausted
	res.Collected = out.Collected
	return out.Finals
}

// provisionalKey identifies one provisional ranking entry for change
// detection between assembly rounds.
type provisionalKey struct {
	pivot kg.NodeID
	score float64
}

func provisionalEqual(a, b []provisionalKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
