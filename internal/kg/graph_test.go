package kg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure2Graph builds the running-example graph of the paper's Figure 2.
func figure2Graph() *Graph {
	b := NewBuilder(8, 8)
	audi := b.AddNode("Audi_TT", "Automobile")
	kia := b.AddNode("KIA_K5", "Automobile")
	lamando := b.AddNode("Lamando", "Automobile")
	engine := b.AddNode("EA211_l4_TSI", "Device")
	vw := b.AddNode("Volkswagen", "Company")
	peter := b.AddNode("Peter_schreyer", "Person")
	germany := b.AddNode("Germany", "Country")

	b.AddEdge(audi, germany, "assembly")
	b.AddEdge(peter, germany, "nationality")
	b.AddEdge(kia, peter, "designer")
	b.AddEdge(lamando, engine, "engine")
	b.AddEdge(lamando, vw, "designCompany")
	b.AddEdge(engine, vw, "product")
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := figure2Graph()
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	if g.NumTypes() != 5 {
		t.Fatalf("NumTypes = %d, want 5", g.NumTypes())
	}
	if g.NumPredicates() != 6 {
		t.Fatalf("NumPredicates = %d, want 6", g.NumPredicates())
	}
	audi := g.NodeByName("Audi_TT")
	if audi == NoNode {
		t.Fatal("Audi_TT not found")
	}
	if g.TypeName(g.NodeType(audi)) != "Automobile" {
		t.Fatalf("Audi_TT type = %q, want Automobile", g.TypeName(g.NodeType(audi)))
	}
	if g.NodeByName("missing") != NoNode {
		t.Error("NodeByName(missing) should be NoNode")
	}
	if g.TypeByName("missing") != NoType {
		t.Error("TypeByName(missing) should be NoType")
	}
	if g.PredByName("missing") != -1 {
		t.Error("PredByName(missing) should be -1")
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	b := NewBuilder(4, 4)
	a := b.AddNode("X", "")
	a2 := b.AddNode("X", "T")
	a3 := b.AddNode("X", "Other") // first type wins
	if a != a2 || a != a3 {
		t.Fatalf("AddNode not idempotent: %d %d %d", a, a2, a3)
	}
	g := b.Build()
	if g.TypeName(g.NodeType(a)) != "T" {
		t.Fatalf("type = %q, want T", g.TypeName(g.NodeType(a)))
	}
}

func TestNeighborsBothDirections(t *testing.T) {
	g := figure2Graph()
	germany := g.NodeByName("Germany")
	hs := g.Neighbors(germany)
	if len(hs) != 2 {
		t.Fatalf("Germany degree = %d, want 2", len(hs))
	}
	for _, h := range hs {
		if h.Out {
			t.Errorf("Germany should have only incoming halves, got outgoing edge %d", h.Edge)
		}
	}
	audi := g.NodeByName("Audi_TT")
	ha := g.Neighbors(audi)
	if len(ha) != 1 || !ha[0].Out || ha[0].Neighbor != germany {
		t.Fatalf("Audi_TT neighbors = %+v, want one outgoing half to Germany", ha)
	}
	if g.PredName(ha[0].Pred) != "assembly" {
		t.Fatalf("predicate = %q, want assembly", g.PredName(ha[0].Pred))
	}
}

func TestNodesOfType(t *testing.T) {
	g := figure2Graph()
	autos := g.NodesOfType(g.TypeByName("Automobile"))
	if len(autos) != 3 {
		t.Fatalf("|Automobile| = %d, want 3", len(autos))
	}
	if got := g.NodesOfType(NoType); got != nil {
		t.Errorf("NodesOfType(NoType) = %v, want nil", got)
	}
}

func TestPredCount(t *testing.T) {
	b := NewBuilder(4, 4)
	x := b.AddNode("x", "T")
	y := b.AddNode("y", "T")
	z := b.AddNode("z", "T")
	b.AddEdge(x, y, "p")
	b.AddEdge(y, z, "p")
	b.AddEdge(x, z, "q")
	g := b.Build()
	if got := g.PredCount(g.PredByName("p")); got != 2 {
		t.Errorf("PredCount(p) = %d, want 2", got)
	}
	if got := g.PredCount(g.PredByName("q")); got != 1 {
		t.Errorf("PredCount(q) = %d, want 1", got)
	}
}

func TestSelfLoop(t *testing.T) {
	b := NewBuilder(1, 1)
	x := b.AddNode("x", "T")
	b.AddEdge(x, x, "self")
	g := b.Build()
	if g.Degree(x) != 2 {
		t.Fatalf("self-loop degree = %d, want 2 (both halves)", g.Degree(x))
	}
}

func TestAvgDegreeAndStats(t *testing.T) {
	g := figure2Graph()
	want := float64(2*g.NumEdges()) / float64(g.NumNodes())
	if got := g.AvgDegree(); got != want {
		t.Errorf("AvgDegree = %v, want %v", got, want)
	}
	s := g.Stats()
	if s.Entities != 7 || s.Relations != 6 {
		t.Errorf("Stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("Stats.String is empty")
	}
	var empty Builder
	eg := (&empty).Build()
	if eg.AvgDegree() != 0 {
		t.Error("empty graph AvgDegree should be 0")
	}
}

func TestAddEdgeUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge with unknown node did not panic")
		}
	}()
	b := NewBuilder(1, 1)
	b.AddNode("x", "")
	b.AddEdge(0, 5, "p")
}

// TestAdjacencyConsistency checks, on random graphs, that every edge appears
// exactly once as an outgoing half at its source and once as an incoming
// half at its destination.
func TestAdjacencyConsistency(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 2
		m := int(mRaw%200) + 1
		b := NewBuilder(n, m)
		for i := 0; i < n; i++ {
			b.AddNode(nodeName(i), "T")
		}
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), "p")
		}
		g := b.Build()
		seenOut := make(map[EdgeID]int)
		seenIn := make(map[EdgeID]int)
		for u := 0; u < g.NumNodes(); u++ {
			for _, h := range g.Neighbors(NodeID(u)) {
				e := g.EdgeAt(h.Edge)
				if h.Out {
					if e.Src != NodeID(u) || e.Dst != h.Neighbor {
						return false
					}
					seenOut[h.Edge]++
				} else {
					if e.Dst != NodeID(u) || e.Src != h.Neighbor {
						return false
					}
					seenIn[h.Edge]++
				}
			}
		}
		for i := 0; i < g.NumEdges(); i++ {
			if seenOut[EdgeID(i)] != 1 || seenIn[EdgeID(i)] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func nodeName(i int) string {
	return "n" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
}
