package astar

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"semkg/internal/kg"
)

// testWeighter assigns one weight per predicate per segment and computes
// the m(u) suffix bound exactly, mirroring semgraph.Weighter's contract.
type testWeighter struct {
	g    *kg.Graph
	w    [][]float64 // [seg][pred]
	segs int
}

func newTestWeighter(g *kg.Graph, perSeg []map[string]float64) *testWeighter {
	tw := &testWeighter{g: g, segs: len(perSeg)}
	tw.w = make([][]float64, len(perSeg))
	for s, m := range perSeg {
		row := make([]float64, g.NumPredicates())
		for p := range row {
			if v, ok := m[g.PredName(kg.PredID(p))]; ok {
				row[p] = v
			} else {
				row[p] = 1e-6
			}
		}
		tw.w[s] = row
	}
	return tw
}

func (tw *testWeighter) Weight(p kg.PredID, seg int) float64 { return tw.w[seg][p] }

func (tw *testWeighter) NodeMax(u kg.NodeID, seg int) float64 {
	best := 1e-6
	for _, h := range tw.g.Neighbors(u) {
		for s := seg; s < tw.segs; s++ {
			if w := tw.w[s][h.Pred]; w > best {
				best = w
			}
		}
	}
	return best
}

// lineGraph builds: a --p1--> b --p2--> c --p3--> d and a --q--> d, so
// matches from a to d are the direct 1-hop q path and the 3-hop p path.
func lineGraph() *kg.Graph {
	b := kg.NewBuilder(4, 4)
	na := b.AddNode("a", "T")
	nb := b.AddNode("b", "T")
	nc := b.AddNode("c", "T")
	nd := b.AddNode("d", "End")
	b.AddEdge(na, nb, "p1")
	b.AddEdge(nb, nc, "p2")
	b.AddEdge(nc, nd, "p3")
	b.AddEdge(na, nd, "q")
	return b.Build()
}

func endSet(g *kg.Graph, names ...string) map[kg.NodeID]bool {
	s := make(map[kg.NodeID]bool, len(names))
	for _, n := range names {
		s[g.NodeByName(n)] = true
	}
	return s
}

func TestSearcherSingleBest(t *testing.T) {
	g := lineGraph()
	// q is semantically best: pss(q)=0.9; 3-hop path pss=(0.9*0.9*0.9)^(1/3)=0.9.
	tw := newTestWeighter(g, []map[string]float64{{"p1": 0.8, "p2": 0.8, "p3": 0.8, "q": 0.9}})
	sub := SubQuery{
		Anchors: []kg.NodeID{g.NodeByName("a")},
		EndSets: []map[kg.NodeID]bool{endSet(g, "d")},
	}
	s := NewSearcher(g, tw, sub, Options{Tau: 0.1, MaxHops: 4})
	m, ok := s.Next()
	if !ok {
		t.Fatal("no match found")
	}
	if m.End() != g.NodeByName("d") {
		t.Errorf("match ends at %s", g.NodeName(m.End()))
	}
	if math.Abs(m.PSS-0.9) > 1e-12 {
		t.Errorf("pss = %v, want 0.9 (direct q edge)", m.PSS)
	}
	if m.Len() != 1 {
		t.Errorf("best match should be the 1-hop q path, got %d hops", m.Len())
	}
	// Only one answer entity (d); the second call must find nothing.
	if _, ok := s.Next(); ok {
		t.Error("second match should not exist (single end entity)")
	}
}

func TestSearcherGeometricMeanPrefersShortStrong(t *testing.T) {
	g := lineGraph()
	// 3-hop path has weights 0.95 each: pss = 0.95. q edge only 0.6.
	tw := newTestWeighter(g, []map[string]float64{{"p1": 0.95, "p2": 0.95, "p3": 0.95, "q": 0.6}})
	sub := SubQuery{
		Anchors: []kg.NodeID{g.NodeByName("a")},
		EndSets: []map[kg.NodeID]bool{endSet(g, "d")},
	}
	s := NewSearcher(g, tw, sub, Options{Tau: 0.1, MaxHops: 4})
	m, ok := s.Next()
	if !ok {
		t.Fatal("no match")
	}
	if m.Len() != 3 || math.Abs(m.PSS-0.95) > 1e-9 {
		t.Errorf("want 3-hop pss 0.95 match, got %d hops pss %v", m.Len(), m.PSS)
	}
}

func TestSearcherTauPrunes(t *testing.T) {
	g := lineGraph()
	tw := newTestWeighter(g, []map[string]float64{{"p1": 0.4, "p2": 0.4, "p3": 0.4, "q": 0.4}})
	sub := SubQuery{
		Anchors: []kg.NodeID{g.NodeByName("a")},
		EndSets: []map[kg.NodeID]bool{endSet(g, "d")},
	}
	s := NewSearcher(g, tw, sub, Options{Tau: 0.8, MaxHops: 4})
	if _, ok := s.Next(); ok {
		t.Error("all matches below τ should be pruned")
	}
	if s.Stats().Pruned == 0 {
		t.Error("pruning counter should be non-zero")
	}
}

func TestSearcherMaxHops(t *testing.T) {
	g := lineGraph()
	tw := newTestWeighter(g, []map[string]float64{{"p1": 0.9, "p2": 0.9, "p3": 0.9}})
	sub := SubQuery{
		Anchors: []kg.NodeID{g.NodeByName("a")},
		EndSets: []map[kg.NodeID]bool{endSet(g, "d")},
	}
	// q weight ~0 so the only viable match is 3 hops; MaxHops=2 forbids it.
	s := NewSearcher(g, tw, sub, Options{Tau: 0.1, MaxHops: 2})
	if m, ok := s.Next(); ok {
		t.Errorf("3-hop match should be ignored under n̂=2, got %v", m)
	}
}

func TestSearcherNoAnchors(t *testing.T) {
	g := lineGraph()
	tw := newTestWeighter(g, []map[string]float64{{"q": 0.9}})
	s := NewSearcher(g, tw, SubQuery{EndSets: []map[kg.NodeID]bool{endSet(g, "d")}}, Options{})
	if _, ok := s.Next(); ok {
		t.Error("searcher without anchors should yield nothing")
	}
}

// TestSearcherTwoSegments: a 2-edge sub-query a -e0-> (B) -e1-> (D) where
// intermediate nodes must be of the B set.
func TestSearcherTwoSegments(t *testing.T) {
	b := kg.NewBuilder(8, 8)
	na := b.AddNode("a", "A")
	nb1 := b.AddNode("b1", "B")
	nb2 := b.AddNode("b2", "B")
	nd := b.AddNode("d", "D")
	nx := b.AddNode("x", "X")
	b.AddEdge(na, nb1, "r")
	b.AddEdge(nb1, nd, "s")
	b.AddEdge(na, nb2, "r")
	b.AddEdge(nb2, nd, "s")
	b.AddEdge(na, nx, "r")
	b.AddEdge(nx, nd, "s")
	g := b.Build()

	tw := newTestWeighter(g, []map[string]float64{
		{"r": 0.9, "s": 0.2},
		{"s": 0.8, "r": 0.2},
	})
	sub := SubQuery{
		Anchors: []kg.NodeID{g.NodeByName("a")},
		EndSets: []map[kg.NodeID]bool{
			endSet(g, "b1", "b2"), // intermediate query node matches B nodes
			endSet(g, "d"),
		},
	}
	s := NewSearcher(g, tw, sub, Options{Tau: 0.1, MaxHops: 4})
	m, ok := s.Next()
	if !ok {
		t.Fatal("no match")
	}
	want := math.Sqrt(0.9 * 0.8)
	if math.Abs(m.PSS-want) > 1e-12 {
		t.Errorf("pss = %v, want %v", m.PSS, want)
	}
	if m.Len() != 2 {
		t.Errorf("hops = %d, want 2", m.Len())
	}
	mid := m.Nodes[m.SegEnds[0]]
	if name := g.NodeName(mid); name != "b1" && name != "b2" {
		t.Errorf("intermediate anchor = %s, want b1/b2 (x must not close segment 0)", name)
	}
	// The path through x never forms a match: x is not in φ of the
	// intermediate query node, so segment 0 cannot close there, and x's
	// edges score 0.2/0.8 — any x-passing 2-hop walk would need segment 0
	// to close at x. Verify no emitted match routes through x.
	for {
		m2, ok := s.Next()
		if !ok {
			break
		}
		for _, n := range m2.Nodes[1 : len(m2.Nodes)-1] {
			if g.NodeName(n) == "x" {
				t.Errorf("match routed through x: %v", m2.Nodes)
			}
		}
	}
}

// randomCase generates a random graph + weights and a single-segment
// sub-query for the brute-force comparison.
func randomCase(rng *rand.Rand) (*kg.Graph, *testWeighter, SubQuery) {
	n := rng.Intn(12) + 4
	preds := []string{"p0", "p1", "p2", "p3"}
	b := kg.NewBuilder(n, n*3)
	ids := make([]kg.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode("n"+string(rune('A'+i)), "T")
	}
	m := rng.Intn(3*n) + n
	for i := 0; i < m; i++ {
		b.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], preds[rng.Intn(len(preds))])
	}
	g := b.Build()

	w := map[string]float64{}
	for _, p := range preds {
		w[p] = 0.05 + 0.95*rng.Float64()
	}
	tw := newTestWeighter(g, []map[string]float64{w})

	anchors := []kg.NodeID{ids[0]}
	ends := make(map[kg.NodeID]bool)
	for i := 1; i < n; i++ {
		if rng.Float64() < 0.3 {
			ends[ids[i]] = true
		}
	}
	if len(ends) == 0 {
		ends[ids[n-1]] = true
	}
	return g, tw, SubQuery{Anchors: anchors, EndSets: []map[kg.NodeID]bool{ends}}
}

// bruteForce enumerates every simple path from the anchors with the same
// stop-at-end-match semantics and returns the best pss per end entity.
func bruteForce(g *kg.Graph, tw *testWeighter, sub SubQuery, tau float64, maxHops int) map[kg.NodeID]float64 {
	best := make(map[kg.NodeID]float64)
	var dfs func(node kg.NodeID, visited map[kg.NodeID]bool, w float64, hops int)
	dfs = func(node kg.NodeID, visited map[kg.NodeID]bool, w float64, hops int) {
		if hops == maxHops {
			return
		}
		for _, h := range g.Neighbors(node) {
			if visited[h.Neighbor] {
				continue
			}
			nw := w * tw.Weight(h.Pred, 0)
			if sub.EndSets[0][h.Neighbor] {
				pss := math.Pow(nw, 1/float64(hops+1))
				if pss >= tau && pss > best[h.Neighbor] {
					best[h.Neighbor] = pss
				}
				continue // paths stop at the first end match
			}
			visited[h.Neighbor] = true
			dfs(h.Neighbor, visited, nw, hops+1)
			delete(visited, h.Neighbor)
		}
	}
	for _, a := range sub.Anchors {
		dfs(a, map[kg.NodeID]bool{a: true}, 1, 0)
	}
	return best
}

// TestSearcherMatchesBruteForce is the central correctness check: on random
// graphs, the searcher must (1) emit matches in non-increasing pss order,
// (2) emit at most one match per end entity, (3) emit the global optimum
// first, and (4) emit every brute-force answer entity with its exact pss.
func TestSearcherMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		g, tw, sub := randomCase(rng)
		tau := 0.3
		maxHops := 4
		want := bruteForce(g, tw, sub, tau, maxHops)

		s := NewSearcher(g, tw, sub, Options{Tau: tau, MaxHops: maxHops})
		got := make(map[kg.NodeID]float64)
		prev := math.Inf(1)
		for {
			m, ok := s.Next()
			if !ok {
				break
			}
			if m.PSS > prev+1e-12 {
				t.Fatalf("trial %d: out-of-order pss %v after %v", trial, m.PSS, prev)
			}
			prev = m.PSS
			if _, dup := got[m.End()]; dup {
				t.Fatalf("trial %d: duplicate entity %v", trial, m.End())
			}
			got[m.End()] = m.PSS
			// Validate the reported pss against the path itself.
			recomputed := 1.0
			for _, e := range m.Edges {
				recomputed *= tw.Weight(g.EdgeAt(e).Pred, 0)
			}
			recomputed = math.Pow(recomputed, 1/float64(m.Len()))
			if math.Abs(recomputed-m.PSS) > 1e-9 {
				t.Fatalf("trial %d: pss mismatch: reported %v, path gives %v", trial, m.PSS, recomputed)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: found %d entities, brute force %d (got=%v want=%v)",
				trial, len(got), len(want), got, want)
		}
		for u, pss := range want {
			if math.Abs(got[u]-pss) > 1e-9 {
				t.Fatalf("trial %d: entity %v pss %v, brute force %v", trial, u, got[u], pss)
			}
		}
	}
}

// TestRunEagerSameSet verifies Lemma 7's premise: the eager (time-bounded)
// mode run to exhaustion discovers exactly the same match set as the
// optimal-order mode (only the output order differs).
func TestRunEagerSameSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		g, tw, sub := randomCase(rng)
		opt := Options{Tau: 0.3, MaxHops: 4}

		s1 := NewSearcher(g, tw, sub, opt)
		optimal := make(map[kg.NodeID]float64)
		for {
			m, ok := s1.Next()
			if !ok {
				break
			}
			optimal[m.End()] = m.PSS
		}

		s2 := NewSearcher(g, tw, sub, opt)
		eager := make(map[kg.NodeID]float64)
		exhausted := s2.RunEager(nil, func(m Match) bool {
			if old, ok := eager[m.End()]; !ok || m.PSS > old {
				eager[m.End()] = m.PSS
			}
			return true
		})
		if !exhausted {
			t.Fatalf("trial %d: eager run should exhaust the space", trial)
		}
		if len(eager) != len(optimal) {
			t.Fatalf("trial %d: eager found %d entities, optimal %d", trial, len(eager), len(optimal))
		}
		for u, pss := range optimal {
			if math.Abs(eager[u]-pss) > 1e-9 {
				t.Fatalf("trial %d: entity %v eager pss %v, optimal %v", trial, u, eager[u], pss)
			}
		}
	}
}

func TestRunEagerStops(t *testing.T) {
	g := lineGraph()
	tw := newTestWeighter(g, []map[string]float64{{"p1": 0.9, "p2": 0.9, "p3": 0.9, "q": 0.9}})
	sub := SubQuery{
		Anchors: []kg.NodeID{g.NodeByName("a")},
		EndSets: []map[kg.NodeID]bool{endSet(g, "d")},
	}
	calls := 0
	s := NewSearcher(g, tw, sub, Options{Tau: 0.1, MaxHops: 4})
	exhausted := s.RunEager(func() bool { calls++; return calls > 1 }, func(Match) bool { return true })
	if exhausted {
		t.Error("stopped run must not report exhaustion")
	}

	// emit returning false also stops the run.
	s2 := NewSearcher(g, tw, sub, Options{Tau: 0.1, MaxHops: 4})
	if s2.RunEager(nil, func(Match) bool { return false }) {
		t.Error("emit=false must stop the run before exhaustion")
	}
}

// TestHeuristicPrunes verifies the point of the heuristic: with the m(u)
// factor the searcher expands no more states than the uninformed variant.
func TestHeuristicPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	informedTotal, uninformedTotal := 0, 0
	for trial := 0; trial < 50; trial++ {
		g, tw, sub := randomCase(rng)
		a := NewSearcher(g, tw, sub, Options{Tau: 0.3, MaxHops: 4})
		for {
			if _, ok := a.Next(); !ok {
				break
			}
		}
		b := NewSearcher(g, tw, sub, Options{Tau: 0.3, MaxHops: 4, NoHeuristic: true})
		for {
			if _, ok := b.Next(); !ok {
				break
			}
		}
		informedTotal += a.Stats().Popped
		uninformedTotal += b.Stats().Popped
	}
	if informedTotal > uninformedTotal {
		t.Errorf("informed search expanded more states (%d) than uninformed (%d)",
			informedTotal, uninformedTotal)
	}
}

func TestMatchReconstruction(t *testing.T) {
	g := lineGraph()
	tw := newTestWeighter(g, []map[string]float64{{"p1": 0.95, "p2": 0.95, "p3": 0.95}})
	sub := SubQuery{
		Anchors: []kg.NodeID{g.NodeByName("a")},
		EndSets: []map[kg.NodeID]bool{endSet(g, "d")},
	}
	s := NewSearcher(g, tw, sub, Options{Tau: 0.1, MaxHops: 4})
	m, ok := s.Next()
	if !ok {
		t.Fatal("no match")
	}
	wantNodes := []string{"a", "b", "c", "d"}
	if len(m.Nodes) != len(wantNodes) {
		t.Fatalf("nodes = %d, want %d", len(m.Nodes), len(wantNodes))
	}
	for i, n := range wantNodes {
		if g.NodeName(m.Nodes[i]) != n {
			t.Errorf("node[%d] = %s, want %s", i, g.NodeName(m.Nodes[i]), n)
		}
	}
	if len(m.SegEnds) != 1 || m.SegEnds[0] != 3 {
		t.Errorf("SegEnds = %v, want [3]", m.SegEnds)
	}
	for i, e := range m.Edges {
		edge := g.EdgeAt(e)
		a, b := m.Nodes[i], m.Nodes[i+1]
		if !(edge.Src == a && edge.Dst == b) && !(edge.Src == b && edge.Dst == a) {
			t.Errorf("edge %d does not connect consecutive path nodes", i)
		}
	}
}

// TestPruneVisitedSoundSubset: the paper's visited-set pruning may miss
// alternate paths, but everything it emits must still be a valid match with
// pss no better than the true optimum, in non-increasing order, and it must
// expand no more states than exact search.
func TestPruneVisitedSoundSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 150; trial++ {
		g, tw, sub := randomCase(rng)
		tau := 0.3
		want := bruteForce(g, tw, sub, tau, 4)

		s := NewSearcher(g, tw, sub, Options{Tau: tau, MaxHops: 4, PruneVisited: true})
		exact := NewSearcher(g, tw, sub, Options{Tau: tau, MaxHops: 4})
		prev := math.Inf(1)
		for {
			m, ok := s.Next()
			if !ok {
				break
			}
			if m.PSS > prev+1e-12 {
				t.Fatalf("trial %d: pruned search out of order", trial)
			}
			prev = m.PSS
			best, known := want[m.End()]
			if !known {
				t.Fatalf("trial %d: pruned search invented entity %v", trial, m.End())
			}
			if m.PSS > best+1e-9 {
				t.Fatalf("trial %d: pruned search pss %v exceeds optimum %v", trial, m.PSS, best)
			}
		}
		for {
			if _, ok := exact.Next(); !ok {
				break
			}
		}
		if s.Stats().Popped > exact.Stats().Popped {
			t.Fatalf("trial %d: pruned search expanded more states (%d) than exact (%d)",
				trial, s.Stats().Popped, exact.Stats().Popped)
		}
	}
}

// sortable helper kept for debugging output stability in failures.
func sortedPSS(m map[kg.NodeID]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
