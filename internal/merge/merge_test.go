package merge

import (
	"testing"

	"semkg/internal/astar"
	"semkg/internal/kg"
	"semkg/internal/ta"
)

// m builds a one-node match (enough for merge ordering: PSS + End + Len).
func m(pss float64, end kg.NodeID, hops int) astar.Match {
	nodes := make([]kg.NodeID, hops+1)
	for i := range nodes {
		nodes[i] = end // only the last entry (End) matters to the merger
	}
	return astar.Match{Nodes: nodes, Edges: make([]kg.EdgeID, hops), PSS: pss}
}

// slice adapts matches to a Source.
func slice(ms ...astar.Match) Source { return &ta.SliceStream{Matches: ms} }

// drain pulls the merger dry.
func drain(t *testing.T, s *Merged) []astar.Match {
	t.Helper()
	var out []astar.Match
	for {
		mm, ok := s.Next()
		if !ok {
			return out
		}
		if len(out) > 0 && mm.PSS > out[len(out)-1].PSS {
			t.Fatalf("merged stream not sorted: %v after %v", mm.PSS, out[len(out)-1].PSS)
		}
		out = append(out, mm)
	}
}

func TestSortedMergesByPSS(t *testing.T) {
	s := Sorted(
		slice(m(0.9, 1, 1), m(0.5, 2, 1), m(0.1, 3, 1)),
		slice(m(0.8, 4, 1), m(0.6, 5, 1)),
		slice(m(0.7, 6, 1)),
	)
	got := drain(t, s)
	want := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.1}
	if len(got) != len(want) {
		t.Fatalf("merged %d matches, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].PSS != w {
			t.Fatalf("position %d: PSS %v, want %v", i, got[i].PSS, w)
		}
	}
}

// TestSortedEmptySources covers the empty-shard edge cases: sources that
// are empty from the start, a merger with no sources at all, and the
// all-candidates-in-one-shard skew.
func TestSortedEmptySources(t *testing.T) {
	if _, ok := Sorted().Next(); ok {
		t.Fatal("empty merger produced a match")
	}
	s := Sorted(slice(), slice(m(0.9, 1, 1), m(0.8, 2, 1)), slice())
	got := drain(t, s)
	if len(got) != 2 || got[0].End() != 1 || got[1].End() != 2 {
		t.Fatalf("single-populated-source merge wrong: %+v", got)
	}
}

// TestSortedTieBreak pins the deterministic total order on duplicate
// scores across shards (End ascending, then path length, then source
// index) and the per-entity dedup: the same end node reached in several
// shards is emitted once, with its best match — exactly what a single
// whole-graph searcher's stream would contain.
func TestSortedTieBreak(t *testing.T) {
	s := Sorted(
		slice(m(0.7, 9, 2)),
		slice(m(0.7, 3, 1)),
		slice(m(0.7, 3, 2)),
	)
	got := drain(t, s)
	if len(got) != 2 {
		t.Fatalf("merged %d, want 2 (duplicate end deduped)", len(got))
	}
	// End 3 before End 9; among End 3 the shorter path wins the tie and
	// the longer duplicate is absorbed.
	if got[0].End() != 3 || got[0].Len() != 1 {
		t.Fatalf("first = end %d len %d, want end 3 len 1", got[0].End(), got[0].Len())
	}
	if got[1].End() != 9 {
		t.Fatalf("second = end %d, want 9", got[1].End())
	}

	// Fully identical matches from different sources dedup to one, and
	// the result is stable across re-merges.
	mk := func() *Merged {
		return Sorted(slice(m(0.5, 7, 1)), slice(m(0.5, 7, 1)))
	}
	a := drain(t, mk())
	b := drain(t, mk())
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("identical-match dedup failed: %d and %d entries", len(a), len(b))
	}
}

// countingSource counts how many matches were pulled, to verify the
// merger is demand-driven (one look-ahead, no deep prefetch).
type countingSource struct {
	inner  Source
	pulled int
}

func (c *countingSource) Next() (astar.Match, bool) {
	c.pulled++
	return c.inner.Next()
}

func TestSortedIsLazy(t *testing.T) {
	hot := &countingSource{inner: slice(m(0.9, 1, 1), m(0.8, 2, 1), m(0.7, 3, 1))}
	cold := &countingSource{inner: slice(m(0.1, 4, 1), m(0.05, 5, 1))}
	s := Sorted(hot, cold)
	for i := 0; i < 3; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("merger dried up early")
		}
	}
	// After 3 pulls (all from hot), cold supplied only its look-ahead.
	if cold.pulled != 1 {
		t.Fatalf("cold source pulled %d times, want 1 (look-ahead only)", cold.pulled)
	}
	if hot.pulled > 4 {
		t.Fatalf("hot source pulled %d times, want <= 4", hot.pulled)
	}
}

func TestBestByEnd(t *testing.T) {
	a := map[kg.NodeID]astar.Match{
		1: m(0.9, 1, 1),
		2: m(0.5, 2, 1),
	}
	b := map[kg.NodeID]astar.Match{
		1: m(0.7, 1, 2), // loses to a's 0.9
		3: m(0.8, 3, 1),
	}
	got := BestByEnd(a, b)
	if len(got) != 3 {
		t.Fatalf("merged %d entries, want 3", len(got))
	}
	// Sorted PSS desc with End asc tie-break.
	wantEnds := []kg.NodeID{1, 3, 2}
	wantPSS := []float64{0.9, 0.8, 0.5}
	for i := range got {
		if got[i].End() != wantEnds[i] || got[i].PSS != wantPSS[i] {
			t.Fatalf("position %d: end %d pss %v, want end %d pss %v",
				i, got[i].End(), got[i].PSS, wantEnds[i], wantPSS[i])
		}
	}

	// Equal PSS for the same end: the earlier set wins, deterministically.
	first := m(0.6, 4, 1)
	second := m(0.6, 4, 2)
	got = BestByEnd(map[kg.NodeID]astar.Match{4: first}, map[kg.NodeID]astar.Match{4: second})
	if len(got) != 1 || got[0].Len() != 1 {
		t.Fatalf("equal-PSS merge kept the later set's match")
	}

	if got := BestByEnd(); len(got) != 0 {
		t.Fatalf("BestByEnd() = %d entries, want 0", len(got))
	}
	if got := BestByEnd(map[kg.NodeID]astar.Match{}, nil); len(got) != 0 {
		t.Fatalf("empty sets produced %d entries", len(got))
	}
}
