package main

import (
	"errors"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"semkg/internal/shard"
)

// currentShardServer backs the "semkgd_shardserver" expvar.
var currentShardServer atomic.Pointer[shard.Server]

// publishShardServerOnce guards the expvar registration (Publish panics
// on duplicates; tests may start several servers in one process).
var publishShardServerOnce sync.Once

func publishShardServerStats() {
	publishShardServerOnce.Do(func() {
		expvar.Publish("semkgd_shardserver", expvar.Func(func() any {
			if s := currentShardServer.Load(); s != nil {
				return s.Stats()
			}
			return nil
		}))
	})
}

// runShardServer is semkgd -serve-shard: load the given shard snapshot
// files, serve the shardwire routes plus /healthz and /debug/vars, and
// drain on SIGTERM/SIGINT like the main server. Shard files load in
// parallel — at scale each file costs a full subgraph index build, and
// the loads are independent.
func runShardServer(files []string, addr, addrFile string, drainTimeout time.Duration) error {
	start := time.Now()
	shards := make([]*shard.Shard, len(files))
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	for i, path := range files {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shards[i], errs[i] = loadShardFile(path)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("loading shard file %s: %w", files[i], err)
		}
	}
	srv, err := shard.NewServer(shards...)
	if err != nil {
		return err
	}
	currentShardServer.Store(srv)
	publishShardServerStats()

	mux := srv.Handler()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := srv.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"role":   "shard-server",
			"shards": st.Shards,
		})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())

	ln, err := listenAndAnnounce(addr, addrFile)
	if err != nil {
		return err
	}
	for _, sh := range shards {
		log.Printf("semkgd: shard %d/%d: %d nodes (%d owned), %d edges, halo %d",
			sh.Index, sh.Shards, sh.Graph.NumNodes(), sh.OwnedCount(), sh.Graph.NumEdges(), sh.Halo)
	}
	log.Printf("semkgd: shard server: %d shards loaded in %s; listening on %s",
		len(shards), time.Since(start).Round(time.Millisecond), ln.Addr())

	httpSrv := &http.Server{Handler: mux}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := drainOnSignal(httpSrv, nil, drainTimeout, sig)
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-drained; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("semkgd: shard server drained and stopped")
	return nil
}

func loadShardFile(path string) (*shard.Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return shard.ReadShard(f)
}
