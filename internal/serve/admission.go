package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// OverloadedError is returned when admission control sheds a request: the
// worker pool is saturated and either the queue is full or the request's
// TimeBound cannot cover its projected queue wait. An HTTP front end maps
// it to 429 with a Retry-After header.
type OverloadedError struct {
	// RetryAfter is the projected wait until a worker frees up — the
	// earliest moment a retry could be admitted.
	RetryAfter time.Duration
	// Reason distinguishes the two shed conditions: "queue full" or
	// "deadline".
	Reason string
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// admission is a bounded worker pool with deadline-aware shedding
// (Algorithm 3's bounded-response-time contract extended to a loaded
// server: a bound must survive queueing, so a request that would spend its
// whole TimeBound waiting is rejected up front instead of timing out in
// the queue).
type admission struct {
	slots    chan struct{} // buffered; len = busy workers
	workers  int
	maxQueue int

	waiters atomic.Int64 // requests currently queued
	// estRunNs is an EWMA of observed pipeline service times, seeding the
	// projected queue wait. Initialized from the engine's calibrated tbq
	// per-match TA cost before any request has completed.
	estRunNs atomic.Int64

	admitted         atomic.Uint64
	queued           atomic.Uint64
	rejectedQueue    atomic.Uint64
	rejectedDeadline atomic.Uint64
}

// estSeedMatches scales the tbq per-match assembly cost t into a whole-
// pipeline seed estimate: a nominal collected-set size for a cold server.
// The EWMA replaces the seed as soon as real observations arrive.
const estSeedMatches = 4096

func newAdmission(workers, maxQueue int, seed time.Duration) *admission {
	if seed <= 0 {
		seed = time.Millisecond
	}
	a := &admission{
		slots:    make(chan struct{}, workers),
		workers:  workers,
		maxQueue: maxQueue,
	}
	a.estRunNs.Store(int64(seed))
	return a
}

// projectedWait estimates how long the n-th queued request waits for a
// worker: n service times spread across the pool.
func (a *admission) projectedWait(n int64) time.Duration {
	return time.Duration(n * a.estRunNs.Load() / int64(a.workers))
}

// acquire blocks until a worker slot is free, sheds the request, or ctx is
// done. bound is the request's TimeBound (0 = no deadline): a queued
// request whose projected wait reaches the bound is rejected immediately —
// admitting it could not possibly meet the bound (429 beats a blown SLA).
func (a *admission) acquire(ctx context.Context, bound time.Duration) error {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	n := a.waiters.Add(1)
	defer a.waiters.Add(-1)
	wait := a.projectedWait(n)
	if a.maxQueue >= 0 && n > int64(a.maxQueue) {
		a.rejectedQueue.Add(1)
		return &OverloadedError{RetryAfter: wait, Reason: "queue full"}
	}
	if bound > 0 && wait >= bound {
		a.rejectedDeadline.Add(1)
		return &OverloadedError{RetryAfter: wait, Reason: "deadline"}
	}
	a.queued.Add(1)
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the worker slot and folds the observed service time into
// the EWMA (weight 1/8) that drives projected queue waits. The CAS loop
// keeps concurrent releases from overwriting each other's observations.
func (a *admission) release(served time.Duration) {
	<-a.slots
	if served <= 0 {
		return
	}
	for {
		old := a.estRunNs.Load()
		if a.estRunNs.CompareAndSwap(old, old-old/8+int64(served)/8) {
			return
		}
	}
}

// busy returns the number of occupied worker slots.
func (a *admission) busy() int { return len(a.slots) }
