package bench

import "testing"

// TestRunServeShape runs the serving-layer experiment end to end and
// checks the acceptance properties: the repeated-query workload shows a
// ≥5x p50 improvement from the warm result cache, and the burst workload
// collapses its 32 identical requests to (nearly) one pipeline execution.
// Skipped in -short mode (the environment trains an embedding).
func TestRunServeShape(t *testing.T) {
	env := testEnv(t)
	res, err := RunServe(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("serve rows = %d, want 3", len(res.Rows))
	}
	byName := map[string]ServeRow{}
	for _, row := range res.Rows {
		byName[row.Workload] = row
		if row.P50Us <= 0 || row.QPS <= 0 {
			t.Errorf("%s: non-positive measurements: %+v", row.Workload, row)
		}
	}

	repeated, ok := byName["repeated-query"]
	if !ok {
		t.Fatal("missing repeated-query workload")
	}
	if repeated.Speedup < 5 {
		t.Errorf("repeated-query warm-cache speedup = %.1fx, want >= 5x (p50 %0.f µs vs baseline %.0f µs)",
			repeated.Speedup, repeated.P50Us, repeated.BaselineP50Us)
	}
	if repeated.ResultHits == 0 || repeated.PipelineRuns != 1 {
		t.Errorf("repeated-query cache counters off: %+v", repeated)
	}

	zipf, ok := byName["zipf-mixed"]
	if !ok {
		t.Fatal("missing zipf-mixed workload")
	}
	if zipf.ResultHits == 0 {
		t.Errorf("zipf workload never hit the cache: %+v", zipf)
	}
	if zipf.PipelineRuns+zipf.ResultHits+zipf.FlightShared < uint64(zipf.Requests) {
		t.Errorf("zipf accounting: runs %d + hits %d + shared %d < requests %d",
			zipf.PipelineRuns, zipf.ResultHits, zipf.FlightShared, zipf.Requests)
	}

	burst, ok := byName["burst-identical"]
	if !ok {
		t.Fatal("missing burst-identical workload")
	}
	// All 32 identical requests are answered by at most a couple of
	// pipeline executions (requests that arrive after the leader published
	// count as cache hits, not flights — both avoid re-running).
	if burst.PipelineRuns > 2 {
		t.Errorf("burst collapsed to %d pipeline runs, want <= 2", burst.PipelineRuns)
	}

	if res.Render().String() == "" {
		t.Error("empty render")
	}
}
