// Command semkgd serves semantic-guided top-k search over HTTP. It loads
// a knowledge graph and a trained embedding model once, then answers
// query-graph searches on two endpoints:
//
//	POST /v1/search   batch: one JSON result when the search finishes
//	POST /v1/stream   streaming: NDJSON events — phase transitions,
//	                  per-sub-query progress, provisional top-k snapshots
//	                  with TA bounds, and a terminal result line
//
// plus GET /healthz (liveness and graph shape) and GET /debug/vars
// (expvar counters). Request bodies are api.SearchRequest documents; bad
// queries and out-of-range options return 400 with a JSON error.
//
// Requests pass through the engine-level serving layer (internal/serve):
// a result cache and a plan cache absorb repeated queries, concurrent
// identical requests collapse to one pipeline execution, and a bounded
// worker pool sheds overload — a shed request gets 429 with a Retry-After
// header instead of queueing past its time bound. Cache and admission
// counters are exported under the "semkgd_serve" expvar key.
//
//	semkgd -graph g.tsv -model m.bin -addr :8375 \
//	       -workers 8 -queue 32 -result-cache 1024 -plan-cache 256
//
// The streaming endpoint is the wire form of the paper's anytime
// behaviour (Section VI, Theorem 4): in time-bounded mode clients render
// provisional answers while the search refines them. See DESIGN.md,
// "Wire protocol".
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"semkg/internal/core"
	"semkg/internal/embed"
	"semkg/internal/kg"
	"semkg/internal/serve"
)

func main() {
	graphFile := flag.String("graph", "", "triple file (required)")
	modelFile := flag.String("model", "", "embedding model file (required)")
	addr := flag.String("addr", ":8375", "listen address")
	workers := flag.Int("workers", 0, "max concurrent pipeline executions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queued requests (0 = 4x workers, -1 = none: shed when busy)")
	resultCache := flag.Int("result-cache", 0, "result cache entries (0 = 1024, -1 = disabled)")
	planCache := flag.Int("plan-cache", 0, "plan cache entries (0 = 256, -1 = disabled)")
	flag.Parse()

	if *graphFile == "" || *modelFile == "" {
		fmt.Fprintln(os.Stderr, "semkgd: -graph and -model are required")
		os.Exit(2)
	}

	start := time.Now()
	g, err := loadGraph(*graphFile)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	model, err := loadModel(*modelFile)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	space, err := model.Space(g)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	eng, err := core.NewEngine(g, space, nil)
	if err != nil {
		log.Fatalf("semkgd: %v", err)
	}
	srv := serve.New(eng, serve.Config{
		ResultCache: *resultCache,
		PlanCache:   *planCache,
		Workers:     *workers,
		Queue:       *queue,
	})
	log.Printf("semkgd: %d nodes, %d edges, %d predicates loaded in %s; listening on %s",
		g.NumNodes(), g.NumEdges(), g.NumPredicates(), time.Since(start).Round(time.Millisecond), *addr)
	log.Fatal(http.ListenAndServe(*addr, newMux(srv)))
}

func loadGraph(path string) (*kg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kg.ReadTriples(f)
}

func loadModel(path string) (*embed.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return embed.ReadModel(f)
}
