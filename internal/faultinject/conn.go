package faultinject

import (
	"net"
)

// Conn wraps c, applying read-side and/or write-side fault scripts. A
// Sever fired by either script also closes the underlying conn, so the
// remote peer observes the break — like a process kill, not a stall.
// Either script may be nil for a clean direction.
func Conn(c net.Conn, read, write *Script) net.Conn {
	return &faultConn{Conn: c, read: read, write: write}
}

type faultConn struct {
	net.Conn
	read, write *Script
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if fc.read == nil {
		return fc.Conn.Read(p)
	}
	max, err := fc.read.limit()
	if err != nil {
		if err == ErrSevered {
			fc.Conn.Close()
		}
		return 0, err
	}
	if max > 0 && int64(len(p)) > max {
		p = p[:max]
	}
	n, err := fc.Conn.Read(p)
	fc.read.advance(n)
	return n, err
}

func (fc *faultConn) Write(p []byte) (int, error) {
	if fc.write == nil {
		return fc.Conn.Write(p)
	}
	written := 0
	for len(p) > 0 {
		max, err := fc.write.limit()
		if err != nil {
			if err == ErrSevered {
				fc.Conn.Close()
			}
			return written, err
		}
		chunk := p
		if max > 0 && int64(len(chunk)) > max {
			chunk = chunk[:max]
		}
		n, err := fc.Conn.Write(chunk)
		fc.write.advance(n)
		written += n
		if err != nil {
			return written, err
		}
		p = p[n:]
	}
	return written, nil
}
