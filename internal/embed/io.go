package embed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// magic identifies the binary model format; bump the version on change.
const magic = "SEMKG-EMB-1\n"

// WriteModel serializes m in a compact little-endian binary format.
func WriteModel(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	dim := 0
	if len(m.Entities) > 0 {
		dim = len(m.Entities[0])
	} else if len(m.Relations) > 0 {
		dim = len(m.Relations[0])
	}
	hdr := []uint64{uint64(dim), uint64(len(m.Entities)), uint64(len(m.Relations))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	writeVecs := func(vs []Vector) error {
		for _, v := range vs {
			if len(v) != dim {
				return fmt.Errorf("embed: inconsistent vector dim %d (want %d)", len(v), dim)
			}
			for _, x := range v {
				if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(x)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := writeVecs(m.Entities); err != nil {
		return err
	}
	if err := writeVecs(m.Relations); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadModel parses a model written by WriteModel.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("embed: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("embed: bad magic %q", got)
	}
	var dim, ne, nr uint64
	for _, p := range []*uint64{&dim, &ne, &nr} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("embed: reading header: %w", err)
		}
	}
	const maxDim = 1 << 16
	if dim > maxDim || ne > 1<<32 || nr > 1<<32 {
		return nil, fmt.Errorf("embed: implausible header dim=%d entities=%d relations=%d", dim, ne, nr)
	}
	readVecs := func(count uint64) ([]Vector, error) {
		out := make([]Vector, count)
		buf := make([]byte, 8)
		for i := range out {
			v := make(Vector, dim)
			for j := range v {
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, fmt.Errorf("embed: reading vector %d: %w", i, err)
				}
				v[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
			}
			out[i] = v
		}
		return out, nil
	}
	ents, err := readVecs(ne)
	if err != nil {
		return nil, err
	}
	rels, err := readVecs(nr)
	if err != nil {
		return nil, err
	}
	return &Model{Entities: ents, Relations: rels}, nil
}
